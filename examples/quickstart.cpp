// Quickstart: design a DeepN-JPEG quantization table for a dataset and
// compare its compression against stock JPEG.
//
//   $ ./quickstart
//
// Walks the full public API: generate (or load) a dataset, run the
// frequency analysis (Algorithm 1), design the table (Eq. 3), compress, and
// report compression rate and fidelity.
#include <cstdio>

#include "core/deepnjpeg.hpp"
#include "data/synthetic.hpp"

using namespace dnj;

int main() {
  // 1. A labeled dataset. Replace with your own images; here we use the
  //    built-in synthetic generator (8 classes of 32x32 textures).
  data::GeneratorConfig gen_cfg;
  gen_cfg.num_classes = 8;
  gen_cfg.seed = 42;
  const data::SyntheticDatasetGenerator gen(gen_cfg);
  const data::Dataset dataset = gen.generate(/*per_class=*/20);
  std::printf("dataset: %zu images, %d classes, %dx%d\n", dataset.size(),
              dataset.num_classes, dataset.width(), dataset.height());

  // 2. Run the DeepN-JPEG design flow: sample -> per-band sigma -> band
  //    segmentation -> piece-wise linear mapping -> quantization table.
  const core::DesignResult design = core::DeepNJpeg::design(dataset);
  std::printf("\nfrequency analysis: %llu blocks over %llu images\n",
              static_cast<unsigned long long>(design.profile.blocks_analyzed),
              static_cast<unsigned long long>(design.profile.images_analyzed));
  std::printf("PLM thresholds: T1 = %.2f, T2 = %.2f\n", design.params.t1, design.params.t2);

  std::printf("\ndesigned quantization table (natural order):\n");
  for (int row = 0; row < 8; ++row) {
    for (int col = 0; col < 8; ++col) std::printf("%4d", design.table.step_at(row, col));
    std::printf("\n");
  }

  // 3. Compress with the designed table and with stock JPEG; compare.
  const std::size_t reference = core::reference_bytes_qf100(dataset);
  const core::TranscodeResult deepn =
      core::transcode(dataset, core::DeepNJpeg::encoder_config(design));
  jpeg::EncoderConfig jpeg50;
  jpeg50.quality = 50;
  jpeg50.subsampling = jpeg::Subsampling::k444;
  const core::TranscodeResult q50 = core::transcode(dataset, jpeg50);

  std::printf("\n%-12s %12s %8s %12s\n", "method", "bytes", "CR", "mean PSNR");
  std::printf("%-12s %12zu %8.2f %12s\n", "QF100", reference, 1.0, "(reference)");
  std::printf("%-12s %12zu %8.2f %9.1f dB\n", "JPEG-50", q50.total_bytes,
              core::compression_rate(reference, q50.total_bytes), q50.mean_psnr);
  std::printf("%-12s %12zu %8.2f %9.1f dB\n", "DeepN-JPEG", deepn.total_bytes,
              core::compression_rate(reference, deepn.total_bytes), deepn.mean_psnr);
  std::printf("\nDeepN-JPEG spends its bits on the bands the dataset (and hence a DNN)\n"
              "actually uses — see bench/fig7_methods for the accuracy side.\n");
  return 0;
}
