// Quickstart for the public API (src/api): design a DeepN-JPEG
// quantization table from a sample of images, then compare its compression
// against stock JPEG — all through the stable façade.
//
//   $ ./quickstart
//
// This file deliberately includes ONLY the public umbrella header: it is
// the reference for what an embedder sees. The images are synthesized
// inline (textured classes with distinct frequency signatures); swap in
// your own interleaved 8-bit buffers — the API reads them zero-copy
// through ImageView.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "api/dnj.hpp"

using namespace dnj::api;

namespace {

constexpr int kSize = 32;      // image side
constexpr int kClasses = 8;    // distinct texture classes
constexpr int kPerClass = 20;  // images per class

/// One deterministic grayscale texture: class-dependent spatial frequency
/// plus a per-image phase, so classes have distinct band signatures (the
/// structure the design flow feeds on).
std::vector<std::uint8_t> make_image(int cls, int index) {
  std::vector<std::uint8_t> px(static_cast<std::size_t>(kSize) * kSize);
  const double fx = 0.15 + 0.11 * cls;
  const double fy = 0.07 + 0.05 * ((cls + 3) % kClasses);
  const double phase = 0.37 * index;
  std::uint32_t noise = 0x9E3779B9u * static_cast<std::uint32_t>(cls * 131 + index + 1);
  for (int y = 0; y < kSize; ++y)
    for (int x = 0; x < kSize; ++x) {
      noise = noise * 1664525u + 1013904223u;
      const double v = 128.0 + 52.0 * std::sin(fx * x + phase) * std::cos(fy * y) +
                       18.0 * std::sin(0.9 * (x + y) + 0.21 * cls) +
                       ((noise >> 24) % 17) - 8.0;
      px[static_cast<std::size_t>(y) * kSize + x] =
          static_cast<std::uint8_t>(v < 0 ? 0 : (v > 255 ? 255 : v));
    }
  return px;
}

/// Total encoded bytes of the whole corpus under one options set.
std::size_t corpus_bytes(Codec codec, const std::vector<std::vector<std::uint8_t>>& corpus,
                         const EncodeOptions& options) {
  std::size_t total = 0;
  for (const std::vector<std::uint8_t>& px : corpus) {
    Result<std::vector<std::uint8_t>> stream =
        codec.encode(ImageView{px.data(), kSize, kSize, 1}, options);
    if (!stream.ok()) {
      std::fprintf(stderr, "encode failed: %s (%s)\n", stream.status().code_name(),
                   stream.status().message().c_str());
      return 0;
    }
    total += stream.value().size();
  }
  return total;
}

}  // namespace

int main() {
  Session session;

  // 1. A labeled image sample. TableDesigner copies what it is given; the
  //    per-image buffers only need to live until add() returns.
  TableDesigner designer = session.designer();
  std::vector<std::vector<std::uint8_t>> corpus;
  for (int cls = 0; cls < kClasses; ++cls)
    for (int i = 0; i < kPerClass; ++i) {
      corpus.push_back(make_image(cls, i));
      const Status s =
          designer.add(ImageView{corpus.back().data(), kSize, kSize, 1}, cls);
      if (!s.ok()) {
        std::fprintf(stderr, "designer.add: %s\n", s.code_name());
        return 1;
      }
    }
  std::printf("sample: %zu images, %d classes, %dx%d\n", designer.image_count(),
              kClasses, kSize, kSize);

  // 2. Run the DeepN-JPEG design flow (frequency analysis -> band
  //    segmentation -> piece-wise linear mapping -> quantization table).
  Result<TableDesign> design = designer.design();
  if (!design.ok()) {
    std::fprintf(stderr, "design failed: %s\n", design.status().code_name());
    return 1;
  }
  std::printf("\nfrequency analysis: %llu blocks over %llu images\n",
              static_cast<unsigned long long>(design->blocks_analyzed),
              static_cast<unsigned long long>(design->images_analyzed));
  std::printf("PLM thresholds: T1 = %.2f, T2 = %.2f\n", design->t1, design->t2);
  std::printf("\ndesigned quantization table (natural order):\n");
  for (int row = 0; row < 8; ++row) {
    for (int col = 0; col < 8; ++col)
      std::printf("%4d", design->table[static_cast<std::size_t>(row) * 8 + col]);
    std::printf("\n");
  }

  // 3. Compress the corpus three ways and compare. CR is measured against
  //    QF-100 JPEG, the paper's reference point (CR = 1).
  Codec codec = session.codec();
  const std::size_t reference =
      corpus_bytes(codec, corpus, EncodeOptions().quality(100).chroma_420(false));
  const std::size_t q50 =
      corpus_bytes(codec, corpus, EncodeOptions().quality(50).chroma_420(false));
  const std::size_t deepn = corpus_bytes(codec, corpus, design->encode_options());
  if (reference == 0 || q50 == 0 || deepn == 0) return 1;

  std::printf("\n%-12s %12s %8s\n", "method", "bytes", "CR");
  std::printf("%-12s %12zu %8.2f\n", "QF100", reference, 1.0);
  std::printf("%-12s %12zu %8.2f\n", "JPEG-50", q50,
              static_cast<double>(reference) / static_cast<double>(q50));
  std::printf("%-12s %12zu %8.2f\n", "DeepN-JPEG", deepn,
              static_cast<double>(reference) / static_cast<double>(deepn));

  // 4. Round-trip one image through the codec to show the decode side.
  Result<std::vector<std::uint8_t>> stream = codec.encode(
      ImageView{corpus.front().data(), kSize, kSize, 1}, design->encode_options());
  if (!stream.ok()) return 1;
  Result<DecodedImage> back = codec.decode(stream.value());
  if (!back.ok()) {
    std::fprintf(stderr, "decode failed: %s\n", back.status().code_name());
    return 1;
  }
  Result<StreamInfo> info = codec.inspect(stream.value());
  std::printf("\nround trip: %zu raw -> %zu encoded bytes -> %dx%d/%dch decoded\n",
              corpus.front().size(), stream->size(), back->width, back->height,
              back->channels);
  if (info.ok())
    std::printf("stream header: %dx%d, %d component(s)\n", info->width, info->height,
                info->components);
  std::printf("\nDeepN-JPEG spends its bits on the bands the dataset (and hence a DNN)\n"
              "actually uses — see bench/fig7_methods for the accuracy side.\n");
  return 0;
}
