// Batch compression CLI: the workflow a dataset owner runs before shipping
// a labeled dataset to a training cluster.
//
//   ./batch_compress <dataset_dir> <out_dir> [--budget-bpp <bpp>]
//
// <dataset_dir> holds one subdirectory per class with PGM/PPM images (run
// without arguments to generate a demo dataset first). The tool designs a
// DeepN-JPEG table from the dataset, writes every image as .jpg into
// <out_dir>/<class>/, and prints the byte accounting against QF-100 JPEG.
// With --budget-bpp it instead uses quality-scaled JPEG rate control per
// image — handy for comparing the two ways of hitting a size target.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "api/dnj.hpp"
#include "core/transcode.hpp"
#include "data/folder.hpp"
#include "data/synthetic.hpp"
#include "jpeg/rate_control.hpp"

using namespace dnj;
namespace fs = std::filesystem;

namespace {

void write_file(const fs::path& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw std::runtime_error("cannot write " + path.string());
}

int make_demo_dataset(const char* dir) {
  std::printf("no dataset given — generating a demo under %s\n", dir);
  data::GeneratorConfig cfg;
  cfg.seed = 99;
  const data::Dataset ds = data::SyntheticDatasetGenerator(cfg).generate(10);
  std::vector<std::string> names;
  for (int c = 0; c < cfg.num_classes; ++c)
    names.push_back(data::class_name(static_cast<data::ClassKind>(c)));
  data::save_folder_dataset(ds, dir, names);
  std::printf("wrote %zu images in %d classes; rerun:\n", ds.size(), cfg.num_classes);
  std::printf("  ./batch_compress %s demo_out\n", dir);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return make_demo_dataset(argc > 1 ? argv[1] : "demo_dataset");

  const std::string in_dir = argv[1];
  const std::string out_dir = argv[2];
  double budget_bpp = 0.0;
  for (int i = 3; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], "--budget-bpp") == 0) budget_bpp = std::atof(argv[i + 1]);

  const data::FolderDataset folder = data::load_folder_dataset(in_dir);
  std::printf("loaded %zu images, %zu classes from %s\n", folder.dataset.size(),
              folder.classes.size(), in_dir.c_str());

  const std::size_t reference = core::reference_bytes_qf100(folder.dataset);
  std::size_t total = 0;
  std::vector<int> counters(folder.classes.size(), 0);

  if (budget_bpp > 0.0) {
    std::printf("mode: JPEG rate control at %.2f bpp per image\n", budget_bpp);
    for (const data::Sample& s : folder.dataset.samples) {
      jpeg::RateSearchResult res;
      try {
        res = jpeg::encode_for_bpp(s.image, budget_bpp);
      } catch (const std::invalid_argument& e) {
        // An unreachable budget is a typed error now, not a silent clamp.
        std::fprintf(stderr, "budget unreachable: %s\n", e.what());
        return 1;
      }
      const fs::path dir = fs::path(out_dir) / folder.classes[static_cast<std::size_t>(s.label)].name;
      fs::create_directories(dir);
      char name[32];
      std::snprintf(name, sizeof(name), "%04d.jpg",
                    counters[static_cast<std::size_t>(s.label)]++);
      write_file(dir / name, res.bytes);
      total += res.bytes.size();
    }
  } else {
    // Table design + compression run through the public façade (api/):
    // the workflow an external dataset owner scripts against the stable
    // surface, with typed statuses instead of exceptions.
    std::printf("mode: DeepN-JPEG (designing table from the dataset)\n");
    api::Session session;
    api::TableDesigner designer = session.designer();
    for (const data::Sample& s : folder.dataset.samples)
      if (const api::Status st = designer.add(s.image.view(), s.label); !st.ok())
        throw std::runtime_error(std::string("designer.add: ") + st.code_name());
    api::Result<api::TableDesign> design = designer.design();
    if (!design.ok())
      throw std::runtime_error(std::string("design: ") + design.status().code_name());
    const api::EncodeOptions options = design->encode_options();
    const api::Codec codec = session.codec();
    for (const data::Sample& s : folder.dataset.samples) {
      api::Result<std::vector<std::uint8_t>> bytes = codec.encode(s.image.view(), options);
      if (!bytes.ok())
        throw std::runtime_error(std::string("encode: ") + bytes.status().code_name());
      const fs::path dir = fs::path(out_dir) / folder.classes[static_cast<std::size_t>(s.label)].name;
      fs::create_directories(dir);
      char name[32];
      std::snprintf(name, sizeof(name), "%04d.jpg",
                    counters[static_cast<std::size_t>(s.label)]++);
      write_file(dir / name, bytes.value());
      total += bytes->size();
    }
  }

  std::printf("\n%-22s %12zu bytes\n", "QF-100 reference:", reference);
  std::printf("%-22s %12zu bytes  (CR %.2fx, whole files)\n", "compressed output:", total,
              core::compression_rate(reference, total));
  std::printf("output written under %s/\n", out_dir.c_str());
  return 0;
}
