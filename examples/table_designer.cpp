// Table-designer workbench: inspect every intermediate artifact of the
// DeepN-JPEG design flow (Fig. 4) — per-band sigma, the magnitude-based
// LF/MF/HF segmentation vs the position-based one, the PLM mapping, and the
// final table next to the Annex K baseline. Also writes a sample image pair
// (original / DeepN-JPEG round trip) as PGM files for visual inspection.
#include <cstdio>

#include "core/deepnjpeg.hpp"
#include "data/synthetic.hpp"
#include "image/io.hpp"
#include "image/metrics.hpp"
#include "jpeg/zigzag.hpp"

using namespace dnj;

namespace {

char band_letter(core::Band b) {
  switch (b) {
    case core::Band::kLF: return 'L';
    case core::Band::kMF: return 'M';
    case core::Band::kHF: return 'H';
  }
  return '?';
}

void print_grid_d(const char* title, const std::array<double, 64>& values) {
  std::printf("%s\n", title);
  for (int row = 0; row < 8; ++row) {
    for (int col = 0; col < 8; ++col) std::printf("%8.2f", values[static_cast<std::size_t>(row * 8 + col)]);
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  data::GeneratorConfig gen_cfg;
  gen_cfg.seed = 31415;
  const data::SyntheticDatasetGenerator gen(gen_cfg);
  const data::Dataset dataset = gen.generate(16);

  // Full design flow with all intermediates.
  core::DesignConfig cfg;
  cfg.analysis.sample_interval = 2;  // Algorithm 1: every 2nd image per class
  const core::DesignResult d = core::DeepNJpeg::design(dataset, cfg);

  std::printf("=== DeepN-JPEG table designer ===\n");
  std::printf("sampled %llu images (interval %d), %llu blocks\n\n",
              static_cast<unsigned long long>(d.profile.images_analyzed),
              cfg.analysis.sample_interval,
              static_cast<unsigned long long>(d.profile.blocks_analyzed));

  print_grid_d("per-band sigma (Algorithm 1):", d.profile.sigma);

  std::printf("magnitude-based segmentation (L/M/H):\n");
  for (int row = 0; row < 8; ++row) {
    for (int col = 0; col < 8; ++col)
      std::printf("   %c", band_letter(d.bands.band_of[static_cast<std::size_t>(row * 8 + col)]));
    std::printf("\n");
  }
  std::printf("\nposition-based segmentation for comparison (L/M/H):\n");
  const core::BandSplit pos = core::position_based();
  for (int row = 0; row < 8; ++row) {
    for (int col = 0; col < 8; ++col)
      std::printf("   %c", band_letter(pos.band_of[static_cast<std::size_t>(row * 8 + col)]));
    std::printf("\n");
  }

  std::printf("\nPLM: a=%.0f b=%.0f c=%.0f k1=%.2f k2=%.2f k3=%.2f T1=%.2f T2=%.2f Qmin=%.0f\n",
              d.params.a, d.params.b, d.params.c, d.params.k1, d.params.k2, d.params.k3,
              d.params.t1, d.params.t2, d.params.qmin);

  std::printf("\nDeepN-JPEG table         |  Annex K (QF50) for reference\n");
  const jpeg::QuantTable annex = jpeg::QuantTable::annex_k_luma();
  for (int row = 0; row < 8; ++row) {
    for (int col = 0; col < 8; ++col) std::printf("%4d", d.table.step_at(row, col));
    std::printf("   |");
    for (int col = 0; col < 8; ++col) std::printf("%4d", annex.step_at(row, col));
    std::printf("\n");
  }

  // Round-trip one HF-rich image and write the pair for visual inspection.
  const image::Image sample = gen.render(data::ClassKind::kBlobPlusTexture, 0);
  const jpeg::RoundTrip rt = jpeg::round_trip(sample, core::DeepNJpeg::encoder_config(d));
  image::write_pnm(sample, "table_designer_original.pgm");
  image::write_pnm(rt.decoded, "table_designer_deepn.pgm");
  std::printf("\nsample round trip: %zu -> %zu bytes, PSNR %.1f dB\n",
              sample.byte_size(), rt.bytes.size(), image::psnr(sample, rt.decoded));
  std::printf("wrote table_designer_original.pgm / table_designer_deepn.pgm\n");
  return 0;
}
