// Edge-sensor scenario from the paper's introduction: a resource-limited
// device captures images, compresses them, and uploads them for DNN
// inference in the cloud. This example measures the end-to-end tradeoff —
// upload latency and radio energy per image, and the classification
// accuracy the cloud model achieves — for stock JPEG vs DeepN-JPEG.
#include <cstdio>

#include "core/deepnjpeg.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"
#include "nn/trainer.hpp"
#include "power/energy_model.hpp"

using namespace dnj;

int main() {
  std::printf("=== Edge sensor offload pipeline ===\n");

  // Cloud side: a model trained on high-quality data.
  data::GeneratorConfig gen_cfg;
  gen_cfg.seed = 2718;
  const data::SyntheticDatasetGenerator gen(gen_cfg);
  const auto [train_set, field_set] = gen.generate_split(50, 20);
  nn::LayerPtr cloud_model =
      nn::make_model(nn::ModelKind::kMiniVGG, 1, 32, train_set.num_classes, 99);
  nn::TrainConfig tc;
  tc.epochs = 8;
  tc.lr = 0.03f;
  nn::train(*cloud_model, train_set, nullptr, tc);
  std::printf("cloud model ready (%zu parameters)\n", cloud_model->param_count());

  // Sensor side: the device holds only the 64-entry quantization table the
  // design flow produced from a representative sample — table design runs
  // offline, the sensor datapath is stock JPEG.
  const core::DesignResult design = core::DeepNJpeg::design(train_set);

  struct Uplink {
    const char* name;
    jpeg::EncoderConfig config;
  };
  jpeg::EncoderConfig qf100;
  qf100.quality = 100;
  qf100.subsampling = jpeg::Subsampling::k444;
  jpeg::EncoderConfig qf50 = qf100;
  qf50.quality = 50;
  const Uplink uplinks[] = {
      {"JPEG QF100", qf100},
      {"JPEG QF50", qf50},
      {"DeepN-JPEG", core::DeepNJpeg::encoder_config(design)},
  };

  power::EnergyModel radio;  // Wi-Fi by default
  std::printf("\nradio: %s (%.1f Mbps, %.1f W)\n\n", radio.radio.name.c_str(),
              radio.radio.mbps, radio.radio.tx_watts);
  std::printf("%-12s %14s %14s %14s %10s\n", "uplink", "bytes/image", "latency/image",
              "energy/image", "cloud acc");

  for (const Uplink& u : uplinks) {
    std::size_t total_bytes = 0;
    data::Dataset received;
    received.num_classes = field_set.num_classes;
    for (const data::Sample& s : field_set.samples) {
      const jpeg::RoundTrip rt = jpeg::round_trip(s.image, u.config);  // sensor -> cloud
      total_bytes += rt.bytes.size();
      received.samples.push_back({rt.decoded, s.label});
    }
    const double bytes_per_image = static_cast<double>(total_bytes) / field_set.size();
    const double latency_ms = radio.transfer_seconds(static_cast<std::size_t>(bytes_per_image)) * 1e3;
    const double energy_mj =
        radio.offload_joules(static_cast<std::size_t>(bytes_per_image),
                             static_cast<std::size_t>(field_set.width()) * field_set.height(),
                             true) * 1e3;
    const double acc = nn::evaluate(*cloud_model, received);
    std::printf("%-12s %14.0f %11.2f ms %11.3f mJ %10.4f\n", u.name, bytes_per_image,
                latency_ms, energy_mj, acc);
  }
  std::printf("\nDeepN-JPEG uploads fewer bytes per image at the same cloud accuracy\n"
              "as QF100, where QF50 saves bytes by giving up accuracy.\n");
  return 0;
}
