// A standalone DeepN-JPEG network server over the public API: construct an
// async Service, open the TCP front end with listen(), and serve the
// binary protocol (docs/PROTOCOL.md) until stdin closes.
//
//   ./net_server [port] [workers]
//
//   port     TCP port to bind on 127.0.0.1 (default 0 = ephemeral; the
//            bound port is printed either way)
//   workers  service worker threads (default 2)
//
// Pair it with the bench_net load generator or any foreign client built
// from the protocol spec:
//
//   $ ./net_server 9090 4
//   dnj net_server: listening on 127.0.0.1:9090 (4 workers)
//   ... Ctrl-D to drain and exit ...
//
// Like every example, this includes ONLY the public umbrella header — no
// internal layer is touched; listen()/stop_listening() and the typed
// Status results are the whole operational surface.
#include <cstdio>
#include <cstdlib>

#include "api/dnj.hpp"

int main(int argc, char** argv) {
  const int port = argc > 1 ? std::atoi(argv[1]) : 0;
  const int workers = argc > 2 ? std::atoi(argv[2]) : 2;
  if (port < 0 || port > 65535 || workers < 1) {
    std::fprintf(stderr, "usage: %s [port] [workers]\n", argv[0]);
    return 2;
  }

  dnj::api::Service service(dnj::api::ServiceOptions()
                                .workers(workers)
                                .reject_when_full(true));  // typed overload, not stalls

  const dnj::api::Status status = service.listen(
      dnj::api::ListenOptions().port(static_cast<std::uint16_t>(port)));
  if (!status.ok()) {
    std::fprintf(stderr, "dnj net_server: %s\n", status.message().c_str());
    return 1;
  }
  std::printf("dnj net_server: listening on 127.0.0.1:%d (%d workers)\n",
              service.listen_port(), workers);
  std::printf("dnj net_server: EOF on stdin (Ctrl-D) drains and exits\n");
  std::fflush(stdout);

  // Serve until stdin closes — the idiomatic way to run under a pipe, a
  // terminal, or a process supervisor alike.
  int c;
  while ((c = std::getchar()) != EOF) {
  }

  service.shutdown();  // drains the listener, then the service
  std::printf("dnj net_server: drained, bye\n");
  return 0;
}
