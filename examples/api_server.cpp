// Async serving through the public API (src/api): a self-contained
// embedder's view of the Service façade — submit mixed encode / decode /
// transcode traffic from several client threads, then read the metrics.
//
//   $ ./api_server
//
// Like quickstart.cpp, this file includes ONLY the public umbrella header.
// The error model is on display: every reply carries a typed Status, the
// bad-input submission comes back kInvalidArgument without touching the
// queue, and submissions after shutdown() come back kShutdown.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "api/dnj.hpp"

using namespace dnj::api;

namespace {

constexpr int kSide = 32;

std::vector<std::uint8_t> make_image(int seed) {
  std::vector<std::uint8_t> px(static_cast<std::size_t>(kSide) * kSide);
  for (int y = 0; y < kSide; ++y)
    for (int x = 0; x < kSide; ++x) {
      const double v =
          128.0 + 55.0 * std::sin(0.31 * x + 0.13 * seed) * std::cos(0.22 * y);
      px[static_cast<std::size_t>(y) * kSide + x] =
          static_cast<std::uint8_t>(v < 0 ? 0 : (v > 255 ? 255 : v));
    }
  return px;
}

}  // namespace

int main() {
  // A small corpus plus its encoded forms (for decode/transcode traffic).
  Session session;
  Codec codec = session.codec();
  const EncodeOptions store_options = EncodeOptions().quality(85).chroma_420(false);

  std::vector<std::vector<std::uint8_t>> images;
  std::vector<std::vector<std::uint8_t>> streams;
  for (int i = 0; i < 16; ++i) {
    images.push_back(make_image(i));
    Result<std::vector<std::uint8_t>> s =
        codec.encode(ImageView{images.back().data(), kSide, kSide, 1}, store_options);
    if (!s.ok()) {
      std::fprintf(stderr, "corpus encode failed: %s\n", s.status().code_name());
      return 1;
    }
    streams.push_back(s.take());
  }

  Service service(ServiceOptions().workers(4).max_batch(8).result_cache(128));

  // Mixed closed-loop traffic from four client threads.
  constexpr int kClients = 4;
  constexpr int kPerClient = 120;
  std::vector<std::uint64_t> ok(kClients, 0), failed(kClients, 0);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const EncodeOptions transcode_options = EncodeOptions().quality(45).chroma_420(false);
      for (int i = 0; i < kPerClient; ++i) {
        const std::size_t pick = static_cast<std::size_t>(i * kClients + c) % images.size();
        Pending pending;
        switch (i % 3) {
          case 0:
            pending = service.encode(ImageView{images[pick].data(), kSide, kSide, 1},
                                     store_options);
            break;
          case 1:
            pending = service.decode(streams[pick]);
            break;
          default:
            pending = service.transcode(streams[pick], transcode_options);
            break;
        }
        const ServiceReply reply = pending.get();
        std::uint64_t& counter = reply.status.ok() ? ok[static_cast<std::size_t>(c)]
                                                   : failed[static_cast<std::size_t>(c)];
        ++counter;
      }
    });
  }
  for (std::thread& t : clients) t.join();

  // The typed error paths, end to end.
  const ServiceReply bad =
      service.encode(ImageView{nullptr, kSide, kSide, 1}, store_options).get();
  std::printf("null-pixel submit     -> %s\n", bad.status.code_name());

  const ServiceMetrics m = service.metrics();
  std::uint64_t total_ok = 0, total_failed = 0;
  for (int c = 0; c < kClients; ++c) {
    total_ok += ok[static_cast<std::size_t>(c)];
    total_failed += failed[static_cast<std::size_t>(c)];
  }
  std::printf("\nclients: %d x %d requests -> ok=%llu failed=%llu\n", kClients,
              kPerClient, static_cast<unsigned long long>(total_ok),
              static_cast<unsigned long long>(total_failed));
  std::printf("service: submitted=%llu completed=%llu cache_hits=%llu batches=%llu "
              "(max batch %llu)\n",
              static_cast<unsigned long long>(m.submitted),
              static_cast<unsigned long long>(m.completed),
              static_cast<unsigned long long>(m.cache_hits),
              static_cast<unsigned long long>(m.batches),
              static_cast<unsigned long long>(m.max_batch));
  std::printf("latency p50/p95/p99 = %.0f/%.0f/%.0f us\n", m.total_p50_us, m.total_p95_us,
              m.total_p99_us);

  service.shutdown();
  const ServiceReply late = service.decode(streams.front()).get();
  std::printf("post-shutdown submit  -> %s\n", late.status.code_name());
  return total_failed == 0 && bad.status.code() == StatusCode::kInvalidArgument &&
                 late.status.code() == StatusCode::kShutdown
             ? 0
             : 1;
}
