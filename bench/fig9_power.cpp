// Fig. 9: normalized data-offloading power consumption for Original /
// RM-HF3 / SAME-Q4 / DeepN-JPEG, using the Neurosurgeon-style radio energy
// model. Paper shape: DeepN-JPEG consumes ~30% of the original's offload
// power; RM-HF3 and SAME-Q4 sit in between.
#include <cstdio>

#include "power/energy_model.hpp"
#include "bench_common.hpp"

using namespace dnj;

int main() {
  std::printf("=== Fig 9: normalized offload power consumption ===\n");
  bench::ExperimentEnv env = bench::make_env();
  const std::size_t pixels = env.train_raw.raw_bytes() + env.test_raw.raw_bytes();

  struct Method {
    std::string name;
    std::size_t bytes;
  };
  std::vector<Method> methods;
  methods.push_back({"Original", env.reference_bytes});

  auto bytes_for_table = [&](const jpeg::QuantTable& table) {
    std::size_t train_b = 0, test_b = 0;
    bench::recompress_table(env.train, table, &train_b);
    bench::recompress_table(env.test, table, &test_b);
    return train_b + test_b;
  };

  const jpeg::QuantTable qf100 = jpeg::QuantTable::annex_k_luma().scaled(100);
  methods.push_back({"RM-HF3", bytes_for_table(core::rm_hf_table(qf100, 3))});
  methods.push_back({"SAME-Q4", bytes_for_table(core::same_q_table(4))});
  const core::DesignResult design = core::DeepNJpeg::design(env.train);
  methods.push_back({"DeepN-JPEG", bytes_for_table(design.table)});

  const power::RadioProfile radios[] = {power::RadioProfile::cellular_3g(),
                                        power::RadioProfile::lte(),
                                        power::RadioProfile::wifi()};

  bench::JsonWriter out("fig9_power");
  out.begin_rows({"method", "bytes", "norm_power_3g", "norm_power_lte", "norm_power_wifi"});
  std::printf("%-14s %12s %10s %10s %10s\n", "method", "bytes", "3G", "LTE", "WiFi");
  for (const Method& m : methods) {
    std::printf("%-14s %12zu", m.name.c_str(), m.bytes);
    std::vector<std::string> cells = {m.name, std::to_string(m.bytes)};
    for (const power::RadioProfile& radio : radios) {
      power::EnergyModel model;
      model.radio = radio;
      const double ratio = power::normalized_power(model, m.bytes, methods[0].bytes, pixels);
      std::printf(" %10.3f", ratio);
      cells.push_back(bench::fmt(ratio, 3));
    }
    std::printf("\n");
    out.row(cells);
  }
  std::printf("(expect: DeepN-JPEG lowest at roughly 0.3x the original, on every radio)\n");
  std::printf("json: %s\n", out.path().c_str());
  return 0;
}
