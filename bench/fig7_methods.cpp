// Fig. 7: compression rate and accuracy across methods —
//   Original (QF 100, CR = 1), RM-HF (remove top-3/6/9 HF components),
//   SAME-Q (uniform step 4/8/12), and DeepN-JPEG.
// Paper shape: RM-HF buys ~1.1-1.3x, SAME-Q ~1.5-2x, both losing accuracy
// as CR grows; DeepN-JPEG reaches the highest CR (~3.5x on ImageNet) at
// the original accuracy.
#include <cstdio>

#include "bench_common.hpp"

using namespace dnj;

int main() {
  std::printf("=== Fig 7: CR and accuracy across compression methods ===\n");
  bench::ExperimentEnv env = bench::make_env();
  nn::LayerPtr model = bench::train_model(nn::ModelKind::kMiniAlexNet, env.train);
  const double base_acc = nn::evaluate(*model, env.test);

  bench::JsonWriter out("fig7_methods");
  out.begin_rows({"method", "cr", "accuracy"});
  std::printf("%-14s %10s %10s\n", "method", "CR", "accuracy");
  std::printf("%-14s %10.2f %10.4f\n", "Original", 1.0, base_acc);
  out.row({"Original", "1.00", bench::fmt(base_acc, 4)});

  auto report = [&](const std::string& name, const jpeg::QuantTable& table) {
    std::size_t train_bytes = 0, test_bytes = 0;
    bench::recompress_table(env.train, table, &train_bytes);
    const data::Dataset test_c = bench::recompress_table(env.test, table, &test_bytes);
    const double cr = core::compression_rate(env.reference_bytes, train_bytes + test_bytes);
    const double acc = nn::evaluate(*model, test_c);
    std::printf("%-14s %10.2f %10.4f\n", name.c_str(), cr, acc);
    out.row({name, bench::fmt(cr, 2), bench::fmt(acc, 4)});
  };

  // RM-HF: QF-100 table (all ones) with the top-N zig-zag bands removed —
  // the paper extends the "original" encoding by discarding HF components.
  const jpeg::QuantTable qf100 = jpeg::QuantTable::annex_k_luma().scaled(100);
  for (int n : {3, 6, 9}) report("RM-HF" + std::to_string(n), core::rm_hf_table(qf100, n));

  for (int q : {4, 8, 12}) report("SAME-Q" + std::to_string(q), core::same_q_table(q));

  const core::DesignResult design = core::DeepNJpeg::design(env.train);
  report("DeepN-JPEG", design.table);

  std::printf("(expect: DeepN-JPEG reaches the best CR at ~original accuracy;\n");
  std::printf(" RM-HF and SAME-Q lose accuracy as their CR grows)\n");
  std::printf("json: %s\n", out.path().c_str());
  return 0;
}
