// Fig. 8: generality across DNN architectures. Each mini model (AlexNet /
// VGG / Inception / ResNet families) is trained on the original dataset and
// evaluated on test sets re-encoded by: Original (QF 100), DeepN-JPEG,
// JPEG QF 80, JPEG QF 50. Paper shape: DeepN-JPEG matches the original
// accuracy for every architecture while achieving the highest CR; QF <= 50
// reaches similar CR but loses accuracy on all models.
#include <cstdio>

#include "bench_common.hpp"

using namespace dnj;

int main() {
  std::printf("=== Fig 8: generality across DNN models ===\n");
  bench::ExperimentEnv env = bench::make_env();

  // Compression variants of the test set (shared across models).
  struct Variant {
    std::string name;
    data::Dataset test;
    double cr;
  };
  std::vector<Variant> variants;
  variants.push_back({"Original", env.test, 1.0});

  const core::DesignResult design = core::DeepNJpeg::design(env.train);
  {
    std::size_t train_b = 0, test_b = 0;
    bench::recompress_table(env.train, design.table, &train_b);
    data::Dataset t = bench::recompress_table(env.test, design.table, &test_b);
    variants.push_back({"DeepN-JPEG", std::move(t),
                        core::compression_rate(env.reference_bytes, train_b + test_b)});
  }
  // QF 20 added beyond the paper's {80, 50}: our synthetic spectra carry
  // roughly 2x stronger high-band coefficients than ImageNet, so the
  // quality factor at which HVS quantization starts destroying features
  // shifts down correspondingly (see EXPERIMENTS.md).
  for (int qf : {80, 50, 20}) {
    std::size_t train_b = 0, test_b = 0;
    bench::recompress_quality(env.train, qf, &train_b);
    data::Dataset t = bench::recompress_quality(env.test, qf, &test_b);
    variants.push_back({"QF" + std::to_string(qf), std::move(t),
                        core::compression_rate(env.reference_bytes, train_b + test_b)});
  }

  bench::JsonWriter out("fig8_models");
  out.begin_rows({"model", "variant", "cr", "accuracy"});
  std::printf("%-14s", "model");
  for (const Variant& v : variants) std::printf(" %12s", v.name.c_str());
  std::printf("\n");

  for (int k = 0; k < nn::kNumModelKinds; ++k) {
    const nn::ModelKind kind = static_cast<nn::ModelKind>(k);
    nn::LayerPtr model =
        bench::train_model(kind, env.train, 20, 41 + static_cast<std::uint64_t>(k));
    std::printf("%-14s", nn::model_name(kind).c_str());
    for (const Variant& v : variants) {
      const double acc = nn::evaluate(*model, v.test);
      std::printf(" %12.4f", acc);
      out.row({nn::model_name(kind), v.name, bench::fmt(v.cr, 2), bench::fmt(acc, 4)});
    }
    std::printf("\n");
  }
  std::printf("%-14s", "CR");
  for (const Variant& v : variants) std::printf(" %12.2f", v.cr);
  std::printf("\n");
  std::printf("(expect: DeepN-JPEG column ~= Original column for every model,\n");
  std::printf(" with CR well above 1; QF50 trades accuracy for similar CR)\n");
  std::printf("json: %s\n", out.path().c_str());
  return 0;
}
