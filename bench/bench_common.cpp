#include "bench_common.hpp"

#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "runtime/thread_pool.hpp"
#include "simd/dispatch.hpp"

#ifndef DNJ_GIT_SHA
#define DNJ_GIT_SHA "unknown"
#endif

namespace dnj::bench {

namespace {

jpeg::EncoderConfig quality_config(int quality) {
  jpeg::EncoderConfig cfg;
  cfg.quality = quality;
  cfg.subsampling = jpeg::Subsampling::k444;
  return cfg;
}

}  // namespace

ExperimentEnv make_env(int train_per_class, int test_per_class, std::uint64_t seed) {
  ExperimentEnv env;
  env.gen_config.width = 32;
  env.gen_config.height = 32;
  env.gen_config.channels = 1;
  env.gen_config.num_classes = 8;
  env.gen_config.seed = seed;
  const data::SyntheticDatasetGenerator gen(env.gen_config);
  std::tie(env.train_raw, env.test_raw) = gen.generate_split(train_per_class, test_per_class);

  // The paper's CR = 1 reference: everything stored as QF-100 JPEG.
  core::TranscodeResult tr = core::transcode(env.train_raw, quality_config(100));
  env.train = std::move(tr.dataset);
  env.reference_train_bytes = tr.scan_bytes;
  core::TranscodeResult te = core::transcode(env.test_raw, quality_config(100));
  env.test = std::move(te.dataset);
  env.reference_test_bytes = te.scan_bytes;
  env.reference_bytes = env.reference_train_bytes + env.reference_test_bytes;
  return env;
}

nn::TrainConfig default_train_config(int epochs) {
  nn::TrainConfig cfg;
  cfg.epochs = epochs;
  cfg.batch_size = 32;
  cfg.lr = 0.03f;
  cfg.lr_decay = 0.92f;
  cfg.momentum = 0.9f;
  cfg.weight_decay = 1e-4f;
  cfg.seed = 0xBEEF;
  return cfg;
}

nn::LayerPtr train_model(nn::ModelKind kind, const data::Dataset& train, int epochs,
                         std::uint64_t seed) {
  nn::LayerPtr model =
      nn::make_model(kind, train.channels(), train.width(), train.num_classes, seed);
  nn::TrainConfig cfg = default_train_config(epochs);
  nn::train(*model, train, nullptr, cfg);
  return model;
}

data::Dataset recompress_quality(const data::Dataset& ds, int quality,
                                 std::size_t* bytes_out) {
  core::TranscodeResult res = core::transcode(ds, quality_config(quality));
  if (bytes_out) *bytes_out = res.scan_bytes;
  return std::move(res.dataset);
}

data::Dataset recompress_table(const data::Dataset& ds, const jpeg::QuantTable& table,
                               std::size_t* bytes_out) {
  core::TranscodeResult res = core::transcode(ds, core::custom_table_config(table));
  if (bytes_out) *bytes_out = res.scan_bytes;
  return std::move(res.dataset);
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

}  // namespace

JsonWriter::JsonWriter(const std::string& name) {
  std::filesystem::create_directories("bench_results");
  path_ = "bench_results/" + name + ".json";
  file_ = std::fopen(path_.c_str(), "w");
  if (!file_) throw std::runtime_error("JsonWriter: cannot open " + path_);
  std::fputs("{", static_cast<std::FILE*>(file_));
  needs_comma_.push_back(false);
  // Run metadata first, so every trajectory file names the commit and
  // machine configuration that produced it.
  field("git_sha", DNJ_GIT_SHA);
  field("simd_level", simd::level_name(simd::active_level()));
  field("threads", static_cast<int>(runtime::ThreadPool::default_threads()));
}

JsonWriter::~JsonWriter() {
  if (file_) {
    while (!scope_kind_.empty()) close_scope();
    std::fputs("}\n", static_cast<std::FILE*>(file_));
    std::fclose(static_cast<std::FILE*>(file_));
  }
}

void JsonWriter::close_scope() {
  needs_comma_.pop_back();
  std::fputs(scope_kind_.back() == 'A' ? "]" : "}", static_cast<std::FILE*>(file_));
  scope_kind_.pop_back();
}

void JsonWriter::comma_only() {
  std::FILE* f = static_cast<std::FILE*>(file_);
  if (needs_comma_.back()) std::fputs(",", f);
  needs_comma_.back() = true;
  std::fputs("\n", f);
  for (std::size_t i = 0; i < needs_comma_.size(); ++i) std::fputs("  ", f);
}

void JsonWriter::comma_and_key(const std::string& key) {
  comma_only();
  std::fprintf(static_cast<std::FILE*>(file_), "\"%s\": ", json_escape(key).c_str());
}

void JsonWriter::field(const std::string& key, const std::string& value) {
  comma_and_key(key);
  std::fprintf(static_cast<std::FILE*>(file_), "\"%s\"", json_escape(value).c_str());
}

void JsonWriter::field(const std::string& key, const char* value) {
  field(key, std::string(value));
}

void JsonWriter::field(const std::string& key, double value) {
  comma_and_key(key);
  std::fprintf(static_cast<std::FILE*>(file_), "%.6g", value);
}

void JsonWriter::field(const std::string& key, std::size_t value) {
  comma_and_key(key);
  std::fprintf(static_cast<std::FILE*>(file_), "%zu", value);
}

void JsonWriter::field(const std::string& key, int value) {
  comma_and_key(key);
  std::fprintf(static_cast<std::FILE*>(file_), "%d", value);
}

void JsonWriter::field(const std::string& key, bool value) {
  comma_and_key(key);
  std::fputs(value ? "true" : "false", static_cast<std::FILE*>(file_));
}

void JsonWriter::begin_array(const std::string& key) {
  comma_and_key(key);
  std::fputs("[", static_cast<std::FILE*>(file_));
  needs_comma_.push_back(false);
  scope_kind_.push_back('A');
}

void JsonWriter::end_array() { close_scope(); }

void JsonWriter::begin_object() {
  comma_only();
  std::fputs("{", static_cast<std::FILE*>(file_));
  needs_comma_.push_back(false);
  scope_kind_.push_back('O');
}

void JsonWriter::end_object() { close_scope(); }

void JsonWriter::begin_rows(const std::vector<std::string>& cols) {
  row_cols_ = cols;
  begin_array("rows");
}

void JsonWriter::row(const std::vector<std::string>& cells) {
  if (cells.size() != row_cols_.size())
    throw std::runtime_error("JsonWriter::row: cell count does not match columns");
  begin_object();
  for (std::size_t i = 0; i < cells.size(); ++i) field(row_cols_[i], cells[i]);
  end_object();
  std::fflush(static_cast<std::FILE*>(file_));
}

void JsonWriter::end_rows() { end_array(); }

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace dnj::bench
