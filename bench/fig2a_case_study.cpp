// Fig. 2(a): top-1 accuracy vs JPEG compression for the two training/testing
// regimes of Section 2.3.
//   CASE 1: train on high-quality (QF 100) images, test at QF 100/50/20.
//   CASE 2: train at QF 100/50/20, test on high-quality images.
// Paper shape: both curves fall as CR grows (QF drops); CASE 2 degrades
// less than CASE 1 at every CR.
#include <cstdio>

#include "bench_common.hpp"

using namespace dnj;

int main() {
  std::printf("=== Fig 2(a): accuracy vs JPEG compression (CASE 1 / CASE 2) ===\n");
  bench::ExperimentEnv env = bench::make_env();

  const int kQualities[] = {100, 50, 20};

  // CASE 1: one model trained on the original (QF 100) training set.
  nn::LayerPtr case1_model = bench::train_model(nn::ModelKind::kMiniAlexNet, env.train);

  bench::JsonWriter out("fig2a_case_study");
  out.begin_rows({"qf", "cr", "case1_acc", "case2_acc"});
  std::printf("%6s %8s %12s %12s\n", "QF", "CR", "CASE1 acc", "CASE2 acc");

  for (int qf : kQualities) {
    // QF 100 is the original dataset itself — no re-encode.
    std::size_t test_bytes = env.reference_test_bytes;
    std::size_t train_bytes = env.reference_train_bytes;
    const data::Dataset test_q =
        qf == 100 ? env.test : bench::recompress_quality(env.test, qf, &test_bytes);
    const data::Dataset train_q =
        qf == 100 ? env.train : bench::recompress_quality(env.train, qf, &train_bytes);
    const double cr = core::compression_rate(env.reference_bytes, train_bytes + test_bytes);

    // CASE 1: fixed model, compressed test set.
    const double case1 = nn::evaluate(*case1_model, test_q);

    // CASE 2: train on the compressed training set, test on originals.
    nn::LayerPtr case2_model = bench::train_model(nn::ModelKind::kMiniAlexNet, train_q);
    const double case2 = nn::evaluate(*case2_model, env.test);

    std::printf("%6d %8.2f %12.4f %12.4f\n", qf, cr, case1, case2);
    out.row({std::to_string(qf), bench::fmt(cr, 2), bench::fmt(case1, 4), bench::fmt(case2, 4)});
  }
  std::printf("(expect: accuracy falls with CR; CASE 2 falls less than CASE 1)\n");
  std::printf("json: %s\n", out.path().c_str());
  return 0;
}
