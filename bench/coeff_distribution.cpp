// Section 3.2.1 / reference [24] (Reininger & Gibson): un-quantized AC DCT
// coefficients are approximately zero-mean Laplacian; DC is closer to
// Gaussian/uniform. Algorithm 1's use of the standard deviation as the
// band-importance statistic rests on this. We fit both models per band and
// report KS distances and log-likelihood preferences.
#include <cstdio>

#include "image/blocks.hpp"
#include "image/color.hpp"
#include "jpeg/dct.hpp"
#include "stats/distribution.hpp"
#include "bench_common.hpp"

using namespace dnj;

int main() {
  std::printf("=== DCT coefficient distributions (Reininger-Gibson check) ===\n");
  bench::ExperimentEnv env = bench::make_env(40, 10);

  // Gather raw per-band coefficient samples over the training set.
  std::array<std::vector<double>, 64> samples;
  for (const data::Sample& s : env.train.samples) {
    const image::PlaneF plane = image::to_plane(s.image, 0);
    for (image::BlockF blk : image::split_blocks(plane)) {
      image::level_shift(blk);
      const image::BlockF freq = jpeg::fdct(blk);
      for (int k = 0; k < 64; ++k)
        samples[static_cast<std::size_t>(k)].push_back(freq[static_cast<std::size_t>(k)]);
    }
  }

  const int probe_bands[] = {0, 1, 8, 9, 2 * 8 + 2, 4 * 8 + 1, 1 * 8 + 4,
                             5 * 8 + 5, 7 * 8 + 0, 0 * 8 + 7, 7 * 8 + 7};

  bench::JsonWriter out("coeff_distribution");
  out.begin_rows({"band_row", "band_col", "mean", "sigma", "laplace_ks", "gauss_ks",
              "laplace_preferred"});
  std::printf("%5s %5s %10s %10s %12s %12s %10s\n", "row", "col", "mean", "sigma",
              "KS(Laplace)", "KS(Gauss)", "prefers");

  int ac_laplace_wins = 0, ac_total = 0;
  for (int band : probe_bands) {
    const auto& data = samples[static_cast<std::size_t>(band)];
    const stats::LaplaceFit lf = stats::LaplaceFit::mle(data);
    const stats::GaussianFit gf = stats::GaussianFit::mle(data);
    const double ks_l = stats::ks_distance(data, lf);
    const double ks_g = stats::ks_distance(data, gf);
    const bool laplace_better =
        stats::log_likelihood(data, lf) > stats::log_likelihood(data, gf);
    if (band != 0) {
      ++ac_total;
      if (laplace_better) ++ac_laplace_wins;
    }
    double mean = 0.0;
    for (double v : data) mean += v;
    mean /= static_cast<double>(data.size());
    std::printf("%5d %5d %10.2f %10.2f %12.4f %12.4f %10s\n", band / 8, band % 8, mean,
                gf.sigma, ks_l, ks_g, laplace_better ? "Laplace" : "Gauss");
    out.row({std::to_string(band / 8), std::to_string(band % 8), bench::fmt(mean, 2),
             bench::fmt(gf.sigma, 2), bench::fmt(ks_l, 4), bench::fmt(ks_g, 4),
             laplace_better ? "1" : "0"});
  }
  std::printf("\nAC bands preferring the Laplace model: %d / %d\n", ac_laplace_wins, ac_total);
  std::printf("(expect: most AC bands are closer to Laplace; AC means are ~0)\n");
  std::printf("json: %s\n", out.path().c_str());
  return 0;
}
