// Multi-tenant serving bench: does digest-affinity sharding keep
// per-worker table caches warm under a realistic skewed tenant mix?
//
// Load: N registry tenants (distinct base quantization-table pairs), each
// requested at two qualities — 2N distinct encode configurations — drawn
// from a Zipf-skewed, LCG-seeded schedule (a few tenants dominate, a long
// tail trickles, exactly like production multi-tenancy). The per-worker
// scaled-table LRU is deliberately smaller than the number of live
// configurations, so scheduling decides whether workers keep re-deriving
// tables and quantization state or reuse them.
//
// Scenarios (one row each in BENCH_multitenant.json):
//   * sharded       — digest-affinity sharding + work stealing (the
//     default service configuration): each worker's shard sees a stable
//     slice of the configuration space.
//   * unsharded     — same worker count, one shared queue: every worker
//     sees every configuration and the small LRUs thrash.
//   * single-thread — one worker, the no-concurrency reference.
//
// The scheduling contract is a gate, not an observation: every payload
// from every scenario is checked against an expectation computed upfront
// with direct synchronous jpeg::encode calls under the registry's own
// entry (so sharded == unsharded == single-thread == synchronous, byte
// for byte), and the bench exits non-zero on any mismatch.
//
// Headline numbers (stamped as top-level JSON fields): the table-cache
// hit-rate delta and the context-rebuild delta, sharded vs unsharded.
//
// Usage: bench_multitenant [corpus_images] [requests_per_client]
//   corpus_images       — distinct 32x32 images cycled through (default 24)
//   requests_per_client — per client thread, per scenario (default 300;
//                         use something small like 40 for a CI smoke run)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "data/synthetic.hpp"
#include "jpeg/encoder.hpp"
#include "obs/trace.hpp"
#include "serve/digest.hpp"
#include "serve/registry.hpp"
#include "serve/service.hpp"

using namespace dnj;

namespace {

using Clock = std::chrono::steady_clock;

constexpr int kTenants = 12;
constexpr int kQualities[2] = {40, 75};
constexpr int kClients = 8;
constexpr int kWorkers = 8;
/// Per-worker scaled-table LRU capacity: well under the 24 live
/// configurations, so only affinity keeps a worker's cache warm.
constexpr std::size_t kTableCache = 6;

/// One request form: a reusable request plus the digest of its expected
/// payload (computed via direct synchronous jpeg::encode under the
/// registry's normalized tenant entry).
struct Form {
  serve::Request request;
  std::uint64_t want_digest = 0;
};

/// Deterministic LCG (never std::rand: the schedule must be bit-stable).
std::uint64_t lcg(std::uint64_t& state) {
  state = state * 6364136223846793005ULL + 1442695040888963407ULL;
  return state >> 33;
}

struct ScenarioResult {
  std::string name;
  int workers = 1;
  bool sharded = false;
  double seconds = 0.0;
  std::size_t ok = 0;
  bool identical = true;
  serve::ServiceStats stats;
};

ScenarioResult run_scenario(const std::string& name, const serve::ServiceConfig& cfg,
                            const std::vector<Form>& forms,
                            const std::vector<std::size_t>& schedule, int per_client) {
  serve::TranscodeService service(cfg);
  std::vector<std::size_t> ok(kClients, 0);
  std::vector<std::uint8_t> identical(kClients, 1);  // not vector<bool>: clients race

  const auto t0 = Clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      const std::size_t ci = static_cast<std::size_t>(c);
      // Open loop: fire the whole load first (blocking admission applies
      // backpressure at the queue), settle afterwards. Keeping the shard
      // queues deep is the point — affinity is a statement about what a
      // worker drains from a backlog, not about an idle service.
      std::vector<std::pair<std::future<serve::Response>, std::size_t>> inflight;
      inflight.reserve(static_cast<std::size_t>(per_client));
      for (int i = 0; i < per_client; ++i) {
        const std::size_t form =
            schedule[(static_cast<std::size_t>(i) * kClients + ci) % schedule.size()];
        inflight.emplace_back(service.submit(forms[form].request), form);
      }
      for (auto& [fut, form] : inflight) {
        const serve::Response r = fut.get();
        if (r.status != serve::Status::kOk) {
          identical[ci] = 0;
          continue;
        }
        ++ok[ci];
        if (serve::fnv1a(r.bytes.data(), r.bytes.size()) != forms[form].want_digest)
          identical[ci] = 0;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const auto t1 = Clock::now();
  service.shutdown();

  ScenarioResult res;
  res.name = name;
  res.workers = cfg.workers;
  res.sharded = cfg.shard_by_digest;
  res.seconds = std::chrono::duration<double>(t1 - t0).count();
  for (int c = 0; c < kClients; ++c) {
    res.ok += ok[static_cast<std::size_t>(c)];
    res.identical = res.identical && identical[static_cast<std::size_t>(c)] != 0;
  }
  res.stats = service.stats();
  return res;
}

double table_hit_rate(const serve::ServiceStats& st) {
  const std::uint64_t lookups = st.table_cache_hits + st.table_cache_misses;
  return lookups ? static_cast<double>(st.table_cache_hits) / static_cast<double>(lookups)
                 : 0.0;
}

std::uint64_t ctx_builds(const serve::ServiceStats& st) {
  return st.ctx_huffman_builds + st.ctx_reciprocal_builds + st.ctx_quality_table_builds;
}

std::string us_str(double us) { return bench::fmt(us, 1); }

}  // namespace

int main(int argc, char** argv) {
  const int corpus_images = argc > 1 ? std::atoi(argv[1]) : 24;
  const int per_client = argc > 2 ? std::atoi(argv[2]) : 300;
  if (corpus_images <= 0 || per_client <= 0) {
    std::fprintf(stderr, "bench_multitenant: bad arguments\n");
    return 1;
  }
#if !defined(_WIN32)
  // Give the worker pool real threads even on single-core CI boxes.
  // Never overrides a user's DNJ_THREADS.
  setenv("DNJ_THREADS", "8", 0);
#endif

  data::GeneratorConfig gen_cfg;
  gen_cfg.width = 32;
  gen_cfg.height = 32;
  gen_cfg.channels = 1;
  gen_cfg.num_classes = 8;
  gen_cfg.seed = 0x7E4A47;
  const data::Dataset ds =
      data::SyntheticDatasetGenerator(gen_cfg).generate((corpus_images + 7) / 8);

  // The tenant set: every tenant gets its own base pair (Annex K scaled to
  // a tenant-specific operating point), registered once in a shared
  // registry. Expectations come from the registry's own normalized entry,
  // so the gate covers the registration-normalization path too.
  auto registry = std::make_shared<serve::TableRegistry>();
  for (int t = 0; t < kTenants; ++t) {
    jpeg::EncoderConfig base;
    base.use_custom_tables = true;
    base.luma_table = jpeg::QuantTable::annex_k_luma().scaled(20 + t * 6);
    base.chroma_table = jpeg::QuantTable::annex_k_chroma().scaled(20 + t * 6);
    base.subsampling = jpeg::Subsampling::k444;
    registry->put("tenant-" + std::to_string(t), base);
  }

  // Request forms: tenant x quality x corpus image, with synchronous
  // expectations.
  std::vector<Form> forms;
  for (int t = 0; t < kTenants; ++t) {
    const std::shared_ptr<const serve::TenantEntry> entry =
        registry->find("tenant-" + std::to_string(t));
    for (const int quality : kQualities) {
      jpeg::EncoderConfig want_cfg = entry->base;
      want_cfg.luma_table = entry->base.luma_table.scaled(quality);
      want_cfg.chroma_table = entry->base.chroma_table.scaled(quality);
      for (const data::Sample& s : ds.samples) {
        Form f;
        f.request.kind = serve::RequestKind::kDeepnEncode;
        f.request.image = s.image;
        f.request.quality = quality;
        f.request.tenant = entry->name;
        const std::vector<std::uint8_t> want = jpeg::encode(s.image, want_cfg);
        f.want_digest = serve::fnv1a(want.data(), want.size());
        forms.push_back(std::move(f));
      }
    }
  }

  // Skewed schedule over (tenant, quality, image): tenant t drawn with
  // Zipf-like weight 1/sqrt(t+1) (popular tenants dominate, the tail still
  // carries real traffic), then quality and image uniformly. Shared by all
  // scenarios so they serve the exact same request sequence.
  std::vector<double> cdf(kTenants);
  double total_weight = 0.0;
  for (int t = 0; t < kTenants; ++t) {
    total_weight += 1.0 / std::sqrt(static_cast<double>(t + 1));
    cdf[static_cast<std::size_t>(t)] = total_weight;
  }
  const std::size_t per_tenant = 2 * ds.size();  // forms per tenant
  std::uint64_t rng = 0xD1635757ULL;
  std::vector<std::size_t> schedule(static_cast<std::size_t>(kClients) *
                                    static_cast<std::size_t>(per_client));
  for (std::size_t& slot : schedule) {
    const double u = static_cast<double>(lcg(rng) % 1000000) / 1000000.0 * total_weight;
    std::size_t tenant = 0;
    while (tenant + 1 < static_cast<std::size_t>(kTenants) && cdf[tenant] <= u) ++tenant;
    slot = tenant * per_tenant + lcg(rng) % per_tenant;
  }

  serve::ServiceConfig base_cfg;
  base_cfg.workers = kWorkers;
  // Capacity splits per shard, and the Zipf-hot shard must be able to hold
  // its whole (majority) share of the backlog — a tight queue would block
  // producers on the hot shard while the cold shards starve, and the
  // resulting steal storm would measure the queue bound, not affinity.
  base_cfg.queue_capacity = static_cast<std::size_t>(kClients) *
                            static_cast<std::size_t>(per_client) *
                            static_cast<std::size_t>(kWorkers);
  base_cfg.max_batch = 8;
  base_cfg.cache_capacity = 0;  // measure encodes, not result-cache replay
  base_cfg.table_cache_capacity = kTableCache;
  base_cfg.registry = registry;

  std::vector<ScenarioResult> results;
  {
    serve::ServiceConfig cfg = base_cfg;  // shard_by_digest/steal default on
    results.push_back(run_scenario("sharded", cfg, forms, schedule, per_client));
  }
  {
    serve::ServiceConfig cfg = base_cfg;
    cfg.shard_by_digest = false;
    results.push_back(run_scenario("unsharded", cfg, forms, schedule, per_client));
  }
  {
    serve::ServiceConfig cfg = base_cfg;
    cfg.workers = 1;
    results.push_back(run_scenario("single-thread", cfg, forms, schedule, per_client));
  }
  {
    // Observability overhead on the default (sharded) configuration with
    // every request traced — the tenant-skewed load is the worst case for
    // tracing because per-job spans ride every batch. The identity gate
    // applies to this row like any other: tracing must not move a byte.
    obs::Tracer::instance().set_sample_every(1);
    results.push_back(run_scenario("sharded-obs-full", base_cfg, forms, schedule,
                                   per_client));
    obs::Tracer::instance().set_sample_every(0);
  }

  bool all_identical = true;
  bench::JsonWriter json("BENCH_multitenant");
  json.field("bench", "multitenant");
  json.field("tenants", kTenants);
  json.field("configs", static_cast<std::size_t>(kTenants) * 2);
  json.field("corpus_images", ds.size());
  json.field("clients", kClients);
  json.field("requests_per_client", per_client);
  json.field("table_cache_capacity", kTableCache);
  json.begin_rows({"scenario", "workers", "sharded", "shards", "steals", "ok",
                   "seconds", "rps", "svc_p50_us", "svc_p95_us", "svc_p99_us",
                   "total_p99_us", "queue_high_water", "batches", "max_batch_seen",
                   "table_hit_rate", "ctx_builds", "identical"});
  std::printf(
      "bench_multitenant: %d tenants x 2 qualities, %zu corpus images, "
      "%d clients x %d requests\n",
      kTenants, ds.size(), kClients, per_client);
  for (const ScenarioResult& r : results) {
    all_identical = all_identical && r.identical;
    const serve::ServiceStats& st = r.stats;
    const double rps = static_cast<double>(r.ok) / r.seconds;
    json.row({r.name, std::to_string(r.workers), r.sharded ? "yes" : "no",
              std::to_string(st.shard_count), std::to_string(st.steals),
              std::to_string(r.ok), bench::fmt(r.seconds, 3), bench::fmt(rps, 1),
              us_str(st.service_time.p50_us), us_str(st.service_time.p95_us),
              us_str(st.service_time.p99_us), us_str(st.total.p99_us),
              std::to_string(st.queue_high_water), std::to_string(st.batches),
              std::to_string(st.max_batch),
              bench::fmt(table_hit_rate(st), 3), std::to_string(ctx_builds(st)),
              r.identical ? "yes" : "NO"});
    std::printf(
        "  %-14s %6.2fs  %8.0f req/s  shards=%llu steals=%llu  "
        "table hit=%.3f  ctx builds=%llu  %s\n",
        r.name.c_str(), r.seconds, rps, static_cast<unsigned long long>(st.shard_count),
        static_cast<unsigned long long>(st.steals), table_hit_rate(st),
        static_cast<unsigned long long>(ctx_builds(st)),
        r.identical ? "identical" : "MISMATCH");
  }
  json.end_rows();

  // Headline deltas, sharded vs unsharded (same workers, same schedule):
  // positive hit-rate delta and positive rebuild saving = affinity doing
  // its job.
  const double hit_delta = table_hit_rate(results[0].stats) - table_hit_rate(results[1].stats);
  const std::uint64_t builds_sharded = ctx_builds(results[0].stats);
  const std::uint64_t builds_unsharded = ctx_builds(results[1].stats);
  json.field("table_hit_rate_sharded", table_hit_rate(results[0].stats));
  json.field("table_hit_rate_unsharded", table_hit_rate(results[1].stats));
  json.field("table_hit_rate_delta", hit_delta);
  json.field("ctx_builds_sharded", static_cast<std::size_t>(builds_sharded));
  json.field("ctx_builds_unsharded", static_cast<std::size_t>(builds_unsharded));
  json.field("ctx_builds_saved",
             static_cast<std::size_t>(
                 builds_unsharded > builds_sharded ? builds_unsharded - builds_sharded : 0));
  json.field("all_identical", all_identical);
  std::printf("  table hit-rate delta (sharded - unsharded) = %+.3f, "
              "ctx builds %llu -> %llu\n",
              hit_delta, static_cast<unsigned long long>(builds_unsharded),
              static_cast<unsigned long long>(builds_sharded));
  std::printf("  wrote %s\n", json.path().c_str());

  if (!all_identical) {
    std::fprintf(stderr,
                 "bench_multitenant: scenario payloads differ from synchronous calls!\n");
    return 1;
  }
  return 0;
}
