// Closed/open-loop load generator for the serving layer (src/serve).
//
// Scenarios (one row each in BENCH_serve.json):
//   * encode-closed        — closed loop (each client keeps exactly one
//     request outstanding), uniform-config encode stream: the batching
//     best case.
//   * encode-closed-nobatch — same load with micro-batching disabled, so
//     the batching delta is visible in the trajectory.
//   * mixed-closed         — closed loop over a mixed encode / decode /
//     transcode / deepn-encode stream with a warm result cache.
//   * open-burst-reject    — open loop: clients fire the whole load as
//     fast as they can at a small queue under the reject policy; measures
//     goodput and the rejection rate under overload.
//
// Every completed (kOk) response is checked byte-for-byte against an
// expectation computed upfront with direct synchronous jpeg:: calls — the
// serving determinism contract is a gate here exactly like the
// serial-vs-parallel gate in bench_transcode: the bench exits non-zero on
// any mismatch.
//
// Usage: bench_serve [corpus_images] [requests_per_client]
//   corpus_images       — distinct 32x32 images cycled through (default 48)
//   requests_per_client — per client thread, per scenario (default 400;
//                         use something small like 150 for a CI smoke run)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "api/convert.hpp"
#include "api/dnj.hpp"
#include "bench_common.hpp"
#include "data/synthetic.hpp"
#include "jpeg/codec.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/digest.hpp"
#include "serve/service.hpp"

using namespace dnj;

namespace {

using Clock = std::chrono::steady_clock;

/// One request form: a reusable request plus the digest of its expected
/// payload (computed via direct synchronous calls).
struct Form {
  serve::Request request;
  std::uint64_t want_digest = 0;
};

std::uint64_t response_digest(const serve::Response& r) {
  std::uint64_t h = serve::fnv1a(r.bytes.data(), r.bytes.size());
  h = serve::digest_image(r.image, h);
  return serve::fnv1a(r.probs.data(), r.probs.size() * sizeof(float), h);
}

/// Expectations run through the public façade (api::Codec) — the gate
/// below therefore pins the serving determinism contract AND the façade
/// identity at once: served payloads == synchronous façade payloads ==
/// the direct jpeg:: calls (the latter equality is pinned separately by
/// tests/test_api.cpp).
std::uint64_t expected_digest_for(const serve::Request& req, const serve::ServiceConfig& cfg) {
  static api::Session session;
  const api::Codec codec = session.codec();
  const auto must = [](auto result) {
    if (!result.ok()) {
      std::fprintf(stderr, "bench_serve: facade expectation failed: %s\n",
                   result.status().code_name());
      std::exit(1);
    }
    return result.take();
  };
  serve::Response want;
  switch (req.kind) {
    case serve::RequestKind::kEncode:
      want.bytes = must(codec.encode(req.image.view(), api::detail::from_config(req.config)));
      break;
    case serve::RequestKind::kDecode: {
      api::DecodedImage img = must(codec.decode(req.bytes));
      want.image =
          image::Image(img.width, img.height, img.channels, std::move(img.pixels));
      break;
    }
    case serve::RequestKind::kTranscode:
      want.bytes =
          must(codec.transcode(req.bytes, api::detail::from_config(req.config)));
      break;
    case serve::RequestKind::kDeepnEncode: {
      jpeg::EncoderConfig dcfg;
      dcfg.use_custom_tables = true;
      dcfg.luma_table = cfg.deepn_luma.scaled(req.quality);
      dcfg.chroma_table = cfg.deepn_chroma.scaled(req.quality);
      dcfg.subsampling = jpeg::Subsampling::k444;
      want.bytes = must(codec.encode(req.image.view(), api::detail::from_config(dcfg)));
      break;
    }
    case serve::RequestKind::kInfer:
      break;  // not exercised by the bench (needs a model)
  }
  return response_digest(want);
}

struct ScenarioResult {
  std::string name;
  int max_batch = 1;          ///< configured batching limit
  std::size_t cache = 0;      ///< configured result-cache capacity
  double seconds = 0.0;
  std::size_t requests = 0;
  std::size_t ok = 0;
  std::size_t rejected = 0;
  bool identical = true;
  serve::ServiceStats stats;
};

/// Runs one scenario: `clients` threads each submit `per_client` requests
/// cycled over `forms`. Closed loop waits every future immediately (one
/// outstanding request per client); open loop fires everything first and
/// collects afterwards.
ScenarioResult run_scenario(const std::string& name, const serve::ServiceConfig& cfg,
                            const std::vector<Form>& forms, int clients, int per_client,
                            bool closed_loop) {
  serve::TranscodeService service(cfg);
  std::vector<std::size_t> ok(static_cast<std::size_t>(clients), 0);
  std::vector<std::size_t> rejected(static_cast<std::size_t>(clients), 0);
  // Per-client slots written concurrently — plain byte array, NOT
  // vector<bool> (whose packed bits would race across clients).
  std::vector<std::uint8_t> identical(static_cast<std::size_t>(clients), 1);

  const auto t0 = Clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const std::size_t ci = static_cast<std::size_t>(c);
      std::vector<std::pair<std::future<serve::Response>, std::size_t>> inflight;
      const auto settle = [&](std::future<serve::Response> fut, std::size_t form) {
        const serve::Response r = fut.get();
        if (r.status == serve::Status::kOk) {
          ++ok[ci];
          if (response_digest(r) != forms[form].want_digest) identical[ci] = 0;
        } else if (r.status == serve::Status::kRejected) {
          ++rejected[ci];
        } else {
          identical[ci] = 0;  // unexpected shutdown/error counts as failure
        }
      };
      for (int i = 0; i < per_client; ++i) {
        // Interleave clients through the form list so concurrent clients
        // exercise different configs at the same time.
        const std::size_t form =
            (static_cast<std::size_t>(i) * static_cast<std::size_t>(clients) + ci) %
            forms.size();
        std::future<serve::Response> fut = service.submit(forms[form].request);
        if (closed_loop)
          settle(std::move(fut), form);
        else
          inflight.emplace_back(std::move(fut), form);
      }
      for (auto& [fut, form] : inflight) settle(std::move(fut), form);
    });
  }
  for (std::thread& t : threads) t.join();
  const auto t1 = Clock::now();

  service.shutdown();
  ScenarioResult res;
  res.name = name;
  res.max_batch = cfg.max_batch;
  res.cache = cfg.cache_capacity;
  res.seconds = std::chrono::duration<double>(t1 - t0).count();
  res.requests = static_cast<std::size_t>(clients) * static_cast<std::size_t>(per_client);
  for (int c = 0; c < clients; ++c) {
    res.ok += ok[static_cast<std::size_t>(c)];
    res.rejected += rejected[static_cast<std::size_t>(c)];
    res.identical = res.identical && identical[static_cast<std::size_t>(c)] != 0;
  }
  res.stats = service.stats();
  return res;
}

std::string us_str(double us) { return bench::fmt(us, 1); }

}  // namespace

int main(int argc, char** argv) {
  const int corpus_images = argc > 1 ? std::atoi(argv[1]) : 48;
  const int per_client = argc > 2 ? std::atoi(argv[2]) : 400;
  if (corpus_images <= 0 || per_client <= 0) {
    std::fprintf(stderr, "bench_serve: bad arguments\n");
    return 1;
  }
#if !defined(_WIN32)
  // The worker pool sizes itself to hardware concurrency; give the
  // scenarios real workers even on single-core CI boxes. Never overrides a
  // user's DNJ_THREADS.
  setenv("DNJ_THREADS", "8", 0);
#endif

  data::GeneratorConfig gen_cfg;
  gen_cfg.width = 32;
  gen_cfg.height = 32;
  gen_cfg.channels = 1;
  gen_cfg.num_classes = 8;
  gen_cfg.seed = 0x5E7E;
  const data::Dataset ds =
      data::SyntheticDatasetGenerator(gen_cfg).generate((corpus_images + 7) / 8);

  serve::ServiceConfig base_cfg;
  base_cfg.workers = static_cast<int>(
      std::min<unsigned>(4, std::max(1u, runtime::ThreadPool::default_threads())));
  base_cfg.queue_capacity = 128;
  base_cfg.max_batch = 8;
  base_cfg.cache_capacity = 0;
  base_cfg.deepn_luma = jpeg::QuantTable::annex_k_luma();
  base_cfg.deepn_chroma = jpeg::QuantTable::annex_k_chroma();

  jpeg::EncoderConfig enc_cfg;
  enc_cfg.quality = 85;
  enc_cfg.subsampling = jpeg::Subsampling::k444;
  jpeg::EncoderConfig alt_cfg;
  alt_cfg.quality = 45;
  alt_cfg.subsampling = jpeg::Subsampling::k444;

  // Request forms + their synchronous expectations (the identity gate).
  std::vector<Form> encode_forms;
  std::vector<Form> mixed_forms;
  for (const data::Sample& s : ds.samples) {
    Form enc;
    enc.request.kind = serve::RequestKind::kEncode;
    enc.request.image = s.image;
    enc.request.config = enc_cfg;
    enc.want_digest = expected_digest_for(enc.request, base_cfg);
    encode_forms.push_back(enc);
    mixed_forms.push_back(encode_forms.back());

    const std::vector<std::uint8_t> stored = jpeg::encode(s.image, enc_cfg);
    Form dec;
    dec.request.kind = serve::RequestKind::kDecode;
    dec.request.bytes = stored;
    dec.want_digest = expected_digest_for(dec.request, base_cfg);
    mixed_forms.push_back(std::move(dec));

    Form xcode;
    xcode.request.kind = serve::RequestKind::kTranscode;
    xcode.request.bytes = stored;
    xcode.request.config = alt_cfg;
    xcode.want_digest = expected_digest_for(xcode.request, base_cfg);
    mixed_forms.push_back(std::move(xcode));

    Form deepn;
    deepn.request.kind = serve::RequestKind::kDeepnEncode;
    deepn.request.image = s.image;
    deepn.request.quality = 35;
    deepn.want_digest = expected_digest_for(deepn.request, base_cfg);
    mixed_forms.push_back(std::move(deepn));
  }

  const int clients = 4;
  std::vector<ScenarioResult> results;

  {
    serve::ServiceConfig cfg = base_cfg;
    results.push_back(
        run_scenario("encode-closed", cfg, encode_forms, clients, per_client, true));
  }
  {
    serve::ServiceConfig cfg = base_cfg;
    cfg.max_batch = 1;
    results.push_back(
        run_scenario("encode-closed-nobatch", cfg, encode_forms, clients, per_client, true));
  }
  {
    serve::ServiceConfig cfg = base_cfg;
    cfg.cache_capacity = 512;
    results.push_back(
        run_scenario("mixed-closed", cfg, mixed_forms, clients, per_client, true));
  }
  {
    serve::ServiceConfig cfg = base_cfg;
    cfg.admission = serve::AdmissionPolicy::kReject;
    cfg.queue_capacity = 16;
    results.push_back(
        run_scenario("open-burst-reject", cfg, encode_forms, clients, per_client, false));
  }
  {
    // Observability overhead: the encode-closed load with the span tracer
    // off / sampled 1-in-16 / recording every request. The identity gate
    // runs in all three modes — tracing must never touch payload bytes —
    // and the obs-off row pins that a disabled tracer costs (near) nothing.
    const struct {
      const char* name;
      std::uint32_t sample;
    } modes[] = {{"obs-off", 0}, {"obs-sampled", 16}, {"obs-full", 1}};
    for (const auto& mode : modes) {
      obs::Tracer::instance().set_sample_every(mode.sample);
      results.push_back(
          run_scenario(mode.name, base_cfg, encode_forms, clients, per_client, true));
    }
    obs::Tracer::instance().set_sample_every(0);
  }

  bool all_identical = true;
  bench::JsonWriter json("BENCH_serve");
  json.field("bench", "serve");
  json.field("corpus_images", ds.size());
  json.field("clients", clients);
  json.field("requests_per_client", per_client);
  json.field("workers", base_cfg.workers);
  json.begin_rows({"scenario", "max_batch", "cache", "requests", "ok", "rejected",
                   "seconds", "rps", "queue_p50_us", "queue_p95_us", "queue_p99_us",
                   "svc_p50_us", "svc_p95_us", "svc_p99_us", "total_p99_us",
                   "cache_hit_rate", "max_batch_seen", "identical"});
  std::printf("bench_serve: %zu corpus images, %d clients x %d requests, %d workers\n",
              ds.size(), clients, per_client, base_cfg.workers);
  for (const ScenarioResult& r : results) {
    all_identical = all_identical && r.identical;
    const serve::ServiceStats& st = r.stats;
    const std::uint64_t cache_lookups = st.cache_hits + st.cache_misses;
    const double hit_rate =
        cache_lookups ? static_cast<double>(st.cache_hits) / static_cast<double>(cache_lookups)
                      : 0.0;
    const double rps = static_cast<double>(r.ok) / r.seconds;
    json.row({r.name, std::to_string(r.max_batch), std::to_string(r.cache),
              std::to_string(r.requests), std::to_string(r.ok), std::to_string(r.rejected),
              bench::fmt(r.seconds, 3), bench::fmt(rps, 1),
              us_str(st.queue_wait.p50_us), us_str(st.queue_wait.p95_us),
              us_str(st.queue_wait.p99_us), us_str(st.service_time.p50_us),
              us_str(st.service_time.p95_us), us_str(st.service_time.p99_us),
              us_str(st.total.p99_us), bench::fmt(hit_rate, 3),
              std::to_string(st.max_batch), r.identical ? "yes" : "NO"});
    std::printf(
        "  %-22s %6.2fs  %8.0f req/s  ok=%zu rej=%zu  q p50/p95/p99 = %s/%s/%s us  "
        "svc p50/p95/p99 = %s/%s/%s us  hit=%.2f  batch<=%llu  %s\n",
        r.name.c_str(), r.seconds, rps, r.ok, r.rejected,
        us_str(st.queue_wait.p50_us).c_str(), us_str(st.queue_wait.p95_us).c_str(),
        us_str(st.queue_wait.p99_us).c_str(), us_str(st.service_time.p50_us).c_str(),
        us_str(st.service_time.p95_us).c_str(), us_str(st.service_time.p99_us).c_str(),
        hit_rate, static_cast<unsigned long long>(st.max_batch),
        r.identical ? "identical" : "MISMATCH");
  }
  json.end_rows();
  json.field("all_identical", all_identical);
  std::printf("  wrote %s\n", json.path().c_str());

  if (!all_identical) {
    std::fprintf(stderr, "bench_serve: async responses differ from synchronous calls!\n");
    return 1;
  }
  return 0;
}
