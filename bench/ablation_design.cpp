// Design-choice ablations for the DeepN-JPEG table (the decisions DESIGN.md
// calls out):
//   1. Magnitude-based vs position-based band segmentation feeding the PLM.
//   2. Dataset-derived PLM thresholds vs the paper's ImageNet constants.
//   3. PLM heuristic vs simulated-annealing table search (paper ref [23]) —
//      including design-time cost, the reason the paper rejects search.
//   4. Default vs per-image optimized Huffman tables under the DeepN table.
#include <chrono>
#include <cstdio>

#include "core/sa_optimizer.hpp"
#include "bench_common.hpp"

using namespace dnj;

namespace {

struct Row {
  std::string name;
  double cr;
  double acc;
  double design_ms;
};

}  // namespace

int main() {
  std::printf("=== Ablations: quantization-table design choices ===\n");
  bench::ExperimentEnv env = bench::make_env();
  nn::LayerPtr model = bench::train_model(nn::ModelKind::kMiniAlexNet, env.train);
  const double base_acc = nn::evaluate(*model, env.test);
  std::printf("original accuracy: %.4f\n\n", base_acc);

  using clock = std::chrono::steady_clock;
  std::vector<Row> rows;

  auto measure = [&](const std::string& name, const jpeg::QuantTable& table,
                     double design_ms, bool optimize_huffman = false) {
    std::size_t train_b = 0, test_b = 0;
    core::TranscodeResult tr =
        core::transcode(env.train, core::custom_table_config(table, optimize_huffman));
    train_b = tr.scan_bytes;
    core::TranscodeResult te =
        core::transcode(env.test, core::custom_table_config(table, optimize_huffman));
    test_b = te.scan_bytes;
    const double cr = core::compression_rate(env.reference_bytes, train_b + test_b);
    const double acc = nn::evaluate(*model, te.dataset);
    rows.push_back({name, cr, acc, design_ms});
  };

  const core::FrequencyProfile profile = core::analyze(env.train);

  // 1. Full DeepN-JPEG design (magnitude-based + dataset thresholds).
  {
    const auto t0 = clock::now();
    const core::DesignResult d = core::DeepNJpeg::design(env.train);
    const double ms = std::chrono::duration<double, std::milli>(clock::now() - t0).count();
    measure("PLM magnitude", d.table, ms);
  }

  // 2. PLM fed by *position-based* importance: each band keeps its sigma,
  //    but thresholds use the paper constants so low zig-zag positions are
  //    treated as important regardless of measured energy.
  {
    const auto t0 = clock::now();
    core::PlmParams paper = core::PlmParams::paper_defaults();
    const jpeg::QuantTable table = core::plm_quant_table(profile, paper);
    const double ms = std::chrono::duration<double, std::milli>(clock::now() - t0).count();
    measure("PLM paper-T1T2", table, ms);
  }

  // 3. Simulated-annealing search from a uniform start.
  {
    const auto t0 = clock::now();
    core::SaConfig sa;
    sa.iterations = 600;
    const core::SaResult res =
        core::anneal_table(env.train, profile, jpeg::QuantTable::uniform(8), sa);
    const double ms = std::chrono::duration<double, std::milli>(clock::now() - t0).count();
    measure("SA search", res.table, ms);
  }

  // 4. DeepN table + per-image optimal Huffman coding.
  {
    const core::DesignResult d = core::DeepNJpeg::design(env.train);
    measure("PLM + optHuff", d.table, 0.0, /*optimize_huffman=*/true);
  }

  bench::JsonWriter out("ablation_design");
  out.begin_rows({"variant", "cr", "accuracy", "design_ms"});
  std::printf("%-16s %10s %10s %12s\n", "variant", "CR", "accuracy", "design ms");
  for (const Row& r : rows) {
    std::printf("%-16s %10.2f %10.4f %12.1f\n", r.name.c_str(), r.cr, r.acc, r.design_ms);
    out.row({r.name, bench::fmt(r.cr, 2), bench::fmt(r.acc, 4), bench::fmt(r.design_ms, 1)});
  }
  std::printf("(expect: the magnitude-based PLM heuristic is at or near the search result\n");
  std::printf(" at a fraction of the design cost — the paper's argument for a heuristic)\n");
  std::printf("json: %s\n", out.path().c_str());
  return 0;
}
