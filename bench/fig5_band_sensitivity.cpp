// Fig. 5: DNN accuracy sensitivity to the quantization step applied to one
// frequency band group at a time (all other bands kept at Q = 1), comparing
// the paper's magnitude-based segmentation against the conventional
// position-based one. Paper shape: magnitude-based tolerates larger steps in
// MF/HF without accuracy loss; LF accuracy starts dropping at small Q
// (=> Qmin = 5).
#include <cstdio>

#include "core/frequency_edit.hpp"
#include "bench_common.hpp"

using namespace dnj;

namespace {

double eval_band_quant(nn::Layer& model, const data::Dataset& test,
                       const core::BandSplit& split, core::Band band, int q) {
  data::Dataset edited;
  edited.num_classes = test.num_classes;
  edited.samples.reserve(test.size());
  for (const data::Sample& s : test.samples)
    edited.samples.push_back({core::quantize_band_only(s.image, split, band, q), s.label});
  return nn::evaluate(model, edited);
}

}  // namespace

int main() {
  std::printf("=== Fig 5: band sensitivity, magnitude-based vs position-based ===\n");
  bench::ExperimentEnv env = bench::make_env();
  nn::LayerPtr model = bench::train_model(nn::ModelKind::kMiniAlexNet, env.train);
  const double base_acc = nn::evaluate(*model, env.test);
  std::printf("baseline accuracy (no band quantization): %.4f\n\n", base_acc);

  const core::FrequencyProfile profile = core::analyze(env.train);
  const core::BandSplit magnitude = core::magnitude_based(profile);
  const core::BandSplit position = core::position_based();

  struct Sweep {
    core::Band band;
    const char* name;
    std::vector<int> steps;
  };
  // Step sweeps span to the point where quantization actually zeroes the
  // strongest coefficients of our 32x32 synthetic classes; the paper's
  // ImageNet axes (LF to 40, MF to 60, HF to 80) scale correspondingly.
  const Sweep sweeps[] = {
      {core::Band::kLF, "LF", {1, 5, 20, 60, 120, 255, 511}},
      {core::Band::kMF, "MF", {1, 20, 60, 120, 255, 511}},
      {core::Band::kHF, "HF", {1, 40, 80, 160, 255, 511}},
  };

  bench::JsonWriter out("fig5_band_sensitivity");
  out.begin_rows({"band", "q", "magnitude_norm_acc", "position_norm_acc"});

  for (const Sweep& sweep : sweeps) {
    std::printf("--- %s band (normalized accuracy) ---\n", sweep.name);
    std::printf("%6s %18s %18s\n", "Q", "magnitude based", "position based");
    for (int q : sweep.steps) {
      const double mag = eval_band_quant(*model, env.test, magnitude, sweep.band, q) / base_acc;
      const double pos = eval_band_quant(*model, env.test, position, sweep.band, q) / base_acc;
      std::printf("%6d %18.4f %18.4f\n", q, mag, pos);
      out.row({sweep.name, std::to_string(q), bench::fmt(mag, 4), bench::fmt(pos, 4)});
    }
  }
  std::printf("(expect: magnitude-based HF never degrades while position-based HF does —\n");
  std::printf(" the paper's core observation; LF/MF degrade once steps zero strong bands)\n");
  std::printf("json: %s\n", out.path().c_str());
  return 0;
}
