// Perf baseline for the planar block-batch codec core: times each pipeline
// stage (tile, DCT, quant+zigzag, entropy) in isolation, then the full
// transcode-style encode through the reference per-block path vs the
// zero-alloc CodecContext pipeline, and records everything to
// bench_results/BENCH_codec_pipeline.json so future PRs have a per-stage
// trajectory. The encode comparison doubles as an end-to-end equivalence
// smoke: the two paths must produce byte-identical streams.
//
// Usage: bench_codec_pipeline [num_images] [repeats]
//   num_images — dataset size (default 256)
//   repeats    — timed repetitions per measurement; best run reported
//                (default 3; use 1 for a CI smoke run)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_common.hpp"
#include "image/blocks.hpp"
#include "image/color.hpp"
#include "jpeg/bitio.hpp"
#include "jpeg/block_coder.hpp"
#include "jpeg/codec.hpp"
#include "jpeg/dct.hpp"
#include "jpeg/pipeline/codec_context.hpp"
#include "jpeg/quant.hpp"
#include "simd/dispatch.hpp"

using namespace dnj;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

template <typename Fn>
double best_of(int repeats, Fn&& fn) {
  double best = 1e100;
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    best = std::min(best, seconds_since(t0));
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const int num_images = argc > 1 ? std::atoi(argv[1]) : 256;
  const int repeats = argc > 2 ? std::max(1, std::atoi(argv[2])) : 3;
  if (num_images <= 0) {
    std::fprintf(stderr, "bench_codec_pipeline: bad image count\n");
    return 1;
  }
#if !defined(_WIN32)
  // The restart-parallel rows below ask for up to 8 threads; give the pool
  // real workers even on single-core CI boxes (the pool otherwise sizes
  // itself to hardware concurrency). Never overrides a user's DNJ_THREADS.
  setenv("DNJ_THREADS", "8", 0);
#endif

  // Transcode-style workload: the dataset shape every experiment re-encodes
  // millions of times (32x32 grayscale, 4:4:4, q = 85).
  data::GeneratorConfig gen_cfg;
  gen_cfg.width = 32;
  gen_cfg.height = 32;
  gen_cfg.channels = 1;
  gen_cfg.num_classes = 8;
  gen_cfg.seed = 0xC0DEC;
  const data::Dataset ds =
      data::SyntheticDatasetGenerator(gen_cfg).generate((num_images + 7) / 8);

  jpeg::EncoderConfig enc_cfg;
  enc_cfg.quality = 85;
  enc_cfg.subsampling = jpeg::Subsampling::k444;

  // --- per-stage throughput (single thread, one warm context) -------------
  jpeg::pipeline::CodecContext ctx;
  const auto [luma_q, chroma_q] = jpeg::effective_tables(enc_cfg);
  (void)chroma_q;
  const int bx = image::padded_dim(gen_cfg.width) / image::kBlockDim;
  const int by = image::padded_dim(gen_cfg.height) / image::kBlockDim;
  const std::size_t blocks_per_image = static_cast<std::size_t>(bx) * by;
  const std::size_t total_blocks = blocks_per_image * ds.size();

  // Per-image working set so every stage runs over real per-image content
  // (entropy cost is content-dependent). The DCT inputs are restored from
  // a pristine tiled copy before every timed repeat (untimed) so repeats
  // never transform already-transformed data — the quant and entropy
  // stages below see exactly one DCT application.
  std::vector<jpeg::pipeline::CoeffPlane> coeffs(ds.size());
  std::vector<jpeg::pipeline::CoeffPlane> tiled(ds.size());
  std::vector<jpeg::pipeline::QuantPlane> quants(ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    coeffs[i].reshape(bx, by);
    tiled[i].reshape(bx, by);
    quants[i].reshape(bx, by);
  }

  // Stage bodies shared by the ambient measurement below and the per-level
  // SIMD rows further down, so the timing discipline (pristine-copy restore
  // before every DCT repeat, quant-then-idct pairing) exists exactly once.
  const jpeg::ReciprocalTable recip(luma_q);
  // Plain local copy: structured bindings cannot be captured by lambdas in
  // C++17.
  const jpeg::QuantTable dq_table = luma_q;
  const auto measure_tile = [&] {
    return best_of(repeats, [&] {
      for (std::size_t i = 0; i < ds.size(); ++i)
        image::tile_image_blocks_into(ds.samples[i].image, 0, bx, by, tiled[i].data(),
                                      -128.0f);
    });
  };
  // Restores the DCT inputs from the pristine tiled copy before every timed
  // repeat (untimed) so repeats never transform already-transformed data —
  // and leaves `coeffs` holding exactly one DCT application for the quant
  // and entropy stages.
  const auto measure_dct = [&] {
    double best = 1e100;
    for (int r = 0; r < repeats; ++r) {
      for (std::size_t i = 0; i < ds.size(); ++i)
        std::copy(tiled[i].data(), tiled[i].data() + tiled[i].block_count() * 64,
                  coeffs[i].data());
      const auto t0 = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < ds.size(); ++i)
        jpeg::fdct_batch(coeffs[i].data(), coeffs[i].block_count());
      best = std::min(best, seconds_since(t0));
    }
    return best;
  };
  const auto measure_quant = [&] {
    return best_of(repeats, [&] {
      for (std::size_t i = 0; i < ds.size(); ++i)
        jpeg::quantize_zigzag_batch(coeffs[i].data(), coeffs[i].block_count(), recip,
                                    quants[i].data());
    });
  };
  // Decode-side pair: dequantize is cheap, idct dominates. Quant planes
  // hold zig-zag data but the kernels are order-oblivious, so this is a
  // faithful throughput probe. Clobbers `coeffs`.
  const auto measure_dequant_idct = [&] {
    return best_of(repeats, [&] {
      for (std::size_t i = 0; i < ds.size(); ++i) {
        jpeg::dequantize_batch(quants[i].data(), quants[i].block_count(), dq_table,
                               coeffs[i].data());
        jpeg::idct_batch(coeffs[i].data(), coeffs[i].block_count());
      }
    });
  };

  const double tile_s = measure_tile();
  const double dct_s = measure_dct();
  const double quant_s = measure_quant();

  const jpeg::pipeline::CodecContext::StaticHuffman& huff = ctx.static_huffman();
  std::vector<std::uint8_t> scratch;
  const double entropy_s = best_of(repeats, [&] {
    for (std::size_t i = 0; i < ds.size(); ++i) {
      scratch.clear();
      jpeg::BitWriter bw(scratch);
      int dc_pred = 0;
      jpeg::encode_blocks_zz(bw, quants[i].data(), quants[i].block_count(), dc_pred,
                             huff.dc_luma, huff.ac_luma);
      bw.flush();
    }
  });

  // --- end-to-end: reference per-block encoder vs pipeline ----------------
  // Equivalence gate first (untimed): every image of the workload must
  // produce byte-identical streams on both paths.
  bool identical = true;
  for (const data::Sample& s : ds.samples)
    identical =
        identical && jpeg::encode_reference(s.image, enc_cfg) == jpeg::encode(s.image, enc_cfg, ctx);

  std::vector<std::uint8_t> sink;
  const double reference_s = best_of(repeats, [&] {
    for (const data::Sample& s : ds.samples)
      sink = jpeg::encode_reference(s.image, enc_cfg);
  });
  const double pipeline_s = best_of(repeats, [&] {
    for (const data::Sample& s : ds.samples) sink = jpeg::encode(s.image, enc_cfg, ctx);
  });
  const double speedup = reference_s / pipeline_s;

  // --- decode throughput through a warm context ---------------------------
  std::vector<std::vector<std::uint8_t>> streams;
  streams.reserve(ds.size());
  for (const data::Sample& s : ds.samples)
    streams.push_back(jpeg::encode(s.image, enc_cfg, ctx));
  const double decode_s = best_of(repeats, [&] {
    for (const auto& bytes : streams) jpeg::decode(bytes, ctx);
  });

  // --- decode per-stage rows ----------------------------------------------
  // The encode/decode asymmetry tracked stage by stage: entropy decode in
  // isolation (decode_coefficients stops after the Huffman pass), the
  // dequantize+IDCT pair (measured above on the same planes), and the
  // block-grid -> plane untile that backs pixel reconstruction.
  const double huffdec_s = best_of(repeats, [&] {
    for (const auto& bytes : streams) jpeg::decode_coefficients(bytes, ctx, 1);
  });
  const double dequant_idct_s = measure_dequant_idct();
  image::PlaneF untile_plane(gen_cfg.width, gen_cfg.height);
  const double untile_s = best_of(repeats, [&] {
    for (std::size_t i = 0; i < ds.size(); ++i)
      image::untile_blocks_from(coeffs[i].data(), bx, by, untile_plane, 128.0f);
  });

  // --- restart-interval parallel decode -----------------------------------
  // One larger single-component stream whose scan carries restart markers:
  // the decoder pre-scans RST boundaries and hands independent segments to
  // the thread pool. Pixels must be byte-identical at every thread count.
  data::GeneratorConfig big_cfg = gen_cfg;
  big_cfg.width = 256;
  big_cfg.height = 256;
  big_cfg.seed = 0xD417;
  const image::Image big_img =
      data::SyntheticDatasetGenerator(big_cfg).render(data::ClassKind::kBandNoise, 0);
  jpeg::EncoderConfig rst_cfg = enc_cfg;
  rst_cfg.restart_interval = 32;  // 32 MCU rows -> 32 independent segments
  const std::vector<std::uint8_t> rst_stream = jpeg::encode(big_img, rst_cfg, ctx);
  const image::Image rst_ref = jpeg::decode(rst_stream, ctx, 1);
  bool restart_identical = true;
  struct RestartRow {
    int threads;
    double s = 0;
  };
  std::vector<RestartRow> restart_rows;
  for (const int nt : {1, 2, 8}) {
    const image::Image out = jpeg::decode(rst_stream, ctx, nt);
    restart_identical = restart_identical && out.data() == rst_ref.data();
    RestartRow row;
    row.threads = nt;
    row.s = best_of(repeats, [&] {
      for (int r = 0; r < 16; ++r) (void)jpeg::decode(rst_stream, ctx, nt);
    });
    restart_rows.push_back(row);
  }

  // --- per-kernel throughput at every supported SIMD level ----------------
  // The sections above ran at the ambient level (DNJ_SIMD / auto); this one
  // pins each level in turn and reruns the same four stage bodies, so the
  // JSON carries scalar vs SSE2 vs AVX2 rows measured with the identical
  // buffer discipline.
  struct LevelStages {
    simd::Level level;
    double tile_s = 0, dct_s = 0, quant_s = 0, idct_s = 0;
  };
  std::vector<LevelStages> level_rows;
  const simd::Level ambient_level = simd::active_level();
  for (simd::Level level :
       {simd::Level::kScalar, simd::Level::kSse2, simd::Level::kAvx2}) {
    if (!simd::set_level(level)) continue;  // not supported on this machine/build
    LevelStages row;
    row.level = level;
    row.tile_s = measure_tile();
    row.dct_s = measure_dct();
    row.quant_s = measure_quant();
    row.idct_s = measure_dequant_idct();
    level_rows.push_back(row);
  }
  simd::set_level(ambient_level);

  const double mblk = static_cast<double>(total_blocks) / 1e6;
  bench::JsonWriter json("BENCH_codec_pipeline");
  json.field("bench", "codec_pipeline");
  json.field("images", ds.size());
  json.field("width", gen_cfg.width);
  json.field("height", gen_cfg.height);
  json.field("quality", enc_cfg.quality);
  json.field("repeats", repeats);
  json.field("blocks", total_blocks);
  json.begin_array("stages");
  const struct {
    const char* name;
    double s;
  } stages[] = {{"tile", tile_s}, {"dct", dct_s}, {"quant_zigzag", quant_s},
                {"entropy", entropy_s}};
  for (const auto& st : stages) {
    json.begin_object();
    json.field("stage", st.name);
    json.field("seconds", st.s);
    json.field("mblocks_per_s", mblk / st.s);
    json.end_object();
  }
  json.end_array();
  json.field("encode_reference_s", reference_s);
  json.field("encode_pipeline_s", pipeline_s);
  json.field("encode_speedup", speedup);
  json.field("encode_images_per_s", static_cast<double>(ds.size()) / pipeline_s);
  json.field("decode_s", decode_s);
  json.field("decode_images_per_s", static_cast<double>(ds.size()) / decode_s);
  json.field("streams_identical", identical);
  json.field("entropy_lut_bits", jpeg::entropy_lut_bits());
  json.begin_array("decode_stages");
  const struct {
    const char* name;
    double s;
  } dec_stages[] = {{"huffman_decode", huffdec_s},
                    {"dequant_idct", dequant_idct_s},
                    {"untile", untile_s}};
  for (const auto& st : dec_stages) {
    json.begin_object();
    json.field("stage", st.name);
    json.field("seconds", st.s);
    json.field("mblocks_per_s", mblk / st.s);
    json.end_object();
  }
  json.end_array();
  json.begin_array("restart_decode");
  for (const RestartRow& row : restart_rows) {
    json.begin_object();
    json.field("threads", row.threads);
    json.field("seconds", row.s);
    json.field("images_per_s", 16.0 / row.s);
    json.end_object();
  }
  json.end_array();
  json.field("restart_identical", restart_identical);

  // Per-kernel SIMD rows + headline speedups (AVX2 over this run's scalar).
  json.field("simd_level_ambient", simd::level_name(ambient_level));
  json.begin_array("simd_levels");
  for (const LevelStages& row : level_rows) {
    json.begin_object();
    json.field("level", simd::level_name(row.level));
    json.field("tile_mblocks_per_s", mblk / row.tile_s);
    json.field("dct_mblocks_per_s", mblk / row.dct_s);
    json.field("quant_zigzag_mblocks_per_s", mblk / row.quant_s);
    json.field("dequant_idct_mblocks_per_s", mblk / row.idct_s);
    json.end_object();
  }
  json.end_array();
  const LevelStages* scalar_row = nullptr;
  for (const LevelStages& row : level_rows)
    if (row.level == simd::Level::kScalar) scalar_row = &row;
  for (const LevelStages& row : level_rows) {
    if (row.level == simd::Level::kScalar || !scalar_row) continue;
    const std::string prefix = simd::level_name(row.level);
    json.field(prefix + "_tile_speedup_vs_scalar", scalar_row->tile_s / row.tile_s);
    json.field(prefix + "_dct_speedup_vs_scalar", scalar_row->dct_s / row.dct_s);
    json.field(prefix + "_quant_zigzag_speedup_vs_scalar",
               scalar_row->quant_s / row.quant_s);
    json.field(prefix + "_dequant_idct_speedup_vs_scalar",
               scalar_row->idct_s / row.idct_s);
  }

  std::printf("codec pipeline, %zu images %dx%d, q=%d, repeats=%d\n", ds.size(),
              gen_cfg.width, gen_cfg.height, enc_cfg.quality, repeats);
  for (const auto& st : stages)
    std::printf("  %-12s %.4fs  %7.2f Mblocks/s\n", st.name, st.s, mblk / st.s);
  std::printf("  encode: reference %.4fs, pipeline %.4fs -> %.2fx speedup (%s)\n",
              reference_s, pipeline_s, speedup, identical ? "byte-identical" : "DIFFER");
  std::printf("  decode: %.4fs  %.1f img/s\n", decode_s,
              static_cast<double>(ds.size()) / decode_s);
  for (const auto& st : dec_stages)
    std::printf("  decode %-12s %.4fs  %7.2f Mblocks/s\n", st.name, st.s, mblk / st.s);
  for (const RestartRow& row : restart_rows)
    std::printf("  restart decode @%d threads: %.4fs  %.1f img/s (%s)\n", row.threads,
                row.s, 16.0 / row.s, restart_identical ? "identical" : "DIFFER");
  std::printf("  per-kernel Mblocks/s by SIMD level (ambient: %s):\n",
              simd::level_name(ambient_level));
  std::printf("    %-8s %8s %8s %12s %12s\n", "level", "tile", "dct", "quant_zz",
              "dequant_idct");
  for (const LevelStages& row : level_rows)
    std::printf("    %-8s %8.2f %8.2f %12.2f %12.2f\n", simd::level_name(row.level),
                mblk / row.tile_s, mblk / row.dct_s, mblk / row.quant_s,
                mblk / row.idct_s);
  if (scalar_row && scalar_row != &level_rows.back()) {
    const LevelStages& widest = level_rows.back();
    std::printf("    %s vs scalar: tile %.2fx, dct %.2fx, quant_zz %.2fx, "
                "dequant_idct %.2fx\n",
                simd::level_name(widest.level), scalar_row->tile_s / widest.tile_s,
                scalar_row->dct_s / widest.dct_s, scalar_row->quant_s / widest.quant_s,
                scalar_row->idct_s / widest.idct_s);
  }
  std::printf("  wrote %s\n", json.path().c_str());

  if (!identical) {
    std::fprintf(stderr, "bench_codec_pipeline: reference and pipeline streams differ!\n");
    return 1;
  }
  if (!restart_identical) {
    std::fprintf(stderr,
                 "bench_codec_pipeline: restart-parallel decode differs across "
                 "thread counts!\n");
    return 1;
  }
  return 0;
}
