// Perf baseline for the parallel runtime: transcodes a synthetic dataset
// serially (num_threads = 1) and with the default thread count, checks the
// outputs are identical, and records throughput to
// bench_results/BENCH_transcode.json so future PRs have a perf trajectory.
//
// Usage: bench_transcode [num_images] [repeats]
//   num_images — dataset size (default 512)
//   repeats    — timed repetitions per mode; the best run is reported
//                (default 3; use 1 for a CI smoke run)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "api/dnj.hpp"
#include "bench_common.hpp"
#include "core/transcode.hpp"
#include "data/synthetic.hpp"
#include "runtime/thread_pool.hpp"

using namespace dnj;

namespace {

double time_transcode(const data::Dataset& ds, const jpeg::EncoderConfig& cfg, int threads,
                      int repeats, core::TranscodeResult* last) {
  double best = 1e100;
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    core::TranscodeResult res = core::transcode(ds, cfg, threads);
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
    *last = std::move(res);
  }
  return best;
}

/// The per-image encode+decode round trip through the public façade
/// (api::Codec), serial. Returns the best wall time; reports the byte
/// total and whether every decoded image is bit-identical to `want` (the
/// direct core::transcode output). Note the direct path additionally
/// computes PSNR and scan-byte accounting per image, so the reported
/// ratio slightly flatters the façade; it is tracked for trend, the
/// identity bit is the gate.
double time_facade(const data::Dataset& ds, const api::EncodeOptions& options, int repeats,
                   const core::TranscodeResult& want, std::size_t* bytes_out,
                   bool* identical_out) {
  api::Session session;
  const api::Codec codec = session.codec();
  double best = 1e100;
  *identical_out = true;
  for (int r = 0; r < repeats; ++r) {
    std::size_t total = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < ds.size(); ++i) {
      api::Result<std::vector<std::uint8_t>> bytes =
          codec.encode(ds.samples[i].image.view(), options);
      api::Result<api::DecodedImage> decoded =
          bytes.ok() ? codec.decode(bytes.value())
                     : api::Result<api::DecodedImage>(bytes.status());
      if (!bytes.ok() || !decoded.ok()) {
        *identical_out = false;
        continue;
      }
      total += bytes->size();
      const image::Image& expect = want.dataset.samples[i].image;
      if (decoded->width != expect.width() || decoded->height != expect.height() ||
          decoded->channels != expect.channels() || decoded->pixels != expect.data())
        *identical_out = false;
    }
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
    *bytes_out = total;
    if (total != want.total_bytes) *identical_out = false;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const int num_images = argc > 1 ? std::atoi(argv[1]) : 512;
  const int repeats = argc > 2 ? std::max(1, std::atoi(argv[2])) : 3;
  if (num_images <= 0) {
    std::fprintf(stderr, "bench_transcode: bad image count\n");
    return 1;
  }

  data::GeneratorConfig gen_cfg;
  gen_cfg.width = 32;
  gen_cfg.height = 32;
  gen_cfg.channels = 1;
  gen_cfg.num_classes = 8;
  gen_cfg.seed = 0xBE5C;
  const data::Dataset ds =
      data::SyntheticDatasetGenerator(gen_cfg).generate((num_images + 7) / 8);

  jpeg::EncoderConfig enc_cfg;
  enc_cfg.quality = 85;
  enc_cfg.subsampling = jpeg::Subsampling::k444;

  const unsigned threads = runtime::ThreadPool::default_threads();
  const double mb = static_cast<double>(ds.raw_bytes()) / (1024.0 * 1024.0);

  core::TranscodeResult serial_res, parallel_res;
  const double serial_s = time_transcode(ds, enc_cfg, 1, repeats, &serial_res);
  const double parallel_s =
      time_transcode(ds, enc_cfg, 0, repeats, &parallel_res);

  // Same workload through the public façade (serial), gated on byte
  // identity with the direct core::transcode path.
  const api::EncodeOptions facade_options =
      api::EncodeOptions().quality(enc_cfg.quality).chroma_420(false);
  std::size_t facade_bytes = 0;
  bool facade_identical = false;
  const double facade_s =
      time_facade(ds, facade_options, repeats, serial_res, &facade_bytes, &facade_identical);

  const bool identical = serial_res.total_bytes == parallel_res.total_bytes &&
                         serial_res.scan_bytes == parallel_res.scan_bytes &&
                         serial_res.mean_psnr == parallel_res.mean_psnr &&
                         facade_identical;

  bench::JsonWriter json("BENCH_transcode");
  json.field("bench", "transcode");
  json.field("images", ds.size());
  json.field("width", gen_cfg.width);
  json.field("height", gen_cfg.height);
  json.field("raw_mb", mb);
  json.field("quality", enc_cfg.quality);
  json.field("repeats", repeats);
  json.field("default_threads", static_cast<std::size_t>(threads));
  json.field("outputs_identical", identical);
  json.begin_array("runs");
  json.begin_object();
  json.field("mode", "serial");
  json.field("threads", 1);
  json.field("seconds", serial_s);
  json.field("images_per_s", static_cast<double>(ds.size()) / serial_s);
  json.field("mb_per_s", mb / serial_s);
  json.end_object();
  json.begin_object();
  json.field("mode", "parallel");
  json.field("threads", static_cast<std::size_t>(threads));
  json.field("seconds", parallel_s);
  json.field("images_per_s", static_cast<double>(ds.size()) / parallel_s);
  json.field("mb_per_s", mb / parallel_s);
  json.end_object();
  json.begin_object();
  json.field("mode", "facade-serial");
  json.field("threads", 1);
  json.field("seconds", facade_s);
  json.field("images_per_s", static_cast<double>(ds.size()) / facade_s);
  json.field("mb_per_s", mb / facade_s);
  json.end_object();
  json.end_array();
  json.field("speedup", serial_s / parallel_s);
  json.field("facade_overhead", facade_s / serial_s);

  std::printf("transcode %zu images (%.1f MB raw), q=%d, repeats=%d\n", ds.size(), mb,
              enc_cfg.quality, repeats);
  std::printf("  serial   (1 thread):  %.3fs  %.1f img/s  %.2f MB/s\n", serial_s,
              static_cast<double>(ds.size()) / serial_s, mb / serial_s);
  std::printf("  parallel (%u threads): %.3fs  %.1f img/s  %.2f MB/s\n", threads, parallel_s,
              static_cast<double>(ds.size()) / parallel_s, mb / parallel_s);
  std::printf("  facade   (1 thread):  %.3fs  %.1f img/s  (%.2fx of direct serial)\n",
              facade_s, static_cast<double>(ds.size()) / facade_s, facade_s / serial_s);
  std::printf("  speedup %.2fx, outputs %s\n", serial_s / parallel_s,
              identical ? "identical" : "DIFFER");
  std::printf("  wrote %s\n", json.path().c_str());

  if (!identical) {
    std::fprintf(stderr, "bench_transcode: serial and parallel outputs differ!\n");
    return 1;
  }
  return 0;
}
