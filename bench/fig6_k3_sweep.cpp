// Fig. 6: tuning the LF-band slope k3 of the piece-wise linear mapping.
// Paper shape: smaller k3 -> higher compression rate at slightly lower
// accuracy; k3 = 3 maximizes CR while keeping the original accuracy.
#include <cstdio>

#include "bench_common.hpp"

using namespace dnj;

int main() {
  std::printf("=== Fig 6: PLM k3 parameter sweep (LF slope) ===\n");
  bench::ExperimentEnv env = bench::make_env();
  nn::LayerPtr model = bench::train_model(nn::ModelKind::kMiniAlexNet, env.train);
  const double base_acc = nn::evaluate(*model, env.test);
  std::printf("original accuracy: %.4f (reference bytes: %zu)\n\n", base_acc,
              env.reference_bytes);

  const core::FrequencyProfile profile = core::analyze(env.train);

  bench::JsonWriter out("fig6_k3_sweep");
  out.begin_rows({"k3", "cr", "accuracy"});
  std::printf("%6s %10s %10s\n", "k3", "CR", "accuracy");
  for (int k3 = 1; k3 <= 5; ++k3) {
    core::PlmParams params = core::PlmParams::with_dataset_thresholds(
        core::PlmParams::paper_defaults(), profile);
    params.k3 = static_cast<double>(k3);
    const jpeg::QuantTable table = core::plm_quant_table(profile, params);

    std::size_t train_bytes = 0, test_bytes = 0;
    bench::recompress_table(env.train, table, &train_bytes);
    const data::Dataset test_c = bench::recompress_table(env.test, table, &test_bytes);
    const double cr = core::compression_rate(env.reference_bytes, train_bytes + test_bytes);
    const double acc = nn::evaluate(*model, test_c);
    std::printf("%6d %10.2f %10.4f\n", k3, cr, acc);
    out.row({std::to_string(k3), bench::fmt(cr, 2), bench::fmt(acc, 4)});
  }
  std::printf("(expect: CR falls as k3 grows; accuracy saturates near the original)\n");
  std::printf("json: %s\n", out.path().c_str());
  return 0;
}
