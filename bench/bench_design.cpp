// Design-job bench: throughput and rate accuracy of the table-design job
// subsystem (src/jobs), with the checkpoint/resume determinism contract
// as a hard gate.
//
// Three measurements land in BENCH_design.json:
//   * design throughput — one uncontrolled design job end to end (analyze
//     -> anneal -> rate report -> publish), as SA iterations per second
//     and total job seconds. This is the number the regression check
//     tracks across PRs.
//   * rate accuracy — a second job with a bytes-per-image target derived
//     from the first job's achieved midpoint rate (x1.02, so the target
//     is reachable but tight). The job must land within 5% of target
//     (rate_ok, a hard gate — the acceptance criterion for the wire's
//     job-submit path, measured here without socket noise).
//   * checkpoint/resume determinism — a job paused mid-anneal via
//     anneal_limit and resumed from its checkpoint must produce the
//     byte-identical table (and cost trajectory) of an uninterrupted run
//     (resume_identical, a hard gate; test_jobs pins the same contract
//     at a smaller schedule).
//
// Usage: bench_design [sa_iterations] [per_class]
//   sa_iterations — annealing schedule length (default 120; CI smoke uses
//                   something small like 60)
//   per_class     — images per synthetic class, 8 classes (default 4)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_common.hpp"
#include "jobs/job_manager.hpp"

using namespace dnj;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Submits one job and blocks until it leaves the active states; exits
/// the bench non-zero on any unexpected terminal state.
jobs::JobStatus run_job(jobs::JobManager& manager, jobs::DesignJobSpec spec,
                        jobs::JobState want) {
  std::uint64_t id = 0;
  const jobs::JobRc rc = manager.submit(std::move(spec), 0, &id);
  if (rc != jobs::JobRc::kOk) {
    std::fprintf(stderr, "bench_design: submit refused: %s\n", jobs::job_rc_name(rc));
    std::exit(1);
  }
  jobs::JobStatus status;
  manager.wait(id, &status);
  if (status.state != want) {
    std::fprintf(stderr, "bench_design: job %llu ended %s (wanted %s): %s\n",
                 static_cast<unsigned long long>(id), jobs::job_state_name(status.state),
                 jobs::job_state_name(want), status.error.c_str());
    std::exit(1);
  }
  return status;
}

jobs::JobResult fetch_result(jobs::JobManager& manager, std::uint64_t id) {
  jobs::JobResult result;
  if (manager.result(id, &result) != jobs::JobRc::kOk) {
    std::fprintf(stderr, "bench_design: result() refused for job %llu\n",
                 static_cast<unsigned long long>(id));
    std::exit(1);
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const int sa_iterations = argc > 1 ? std::atoi(argv[1]) : 120;
  const int per_class = argc > 2 ? std::atoi(argv[2]) : 4;

  data::GeneratorConfig gen;
  gen.seed = 0xDAC2018ULL;
  const data::Dataset dataset = data::SyntheticDatasetGenerator(gen).generate(per_class);

  core::SaConfig sa;
  sa.iterations = sa_iterations;

  auto make_spec = [&](const std::string& tenant) {
    jobs::DesignJobSpec spec;
    spec.dataset = dataset;
    spec.tenant = tenant;
    spec.sa = sa;
    return spec;
  };

  jobs::JobManagerConfig cfg;
  cfg.checkpoint_interval = 16;
  jobs::JobManager manager(cfg);

  // --- Design throughput: one uncontrolled job, wall clock end to end.
  const auto t0 = Clock::now();
  const jobs::JobStatus baseline = run_job(manager, make_spec("bench"),
                                           jobs::JobState::kCompleted);
  const double design_s = seconds_since(t0);
  const jobs::JobResult baseline_result = fetch_result(manager, baseline.id);

  // --- Rate accuracy: target 2% above the designed midpoint rate.
  const double target = baseline.achieved_bytes * 1.02;
  jobs::DesignJobSpec rate_spec = make_spec("bench-rate");
  rate_spec.target_bytes_per_image = target;
  const auto t1 = Clock::now();
  const jobs::JobStatus rated = run_job(manager, std::move(rate_spec),
                                        jobs::JobState::kCompleted);
  const double rate_s = seconds_since(t1);
  const jobs::JobResult rated_result = fetch_result(manager, rated.id);
  const bool rate_ok = rated.rate_error <= 0.05 && rated.achieved_bytes <= target;

  // --- Checkpoint/resume determinism: pause at half the schedule, resume
  // from the checkpoint, compare against an uninterrupted run.
  jobs::DesignJobSpec paused_spec = make_spec("bench-paused");
  paused_spec.anneal_limit = sa_iterations / 2;
  const jobs::JobStatus paused = run_job(manager, std::move(paused_spec),
                                         jobs::JobState::kPaused);
  const jobs::JobResult paused_result = fetch_result(manager, paused.id);

  jobs::DesignJobSpec resume_spec = make_spec("bench-resumed");
  resume_spec.checkpoint = paused_result.checkpoint;
  const jobs::JobStatus resumed = run_job(manager, std::move(resume_spec),
                                          jobs::JobState::kCompleted);
  const jobs::JobResult resumed_result = fetch_result(manager, resumed.id);
  const bool resume_identical =
      resumed_result.table == baseline_result.table &&
      resumed_result.best_cost == baseline_result.best_cost &&
      resumed_result.accepted_moves == baseline_result.accepted_moves &&
      resumed_result.checkpoint == baseline_result.checkpoint;

  const jobs::JobManagerStats stats = manager.stats();

  bench::JsonWriter out("BENCH_design");
  out.field("bench", "design");
  out.field("sa_iterations", sa_iterations);
  out.field("images", dataset.size());
  out.field("classes", dataset.num_classes);
  out.field("design_s", design_s);
  out.field("sa_iters_per_s", static_cast<double>(sa_iterations) / design_s);
  out.field("rate_search_s", rate_s);
  out.field("target_bytes_per_image", target);
  out.field("achieved_bytes_per_image", rated.achieved_bytes);
  out.field("rate_error", rated.rate_error);
  out.field("rate_quality", rated_result.quality);
  out.field("checkpoints_taken", static_cast<std::size_t>(stats.checkpoints));
  out.field("checkpoint_bytes", paused_result.checkpoint.size());
  out.field("ladder_rungs", static_cast<std::size_t>(stats.ladder_rungs));
  out.field("rate_ok", rate_ok);
  out.field("resume_identical", resume_identical);

  std::printf("bench_design: %d SA iters in %.3fs (%.1f iters/s), rate_error %.4f, "
              "resume_identical=%s\n",
              sa_iterations, design_s, sa_iterations / design_s, rated.rate_error,
              resume_identical ? "yes" : "no");
  std::printf("wrote %s\n", out.path().c_str());

  if (!rate_ok) {
    std::fprintf(stderr, "bench_design: rate gate failed: achieved %.1f vs target %.1f "
                 "(error %.4f)\n", rated.achieved_bytes, target, rated.rate_error);
    return 1;
  }
  if (!resume_identical) {
    std::fprintf(stderr, "bench_design: checkpoint/resume determinism gate failed\n");
    return 1;
  }
  return 0;
}
