// Fig. 3: removing the highest frequency components flips classification
// even though the edit is nearly invisible. The paper shows a junco
// predicted as a robin after zeroing the top-6 high-frequency DCT
// components; our analog is the blob_plus_texture / blob_plus_ridges class
// pair, which differs from the plain smooth_blob class only in
// high-frequency content.
#include <cstdio>

#include "core/frequency_edit.hpp"
#include "image/metrics.hpp"
#include "nn/metrics.hpp"
#include "bench_common.hpp"

using namespace dnj;

int main() {
  std::printf("=== Fig 3: prediction flips after removing top-6 HF components ===\n");
  bench::ExperimentEnv env = bench::make_env();
  nn::LayerPtr model = bench::train_model(nn::ModelKind::kMiniAlexNet, env.train);

  const int kRemoved = 6;  // same count as the paper's example
  bench::JsonWriter out("fig3_hf_removal");
  out.begin_rows({"class", "n_images", "flip_rate", "mean_psnr_of_edit", "turns_into"});

  // Confusion matrix on the HF-stripped test set: tells us what each class
  // *becomes* — the junco-to-robin direction of the paper's example.
  data::Dataset stripped;
  stripped.num_classes = env.test.num_classes;
  for (const data::Sample& s : env.test.samples)
    stripped.samples.push_back({core::remove_high_frequency(s.image, kRemoved), s.label});
  const nn::ConfusionMatrix cm = nn::confusion_matrix(*model, stripped);

  // Aggregate flip statistics per class.
  std::vector<int> flips(8, 0), totals(8, 0);
  std::vector<double> psnr_sum(8, 0.0);
  for (const data::Sample& s : env.test.samples) {
    const int before = nn::predict_label(*model, s.image);
    if (before != s.label) continue;  // only count correctly classified originals
    const image::Image edited = core::remove_high_frequency(s.image, kRemoved);
    const int after = nn::predict_label(*model, edited);
    ++totals[static_cast<std::size_t>(s.label)];
    psnr_sum[static_cast<std::size_t>(s.label)] += image::psnr(s.image, edited);
    if (after != before) ++flips[static_cast<std::size_t>(s.label)];
  }

  std::printf("%-20s %8s %10s %14s  %s\n", "class", "images", "flip rate", "edit PSNR dB",
              "turns into");
  for (int c = 0; c < 8; ++c) {
    if (totals[static_cast<std::size_t>(c)] == 0) continue;
    const double rate = static_cast<double>(flips[static_cast<std::size_t>(c)]) /
                        totals[static_cast<std::size_t>(c)];
    const double psnr = psnr_sum[static_cast<std::size_t>(c)] / totals[static_cast<std::size_t>(c)];
    const std::string name = data::class_name(static_cast<data::ClassKind>(c));
    const int into = cm.dominant_confusion(c);
    const std::string into_name =
        into >= 0 ? data::class_name(static_cast<data::ClassKind>(into)) : "-";
    std::printf("%-20s %8d %10.3f %14.1f  %s\n", name.c_str(),
                totals[static_cast<std::size_t>(c)], rate, psnr, into_name.c_str());
    out.row({name, std::to_string(totals[static_cast<std::size_t>(c)]), bench::fmt(rate, 3),
             bench::fmt(psnr, 1), into_name});
  }

  // Single-image demo in the style of the paper's junco/robin pair.
  for (const data::Sample& s : env.test.samples) {
    if (s.label != static_cast<int>(data::ClassKind::kBlobPlusTexture)) continue;
    const auto before = nn::predict_probs(*model, s.image);
    const int pred_before =
        static_cast<int>(std::max_element(before.begin(), before.end()) - before.begin());
    if (pred_before != s.label) continue;
    const image::Image edited = core::remove_high_frequency(s.image, kRemoved);
    const auto after = nn::predict_probs(*model, edited);
    const int pred_after =
        static_cast<int>(std::max_element(after.begin(), after.end()) - after.begin());
    if (pred_after == pred_before) continue;
    std::printf("\ndemo image (class %s):\n",
                data::class_name(static_cast<data::ClassKind>(s.label)).c_str());
    std::printf("  original: predicted %-20s confidence %.2f%%\n",
                data::class_name(static_cast<data::ClassKind>(pred_before)).c_str(),
                100.0f * before[static_cast<std::size_t>(pred_before)]);
    std::printf("  HF-removed: predicted %-18s confidence %.2f%%  (PSNR of edit: %.1f dB)\n",
                data::class_name(static_cast<data::ClassKind>(pred_after)).c_str(),
                100.0f * after[static_cast<std::size_t>(pred_after)],
                image::psnr(s.image, edited));
    break;
  }
  std::printf("(expect: HF-dependent classes flip at high rate; low-frequency classes do not)\n");
  std::printf("json: %s\n", out.path().c_str());
  return 0;
}
