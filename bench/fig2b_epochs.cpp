// Fig. 2(b): CASE 2 test accuracy as a function of training epoch for
// training sets compressed at QF 100 / 50 / 20 (testing always on the
// high-quality originals). Paper shape: curves separate as training
// converges — the accuracy gap between QF 20 and the original is maximized
// at the last epoch.
#include <cstdio>

#include "bench_common.hpp"

using namespace dnj;

int main() {
  std::printf("=== Fig 2(b): CASE 2 accuracy vs epoch at QF 100/50/20 ===\n");
  bench::ExperimentEnv env = bench::make_env();
  const int kEpochs = 12;
  const int kQualities[] = {100, 50, 20};

  std::vector<std::vector<double>> curves;
  for (int qf : kQualities) {
    const data::Dataset train_q =
        qf == 100 ? env.train : bench::recompress_quality(env.train, qf);
    nn::LayerPtr model = nn::make_model(nn::ModelKind::kMiniAlexNet, train_q.channels(),
                                        train_q.width(), train_q.num_classes, 41);
    const auto history =
        nn::train(*model, train_q, &env.test, bench::default_train_config(kEpochs));
    std::vector<double> curve;
    for (const nn::EpochStats& e : history) curve.push_back(e.test_acc);
    curves.push_back(curve);
  }

  bench::JsonWriter out("fig2b_epochs");
  out.begin_rows({"epoch", "qf100", "qf50", "qf20"});
  std::printf("%6s %10s %10s %10s\n", "epoch", "QF100", "QF50", "QF20");
  for (int e = 0; e < kEpochs; ++e) {
    std::printf("%6d %10.4f %10.4f %10.4f\n", e, curves[0][static_cast<std::size_t>(e)],
                curves[1][static_cast<std::size_t>(e)], curves[2][static_cast<std::size_t>(e)]);
    out.row({std::to_string(e), bench::fmt(curves[0][static_cast<std::size_t>(e)], 4),
             bench::fmt(curves[1][static_cast<std::size_t>(e)], 4),
             bench::fmt(curves[2][static_cast<std::size_t>(e)], 4)});
  }
  const double gap_start = curves[0].front() - curves[2].front();
  const double gap_end = curves[0].back() - curves[2].back();
  std::printf("gap(QF100 - QF20): first epoch %.4f, last epoch %.4f\n", gap_start, gap_end);
  std::printf("(expect: the gap grows toward the last epoch)\n");
  std::printf("json: %s\n", out.path().c_str());
  return 0;
}
