// Shared experiment environment for the figure-reproduction benches.
//
// Protocol notes (documented in EXPERIMENTS.md):
//  * "Original" means the dataset stored as QF = 100 baseline JPEG, the
//    paper's CR = 1 reference point.
//  * Unless a figure specifies otherwise (Fig. 2 CASE 2 trains on compressed
//    data), models are trained once on the original training set and then
//    evaluated on re-encoded test sets — the paper's CASE 1 deployment
//    scenario (the edge device compresses what it uploads for inference).
//  * All randomness is seeded; every bench is bit-reproducible.
#pragma once

#include <string>
#include <vector>

#include "core/deepnjpeg.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"
#include "nn/trainer.hpp"

namespace dnj::bench {

struct ExperimentEnv {
  data::GeneratorConfig gen_config;
  data::Dataset train_raw;   ///< straight from the generator
  data::Dataset test_raw;
  data::Dataset train;       ///< QF-100 "original" (what the paper stores)
  data::Dataset test;
  // Byte accounting uses entropy-coded scan payloads (headers/tables ship
  // once per deployment; see jpeg::scan_byte_count) — the regime the
  // paper's CR numbers describe.
  std::size_t reference_train_bytes = 0;  ///< QF-100 scan bytes of the train set
  std::size_t reference_test_bytes = 0;
  std::size_t reference_bytes = 0;        ///< train + test
};

/// Builds the standard experiment environment: 8 frequency-signature
/// classes, 32x32 grayscale, `train_per_class`/`test_per_class` images.
ExperimentEnv make_env(int train_per_class = 60, int test_per_class = 25,
                       std::uint64_t seed = 0xDAC2018ULL);

/// Training schedule used by every figure bench. 20 epochs gets every
/// architecture (including the slow-starting plain-VGG stack) to its
/// plateau on the standard environment.
nn::TrainConfig default_train_config(int epochs = 20);

/// Trains `kind` on `train` and returns the model (verbose off).
nn::LayerPtr train_model(nn::ModelKind kind, const data::Dataset& train, int epochs = 20,
                         std::uint64_t seed = 41);

/// Re-encodes a dataset at an IJG quality factor (4:4:4, like the paper's
/// single-table pipeline).
data::Dataset recompress_quality(const data::Dataset& ds, int quality,
                                 std::size_t* bytes_out = nullptr);

/// Re-encodes a dataset with a custom quantization table.
data::Dataset recompress_table(const data::Dataset& ds, const jpeg::QuantTable& table,
                               std::size_t* bytes_out = nullptr);

/// The one result emitter every bench binary uses: creates
/// `bench_results/<name>.json` under the current working directory.
/// Produces one top-level object; arrays of objects nest one level deep —
/// enough both for the perf-baseline files (BENCH_*.json) that track
/// throughput across PRs and for the figure benches' tabular output
/// (begin_rows/row, which replaced the seed's separate CSV writer). Keys
/// are written in call order, commas are managed internally, and any scopes
/// still open when the writer is destroyed are closed so the file is always
/// valid JSON.
///
/// Construction stamps three run-metadata fields before any caller keys —
/// "git_sha" (the commit the binary was configured from), "simd_level"
/// (the dispatch level active at construction) and "threads" (the
/// DNJ_THREADS/hardware default) — so every recorded trajectory is
/// attributable to a commit and a machine configuration.
class JsonWriter {
 public:
  explicit JsonWriter(const std::string& name);
  ~JsonWriter();
  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void field(const std::string& key, const std::string& value);
  void field(const std::string& key, const char* value);
  void field(const std::string& key, double value);
  void field(const std::string& key, std::size_t value);
  void field(const std::string& key, int value);
  void field(const std::string& key, bool value);  ///< emits true/false literals
  void begin_array(const std::string& key);
  void end_array();
  void begin_object();  ///< only valid inside an array
  void end_object();

  /// Tabular mode (the CSV replacement): begin_rows fixes the column names,
  /// each row() emits one object of column->cell pairs into a "rows" array.
  void begin_rows(const std::vector<std::string>& cols);
  void row(const std::vector<std::string>& cells);
  void end_rows();

  const std::string& path() const { return path_; }

 private:
  void comma_and_key(const std::string& key);
  void comma_only();
  void close_scope();

  std::string path_;
  void* file_;                     // FILE*
  std::vector<bool> needs_comma_;  // one flag per open scope
  std::vector<char> scope_kind_;   // 'A' = array, 'O' = object, per open scope
  std::vector<std::string> row_cols_;
};

/// Formats a double with fixed precision.
std::string fmt(double v, int precision = 3);

}  // namespace dnj::bench
