// Open-loop load generator for the network front end (src/net): a real
// server on a loopback socket, paced clients firing the wire protocol at
// it, BENCH_net.json recording the RPS / latency / rejection trajectory.
//
// Procedure:
//   1. calibrate — a pipelined closed loop measures the server's service
//      capacity (requests/second) on this machine;
//   2. three open-loop levels — offered load at 0.5x, 0.9x and 5x the
//      measured capacity. Open loop means senders pace by the clock and
//      never wait for replies: at 5x with a small reject-policy queue the
//      server must shed load, and the shed requests come back as typed
//      kRejected frames (counted, not errors — that is the overload
//      contract under test).
//
// Each level records client-side total latency (send -> reply) and the
// server-reported queue/service components from the response observability
// block, as p50/p95/p99 over the completed (kOk) requests.
//
// Determinism gate: every kOk payload is digest-checked against the
// synchronous public-API result computed upfront — a mismatch exits
// non-zero, exactly like the serial-vs-parallel gates in the other
// benches. Network transport must be payload-transparent.
//
// Usage: bench_net [connections] [requests_per_level]
//   connections        — concurrent client connections (default 4)
//   requests_per_level — total requests per offered-load level (default
//                        400; use something small like 120 for CI smoke)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "api/dnj.hpp"
#include "bench_common.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "obs/trace.hpp"
#include "serve/digest.hpp"
#include "serve/service.hpp"

using namespace dnj;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// One request form plus the digest of its expected payload.
struct Form {
  serve::Request request;
  std::uint64_t want_digest = 0;
};

/// Distinct 32x32 encode requests with public-API-computed expectations.
std::vector<Form> make_forms(int count) {
  api::Session session;
  std::vector<Form> forms;
  forms.reserve(static_cast<std::size_t>(count));
  for (int k = 0; k < count; ++k) {
    image::Image img(32, 32, 1);
    for (int y = 0; y < 32; ++y)
      for (int x = 0; x < 32; ++x)
        img.at(x, y) = static_cast<std::uint8_t>((x * (3 + k) + y * (7 + k) + k * 13) & 0xFF);

    Form f;
    f.request.kind = serve::RequestKind::kEncode;
    f.request.config.quality = 80;
    f.request.config.subsampling = jpeg::Subsampling::k444;
    f.request.image = img;

    const auto expect = session.codec().encode(
        api::ImageView{img.data().data(), 32, 32, 1},
        api::EncodeOptions().quality(80).chroma_420(false));
    if (!expect.ok()) {
      std::fprintf(stderr, "bench_net: expectation encode failed\n");
      std::exit(1);
    }
    const std::vector<std::uint8_t> bytes = expect.value();
    f.want_digest = serve::fnv1a(bytes.data(), bytes.size());
    forms.push_back(std::move(f));
  }
  return forms;
}

double quantile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t i = static_cast<std::size_t>(q * static_cast<double>(v.size() - 1));
  return v[i];
}

struct LevelResult {
  std::string name;
  double offered_rps = 0.0;
  std::size_t sent = 0;
  std::size_t ok = 0;
  std::size_t rejected = 0;
  std::size_t errors = 0;
  std::size_t mismatches = 0;
  double elapsed_s = 0.0;
  std::vector<double> total_ms;    ///< client-side, kOk only
  std::vector<double> queue_ms;    ///< server-reported
  std::vector<double> service_ms;  ///< server-reported
};

/// Pipelined closed loop on one connection: measures service capacity.
double calibrate_rps(std::uint16_t port, const std::vector<Form>& forms, int requests) {
  net::Client client;
  std::string error;
  if (!client.connect("127.0.0.1", port, &error)) {
    std::fprintf(stderr, "bench_net: calibrate connect: %s\n", error.c_str());
    std::exit(1);
  }
  const int depth = 8;  // enough outstanding work to keep every worker busy
  int sent = 0, received = 0;
  const Clock::time_point t0 = Clock::now();
  while (received < requests) {
    while (sent < requests && sent - received < depth) {
      if (client.send_request(forms[static_cast<std::size_t>(sent) % forms.size()].request,
                              &error) == 0) {
        std::fprintf(stderr, "bench_net: calibrate send: %s\n", error.c_str());
        std::exit(1);
      }
      ++sent;
    }
    net::WireReply reply;
    if (!client.recv_reply(&reply, &error)) {
      std::fprintf(stderr, "bench_net: calibrate recv: %s\n", error.c_str());
      std::exit(1);
    }
    ++received;
  }
  const double elapsed = seconds_since(t0);
  return elapsed > 0 ? requests / elapsed : 1000.0;
}

/// One open-loop level: `connections` clients pace `total_requests` sends
/// at `offered_rps` aggregate, never waiting for replies.
LevelResult run_level(std::uint16_t port, const std::vector<Form>& forms,
                      const std::string& name, double offered_rps, int connections,
                      int total_requests) {
  LevelResult result;
  result.name = name;
  result.offered_rps = offered_rps;

  const int per_conn = total_requests / connections;
  const double interval_s = connections / offered_rps;

  struct ConnState {
    net::Client client;
    std::vector<Clock::time_point> send_time;
    std::vector<std::size_t> form_index;
    std::size_t sent = 0, ok = 0, rejected = 0, errors = 0, mismatches = 0;
    std::vector<double> total_ms, queue_ms, service_ms;
  };
  std::vector<ConnState> conns(static_cast<std::size_t>(connections));
  for (ConnState& c : conns) {
    std::string error;
    if (!c.client.connect("127.0.0.1", port, &error)) {
      std::fprintf(stderr, "bench_net: connect: %s\n", error.c_str());
      std::exit(1);
    }
    c.send_time.resize(static_cast<std::size_t>(per_conn));
    c.form_index.resize(static_cast<std::size_t>(per_conn));
  }

  const Clock::time_point start = Clock::now();
  std::vector<std::thread> threads;

  for (int ci = 0; ci < connections; ++ci) {
    ConnState& c = conns[static_cast<std::size_t>(ci)];

    // Sender: paces by the wall clock (open loop — no reply feedback).
    // The Client's send half (fd + id counter) and receive half (fd +
    // parser) are disjoint state, so one sender + one reader may share it.
    threads.emplace_back([&c, ci, per_conn, interval_s, start, &forms, connections] {
      std::string error;
      for (int i = 0; i < per_conn; ++i) {
        const double due =
            (static_cast<double>(i) + static_cast<double>(ci) / connections) * interval_s;
        for (;;) {
          const double now = seconds_since(start);
          if (now >= due) break;
          std::this_thread::sleep_for(std::chrono::duration<double>(
              std::min(due - now, 0.002)));
        }
        const std::size_t form = static_cast<std::size_t>((i * 13 + ci * 7) %
                                                          static_cast<int>(forms.size()));
        c.form_index[static_cast<std::size_t>(i)] = form;
        c.send_time[static_cast<std::size_t>(i)] = Clock::now();
        if (c.client.send_request(forms[form].request, &error) == 0) {
          ++c.errors;
          return;  // connection is dead; reader will error out too
        }
        ++c.sent;
      }
    });

    // Reader: collects replies, correlates by request id (fresh client =>
    // ids are 1..per_conn in send order), gates payload digests.
    threads.emplace_back([&c, per_conn, &forms] {
      std::string error;
      for (int i = 0; i < per_conn; ++i) {
        net::WireReply reply;
        if (!c.client.recv_reply(&reply, &error)) {
          ++c.errors;
          return;
        }
        const Clock::time_point now = Clock::now();
        if (reply.request_id == 0 || reply.request_id > static_cast<std::uint32_t>(per_conn)) {
          ++c.errors;
          continue;
        }
        const std::size_t idx = reply.request_id - 1;
        if (reply.status == net::WireStatus::kRejected) {
          ++c.rejected;
          continue;
        }
        if (reply.status != net::WireStatus::kOk) {
          ++c.errors;
          continue;
        }
        ++c.ok;
        if (serve::fnv1a(reply.bytes.data(), reply.bytes.size()) !=
            forms[c.form_index[idx]].want_digest)
          ++c.mismatches;
        c.total_ms.push_back(
            std::chrono::duration<double, std::milli>(now - c.send_time[idx]).count());
        c.queue_ms.push_back(reply.queue_us / 1000.0);
        c.service_ms.push_back(reply.service_us / 1000.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  result.elapsed_s = seconds_since(start);

  for (ConnState& c : conns) {
    result.sent += c.sent;
    result.ok += c.ok;
    result.rejected += c.rejected;
    result.errors += c.errors;
    result.mismatches += c.mismatches;
    result.total_ms.insert(result.total_ms.end(), c.total_ms.begin(), c.total_ms.end());
    result.queue_ms.insert(result.queue_ms.end(), c.queue_ms.begin(), c.queue_ms.end());
    result.service_ms.insert(result.service_ms.end(), c.service_ms.begin(),
                             c.service_ms.end());
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const int connections = argc > 1 ? std::atoi(argv[1]) : 4;
  const int requests_per_level = argc > 2 ? std::atoi(argv[2]) : 400;
  if (connections < 1 || requests_per_level < connections) {
    std::fprintf(stderr, "usage: %s [connections >= 1] [requests_per_level >= connections]\n",
                 argv[0]);
    return 2;
  }

  // Reject-policy service with a deliberately small queue: overload must
  // surface as typed rejections, which the 5x level exists to trigger.
  serve::ServiceConfig service_cfg;
  service_cfg.workers = 2;
  service_cfg.queue_capacity = 32;
  service_cfg.admission = serve::AdmissionPolicy::kReject;
  serve::TranscodeService service(std::move(service_cfg));

  net::Server server(service, net::ServerConfig{});
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "bench_net: server start: %s\n", error.c_str());
    return 1;
  }
  const std::uint16_t port = static_cast<std::uint16_t>(server.port());

  const std::vector<Form> forms = make_forms(32);

  std::printf("bench_net: calibrating on 127.0.0.1:%u ...\n", port);
  const double capacity =
      calibrate_rps(port, forms, std::min(requests_per_level, 200));
  std::printf("bench_net: measured capacity %.0f req/s\n", capacity);

  const struct {
    const char* name;
    double factor;
  } kLevels[] = {{"underload-0.5x", 0.5}, {"nearload-0.9x", 0.9}, {"overload-5x", 5.0}};

  bench::JsonWriter json("BENCH_net");
  json.field("bench", "net");
  json.field("connections", connections);
  json.field("requests_per_level", requests_per_level);
  json.field("capacity_rps", capacity);
  json.field("queue_capacity", static_cast<std::size_t>(32));
  json.field("workers", 2);

  std::size_t total_mismatches = 0;
  bool overload_rejected = false;
  json.begin_array("levels");
  const auto emit_level = [&](const LevelResult& r) {
    const double goodput = r.elapsed_s > 0 ? r.ok / r.elapsed_s : 0.0;
    std::printf(
        "bench_net: %-14s offered %7.0f rps  ok %5zu  rejected %5zu  errors %3zu  "
        "goodput %7.0f rps  p99 %.2f ms\n",
        r.name.c_str(), r.offered_rps, r.ok, r.rejected, r.errors, goodput,
        quantile(r.total_ms, 0.99));

    json.begin_object();
    json.field("name", r.name);
    json.field("offered_rps", r.offered_rps);
    json.field("sent", r.sent);
    json.field("ok", r.ok);
    json.field("rejected", r.rejected);
    json.field("errors", r.errors);
    json.field("elapsed_s", r.elapsed_s);
    json.field("achieved_rps", r.elapsed_s > 0 ? r.sent / r.elapsed_s : 0.0);
    json.field("goodput_rps", goodput);
    json.field("total_p50_ms", quantile(r.total_ms, 0.50));
    json.field("total_p95_ms", quantile(r.total_ms, 0.95));
    json.field("total_p99_ms", quantile(r.total_ms, 0.99));
    json.field("queue_p50_ms", quantile(r.queue_ms, 0.50));
    json.field("queue_p95_ms", quantile(r.queue_ms, 0.95));
    json.field("queue_p99_ms", quantile(r.queue_ms, 0.99));
    json.field("service_p50_ms", quantile(r.service_ms, 0.50));
    json.field("service_p95_ms", quantile(r.service_ms, 0.95));
    json.field("service_p99_ms", quantile(r.service_ms, 0.99));
    json.end_object();
  };
  for (const auto& level : kLevels) {
    const LevelResult r = run_level(port, forms, level.name, capacity * level.factor,
                                    connections, requests_per_level);
    total_mismatches += r.mismatches;
    if (level.factor > 1.0 && r.rejected > 0) overload_rejected = true;
    emit_level(r);
  }
  {
    // Observability overhead at a fixed underload point: the 0.5x level
    // again with every request traced end to end (net read -> root ->
    // net write plus the serve/codec spans). Rides in the same levels
    // array so the trajectory tracks goodput with tracing on vs off, and
    // its completions feed the same determinism gate.
    obs::Tracer::instance().set_sample_every(1);
    const LevelResult r = run_level(port, forms, "obs-full-0.5x", capacity * 0.5,
                                    connections, requests_per_level);
    obs::Tracer::instance().set_sample_every(0);
    total_mismatches += r.mismatches;
    emit_level(r);
  }
  json.end_array();
  json.field("overload_rejected", overload_rejected);
  json.field("payload_mismatches", total_mismatches);

  // kStats smoke: one Prometheus scrape over the wire must surface the
  // serve-layer submission counter through the unified registry.
  bool scrape_ok = false;
  {
    net::Client scraper;
    std::string text, scrape_err;
    if (scraper.connect("127.0.0.1", port, &scrape_err) &&
        scraper.scrape(net::StatsFormat::kPrometheus, &text, &scrape_err))
      scrape_ok = text.find("serve_requests_submitted_total") != std::string::npos;
    if (!scrape_ok)
      std::fprintf(stderr, "bench_net: stats scrape failed: %s\n", scrape_err.c_str());
  }
  json.field("scrape_ok", scrape_ok);
  json.field("all_identical", total_mismatches == 0);

  server.stop();
  service.shutdown();

  if (total_mismatches != 0) {
    std::fprintf(stderr,
                 "bench_net: DETERMINISM GATE FAILED: %zu payload mismatch(es) vs the "
                 "synchronous public API\n",
                 total_mismatches);
    return 1;
  }
  if (!scrape_ok) {
    std::fprintf(stderr,
                 "bench_net: stats scrape did not return the expected metrics\n");
    return 1;
  }
  if (!overload_rejected)
    std::fprintf(stderr,
                 "bench_net: note: the overload level produced no rejections on this "
                 "machine (capacity estimate may be low)\n");
  std::printf("bench_net: wrote %s\n", json.path().c_str());
  return 0;
}
