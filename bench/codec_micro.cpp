// Codec micro-benchmarks (google-benchmark). Two purposes:
//  1. Stage-level costs of the from-scratch codec (DCT variants, quantize,
//     entropy coding, full encode/decode).
//  2. The paper's "same hardware cost" claim: encoding with the DeepN-JPEG
//     table must cost the same as encoding with the stock JPEG table —
//     only table *contents* differ, the datapath is identical.
#include <benchmark/benchmark.h>

#include <random>
#include <string>
#include <vector>

#include "core/deepnjpeg.hpp"
#include "data/synthetic.hpp"
#include "jpeg/block_coder.hpp"
#include "jpeg/codec.hpp"
#include "jpeg/dct.hpp"
#include "jpeg/dct_int.hpp"
#include "jpeg/quant.hpp"
#include "simd/dispatch.hpp"

using namespace dnj;

namespace {

image::BlockF random_block(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> dist(-128.0f, 127.0f);
  image::BlockF b{};
  for (float& v : b) v = dist(rng);
  return b;
}

image::Image test_image(int dim, int channels) {
  data::GeneratorConfig cfg;
  cfg.width = dim;
  cfg.height = dim;
  cfg.channels = channels;
  cfg.seed = 7;
  return data::SyntheticDatasetGenerator(cfg).render(data::ClassKind::kBandNoise, 0);
}

jpeg::QuantTable deepn_table() {
  data::GeneratorConfig cfg;
  cfg.seed = 7;
  const data::Dataset ds = data::SyntheticDatasetGenerator(cfg).generate(4);
  return core::DeepNJpeg::design(ds).table;
}

void BM_FdctRef(benchmark::State& state) {
  const image::BlockF b = random_block(1);
  for (auto _ : state) benchmark::DoNotOptimize(jpeg::fdct_ref(b));
}
BENCHMARK(BM_FdctRef);

void BM_FdctAan(benchmark::State& state) {
  const image::BlockF b = random_block(1);
  for (auto _ : state) benchmark::DoNotOptimize(jpeg::fdct_aan(b));
}
BENCHMARK(BM_FdctAan);

void BM_FdctInt(benchmark::State& state) {
  std::int16_t in[64];
  std::mt19937_64 rng(9);
  for (std::int16_t& v : in) v = static_cast<std::int16_t>(static_cast<int>(rng() % 256) - 128);
  std::int32_t out[64];
  for (auto _ : state) {
    jpeg::fdct_int(in, out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_FdctInt);

void BM_IdctFast(benchmark::State& state) {
  const image::BlockF b = random_block(2);
  for (auto _ : state) benchmark::DoNotOptimize(jpeg::idct_fast(b));
}
BENCHMARK(BM_IdctFast);

void BM_Quantize(benchmark::State& state) {
  const image::BlockF coeffs = random_block(3);
  const jpeg::QuantTable table = jpeg::QuantTable::annex_k_luma();
  for (auto _ : state) benchmark::DoNotOptimize(jpeg::quantize(coeffs, table));
}
BENCHMARK(BM_Quantize);

void BM_HuffmanEncodeBlock(benchmark::State& state) {
  const jpeg::QuantizedBlock blk =
      jpeg::quantize(random_block(4), jpeg::QuantTable::annex_k_luma());
  const jpeg::HuffmanEncoder dc(jpeg::HuffmanSpec::default_dc_luma());
  const jpeg::HuffmanEncoder ac(jpeg::HuffmanSpec::default_ac_luma());
  std::vector<std::uint8_t> out;
  out.reserve(1 << 16);
  for (auto _ : state) {
    out.clear();
    jpeg::BitWriter bw(out);
    int pred = 0;
    jpeg::encode_block(bw, blk, pred, dc, ac);
    bw.flush();
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_HuffmanEncodeBlock);

void BM_EncodeGray(benchmark::State& state) {
  const image::Image img = test_image(static_cast<int>(state.range(0)), 1);
  jpeg::EncoderConfig cfg;
  cfg.quality = 75;
  for (auto _ : state) benchmark::DoNotOptimize(jpeg::encode(img, cfg));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * img.byte_size());
}
BENCHMARK(BM_EncodeGray)->Arg(32)->Arg(128);

void BM_EncodeColor420(benchmark::State& state) {
  const image::Image img = test_image(static_cast<int>(state.range(0)), 3);
  jpeg::EncoderConfig cfg;
  cfg.quality = 75;
  cfg.subsampling = jpeg::Subsampling::k420;
  for (auto _ : state) benchmark::DoNotOptimize(jpeg::encode(img, cfg));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * img.byte_size());
}
BENCHMARK(BM_EncodeColor420)->Arg(64);

void BM_Decode(benchmark::State& state) {
  const image::Image img = test_image(static_cast<int>(state.range(0)), 1);
  jpeg::EncoderConfig cfg;
  cfg.quality = 75;
  const auto bytes = jpeg::encode(img, cfg);
  for (auto _ : state) benchmark::DoNotOptimize(jpeg::decode(bytes));
}
BENCHMARK(BM_Decode)->Arg(32)->Arg(128);

void BM_EncodeOptimizedHuffman(benchmark::State& state) {
  const image::Image img = test_image(128, 1);
  jpeg::EncoderConfig cfg;
  cfg.quality = 75;
  cfg.optimize_huffman = true;
  for (auto _ : state) benchmark::DoNotOptimize(jpeg::encode(img, cfg));
}
BENCHMARK(BM_EncodeOptimizedHuffman);

// --- iso-cost pair: stock JPEG table vs DeepN-JPEG table ---

void BM_EncodeJpegTable(benchmark::State& state) {
  const image::Image img = test_image(128, 1);
  jpeg::EncoderConfig cfg;
  cfg.quality = 50;
  for (auto _ : state) benchmark::DoNotOptimize(jpeg::encode(img, cfg));
}
BENCHMARK(BM_EncodeJpegTable);

void BM_EncodeDeepNTable(benchmark::State& state) {
  const image::Image img = test_image(128, 1);
  const jpeg::EncoderConfig cfg = core::custom_table_config(deepn_table());
  for (auto _ : state) benchmark::DoNotOptimize(jpeg::encode(img, cfg));
}
BENCHMARK(BM_EncodeDeepNTable);

void BM_TableDesign(benchmark::State& state) {
  data::GeneratorConfig cfg;
  cfg.seed = 7;
  const data::Dataset ds = data::SyntheticDatasetGenerator(cfg).generate(8);
  for (auto _ : state) benchmark::DoNotOptimize(core::DeepNJpeg::design(ds));
}
BENCHMARK(BM_TableDesign);

// --- per-level SIMD kernel micro-benches ---
//
// Registered at runtime for every level this machine supports, so one run
// prints scalar vs sse2 vs avx2 rows side by side (BM_FdctBatch/scalar,
// BM_FdctBatch/avx2, ...). Each benchmark pins its level up front; the
// batch kernels process a 256-block plane per iteration.

constexpr std::size_t kBatchBlocks = 256;

// The level active at program start (i.e. the DNJ_SIMD pin, or auto-detect).
// Every per-level benchmark restores this instead of max_supported_level(),
// so an env-pinned run really measures the pinned level end to end.
simd::Level ambient_level() {
  static const simd::Level level = simd::active_level();
  return level;
}

std::vector<float> batch_blocks(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> dist(-128.0f, 127.0f);
  std::vector<float> out(kBatchBlocks * 64);
  for (float& v : out) v = dist(rng);
  return out;
}

void BM_FdctBatch(benchmark::State& state, simd::Level level) {
  simd::set_level(level);
  std::vector<float> blocks = batch_blocks(11);
  for (auto _ : state) {
    jpeg::fdct_batch(blocks.data(), kBatchBlocks);
    benchmark::DoNotOptimize(blocks.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kBatchBlocks);
  simd::set_level(ambient_level());
}

void BM_IdctBatch(benchmark::State& state, simd::Level level) {
  simd::set_level(level);
  std::vector<float> blocks = batch_blocks(12);
  for (auto _ : state) {
    jpeg::idct_batch(blocks.data(), kBatchBlocks);
    benchmark::DoNotOptimize(blocks.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kBatchBlocks);
  simd::set_level(ambient_level());
}

void BM_QuantZigzagBatch(benchmark::State& state, simd::Level level) {
  simd::set_level(level);
  const std::vector<float> coeffs = batch_blocks(13);
  const jpeg::ReciprocalTable recip(jpeg::QuantTable::annex_k_luma());
  std::vector<std::int16_t> out(kBatchBlocks * 64);
  for (auto _ : state) {
    jpeg::quantize_zigzag_batch(coeffs.data(), kBatchBlocks, recip, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kBatchBlocks);
  simd::set_level(ambient_level());
}

void BM_GemmAcc(benchmark::State& state, simd::Level level) {
  simd::set_level(level);
  // Conv2D-forward shape from the 32x32 MiniAlexNet stem:
  // C[32 x 1024] += W[32 x 75] * col[75 x 1024].
  const int m = 32, k = 75, n = 1024;
  std::mt19937_64 rng(14);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> a(static_cast<std::size_t>(m) * k);
  std::vector<float> b(static_cast<std::size_t>(k) * n);
  std::vector<float> c(static_cast<std::size_t>(m) * n, 0.0f);
  for (float& v : a) v = dist(rng);
  for (float& v : b) v = dist(rng);
  for (auto _ : state) {
    simd::kernels().gemm_acc(a.data(), b.data(), c.data(), m, k, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 * m * k * n);
  simd::set_level(ambient_level());
}

void register_simd_level_benches() {
  for (simd::Level level :
       {simd::Level::kScalar, simd::Level::kSse2, simd::Level::kAvx2}) {
    if (!simd::set_level(level)) continue;
    const std::string suffix = std::string("/") + simd::level_name(level);
    benchmark::RegisterBenchmark(("BM_FdctBatch" + suffix).c_str(), BM_FdctBatch,
                                 level);
    benchmark::RegisterBenchmark(("BM_IdctBatch" + suffix).c_str(), BM_IdctBatch,
                                 level);
    benchmark::RegisterBenchmark(("BM_QuantZigzagBatch" + suffix).c_str(),
                                 BM_QuantZigzagBatch, level);
    benchmark::RegisterBenchmark(("BM_GemmAcc" + suffix).c_str(), BM_GemmAcc, level);
  }
  simd::set_level(ambient_level());
}

}  // namespace

int main(int argc, char** argv) {
  ambient_level();  // snapshot the DNJ_SIMD pin before any benchmark touches it
  register_simd_level_benches();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
