// Section 3.1 / Eq. 2: the contribution of a frequency band to the DNN is
// governed by its DCT coefficient magnitude. We measure the trained
// network's sensitivity to a small perturbation injected into one band at a
// time and correlate it with the band's coefficient standard deviation.
// Expected shape: strong positive rank correlation — exactly the heuristic
// DeepN-JPEG's table design is built on.
#include <cmath>
#include <cstdio>
#include <numeric>

#include "image/blocks.hpp"
#include "jpeg/dct.hpp"
#include "jpeg/zigzag.hpp"
#include "bench_common.hpp"

using namespace dnj;

namespace {

// Zeroes DCT band `k` of every block — the exact distortion aggressive
// quantization inflicts on a band. (Adding a constant instead would
// *fabricate* a coherent grating in dead bands and measure the network's
// response to a new pattern rather than the information the band carries.)
image::Image zero_band(const image::Image& img, int band) {
  const image::PlaneF plane = image::to_plane(img, 0);
  int bx = 0, by = 0;
  std::vector<image::BlockF> blocks = image::split_blocks(plane, &bx, &by);
  for (image::BlockF& blk : blocks) {
    image::level_shift(blk);
    image::BlockF freq = jpeg::fdct(blk);
    freq[static_cast<std::size_t>(band)] = 0.0f;
    blk = jpeg::idct(freq);
    image::level_unshift(blk);
  }
  image::Image out(img.width(), img.height(), 1);
  image::from_plane(image::merge_blocks(blocks, bx, by), out, 0);
  return out;
}

// Mean absolute *logit* change: softmax saturates near-certain predictions,
// which would flatten the sensitivity signal Eq. 2 describes.
std::vector<float> logits_of(nn::Layer& model, const image::Image& img) {
  data::Dataset tmp;
  tmp.samples.push_back({img, 0});
  const nn::Tensor x = nn::to_batch(tmp, {0});
  const nn::Tensor out = model.forward(x, /*train=*/false);
  return std::vector<float>(out.sample(0), out.sample(0) + out.sample_size());
}

double mean_logit_change(nn::Layer& model, const std::vector<const data::Sample*>& samples,
                         int band) {
  double total = 0.0;
  for (const data::Sample* s : samples) {
    const auto before = logits_of(model, s->image);
    const auto after = logits_of(model, zero_band(s->image, band));
    double change = 0.0;
    for (std::size_t c = 0; c < before.size(); ++c)
      change += std::abs(static_cast<double>(after[c]) - before[c]);
    total += change;
  }
  return total / static_cast<double>(samples.size());
}

double pearson(const std::vector<double>& a, const std::vector<double>& b) {
  const double n = static_cast<double>(a.size());
  const double ma = std::accumulate(a.begin(), a.end(), 0.0) / n;
  const double mb = std::accumulate(b.begin(), b.end(), 0.0) / n;
  double num = 0.0, da = 0.0, db = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - ma) * (b[i] - mb);
    da += (a[i] - ma) * (a[i] - ma);
    db += (b[i] - mb) * (b[i] - mb);
  }
  return num / std::sqrt(da * db + 1e-30);
}

}  // namespace

int main() {
  std::printf("=== Eq. 2 check: band sensitivity vs coefficient magnitude ===\n");
  bench::ExperimentEnv env = bench::make_env(40, 12);
  nn::LayerPtr model = bench::train_model(nn::ModelKind::kMiniAlexNet, env.train);
  const core::FrequencyProfile profile = core::analyze(env.train);

  // Probe a spread of bands: every 4th zig-zag position plus the corner.
  std::vector<int> bands;
  for (int pos = 1; pos < 64; pos += 4) bands.push_back(jpeg::kZigzag[static_cast<std::size_t>(pos)]);
  bands.push_back(63);

  std::vector<const data::Sample*> probe;
  for (std::size_t i = 0; i < env.test.size(); i += 4) probe.push_back(&env.test.samples[i]);

  bench::JsonWriter out("gradient_model");
  out.begin_rows({"band_row", "band_col", "sigma", "sensitivity"});
  std::printf("%6s %6s %12s %14s\n", "row", "col", "sigma", "sensitivity");

  std::vector<double> sigmas, sens, log_sigmas, log_sens;
  for (int band : bands) {
    const double sigma = profile.sigma[static_cast<std::size_t>(band)];
    const double s = mean_logit_change(*model, probe, band);
    sigmas.push_back(sigma);
    sens.push_back(s);
    log_sigmas.push_back(std::log(sigma + 1e-6));
    log_sens.push_back(std::log(s + 1e-9));
    std::printf("%6d %6d %12.3f %14.6f\n", band / 8, band % 8, sigma, s);
    out.row({std::to_string(band / 8), std::to_string(band % 8), bench::fmt(sigma, 3),
             bench::fmt(s, 6)});
  }

  std::printf("\nPearson correlation (sigma vs sensitivity):       %.3f\n",
              pearson(sigmas, sens));
  std::printf("Pearson correlation (log sigma vs log sensitivity): %.3f\n",
              pearson(log_sigmas, log_sens));
  std::printf("(expect: clearly positive — high-magnitude bands matter more to the DNN)\n");
  std::printf("json: %s\n", out.path().c_str());
  return 0;
}
