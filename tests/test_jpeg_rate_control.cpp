#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "jpeg/codec.hpp"
#include "jpeg/rate_control.hpp"

namespace dnj::jpeg {
namespace {

image::Image busy_image() {
  data::GeneratorConfig cfg;
  cfg.width = 64;
  cfg.height = 64;
  cfg.seed = 321;
  return data::SyntheticDatasetGenerator(cfg).render(data::ClassKind::kBandNoise, 0);
}

TEST(RateControl, HitsBudgetWhenReachable) {
  const image::Image img = busy_image();
  EncoderConfig base;
  const std::size_t q1 = encode(img, [] {
                           EncoderConfig c;
                           c.quality = 1;
                           return c;
                         }()).size();
  const std::size_t q100 = encode(img, [] {
                             EncoderConfig c;
                             c.quality = 100;
                             return c;
                           }()).size();
  const std::size_t target = (q1 + q100) / 2;
  const RateSearchResult res = encode_for_size(img, target, base);
  EXPECT_LE(res.bytes.size(), target);
  EXPECT_GE(res.quality, 1);
  EXPECT_LE(res.quality, 100);
}

TEST(RateControl, PicksHighestQualityThatFits) {
  const image::Image img = busy_image();
  EncoderConfig base;
  const RateSearchResult res = encode_for_size(img, 2200, base);
  if (res.quality < 100) {
    // Quality + 1 must overflow the budget, otherwise the search undershot.
    EncoderConfig next = base;
    next.quality = res.quality + 1;
    EXPECT_GT(encode(img, next).size(), 2200u);
  }
}

TEST(RateControl, UnreachableBudgetReturnsFloor) {
  const image::Image img = busy_image();
  const RateSearchResult res = encode_for_size(img, 10, {});
  EXPECT_EQ(res.quality, 1);
  EXPECT_GT(res.bytes.size(), 10u);
}

TEST(RateControl, HugeBudgetReturnsMaxQuality) {
  const image::Image img = busy_image();
  const RateSearchResult res = encode_for_size(img, 1u << 24, {});
  EXPECT_EQ(res.quality, 100);
}

TEST(RateControl, SearchIsLogarithmic) {
  const image::Image img = busy_image();
  const RateSearchResult res = encode_for_size(img, 2000, {});
  EXPECT_LE(res.encode_calls, 9);  // floor probe + ceil(log2(100))
}

TEST(RateControl, ResultDecodes) {
  const image::Image img = busy_image();
  const RateSearchResult res = encode_for_size(img, 2500, {});
  const image::Image decoded = decode(res.bytes);
  EXPECT_EQ(decoded.width(), img.width());
  EXPECT_EQ(decoded.height(), img.height());
}

TEST(RateControl, BppVariantMatchesByteBudget) {
  const image::Image img = busy_image();
  const double bpp = 1.5;
  const RateSearchResult res = encode_for_bpp(img, bpp, {});
  EXPECT_LE(bits_per_pixel(res.bytes.size(), img.width(), img.height()), bpp + 1e-9);
}

TEST(RateControl, Errors) {
  const image::Image img = busy_image();
  EXPECT_THROW(encode_for_size(img, 100, {}, 0, 100), std::invalid_argument);
  EXPECT_THROW(encode_for_size(img, 100, {}, 60, 50), std::invalid_argument);
  EncoderConfig custom;
  custom.use_custom_tables = true;
  EXPECT_THROW(encode_for_size(img, 100, custom), std::invalid_argument);
  EXPECT_THROW(encode_for_bpp(img, 0.0, {}), std::invalid_argument);
}

}  // namespace
}  // namespace dnj::jpeg
