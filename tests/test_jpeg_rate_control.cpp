#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "jpeg/codec.hpp"
#include "jpeg/rate_control.hpp"

namespace dnj::jpeg {
namespace {

image::Image busy_image() {
  data::GeneratorConfig cfg;
  cfg.width = 64;
  cfg.height = 64;
  cfg.seed = 321;
  return data::SyntheticDatasetGenerator(cfg).render(data::ClassKind::kBandNoise, 0);
}

TEST(RateControl, HitsBudgetWhenReachable) {
  const image::Image img = busy_image();
  EncoderConfig base;
  const std::size_t q1 = encode(img, [] {
                           EncoderConfig c;
                           c.quality = 1;
                           return c;
                         }()).size();
  const std::size_t q100 = encode(img, [] {
                             EncoderConfig c;
                             c.quality = 100;
                             return c;
                           }()).size();
  const std::size_t target = (q1 + q100) / 2;
  const RateSearchResult res = encode_for_size(img, target, base);
  EXPECT_LE(res.bytes.size(), target);
  EXPECT_GE(res.quality, 1);
  EXPECT_LE(res.quality, 100);
}

TEST(RateControl, PicksHighestQualityThatFits) {
  const image::Image img = busy_image();
  EncoderConfig base;
  const RateSearchResult res = encode_for_size(img, 2200, base);
  if (res.quality < 100) {
    // Quality + 1 must overflow the budget, otherwise the search undershot.
    EncoderConfig next = base;
    next.quality = res.quality + 1;
    EXPECT_GT(encode(img, next).size(), 2200u);
  }
}

TEST(RateControl, UnreachableBudgetThrows) {
  // An unreachable byte target is a caller error: the search must refuse
  // with a typed error (kInvalidArgument at the API boundary), never
  // silently hand back an oversized floor-quality stream.
  const image::Image img = busy_image();
  EXPECT_THROW(encode_for_size(img, 10, {}), std::invalid_argument);
  EXPECT_THROW(encode_for_bpp(img, 1e-6, {}), std::invalid_argument);
}

TEST(RateControl, HugeBudgetReturnsMaxQuality) {
  const image::Image img = busy_image();
  const RateSearchResult res = encode_for_size(img, 1u << 24, {});
  EXPECT_EQ(res.quality, 100);
}

TEST(RateControl, SearchIsLogarithmic) {
  const image::Image img = busy_image();
  const RateSearchResult res = encode_for_size(img, 2000, {});
  EXPECT_LE(res.encode_calls, 9);  // floor probe + ceil(log2(100))
}

TEST(RateControl, ResultDecodes) {
  const image::Image img = busy_image();
  const RateSearchResult res = encode_for_size(img, 2500, {});
  const image::Image decoded = decode(res.bytes);
  EXPECT_EQ(decoded.width(), img.width());
  EXPECT_EQ(decoded.height(), img.height());
}

TEST(RateControl, BppVariantMatchesByteBudget) {
  const image::Image img = busy_image();
  const double bpp = 1.5;
  const RateSearchResult res = encode_for_bpp(img, bpp, {});
  EXPECT_LE(bits_per_pixel(res.bytes.size(), img.width(), img.height()), bpp + 1e-9);
}

// ---------------------------------------------------------------------------
// Dataset-level rate search (the design-job rate controller).

std::vector<image::Image> small_dataset(int channels) {
  data::GeneratorConfig cfg;
  cfg.width = 48;
  cfg.height = 48;
  cfg.channels = channels;
  cfg.seed = 777;
  data::SyntheticDatasetGenerator gen(cfg);
  std::vector<image::Image> images;
  for (int i = 0; i < 4; ++i)
    images.push_back(gen.render(data::ClassKind::kBandNoise, i));
  return images;
}

std::vector<const image::Image*> views_of(const std::vector<image::Image>& images) {
  std::vector<const image::Image*> views;
  for (const image::Image& img : images) views.push_back(&img);
  return views;
}

double mean_scan_bytes_at(const std::vector<image::Image>& images,
                          const EncoderConfig& base, int quality) {
  const EncoderConfig cfg = config_at_quality(base, quality);
  double total = 0.0;
  for (const image::Image& img : images)
    total += static_cast<double>(scan_byte_count(encode(img, cfg)));
  return total / static_cast<double>(images.size());
}

// The contract the design job's rate controller leans on: the achieved
// mean is under target, and the next quality up would overshoot (the
// search picked the *highest* fitting rate point, not just any).
void check_dataset_search(const std::vector<image::Image>& images,
                          const EncoderConfig& base) {
  const double floor_mean = mean_scan_bytes_at(images, base, 1);
  const double ceil_mean = mean_scan_bytes_at(images, base, 100);
  const double target = (floor_mean + ceil_mean) / 2.0;
  const DatasetRateResult res = search_dataset_quality(views_of(images), target, base);
  EXPECT_LE(res.mean_scan_bytes, target);
  EXPECT_NEAR(res.mean_scan_bytes, mean_scan_bytes_at(images, base, res.quality), 1e-9);
  if (res.quality < 100) {
    EXPECT_GT(mean_scan_bytes_at(images, base, res.quality + 1), target);
  }
}

TEST(DatasetRateSearch, AchievedUnderTargetGray) {
  check_dataset_search(small_dataset(1), {});
}

TEST(DatasetRateSearch, AchievedUnderTargetColor420) {
  EncoderConfig base;
  base.subsampling = Subsampling::k420;
  check_dataset_search(small_dataset(3), base);
}

TEST(DatasetRateSearch, AchievedUnderTargetColor444) {
  EncoderConfig base;
  base.subsampling = Subsampling::k444;
  check_dataset_search(small_dataset(3), base);
}

TEST(DatasetRateSearch, DrivesCustomTables) {
  // Custom-table configs are scaled around their designed midpoint
  // (quality 50 = tables verbatim) instead of being replaced — the rate
  // point keeps the DeepN band structure.
  QuantTable table;
  for (int i = 0; i < 64; ++i) table.step(i) = static_cast<std::uint16_t>(8 + 2 * i);
  EncoderConfig base;
  base.use_custom_tables = true;
  base.luma_table = table;
  base.chroma_table = table;
  check_dataset_search(small_dataset(1), base);
  const EncoderConfig mid = config_at_quality(base, 50);
  EXPECT_TRUE(mid.use_custom_tables);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(mid.luma_table.step(i), table.step(i));
}

TEST(DatasetRateSearch, Errors) {
  const std::vector<image::Image> images = small_dataset(1);
  EXPECT_THROW(search_dataset_quality({}, 1000.0, {}), std::invalid_argument);
  // Unreachable mean: even quality 1 overshoots one byte per image.
  EXPECT_THROW(search_dataset_quality(views_of(images), 1.0, {}), std::invalid_argument);
  EXPECT_THROW(search_dataset_quality(views_of(images), 1000.0, {}, 0, 100),
               std::invalid_argument);
  EXPECT_THROW(search_dataset_quality(views_of(images), 1000.0, {}, 60, 50),
               std::invalid_argument);
}

TEST(RateControl, Errors) {
  const image::Image img = busy_image();
  EXPECT_THROW(encode_for_size(img, 100, {}, 0, 100), std::invalid_argument);
  EXPECT_THROW(encode_for_size(img, 100, {}, 60, 50), std::invalid_argument);
  EncoderConfig custom;
  custom.use_custom_tables = true;
  EXPECT_THROW(encode_for_size(img, 100, custom), std::invalid_argument);
  EXPECT_THROW(encode_for_bpp(img, 0.0, {}), std::invalid_argument);
}

}  // namespace
}  // namespace dnj::jpeg
