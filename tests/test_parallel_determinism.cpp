// Pin the runtime layer's central contract: thread count never changes
// results. Every parallel loop in core/ splits work by range and grain
// only and merges partial results in index order, so byte counts, PSNR
// and annealed tables must be identical — not approximately, exactly —
// between 1 thread and N threads.
#include <gtest/gtest.h>

#include "core/deepnjpeg.hpp"
#include "core/sa_optimizer.hpp"
#include "core/transcode.hpp"
#include "data/synthetic.hpp"

namespace dnj::core {
namespace {

data::Dataset det_dataset(int per_class = 6) {
  data::GeneratorConfig cfg;
  cfg.width = 32;
  cfg.height = 32;
  cfg.num_classes = 4;
  cfg.seed = 777;
  return data::SyntheticDatasetGenerator(cfg).generate(per_class);
}

jpeg::EncoderConfig q80_config() {
  jpeg::EncoderConfig cfg;
  cfg.quality = 80;
  cfg.subsampling = jpeg::Subsampling::k444;
  return cfg;
}

TEST(ParallelDeterminism, TranscodeIsIdenticalAcrossThreadCounts) {
  const data::Dataset ds = det_dataset();
  const jpeg::EncoderConfig cfg = q80_config();
  const TranscodeResult serial = transcode(ds, cfg, /*num_threads=*/1);
  for (int threads : {2, 4, 8}) {
    const TranscodeResult parallel = transcode(ds, cfg, threads);
    EXPECT_EQ(parallel.total_bytes, serial.total_bytes) << "threads=" << threads;
    EXPECT_EQ(parallel.scan_bytes, serial.scan_bytes) << "threads=" << threads;
    // Bit-exact, not EXPECT_DOUBLE_EQ: the fold order is thread-invariant.
    EXPECT_EQ(parallel.mean_psnr, serial.mean_psnr) << "threads=" << threads;
    ASSERT_EQ(parallel.dataset.size(), serial.dataset.size());
    for (std::size_t i = 0; i < serial.dataset.size(); ++i) {
      EXPECT_EQ(parallel.dataset.samples[i].image, serial.dataset.samples[i].image);
      EXPECT_EQ(parallel.dataset.samples[i].label, serial.dataset.samples[i].label);
    }
  }
}

TEST(ParallelDeterminism, DatasetByteCountsAreIdenticalAcrossThreadCounts) {
  const data::Dataset ds = det_dataset();
  const jpeg::EncoderConfig cfg = q80_config();
  const std::size_t enc1 = dataset_encoded_bytes(ds, cfg, 1);
  const std::size_t scan1 = dataset_scan_bytes(ds, cfg, 1);
  const std::size_t ref1 = reference_bytes_qf100(ds, 1);
  for (int threads : {2, 4}) {
    EXPECT_EQ(dataset_encoded_bytes(ds, cfg, threads), enc1);
    EXPECT_EQ(dataset_scan_bytes(ds, cfg, threads), scan1);
    EXPECT_EQ(reference_bytes_qf100(ds, threads), ref1);
  }
}

TEST(ParallelDeterminism, AnnealedTableIsIdenticalAcrossThreadCounts) {
  const data::Dataset ds = det_dataset(4);
  const FrequencyProfile profile = analyze(ds);
  SaConfig cfg;
  cfg.iterations = 80;
  cfg.sample_images = 6;

  cfg.num_threads = 1;
  const SaResult serial = anneal_table(ds, profile, jpeg::QuantTable::uniform(8), cfg);
  for (int threads : {2, 4}) {
    cfg.num_threads = threads;
    const SaResult parallel = anneal_table(ds, profile, jpeg::QuantTable::uniform(8), cfg);
    EXPECT_EQ(parallel.table, serial.table) << "threads=" << threads;
    EXPECT_EQ(parallel.best_cost, serial.best_cost) << "threads=" << threads;
    EXPECT_EQ(parallel.initial_cost, serial.initial_cost) << "threads=" << threads;
    EXPECT_EQ(parallel.accepted_moves, serial.accepted_moves) << "threads=" << threads;
    ASSERT_EQ(parallel.cost_history.size(), serial.cost_history.size());
    for (std::size_t i = 0; i < serial.cost_history.size(); ++i)
      EXPECT_EQ(parallel.cost_history[i], serial.cost_history[i]) << "iteration " << i;
  }
}

}  // namespace
}  // namespace dnj::core
