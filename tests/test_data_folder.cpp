#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "data/folder.hpp"
#include "data/synthetic.hpp"
#include "image/io.hpp"

namespace dnj::data {
namespace {

namespace fs = std::filesystem;

class FolderDatasetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique directory per test: ctest runs each gtest case as its own
    // process, possibly in parallel, so a shared path would race.
    root_ = fs::path(::testing::TempDir()) /
            (std::string("dnj_folder_") +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  Dataset make_synthetic(int per_class, int classes = 3) {
    GeneratorConfig cfg;
    cfg.num_classes = classes;
    cfg.seed = 77;
    return SyntheticDatasetGenerator(cfg).generate(per_class);
  }

  fs::path root_;
};

TEST_F(FolderDatasetTest, SaveLoadRoundTrip) {
  const Dataset ds = make_synthetic(4);
  save_folder_dataset(ds, root_.string(), {"alpha", "beta", "gamma"});
  const FolderDataset loaded = load_folder_dataset(root_.string());
  EXPECT_EQ(loaded.dataset.num_classes, 3);
  EXPECT_EQ(loaded.dataset.size(), ds.size());
  ASSERT_EQ(loaded.classes.size(), 3u);
  EXPECT_EQ(loaded.classes[0].name, "alpha");
  EXPECT_EQ(loaded.classes[2].name, "gamma");
  EXPECT_EQ(loaded.classes[1].image_count, 4u);
  // Pixel-exact round trip (PNM is lossless).
  std::size_t matches = 0;
  for (const Sample& orig : ds.samples)
    for (const Sample& got : loaded.dataset.samples)
      if (orig.image == got.image && orig.label == got.label) {
        ++matches;
        break;
      }
  EXPECT_EQ(matches, ds.size());
}

TEST_F(FolderDatasetTest, LabelsFollowLexicographicOrder) {
  const Dataset ds = make_synthetic(1, 2);
  save_folder_dataset(ds, root_.string(), {"zed", "ant"});
  const FolderDataset loaded = load_folder_dataset(root_.string());
  EXPECT_EQ(loaded.classes[0].name, "ant");
  EXPECT_EQ(loaded.classes[0].label, 0);
  EXPECT_EQ(loaded.classes[1].name, "zed");
}

TEST_F(FolderDatasetTest, RejectsMissingRoot) {
  EXPECT_THROW(load_folder_dataset((root_ / "nope").string()), std::runtime_error);
}

TEST_F(FolderDatasetTest, RejectsEmptyRoot) {
  fs::create_directories(root_);
  EXPECT_THROW(load_folder_dataset(root_.string()), std::runtime_error);
}

TEST_F(FolderDatasetTest, RejectsMixedGeometry) {
  GeneratorConfig small;
  small.num_classes = 2;
  small.seed = 1;
  GeneratorConfig big = small;
  big.width = 64;
  big.height = 64;
  save_folder_dataset(SyntheticDatasetGenerator(small).generate(1), root_.string(),
                      {"a", "b"});
  // Drop a larger image into class "a".
  const image::Image odd = SyntheticDatasetGenerator(big).render(ClassKind::kGradient, 0);
  image::write_pnm(odd, (root_ / "a" / "9999.pgm").string());
  EXPECT_THROW(load_folder_dataset(root_.string()), std::runtime_error);
  EXPECT_NO_THROW(load_folder_dataset(root_.string(), /*allow_mixed_sizes=*/true));
}

TEST_F(FolderDatasetTest, IgnoresNonImageFiles) {
  const Dataset ds = make_synthetic(2, 2);
  save_folder_dataset(ds, root_.string(), {"a", "b"});
  std::ofstream(root_ / "a" / "notes.txt") << "not an image";
  const FolderDataset loaded = load_folder_dataset(root_.string());
  EXPECT_EQ(loaded.dataset.size(), ds.size());
}

TEST_F(FolderDatasetTest, SaveRejectsNameMismatch) {
  const Dataset ds = make_synthetic(1);
  EXPECT_THROW(save_folder_dataset(ds, root_.string(), {"only_one"}),
               std::invalid_argument);
}

}  // namespace
}  // namespace dnj::data
