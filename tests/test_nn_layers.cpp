#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "nn/composite.hpp"
#include "nn/layers.hpp"
#include "nn/loss.hpp"

namespace dnj::nn {
namespace {

Tensor random_tensor(int n, int c, int h, int w, std::uint64_t seed, float scale = 1.0f) {
  Tensor t(n, c, h, w);
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> dist(0.0f, scale);
  for (float& v : t.data()) v = dist(rng);
  return t;
}

// Scalar objective: weighted sum of layer outputs, with fixed weights so the
// analytic gradient is just those weights propagated backward.
double objective(const Tensor& y, const std::vector<float>& obj_w) {
  double s = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) s += static_cast<double>(y.data()[i]) * obj_w[i];
  return s;
}

// Central-difference check of dL/dx for an arbitrary layer. Also verifies
// parameter gradients when the layer has parameters.
void check_gradients(Layer& layer, Tensor x, double tol = 2e-2, float eps = 1e-2f) {
  Tensor y = layer.forward(x, /*train=*/true);
  std::mt19937_64 rng(999);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  std::vector<float> obj_w(y.size());
  for (float& v : obj_w) v = dist(rng);

  Tensor dy = y;
  for (std::size_t i = 0; i < dy.size(); ++i) dy.data()[i] = obj_w[i];
  layer.zero_grads();
  const Tensor dx = layer.backward(dy);

  // Check a sample of input coordinates.
  std::uniform_int_distribution<std::size_t> pick(0, x.size() - 1);
  for (int trial = 0; trial < 24; ++trial) {
    const std::size_t i = pick(rng);
    const float orig = x.data()[i];
    x.data()[i] = orig + eps;
    const double fp = objective(layer.forward(x, true), obj_w);
    x.data()[i] = orig - eps;
    const double fm = objective(layer.forward(x, true), obj_w);
    x.data()[i] = orig;
    const double numeric = (fp - fm) / (2.0 * eps);
    EXPECT_NEAR(dx.data()[i], numeric, tol + 0.05 * std::abs(numeric)) << "input idx " << i;
  }

  // Restore forward caches, then check parameter gradients.
  layer.zero_grads();
  layer.forward(x, true);
  layer.backward(dy);
  std::vector<ParamRef> params;
  layer.collect_params(params);
  for (ParamRef& p : params) {
    std::uniform_int_distribution<std::size_t> ppick(0, p.value->size() - 1);
    for (int trial = 0; trial < 8; ++trial) {
      const std::size_t i = ppick(rng);
      const float orig = (*p.value)[i];
      (*p.value)[i] = orig + eps;
      const double fp = objective(layer.forward(x, true), obj_w);
      (*p.value)[i] = orig - eps;
      const double fm = objective(layer.forward(x, true), obj_w);
      (*p.value)[i] = orig;
      const double numeric = (fp - fm) / (2.0 * eps);
      EXPECT_NEAR((*p.grad)[i], numeric, tol + 0.05 * std::abs(numeric)) << "param idx " << i;
    }
  }
}

TEST(Conv2D, OutputShape) {
  std::mt19937_64 rng(1);
  Conv2D conv(3, 5, 3, 1, 1, rng);
  const Tensor y = conv.forward(random_tensor(2, 3, 8, 8, 2), false);
  EXPECT_EQ(y.n(), 2);
  EXPECT_EQ(y.c(), 5);
  EXPECT_EQ(y.h(), 8);
  EXPECT_EQ(y.w(), 8);
}

TEST(Conv2D, StrideShrinksOutput) {
  std::mt19937_64 rng(1);
  Conv2D conv(1, 2, 3, 2, 1, rng);
  const Tensor y = conv.forward(random_tensor(1, 1, 8, 8, 2), false);
  EXPECT_EQ(y.h(), 4);
  EXPECT_EQ(y.w(), 4);
}

TEST(Conv2D, KnownIdentityKernel) {
  std::mt19937_64 rng(1);
  Conv2D conv(1, 1, 1, 1, 0, rng);
  conv.weights()[0] = 2.0f;
  conv.bias()[0] = 1.0f;
  Tensor x(1, 1, 2, 2);
  x.at(0, 0, 0, 0) = 3.0f;
  x.at(0, 0, 1, 1) = -1.0f;
  const Tensor y = conv.forward(x, false);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 7.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), -1.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 1), 1.0f);
}

TEST(Conv2D, GradientCheck) {
  std::mt19937_64 rng(11);
  Conv2D conv(2, 3, 3, 1, 1, rng);
  check_gradients(conv, random_tensor(2, 2, 5, 5, 21));
}

TEST(Conv2D, GradientCheckStridedNoPad) {
  std::mt19937_64 rng(12);
  Conv2D conv(1, 2, 3, 2, 0, rng);
  check_gradients(conv, random_tensor(2, 1, 7, 7, 22));
}

TEST(Conv2D, RejectsChannelMismatch) {
  std::mt19937_64 rng(1);
  Conv2D conv(2, 2, 3, 1, 1, rng);
  EXPECT_THROW(conv.forward(random_tensor(1, 3, 8, 8, 1), false), std::invalid_argument);
}

TEST(MaxPool2D, ForwardSelectsMaxima) {
  MaxPool2D pool(2, 2);
  Tensor x(1, 1, 2, 4);
  x.at(0, 0, 0, 0) = 1;
  x.at(0, 0, 0, 1) = 5;
  x.at(0, 0, 1, 0) = 2;
  x.at(0, 0, 1, 1) = 3;
  x.at(0, 0, 0, 2) = -8;
  x.at(0, 0, 0, 3) = -2;
  x.at(0, 0, 1, 2) = -1;
  x.at(0, 0, 1, 3) = -9;
  const Tensor y = pool.forward(x, true);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 5.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 1), -1.0f);
}

TEST(MaxPool2D, BackwardRoutesToArgmax) {
  MaxPool2D pool(2, 2);
  Tensor x(1, 1, 2, 2);
  x.at(0, 0, 0, 1) = 10.0f;
  pool.forward(x, true);
  Tensor dy(1, 1, 1, 1);
  dy.at(0, 0, 0, 0) = 4.0f;
  const Tensor dx = pool.backward(dy);
  EXPECT_FLOAT_EQ(dx.at(0, 0, 0, 1), 4.0f);
  EXPECT_FLOAT_EQ(dx.at(0, 0, 0, 0), 0.0f);
}

TEST(MaxPool2D, GradientCheck) {
  MaxPool2D pool(2, 2);
  // Spread values so argmax is stable under the epsilon perturbation.
  Tensor x = random_tensor(2, 2, 6, 6, 31, 10.0f);
  check_gradients(pool, x, 0.05f);
}

TEST(GlobalAvgPool, ForwardAndGradient) {
  GlobalAvgPool gap;
  Tensor x(1, 2, 2, 2);
  for (int i = 0; i < 4; ++i) x.at(0, 0, i / 2, i % 2) = static_cast<float>(i);
  const Tensor y = gap.forward(x, true);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 1.5f);
  check_gradients(gap, random_tensor(2, 3, 4, 4, 41));
}

TEST(ReLU, ForwardClampsNegatives) {
  ReLU relu;
  Tensor x(1, 1, 1, 4);
  x.at(0, 0, 0, 0) = -2.0f;
  x.at(0, 0, 0, 1) = 3.0f;
  x.at(0, 0, 0, 2) = 0.0f;
  x.at(0, 0, 0, 3) = -0.5f;
  const Tensor y = relu.forward(x, true);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 1), 3.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 3), 0.0f);
}

TEST(ReLU, GradientCheck) {
  ReLU relu;
  check_gradients(relu, random_tensor(2, 2, 4, 4, 51, 5.0f), 0.05f);
}

TEST(Flatten, RoundTripShape) {
  Flatten flat;
  const Tensor y = flat.forward(random_tensor(2, 3, 4, 5, 61), true);
  EXPECT_EQ(y.c(), 60);
  EXPECT_EQ(y.h(), 1);
  EXPECT_EQ(y.w(), 1);
  const Tensor dx = flat.backward(y);
  EXPECT_EQ(dx.c(), 3);
  EXPECT_EQ(dx.h(), 4);
  EXPECT_EQ(dx.w(), 5);
}

TEST(Dense, KnownValues) {
  std::mt19937_64 rng(1);
  Dense dense(2, 2, rng);
  dense.weights() = {1.0f, 2.0f, -1.0f, 0.5f};
  Tensor x(1, 2, 1, 1);
  x.at(0, 0, 0, 0) = 3.0f;
  x.at(0, 1, 0, 0) = 4.0f;
  const Tensor y = dense.forward(x, false);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 11.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1, 0, 0), -1.0f);
}

TEST(Dense, GradientCheck) {
  std::mt19937_64 rng(71);
  Dense dense(12, 7, rng);
  check_gradients(dense, random_tensor(3, 12, 1, 1, 72));
}

TEST(BatchNorm2D, TrainOutputIsNormalized) {
  BatchNorm2D bn(2);
  Tensor x = random_tensor(4, 2, 5, 5, 81, 3.0f);
  for (float& v : x.data()) v += 10.0f;
  const Tensor y = bn.forward(x, true);
  // Per-channel mean ~0, var ~1.
  for (int c = 0; c < 2; ++c) {
    double sum = 0.0, sq = 0.0;
    int count = 0;
    for (int n = 0; n < 4; ++n)
      for (int h = 0; h < 5; ++h)
        for (int w = 0; w < 5; ++w) {
          sum += y.at(n, c, h, w);
          sq += static_cast<double>(y.at(n, c, h, w)) * y.at(n, c, h, w);
          ++count;
        }
    const double mean = sum / count;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(sq / count - mean * mean, 1.0, 1e-3);
  }
}

TEST(BatchNorm2D, EvalUsesRunningStats) {
  BatchNorm2D bn(1);
  // Train on data with mean 4, then eval on zeros: output should be
  // strongly negative (zero is far below the running mean).
  for (int step = 0; step < 50; ++step) {
    Tensor x = random_tensor(8, 1, 4, 4, 90 + static_cast<std::uint64_t>(step));
    for (float& v : x.data()) v += 4.0f;
    bn.forward(x, true);
  }
  Tensor zeros(4, 1, 4, 4);
  const Tensor y = bn.forward(zeros, false);
  EXPECT_LT(y.at(0, 0, 0, 0), -2.0f);
}

TEST(BatchNorm2D, GradientCheck) {
  BatchNorm2D bn(2);
  check_gradients(bn, random_tensor(3, 2, 3, 3, 101), 0.05);
}

TEST(Sequential, ChainsLayersAndParams) {
  std::mt19937_64 rng(5);
  auto seq = std::make_unique<Sequential>();
  seq->emplace<Conv2D>(1, 2, 3, 1, 1, rng);
  seq->emplace<ReLU>();
  seq->emplace<Flatten>();
  seq->emplace<Dense>(2 * 4 * 4, 3, rng);
  const Tensor y = seq->forward(random_tensor(2, 1, 4, 4, 6), false);
  EXPECT_EQ(y.c(), 3);
  std::vector<ParamRef> params;
  seq->collect_params(params);
  EXPECT_EQ(params.size(), 4u);  // conv w/b + dense w/b
  EXPECT_EQ(seq->param_count(), 2u * 9 + 2 + 3u * 32 + 3);
}

TEST(Sequential, GradientCheck) {
  std::mt19937_64 rng(7);
  auto seq = std::make_unique<Sequential>();
  seq->emplace<Conv2D>(1, 2, 3, 1, 1, rng);
  seq->emplace<ReLU>();
  seq->emplace<MaxPool2D>(2, 2);
  seq->emplace<Flatten>();
  seq->emplace<Dense>(2 * 2 * 2, 3, rng);
  check_gradients(*seq, random_tensor(2, 1, 4, 4, 8));
}

TEST(ResidualBlock, IdentityShortcutGradientCheck) {
  std::mt19937_64 rng(9);
  auto body = std::make_unique<Sequential>();
  body->emplace<Conv2D>(2, 2, 3, 1, 1, rng);
  ResidualBlock block(std::move(body), nullptr);
  check_gradients(block, random_tensor(2, 2, 4, 4, 10));
}

TEST(ResidualBlock, ProjectionShortcutGradientCheck) {
  std::mt19937_64 rng(13);
  auto body = std::make_unique<Sequential>();
  body->emplace<Conv2D>(2, 4, 3, 2, 1, rng);
  auto shortcut = std::make_unique<Sequential>();
  shortcut->emplace<Conv2D>(2, 4, 1, 2, 0, rng);
  ResidualBlock block(std::move(body), std::move(shortcut));
  check_gradients(block, random_tensor(2, 2, 4, 4, 14));
}

TEST(ResidualBlock, ZeroBodyActsAsRelu) {
  std::mt19937_64 rng(15);
  auto body = std::make_unique<Sequential>();
  body->emplace<Conv2D>(1, 1, 1, 1, 0, rng);
  // Zero out the body so output = relu(0 + x).
  std::vector<ParamRef> ps;
  body->collect_params(ps);
  for (ParamRef& p : ps) std::fill(p.value->begin(), p.value->end(), 0.0f);
  ResidualBlock block(std::move(body), nullptr);
  Tensor x(1, 1, 1, 2);
  x.at(0, 0, 0, 0) = 3.0f;
  x.at(0, 0, 0, 1) = -3.0f;
  const Tensor y = block.forward(x, false);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 3.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 1), 0.0f);
}

TEST(InceptionBlock, ConcatenatesChannels) {
  std::mt19937_64 rng(17);
  std::vector<LayerPtr> branches;
  {
    auto b = std::make_unique<Sequential>();
    b->emplace<Conv2D>(2, 3, 1, 1, 0, rng);
    branches.push_back(std::move(b));
  }
  {
    auto b = std::make_unique<Sequential>();
    b->emplace<Conv2D>(2, 5, 3, 1, 1, rng);
    branches.push_back(std::move(b));
  }
  InceptionBlock block(std::move(branches));
  const Tensor y = block.forward(random_tensor(2, 2, 4, 4, 18), false);
  EXPECT_EQ(y.c(), 8);
  EXPECT_EQ(y.h(), 4);
}

TEST(InceptionBlock, GradientCheck) {
  std::mt19937_64 rng(19);
  std::vector<LayerPtr> branches;
  {
    auto b = std::make_unique<Sequential>();
    b->emplace<Conv2D>(2, 2, 1, 1, 0, rng);
    branches.push_back(std::move(b));
  }
  {
    auto b = std::make_unique<Sequential>();
    b->emplace<Conv2D>(2, 3, 3, 1, 1, rng);
    branches.push_back(std::move(b));
  }
  InceptionBlock block(std::move(branches));
  check_gradients(block, random_tensor(2, 2, 4, 4, 20));
}

TEST(SoftmaxLoss, ProbabilitiesSumToOne) {
  const Tensor logits = random_tensor(3, 5, 1, 1, 23, 2.0f);
  const Tensor probs = softmax(logits);
  for (int n = 0; n < 3; ++n) {
    float sum = 0.0f;
    for (int c = 0; c < 5; ++c) sum += probs.at(n, c, 0, 0);
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(SoftmaxLoss, PerfectPredictionHasLowLoss) {
  Tensor logits(1, 3, 1, 1);
  logits.at(0, 1, 0, 0) = 50.0f;
  const LossResult res = softmax_cross_entropy(logits, {1});
  EXPECT_LT(res.loss, 1e-6);
}

TEST(SoftmaxLoss, GradientMatchesNumeric) {
  Tensor logits = random_tensor(4, 6, 1, 1, 29, 1.5f);
  const std::vector<int> labels = {0, 3, 5, 2};
  const LossResult res = softmax_cross_entropy(logits, labels);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.size(); i += 5) {
    const float orig = logits.data()[i];
    logits.data()[i] = orig + eps;
    const double lp = softmax_cross_entropy(logits, labels).loss;
    logits.data()[i] = orig - eps;
    const double lm = softmax_cross_entropy(logits, labels).loss;
    logits.data()[i] = orig;
    EXPECT_NEAR(res.grad.data()[i], (lp - lm) / (2.0 * eps), 1e-3);
  }
}

TEST(SoftmaxLoss, RejectsBadLabels) {
  Tensor logits(2, 3, 1, 1);
  EXPECT_THROW(softmax_cross_entropy(logits, {0}), std::invalid_argument);
  EXPECT_THROW(softmax_cross_entropy(logits, {0, 3}), std::invalid_argument);
}

}  // namespace
}  // namespace dnj::nn
