// The design-job subsystem end to end: JobManager lifecycle (submit/
// poll/cancel, typed refusals, the lookup-error kind-sum invariant),
// checkpoint-resume byte-identity (the determinism gate bench_design
// re-checks), rate control against a bytes-per-image target, the quality
// ladder publishing into the registry, concurrent jobs (the TSan leg
// runs this binary), the wire marshalling round trip, and the v3 job ops
// over a real loopback server — including the acceptance criterion that
// a wire-submitted rate-controlled job lands within 5% of its target.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "api/dnj.hpp"
#include "data/synthetic.hpp"
#include "jobs/job_manager.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "serve/service.hpp"

namespace dnj::jobs {
namespace {

/// Small deterministic design sample: 4 classes x 2 images, 32x32 gray.
data::Dataset job_dataset(std::uint64_t seed = 9001) {
  data::GeneratorConfig cfg;
  cfg.num_classes = 4;
  cfg.seed = seed;
  return data::SyntheticDatasetGenerator(cfg).generate(2);
}

/// Schedule small enough that a full job is test-speed.
core::SaConfig quick_sa() {
  core::SaConfig sa;
  sa.iterations = 60;
  sa.sample_images = 8;
  return sa;
}

DesignJobSpec quick_spec(const std::string& tenant, std::uint64_t seed = 9001) {
  DesignJobSpec spec;
  spec.dataset = job_dataset(seed);
  spec.tenant = tenant;
  spec.sa = quick_sa();
  return spec;
}

/// Runs an uncontrolled job and returns its achieved mean scan bytes at
/// the designed midpoint — the probe every rate-target test derives a
/// reachable target from.
double probe_midpoint_bytes(const std::string& tenant) {
  JobManager manager;
  std::uint64_t id = 0;
  EXPECT_EQ(manager.submit(quick_spec(tenant), 0, &id), JobRc::kOk);
  JobStatus status;
  EXPECT_EQ(manager.wait(id, &status), JobRc::kOk);
  EXPECT_EQ(status.state, JobState::kCompleted) << status.error;
  EXPECT_GT(status.achieved_bytes, 0.0);
  return status.achieved_bytes;
}

TEST(JobManager, SubmitCompletesAndPublishesTenant) {
  JobManager manager;
  std::uint64_t id = 0;
  ASSERT_EQ(manager.submit(quick_spec("design-a"), 0, &id), JobRc::kOk);
  EXPECT_NE(id, 0u);

  JobStatus status;
  ASSERT_EQ(manager.wait(id, &status), JobRc::kOk);
  ASSERT_EQ(status.state, JobState::kCompleted) << status.error;
  EXPECT_EQ(status.phase, JobPhase::kDone);
  EXPECT_DOUBLE_EQ(status.progress, 1.0);
  EXPECT_EQ(status.sa_iteration, 60u);
  EXPECT_GE(status.checkpoints, 1u);
  EXPECT_EQ(status.rungs, 1u);

  JobResult result;
  ASSERT_EQ(manager.result(id, &result), JobRc::kOk);
  EXPECT_EQ(result.id, id);
  EXPECT_LE(result.best_cost, result.initial_cost);
  EXPECT_FALSE(result.checkpoint.empty());
  ASSERT_EQ(result.rungs.size(), 1u);
  EXPECT_EQ(result.rungs[0].name, "design-a");

  // The designed tenant is servable: it landed in the manager's registry.
  const std::vector<std::string> names = manager.registry()->names();
  EXPECT_NE(std::find(names.begin(), names.end(), "design-a"), names.end());
}

TEST(JobManager, RateControlledJobLandsWithinFivePercent) {
  const double midpoint = probe_midpoint_bytes("probe");

  JobManager manager;
  DesignJobSpec spec = quick_spec("rate-a");
  spec.target_bytes_per_image = midpoint * 1.02;
  std::uint64_t id = 0;
  ASSERT_EQ(manager.submit(std::move(spec), 0, &id), JobRc::kOk);
  JobStatus status;
  ASSERT_EQ(manager.wait(id, &status), JobRc::kOk);
  ASSERT_EQ(status.state, JobState::kCompleted) << status.error;
  EXPECT_LE(status.achieved_bytes, status.target_bytes);
  EXPECT_LE(status.rate_error, 0.05);

  JobResult result;
  ASSERT_EQ(manager.result(id, &result), JobRc::kOk);
  EXPECT_EQ(result.achieved_bytes, status.achieved_bytes);
  EXPECT_GE(result.quality, 50);  // target sits above the midpoint rate
}

TEST(JobManager, UnreachableTargetFailsTyped) {
  // One byte per image is below the floor-quality rate: the job must land
  // in kFailed with the rate controller's typed message — never complete
  // with a silently clamped oversized rate point.
  JobManager manager;
  DesignJobSpec spec = quick_spec("rate-bad");
  spec.target_bytes_per_image = 1.0;
  std::uint64_t id = 0;
  ASSERT_EQ(manager.submit(std::move(spec), 0, &id), JobRc::kOk);
  JobStatus status;
  ASSERT_EQ(manager.wait(id, &status), JobRc::kOk);
  EXPECT_EQ(status.state, JobState::kFailed);
  EXPECT_FALSE(status.error.empty());
  EXPECT_EQ(manager.stats().failed, 1u);
}

TEST(JobManager, LadderPublishesVersionedRungs) {
  const double midpoint = probe_midpoint_bytes("probe-ladder");

  JobManager manager;
  DesignJobSpec spec = quick_spec("ladder-a");
  spec.target_bytes_per_image = midpoint * 1.05;
  spec.ladder = {midpoint * 1.5, midpoint * 2.0};
  std::uint64_t id = 0;
  ASSERT_EQ(manager.submit(std::move(spec), 0, &id), JobRc::kOk);
  JobStatus status;
  ASSERT_EQ(manager.wait(id, &status), JobRc::kOk);
  ASSERT_EQ(status.state, JobState::kCompleted) << status.error;
  EXPECT_EQ(status.rungs, 3u);

  JobResult result;
  ASSERT_EQ(manager.result(id, &result), JobRc::kOk);
  ASSERT_EQ(result.rungs.size(), 3u);
  EXPECT_EQ(result.rungs[0].name, "ladder-a");
  EXPECT_EQ(result.rungs[1].name, "ladder-a:r1");
  EXPECT_EQ(result.rungs[2].name, "ladder-a:r2");
  for (const LadderRung& rung : result.rungs) {
    EXPECT_GT(rung.version, 0u);
    if (rung.target_bytes > 0.0) {
      EXPECT_LE(rung.achieved_bytes, rung.target_bytes);
    }
  }
  const std::vector<std::string> names = manager.registry()->names();
  for (const char* name : {"ladder-a", "ladder-a:r1", "ladder-a:r2"})
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end()) << name;
  EXPECT_EQ(manager.stats().ladder_rungs, 3u);
}

TEST(JobManager, CheckpointResumeIsByteIdentical) {
  // The determinism gate: pause mid-anneal, resume from the checkpoint,
  // and the resumed job must anneal the byte-identical table (and costs)
  // of an uninterrupted run over the same dataset.
  JobManagerConfig cfg;
  cfg.checkpoint_interval = 16;
  JobManager manager(cfg);

  DesignJobSpec paused_spec = quick_spec("resume-a");
  paused_spec.anneal_limit = 30;
  std::uint64_t paused_id = 0;
  ASSERT_EQ(manager.submit(std::move(paused_spec), 0, &paused_id), JobRc::kOk);
  JobStatus paused_status;
  ASSERT_EQ(manager.wait(paused_id, &paused_status), JobRc::kOk);
  ASSERT_EQ(paused_status.state, JobState::kPaused) << paused_status.error;
  EXPECT_EQ(paused_status.sa_iteration, 30u);
  EXPECT_EQ(manager.stats().paused, 1u);

  JobResult paused_result;
  ASSERT_EQ(manager.result(paused_id, &paused_result), JobRc::kOk);
  ASSERT_FALSE(paused_result.checkpoint.empty());

  DesignJobSpec resume_spec = quick_spec("resume-b");
  resume_spec.checkpoint = paused_result.checkpoint;
  std::uint64_t resumed_id = 0;
  ASSERT_EQ(manager.submit(std::move(resume_spec), 0, &resumed_id), JobRc::kOk);
  JobStatus resumed_status;
  ASSERT_EQ(manager.wait(resumed_id, &resumed_status), JobRc::kOk);
  ASSERT_EQ(resumed_status.state, JobState::kCompleted) << resumed_status.error;
  EXPECT_EQ(resumed_status.sa_iteration, 60u);

  std::uint64_t straight_id = 0;
  ASSERT_EQ(manager.submit(quick_spec("resume-c"), 0, &straight_id), JobRc::kOk);
  JobStatus straight_status;
  ASSERT_EQ(manager.wait(straight_id, &straight_status), JobRc::kOk);
  ASSERT_EQ(straight_status.state, JobState::kCompleted) << straight_status.error;

  JobResult resumed, straight;
  ASSERT_EQ(manager.result(resumed_id, &resumed), JobRc::kOk);
  ASSERT_EQ(manager.result(straight_id, &straight), JobRc::kOk);
  EXPECT_EQ(resumed.table, straight.table);
  EXPECT_DOUBLE_EQ(resumed.best_cost, straight.best_cost);
  EXPECT_EQ(resumed.accepted_moves, straight.accepted_moves);
  EXPECT_EQ(resumed.checkpoint, straight.checkpoint);
}

TEST(JobManager, CancelQueuedAndRunningJobs) {
  JobManagerConfig cfg;
  cfg.workers = 1;
  cfg.checkpoint_interval = 8;  // cancel lands within one short segment
  JobManager manager(cfg);

  // A long-running job occupies the single worker...
  DesignJobSpec long_spec = quick_spec("cancel-running");
  long_spec.sa.iterations = 100000;
  std::uint64_t running_id = 0;
  ASSERT_EQ(manager.submit(std::move(long_spec), 0, &running_id), JobRc::kOk);
  // ...so this one sits queued and cancels immediately.
  std::uint64_t queued_id = 0;
  ASSERT_EQ(manager.submit(quick_spec("cancel-queued"), 0, &queued_id), JobRc::kOk);
  ASSERT_EQ(manager.cancel(queued_id), JobRc::kOk);
  JobStatus queued_status;
  ASSERT_EQ(manager.status(queued_id, &queued_status), JobRc::kOk);
  EXPECT_EQ(queued_status.state, JobState::kCancelled);

  // The running job stops at its next segment boundary.
  ASSERT_EQ(manager.cancel(running_id), JobRc::kOk);
  JobStatus running_status;
  ASSERT_EQ(manager.wait(running_id, &running_status), JobRc::kOk);
  EXPECT_EQ(running_status.state, JobState::kCancelled);
  // Cancel of a terminal job is an idempotent kOk.
  EXPECT_EQ(manager.cancel(running_id), JobRc::kOk);
  EXPECT_EQ(manager.stats().cancelled, 2u);
}

TEST(JobManager, TypedRefusalsAndKindSumInvariant) {
  JobManager manager;

  // Unknown ids: one typed refusal per op kind.
  EXPECT_EQ(manager.status(404, nullptr), JobRc::kNotFound);
  EXPECT_EQ(manager.cancel(404), JobRc::kNotFound);
  JobResult result;
  EXPECT_EQ(manager.result(404, &result), JobRc::kNotFound);
  EXPECT_EQ(manager.wait(404), JobRc::kNotFound);

  // Duplicate requested id.
  std::uint64_t id = 0;
  ASSERT_EQ(manager.submit(quick_spec("dup-a"), 77, &id), JobRc::kOk);
  EXPECT_EQ(id, 77u);
  EXPECT_EQ(manager.submit(quick_spec("dup-b"), 77, nullptr), JobRc::kDuplicate);

  // Invalid specs are refused before touching the queue.
  EXPECT_EQ(manager.submit(DesignJobSpec{}, 0, nullptr), JobRc::kInvalid);
  DesignJobSpec no_tenant = quick_spec("");
  EXPECT_EQ(manager.submit(std::move(no_tenant), 0, nullptr), JobRc::kInvalid);
  DesignJobSpec bad_iters = quick_spec("bad-iters");
  bad_iters.sa.iterations = 0;
  EXPECT_EQ(manager.submit(std::move(bad_iters), 0, nullptr), JobRc::kInvalid);

  // result() before the job finished is kNotFinished, not a lookup error.
  JobStatus status;
  ASSERT_EQ(manager.status(77, &status), JobRc::kOk);
  if (status.state == JobState::kQueued || status.state == JobState::kRunning) {
    const JobRc rc = manager.result(77, &result);
    EXPECT_TRUE(rc == JobRc::kNotFinished || rc == JobRc::kOk);
  }

  // The kind-sum invariant: per-op lookup errors account for the total.
  const JobManagerStats stats = manager.stats();
  EXPECT_EQ(stats.lookup_errors_by_op[0], 1u);  // duplicate submit
  EXPECT_EQ(stats.lookup_errors_by_op[1], 2u);  // status + wait
  EXPECT_EQ(stats.lookup_errors_by_op[2], 1u);  // cancel
  EXPECT_EQ(stats.lookup_errors_by_op[3], 1u);  // result
  EXPECT_EQ(stats.lookup_errors, stats.lookup_errors_by_op[0] + stats.lookup_errors_by_op[1] +
                                     stats.lookup_errors_by_op[2] + stats.lookup_errors_by_op[3]);
  manager.cancel(77);
}

TEST(JobManager, FullQueueRejectsTyped) {
  JobManagerConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 1;
  JobManager manager(cfg);

  DesignJobSpec long_spec = quick_spec("queue-full");
  long_spec.sa.iterations = 100000;
  std::uint64_t id = 0;
  ASSERT_EQ(manager.submit(std::move(long_spec), 0, &id), JobRc::kOk);
  EXPECT_EQ(manager.submit(quick_spec("overflow"), 0, nullptr), JobRc::kQueueFull);
  EXPECT_EQ(manager.stats().rejected, 1u);
  manager.cancel(id);
}

TEST(JobManager, SubmitAfterShutdownIsTyped) {
  JobManager manager;
  manager.shutdown();
  EXPECT_EQ(manager.submit(quick_spec("late"), 0, nullptr), JobRc::kShutdown);
}

TEST(JobManager, ConcurrentJobsComplete) {
  // Two workers, four jobs, poll-while-running: the TSan leg runs this.
  JobManagerConfig cfg;
  cfg.workers = 2;
  JobManager manager(cfg);

  std::vector<std::uint64_t> ids(4);
  std::vector<std::thread> submitters;
  for (int i = 0; i < 4; ++i) {
    submitters.emplace_back([&manager, &ids, i] {
      DesignJobSpec spec = quick_spec("conc-" + std::to_string(i),
                                      /*seed=*/9001 + static_cast<std::uint64_t>(i));
      EXPECT_EQ(manager.submit(std::move(spec), 0, &ids[static_cast<std::size_t>(i)]),
                JobRc::kOk);
    });
  }
  for (std::thread& t : submitters) t.join();

  // Concurrent status polling while workers are annealing.
  std::thread poller([&manager, &ids] {
    for (int round = 0; round < 50; ++round) {
      for (std::uint64_t id : ids) {
        JobStatus s;
        EXPECT_EQ(manager.status(id, &s), JobRc::kOk);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (std::uint64_t id : ids) {
    JobStatus status;
    ASSERT_EQ(manager.wait(id, &status), JobRc::kOk);
    EXPECT_EQ(status.state, JobState::kCompleted) << status.error;
  }
  poller.join();
  EXPECT_EQ(manager.stats().completed, 4u);
}

// ---------------------------------------------------------------------------
// Wire marshalling: spec and status/result survive the frame round trip.

TEST(JobWire, SubmitSpecRoundTrips) {
  DesignJobSpec spec = quick_spec("wire-tenant");
  spec.target_bytes_per_image = 321.5;
  spec.ladder = {400.0, 650.25};
  spec.sa.iterations = 123;
  spec.sa.seed = 0xFEEDFACE;
  spec.sample_interval = 3;
  spec.anneal_limit = 40;
  spec.quota_bytes = 1 << 20;
  spec.checkpoint = {1, 2, 3, 4, 5};

  const net::Frame frame = net::make_job_submit(42, 7, spec);
  EXPECT_EQ(frame.op, net::Op::kJobSubmit);
  std::uint64_t requested = 0;
  DesignJobSpec parsed;
  ASSERT_EQ(net::parse_job_submit(frame, &requested, &parsed), net::WireStatus::kOk);
  EXPECT_EQ(requested, 7u);
  EXPECT_EQ(parsed.tenant, spec.tenant);
  EXPECT_DOUBLE_EQ(parsed.target_bytes_per_image, spec.target_bytes_per_image);
  EXPECT_EQ(parsed.ladder, spec.ladder);
  EXPECT_EQ(parsed.sa.iterations, spec.sa.iterations);
  EXPECT_DOUBLE_EQ(parsed.sa.t_start, spec.sa.t_start);
  EXPECT_DOUBLE_EQ(parsed.sa.lambda, spec.sa.lambda);
  EXPECT_EQ(parsed.sa.seed, spec.sa.seed);
  EXPECT_EQ(parsed.sample_interval, spec.sample_interval);
  EXPECT_EQ(parsed.anneal_limit, spec.anneal_limit);
  EXPECT_EQ(parsed.quota_bytes, spec.quota_bytes);
  EXPECT_EQ(parsed.checkpoint, spec.checkpoint);
  ASSERT_EQ(parsed.dataset.size(), spec.dataset.size());
  EXPECT_EQ(parsed.dataset.num_classes, spec.dataset.num_classes);
  for (std::size_t i = 0; i < spec.dataset.size(); ++i) {
    EXPECT_EQ(parsed.dataset.samples[i].label, spec.dataset.samples[i].label);
    EXPECT_EQ(parsed.dataset.samples[i].image.data(), spec.dataset.samples[i].image.data());
  }
}

TEST(JobWire, StatusAndResultResponsesRoundTrip) {
  JobStatus status;
  status.id = 9;
  status.state = JobState::kRunning;
  status.phase = JobPhase::kAnneal;
  status.progress = 0.375;
  status.sa_iteration = 48;
  status.sa_total = 400;
  status.target_bytes = 512.0;
  status.achieved_bytes = 500.5;
  status.rate_error = 0.0225;
  status.checkpoints = 3;
  status.rungs = 0;
  net::WireReply reply;
  ASSERT_TRUE(net::parse_response(net::make_job_status_response(5, status), &reply));
  EXPECT_EQ(reply.status, net::WireStatus::kOk);
  EXPECT_EQ(reply.job_status.id, 9u);
  EXPECT_EQ(reply.job_status.state, JobState::kRunning);
  EXPECT_EQ(reply.job_status.phase, JobPhase::kAnneal);
  EXPECT_DOUBLE_EQ(reply.job_status.progress, 0.375);
  EXPECT_EQ(reply.job_status.sa_iteration, 48u);
  EXPECT_EQ(reply.job_status.sa_total, 400u);
  EXPECT_DOUBLE_EQ(reply.job_status.achieved_bytes, 500.5);
  EXPECT_EQ(reply.job_status.checkpoints, 3u);

  JobResult result;
  result.id = 9;
  for (int i = 0; i < 64; ++i)
    result.table.step(i) = static_cast<std::uint16_t>(i + 1);
  result.quality = 62;
  result.target_bytes = 512.0;
  result.achieved_bytes = 500.5;
  result.initial_cost = 10.25;
  result.best_cost = 7.5;
  result.accepted_moves = 33;
  result.sa_iterations = 400;
  LadderRung rung;
  rung.name = "t:r1";
  rung.version = 4;
  rung.quality = 70;
  rung.target_bytes = 800.0;
  rung.achieved_bytes = 790.0;
  result.rungs.push_back(rung);
  result.checkpoint = {9, 8, 7};
  net::WireReply result_reply;
  ASSERT_TRUE(net::parse_response(net::make_job_result_response(6, result), &result_reply));
  EXPECT_EQ(result_reply.status, net::WireStatus::kOk);
  EXPECT_EQ(result_reply.job_result.id, 9u);
  EXPECT_EQ(result_reply.job_result.table, result.table);
  EXPECT_EQ(result_reply.job_result.quality, 62);
  EXPECT_DOUBLE_EQ(result_reply.job_result.best_cost, 7.5);
  EXPECT_EQ(result_reply.job_result.accepted_moves, 33);
  EXPECT_EQ(result_reply.job_result.sa_iterations, 400u);
  ASSERT_EQ(result_reply.job_result.rungs.size(), 1u);
  EXPECT_EQ(result_reply.job_result.rungs[0].name, "t:r1");
  EXPECT_EQ(result_reply.job_result.rungs[0].version, 4u);
  EXPECT_EQ(result_reply.job_result.rungs[0].quality, 70);
  EXPECT_EQ(result_reply.job_result.checkpoint, result.checkpoint);
}

TEST(JobWire, MalformedAndOutOfRangeSubmitsRefused) {
  DesignJobSpec spec = quick_spec("caps");
  // Oversize tenant trips the parse-side cap.
  spec.tenant.assign(2048, 'x');
  const net::Frame oversize = net::make_job_submit(1, 0, spec);
  std::uint64_t requested = 0;
  DesignJobSpec parsed;
  EXPECT_EQ(net::parse_job_submit(oversize, &requested, &parsed),
            net::WireStatus::kInvalidArgument);

  // Truncation anywhere in the payload is kMalformed.
  net::Frame truncated = net::make_job_submit(1, 0, quick_spec("trunc"));
  truncated.payload.resize(truncated.payload.size() / 2);
  EXPECT_EQ(net::parse_job_submit(truncated, &requested, &parsed), net::WireStatus::kMalformed);
}

// ---------------------------------------------------------------------------
// The v3 job ops over a real loopback server.

/// api::Service with the job subsystem enabled, listening on an ephemeral
/// loopback port, plus a connected v3 client.
struct JobServer {
  JobServer() {
    api::Status s = service.listen(api::ListenOptions());
    EXPECT_TRUE(s.ok()) << s.message();
  }

  net::Client connect() {
    net::Client client;
    std::string error;
    EXPECT_TRUE(client.connect("127.0.0.1", static_cast<std::uint16_t>(service.listen_port()),
                               &error))
        << error;
    return client;
  }

  api::Service service{api::ServiceOptions().workers(1).design_workers(1)};
};

/// Polls job-status over the wire until the job leaves kQueued/kRunning.
jobs::JobStatus wait_over_wire(net::Client& client, std::uint64_t job_id) {
  std::string error;
  for (;;) {
    net::WireReply reply;
    EXPECT_TRUE(client.job_status(job_id, &reply, &error)) << error;
    EXPECT_EQ(reply.status, net::WireStatus::kOk) << reply.error;
    if (reply.job_status.state != JobState::kQueued &&
        reply.job_status.state != JobState::kRunning)
      return reply.job_status;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

TEST(JobWire, EndToEndRateControlledJob) {
  // Probe a reachable target first (same dataset seed -> same rate curve).
  const double midpoint = probe_midpoint_bytes("wire-probe");

  JobServer ts;
  net::Client client = ts.connect();
  std::string error;

  DesignJobSpec spec = quick_spec("wire-a");
  spec.target_bytes_per_image = midpoint * 1.02;
  net::WireReply submit_reply;
  ASSERT_TRUE(client.job_submit(spec, 0, &submit_reply, &error)) << error;
  ASSERT_EQ(submit_reply.status, net::WireStatus::kOk) << submit_reply.error;
  const std::uint64_t job_id = submit_reply.job_id;
  EXPECT_NE(job_id, 0u);

  const JobStatus status = wait_over_wire(client, job_id);
  ASSERT_EQ(status.state, JobState::kCompleted) << status.error;
  EXPECT_EQ(status.phase, JobPhase::kDone);
  // The acceptance criterion: a wire-submitted rate-controlled job lands
  // within 5% of its bytes-per-image target.
  EXPECT_LE(status.achieved_bytes, status.target_bytes);
  EXPECT_LE(status.rate_error, 0.05);

  net::WireReply result_reply;
  ASSERT_TRUE(client.job_result(job_id, &result_reply, &error)) << error;
  ASSERT_EQ(result_reply.status, net::WireStatus::kOk) << result_reply.error;
  EXPECT_EQ(result_reply.job_result.id, job_id);
  EXPECT_FALSE(result_reply.job_result.checkpoint.empty());
  ASSERT_EQ(result_reply.job_result.rungs.size(), 1u);
  EXPECT_EQ(result_reply.job_result.rungs[0].name, "wire-a");

  // The designed tenant is immediately servable through the shared
  // registry (deepn_encode resolves it).
  const std::vector<std::string> names = ts.service.registry().names();
  EXPECT_NE(std::find(names.begin(), names.end(), "wire-a"), names.end());
}

TEST(JobWire, UnknownAndDuplicateIdsAreTypedOverTheWire) {
  JobServer ts;
  net::Client client = ts.connect();
  std::string error;

  net::WireReply reply;
  ASSERT_TRUE(client.job_status(404, &reply, &error)) << error;
  EXPECT_EQ(reply.status, net::WireStatus::kInvalidArgument);
  EXPECT_NE(reply.error.find("unknown job id"), std::string::npos) << reply.error;

  ASSERT_TRUE(client.job_cancel(404, &reply, &error)) << error;
  EXPECT_EQ(reply.status, net::WireStatus::kInvalidArgument);

  // Typed refusals keep the connection alive.
  ASSERT_TRUE(client.ping(&error)) << error;

  DesignJobSpec long_spec = quick_spec("wire-dup");
  long_spec.sa.iterations = 100000;
  ASSERT_TRUE(client.job_submit(long_spec, 55, &reply, &error)) << error;
  ASSERT_EQ(reply.status, net::WireStatus::kOk) << reply.error;
  EXPECT_EQ(reply.job_id, 55u);
  ASSERT_TRUE(client.job_submit(quick_spec("wire-dup2"), 55, &reply, &error)) << error;
  EXPECT_EQ(reply.status, net::WireStatus::kInvalidArgument);
  EXPECT_NE(reply.error.find("already exists"), std::string::npos) << reply.error;

  // result() on the still-running job: typed kRejected (retry later).
  ASSERT_TRUE(client.job_result(55, &reply, &error)) << error;
  EXPECT_EQ(reply.status, net::WireStatus::kRejected);

  ASSERT_TRUE(client.job_cancel(55, &reply, &error)) << error;
  EXPECT_EQ(reply.status, net::WireStatus::kOk) << reply.error;
}

TEST(JobWire, JobOpInsideVersionTwoIsMalformed) {
  // The accepted-version range lets a v2 frame in, but op 7 does not
  // exist in v2: unknown op == kMalformed, stream closes (the same rule
  // that pins op 6 against v1).
  JobServer ts;
  net::Client client = ts.connect();
  std::string error;

  std::vector<std::uint8_t> bytes =
      net::serialize_frame(net::make_job_id_request(3, net::Op::kJobStatus, 1));
  bytes[4] = 2;  // version byte
  ASSERT_TRUE(client.send_raw(bytes.data(), bytes.size(), &error));
  net::WireReply reply;
  ASSERT_TRUE(client.recv_reply(&reply, &error)) << error;
  EXPECT_EQ(reply.status, net::WireStatus::kMalformed);
  EXPECT_FALSE(client.recv_reply(&reply, &error));
}

TEST(JobWire, JobOpsWithoutManagerAreTypedInternal) {
  // A bare net::Server with no JobManager wired in: job ops answer with a
  // typed kInternal, connection stays usable.
  serve::TranscodeService service{serve::ServiceConfig{}};
  net::Server server(service, net::ServerConfig{});
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  net::Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", static_cast<std::uint16_t>(server.port()), &error))
      << error;

  net::WireReply reply;
  ASSERT_TRUE(client.job_status(1, &reply, &error)) << error;
  EXPECT_EQ(reply.status, net::WireStatus::kInternal);
  EXPECT_NE(reply.error.find("not enabled"), std::string::npos) << reply.error;
  EXPECT_TRUE(client.ping(&error)) << error;
}

// ---------------------------------------------------------------------------
// The api::TableDesigner async surface over its private manager.

TEST(ApiDesignJobs, SubmitWaitFetch) {
  api::Session session;
  api::TableDesigner designer = session.designer();
  const data::Dataset ds = job_dataset();
  for (const data::Sample& s : ds.samples) {
    api::ImageView view{s.image.data().data(), s.image.width(), s.image.height(),
                        s.image.channels()};
    ASSERT_TRUE(designer.add(view, s.label).ok());
  }

  const auto submitted =
      designer.submit(api::DesignJobOptions().tenant("api-a").sa_iterations(60));
  ASSERT_TRUE(submitted.ok()) << submitted.status().message();
  const std::uint64_t id = submitted.value();

  const auto waited = designer.wait(id);
  ASSERT_TRUE(waited.ok()) << waited.status().message();
  EXPECT_EQ(waited.value().state, api::DesignJobState::kCompleted) << waited.value().error;
  EXPECT_EQ(waited.value().phase, "done");

  const auto fetched = designer.fetch(id);
  ASSERT_TRUE(fetched.ok()) << fetched.status().message();
  EXPECT_EQ(fetched.value().id, id);
  EXPECT_FALSE(fetched.value().checkpoint.empty());
  ASSERT_EQ(fetched.value().rungs.size(), 1u);
  EXPECT_EQ(fetched.value().rungs[0].name, "api-a");

  // Unknown ids are typed kInvalidArgument through the façade too.
  const auto unknown = designer.poll(id + 100);
  EXPECT_EQ(unknown.status().code(), api::StatusCode::kInvalidArgument);
  EXPECT_EQ(designer.cancel(id + 100).code(), api::StatusCode::kInvalidArgument);
}

TEST(ApiDesignJobs, SubmitWithoutImagesIsTyped) {
  api::Session session;
  api::TableDesigner designer = session.designer();
  const auto submitted = designer.submit(api::DesignJobOptions().tenant("empty"));
  EXPECT_EQ(submitted.status().code(), api::StatusCode::kInvalidArgument);
}

TEST(ApiDesignJobs, StateNamesMatchJobVocabulary) {
  EXPECT_STREQ(api::design_job_state_name(api::DesignJobState::kQueued), "queued");
  EXPECT_STREQ(api::design_job_state_name(api::DesignJobState::kPaused), "paused");
  EXPECT_STREQ(api::design_job_state_name(api::DesignJobState::kCompleted), "completed");
  EXPECT_STREQ(api::design_job_state_name(api::DesignJobState::kCancelled), "cancelled");
}

}  // namespace
}  // namespace dnj::jobs
