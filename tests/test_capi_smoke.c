/* Pure C (-std=c11) smoke test of the dnj_c.h ABI: proves the header
 * compiles as strict C, links against the library, and that a C caller
 * can round-trip encode -> decode -> transcode and receive the documented
 * typed statuses — with no C++ runtime knowledge and no exceptions
 * crossing the boundary.
 *
 * Plain main()-returns-nonzero-on-failure shape (no gtest in C); wired
 * into ctest by CMakeLists.txt.
 */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

#include "api/dnj_c.h"

#define W 48
#define H 40

static int g_failures = 0;

/* Portable byte-haystack search (memmem is not ISO C). */
static int buf_contains(const dnj_buffer_t* b, const char* needle) {
  const size_t n = strlen(needle);
  if (b->data == NULL || b->size < n) return 0;
  for (size_t i = 0; i + n <= b->size; ++i)
    if (memcmp(b->data + i, needle, n) == 0) return 1;
  return 0;
}

#define CHECK(cond, what)                                        \
  do {                                                           \
    if (!(cond)) {                                               \
      fprintf(stderr, "FAIL %s:%d: %s\n", __FILE__, __LINE__, what); \
      ++g_failures;                                              \
    }                                                            \
  } while (0)

int main(void) {
  CHECK(dnj_abi_version() == DNJ_ABI_VERSION, "header/library ABI version skew");
  CHECK(strcmp(dnj_status_name(DNJ_OK), "ok") == 0, "status name");

  dnj_session_t* session = dnj_session_new();
  CHECK(session != NULL, "session_new");
  if (session == NULL) return 1;
  CHECK(strcmp(dnj_last_error(session), "") == 0, "fresh session has no error");

  /* A deterministic grayscale gradient-with-texture test image. */
  uint8_t pixels[W * H];
  for (int y = 0; y < H; ++y)
    for (int x = 0; x < W; ++x)
      pixels[y * W + x] = (uint8_t)((x * 5 + y * 3 + ((x * y) % 7) * 11) % 256);

  dnj_options_t* options = dnj_options_new();
  CHECK(options != NULL, "options_new");
  CHECK(dnj_options_set_quality(options, 90) == DNJ_OK, "set_quality");
  CHECK(dnj_options_set_chroma_420(options, 0) == DNJ_OK, "set_chroma_420");
  CHECK(dnj_options_set_comment(options, "c-smoke") == DNJ_OK, "set_comment");
  CHECK(dnj_options_digest(options) != 0, "options digest");

  /* encode -> decode round trip. */
  dnj_buffer_t jpeg = {NULL, 0};
  CHECK(dnj_encode(session, pixels, W, H, 1, options, &jpeg) == DNJ_OK, "encode");
  CHECK(jpeg.data != NULL && jpeg.size > 0, "encode produced bytes");

  dnj_image_t decoded = {NULL, 0, 0, 0};
  CHECK(dnj_decode(session, jpeg.data, jpeg.size, &decoded) == DNJ_OK, "decode");
  CHECK(decoded.width == W && decoded.height == H && decoded.channels == 1,
        "decoded geometry");
  if (decoded.pixels != NULL) {
    /* Lossy codec, quality 90: decoded pixels must track the input. */
    long err_sum = 0;
    for (int i = 0; i < W * H; ++i) {
      long d = (long)decoded.pixels[i] - (long)pixels[i];
      err_sum += d < 0 ? -d : d;
    }
    CHECK(err_sum / (W * H) < 24, "decoded pixels track the input");
  }

  /* transcode under default options. */
  dnj_buffer_t transcoded = {NULL, 0};
  CHECK(dnj_transcode(session, jpeg.data, jpeg.size, NULL, &transcoded) == DNJ_OK,
        "transcode");
  CHECK(transcoded.size > 0, "transcode produced bytes");

  /* Typed error paths. */
  uint8_t garbage[64];
  memset(garbage, 0xAB, sizeof(garbage));
  dnj_image_t bad_img = {NULL, 0, 0, 0};
  CHECK(dnj_decode(session, garbage, sizeof(garbage), &bad_img) == DNJ_DECODE_ERROR,
        "garbage stream is DNJ_DECODE_ERROR");
  CHECK(strlen(dnj_last_error(session)) > 0, "error message recorded");
  CHECK(dnj_decode(session, jpeg.data, jpeg.size / 2, &bad_img) == DNJ_DECODE_ERROR,
        "truncated stream is DNJ_DECODE_ERROR");

  dnj_buffer_t bad_buf = {NULL, 0};
  CHECK(dnj_encode(session, pixels, 70000, 4, 1, NULL, &bad_buf) == DNJ_INVALID_ARGUMENT,
        "oversized dimensions are DNJ_INVALID_ARGUMENT");
  CHECK(dnj_encode(session, NULL, W, H, 1, NULL, &bad_buf) == DNJ_INVALID_ARGUMENT,
        "null pixels are DNJ_INVALID_ARGUMENT");
  CHECK(dnj_encode(NULL, pixels, W, H, 1, NULL, &bad_buf) == DNJ_INVALID_ARGUMENT,
        "null session is DNJ_INVALID_ARGUMENT");

  /* Designer: three tiny labeled images -> a usable table. */
  dnj_designer_t* designer = dnj_designer_new();
  CHECK(designer != NULL, "designer_new");
  uint16_t table[64];
  CHECK(dnj_designer_design(designer, table) == DNJ_INVALID_ARGUMENT,
        "empty designer is DNJ_INVALID_ARGUMENT");
  for (int label = 0; label < 3; ++label) {
    uint8_t img[32 * 32];
    for (int i = 0; i < 32 * 32; ++i)
      img[i] = (uint8_t)((i * (3 + label * 2)) % 256);
    CHECK(dnj_designer_add(designer, img, 32, 32, 1, label) == DNJ_OK, "designer_add");
  }
  CHECK(dnj_designer_design(designer, table) == DNJ_OK, "designer_design");
  int nonzero = 0;
  for (int i = 0; i < 64; ++i)
    if (table[i] >= 1) ++nonzero;
  CHECK(nonzero == 64, "designed table has 64 valid steps");

  dnj_options_t* designed = dnj_options_new();
  CHECK(dnj_designer_design_options(designer, designed) == DNJ_OK, "design_options");
  dnj_buffer_t deepn = {NULL, 0};
  CHECK(dnj_encode(session, pixels, W, H, 1, designed, &deepn) == DNJ_OK,
        "encode with designed table");
  CHECK(deepn.size > 0, "designed-table encode produced bytes");

  /* Network server (ABI 1.1): lifecycle from pure C — create, listen on an
   * ephemeral port, read the bound port back, stop, free. The protocol
   * round trip itself is covered by tests/test_net.cpp. */
  dnj_server_t* server = dnj_server_new(1, 8, 1);
  CHECK(server != NULL, "server_new");
  CHECK(dnj_server_port(server) == -1, "stopped server has no port");
  CHECK(strcmp(dnj_server_last_error(server), "") == 0, "fresh server has no error");
  uint16_t bound_port = 0;
  CHECK(dnj_server_listen(server, NULL, 0, &bound_port) == DNJ_OK, "server_listen");
  CHECK(bound_port != 0, "ephemeral port resolved");
  CHECK(dnj_server_port(server) == (int32_t)bound_port, "server_port agrees");
  CHECK(dnj_server_listen(server, NULL, 0, NULL) == DNJ_INTERNAL,
        "second listen is refused");
  CHECK(strlen(dnj_server_last_error(server)) > 0, "listen failure recorded");
  /* Observability exporters (ABI 1.3): a Prometheus scrape and a trace
   * dump from pure C. The server has served nothing, but the metric
   * names must already be registered and rendered. */
  dnj_buffer_t metrics = {NULL, 0};
  CHECK(dnj_server_metrics_text(server, &metrics) == DNJ_OK, "server_metrics_text");
  CHECK(metrics.data != NULL && metrics.size > 0, "metrics text non-empty");
  CHECK(buf_contains(&metrics, "serve_requests_submitted_total"),
        "metrics text names the serve counters");
  CHECK(buf_contains(&metrics, "net_frames_in_total"),
        "metrics text names the net counters");
  dnj_buffer_free(&metrics);
  dnj_buffer_t trace = {NULL, 0};
  CHECK(dnj_server_trace_dump(server, &trace) == DNJ_OK, "server_trace_dump");
  CHECK(trace.size > 0 && trace.data[0] == '{', "trace dump is a JSON object");
  CHECK(buf_contains(&trace, "\"spans\":["), "trace dump has a spans array");
  dnj_buffer_free(&trace);
  CHECK(dnj_server_metrics_text(NULL, &metrics) == DNJ_INVALID_ARGUMENT,
        "null server metrics is DNJ_INVALID_ARGUMENT");
  CHECK(dnj_server_trace_dump(server, NULL) == DNJ_INVALID_ARGUMENT,
        "null trace out is DNJ_INVALID_ARGUMENT");

  dnj_server_stop(server);
  CHECK(dnj_server_port(server) == -1, "stopped server has no port again");
  dnj_server_stop(server); /* idempotent */
  dnj_server_free(server);
  dnj_server_free(NULL);
  CHECK(dnj_server_listen(NULL, NULL, 0, NULL) == DNJ_INVALID_ARGUMENT,
        "null server is DNJ_INVALID_ARGUMENT");
  CHECK(dnj_server_port(NULL) == -1, "null server has no port");

  /* Multi-tenant registry (ABI 1.2): lifecycle from pure C. */
  dnj_registry_t* registry = dnj_registry_new();
  CHECK(registry != NULL, "registry_new");
  CHECK(strcmp(dnj_registry_last_error(registry), "") == 0, "fresh registry has no error");
  CHECK(dnj_registry_count(registry) == 0, "fresh registry is empty");
  uint64_t version = 0;
  CHECK(dnj_registry_put(registry, "edge-cam", options, 4096, &version) == DNJ_OK,
        "registry_put");
  CHECK(version > 0, "put published a version");
  CHECK(dnj_registry_count(registry) == 1, "registry counts one tenant");
  uint64_t got_version = 0;
  size_t got_quota = 0;
  CHECK(dnj_registry_get(registry, "edge-cam", &got_version, &got_quota) == DNJ_OK,
        "registry_get");
  CHECK(got_version == version && got_quota == 4096, "get reports version and quota");
  dnj_options_t* tenant_options = dnj_options_new();
  CHECK(dnj_registry_encode_options(registry, "edge-cam", 70, tenant_options) == DNJ_OK,
        "registry_encode_options");
  dnj_buffer_t tenant_jpeg = {NULL, 0};
  CHECK(dnj_encode(session, pixels, W, H, 1, tenant_options, &tenant_jpeg) == DNJ_OK,
        "encode under tenant options");
  CHECK(tenant_jpeg.size > 0, "tenant-options encode produced bytes");
  CHECK(dnj_registry_get(registry, "ghost", NULL, NULL) == DNJ_INVALID_ARGUMENT,
        "unknown tenant is DNJ_INVALID_ARGUMENT");
  CHECK(strlen(dnj_registry_last_error(registry)) > 0, "registry error recorded");
  CHECK(dnj_registry_put(registry, NULL, NULL, 0, NULL) == DNJ_INVALID_ARGUMENT,
        "null name is DNJ_INVALID_ARGUMENT");
  CHECK(dnj_registry_put(NULL, "x", NULL, 0, NULL) == DNJ_INVALID_ARGUMENT,
        "null registry is DNJ_INVALID_ARGUMENT");
  CHECK(dnj_registry_count(NULL) == 0, "null registry counts zero");

  /* A server over the registry; the handle may be freed first (the
   * underlying registry is shared with the server). */
  dnj_server_t* tenant_server = dnj_server_new_with_registry(1, 8, 1, registry);
  CHECK(tenant_server != NULL, "server_new_with_registry");
  CHECK(dnj_registry_remove(registry, "edge-cam") == DNJ_OK, "registry_remove");
  CHECK(dnj_registry_remove(registry, "edge-cam") == DNJ_INVALID_ARGUMENT,
        "double remove is DNJ_INVALID_ARGUMENT");
  dnj_registry_free(registry);
  dnj_server_free(tenant_server);
  dnj_buffer_free(&tenant_jpeg);
  dnj_options_free(tenant_options);
  dnj_registry_free(NULL);

  /* Free everything (including NULLs, which must be inert). */
  dnj_buffer_free(&deepn);
  dnj_options_free(designed);
  dnj_designer_free(designer);
  dnj_buffer_free(&transcoded);
  dnj_image_free(&decoded);
  dnj_buffer_free(&jpeg);
  dnj_options_free(options);
  dnj_session_free(session);
  dnj_buffer_free(NULL);
  dnj_image_free(NULL);
  dnj_session_free(NULL);

  if (g_failures == 0) {
    printf("test_capi_smoke: all checks passed\n");
    return 0;
  }
  fprintf(stderr, "test_capi_smoke: %d failure(s)\n", g_failures);
  return 1;
}
