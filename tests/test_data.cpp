#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/frequency_analysis.hpp"
#include "data/synthetic.hpp"

namespace dnj::data {
namespace {

GeneratorConfig small_config() {
  GeneratorConfig cfg;
  cfg.width = 32;
  cfg.height = 32;
  cfg.channels = 1;
  cfg.num_classes = 8;
  cfg.seed = 1234;
  return cfg;
}

TEST(Synthetic, RejectsBadConfig) {
  GeneratorConfig cfg = small_config();
  cfg.width = 4;
  EXPECT_THROW(SyntheticDatasetGenerator{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.channels = 2;
  EXPECT_THROW(SyntheticDatasetGenerator{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.num_classes = 1;
  EXPECT_THROW(SyntheticDatasetGenerator{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.num_classes = 9;
  EXPECT_THROW(SyntheticDatasetGenerator{cfg}, std::invalid_argument);
}

TEST(Synthetic, GenerateShapesAndLabels) {
  const SyntheticDatasetGenerator gen(small_config());
  const Dataset ds = gen.generate(5);
  EXPECT_EQ(ds.size(), 40u);
  EXPECT_EQ(ds.num_classes, 8);
  EXPECT_EQ(ds.width(), 32);
  EXPECT_EQ(ds.height(), 32);
  EXPECT_EQ(ds.channels(), 1);
  const auto counts = ds.class_counts();
  for (int c = 0; c < 8; ++c) EXPECT_EQ(counts[static_cast<std::size_t>(c)], 5);
  EXPECT_EQ(ds.raw_bytes(), 40u * 32u * 32u);
}

TEST(Synthetic, RenderIsDeterministic) {
  const SyntheticDatasetGenerator gen(small_config());
  const image::Image a = gen.render(ClassKind::kFineGrating, 3);
  const image::Image b = gen.render(ClassKind::kFineGrating, 3);
  EXPECT_EQ(a, b);
}

TEST(Synthetic, DifferentIndicesDiffer) {
  const SyntheticDatasetGenerator gen(small_config());
  EXPECT_NE(gen.render(ClassKind::kSmoothBlob, 0), gen.render(ClassKind::kSmoothBlob, 1));
}

TEST(Synthetic, DifferentSeedsDiffer) {
  GeneratorConfig c1 = small_config();
  GeneratorConfig c2 = small_config();
  c2.seed = 999;
  EXPECT_NE(SyntheticDatasetGenerator(c1).render(ClassKind::kGradient, 0),
            SyntheticDatasetGenerator(c2).render(ClassKind::kGradient, 0));
}

TEST(Synthetic, SplitIsDisjointByConstruction) {
  const SyntheticDatasetGenerator gen(small_config());
  const auto [train, test] = gen.generate_split(4, 3);
  EXPECT_EQ(train.size(), 32u);
  EXPECT_EQ(test.size(), 24u);
  // Disjoint index ranges mean no image appears in both sets.
  for (const Sample& tr : train.samples)
    for (const Sample& te : test.samples) EXPECT_NE(tr.image, te.image);
}

TEST(Synthetic, RgbModeProducesColor) {
  GeneratorConfig cfg = small_config();
  cfg.channels = 3;
  const SyntheticDatasetGenerator gen(cfg);
  const image::Image img = gen.render(ClassKind::kCoarseGrating, 0);
  EXPECT_EQ(img.channels(), 3);
}

TEST(Synthetic, ClassNamesAreUnique) {
  std::set<std::string> names;
  for (int c = 0; c < kNumClassKinds; ++c)
    names.insert(class_name(static_cast<ClassKind>(c)));
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kNumClassKinds));
}

// --- spectral signatures: the property the whole paper rides on ---

double band_energy_above_rank(const image::Image& img, int min_rank) {
  // Sum sigma over the DCT bands whose zig-zag position is >= min_rank
  // (higher position = higher spatial frequency).
  const core::FrequencyProfile p = core::analyze_image(img);
  double hf = 0.0;
  for (int k = 1; k < 64; ++k) {
    const int row = k / 8, col = k % 8;
    if (row + col >= min_rank) hf += p.sigma[static_cast<std::size_t>(k)];
  }
  return hf;
}

TEST(SyntheticSpectra, FineClassesHaveMoreHighFrequencyEnergy) {
  const SyntheticDatasetGenerator gen(small_config());
  double lowfreq_class = 0.0, highfreq_class = 0.0;
  for (int i = 0; i < 8; ++i) {
    lowfreq_class += band_energy_above_rank(gen.render(ClassKind::kSmoothBlob, i), 8);
    highfreq_class += band_energy_above_rank(gen.render(ClassKind::kCheckerboard, i), 8);
  }
  EXPECT_GT(highfreq_class, 3.0 * lowfreq_class);
}

TEST(SyntheticSpectra, TexturePairDiffersOnlyInHighBands) {
  // kBlobPlusTexture vs kSmoothBlob: low-band energy similar, high-band
  // energy much larger for the textured class.
  const SyntheticDatasetGenerator gen(small_config());
  double blob_hf = 0.0, tex_hf = 0.0;
  for (int i = 0; i < 8; ++i) {
    blob_hf += band_energy_above_rank(gen.render(ClassKind::kSmoothBlob, i), 10);
    tex_hf += band_energy_above_rank(gen.render(ClassKind::kBlobPlusTexture, i), 10);
  }
  EXPECT_GT(tex_hf, 2.0 * blob_hf);
}

}  // namespace
}  // namespace dnj::data
