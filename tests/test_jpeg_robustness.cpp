// Failure-injection tests: the decoder must reject (throw) — never crash,
// hang, or read out of bounds — on truncated, bit-flipped, and shuffled
// streams. Sanitizer-friendly by construction: every mutation is exercised
// through the public decode API.
#include <gtest/gtest.h>

#include <random>

#include "data/synthetic.hpp"
#include "jpeg/codec.hpp"

namespace dnj::jpeg {
namespace {

std::vector<std::uint8_t> reference_stream() {
  data::GeneratorConfig cfg;
  cfg.width = 48;
  cfg.height = 40;
  cfg.seed = 99;
  const image::Image img =
      data::SyntheticDatasetGenerator(cfg).render(data::ClassKind::kBandNoise, 0);
  EncoderConfig ec;
  ec.quality = 80;
  return encode(img, ec);
}

// Decode must either succeed or throw std::runtime_error; anything else
// (crash, std::bad_alloc from a bogus size, etc.) is a failure.
void expect_graceful(const std::vector<std::uint8_t>& bytes) {
  try {
    const image::Image img = decode(bytes);
    // If it decoded, the geometry must be sane.
    EXPECT_GT(img.width(), 0);
    EXPECT_GT(img.height(), 0);
    EXPECT_LE(img.width(), 65535);
    EXPECT_LE(img.height(), 65535);
  } catch (const std::runtime_error&) {
    // acceptable: rejected as corrupt
  }
}

class TruncationSweep : public ::testing::TestWithParam<int> {};

TEST_P(TruncationSweep, EveryPrefixIsHandled) {
  const std::vector<std::uint8_t> full = reference_stream();
  // Sweep a band of prefix lengths determined by the parameter decile.
  const std::size_t begin = full.size() * static_cast<std::size_t>(GetParam()) / 10;
  const std::size_t end = full.size() * static_cast<std::size_t>(GetParam() + 1) / 10;
  for (std::size_t len = begin; len < end; len += 7) {
    std::vector<std::uint8_t> prefix(full.begin(), full.begin() + static_cast<long>(len));
    expect_graceful(prefix);
  }
}

INSTANTIATE_TEST_SUITE_P(Deciles, TruncationSweep, ::testing::Range(0, 10));

class BitFlipSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BitFlipSweep, RandomSingleByteCorruptions) {
  const std::vector<std::uint8_t> full = reference_stream();
  std::mt19937_64 rng(GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<std::uint8_t> mutated = full;
    const std::size_t pos = rng() % mutated.size();
    mutated[pos] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
    expect_graceful(mutated);
  }
}

TEST_P(BitFlipSweep, RandomMultiByteCorruptions) {
  const std::vector<std::uint8_t> full = reference_stream();
  std::mt19937_64 rng(GetParam() * 31 + 7);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<std::uint8_t> mutated = full;
    const int flips = 2 + static_cast<int>(rng() % 12);
    for (int f = 0; f < flips; ++f)
      mutated[rng() % mutated.size()] = static_cast<std::uint8_t>(rng() & 0xFF);
    expect_graceful(mutated);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitFlipSweep, ::testing::Range<std::uint64_t>(1, 6));

TEST(Robustness, HeaderFieldMutations) {
  const std::vector<std::uint8_t> full = reference_stream();
  // Targeted corruption of every byte in the header region (through SOS).
  const std::size_t header_len = std::min<std::size_t>(full.size(), 700);
  for (std::size_t pos = 2; pos < header_len; ++pos) {
    std::vector<std::uint8_t> mutated = full;
    mutated[pos] ^= 0xFF;
    expect_graceful(mutated);
  }
}

TEST(Robustness, ZeroLengthSegments) {
  // DQT with segment length 2 (no payload) then EOI: must throw, not loop.
  const std::vector<std::uint8_t> stream = {0xFF, 0xD8, 0xFF, 0xDB, 0x00, 0x02,
                                            0xFF, 0xD9};
  expect_graceful(stream);
}

TEST(Robustness, RepeatedSoi) {
  std::vector<std::uint8_t> full = reference_stream();
  std::vector<std::uint8_t> doubled;
  doubled.reserve(full.size() + 2);
  doubled.push_back(0xFF);
  doubled.push_back(0xD8);
  doubled.insert(doubled.end(), full.begin(), full.end());
  expect_graceful(doubled);
}

TEST(Robustness, AllBytesSame) {
  for (int b : {0x00, 0xFF, 0xD8, 0x42}) {
    std::vector<std::uint8_t> stream(256, static_cast<std::uint8_t>(b));
    expect_graceful(stream);
  }
}

TEST(Robustness, ScanDataReplacedWithNoise) {
  const std::vector<std::uint8_t> full = reference_stream();
  // Find SOS and randomize everything after its header.
  std::size_t sos = 0;
  for (std::size_t i = 0; i + 1 < full.size(); ++i)
    if (full[i] == 0xFF && full[i + 1] == 0xDA) {
      sos = i;
      break;
    }
  ASSERT_GT(sos, 0u);
  std::mt19937_64 rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint8_t> mutated = full;
    for (std::size_t i = sos + 14; i < mutated.size() - 2; ++i)
      mutated[i] = static_cast<std::uint8_t>(rng() & 0xFF);
    expect_graceful(mutated);
  }
}

}  // namespace
}  // namespace dnj::jpeg
