#include <gtest/gtest.h>

#include <random>

#include "data/synthetic.hpp"
#include "nn/adam.hpp"
#include "nn/augment.hpp"
#include "nn/dropout.hpp"
#include "nn/layers.hpp"
#include "nn/loss.hpp"
#include "nn/models.hpp"
#include "nn/trainer.hpp"

namespace dnj::nn {
namespace {

Tensor random_tensor(int n, int c, int h, int w, std::uint64_t seed) {
  Tensor t(n, c, h, w);
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  for (float& v : t.data()) v = dist(rng);
  return t;
}

// --- Dropout ---

TEST(Dropout, EvalModeIsIdentity) {
  Dropout drop(0.5f);
  const Tensor x = random_tensor(2, 3, 4, 4, 1);
  const Tensor y = drop.forward(x, /*train=*/false);
  EXPECT_EQ(y.data(), x.data());
}

TEST(Dropout, ZeroProbIsIdentityInTraining) {
  Dropout drop(0.0f);
  const Tensor x = random_tensor(2, 3, 4, 4, 2);
  const Tensor y = drop.forward(x, /*train=*/true);
  EXPECT_EQ(y.data(), x.data());
}

TEST(Dropout, DropsApproximatelyTheConfiguredFraction) {
  Dropout drop(0.3f, 99);
  Tensor x(1, 1, 100, 100);
  for (float& v : x.data()) v = 1.0f;
  const Tensor y = drop.forward(x, true);
  int zeros = 0;
  for (float v : y.data()) zeros += (v == 0.0f) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.3, 0.03);
  // Survivors are scaled by 1/keep so the expectation is preserved.
  for (float v : y.data()) {
    if (v != 0.0f) {
      EXPECT_NEAR(v, 1.0f / 0.7f, 1e-5f);
    }
  }
}

TEST(Dropout, BackwardUsesTheSameMask) {
  Dropout drop(0.5f, 7);
  Tensor x(1, 1, 1, 64);
  for (float& v : x.data()) v = 2.0f;
  const Tensor y = drop.forward(x, true);
  Tensor dy(1, 1, 1, 64);
  for (float& v : dy.data()) v = 1.0f;
  const Tensor dx = drop.backward(dy);
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y.data()[i] == 0.0f)
      EXPECT_EQ(dx.data()[i], 0.0f);
    else
      EXPECT_NEAR(dx.data()[i], 2.0f, 1e-5f);
  }
}

TEST(Dropout, RejectsBadProbability) {
  EXPECT_THROW(Dropout(-0.1f), std::invalid_argument);
  EXPECT_THROW(Dropout(1.0f), std::invalid_argument);
}

// --- Adam ---

TEST(Adam, ConvergesOnQuadratic) {
  // A single Dense layer fitting y = 0 from fixed input: Adam should drive
  // the weights toward zero output quickly.
  std::mt19937_64 rng(5);
  Dense dense(4, 2, rng);
  AdamConfig cfg;
  cfg.lr = 0.05f;
  Adam opt(dense, cfg);
  Tensor x(8, 4, 1, 1);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  std::mt19937_64 drng(6);
  for (float& v : x.data()) v = dist(drng);

  double first_loss = 0.0, last_loss = 0.0;
  for (int step = 0; step < 150; ++step) {
    opt.zero_grads();
    const Tensor y = dense.forward(x, true);
    double loss = 0.0;
    Tensor dy = y;
    for (std::size_t i = 0; i < y.size(); ++i) {
      loss += 0.5 * static_cast<double>(y.data()[i]) * y.data()[i];
      dy.data()[i] = y.data()[i];
    }
    dense.backward(dy);
    opt.step();
    if (step == 0) first_loss = loss;
    last_loss = loss;
  }
  EXPECT_LT(last_loss, 0.01 * first_loss);
}

TEST(Adam, TrainsClassifierAboveChance) {
  data::GeneratorConfig gc;
  gc.num_classes = 4;
  gc.seed = 77;
  const data::SyntheticDatasetGenerator gen(gc);
  const auto [train_set, test_set] = gen.generate_split(30, 10);

  LayerPtr model = make_model(ModelKind::kMiniAlexNet, 1, 32, 4, 11);
  AdamConfig cfg;
  cfg.lr = 2e-3f;
  Adam opt(*model, cfg);

  std::vector<int> idx(train_set.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::mt19937_64 rng(3);
  for (int epoch = 0; epoch < 4; ++epoch) {
    std::shuffle(idx.begin(), idx.end(), rng);
    for (std::size_t s = 0; s < idx.size(); s += 16) {
      const std::vector<int> batch(idx.begin() + static_cast<long>(s),
                                   idx.begin() + static_cast<long>(std::min(idx.size(), s + 16)));
      opt.zero_grads();
      const Tensor x = to_batch(train_set, batch);
      const LossResult loss =
          softmax_cross_entropy(model->forward(x, true), batch_labels(train_set, batch));
      model->backward(loss.grad);
      opt.step();
    }
  }
  EXPECT_GT(evaluate(*model, test_set), 0.6);
}

// --- Augmentation ---

TEST(Augment, IsDeterministicPerIndex) {
  data::GeneratorConfig gc;
  gc.seed = 9;
  const data::SyntheticDatasetGenerator gen(gc);
  const image::Image img = gen.render(data::ClassKind::kCoarseGrating, 0);
  AugmentConfig cfg;
  EXPECT_EQ(augment_image(img, cfg, 5), augment_image(img, cfg, 5));
  EXPECT_NE(augment_image(img, cfg, 5), augment_image(img, cfg, 6));
}

TEST(Augment, NoOpConfigPreservesImage) {
  data::GeneratorConfig gc;
  gc.seed = 10;
  const data::SyntheticDatasetGenerator gen(gc);
  const image::Image img = gen.render(data::ClassKind::kSmoothBlob, 1);
  AugmentConfig cfg;
  cfg.max_shift = 0;
  cfg.horizontal_flip = false;
  cfg.brightness_jitter = 0.0f;
  EXPECT_EQ(augment_image(img, cfg, 0), img);
}

TEST(Augment, PreservesGeometryAndLabels) {
  data::GeneratorConfig gc;
  gc.seed = 11;
  const data::SyntheticDatasetGenerator gen(gc);
  const data::Dataset ds = gen.generate(3);
  const data::Dataset aug = augment_dataset(ds, AugmentConfig{}, 1);
  ASSERT_EQ(aug.size(), ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(aug.samples[i].label, ds.samples[i].label);
    EXPECT_EQ(aug.samples[i].image.width(), ds.samples[i].image.width());
  }
}

TEST(Augment, BrightnessStaysInRange) {
  image::Image img(8, 8, 1);
  for (std::uint8_t& v : img.data()) v = 250;  // near saturation
  AugmentConfig cfg;
  cfg.max_shift = 0;
  cfg.horizontal_flip = false;
  cfg.brightness_jitter = 30.0f;
  for (int i = 0; i < 10; ++i) {
    const image::Image out = augment_image(img, cfg, static_cast<std::uint64_t>(i));
    for (std::uint8_t v : out.data()) EXPECT_LE(v, 255);
  }
}

TEST(Augment, TrainingWithAugmentationStillLearns) {
  data::GeneratorConfig gc;
  gc.num_classes = 4;
  gc.seed = 13;
  const data::SyntheticDatasetGenerator gen(gc);
  const auto [train_set, test_set] = gen.generate_split(30, 10);
  const data::Dataset aug = augment_dataset(train_set, AugmentConfig{}, 0);
  LayerPtr model = make_model(ModelKind::kMiniAlexNet, 1, 32, 4, 17);
  TrainConfig cfg;
  cfg.epochs = 4;
  cfg.lr = 0.02f;
  train(*model, aug, nullptr, cfg);
  EXPECT_GT(evaluate(*model, test_set), 0.6);
}

}  // namespace
}  // namespace dnj::nn
