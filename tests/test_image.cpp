#include <gtest/gtest.h>

#include <cstdio>
#include <random>

#include "image/blocks.hpp"
#include "image/color.hpp"
#include "image/image.hpp"
#include "image/io.hpp"
#include "image/metrics.hpp"
#include "image/resample.hpp"

namespace dnj::image {
namespace {

TEST(Image, ConstructsZeroFilled) {
  Image img(5, 7, 3);
  EXPECT_EQ(img.width(), 5);
  EXPECT_EQ(img.height(), 7);
  EXPECT_EQ(img.channels(), 3);
  EXPECT_EQ(img.byte_size(), 5u * 7u * 3u);
  EXPECT_EQ(img.pixel_count(), 35u);
  for (std::uint8_t v : img.data()) EXPECT_EQ(v, 0);
}

TEST(Image, RejectsBadShapes) {
  EXPECT_THROW(Image(0, 4, 1), std::invalid_argument);
  EXPECT_THROW(Image(4, 0, 1), std::invalid_argument);
  EXPECT_THROW(Image(4, 4, 2), std::invalid_argument);
  EXPECT_THROW(Image(4, 4, 4), std::invalid_argument);
}

TEST(Image, InterleavedIndexing) {
  Image img(3, 2, 3);
  img.at(1, 0, 2) = 42;
  EXPECT_EQ(img.data()[(0 * 3 + 1) * 3 + 2], 42);
  img.at(2, 1, 0) = 7;
  EXPECT_EQ(img.data()[(1 * 3 + 2) * 3 + 0], 7);
}

TEST(Image, CheckedAccessThrows) {
  Image img(3, 3, 1);
  EXPECT_THROW(img.at_checked(3, 0), std::out_of_range);
  EXPECT_THROW(img.at_checked(0, 3), std::out_of_range);
  EXPECT_THROW(img.at_checked(0, 0, 1), std::out_of_range);
  EXPECT_NO_THROW(img.at_checked(2, 2, 0));
}

TEST(ClampU8, RoundsAndSaturates) {
  EXPECT_EQ(clamp_u8(-5.0f), 0);
  EXPECT_EQ(clamp_u8(0.4f), 0);
  EXPECT_EQ(clamp_u8(0.6f), 1);
  EXPECT_EQ(clamp_u8(127.5f), 128);  // nearbyint: ties to even
  EXPECT_EQ(clamp_u8(254.6f), 255);
  EXPECT_EQ(clamp_u8(300.0f), 255);
}

TEST(Planes, ToFromPlaneRoundTrip) {
  Image img(9, 5, 3);
  std::mt19937 rng(7);
  for (std::uint8_t& v : img.data()) v = static_cast<std::uint8_t>(rng() & 0xFF);
  for (int c = 0; c < 3; ++c) {
    const PlaneF p = to_plane(img, c);
    Image back(9, 5, 3);
    from_plane(p, back, c);
    for (int y = 0; y < 5; ++y)
      for (int x = 0; x < 9; ++x) EXPECT_EQ(back.at(x, y, c), img.at(x, y, c));
  }
}

TEST(Planes, FromPlaneRejectsSmallPlane) {
  Image img(8, 8, 1);
  PlaneF small(4, 4);
  EXPECT_THROW(from_plane(small, img, 0), std::invalid_argument);
}

// --- color ---

TEST(Color, GrayPixelMapsToFlatChroma) {
  const auto ycc = rgb_to_ycbcr(100.0f, 100.0f, 100.0f);
  EXPECT_NEAR(ycc[0], 100.0f, 1e-3f);
  EXPECT_NEAR(ycc[1], 128.0f, 1e-3f);
  EXPECT_NEAR(ycc[2], 128.0f, 1e-3f);
}

TEST(Color, KnownPrimaries) {
  const auto red = rgb_to_ycbcr(255.0f, 0.0f, 0.0f);
  EXPECT_NEAR(red[0], 76.245f, 0.05f);
  const auto blue = rgb_to_ycbcr(0.0f, 0.0f, 255.0f);
  EXPECT_NEAR(blue[0], 29.07f, 0.05f);
  EXPECT_NEAR(blue[1], 255.0f, 0.5f);
}

class ColorRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(ColorRoundTrip, PerPixelInverseWithinOneLevel) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  for (int i = 0; i < 200; ++i) {
    const float r = static_cast<float>(rng() % 256);
    const float g = static_cast<float>(rng() % 256);
    const float b = static_cast<float>(rng() % 256);
    const auto ycc = rgb_to_ycbcr(r, g, b);
    const auto rgb = ycbcr_to_rgb(ycc[0], ycc[1], ycc[2]);
    EXPECT_NEAR(rgb[0], r, 1.0f);
    EXPECT_NEAR(rgb[1], g, 1.0f);
    EXPECT_NEAR(rgb[2], b, 1.0f);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ColorRoundTrip, ::testing::Values(1, 2, 3, 4));

TEST(Color, ImageLevelRoundTrip) {
  Image img(17, 11, 3);
  std::mt19937 rng(11);
  for (std::uint8_t& v : img.data()) v = static_cast<std::uint8_t>(rng() & 0xFF);
  const YCbCrPlanes planes = to_ycbcr(img);
  const Image back = to_rgb(planes, 17, 11);
  EXPECT_LE(max_abs_diff(img, back), 1);
}

TEST(Color, GrayImageYieldsFlatChromaPlanes) {
  Image img(8, 8, 1);
  for (std::uint8_t& v : img.data()) v = 77;
  const YCbCrPlanes planes = to_ycbcr(img);
  EXPECT_FLOAT_EQ(planes.y.at(3, 3), 77.0f);
  EXPECT_FLOAT_EQ(planes.cb.at(3, 3), 128.0f);
  EXPECT_FLOAT_EQ(planes.cr.at(3, 3), 128.0f);
}

// --- blocks ---

TEST(Blocks, PaddedDim) {
  EXPECT_EQ(padded_dim(1), 8);
  EXPECT_EQ(padded_dim(8), 8);
  EXPECT_EQ(padded_dim(9), 16);
  EXPECT_EQ(padded_dim(64), 64);
}

struct BlockDims {
  int w, h;
};

class BlockRoundTrip : public ::testing::TestWithParam<BlockDims> {};

TEST_P(BlockRoundTrip, SplitMergePreservesInterior) {
  const auto [w, h] = GetParam();
  PlaneF plane(w, h);
  std::mt19937 rng(99);
  for (float& v : plane.data()) v = static_cast<float>(rng() % 256);
  int bx = 0, by = 0;
  const auto blocks = split_blocks(plane, &bx, &by);
  EXPECT_EQ(bx, padded_dim(w) / 8);
  EXPECT_EQ(by, padded_dim(h) / 8);
  EXPECT_EQ(blocks.size(), static_cast<std::size_t>(bx) * by);
  const PlaneF merged = merge_blocks(blocks, bx, by);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) EXPECT_FLOAT_EQ(merged.at(x, y), plane.at(x, y));
}

INSTANTIATE_TEST_SUITE_P(Dims, BlockRoundTrip,
                         ::testing::Values(BlockDims{8, 8}, BlockDims{16, 8},
                                           BlockDims{9, 9}, BlockDims{31, 17},
                                           BlockDims{1, 1}, BlockDims{64, 40}));

TEST(Blocks, EdgeReplicationPadding) {
  PlaneF plane(9, 9);
  for (int y = 0; y < 9; ++y)
    for (int x = 0; x < 9; ++x) plane.at(x, y) = static_cast<float>(x + 10 * y);
  const PlaneF padded = pad_to_blocks(plane);
  EXPECT_EQ(padded.width(), 16);
  EXPECT_EQ(padded.height(), 16);
  // Replicated right edge carries the x = 8 column.
  EXPECT_FLOAT_EQ(padded.at(15, 3), plane.at(8, 3));
  EXPECT_FLOAT_EQ(padded.at(4, 15), plane.at(4, 8));
  EXPECT_FLOAT_EQ(padded.at(15, 15), plane.at(8, 8));
}

TEST(Blocks, LevelShiftInverse) {
  BlockF blk{};
  for (int i = 0; i < kBlockSize; ++i) blk[static_cast<std::size_t>(i)] = static_cast<float>(i);
  BlockF shifted = blk;
  level_shift(shifted);
  EXPECT_FLOAT_EQ(shifted[0], -128.0f);
  level_unshift(shifted);
  for (int i = 0; i < kBlockSize; ++i)
    EXPECT_FLOAT_EQ(shifted[static_cast<std::size_t>(i)], blk[static_cast<std::size_t>(i)]);
}

TEST(Blocks, MergeRejectsBadGrid) {
  std::vector<BlockF> blocks(4);
  EXPECT_THROW(merge_blocks(blocks, 3, 2), std::invalid_argument);
}

// --- resample ---

TEST(Resample, DownsampleAveragesQuads) {
  PlaneF p(4, 4);
  for (int y = 0; y < 4; ++y)
    for (int x = 0; x < 4; ++x) p.at(x, y) = static_cast<float>(4 * y + x);
  const PlaneF d = downsample_2x2(p);
  ASSERT_EQ(d.width(), 2);
  ASSERT_EQ(d.height(), 2);
  EXPECT_FLOAT_EQ(d.at(0, 0), (0 + 1 + 4 + 5) / 4.0f);
  EXPECT_FLOAT_EQ(d.at(1, 1), (10 + 11 + 14 + 15) / 4.0f);
}

TEST(Resample, DownsampleOddTrailing) {
  PlaneF p(3, 3, 6.0f);
  const PlaneF d = downsample_2x2(p);
  EXPECT_EQ(d.width(), 2);
  EXPECT_EQ(d.height(), 2);
  EXPECT_FLOAT_EQ(d.at(1, 1), 6.0f);  // single-sample average
}

TEST(Resample, UpsampleConstantPlaneIsExact) {
  PlaneF p(4, 4, 42.0f);
  const PlaneF up = upsample_2x2(p, 8, 8);
  for (int y = 0; y < 8; ++y)
    for (int x = 0; x < 8; ++x) EXPECT_FLOAT_EQ(up.at(x, y), 42.0f);
}

TEST(Resample, UpsampleDimChecks) {
  PlaneF p(4, 4);
  EXPECT_THROW(upsample_2x2(p, 10, 8), std::invalid_argument);
  EXPECT_NO_THROW(upsample_2x2(p, 7, 8));  // ceil(7/2) == 4
}

TEST(Resample, DownUpRoundTripOnSmoothPlane) {
  PlaneF p(16, 16);
  for (int y = 0; y < 16; ++y)
    for (int x = 0; x < 16; ++x) p.at(x, y) = static_cast<float>(x) * 2.0f + y;
  const PlaneF rt = upsample_2x2(downsample_2x2(p), 16, 16);
  for (int y = 2; y < 14; ++y)
    for (int x = 2; x < 14; ++x) EXPECT_NEAR(rt.at(x, y), p.at(x, y), 2.0f);
}

TEST(Resample, ResizeNearestCorners) {
  PlaneF p(2, 2);
  p.at(0, 0) = 1;
  p.at(1, 0) = 2;
  p.at(0, 1) = 3;
  p.at(1, 1) = 4;
  const PlaneF r = resize_nearest(p, 4, 4);
  EXPECT_FLOAT_EQ(r.at(0, 0), 1);
  EXPECT_FLOAT_EQ(r.at(3, 0), 2);
  EXPECT_FLOAT_EQ(r.at(0, 3), 3);
  EXPECT_FLOAT_EQ(r.at(3, 3), 4);
}

// --- io ---

TEST(Io, PgmRoundTrip) {
  Image img(13, 9, 1);
  std::mt19937 rng(3);
  for (std::uint8_t& v : img.data()) v = static_cast<std::uint8_t>(rng() & 0xFF);
  const std::string path = ::testing::TempDir() + "dnj_test.pgm";
  write_pnm(img, path);
  const Image back = read_pnm(path);
  EXPECT_EQ(img, back);
  std::remove(path.c_str());
}

TEST(Io, PpmRoundTrip) {
  Image img(6, 4, 3);
  std::mt19937 rng(5);
  for (std::uint8_t& v : img.data()) v = static_cast<std::uint8_t>(rng() & 0xFF);
  const std::string path = ::testing::TempDir() + "dnj_test.ppm";
  write_pnm(img, path);
  const Image back = read_pnm(path);
  EXPECT_EQ(img, back);
  std::remove(path.c_str());
}

TEST(Io, ReadRejectsMissingFile) {
  EXPECT_THROW(read_pnm("/nonexistent/nope.pgm"), std::runtime_error);
}

// --- metrics ---

TEST(Metrics, IdenticalImages) {
  Image a(8, 8, 1);
  for (std::uint8_t& v : a.data()) v = 100;
  EXPECT_DOUBLE_EQ(mse(a, a), 0.0);
  EXPECT_TRUE(std::isinf(psnr(a, a)));
  EXPECT_EQ(max_abs_diff(a, a), 0);
}

TEST(Metrics, KnownMse) {
  Image a(2, 1, 1), b(2, 1, 1);
  a.at(0, 0) = 10;
  a.at(1, 0) = 20;
  b.at(0, 0) = 13;
  b.at(1, 0) = 16;
  EXPECT_DOUBLE_EQ(mse(a, b), (9.0 + 16.0) / 2.0);
  EXPECT_EQ(max_abs_diff(a, b), 4);
}

TEST(Metrics, ShapeMismatchThrows) {
  Image a(4, 4, 1), b(4, 4, 3);
  EXPECT_THROW(mse(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace dnj::image
