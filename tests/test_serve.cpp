// Serving-layer contract tests.
//
// The load-bearing one is ByteIdenticalToSynchronousCalls: every response
// payload must equal the equivalent synchronous single-threaded call, bit
// for bit, across worker counts {1, 2, 8}, micro-batching on/off, and
// cache off/warm — the serving extension of the repo-wide determinism
// contract. The expected values are computed with direct jpeg::/nn:: calls
// (not TranscodeService::execute) so a service-side wiring bug cannot
// cancel out of the comparison.
#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "core/transcode.hpp"
#include "data/synthetic.hpp"
#include "jpeg/codec.hpp"
#include "nn/models.hpp"
#include "nn/trainer.hpp"
#include "serve/service.hpp"

namespace dnj::serve {
namespace {

data::Dataset gray_corpus(int per_class = 2) {
  data::GeneratorConfig cfg;
  cfg.width = 32;
  cfg.height = 32;
  cfg.channels = 1;
  cfg.num_classes = 4;
  cfg.seed = 0x5E4E;
  return data::SyntheticDatasetGenerator(cfg).generate(per_class);
}

image::Image rgb_image(int w = 40, int h = 24) {
  image::Image img(w, h, 3);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) {
      img.at(x, y, 0) = static_cast<std::uint8_t>((x * 7 + y * 3) & 0xFF);
      img.at(x, y, 1) = static_cast<std::uint8_t>((x * 2 + y * 11) & 0xFF);
      img.at(x, y, 2) = static_cast<std::uint8_t>((x * 13 + y * 5) & 0xFF);
    }
  return img;
}

/// A large image whose encode takes long enough that requests submitted
/// while it is being processed reliably pile up behind it.
image::Image big_image(int side = 1536) {
  image::Image img(side, side, 1);
  for (int y = 0; y < side; ++y)
    for (int x = 0; x < side; ++x)
      img.at(x, y) = static_cast<std::uint8_t>((x * x + y * 31) & 0xFF);
  return img;
}

jpeg::EncoderConfig config_a() {
  jpeg::EncoderConfig cfg;
  cfg.quality = 85;
  cfg.subsampling = jpeg::Subsampling::k444;
  return cfg;
}

jpeg::EncoderConfig config_b() {
  jpeg::EncoderConfig cfg;
  cfg.quality = 40;
  cfg.subsampling = jpeg::Subsampling::k420;
  cfg.optimize_huffman = true;
  return cfg;
}

Request encode_request(const image::Image& img, const jpeg::EncoderConfig& cfg) {
  Request r;
  r.kind = RequestKind::kEncode;
  r.image = img;
  r.config = cfg;
  return r;
}

/// The mixed workload used by the identity suite: every request paired with
/// its independently computed synchronous expectation.
struct Expected {
  Request request;
  Response want;  ///< status always kOk; only payload fields meaningful
};

std::vector<Expected> mixed_workload(nn::Layer* model, const jpeg::QuantTable& deepn_luma,
                                     const jpeg::QuantTable& deepn_chroma) {
  const data::Dataset ds = gray_corpus();
  std::vector<image::Image> images;
  for (const data::Sample& s : ds.samples) images.push_back(s.image);
  images.push_back(rgb_image());

  std::vector<Expected> out;
  const jpeg::EncoderConfig cfgs[2] = {config_a(), config_b()};
  for (std::size_t i = 0; i < images.size(); ++i) {
    const image::Image& img = images[i];
    const jpeg::EncoderConfig& cfg = cfgs[i % 2];
    const std::vector<std::uint8_t> stored = jpeg::encode(img, config_a());

    Expected enc;
    enc.request = encode_request(img, cfg);
    enc.want.bytes = jpeg::encode(img, cfg);
    out.push_back(std::move(enc));

    Expected dec;
    dec.request.kind = RequestKind::kDecode;
    dec.request.bytes = stored;
    dec.want.image = jpeg::decode(stored);
    out.push_back(std::move(dec));

    Expected xcode;
    xcode.request.kind = RequestKind::kTranscode;
    xcode.request.bytes = stored;
    xcode.request.config = cfgs[(i + 1) % 2];
    xcode.want.bytes = jpeg::encode(jpeg::decode(stored), cfgs[(i + 1) % 2]);
    out.push_back(std::move(xcode));

    Expected deepn;
    deepn.request.kind = RequestKind::kDeepnEncode;
    deepn.request.image = img;
    deepn.request.quality = static_cast<int>(30 + 15 * (i % 3));
    {
      jpeg::EncoderConfig dcfg;
      dcfg.use_custom_tables = true;
      dcfg.luma_table = deepn_luma.scaled(deepn.request.quality);
      dcfg.chroma_table = deepn_chroma.scaled(deepn.request.quality);
      dcfg.subsampling = jpeg::Subsampling::k444;
      deepn.want.bytes = jpeg::encode(img, dcfg);
    }
    out.push_back(std::move(deepn));

    if (model && img.channels() == 1) {
      Expected infer;
      infer.request.kind = RequestKind::kInfer;
      infer.request.bytes = stored;
      infer.want.probs = nn::predict_probs(*model, jpeg::decode(stored));
      out.push_back(std::move(infer));
    }
  }
  return out;
}

void expect_payload_equal(const Response& got, const Response& want, std::size_t idx) {
  ASSERT_EQ(got.status, Status::kOk) << "request " << idx << ": " << got.error;
  EXPECT_EQ(got.bytes, want.bytes) << "request " << idx;
  EXPECT_TRUE(got.image == want.image) << "request " << idx;
  EXPECT_EQ(got.probs, want.probs) << "request " << idx;
}

TEST(TranscodeService, ByteIdenticalToSynchronousCalls) {
  const jpeg::QuantTable deepn_luma = jpeg::QuantTable::annex_k_luma();
  const jpeg::QuantTable deepn_chroma = jpeg::QuantTable::uniform(24);
  nn::LayerPtr model = nn::make_model(nn::ModelKind::kMiniAlexNet, 1, 32, 4, 0xA11CE);
  const std::vector<Expected> workload =
      mixed_workload(model.get(), deepn_luma, deepn_chroma);

  for (int workers : {1, 2, 8}) {
    for (int max_batch : {1, 8}) {
      for (std::size_t cache : {std::size_t{0}, std::size_t{128}}) {
        ServiceConfig cfg;
        cfg.workers = workers;
        cfg.max_batch = max_batch;
        cfg.cache_capacity = cache;
        cfg.queue_capacity = 64;
        cfg.deepn_luma = deepn_luma;
        cfg.deepn_chroma = deepn_chroma;
        cfg.model = model.get();
        TranscodeService service(cfg);

        // Two passes over the workload: the second hits a warm cache when
        // caching is on, and must still match the uncached expectation.
        std::vector<std::future<Response>> futures;
        for (int pass = 0; pass < 2; ++pass)
          for (const Expected& e : workload) futures.push_back(service.submit(e.request));
        for (std::size_t f = 0; f < futures.size(); ++f) {
          const Response got = futures[f].get();
          expect_payload_equal(got, workload[f % workload.size()].want, f);
        }

        const ServiceStats st = service.stats();
        EXPECT_EQ(st.submitted, futures.size());
        EXPECT_EQ(st.completed, futures.size());
        EXPECT_EQ(st.errors, 0u);
        EXPECT_LE(st.queue_high_water, st.queue_capacity);
        if (cache > 0) {
          EXPECT_GT(st.cache_hits, 0u);
        }
      }
    }
  }
}

TEST(TranscodeService, CacheHitIsFlaggedAndIdentical) {
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.cache_capacity = 16;
  TranscodeService service(cfg);

  const Request req = encode_request(gray_corpus(1).samples[0].image, config_a());
  const Response first = service.submit(req).get();
  const Response second = service.submit(req).get();
  ASSERT_EQ(first.status, Status::kOk);
  ASSERT_EQ(second.status, Status::kOk);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(first.bytes, second.bytes);
  EXPECT_GE(service.stats().cache_hits, 1u);
}

TEST(TranscodeService, RejectPolicyReturnsTypedErrorAndBoundsQueue) {
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 4;
  cfg.admission = AdmissionPolicy::kReject;
  cfg.max_batch = 1;
  TranscodeService service(cfg);

  // Occupy the worker with a multi-millisecond encode, then burst-submit
  // more tiny requests than the queue can hold.
  jpeg::EncoderConfig big_cfg = config_a();
  big_cfg.quality = 77;  // distinct config: never batches with the burst
  std::vector<std::future<Response>> futures;
  futures.push_back(service.submit(encode_request(big_image(), big_cfg)));

  const image::Image tiny = gray_corpus(1).samples[0].image;
  const int burst = 60;
  for (int i = 0; i < burst; ++i)
    futures.push_back(service.submit(encode_request(tiny, config_a())));

  std::size_t ok = 0, rejected = 0;
  for (std::future<Response>& f : futures) {
    const Response r = f.get();
    if (r.status == Status::kOk) {
      ++ok;
    } else {
      ASSERT_EQ(r.status, Status::kRejected);
      EXPECT_FALSE(r.error.empty());
      EXPECT_TRUE(r.bytes.empty());
      ++rejected;
    }
  }
  EXPECT_EQ(ok + rejected, static_cast<std::size_t>(burst) + 1);
  EXPECT_GE(rejected, 1u);

  const ServiceStats st = service.stats();
  EXPECT_EQ(st.rejected, rejected);
  EXPECT_EQ(st.completed, ok);
  EXPECT_LE(st.queue_high_water, cfg.queue_capacity);
}

TEST(TranscodeService, BlockPolicyServesEverythingThroughTinyQueue) {
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 2;
  cfg.admission = AdmissionPolicy::kBlock;
  TranscodeService service(cfg);

  const image::Image img = gray_corpus(1).samples[0].image;
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 100; ++i)
    futures.push_back(service.submit(encode_request(img, config_a())));
  for (std::future<Response>& f : futures) EXPECT_EQ(f.get().status, Status::kOk);

  const ServiceStats st = service.stats();
  EXPECT_EQ(st.completed, 100u);
  EXPECT_EQ(st.rejected, 0u);
  EXPECT_LE(st.queue_high_water, 2u);
}

TEST(TranscodeService, GracefulShutdownDrainsAcceptedWork) {
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 64;
  cfg.max_batch = 4;
  TranscodeService service(cfg);

  std::vector<std::future<Response>> futures;
  futures.push_back(service.submit(encode_request(big_image(), config_a())));
  const image::Image tiny = gray_corpus(1).samples[0].image;
  for (int i = 0; i < 23; ++i)
    futures.push_back(service.submit(encode_request(tiny, config_b())));

  service.shutdown();  // must drain all 24 accepted requests first

  for (std::future<Response>& f : futures) {
    const Response r = f.get();
    EXPECT_EQ(r.status, Status::kOk) << r.error;
    EXPECT_FALSE(r.bytes.empty());
  }

  // Post-shutdown submissions get the typed refusal, immediately.
  const Response late = service.submit(encode_request(tiny, config_a())).get();
  EXPECT_EQ(late.status, Status::kShutdown);
  EXPECT_FALSE(late.error.empty());
  EXPECT_EQ(service.stats().refused_shutdown, 1u);
  EXPECT_EQ(service.stats().completed, futures.size());
}

TEST(TranscodeService, HandlerExceptionsBecomeTypedErrorResponses) {
  ServiceConfig cfg;
  cfg.workers = 2;
  TranscodeService service(cfg);

  Request malformed;
  malformed.kind = RequestKind::kDecode;
  malformed.bytes = {0x00, 0x01, 0x02, 0x03};
  const Response bad = service.submit(malformed).get();
  EXPECT_EQ(bad.status, Status::kError);
  EXPECT_FALSE(bad.error.empty());

  Request infer;  // no model configured
  infer.kind = RequestKind::kInfer;
  infer.bytes = jpeg::encode(gray_corpus(1).samples[0].image, config_a());
  const Response no_model = service.submit(infer).get();
  EXPECT_EQ(no_model.status, Status::kError);
  EXPECT_FALSE(no_model.error.empty());

  // The service survives handler failures.
  const Response ok =
      service.submit(encode_request(gray_corpus(1).samples[0].image, config_a())).get();
  EXPECT_EQ(ok.status, Status::kOk);

  const ServiceStats st = service.stats();
  EXPECT_EQ(st.errors, 2u);
  EXPECT_EQ(st.completed, 1u);
}

TEST(TranscodeService, MicroBatchingGroupsCompatibleRequests) {
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 8;
  cfg.queue_capacity = 32;
  TranscodeService service(cfg);

  // Hold the worker on a slow request, queue 8 identical-config encodes
  // behind it; when the worker frees they are all immediately available
  // and compatible, so they drain as one batch.
  jpeg::EncoderConfig big_cfg = config_a();
  big_cfg.quality = 77;
  std::vector<std::future<Response>> futures;
  futures.push_back(service.submit(encode_request(big_image(), big_cfg)));
  const image::Image tiny = gray_corpus(1).samples[0].image;
  for (int i = 0; i < 8; ++i)
    futures.push_back(service.submit(encode_request(tiny, config_a())));

  int max_reported = 0;
  for (std::future<Response>& f : futures) {
    const Response r = f.get();
    ASSERT_EQ(r.status, Status::kOk);
    max_reported = std::max(max_reported, r.batch_size);
  }
  EXPECT_GE(max_reported, 4);
  EXPECT_GE(service.stats().max_batch, 4u);
  EXPECT_GT(service.stats().batched_requests, 0u);
}

TEST(TranscodeService, WarmContextRebuildAccounting) {
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.cache_capacity = 0;  // every request really encodes
  TranscodeService service(cfg);

  const image::Image img = gray_corpus(1).samples[0].image;
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 50; ++i)
    futures.push_back(service.submit(encode_request(img, config_a())));
  for (std::future<Response>& f : futures) ASSERT_EQ(f.get().status, Status::kOk);

  // A same-config stream on one worker derives each cached table set at
  // most once — the warm-context property micro-batching protects.
  const ServiceStats st = service.stats();
  EXPECT_LE(st.ctx_quality_table_builds, 1u);
  EXPECT_LE(st.ctx_huffman_builds, 1u);
  EXPECT_LE(st.ctx_reciprocal_builds, 2u);
}

TEST(TranscodeService, DeepnTableCacheServesScaledTables) {
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.deepn_luma = jpeg::QuantTable::annex_k_luma();
  cfg.deepn_chroma = jpeg::QuantTable::annex_k_chroma();
  cfg.table_cache_capacity = 4;
  TranscodeService service(cfg);

  const image::Image img = gray_corpus(1).samples[0].image;
  Request req;
  req.kind = RequestKind::kDeepnEncode;
  req.image = img;
  req.quality = 35;

  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 6; ++i) futures.push_back(service.submit(req));
  jpeg::EncoderConfig expected_cfg;
  expected_cfg.use_custom_tables = true;
  expected_cfg.luma_table = cfg.deepn_luma.scaled(35);
  expected_cfg.chroma_table = cfg.deepn_chroma.scaled(35);
  expected_cfg.subsampling = jpeg::Subsampling::k444;
  const std::vector<std::uint8_t> expected = jpeg::encode(img, expected_cfg);
  for (std::future<Response>& f : futures) {
    const Response r = f.get();
    ASSERT_EQ(r.status, Status::kOk);
    EXPECT_EQ(r.bytes, expected);
  }
  const ServiceStats st = service.stats();
  EXPECT_GE(st.table_cache_hits + st.cache_hits, 1u);  // dedup via either cache
}

TEST(TranscodeService, StatsQuantilesAreCoherent) {
  ServiceConfig cfg;
  cfg.workers = 4;
  TranscodeService service(cfg);

  const data::Dataset ds = gray_corpus(4);
  std::vector<std::future<Response>> futures;
  for (const data::Sample& s : ds.samples)
    futures.push_back(service.submit(encode_request(s.image, config_a())));
  for (std::future<Response>& f : futures) ASSERT_EQ(f.get().status, Status::kOk);

  const ServiceStats st = service.stats();
  EXPECT_EQ(st.total.count, futures.size());
  EXPECT_EQ(st.queue_wait.count, futures.size());
  EXPECT_EQ(st.service_time.count, futures.size());
  EXPECT_LE(st.queue_wait.p50_us, st.queue_wait.p95_us);
  EXPECT_LE(st.queue_wait.p95_us, st.queue_wait.p99_us);
  EXPECT_LE(st.service_time.p50_us, st.service_time.p95_us);
  EXPECT_LE(st.service_time.p95_us, st.service_time.p99_us);
  EXPECT_GT(st.service_time.p50_us, 0.0);
  EXPECT_GE(st.batches, 1u);
  std::uint64_t kind_sum = 0;
  for (std::uint64_t c : st.per_kind) kind_sum += c;
  EXPECT_EQ(kind_sum, st.completed + st.errors);
}

TEST(TranscodeService, TranscodeBytesOverloadsAgree) {
  // The single-stream primitive the service's transcode handler runs on:
  // both overloads must equal the manual decode + encode composition.
  const std::vector<std::uint8_t> stored =
      jpeg::encode(gray_corpus(1).samples[0].image, config_a());
  const std::vector<std::uint8_t> manual =
      jpeg::encode(jpeg::decode(stored), config_b());
  EXPECT_EQ(core::transcode_bytes(stored, config_b()), manual);
  EXPECT_EQ(core::transcode_bytes(stored, config_b(),
                                  jpeg::pipeline::thread_codec_context()),
            manual);
}

TEST(TranscodeService, ExecuteMatchesSubmit) {
  ServiceConfig cfg;
  cfg.workers = 2;
  TranscodeService service(cfg);
  const Request req = encode_request(rgb_image(), config_b());
  const Response sync = service.execute(req);
  const Response async = service.submit(req).get();
  ASSERT_EQ(sync.status, Status::kOk);
  ASSERT_EQ(async.status, Status::kOk);
  EXPECT_EQ(sync.bytes, async.bytes);
}

}  // namespace
}  // namespace dnj::serve
