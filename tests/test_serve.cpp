// Serving-layer contract tests.
//
// The load-bearing one is ByteIdenticalToSynchronousCalls: every response
// payload must equal the equivalent synchronous single-threaded call, bit
// for bit, across worker counts {1, 2, 8}, micro-batching on/off, and
// cache off/warm — the serving extension of the repo-wide determinism
// contract. The expected values are computed with direct jpeg::/nn:: calls
// (not TranscodeService::execute) so a service-side wiring bug cannot
// cancel out of the comparison.
#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "core/transcode.hpp"
#include "data/synthetic.hpp"
#include "jpeg/codec.hpp"
#include "nn/models.hpp"
#include "nn/trainer.hpp"
#include "obs/trace.hpp"
#include "serve/service.hpp"

namespace dnj::serve {
namespace {

// The determinism suite runs with tracing forced on: observability must
// never influence payload bytes, so every request here is traced end to
// end while the byte-identity assertions do their work.
const bool force_tracing = [] {
  obs::Tracer::instance().set_sample_every(1);
  return true;
}();

data::Dataset gray_corpus(int per_class = 2) {
  data::GeneratorConfig cfg;
  cfg.width = 32;
  cfg.height = 32;
  cfg.channels = 1;
  cfg.num_classes = 4;
  cfg.seed = 0x5E4E;
  return data::SyntheticDatasetGenerator(cfg).generate(per_class);
}

image::Image rgb_image(int w = 40, int h = 24) {
  image::Image img(w, h, 3);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) {
      img.at(x, y, 0) = static_cast<std::uint8_t>((x * 7 + y * 3) & 0xFF);
      img.at(x, y, 1) = static_cast<std::uint8_t>((x * 2 + y * 11) & 0xFF);
      img.at(x, y, 2) = static_cast<std::uint8_t>((x * 13 + y * 5) & 0xFF);
    }
  return img;
}

/// A large image whose encode takes long enough that requests submitted
/// while it is being processed reliably pile up behind it.
image::Image big_image(int side = 1536) {
  image::Image img(side, side, 1);
  for (int y = 0; y < side; ++y)
    for (int x = 0; x < side; ++x)
      img.at(x, y) = static_cast<std::uint8_t>((x * x + y * 31) & 0xFF);
  return img;
}

jpeg::EncoderConfig config_a() {
  jpeg::EncoderConfig cfg;
  cfg.quality = 85;
  cfg.subsampling = jpeg::Subsampling::k444;
  return cfg;
}

jpeg::EncoderConfig config_b() {
  jpeg::EncoderConfig cfg;
  cfg.quality = 40;
  cfg.subsampling = jpeg::Subsampling::k420;
  cfg.optimize_huffman = true;
  return cfg;
}

Request encode_request(const image::Image& img, const jpeg::EncoderConfig& cfg) {
  Request r;
  r.kind = RequestKind::kEncode;
  r.image = img;
  r.config = cfg;
  return r;
}

/// The mixed workload used by the identity suite: every request paired with
/// its independently computed synchronous expectation.
struct Expected {
  Request request;
  Response want;  ///< status always kOk; only payload fields meaningful
};

std::vector<Expected> mixed_workload(nn::Layer* model, const jpeg::QuantTable& deepn_luma,
                                     const jpeg::QuantTable& deepn_chroma) {
  const data::Dataset ds = gray_corpus();
  std::vector<image::Image> images;
  for (const data::Sample& s : ds.samples) images.push_back(s.image);
  images.push_back(rgb_image());

  std::vector<Expected> out;
  const jpeg::EncoderConfig cfgs[2] = {config_a(), config_b()};
  for (std::size_t i = 0; i < images.size(); ++i) {
    const image::Image& img = images[i];
    const jpeg::EncoderConfig& cfg = cfgs[i % 2];
    const std::vector<std::uint8_t> stored = jpeg::encode(img, config_a());

    Expected enc;
    enc.request = encode_request(img, cfg);
    enc.want.bytes = jpeg::encode(img, cfg);
    out.push_back(std::move(enc));

    Expected dec;
    dec.request.kind = RequestKind::kDecode;
    dec.request.bytes = stored;
    dec.want.image = jpeg::decode(stored);
    out.push_back(std::move(dec));

    Expected xcode;
    xcode.request.kind = RequestKind::kTranscode;
    xcode.request.bytes = stored;
    xcode.request.config = cfgs[(i + 1) % 2];
    xcode.want.bytes = jpeg::encode(jpeg::decode(stored), cfgs[(i + 1) % 2]);
    out.push_back(std::move(xcode));

    Expected deepn;
    deepn.request.kind = RequestKind::kDeepnEncode;
    deepn.request.image = img;
    deepn.request.quality = static_cast<int>(30 + 15 * (i % 3));
    {
      jpeg::EncoderConfig dcfg;
      dcfg.use_custom_tables = true;
      dcfg.luma_table = deepn_luma.scaled(deepn.request.quality);
      dcfg.chroma_table = deepn_chroma.scaled(deepn.request.quality);
      dcfg.subsampling = jpeg::Subsampling::k444;
      deepn.want.bytes = jpeg::encode(img, dcfg);
    }
    out.push_back(std::move(deepn));

    if (model && img.channels() == 1) {
      Expected infer;
      infer.request.kind = RequestKind::kInfer;
      infer.request.bytes = stored;
      infer.want.probs = nn::predict_probs(*model, jpeg::decode(stored));
      out.push_back(std::move(infer));
    }
  }
  return out;
}

void expect_payload_equal(const Response& got, const Response& want, std::size_t idx) {
  ASSERT_EQ(got.status, Status::kOk) << "request " << idx << ": " << got.error;
  EXPECT_EQ(got.bytes, want.bytes) << "request " << idx;
  EXPECT_TRUE(got.image == want.image) << "request " << idx;
  EXPECT_EQ(got.probs, want.probs) << "request " << idx;
}

TEST(TranscodeService, ByteIdenticalToSynchronousCalls) {
  const jpeg::QuantTable deepn_luma = jpeg::QuantTable::annex_k_luma();
  const jpeg::QuantTable deepn_chroma = jpeg::QuantTable::uniform(24);
  nn::LayerPtr model = nn::make_model(nn::ModelKind::kMiniAlexNet, 1, 32, 4, 0xA11CE);
  const std::vector<Expected> workload =
      mixed_workload(model.get(), deepn_luma, deepn_chroma);

  for (int workers : {1, 2, 8}) {
    for (int max_batch : {1, 8}) {
      for (std::size_t cache : {std::size_t{0}, std::size_t{128}}) {
        ServiceConfig cfg;
        cfg.workers = workers;
        cfg.max_batch = max_batch;
        cfg.cache_capacity = cache;
        cfg.queue_capacity = 64;
        cfg.deepn_luma = deepn_luma;
        cfg.deepn_chroma = deepn_chroma;
        cfg.model = model.get();
        TranscodeService service(cfg);

        // Two passes over the workload: the second hits a warm cache when
        // caching is on, and must still match the uncached expectation.
        std::vector<std::future<Response>> futures;
        for (int pass = 0; pass < 2; ++pass)
          for (const Expected& e : workload) futures.push_back(service.submit(e.request));
        for (std::size_t f = 0; f < futures.size(); ++f) {
          const Response got = futures[f].get();
          expect_payload_equal(got, workload[f % workload.size()].want, f);
        }

        const ServiceStats st = service.stats();
        EXPECT_EQ(st.submitted, futures.size());
        EXPECT_EQ(st.completed, futures.size());
        EXPECT_EQ(st.errors, 0u);
        EXPECT_LE(st.queue_high_water, st.queue_capacity);
        if (cache > 0) {
          EXPECT_GT(st.cache_hits, 0u);
        }
      }
    }
  }
}

TEST(TranscodeService, CacheHitIsFlaggedAndIdentical) {
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.cache_capacity = 16;
  TranscodeService service(cfg);

  const Request req = encode_request(gray_corpus(1).samples[0].image, config_a());
  const Response first = service.submit(req).get();
  const Response second = service.submit(req).get();
  ASSERT_EQ(first.status, Status::kOk);
  ASSERT_EQ(second.status, Status::kOk);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(first.bytes, second.bytes);
  EXPECT_GE(service.stats().cache_hits, 1u);
}

TEST(TranscodeService, RejectPolicyReturnsTypedErrorAndBoundsQueue) {
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 4;
  cfg.admission = AdmissionPolicy::kReject;
  cfg.max_batch = 1;
  TranscodeService service(cfg);

  // Occupy the worker with a multi-millisecond encode, then burst-submit
  // more tiny requests than the queue can hold.
  jpeg::EncoderConfig big_cfg = config_a();
  big_cfg.quality = 77;  // distinct config: never batches with the burst
  std::vector<std::future<Response>> futures;
  futures.push_back(service.submit(encode_request(big_image(), big_cfg)));

  const image::Image tiny = gray_corpus(1).samples[0].image;
  const int burst = 60;
  for (int i = 0; i < burst; ++i)
    futures.push_back(service.submit(encode_request(tiny, config_a())));

  std::size_t ok = 0, rejected = 0;
  for (std::future<Response>& f : futures) {
    const Response r = f.get();
    if (r.status == Status::kOk) {
      ++ok;
    } else {
      ASSERT_EQ(r.status, Status::kRejected);
      EXPECT_FALSE(r.error.empty());
      EXPECT_TRUE(r.bytes.empty());
      ++rejected;
    }
  }
  EXPECT_EQ(ok + rejected, static_cast<std::size_t>(burst) + 1);
  EXPECT_GE(rejected, 1u);

  const ServiceStats st = service.stats();
  EXPECT_EQ(st.rejected, rejected);
  EXPECT_EQ(st.completed, ok);
  EXPECT_LE(st.queue_high_water, cfg.queue_capacity);
}

TEST(TranscodeService, BlockPolicyServesEverythingThroughTinyQueue) {
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 2;
  cfg.admission = AdmissionPolicy::kBlock;
  TranscodeService service(cfg);

  const image::Image img = gray_corpus(1).samples[0].image;
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 100; ++i)
    futures.push_back(service.submit(encode_request(img, config_a())));
  for (std::future<Response>& f : futures) EXPECT_EQ(f.get().status, Status::kOk);

  const ServiceStats st = service.stats();
  EXPECT_EQ(st.completed, 100u);
  EXPECT_EQ(st.rejected, 0u);
  EXPECT_LE(st.queue_high_water, 2u);
}

TEST(TranscodeService, GracefulShutdownDrainsAcceptedWork) {
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 64;
  cfg.max_batch = 4;
  TranscodeService service(cfg);

  std::vector<std::future<Response>> futures;
  futures.push_back(service.submit(encode_request(big_image(), config_a())));
  const image::Image tiny = gray_corpus(1).samples[0].image;
  for (int i = 0; i < 23; ++i)
    futures.push_back(service.submit(encode_request(tiny, config_b())));

  service.shutdown();  // must drain all 24 accepted requests first

  for (std::future<Response>& f : futures) {
    const Response r = f.get();
    EXPECT_EQ(r.status, Status::kOk) << r.error;
    EXPECT_FALSE(r.bytes.empty());
  }

  // Post-shutdown submissions get the typed refusal, immediately.
  const Response late = service.submit(encode_request(tiny, config_a())).get();
  EXPECT_EQ(late.status, Status::kShutdown);
  EXPECT_FALSE(late.error.empty());
  EXPECT_EQ(service.stats().refused_shutdown, 1u);
  EXPECT_EQ(service.stats().completed, futures.size());
}

TEST(TranscodeService, HandlerExceptionsBecomeTypedErrorResponses) {
  ServiceConfig cfg;
  cfg.workers = 2;
  TranscodeService service(cfg);

  Request malformed;
  malformed.kind = RequestKind::kDecode;
  malformed.bytes = {0x00, 0x01, 0x02, 0x03};
  const Response bad = service.submit(malformed).get();
  EXPECT_EQ(bad.status, Status::kError);
  EXPECT_FALSE(bad.error.empty());

  Request infer;  // no model configured
  infer.kind = RequestKind::kInfer;
  infer.bytes = jpeg::encode(gray_corpus(1).samples[0].image, config_a());
  const Response no_model = service.submit(infer).get();
  EXPECT_EQ(no_model.status, Status::kError);
  EXPECT_FALSE(no_model.error.empty());

  // The service survives handler failures.
  const Response ok =
      service.submit(encode_request(gray_corpus(1).samples[0].image, config_a())).get();
  EXPECT_EQ(ok.status, Status::kOk);

  const ServiceStats st = service.stats();
  EXPECT_EQ(st.errors, 2u);
  EXPECT_EQ(st.completed, 1u);
}

TEST(TranscodeService, MicroBatchingGroupsCompatibleRequests) {
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 8;
  cfg.queue_capacity = 32;
  TranscodeService service(cfg);

  // Hold the worker on a slow request, queue 8 identical-config encodes
  // behind it; when the worker frees they are all immediately available
  // and compatible, so they drain as one batch.
  jpeg::EncoderConfig big_cfg = config_a();
  big_cfg.quality = 77;
  std::vector<std::future<Response>> futures;
  futures.push_back(service.submit(encode_request(big_image(), big_cfg)));
  const image::Image tiny = gray_corpus(1).samples[0].image;
  for (int i = 0; i < 8; ++i)
    futures.push_back(service.submit(encode_request(tiny, config_a())));

  int max_reported = 0;
  for (std::future<Response>& f : futures) {
    const Response r = f.get();
    ASSERT_EQ(r.status, Status::kOk);
    max_reported = std::max(max_reported, r.batch_size);
  }
  EXPECT_GE(max_reported, 4);
  EXPECT_GE(service.stats().max_batch, 4u);
  EXPECT_GT(service.stats().batched_requests, 0u);
}

TEST(TranscodeService, WarmContextRebuildAccounting) {
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.cache_capacity = 0;  // every request really encodes
  TranscodeService service(cfg);

  const image::Image img = gray_corpus(1).samples[0].image;
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 50; ++i)
    futures.push_back(service.submit(encode_request(img, config_a())));
  for (std::future<Response>& f : futures) ASSERT_EQ(f.get().status, Status::kOk);

  // A same-config stream on one worker derives each cached table set at
  // most once — the warm-context property micro-batching protects.
  const ServiceStats st = service.stats();
  EXPECT_LE(st.ctx_quality_table_builds, 1u);
  EXPECT_LE(st.ctx_huffman_builds, 1u);
  EXPECT_LE(st.ctx_reciprocal_builds, 2u);
}

TEST(TranscodeService, DeepnTableCacheServesScaledTables) {
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.deepn_luma = jpeg::QuantTable::annex_k_luma();
  cfg.deepn_chroma = jpeg::QuantTable::annex_k_chroma();
  cfg.table_cache_capacity = 4;
  TranscodeService service(cfg);

  const image::Image img = gray_corpus(1).samples[0].image;
  Request req;
  req.kind = RequestKind::kDeepnEncode;
  req.image = img;
  req.quality = 35;

  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 6; ++i) futures.push_back(service.submit(req));
  jpeg::EncoderConfig expected_cfg;
  expected_cfg.use_custom_tables = true;
  expected_cfg.luma_table = cfg.deepn_luma.scaled(35);
  expected_cfg.chroma_table = cfg.deepn_chroma.scaled(35);
  expected_cfg.subsampling = jpeg::Subsampling::k444;
  const std::vector<std::uint8_t> expected = jpeg::encode(img, expected_cfg);
  for (std::future<Response>& f : futures) {
    const Response r = f.get();
    ASSERT_EQ(r.status, Status::kOk);
    EXPECT_EQ(r.bytes, expected);
  }
  const ServiceStats st = service.stats();
  EXPECT_GE(st.table_cache_hits + st.cache_hits, 1u);  // dedup via either cache
}

TEST(TranscodeService, StatsQuantilesAreCoherent) {
  ServiceConfig cfg;
  cfg.workers = 4;
  TranscodeService service(cfg);

  const data::Dataset ds = gray_corpus(4);
  std::vector<std::future<Response>> futures;
  for (const data::Sample& s : ds.samples)
    futures.push_back(service.submit(encode_request(s.image, config_a())));
  for (std::future<Response>& f : futures) ASSERT_EQ(f.get().status, Status::kOk);

  const ServiceStats st = service.stats();
  EXPECT_EQ(st.total.count, futures.size());
  EXPECT_EQ(st.queue_wait.count, futures.size());
  EXPECT_EQ(st.service_time.count, futures.size());
  EXPECT_LE(st.queue_wait.p50_us, st.queue_wait.p95_us);
  EXPECT_LE(st.queue_wait.p95_us, st.queue_wait.p99_us);
  EXPECT_LE(st.service_time.p50_us, st.service_time.p95_us);
  EXPECT_LE(st.service_time.p95_us, st.service_time.p99_us);
  EXPECT_GT(st.service_time.p50_us, 0.0);
  EXPECT_GE(st.batches, 1u);
  std::uint64_t kind_sum = 0;
  for (std::uint64_t c : st.per_kind) kind_sum += c;
  EXPECT_EQ(kind_sum, st.completed + st.errors);
}

TEST(TranscodeService, TranscodeBytesOverloadsAgree) {
  // The single-stream primitive the service's transcode handler runs on:
  // both overloads must equal the manual decode + encode composition.
  const std::vector<std::uint8_t> stored =
      jpeg::encode(gray_corpus(1).samples[0].image, config_a());
  const std::vector<std::uint8_t> manual =
      jpeg::encode(jpeg::decode(stored), config_b());
  EXPECT_EQ(core::transcode_bytes(stored, config_b()), manual);
  EXPECT_EQ(core::transcode_bytes(stored, config_b(),
                                  jpeg::pipeline::thread_codec_context()),
            manual);
}

TEST(TranscodeService, ExecuteMatchesSubmit) {
  ServiceConfig cfg;
  cfg.workers = 2;
  TranscodeService service(cfg);
  const Request req = encode_request(rgb_image(), config_b());
  const Response sync = service.execute(req);
  const Response async = service.submit(req).get();
  ASSERT_EQ(sync.status, Status::kOk);
  ASSERT_EQ(async.status, Status::kOk);
  EXPECT_EQ(sync.bytes, async.bytes);
}

TEST(TranscodeService, ShardingAndStealingAreByteInvariant) {
  // Digest-affinity sharding is pure scheduling: the full scheduling
  // matrix — sharding on/off x worker counts x stealing on/off — must
  // produce payloads bit-identical to the direct synchronous calls.
  const jpeg::QuantTable deepn_luma = jpeg::QuantTable::annex_k_luma();
  const jpeg::QuantTable deepn_chroma = jpeg::QuantTable::uniform(24);
  const std::vector<Expected> workload =
      mixed_workload(nullptr, deepn_luma, deepn_chroma);

  for (bool shard : {false, true}) {
    for (int workers : {1, 2, 8}) {
      for (bool steal : {false, true}) {
        ServiceConfig cfg;
        cfg.workers = workers;
        cfg.shard_by_digest = shard;
        cfg.steal = steal;
        cfg.queue_capacity = 64;
        cfg.cache_capacity = 32;
        cfg.deepn_luma = deepn_luma;
        cfg.deepn_chroma = deepn_chroma;
        TranscodeService service(cfg);

        std::vector<std::future<Response>> futures;
        for (const Expected& e : workload) futures.push_back(service.submit(e.request));
        for (std::size_t f = 0; f < futures.size(); ++f)
          expect_payload_equal(futures[f].get(), workload[f].want, f);

        const ServiceStats st = service.stats();
        EXPECT_EQ(st.shard_count, shard ? static_cast<std::uint64_t>(workers) : 1u);
        EXPECT_EQ(st.completed, workload.size());
        EXPECT_EQ(st.errors, 0u);
        if (!steal || !shard) {
          EXPECT_EQ(st.steals, 0u);
        }
      }
    }
  }
}

TEST(TranscodeService, IdleWorkerStealsFromForeignShard) {
  // One configuration = one shard = one home worker; the other worker can
  // only ever contribute by stealing. With a slow head request occupying
  // whichever worker grabs it, the remaining stream guarantees at least
  // one steal however the race resolves.
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.shard_by_digest = true;
  cfg.steal = true;
  cfg.max_batch = 1;
  cfg.cache_capacity = 0;
  cfg.queue_capacity = 64;
  TranscodeService service(cfg);

  std::vector<std::future<Response>> futures;
  futures.push_back(service.submit(encode_request(big_image(), config_a())));
  const image::Image tiny = gray_corpus(1).samples[0].image;
  for (int i = 0; i < 30; ++i)
    futures.push_back(service.submit(encode_request(tiny, config_a())));
  for (std::future<Response>& f : futures) ASSERT_EQ(f.get().status, Status::kOk);

  EXPECT_GE(service.stats().steals, 1u);
}

jpeg::EncoderConfig tenant_base(int step) {
  jpeg::EncoderConfig cfg;
  cfg.use_custom_tables = true;
  cfg.luma_table = jpeg::QuantTable::uniform(static_cast<std::uint16_t>(step));
  cfg.chroma_table = jpeg::QuantTable::uniform(static_cast<std::uint16_t>(step + 4));
  cfg.subsampling = jpeg::Subsampling::k444;
  return cfg;
}

Request tenant_request(const image::Image& img, std::string tenant, int quality) {
  Request req;
  req.kind = RequestKind::kDeepnEncode;
  req.image = img;
  req.quality = quality;
  req.tenant = std::move(tenant);
  return req;
}

std::vector<std::uint8_t> tenant_expected(const image::Image& img,
                                          const jpeg::EncoderConfig& base, int quality) {
  jpeg::EncoderConfig cfg = base;
  cfg.luma_table = base.luma_table.scaled(quality);
  cfg.chroma_table = base.chroma_table.scaled(quality);
  return jpeg::encode(img, cfg);
}

TEST(TranscodeService, TenantRequestsEncodeUnderRegisteredTables) {
  auto registry = std::make_shared<TableRegistry>();
  registry->put("alpha", tenant_base(20));
  registry->put("beta", tenant_base(36));

  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.cache_capacity = 32;
  cfg.registry = registry;
  TranscodeService service(cfg);

  const image::Image img = gray_corpus(1).samples[0].image;
  const Response a = service.submit(tenant_request(img, "alpha", 40)).get();
  const Response b = service.submit(tenant_request(img, "beta", 40)).get();
  const Response base50 = service.submit(tenant_request(img, "alpha", 50)).get();
  ASSERT_EQ(a.status, Status::kOk) << a.error;
  ASSERT_EQ(b.status, Status::kOk) << b.error;
  ASSERT_EQ(base50.status, Status::kOk) << base50.error;
  EXPECT_EQ(a.bytes, tenant_expected(img, tenant_base(20), 40));
  EXPECT_EQ(b.bytes, tenant_expected(img, tenant_base(36), 40));
  // Quality 50 = the registered tables verbatim.
  EXPECT_EQ(base50.bytes, jpeg::encode(img, tenant_base(20)));
  EXPECT_NE(a.bytes, b.bytes);

  // execute() resolves the same registry — the determinism reference
  // covers tenants too.
  EXPECT_EQ(service.execute(tenant_request(img, "alpha", 40)).bytes, a.bytes);
}

TEST(TranscodeService, UnknownTenantIsATypedSubmissionError) {
  ServiceConfig cfg;
  cfg.workers = 1;
  TranscodeService service(cfg);

  const image::Image img = gray_corpus(1).samples[0].image;
  const Response r = service.submit(tenant_request(img, "nobody", 50)).get();
  EXPECT_EQ(r.status, Status::kError);
  EXPECT_NE(r.error.find("unknown tenant"), std::string::npos) << r.error;
  EXPECT_EQ(service.execute(tenant_request(img, "nobody", 50)).status, Status::kError);

  // The refusal keeps the stats invariants: counted as an error, attributed
  // to its kind.
  ASSERT_EQ(service.submit(encode_request(img, config_a())).get().status, Status::kOk);
  const ServiceStats st = service.stats();
  EXPECT_EQ(st.errors, 1u);
  EXPECT_EQ(st.completed, 1u);
  std::uint64_t kind_sum = 0;
  for (std::uint64_t c : st.per_kind) kind_sum += c;
  EXPECT_EQ(kind_sum, st.completed + st.errors);
}

TEST(TranscodeService, TenantSnapshotIsPinnedAtSubmission) {
  auto registry = std::make_shared<TableRegistry>();
  const std::uint64_t v1 = registry->put("pinned", tenant_base(24));

  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.cache_capacity = 0;
  cfg.registry = registry;
  TranscodeService service(cfg);

  const image::Image img = gray_corpus(1).samples[0].image;
  std::future<Response> pinned = service.submit(tenant_request(img, "pinned", 60));
  // Re-register AFTER submission: the in-flight request must keep v1's
  // tables whatever the scheduling; only later submissions see v2.
  const std::uint64_t v2 = registry->put("pinned", tenant_base(48));
  EXPECT_GT(v2, v1);
  EXPECT_EQ(pinned.get().bytes, tenant_expected(img, tenant_base(24), 60));
  EXPECT_EQ(service.submit(tenant_request(img, "pinned", 60)).get().bytes,
            tenant_expected(img, tenant_base(48), 60));

  // remove() keeps pinned snapshots working the same way.
  std::future<Response> last = service.submit(tenant_request(img, "pinned", 70));
  ASSERT_TRUE(registry->remove("pinned"));
  EXPECT_FALSE(registry->remove("pinned"));
  EXPECT_EQ(last.get().status, Status::kOk);
  EXPECT_EQ(service.submit(tenant_request(img, "pinned", 70)).get().status,
            Status::kError);
}

TEST(TranscodeService, PerTenantStatsAreAttributed) {
  auto registry = std::make_shared<TableRegistry>();
  registry->put("alpha", tenant_base(20));
  registry->put("beta", tenant_base(36));

  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.cache_capacity = 32;
  cfg.table_cache_capacity = 8;
  cfg.registry = registry;
  TranscodeService service(cfg);

  const image::Image img = gray_corpus(1).samples[0].image;
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 6; ++i)
    futures.push_back(service.submit(tenant_request(img, "alpha", 40)));
  for (int i = 0; i < 3; ++i)
    futures.push_back(service.submit(tenant_request(img, "beta", 40)));
  // A tenantless deepn encode must NOT appear in the per-tenant table.
  Request plain;
  plain.kind = RequestKind::kDeepnEncode;
  plain.image = img;
  plain.quality = 40;
  futures.push_back(service.submit(plain));
  for (std::future<Response>& f : futures) ASSERT_EQ(f.get().status, Status::kOk);

  const ServiceStats st = service.stats();
  ASSERT_EQ(st.tenants.size(), 2u);
  EXPECT_EQ(st.tenants[0].name, "alpha");  // sorted by name
  EXPECT_EQ(st.tenants[1].name, "beta");
  EXPECT_EQ(st.tenants[0].requests, 6u);
  EXPECT_EQ(st.tenants[1].requests, 3u);
  EXPECT_EQ(st.tenants[0].completed, 6u);
  EXPECT_EQ(st.tenants[1].completed, 3u);
  EXPECT_EQ(st.tenants[0].errors, 0u);
  // 6 identical cacheable requests: at least one hit somewhere (result
  // cache after the first completes, or the table LRU on a cache miss).
  EXPECT_GE(st.tenants[0].cache_hits + st.tenants[0].table_cache_hits, 1u);
  EXPECT_EQ(st.tenants[0].service_time.count, 6u);
  EXPECT_EQ(st.tenants[1].service_time.count, 3u);
  EXPECT_GT(st.cache_bytes, 0u);
}

}  // namespace
}  // namespace dnj::serve
