#include <gtest/gtest.h>

#include <cmath>

#include "core/band_segmentation.hpp"
#include "core/baselines.hpp"
#include "core/deepnjpeg.hpp"
#include "core/frequency_analysis.hpp"
#include "core/frequency_edit.hpp"
#include "core/plm.hpp"
#include "data/synthetic.hpp"
#include "image/metrics.hpp"
#include "jpeg/zigzag.hpp"

namespace dnj::core {
namespace {

data::Dataset tiny_dataset() {
  data::GeneratorConfig cfg;
  cfg.width = 32;
  cfg.height = 32;
  cfg.num_classes = 8;
  cfg.seed = 2024;
  return data::SyntheticDatasetGenerator(cfg).generate(6);
}

// --- frequency analysis (Algorithm 1) ---

TEST(FrequencyAnalysis, ConstantImageHasZeroAcSigma) {
  image::Image img(32, 32, 1);
  for (std::uint8_t& v : img.data()) v = 200;
  const FrequencyProfile p = analyze_image(img);
  for (int k = 1; k < 64; ++k) EXPECT_NEAR(p.sigma[static_cast<std::size_t>(k)], 0.0, 1e-3);
  EXPECT_EQ(p.blocks_analyzed, 16u);
}

TEST(FrequencyAnalysis, HorizontalEdgesExciteVerticalBands) {
  // A purely vertical stripe pattern whose sign flips from block to block:
  // the (1,0) band coefficient alternates +-, so its sigma across blocks is
  // large, while horizontal bands like (0,1) never carry energy. (Sigma
  // measures variation across blocks — a pattern identical in every block
  // would give sigma = 0 even at high amplitude.)
  image::Image img(32, 32, 1);
  for (int y = 0; y < 32; ++y)
    for (int x = 0; x < 32; ++x) {
      const int block_parity = ((x / 8) + (y / 8)) % 2;
      const int stripe = (y % 8) < 4 ? 0 : 1;
      img.at(x, y) = (stripe ^ block_parity) ? 200 : 50;
    }
  const FrequencyProfile p = analyze_image(img);
  EXPECT_GT(p.sigma[1 * 8 + 0], 50.0);  // (1,0): 8-pixel vertical period
  EXPECT_NEAR(p.sigma[0 * 8 + 1], 0.0, 1e-2);
}

TEST(FrequencyAnalysis, RankingIsConsistent) {
  const FrequencyProfile p = analyze(tiny_dataset());
  // ascending_order sorts sigma ascending.
  for (int r = 1; r < 64; ++r)
    EXPECT_LE(p.sigma_at_rank(r - 1), p.sigma_at_rank(r));
  // rank_of inverts ascending_order.
  for (int r = 0; r < 64; ++r)
    EXPECT_EQ(p.rank_of[static_cast<std::size_t>(p.ascending_order[static_cast<std::size_t>(r)])], r);
}

TEST(FrequencyAnalysis, DcHasLargestSigmaOnNaturalImages) {
  const FrequencyProfile p = analyze(tiny_dataset());
  EXPECT_EQ(p.ascending_order[63], 0);  // DC band carries the most energy
}

TEST(FrequencyAnalysis, SampleIntervalReducesImages) {
  const data::Dataset ds = tiny_dataset();
  AnalysisConfig cfg;
  cfg.sample_interval = 3;
  const FrequencyProfile p = analyze(ds, cfg);
  EXPECT_EQ(p.images_analyzed, ds.size() / 3);
  // Statistics from a stratified subsample stay close to the full analysis.
  const FrequencyProfile full = analyze(ds);
  for (int k = 0; k < 64; ++k)
    EXPECT_NEAR(p.sigma[static_cast<std::size_t>(k)], full.sigma[static_cast<std::size_t>(k)],
                0.6 * full.sigma[static_cast<std::size_t>(k)] + 5.0);
}

TEST(FrequencyAnalysis, Errors) {
  EXPECT_THROW(analyze(data::Dataset{}), std::invalid_argument);
  AnalysisConfig bad;
  bad.sample_interval = 0;
  EXPECT_THROW(analyze(tiny_dataset(), bad), std::invalid_argument);
}

// --- band segmentation ---

TEST(BandSegmentation, MagnitudeBasedCounts) {
  const FrequencyProfile p = analyze(tiny_dataset());
  const BandSplit split = magnitude_based(p);
  EXPECT_EQ(split.count(Band::kLF), 6);
  EXPECT_EQ(split.count(Band::kMF), 22);
  EXPECT_EQ(split.count(Band::kHF), 36);
}

TEST(BandSegmentation, MagnitudeBasedRespectsSigmaOrder) {
  const FrequencyProfile p = analyze(tiny_dataset());
  const BandSplit split = magnitude_based(p);
  double min_lf = 1e18, max_mf = -1.0, min_mf = 1e18, max_hf = -1.0;
  for (int k = 0; k < 64; ++k) {
    const double s = p.sigma[static_cast<std::size_t>(k)];
    switch (split.band_of[static_cast<std::size_t>(k)]) {
      case Band::kLF: min_lf = std::min(min_lf, s); break;
      case Band::kMF: min_mf = std::min(min_mf, s); max_mf = std::max(max_mf, s); break;
      case Band::kHF: max_hf = std::max(max_hf, s); break;
    }
  }
  EXPECT_GE(min_lf, max_mf);
  EXPECT_GE(min_mf, max_hf);
}

TEST(BandSegmentation, PositionBasedFollowsZigzag) {
  const BandSplit split = position_based();
  EXPECT_EQ(split.band_of[0], Band::kLF);  // DC
  // Zig-zag position 5 is LF, 6 is MF, 27 is MF, 28 is HF.
  EXPECT_EQ(split.band_of[static_cast<std::size_t>(jpeg::kZigzag[5])], Band::kLF);
  EXPECT_EQ(split.band_of[static_cast<std::size_t>(jpeg::kZigzag[6])], Band::kMF);
  EXPECT_EQ(split.band_of[static_cast<std::size_t>(jpeg::kZigzag[27])], Band::kMF);
  EXPECT_EQ(split.band_of[static_cast<std::size_t>(jpeg::kZigzag[28])], Band::kHF);
  EXPECT_EQ(split.band_of[63], Band::kHF);
}

TEST(BandSegmentation, CustomSizesAndErrors) {
  BandSizes sizes;
  sizes.lf = 10;
  sizes.mf = 30;
  const BandSplit split = position_based(sizes);
  EXPECT_EQ(split.count(Band::kLF), 10);
  EXPECT_EQ(split.count(Band::kHF), 24);
  BandSizes bad;
  bad.lf = 40;
  bad.mf = 40;
  EXPECT_THROW(position_based(bad), std::invalid_argument);
}

TEST(BandSegmentation, IndicesPartitionAllBands) {
  const BandSplit split = position_based();
  std::array<bool, 64> seen{};
  for (Band b : {Band::kLF, Band::kMF, Band::kHF})
    for (int k : split.indices(b)) {
      EXPECT_FALSE(seen[static_cast<std::size_t>(k)]);
      seen[static_cast<std::size_t>(k)] = true;
    }
  for (bool s : seen) EXPECT_TRUE(s);
}

// --- PLM (Eq. 3) ---

TEST(Plm, PaperParameterSegments) {
  const PlmParams p = PlmParams::paper_defaults();
  // HF segment: sigma = 10 -> 255 - 97.5 = 157.5.
  EXPECT_NEAR(plm_step(10.0, p), 157.5, 1e-9);
  // Boundary sigma = T1 = 20 -> 255 - 195 = 60.
  EXPECT_NEAR(plm_step(20.0, p), 60.0, 1e-9);
  // MF segment: sigma = 40 -> 80 - 40 = 40.
  EXPECT_NEAR(plm_step(40.0, p), 40.0, 1e-9);
  // LF segment: sigma = 70 -> 240 - 210 = 30.
  EXPECT_NEAR(plm_step(70.0, p), 30.0, 1e-9);
  // Deep LF clamps at Qmin: sigma = 100 -> 240 - 300 < 5.
  EXPECT_NEAR(plm_step(100.0, p), 5.0, 1e-9);
  // Tiny sigma clamps at Qmax.
  EXPECT_NEAR(plm_step(0.0, p), 255.0, 1e-9);
}

TEST(Plm, WithinSegmentLargerSigmaGetsSmallerStep) {
  const PlmParams p = PlmParams::paper_defaults();
  for (double lo = 0.0; lo < 19.0; lo += 1.0)
    EXPECT_GE(plm_step(lo, p), plm_step(lo + 1.0, p));
  for (double lo = 21.0; lo < 59.0; lo += 1.0)
    EXPECT_GE(plm_step(lo, p), plm_step(lo + 1.0, p));
  for (double lo = 61.0; lo < 120.0; lo += 1.0)
    EXPECT_GE(plm_step(lo, p), plm_step(lo + 1.0, p));
}

TEST(Plm, RejectsBadParams) {
  PlmParams p = PlmParams::paper_defaults();
  p.t2 = 10.0;  // below t1
  EXPECT_THROW(plm_step(5.0, p), std::invalid_argument);
  p = PlmParams::paper_defaults();
  p.qmin = 0.0;
  EXPECT_THROW(plm_step(5.0, p), std::invalid_argument);
}

TEST(Plm, TableRespectsBounds) {
  const FrequencyProfile profile = analyze(tiny_dataset());
  const PlmParams p = PlmParams::with_dataset_thresholds(PlmParams::paper_defaults(), profile);
  const jpeg::QuantTable table = plm_quant_table(profile, p);
  for (int k = 0; k < 64; ++k) {
    EXPECT_GE(table.step(k), static_cast<std::uint16_t>(p.qmin));
    EXPECT_LE(table.step(k), static_cast<std::uint16_t>(p.qmax));
  }
}

TEST(Plm, DatasetThresholdsMatchRankBoundaries) {
  const FrequencyProfile profile = analyze(tiny_dataset());
  const PlmParams p = PlmParams::with_dataset_thresholds(PlmParams::paper_defaults(), profile);
  EXPECT_DOUBLE_EQ(p.t1, profile.sigma_at_rank(35));
  EXPECT_DOUBLE_EQ(p.t2, profile.sigma_at_rank(57));
  EXPECT_LE(p.t1, p.t2);
}

TEST(Plm, HighSigmaBandsGetLowSteps) {
  // The central property: the most important bands (largest sigma) must end
  // up with smaller quantization steps than the least important ones.
  const FrequencyProfile profile = analyze(tiny_dataset());
  const PlmParams p = PlmParams::with_dataset_thresholds(PlmParams::paper_defaults(), profile);
  const jpeg::QuantTable table = plm_quant_table(profile, p);
  const int top_band = profile.ascending_order[63];
  const int bottom_band = profile.ascending_order[0];
  EXPECT_LT(table.step(top_band), table.step(bottom_band));
}

// --- baselines ---

TEST(Baselines, RmHfZeroesTopZigzagPositions) {
  const jpeg::QuantTable base = jpeg::QuantTable::annex_k_luma();
  const jpeg::QuantTable rm = rm_hf_table(base, 3);
  for (int pos = 61; pos < 64; ++pos)
    EXPECT_EQ(rm.step(jpeg::kZigzag[static_cast<std::size_t>(pos)]), kRemovedStep);
  for (int pos = 0; pos < 61; ++pos)
    EXPECT_EQ(rm.step(jpeg::kZigzag[static_cast<std::size_t>(pos)]),
              base.step(jpeg::kZigzag[static_cast<std::size_t>(pos)]));
  EXPECT_THROW(rm_hf_table(base, 64), std::invalid_argument);
  EXPECT_THROW(rm_hf_table(base, -1), std::invalid_argument);
}

TEST(Baselines, RmHfRemovesEvenStrongCoefficients) {
  // Regression: a step of 255 would *amplify* a strong corner coefficient
  // (round(160/255) = 1 -> 255) instead of removing it. The removed step
  // must zero the largest coefficient an 8-bit block can produce (8 * 255).
  image::BlockF coeffs{};
  coeffs[63] = 8.0f * 255.0f;
  const jpeg::QuantTable rm = rm_hf_table(jpeg::QuantTable::annex_k_luma().scaled(100), 1);
  const jpeg::QuantizedBlock q = jpeg::quantize(coeffs, rm);
  EXPECT_EQ(q[63], 0);
}

TEST(Baselines, SameQIsUniform) {
  const jpeg::QuantTable t = same_q_table(8);
  for (int k = 0; k < 64; ++k) EXPECT_EQ(t.step(k), 8);
  EXPECT_THROW(same_q_table(0), std::invalid_argument);
  EXPECT_THROW(same_q_table(256), std::invalid_argument);
}

// --- frequency edits (Fig. 3 / Fig. 5 machinery) ---

TEST(FrequencyEdit, RemoveZeroComponentsIsNearIdentity) {
  const data::Dataset ds = tiny_dataset();
  const image::Image& img = ds.samples[0].image;
  const image::Image out = remove_high_frequency(img, 0);
  EXPECT_LE(image::max_abs_diff(img, out), 2);
}

TEST(FrequencyEdit, RemovalReducesHighFrequencySigma) {
  data::GeneratorConfig cfg;
  cfg.seed = 31;
  const data::SyntheticDatasetGenerator gen(cfg);
  const image::Image img = gen.render(data::ClassKind::kCheckerboard, 0);
  const image::Image stripped = remove_high_frequency(img, 20);
  const FrequencyProfile before = analyze_image(img);
  const FrequencyProfile after = analyze_image(stripped);
  double hf_before = 0.0, hf_after = 0.0;
  for (int pos = 44; pos < 64; ++pos) {
    const int k = jpeg::kZigzag[static_cast<std::size_t>(pos)];
    hf_before += before.sigma[static_cast<std::size_t>(k)];
    hf_after += after.sigma[static_cast<std::size_t>(k)];
  }
  EXPECT_LT(hf_after, 0.3 * hf_before + 1e-6);
}

TEST(FrequencyEdit, QuantizeBandOnlyLeavesOtherBandsIntact) {
  data::GeneratorConfig cfg;
  cfg.seed = 77;
  const data::SyntheticDatasetGenerator gen(cfg);
  const image::Image img = gen.render(data::ClassKind::kBandNoise, 0);
  const BandSplit split = position_based();
  // Q = 1 on any band must be a near-identity everywhere.
  const image::Image same = quantize_band_only(img, split, Band::kMF, 1);
  EXPECT_LE(image::max_abs_diff(img, same), 2);
  // Large Q on HF must change the image; LF untouched implies the DC of each
  // block barely moves.
  const image::Image crushed = quantize_band_only(img, split, Band::kHF, 80);
  EXPECT_GT(image::mse(img, crushed), 0.5);
  const FrequencyProfile a = analyze_image(img);
  const FrequencyProfile b = analyze_image(crushed);
  EXPECT_NEAR(b.sigma[0], a.sigma[0], 0.05 * a.sigma[0] + 1.0);
}

TEST(FrequencyEdit, Errors) {
  image::Image img(16, 16, 1);
  EXPECT_THROW(remove_high_frequency(img, 65), std::invalid_argument);
  EXPECT_THROW(quantize_band_only(img, position_based(), Band::kLF, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace dnj::core
