// Framing + marshalling tests for the network protocol — pure in-memory,
// no sockets: everything here feeds bytes to FrameParser / the protocol
// marshalling functions directly, so the whole rejection taxonomy
// (truncation, garbage, version skew, CRC corruption, digest mismatch,
// out-of-range arguments) is pinned without a server.
//
// The socket-level behaviors (partial reads, overload, drain) live in
// tests/test_net.cpp.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "net/frame.hpp"
#include "net/protocol.hpp"
#include "serve/request.hpp"

namespace dnj::net {
namespace {

image::Image tiny_image(int w = 8, int h = 6, int ch = 1) {
  image::Image img(w, h, ch);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x)
      for (int c = 0; c < ch; ++c)
        img.at(x, y, c) = static_cast<std::uint8_t>((x * 7 + y * 13 + c * 29) & 0xFF);
  return img;
}

Frame roundtrip_one(const std::vector<std::uint8_t>& bytes) {
  FrameParser parser;
  parser.feed(bytes.data(), bytes.size());
  Frame out;
  EXPECT_EQ(parser.next(&out), ParseResult::kFrame);
  EXPECT_EQ(parser.buffered(), 0u);
  return out;
}

TEST(NetFraming, Crc32MatchesTheStandardCheckValue) {
  // The ISO-HDLC check value — any stock zlib/PNG/Ethernet CRC-32 agrees.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0x00000000u);
}

TEST(NetFraming, HeaderRoundTripPreservesEveryField) {
  Frame f;
  f.type = FrameType::kRequest;
  f.op = Op::kTranscode;
  f.status = 0;
  f.request_id = 0xDEADBEEF;
  f.config_digest = 0x0123456789ABCDEFull;
  f.payload = {1, 2, 3, 4, 5};

  const std::vector<std::uint8_t> bytes = serialize_frame(f);
  ASSERT_EQ(bytes.size(), kHeaderSize + 5);
  EXPECT_EQ(read_u32(bytes.data()), kMagic);

  const Frame back = roundtrip_one(bytes);
  EXPECT_EQ(back.version, kProtocolVersion);
  EXPECT_EQ(back.type, FrameType::kRequest);
  EXPECT_EQ(back.op, Op::kTranscode);
  EXPECT_EQ(back.request_id, 0xDEADBEEFu);
  EXPECT_EQ(back.config_digest, 0x0123456789ABCDEFull);
  EXPECT_EQ(back.payload, f.payload);
}

TEST(NetFraming, ZeroLengthPayloadIsAValidFrame) {
  const std::vector<std::uint8_t> bytes = serialize_frame(make_ping(7));
  ASSERT_EQ(bytes.size(), kHeaderSize);
  const Frame back = roundtrip_one(bytes);
  EXPECT_EQ(back.op, Op::kPing);
  EXPECT_EQ(back.request_id, 7u);
  EXPECT_TRUE(back.payload.empty());
}

TEST(NetFraming, ByteAtATimeFeedReassemblesFrames) {
  Frame f;
  f.type = FrameType::kResponse;
  f.op = Op::kEncode;
  f.payload.assign(300, 0x5A);
  const std::vector<std::uint8_t> bytes = serialize_frame(f);

  FrameParser parser;
  Frame out;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    parser.feed(&bytes[i], 1);
    ASSERT_EQ(parser.next(&out), ParseResult::kNeedMore) << "at byte " << i;
  }
  parser.feed(&bytes.back(), 1);
  ASSERT_EQ(parser.next(&out), ParseResult::kFrame);
  EXPECT_EQ(out.payload, f.payload);
}

TEST(NetFraming, BackToBackFramesParseInOrder) {
  std::vector<std::uint8_t> stream;
  for (std::uint32_t id = 1; id <= 3; ++id) {
    const std::vector<std::uint8_t> one = serialize_frame(make_ping(id));
    stream.insert(stream.end(), one.begin(), one.end());
  }
  FrameParser parser;
  parser.feed(stream.data(), stream.size());
  Frame out;
  for (std::uint32_t id = 1; id <= 3; ++id) {
    ASSERT_EQ(parser.next(&out), ParseResult::kFrame);
    EXPECT_EQ(out.request_id, id);
  }
  EXPECT_EQ(parser.next(&out), ParseResult::kNeedMore);
}

TEST(NetFraming, TruncatedHeaderIsNeedMoreNotAnError) {
  const std::vector<std::uint8_t> bytes = serialize_frame(make_ping(1));
  FrameParser parser;
  parser.feed(bytes.data(), kHeaderSize - 1);
  Frame out;
  EXPECT_EQ(parser.next(&out), ParseResult::kNeedMore);
  EXPECT_FALSE(parser.broken());
}

TEST(NetFraming, GarbageStreamIsBadMagicAndSticky) {
  std::vector<std::uint8_t> garbage(64, 0xAB);
  FrameParser parser;
  parser.feed(garbage.data(), garbage.size());
  Frame out;
  EXPECT_EQ(parser.next(&out), ParseResult::kBadMagic);
  EXPECT_TRUE(parser.broken());
  // Even a valid frame fed afterwards cannot rescue the stream.
  const std::vector<std::uint8_t> good = serialize_frame(make_ping(1));
  parser.feed(good.data(), good.size());
  EXPECT_EQ(parser.next(&out), ParseResult::kBadMagic);
}

TEST(NetFraming, VersionSkewIsBadVersion) {
  std::vector<std::uint8_t> bytes = serialize_frame(make_ping(1));
  bytes[4] = kProtocolVersion + 1;  // version byte
  FrameParser parser;
  parser.feed(bytes.data(), bytes.size());
  Frame out;
  EXPECT_EQ(parser.next(&out), ParseResult::kBadVersion);
  EXPECT_TRUE(parser.broken());
}

TEST(NetFraming, CorruptPayloadIsBadCrc) {
  Frame f;
  f.type = FrameType::kRequest;
  f.op = Op::kDecode;
  f.payload = {10, 20, 30, 40};
  std::vector<std::uint8_t> bytes = serialize_frame(f);
  bytes[kHeaderSize + 2] ^= 0x01;  // flip one payload bit
  FrameParser parser;
  parser.feed(bytes.data(), bytes.size());
  Frame out;
  EXPECT_EQ(parser.next(&out), ParseResult::kBadCrc);
  EXPECT_TRUE(parser.broken());
}

TEST(NetFraming, BadTypeByteIsBadHeader) {
  std::vector<std::uint8_t> bytes = serialize_frame(make_ping(1));
  bytes[5] = 9;  // type byte: neither request nor response
  FrameParser parser;
  parser.feed(bytes.data(), bytes.size());
  Frame out;
  EXPECT_EQ(parser.next(&out), ParseResult::kBadHeader);
}

TEST(NetFraming, PayloadSizeLimitIsEnforcedExactly) {
  // A parser with a tiny configured ceiling pins the max-length behavior
  // without 64 MiB allocations: at the limit parses, one past it fails.
  Frame at_limit;
  at_limit.type = FrameType::kRequest;
  at_limit.op = Op::kDecode;
  at_limit.payload.assign(128, 0x11);

  FrameParser ok_parser(/*max_payload=*/128);
  const std::vector<std::uint8_t> ok_bytes = serialize_frame(at_limit);
  ok_parser.feed(ok_bytes.data(), ok_bytes.size());
  Frame out;
  EXPECT_EQ(ok_parser.next(&out), ParseResult::kFrame);
  EXPECT_EQ(out.payload.size(), 128u);

  at_limit.payload.push_back(0x22);  // 129 bytes
  FrameParser over_parser(/*max_payload=*/128);
  const std::vector<std::uint8_t> over_bytes = serialize_frame(at_limit);
  over_parser.feed(over_bytes.data(), over_bytes.size());
  EXPECT_EQ(over_parser.next(&out), ParseResult::kBadHeader);
  EXPECT_TRUE(over_parser.broken());
}

// ------------------------------------------------------------ marshalling

TEST(NetProtocol, EncodeRequestRoundTrips) {
  serve::Request req;
  req.kind = serve::RequestKind::kEncode;
  req.config.quality = 85;
  req.config.subsampling = jpeg::Subsampling::k444;
  req.config.optimize_huffman = true;
  req.config.restart_interval = 4;
  req.config.comment = "roundtrip";
  req.image = tiny_image(10, 8, 3);

  const Frame frame = make_request(42, req);
  EXPECT_EQ(frame.op, Op::kEncode);
  EXPECT_NE(frame.config_digest, 0u);

  serve::Request back;
  ASSERT_EQ(parse_request(frame, &back), WireStatus::kOk);
  EXPECT_EQ(back.kind, serve::RequestKind::kEncode);
  EXPECT_EQ(back.config.quality, 85);
  EXPECT_EQ(back.config.subsampling, jpeg::Subsampling::k444);
  EXPECT_TRUE(back.config.optimize_huffman);
  EXPECT_EQ(back.config.restart_interval, 4);
  EXPECT_EQ(back.config.comment, "roundtrip");
  EXPECT_EQ(back.image.width(), 10);
  EXPECT_EQ(back.image.height(), 8);
  EXPECT_EQ(back.image.channels(), 3);
  EXPECT_EQ(back.image.data(), req.image.data());
}

TEST(NetProtocol, CustomTablesSurviveTheWire) {
  std::array<std::uint16_t, 64> luma{}, chroma{};
  for (int i = 0; i < 64; ++i) {
    luma[static_cast<std::size_t>(i)] = static_cast<std::uint16_t>(i + 1);
    chroma[static_cast<std::size_t>(i)] = static_cast<std::uint16_t>(2 * i + 1);
  }
  serve::Request req;
  req.kind = serve::RequestKind::kEncode;
  req.config.use_custom_tables = true;
  req.config.luma_table = jpeg::QuantTable(luma);
  req.config.chroma_table = jpeg::QuantTable(chroma);
  req.image = tiny_image();

  serve::Request back;
  ASSERT_EQ(parse_request(make_request(1, req), &back), WireStatus::kOk);
  ASSERT_TRUE(back.config.use_custom_tables);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(back.config.luma_table.step(i), req.config.luma_table.step(i));
    EXPECT_EQ(back.config.chroma_table.step(i), req.config.chroma_table.step(i));
  }
}

TEST(NetProtocol, EveryOpRoundTrips) {
  serve::Request decode;
  decode.kind = serve::RequestKind::kDecode;
  decode.bytes = {0xFF, 0xD8, 0xFF, 0xD9};
  serve::Request back;
  ASSERT_EQ(parse_request(make_request(1, decode), &back), WireStatus::kOk);
  EXPECT_EQ(back.kind, serve::RequestKind::kDecode);
  EXPECT_EQ(back.bytes, decode.bytes);

  serve::Request transcode;
  transcode.kind = serve::RequestKind::kTranscode;
  transcode.config.quality = 60;
  transcode.bytes = {0xFF, 0xD8, 0x00, 0xFF, 0xD9};
  ASSERT_EQ(parse_request(make_request(2, transcode), &back), WireStatus::kOk);
  EXPECT_EQ(back.kind, serve::RequestKind::kTranscode);
  EXPECT_EQ(back.config.quality, 60);
  EXPECT_EQ(back.bytes, transcode.bytes);

  serve::Request deepn;
  deepn.kind = serve::RequestKind::kDeepnEncode;
  deepn.quality = 35;
  deepn.image = tiny_image();
  ASSERT_EQ(parse_request(make_request(3, deepn), &back), WireStatus::kOk);
  EXPECT_EQ(back.kind, serve::RequestKind::kDeepnEncode);
  EXPECT_EQ(back.quality, 35);
  EXPECT_EQ(back.image.data(), deepn.image.data());

  serve::Request infer;
  infer.kind = serve::RequestKind::kInfer;
  infer.bytes = {0xFF, 0xD8, 0x01, 0xFF, 0xD9};
  ASSERT_EQ(parse_request(make_request(4, infer), &back), WireStatus::kOk);
  EXPECT_EQ(back.kind, serve::RequestKind::kInfer);
  EXPECT_EQ(back.bytes, infer.bytes);
}

TEST(NetProtocol, HeaderDigestMismatchIsMalformed) {
  serve::Request req;
  req.kind = serve::RequestKind::kEncode;
  req.config.quality = 50;
  req.image = tiny_image();
  Frame frame = make_request(1, req);
  frame.config_digest ^= 1;  // header no longer matches the options bytes
  serve::Request back;
  EXPECT_EQ(parse_request(frame, &back), WireStatus::kMalformed);
}

TEST(NetProtocol, TruncatedPayloadIsMalformedNotInvalidArgument) {
  serve::Request req;
  req.kind = serve::RequestKind::kEncode;
  req.config.quality = 50;
  req.image = tiny_image();
  Frame frame = make_request(1, req);
  frame.payload.resize(frame.payload.size() - 3);  // chop pixel bytes
  serve::Request back;
  EXPECT_EQ(parse_request(frame, &back), WireStatus::kMalformed);
}

TEST(NetProtocol, SemanticRangeErrorsAreInvalidArgument) {
  // Structurally sound frames with out-of-range values: the connection can
  // survive these (unlike kMalformed), so the distinction matters.
  serve::Request bad_quality;
  bad_quality.kind = serve::RequestKind::kDeepnEncode;
  bad_quality.quality = 0;
  bad_quality.image = tiny_image();
  serve::Request back;
  EXPECT_EQ(parse_request(make_request(1, bad_quality), &back),
            WireStatus::kInvalidArgument);

  serve::Request empty_stream;
  empty_stream.kind = serve::RequestKind::kDecode;
  EXPECT_EQ(parse_request(make_request(2, empty_stream), &back),
            WireStatus::kInvalidArgument);

  // Channels = 2 is structurally readable but semantically unsupported.
  serve::Request enc;
  enc.kind = serve::RequestKind::kEncode;
  enc.config.quality = 50;
  enc.image = tiny_image();
  Frame frame = make_request(3, enc);
  // Patch the image block's channel count in place. The options block with
  // an empty comment and no custom tables is 16 bytes (quality u32, four
  // flag bytes, restart u32, comment_len u32); the image block follows as
  // width u32, height u32, channels u32 — channels starts at offset 24.
  const std::size_t channels_off = 16 + 8;
  ASSERT_EQ(frame.payload[channels_off], 1);  // layout sanity
  frame.payload[channels_off] = 2;
  EXPECT_EQ(parse_request(frame, &back), WireStatus::kInvalidArgument);
}

TEST(NetProtocol, UnknownOpIsMalformed) {
  Frame frame = make_ping(1);
  frame.op = static_cast<Op>(200);
  serve::Request back;
  EXPECT_EQ(parse_request(frame, &back), WireStatus::kMalformed);
}

TEST(NetProtocol, PingWithPayloadIsMalformed) {
  Frame frame = make_ping(1);
  frame.payload = {1};
  serve::Request back;
  EXPECT_EQ(parse_request(frame, &back), WireStatus::kMalformed);
}

TEST(NetProtocol, OkResponseCarriesObservabilityAndPayload) {
  serve::Response resp;
  resp.status = serve::Status::kOk;
  resp.bytes = {9, 8, 7, 6};
  resp.cache_hit = true;
  resp.batch_size = 5;
  resp.queue_us = 123.5;
  resp.service_us = 456.25;

  const Frame frame = make_response(77, Op::kEncode, 0xABCDu, resp);
  EXPECT_EQ(frame.config_digest, 0xABCDu);

  WireReply reply;
  ASSERT_TRUE(parse_response(frame, &reply));
  EXPECT_EQ(reply.status, WireStatus::kOk);
  EXPECT_EQ(reply.request_id, 77u);
  EXPECT_EQ(reply.bytes, resp.bytes);
  EXPECT_TRUE(reply.cache_hit);
  EXPECT_EQ(reply.batch_size, 5u);
  EXPECT_DOUBLE_EQ(reply.queue_us, 123.5);
  EXPECT_DOUBLE_EQ(reply.service_us, 456.25);
}

TEST(NetProtocol, DecodeAndInferResponsesRoundTrip) {
  serve::Response dec;
  dec.image = tiny_image(5, 4, 3);
  WireReply reply;
  ASSERT_TRUE(parse_response(make_response(1, Op::kDecode, 0, dec), &reply));
  EXPECT_EQ(reply.image.width(), 5);
  EXPECT_EQ(reply.image.height(), 4);
  EXPECT_EQ(reply.image.data(), dec.image.data());

  serve::Response inf;
  inf.probs = {0.1f, 0.7f, 0.2f};
  ASSERT_TRUE(parse_response(make_response(2, Op::kInfer, 0, inf), &reply));
  ASSERT_EQ(reply.probs.size(), 3u);
  EXPECT_FLOAT_EQ(reply.probs[1], 0.7f);
}

TEST(NetProtocol, ServeFailuresBecomeTypedErrorResponses) {
  serve::Response rejected;
  rejected.status = serve::Status::kRejected;
  rejected.error = "queue full";
  WireReply reply;
  ASSERT_TRUE(parse_response(make_response(1, Op::kEncode, 0, rejected), &reply));
  EXPECT_EQ(reply.status, WireStatus::kRejected);
  EXPECT_EQ(reply.error, "queue full");
  EXPECT_TRUE(reply.bytes.empty());

  // kError has no wire value of its own: it maps to kInternal.
  serve::Response failed;
  failed.status = serve::Status::kError;
  failed.error = "handler threw";
  ASSERT_TRUE(parse_response(make_response(2, Op::kDecode, 0, failed), &reply));
  EXPECT_EQ(reply.status, WireStatus::kInternal);
  EXPECT_EQ(reply.error, "handler threw");
}

TEST(NetProtocol, WireOnlyErrorsRoundTrip) {
  WireReply reply;
  ASSERT_TRUE(parse_response(
      make_error(3, Op::kPing, WireStatus::kVersionSkew, "speak version 1"), &reply));
  EXPECT_EQ(reply.status, WireStatus::kVersionSkew);
  EXPECT_EQ(reply.error, "speak version 1");
}

TEST(NetProtocol, WireDigestIsFnv1aOfTheOptionsSection) {
  // The digest rule is implementable by a foreign client from the spec
  // alone: FNV-1a 64 over the serialized options section.
  serve::Request req;
  req.kind = serve::RequestKind::kEncode;
  req.config.quality = 92;
  req.image = tiny_image();

  std::vector<std::uint8_t> options;
  append_options(req.config, options);
  std::uint64_t digest = 14695981039346656037ull;
  for (std::uint8_t b : options) {
    digest ^= b;
    digest *= 1099511628211ull;
  }
  EXPECT_EQ(wire_config_digest(req), digest);
  EXPECT_EQ(make_request(1, req).config_digest, digest);

  serve::Request no_options;
  no_options.kind = serve::RequestKind::kDecode;
  no_options.bytes = {1};
  EXPECT_EQ(wire_config_digest(no_options), 0u);
}

}  // namespace
}  // namespace dnj::net
