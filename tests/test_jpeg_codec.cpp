#include <gtest/gtest.h>

#include <random>

#include "image/metrics.hpp"
#include "jpeg/codec.hpp"

namespace dnj::jpeg {
namespace {

using image::Image;

Image gradient_image(int w, int h, int channels) {
  Image img(w, h, channels);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x)
      for (int c = 0; c < channels; ++c)
        img.at(x, y, c) = static_cast<std::uint8_t>(
            (x * 255 / std::max(w - 1, 1) + y * 128 / std::max(h - 1, 1) + 37 * c) % 256);
  return img;
}

Image noise_image(int w, int h, int channels, std::uint64_t seed) {
  Image img(w, h, channels);
  std::mt19937_64 rng(seed);
  for (std::uint8_t& v : img.data()) v = static_cast<std::uint8_t>(rng() & 0xFF);
  return img;
}

Image smooth_image(int w, int h, int channels) {
  Image img(w, h, channels);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) {
      const float v = 128.0f + 60.0f * std::sin(x * 0.21f) * std::cos(y * 0.17f);
      for (int c = 0; c < channels; ++c)
        img.at(x, y, c) = image::clamp_u8(v + 8.0f * c);
    }
  return img;
}

TEST(Codec, StreamStartsAndEndsWithMarkers) {
  const auto bytes = encode(gradient_image(16, 16, 1));
  ASSERT_GE(bytes.size(), 4u);
  EXPECT_EQ(bytes[0], 0xFF);
  EXPECT_EQ(bytes[1], 0xD8);  // SOI
  EXPECT_EQ(bytes[bytes.size() - 2], 0xFF);
  EXPECT_EQ(bytes.back(), 0xD9);  // EOI
}

TEST(Codec, GrayHighQualityRoundTripIsClose) {
  const Image img = smooth_image(32, 32, 1);
  EncoderConfig cfg;
  cfg.quality = 95;
  const RoundTrip rt = round_trip(img, cfg);
  EXPECT_GT(image::psnr(img, rt.decoded), 35.0);
  EXPECT_EQ(rt.decoded.width(), 32);
  EXPECT_EQ(rt.decoded.height(), 32);
  EXPECT_EQ(rt.decoded.channels(), 1);
}

TEST(Codec, IdentityTableIsNearLossless) {
  const Image img = smooth_image(24, 24, 1);
  EncoderConfig cfg;
  cfg.use_custom_tables = true;  // default-constructed tables are all ones
  const RoundTrip rt = round_trip(img, cfg);
  EXPECT_LE(image::max_abs_diff(img, rt.decoded), 2);
}

struct CodecCase {
  int w, h, channels;
  Subsampling sub;
  int quality;
};

class CodecRoundTrip : public ::testing::TestWithParam<CodecCase> {};

TEST_P(CodecRoundTrip, DecodesToSameGeometryAndReasonableFidelity) {
  const auto p = GetParam();
  const Image img = smooth_image(p.w, p.h, p.channels);
  EncoderConfig cfg;
  cfg.quality = p.quality;
  cfg.subsampling = p.sub;
  const RoundTrip rt = round_trip(img, cfg);
  EXPECT_EQ(rt.decoded.width(), p.w);
  EXPECT_EQ(rt.decoded.height(), p.h);
  EXPECT_EQ(rt.decoded.channels(), p.channels);
  EXPECT_GT(image::psnr(img, rt.decoded), p.quality >= 90 ? 30.0 : 22.0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CodecRoundTrip,
    ::testing::Values(CodecCase{8, 8, 1, Subsampling::k444, 90},
                      CodecCase{16, 16, 3, Subsampling::k444, 90},
                      CodecCase{16, 16, 3, Subsampling::k420, 90},
                      CodecCase{17, 13, 1, Subsampling::k444, 90},   // non-multiple of 8
                      CodecCase{33, 31, 3, Subsampling::k420, 90},   // odd with 420
                      CodecCase{9, 25, 3, Subsampling::k420, 75},
                      CodecCase{64, 48, 3, Subsampling::k444, 75},
                      CodecCase{40, 40, 1, Subsampling::k444, 50},
                      CodecCase{1, 1, 1, Subsampling::k444, 90},     // single pixel
                      CodecCase{128, 96, 3, Subsampling::k420, 85}));

TEST(Codec, LowerQualityProducesSmallerFiles) {
  const Image img = noise_image(64, 64, 1, 3);
  std::size_t prev = static_cast<std::size_t>(-1);
  for (int q : {95, 75, 50, 25, 10}) {
    EncoderConfig cfg;
    cfg.quality = q;
    const std::size_t size = encoded_size(img, cfg);
    EXPECT_LT(size, prev) << "quality " << q;
    prev = size;
  }
}

TEST(Codec, OptimizedHuffmanNotLargerAndPixelIdentical) {
  const Image img = smooth_image(48, 48, 3);
  EncoderConfig plain;
  plain.quality = 80;
  EncoderConfig opt = plain;
  opt.optimize_huffman = true;
  const auto bytes_plain = encode(img, plain);
  const auto bytes_opt = encode(img, opt);
  EXPECT_LE(bytes_opt.size(), bytes_plain.size());
  EXPECT_EQ(decode(bytes_plain), decode(bytes_opt));
}

TEST(Codec, RestartIntervalRoundTrips) {
  const Image img = smooth_image(64, 64, 1);
  EncoderConfig plain;
  plain.quality = 85;
  EncoderConfig rst = plain;
  rst.restart_interval = 3;
  const Image a = decode(encode(img, plain));
  const Image b = decode(encode(img, rst));
  EXPECT_EQ(a, b);  // restarts change framing only, not pixels
}

TEST(Codec, RestartIntervalColor420) {
  const Image img = smooth_image(48, 32, 3);
  EncoderConfig cfg;
  cfg.quality = 85;
  cfg.subsampling = Subsampling::k420;
  cfg.restart_interval = 2;
  const RoundTrip rt = round_trip(img, cfg);
  EXPECT_GT(image::psnr(img, rt.decoded), 25.0);
}

TEST(Codec, CommentMarkerRoundTrips) {
  EncoderConfig cfg;
  cfg.comment = "DeepN-JPEG reproduction";
  const auto bytes = encode(gradient_image(8, 8, 1), cfg);
  const JpegInfo info = parse_info(bytes);
  EXPECT_EQ(info.comment, "DeepN-JPEG reproduction");
}

TEST(Codec, ParseInfoReportsGeometryAndTables) {
  EncoderConfig cfg;
  cfg.quality = 50;  // Annex K tables exactly
  cfg.subsampling = Subsampling::k420;
  const auto bytes = encode(gradient_image(40, 24, 3), cfg);
  const JpegInfo info = parse_info(bytes);
  EXPECT_EQ(info.width, 40);
  EXPECT_EQ(info.height, 24);
  EXPECT_EQ(info.components, 3);
  EXPECT_EQ(info.max_h, 2);
  EXPECT_EQ(info.max_v, 2);
  ASSERT_TRUE(info.quant_tables[0].has_value());
  ASSERT_TRUE(info.quant_tables[1].has_value());
  EXPECT_EQ(*info.quant_tables[0], QuantTable::annex_k_luma());
  EXPECT_EQ(*info.quant_tables[1], QuantTable::annex_k_chroma());
}

TEST(Codec, CustomTableSurvivesDqtRoundTrip) {
  std::array<std::uint16_t, 64> steps{};
  for (int k = 0; k < 64; ++k) steps[static_cast<std::size_t>(k)] = static_cast<std::uint16_t>(k + 1);
  const QuantTable table(steps);
  EncoderConfig cfg;
  cfg.use_custom_tables = true;
  cfg.luma_table = table;
  const auto bytes = encode(gradient_image(16, 16, 1), cfg);
  const JpegInfo info = parse_info(bytes);
  ASSERT_TRUE(info.quant_tables[0].has_value());
  EXPECT_EQ(*info.quant_tables[0], table);
}

TEST(Codec, SixteenBitDqtRoundTrips) {
  std::array<std::uint16_t, 64> steps{};
  steps.fill(300);  // needs Pq = 1
  steps[0] = 1000;
  const QuantTable table(steps);
  EncoderConfig cfg;
  cfg.use_custom_tables = true;
  cfg.luma_table = table;
  const Image img = smooth_image(16, 16, 1);
  const auto bytes = encode(img, cfg);
  const JpegInfo info = parse_info(bytes);
  ASSERT_TRUE(info.quant_tables[0].has_value());
  EXPECT_EQ(*info.quant_tables[0], table);
  EXPECT_NO_THROW(decode(bytes));
}

TEST(Codec, RejectsEmptyAndTruncatedStreams) {
  EXPECT_THROW(decode(std::vector<std::uint8_t>{}), std::runtime_error);
  EXPECT_THROW(decode(std::vector<std::uint8_t>{0xFF}), std::runtime_error);
  auto bytes = encode(gradient_image(16, 16, 1));
  bytes.resize(bytes.size() / 3);
  EXPECT_THROW(decode(bytes), std::runtime_error);
}

TEST(Codec, RejectsGarbageHeader) {
  std::vector<std::uint8_t> junk(100, 0x42);
  EXPECT_THROW(decode(junk), std::runtime_error);
}

TEST(Codec, RejectsOversizedImages) {
  EncoderConfig bad;
  bad.restart_interval = -1;
  EXPECT_THROW(encode(Image(1, 1, 1), bad), std::invalid_argument);
}

TEST(Codec, EncodedSizeMatchesEncode) {
  const Image img = smooth_image(32, 32, 3);
  EncoderConfig cfg;
  cfg.quality = 70;
  EXPECT_EQ(encoded_size(img, cfg), encode(img, cfg).size());
}

TEST(Codec, BitsPerPixel) {
  EXPECT_DOUBLE_EQ(bits_per_pixel(100, 10, 10), 8.0);
}

TEST(Codec, Sub420SmallerThan444OnColorImage) {
  const Image img = smooth_image(64, 64, 3);
  EncoderConfig c444;
  c444.quality = 80;
  c444.subsampling = Subsampling::k444;
  EncoderConfig c420 = c444;
  c420.subsampling = Subsampling::k420;
  EXPECT_LT(encoded_size(img, c420), encoded_size(img, c444));
}

TEST(Codec, DecodeIsDeterministic) {
  const Image img = noise_image(24, 24, 3, 77);
  EncoderConfig cfg;
  cfg.quality = 60;
  const auto bytes = encode(img, cfg);
  EXPECT_EQ(decode(bytes), decode(bytes));
}

}  // namespace
}  // namespace dnj::jpeg
