#include <gtest/gtest.h>

#include <random>

#include "jpeg/bitio.hpp"
#include "jpeg/markers.hpp"

namespace dnj::jpeg {
namespace {

TEST(BitWriter, MsbFirstOrder) {
  std::vector<std::uint8_t> out;
  BitWriter bw(out);
  bw.put_bits(0b101, 3);
  bw.put_bits(0b00110, 5);
  bw.flush();  // bits drain in batches; flush before inspecting
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 0b10100110);
}

TEST(BitWriter, FlushPadsWithOnes) {
  std::vector<std::uint8_t> out;
  BitWriter bw(out);
  bw.put_bits(0b0, 1);
  bw.flush();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 0b01111111);
}

TEST(BitWriter, StuffsFFBytes) {
  std::vector<std::uint8_t> out;
  BitWriter bw(out);
  bw.put_bits(0xFF, 8);
  bw.flush();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 0xFF);
  EXPECT_EQ(out[1], 0x00);
}

TEST(BitWriter, BatchedDrainStuffsEveryFFInWord) {
  // Four 0xFF data bytes written as 32 accumulated bits must each get a
  // stuffing 0x00 when the batch drains.
  std::vector<std::uint8_t> out;
  BitWriter bw(out);
  bw.put_bits(0xFFFF, 16);
  bw.put_bits(0xFFFF, 16);
  bw.flush();
  ASSERT_EQ(out.size(), 8u);
  for (std::size_t i = 0; i < 8; i += 2) {
    EXPECT_EQ(out[i], 0xFF);
    EXPECT_EQ(out[i + 1], 0x00);
  }
}

TEST(BitWriter, MarkerIsNotStuffed) {
  std::vector<std::uint8_t> out;
  BitWriter bw(out);
  bw.put_bits(0x5, 3);
  bw.put_marker(kEOI);
  ASSERT_EQ(out.size(), 3u);  // padded byte + FF D9
  EXPECT_EQ(out[1], 0xFF);
  EXPECT_EQ(out[2], kEOI);
}

TEST(BitWriter, RejectsBadCount) {
  std::vector<std::uint8_t> out;
  BitWriter bw(out);
  EXPECT_THROW(bw.put_bits(0, 33), std::invalid_argument);
  EXPECT_THROW(bw.put_bits(0, -1), std::invalid_argument);
}

TEST(BitWriter, FullWidthWrite) {
  // 32-bit writes carry a fused Huffman code + magnitude field.
  std::vector<std::uint8_t> out;
  BitWriter bw(out);
  bw.put_bits(0xDEADBEEFu, 32);
  bw.flush();
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], 0xDE);
  EXPECT_EQ(out[1], 0xAD);
  EXPECT_EQ(out[2], 0xBE);
  EXPECT_EQ(out[3], 0xEF);
}

TEST(BitReader, ReadsBackWrittenBits) {
  std::vector<std::uint8_t> out;
  BitWriter bw(out);
  bw.put_bits(0b1101, 4);
  bw.put_bits(0xABC, 12);
  bw.put_bits(0x3FFFF, 18);  // includes FF bytes to exercise stuffing
  bw.flush();
  BitReader br(out.data(), out.size());
  EXPECT_EQ(br.get_bits(4), 0b1101);
  EXPECT_EQ(br.get_bits(12), 0xABC);
  EXPECT_EQ(br.get_bits(18), 0x3FFFF);
}

class BitIoRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BitIoRoundTrip, RandomChunks) {
  std::mt19937_64 rng(GetParam());
  std::vector<std::pair<std::uint32_t, int>> chunks;
  std::vector<std::uint8_t> out;
  BitWriter bw(out);
  for (int i = 0; i < 300; ++i) {
    const int count = static_cast<int>(rng() % 24) + 1;
    const std::uint32_t bits = static_cast<std::uint32_t>(rng()) & ((1u << count) - 1u);
    chunks.emplace_back(bits, count);
    bw.put_bits(bits, count);
  }
  bw.flush();
  BitReader br(out.data(), out.size());
  for (const auto& [bits, count] : chunks)
    ASSERT_EQ(static_cast<std::uint32_t>(br.get_bits(count)), bits);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitIoRoundTrip, ::testing::Range<std::uint64_t>(1, 9));

TEST(BitReader, StopsAtMarker) {
  const std::vector<std::uint8_t> data = {0xAA, 0xFF, kEOI};
  BitReader br(data.data(), data.size());
  EXPECT_EQ(br.get_bits(8), 0xAA);
  EXPECT_EQ(br.get_bits(8), -1);  // marker, not data
  EXPECT_TRUE(br.at_marker());
  EXPECT_EQ(br.peek_marker(), kEOI);
  EXPECT_EQ(br.take_marker(), kEOI);
}

TEST(BitReader, UnstuffsData) {
  const std::vector<std::uint8_t> data = {0xFF, 0x00, 0x12};
  BitReader br(data.data(), data.size());
  EXPECT_EQ(br.get_bits(8), 0xFF);
  EXPECT_EQ(br.get_bits(8), 0x12);
}

TEST(BitReader, SkipsFillBytesBeforeMarker) {
  const std::vector<std::uint8_t> data = {0xFF, 0xFF, 0xFF, kEOI};
  BitReader br(data.data(), data.size());
  EXPECT_EQ(br.peek_marker(), kEOI);
  EXPECT_EQ(br.take_marker(), kEOI);
}

TEST(BitReader, EndOfDataReturnsMinusOne) {
  const std::vector<std::uint8_t> data = {0x80};
  BitReader br(data.data(), data.size());
  EXPECT_EQ(br.get_bit(), 1);
  EXPECT_EQ(br.get_bits(8), -1);
}

TEST(Markers, Predicates) {
  EXPECT_TRUE(is_rst(0xD0));
  EXPECT_TRUE(is_rst(0xD7));
  EXPECT_FALSE(is_rst(kEOI));
  EXPECT_TRUE(is_app(0xE0));
  EXPECT_TRUE(is_app(0xEF));
  EXPECT_FALSE(is_app(kSOS));
}

}  // namespace
}  // namespace dnj::jpeg
