#include <gtest/gtest.h>

#include <random>

#include "jpeg/block_coder.hpp"
#include "jpeg/zigzag.hpp"

namespace dnj::jpeg {
namespace {

TEST(BitCategory, KnownValues) {
  EXPECT_EQ(bit_category(0), 0);
  EXPECT_EQ(bit_category(1), 1);
  EXPECT_EQ(bit_category(-1), 1);
  EXPECT_EQ(bit_category(2), 2);
  EXPECT_EQ(bit_category(3), 2);
  EXPECT_EQ(bit_category(-3), 2);
  EXPECT_EQ(bit_category(4), 3);
  EXPECT_EQ(bit_category(255), 8);
  EXPECT_EQ(bit_category(256), 9);
  EXPECT_EQ(bit_category(-1024), 11);
  EXPECT_EQ(bit_category(2047), 11);
}

struct CoderFixture {
  HuffmanEncoder dc_enc{HuffmanSpec::default_dc_luma()};
  HuffmanEncoder ac_enc{HuffmanSpec::default_ac_luma()};
  HuffmanDecoder dc_dec{HuffmanSpec::default_dc_luma()};
  HuffmanDecoder ac_dec{HuffmanSpec::default_ac_luma()};

  std::vector<QuantizedBlock> round_trip(const std::vector<QuantizedBlock>& blocks) {
    std::vector<std::uint8_t> bytes;
    BitWriter bw(bytes);
    int pred = 0;
    for (const QuantizedBlock& b : blocks) encode_block(bw, b, pred, dc_enc, ac_enc);
    bw.flush();
    BitReader br(bytes.data(), bytes.size());
    std::vector<QuantizedBlock> out(blocks.size());
    int dpred = 0;
    for (QuantizedBlock& b : out)
      EXPECT_TRUE(decode_block(br, b, dpred, dc_dec, ac_dec));
    return out;
  }
};

TEST(BlockCoder, AllZeroBlock) {
  CoderFixture fx;
  QuantizedBlock zero{};
  const auto out = fx.round_trip({zero});
  EXPECT_EQ(out[0], zero);
}

TEST(BlockCoder, DcOnlyBlocksUseDpcm) {
  CoderFixture fx;
  QuantizedBlock a{}, b{}, c{};
  a[0] = 50;
  b[0] = 50;  // diff = 0 for the second block
  c[0] = -30;
  const auto out = fx.round_trip({a, b, c});
  EXPECT_EQ(out[0][0], 50);
  EXPECT_EQ(out[1][0], 50);
  EXPECT_EQ(out[2][0], -30);
}

TEST(BlockCoder, LongZeroRunUsesZrl) {
  CoderFixture fx;
  QuantizedBlock blk{};
  blk[0] = 1;
  // One AC coefficient 40 zig-zag positions in: requires two ZRLs.
  blk[static_cast<std::size_t>(kZigzag[41])] = 5;
  const auto out = fx.round_trip({blk});
  EXPECT_EQ(out[0], blk);
}

TEST(BlockCoder, LastCoefficientNoEob) {
  CoderFixture fx;
  QuantizedBlock blk{};
  blk[static_cast<std::size_t>(kZigzag[63])] = -7;
  const auto out = fx.round_trip({blk});
  EXPECT_EQ(out[0], blk);
}

TEST(BlockCoder, NegativeValuesAllMagnitudes) {
  CoderFixture fx;
  QuantizedBlock blk{};
  blk[0] = -1024;
  for (int k = 1; k < 11; ++k)
    blk[static_cast<std::size_t>(kZigzag[static_cast<std::size_t>(k)])] =
        static_cast<std::int16_t>(-(1 << (k - 1)));
  const auto out = fx.round_trip({blk});
  EXPECT_EQ(out[0], blk);
}

class BlockCoderProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BlockCoderProperty, RandomSparseBlocksRoundTrip) {
  std::mt19937_64 rng(GetParam());
  CoderFixture fx;
  std::vector<QuantizedBlock> blocks;
  for (int b = 0; b < 40; ++b) {
    QuantizedBlock blk{};
    blk[0] = static_cast<std::int16_t>(static_cast<int>(rng() % 2047) - 1023);
    const int nonzeros = static_cast<int>(rng() % 20);
    for (int i = 0; i < nonzeros; ++i) {
      const int pos = 1 + static_cast<int>(rng() % 63);
      const int mag = 1 + static_cast<int>(rng() % 1023);
      blk[static_cast<std::size_t>(kZigzag[static_cast<std::size_t>(pos)])] =
          static_cast<std::int16_t>((rng() & 1) ? mag : -mag);
    }
    blocks.push_back(blk);
  }
  const auto out = fx.round_trip(blocks);
  for (std::size_t i = 0; i < blocks.size(); ++i) EXPECT_EQ(out[i], blocks[i]);
}

TEST_P(BlockCoderProperty, SymbolCountsMatchEmittedSymbols) {
  // The statistics pass must tally exactly the symbols the emit pass writes;
  // verify by building optimal tables from counts and re-encoding — every
  // symbol must have a code.
  std::mt19937_64 rng(GetParam() + 500);
  std::vector<QuantizedBlock> blocks;
  for (int b = 0; b < 30; ++b) {
    QuantizedBlock blk{};
    blk[0] = static_cast<std::int16_t>(static_cast<int>(rng() % 255) - 127);
    for (int k = 1; k < 64; ++k)
      if (rng() % 4 == 0)
        blk[static_cast<std::size_t>(kZigzag[static_cast<std::size_t>(k)])] =
            static_cast<std::int16_t>(static_cast<int>(rng() % 63) - 31);
    blocks.push_back(blk);
  }
  SymbolCounts counts;
  int pred = 0;
  for (const QuantizedBlock& b : blocks) count_block_symbols(b, pred, counts);

  const HuffmanEncoder dc_enc(HuffmanSpec::build_optimal(counts.dc));
  const HuffmanEncoder ac_enc(HuffmanSpec::build_optimal(counts.ac));
  std::vector<std::uint8_t> bytes;
  BitWriter bw(bytes);
  pred = 0;
  // Throws if any emitted symbol was missing from the counts.
  for (const QuantizedBlock& b : blocks)
    EXPECT_NO_THROW(encode_block(bw, b, pred, dc_enc, ac_enc));
  bw.flush();

  // And the optimal-table stream decodes back to the same blocks.
  const HuffmanDecoder dc_dec(HuffmanSpec::build_optimal(counts.dc));
  const HuffmanDecoder ac_dec(HuffmanSpec::build_optimal(counts.ac));
  BitReader br(bytes.data(), bytes.size());
  int dpred = 0;
  for (const QuantizedBlock& expect : blocks) {
    QuantizedBlock got{};
    ASSERT_TRUE(decode_block(br, got, dpred, dc_dec, ac_dec));
    EXPECT_EQ(got, expect);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlockCoderProperty, ::testing::Range<std::uint64_t>(1, 11));

TEST(BlockCoder, DecodeRejectsTruncatedStream) {
  CoderFixture fx;
  QuantizedBlock blk{};
  blk[0] = 500;
  blk[1] = 60;
  std::vector<std::uint8_t> bytes;
  BitWriter bw(bytes);
  int pred = 0;
  encode_block(bw, blk, pred, fx.dc_enc, fx.ac_enc);
  bw.flush();
  // Truncate hard.
  bytes.resize(1);
  BitReader br(bytes.data(), bytes.size());
  QuantizedBlock out{};
  int dpred = 0;
  EXPECT_FALSE(decode_block(br, out, dpred, fx.dc_dec, fx.ac_dec));
}

}  // namespace
}  // namespace dnj::jpeg
