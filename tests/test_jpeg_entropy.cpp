// Entropy-stage contract tests for the fast paths added with the LUT
// decoder and the restart-parallel scan decode:
//
//  * LUT equivalence — the peek-table Huffman decoder must produce
//    bit-identical coefficient planes and pixels at EVERY table width
//    (including 0 = bit-by-bit reference) across subsampling modes, 16-bit
//    DQT, optimized Huffman tables, restart intervals and odd sizes.
//  * Restart-parallel determinism — decoding a restart-interval stream at
//    any thread count yields byte-identical planes and pixels.
//  * Corrupt-stream hardening — invalid codes, all-ones bit runs,
//    magnitudes past the scan end and broken restart sequences must throw
//    std::runtime_error (and surface as kDecodeError through the api
//    façade), never hang, crash or read out of bounds. Run under the
//    ASan/UBSan CI legs like every other test.
//  * Batched emission — encode_blocks_zz must emit byte-identical streams
//    to per-block encode_block_zz, and the BlockCursor must match the
//    BitWriter bit for bit.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <stdexcept>
#include <vector>

#include "api/dnj.hpp"
#include "data/synthetic.hpp"
#include "jpeg/block_coder.hpp"
#include "jpeg/codec.hpp"
#include "jpeg/pipeline/codec_context.hpp"

namespace dnj::jpeg {
namespace {

// Every test leaves the process-global LUT width as it found it.
class LutWidthGuard {
 public:
  LutWidthGuard() : saved_(entropy_lut_bits()) {}
  ~LutWidthGuard() { set_entropy_lut_bits(saved_); }

 private:
  int saved_;
};

image::Image synth(int w, int h, int ch, std::uint64_t seed) {
  data::GeneratorConfig cfg;
  cfg.width = w;
  cfg.height = h;
  cfg.channels = ch;
  cfg.seed = seed;
  return data::SyntheticDatasetGenerator(cfg).render(data::ClassKind::kBandNoise, 0);
}

struct StreamCase {
  const char* name;
  std::vector<std::uint8_t> stream;
};

// One stream per decoder-relevant configuration axis.
std::vector<StreamCase> entropy_stream_cases() {
  std::vector<StreamCase> cases;
  {
    EncoderConfig ec;
    ec.quality = 85;
    ec.subsampling = Subsampling::k444;
    cases.push_back({"gray_444", encode(synth(32, 32, 1, 1), ec)});
  }
  {
    EncoderConfig ec;
    ec.quality = 90;
    ec.subsampling = Subsampling::k444;
    cases.push_back({"color_444", encode(synth(16, 16, 3, 2), ec)});
  }
  {
    EncoderConfig ec;
    ec.quality = 75;
    ec.subsampling = Subsampling::k420;
    cases.push_back({"color_420_odd", encode(synth(33, 31, 3, 3), ec)});
  }
  {
    // Steps above 255 force 16-bit DQT entries.
    std::array<std::uint16_t, 64> steps{};
    for (int k = 0; k < 64; ++k)
      steps[static_cast<std::size_t>(k)] = static_cast<std::uint16_t>(1 + k * 9);
    EncoderConfig ec;
    ec.use_custom_tables = true;
    ec.luma_table = QuantTable(steps);
    ec.chroma_table = QuantTable(steps);
    ec.subsampling = Subsampling::k444;
    cases.push_back({"dqt16", encode(synth(24, 24, 1, 4), ec)});
  }
  {
    EncoderConfig ec;
    ec.quality = 85;
    ec.subsampling = Subsampling::k420;
    ec.optimize_huffman = true;  // per-image tables, not the Annex K set
    cases.push_back({"optimized_huffman", encode(synth(32, 24, 3, 5), ec)});
  }
  {
    EncoderConfig ec;
    ec.quality = 80;
    ec.subsampling = Subsampling::k444;
    ec.restart_interval = 2;
    cases.push_back({"restart_interval", encode(synth(48, 40, 1, 6), ec)});
  }
  {
    EncoderConfig ec;
    ec.quality = 90;
    cases.push_back({"tiny_odd", encode(synth(17, 13, 1, 7), ec)});
  }
  return cases;
}

struct DecodeSnapshot {
  int components = 0;
  std::vector<std::vector<std::int16_t>> planes;
  std::vector<std::uint8_t> pixels;
};

// Decodes through FRESH contexts so the Huffman decoders (and their LUTs)
// are built at the currently configured width.
DecodeSnapshot snapshot_decode(const std::vector<std::uint8_t>& stream, int threads) {
  DecodeSnapshot snap;
  pipeline::CodecContext coeff_ctx;
  const JpegInfo info = decode_coefficients(stream, coeff_ctx, threads);
  snap.components = info.components;
  for (int c = 0; c < info.components; ++c) {
    const auto& plane = coeff_ctx.decode_coeffs[static_cast<std::size_t>(c)];
    snap.planes.emplace_back(plane.data(), plane.data() + plane.block_count() * 64);
  }
  pipeline::CodecContext pixel_ctx;
  snap.pixels = decode(stream, pixel_ctx, threads).data();
  return snap;
}

void expect_snapshots_equal(const DecodeSnapshot& a, const DecodeSnapshot& b,
                            const char* what) {
  ASSERT_EQ(a.components, b.components) << what;
  for (int c = 0; c < a.components; ++c) {
    const auto& pa = a.planes[static_cast<std::size_t>(c)];
    const auto& pb = b.planes[static_cast<std::size_t>(c)];
    ASSERT_EQ(pa.size(), pb.size()) << what << " component " << c;
    EXPECT_EQ(0, std::memcmp(pa.data(), pb.data(), pa.size() * sizeof(std::int16_t)))
        << what << " coefficient planes differ, component " << c;
  }
  EXPECT_EQ(a.pixels, b.pixels) << what << " pixels differ";
}

// ---------------------------------------------------------------------------
// LUT-decoder equivalence
// ---------------------------------------------------------------------------

TEST(EntropyLut, EveryPeekWidthDecodesBitIdentically) {
  LutWidthGuard guard;
  for (const StreamCase& sc : entropy_stream_cases()) {
    set_entropy_lut_bits(0);  // bit-by-bit reference walk
    const DecodeSnapshot reference = snapshot_decode(sc.stream, 1);
    for (const int width : {1, 2, 5, 8, 12}) {
      set_entropy_lut_bits(width);
      SCOPED_TRACE(std::string(sc.name) + " lut_bits=" + std::to_string(width));
      expect_snapshots_equal(reference, snapshot_decode(sc.stream, 1), sc.name);
    }
  }
}

TEST(EntropyLut, WidthKnobClampsAndDisables) {
  LutWidthGuard guard;
  set_entropy_lut_bits(0);
  EXPECT_EQ(entropy_lut_bits(), 0);
  HuffmanDecoder reference(HuffmanSpec::default_ac_luma());
  EXPECT_EQ(reference.lut_bits(), 0);
  set_entropy_lut_bits(99);  // clamped to the 12-bit ceiling
  EXPECT_EQ(entropy_lut_bits(), 12);
  HuffmanDecoder wide(HuffmanSpec::default_ac_luma());
  EXPECT_EQ(wide.lut_bits(), 12);
  set_entropy_lut_bits(-5);
  EXPECT_EQ(entropy_lut_bits(), 0);
}

TEST(EntropyLut, ContextCachesDecodersPerSpecAndWidth) {
  LutWidthGuard guard;
  set_entropy_lut_bits(8);
  pipeline::CodecContext ctx;
  const HuffmanSpec spec = HuffmanSpec::default_ac_luma();
  const HuffmanDecoder& first = ctx.decoder_for(spec);
  const HuffmanDecoder& again = ctx.decoder_for(spec);
  EXPECT_EQ(&first, &again);  // warm hit, no rebuild
  EXPECT_EQ(ctx.reuse_counters().huffman_decoder_builds, 1u);
  set_entropy_lut_bits(4);  // width change must miss: the LUT shape differs
  const HuffmanDecoder& narrow = ctx.decoder_for(spec);
  EXPECT_NE(&first, &narrow);
  EXPECT_EQ(narrow.lut_bits(), 4);
  EXPECT_EQ(ctx.reuse_counters().huffman_decoder_builds, 2u);
}

// ---------------------------------------------------------------------------
// Restart-parallel determinism
// ---------------------------------------------------------------------------

TEST(RestartParallel, PlanesAndPixelsIdenticalAtEveryThreadCount) {
  EncoderConfig ec;
  ec.quality = 80;
  ec.restart_interval = 2;
  for (const int channels : {1, 3}) {
    ec.subsampling = channels == 3 ? Subsampling::k420 : Subsampling::k444;
    const std::vector<std::uint8_t> stream =
        encode(synth(48, 40, channels, 11), ec);
    const DecodeSnapshot serial = snapshot_decode(stream, 1);
    for (const int threads : {2, 8}) {
      SCOPED_TRACE("channels=" + std::to_string(channels) +
                   " threads=" + std::to_string(threads));
      expect_snapshots_equal(serial, snapshot_decode(stream, threads), "restart");
    }
  }
}

TEST(RestartParallel, MatchesNonRestartPixels) {
  // The same image with and without restart intervals decodes to the same
  // pixels (restart markers only reset the DC predictor).
  const image::Image img = synth(64, 48, 1, 12);
  EncoderConfig plain;
  plain.quality = 85;
  EncoderConfig restart = plain;
  restart.restart_interval = 3;
  pipeline::CodecContext ctx;
  const image::Image a = decode(encode(img, plain), ctx, 1);
  const image::Image b = decode(encode(img, restart), ctx, 8);
  EXPECT_EQ(a.data(), b.data());
}

// ---------------------------------------------------------------------------
// Corrupt-stream hardening
// ---------------------------------------------------------------------------

// Byte offset of the first entropy-coded scan byte (right after the SOS
// header segment).
std::size_t scan_begin(const std::vector<std::uint8_t>& s) {
  for (std::size_t i = 0; i + 3 < s.size(); ++i) {
    if (s[i] == 0xFF && s[i + 1] == 0xDA) {
      const std::size_t len = (static_cast<std::size_t>(s[i + 2]) << 8) | s[i + 3];
      return i + 2 + len;
    }
  }
  ADD_FAILURE() << "no SOS marker found";
  return s.size();
}

// Offset of the first restart marker (FF D0..D7) at or after `from`.
std::size_t first_rst(const std::vector<std::uint8_t>& s, std::size_t from) {
  for (std::size_t i = from; i + 1 < s.size(); ++i)
    if (s[i] == 0xFF && s[i + 1] >= 0xD0 && s[i + 1] <= 0xD7) return i;
  ADD_FAILURE() << "no RST marker found";
  return s.size();
}

void expect_decode_throws_at_every_width(const std::vector<std::uint8_t>& bytes) {
  LutWidthGuard guard;
  for (const int width : {0, 8, 12}) {
    set_entropy_lut_bits(width);
    SCOPED_TRACE("lut_bits=" + std::to_string(width));
    pipeline::CodecContext ctx;
    EXPECT_THROW((void)decode(bytes, ctx, 1), std::runtime_error);
    pipeline::CodecContext coeff_ctx;
    EXPECT_THROW((void)decode_coefficients(bytes, coeff_ctx, 1), std::runtime_error);
  }
}

std::vector<std::uint8_t> restart_stream() {
  EncoderConfig ec;
  ec.quality = 80;
  ec.restart_interval = 2;
  return encode(synth(48, 40, 1, 21), ec);
}

TEST(EntropyRobustness, AllOnesScanDataIsRejected) {
  EncoderConfig ec;
  ec.quality = 85;
  std::vector<std::uint8_t> s = encode(synth(32, 32, 1, 22), ec);
  const std::size_t begin = scan_begin(s);
  ASSERT_LT(begin + 2, s.size());
  // Replace the scan body with stuffed 0xFF bytes: the decoder sees an
  // unbroken all-ones bit pattern, which runs past every code length.
  for (std::size_t i = begin; i + 3 < s.size(); i += 2) {
    s[i] = 0xFF;
    s[i + 1] = 0x00;
  }
  expect_decode_throws_at_every_width(s);
}

TEST(EntropyRobustness, MagnitudeBitsPastScanEndAreRejected) {
  EncoderConfig ec;
  ec.quality = 85;
  const std::vector<std::uint8_t> full = encode(synth(32, 32, 1, 23), ec);
  const std::size_t begin = scan_begin(full);
  // Keep only a few scan bytes, then hit EOI mid-block: the decoder must
  // fail the read (marker inside a magnitude/code) instead of fabricating
  // bits — at every LUT width, including the zero-padded peek path.
  for (const std::size_t keep : {std::size_t{1}, std::size_t{3}, std::size_t{6}}) {
    ASSERT_LT(begin + keep, full.size());
    std::vector<std::uint8_t> s(full.begin(),
                                full.begin() + static_cast<long>(begin + keep));
    s.push_back(0xFF);
    s.push_back(0xD9);  // EOI
    expect_decode_throws_at_every_width(s);
  }
}

TEST(EntropyRobustness, MissingRestartMarkerIsRejected) {
  std::vector<std::uint8_t> s = restart_stream();
  const std::size_t rst = first_rst(s, scan_begin(s));
  ASSERT_LT(rst + 2, s.size());
  s.erase(s.begin() + static_cast<long>(rst), s.begin() + static_cast<long>(rst) + 2);
  expect_decode_throws_at_every_width(s);
}

TEST(EntropyRobustness, OutOfSequenceRestartMarkerIsRejected) {
  std::vector<std::uint8_t> s = restart_stream();
  const std::size_t rst = first_rst(s, scan_begin(s));
  ASSERT_LT(rst + 1, s.size());
  // First marker must be RST0; advance its index so the sequence breaks.
  s[rst + 1] = static_cast<std::uint8_t>(0xD0 + ((s[rst + 1] - 0xD0 + 3) % 8));
  expect_decode_throws_at_every_width(s);
}

TEST(EntropyRobustness, TruncatedScanSweepNeverHangsOrCrashes) {
  LutWidthGuard guard;
  EncoderConfig ec;
  ec.quality = 80;
  ec.restart_interval = 3;
  const std::vector<std::uint8_t> full = encode(synth(40, 33, 1, 24), ec);
  const std::size_t begin = scan_begin(full);
  for (const int width : {0, 8}) {
    set_entropy_lut_bits(width);
    for (std::size_t len = begin + 1; len < full.size(); len += 5) {
      const std::vector<std::uint8_t> prefix(full.begin(),
                                             full.begin() + static_cast<long>(len));
      pipeline::CodecContext ctx;
      try {
        (void)decode(prefix, ctx, 8);
      } catch (const std::runtime_error&) {
        // rejected as corrupt: acceptable, crash/hang/overflow is not
      }
    }
  }
}

TEST(EntropyRobustness, ApiSurfacesTypedDecodeError) {
  api::Session session;
  const api::Codec codec = session.codec();
  EncoderConfig ec;
  ec.quality = 85;
  std::vector<std::uint8_t> ones = encode(synth(32, 32, 1, 25), ec);
  const std::size_t begin = scan_begin(ones);
  for (std::size_t i = begin; i + 3 < ones.size(); i += 2) {
    ones[i] = 0xFF;
    ones[i + 1] = 0x00;
  }
  EXPECT_EQ(codec.decode(ones).status().code(), api::StatusCode::kDecodeError);

  std::vector<std::uint8_t> bad_rst = restart_stream();
  const std::size_t rst = first_rst(bad_rst, scan_begin(bad_rst));
  bad_rst[rst + 1] = static_cast<std::uint8_t>(0xD0 + ((bad_rst[rst + 1] - 0xD0 + 5) % 8));
  EXPECT_EQ(codec.decode(bad_rst).status().code(), api::StatusCode::kDecodeError);
}

// ---------------------------------------------------------------------------
// Batched emission
// ---------------------------------------------------------------------------

// Zig-zag planes exercising every emission shape: dense noise, long zero
// runs (1-3 ZRLs), trailing nonzero at k=63, all-zero blocks, maximum
// magnitudes.
std::vector<std::int16_t> emission_plane(std::uint64_t seed, std::size_t blocks) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> val(-1023, 1023);
  std::uniform_int_distribution<int> lane(1, 63);
  std::vector<std::int16_t> zz(blocks * 64, 0);
  for (std::size_t b = 0; b < blocks; ++b) {
    std::int16_t* blk = zz.data() + b * 64;
    blk[0] = static_cast<std::int16_t>(val(rng));
    switch (b % 5) {
      case 0:  // dense
        for (int k = 1; k < 64; ++k) blk[k] = static_cast<std::int16_t>(val(rng));
        break;
      case 1:  // sparse: a handful of lanes, long runs between them
        for (int n = 0; n < 3; ++n)
          blk[lane(rng)] = static_cast<std::int16_t>(val(rng) | 1);
        break;
      case 2:  // single trailing coefficient: 62-zero run -> 3 ZRLs + code
        blk[63] = static_cast<std::int16_t>(val(rng) | 1);
        break;
      case 3:  // all-zero AC: DC + EOB only
        break;
      case 4:  // magnitude extremes
        blk[1] = 1023;
        blk[17] = -1023;
        blk[34] = 1;
        blk[63] = -1;
        break;
    }
  }
  return zz;
}

TEST(BatchEncode, MatchesPerBlockBitstream) {
  pipeline::CodecContext ctx;
  const auto& huff = ctx.static_huffman();
  for (const std::uint64_t seed : {31ull, 32ull, 33ull}) {
    for (const std::size_t blocks : {std::size_t{1}, std::size_t{7}, std::size_t{160}}) {
      const std::vector<std::int16_t> zz = emission_plane(seed, blocks);
      std::vector<std::uint8_t> per_block, batched;
      {
        BitWriter bw(per_block);
        int dc_pred = 0;
        for (std::size_t b = 0; b < blocks; ++b)
          encode_block_zz(bw, zz.data() + b * 64, dc_pred, huff.dc_luma, huff.ac_luma);
        bw.flush();
      }
      {
        BitWriter bw(batched);
        int dc_pred = 0;
        encode_blocks_zz(bw, zz.data(), blocks, dc_pred, huff.dc_luma, huff.ac_luma);
        bw.flush();
      }
      EXPECT_EQ(per_block, batched) << "seed=" << seed << " blocks=" << blocks;
    }
  }
}

TEST(BatchEncode, BlockCursorMatchesPutBits) {
  // The cursor's overlapping-store emission must be bit-identical to
  // put_bits, including partial-bit carryover across attach/commit cycles
  // and interleaved direct writes.
  std::mt19937_64 rng(41);
  std::uniform_int_distribution<int> count_dist(1, 27);
  std::vector<std::uint8_t> expect, got;
  BitWriter we(expect), wg(got);
  for (int round = 0; round < 50; ++round) {
    // A few direct writes...
    for (int i = 0; i < 3; ++i) {
      const int count = count_dist(rng);
      const std::uint32_t bits =
          static_cast<std::uint32_t>(rng()) & ((1u << count) - 1u);
      we.put_bits(bits, count);
      wg.put_bits(bits, count);
    }
    // ...then a cursor session with a random number of puts.
    BitWriter::BlockCursor cur(wg);
    const int puts = 1 + static_cast<int>(rng() % 40);
    for (int i = 0; i < puts; ++i) {
      const int count = count_dist(rng);
      const std::uint32_t bits =
          static_cast<std::uint32_t>(rng()) & ((1u << count) - 1u);
      we.put_bits(bits, count);
      cur.put(bits, count);
    }
    cur.commit();
  }
  we.flush();
  wg.flush();
  EXPECT_EQ(expect, got);
}

}  // namespace
}  // namespace dnj::jpeg
