#include <gtest/gtest.h>

#include <random>

#include "jpeg/quant.hpp"
#include "jpeg/zigzag.hpp"

namespace dnj::jpeg {
namespace {

TEST(QuantTable, DefaultIsIdentity) {
  QuantTable t;
  for (int k = 0; k < 64; ++k) EXPECT_EQ(t.step(k), 1);
  EXPECT_FALSE(t.needs_16bit());
}

TEST(QuantTable, AnnexKValues) {
  const QuantTable luma = QuantTable::annex_k_luma();
  EXPECT_EQ(luma.step_at(0, 0), 16);
  EXPECT_EQ(luma.step_at(0, 1), 11);
  EXPECT_EQ(luma.step_at(7, 7), 99);
  const QuantTable chroma = QuantTable::annex_k_chroma();
  EXPECT_EQ(chroma.step_at(0, 0), 17);
  EXPECT_EQ(chroma.step_at(7, 7), 99);
}

TEST(QuantTable, ClampsZeroStepsToOne) {
  std::array<std::uint16_t, 64> steps{};
  const QuantTable t(steps);
  for (int k = 0; k < 64; ++k) EXPECT_EQ(t.step(k), 1);
}

TEST(QuantScaling, Quality50IsBaseTable) {
  const QuantTable base = QuantTable::annex_k_luma();
  const QuantTable scaled = base.scaled(50);
  for (int k = 0; k < 64; ++k) EXPECT_EQ(scaled.step(k), base.step(k));
}

TEST(QuantScaling, Quality100IsAllOnes) {
  const QuantTable scaled = QuantTable::annex_k_luma().scaled(100);
  for (int k = 0; k < 64; ++k) EXPECT_EQ(scaled.step(k), 1);
}

TEST(QuantScaling, LowQualityScalesUp) {
  const QuantTable base = QuantTable::annex_k_luma();
  const QuantTable q10 = base.scaled(10);
  // IJG: quality 10 -> scale 500%.
  EXPECT_EQ(q10.step_at(0, 0), 80);  // 16 * 5
  EXPECT_EQ(q10.step_at(7, 7), 255); // clamped
}

TEST(QuantScaling, OutOfRangeQualityIsClamped) {
  const QuantTable base = QuantTable::annex_k_luma();
  EXPECT_EQ(base.scaled(-5).step(0), base.scaled(1).step(0));
  EXPECT_EQ(base.scaled(300).step(0), base.scaled(100).step(0));
}

class QualityMonotonic : public ::testing::TestWithParam<int> {};

TEST_P(QualityMonotonic, HigherQualityNeverIncreasesSteps) {
  const QuantTable base = QuantTable::annex_k_luma();
  const int q = GetParam();
  const QuantTable lo = base.scaled(q);
  const QuantTable hi = base.scaled(q + 10);
  for (int k = 0; k < 64; ++k) EXPECT_GE(lo.step(k), hi.step(k));
}

INSTANTIATE_TEST_SUITE_P(Qualities, QualityMonotonic,
                         ::testing::Values(5, 15, 25, 35, 45, 55, 65, 75, 85));

TEST(QuantTable, Uniform) {
  const QuantTable t = QuantTable::uniform(8);
  for (int k = 0; k < 64; ++k) EXPECT_EQ(t.step(k), 8);
}

TEST(QuantTable, Needs16Bit) {
  std::array<std::uint16_t, 64> steps{};
  steps.fill(255);
  EXPECT_FALSE(QuantTable(steps).needs_16bit());
  steps[10] = 256;
  EXPECT_TRUE(QuantTable(steps).needs_16bit());
}

TEST(Quantize, RoundsToNearest) {
  image::BlockF coeffs{};
  coeffs[0] = 100.0f;
  coeffs[1] = -24.9f;
  coeffs[2] = 25.1f;
  const QuantTable t = QuantTable::uniform(10);
  const QuantizedBlock q = quantize(coeffs, t);
  EXPECT_EQ(q[0], 10);
  EXPECT_EQ(q[1], -2);
  EXPECT_EQ(q[2], 3);  // 2.51 rounds to 3
}

TEST(Quantize, DequantizeInverseWithinHalfStep) {
  std::mt19937_64 rng(31);
  std::uniform_real_distribution<float> dist(-900.0f, 900.0f);
  image::BlockF coeffs{};
  for (float& v : coeffs) v = dist(rng);
  const QuantTable t = QuantTable::annex_k_luma();
  const image::BlockF rec = dequantize(quantize(coeffs, t), t);
  for (int k = 0; k < 64; ++k)
    EXPECT_LE(std::abs(rec[static_cast<std::size_t>(k)] - coeffs[static_cast<std::size_t>(k)]),
              0.5f * static_cast<float>(t.step(k)) + 1e-3f);
}

TEST(Quantize, LargerStepNeverIncreasesMagnitude) {
  image::BlockF coeffs{};
  for (int k = 0; k < 64; ++k) coeffs[static_cast<std::size_t>(k)] = 37.0f * (k % 2 ? 1 : -1);
  const QuantizedBlock fine = quantize(coeffs, QuantTable::uniform(2));
  const QuantizedBlock coarse = quantize(coeffs, QuantTable::uniform(16));
  for (int k = 0; k < 64; ++k)
    EXPECT_LE(std::abs(coarse[static_cast<std::size_t>(k)]), std::abs(fine[static_cast<std::size_t>(k)]));
}

TEST(Quantize, BigStepZeroesSmallCoefficients) {
  image::BlockF coeffs{};
  coeffs[static_cast<std::size_t>(kZigzag[63])] = 100.0f;
  const QuantTable t = QuantTable::uniform(255);
  const QuantizedBlock q = quantize(coeffs, t);
  EXPECT_EQ(q[static_cast<std::size_t>(kZigzag[63])], 0);
}

}  // namespace
}  // namespace dnj::jpeg
