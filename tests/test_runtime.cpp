#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "runtime/mpmc_queue.hpp"
#include "runtime/parallel.hpp"
#include "runtime/thread_pool.hpp"

namespace dnj::runtime {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::atomic<int> done{0};
  for (int i = 0; i < 32; ++i)
    pool.submit([&] {
      counter.fetch_add(1);
      done.fetch_add(1);
    });
  while (done.load() < 32) std::this_thread::yield();
  EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPool, ZeroWorkerPoolIsValid) {
  // parallel_for with the global pool degrades to serial when no workers
  // exist; a standalone zero-worker pool must construct and destruct
  // cleanly.
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 0u);
}

TEST(ThreadPool, ZeroWorkerPoolDrainsSubmissionBurstOnDestruction) {
  // A burst submitted to a zero-worker pool has nobody to run it while the
  // pool lives; the destructor's drain guarantee runs it inline, in
  // submission order.
  std::vector<int> ran;
  {
    ThreadPool pool(0);
    for (int i = 0; i < 100; ++i) pool.submit([&ran, i] { ran.push_back(i); });
    EXPECT_TRUE(ran.empty());  // nothing runs while the pool is alive
  }
  ASSERT_EQ(ran.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ran[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPool, ShutdownWithBacklogDrainsInSubmissionOrder) {
  // Destroying a pool whose single worker is wedged behind a gate must
  // first finish the whole backlog, picking tasks up in FIFO order.
  std::vector<int> ran;
  std::mutex ran_mutex;
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  {
    ThreadPool pool(1);
    pool.submit([opened] { opened.wait(); });
    for (int i = 0; i < 64; ++i)
      pool.submit([&ran, &ran_mutex, i] {
        std::lock_guard<std::mutex> lock(ran_mutex);
        ran.push_back(i);
      });
    gate.set_value();
    // Destructor joins; the worker must drain all 64 queued tasks first.
  }
  ASSERT_EQ(ran.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(ran[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPool, ExceptionFreeTaskContractPattern) {
  // Tasks must not throw; submitters honor the contract by capturing
  // failures inside the task (the parallel helpers stash them in loop
  // state, the serving layer converts them to error responses). This
  // pins the pattern: a bursty mix of failing bodies never unwinds a
  // worker, and every failure is observable afterwards.
  std::atomic<int> failures{0};
  std::atomic<int> done{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 200; ++i)
      pool.submit([&failures, &done, i] {
        try {
          if (i % 3 == 0) throw std::runtime_error("body failed");
        } catch (const std::exception&) {
          failures.fetch_add(1);
        }
        done.fetch_add(1);
      });
  }
  EXPECT_EQ(done.load(), 200);
  EXPECT_EQ(failures.load(), 67);  // ceil(200 / 3)
}

TEST(ThreadPool, DefaultThreadsIsPositive) { EXPECT_GE(ThreadPool::default_threads(), 1u); }

TEST(ParallelFor, EmptyRangeRunsNothing) {
  std::atomic<int> calls{0};
  parallel_for(5, 5, 1, [&](std::size_t) { calls.fetch_add(1); });
  parallel_for(7, 3, 1, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, SingletonRangeRunsOnce) {
  std::atomic<int> calls{0};
  std::size_t seen = 0;
  parallel_for(41, 42, 8, [&](std::size_t i) {
    calls.fetch_add(1);
    seen = i;
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(seen, 41u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  for (int threads : {1, 2, 4, 8}) {
    for (auto& h : hits) h.store(0);
    parallel_for(
        0, kN, 7, [&](std::size_t i) { hits[i].fetch_add(1); }, threads);
    for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, ZeroGrainIsTreatedAsOne) {
  std::atomic<int> calls{0};
  parallel_for(0, 100, 0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 100);
}

TEST(ParallelFor, PropagatesExceptions) {
  for (int threads : {1, 4}) {
    try {
      parallel_for(
          0, 1000, 3,
          [&](std::size_t i) {
            if (i == 137) throw std::runtime_error("boom at 137");
          },
          threads);
      FAIL() << "expected exception (threads=" << threads << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom at 137");
    }
  }
}

TEST(ParallelFor, SurvivesAfterAnExceptionalLoop) {
  // The pool must stay usable after a failed loop abandoned its chunks.
  EXPECT_THROW(parallel_for(0, 100, 1,
                            [](std::size_t) { throw std::logic_error("dead"); }),
               std::logic_error);
  std::atomic<int> calls{0};
  parallel_for(0, 100, 1, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 100);
}

TEST(ParallelFor, NestedLoopsDoNotDeadlock) {
  std::atomic<int> calls{0};
  parallel_for(0, 8, 1, [&](std::size_t) {
    parallel_for(0, 8, 1, [&](std::size_t) { calls.fetch_add(1); });
  });
  EXPECT_EQ(calls.load(), 64);
}

TEST(MpmcQueue, FifoSingleThread) {
  MpmcQueue<int> q(8);
  for (int i = 0; i < 5; ++i) {
    int v = i;
    EXPECT_TRUE(q.try_push(v));
  }
  EXPECT_EQ(q.size(), 5u);
  int out = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(MpmcQueue, TryPushFailsWhenFullAndLeavesItemIntact) {
  MpmcQueue<std::string> q(2);
  std::string a = "a", b = "b", c = "c";
  EXPECT_TRUE(q.try_push(a));
  EXPECT_TRUE(q.try_push(b));
  EXPECT_FALSE(q.try_push(c));
  EXPECT_EQ(c, "c");  // rejected item untouched, caller can still refuse it
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.high_water(), 2u);
}

TEST(MpmcQueue, NeverExceedsCapacityUnderConcurrentPressure) {
  MpmcQueue<int> q(4);
  std::atomic<int> produced{0};
  std::atomic<int> consumed{0};
  constexpr int kPerProducer = 500;
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p)
    producers.emplace_back([&q, &produced] {
      for (int i = 0; i < kPerProducer; ++i) {
        int v = i;
        if (q.push(v)) produced.fetch_add(1);
      }
    });
  std::vector<std::thread> consumers;
  for (int cth = 0; cth < 2; ++cth)
    consumers.emplace_back([&q, &consumed] {
      int out;
      while (q.pop(out)) consumed.fetch_add(1);
    });
  for (std::thread& t : producers) t.join();
  q.close();
  for (std::thread& t : consumers) t.join();
  EXPECT_EQ(produced.load(), 4 * kPerProducer);
  EXPECT_EQ(consumed.load(), 4 * kPerProducer);
  EXPECT_LE(q.high_water(), q.capacity());
}

TEST(MpmcQueue, CloseWakesBlockedPusherWithFailure) {
  MpmcQueue<int> q(1);
  int v = 1;
  ASSERT_TRUE(q.push(v));  // queue now full
  std::atomic<bool> push_result{true};
  std::thread blocked([&q, &push_result] {
    int w = 2;
    push_result.store(q.push(w));  // blocks on full queue until close()
  });
  q.close();
  blocked.join();
  EXPECT_FALSE(push_result.load());
  // The accepted item still drains; then pop reports closed-and-empty.
  int out;
  EXPECT_TRUE(q.pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_FALSE(q.pop(out));
}

TEST(MpmcQueue, PopWhileTakesOnlyMatchingPrefix) {
  MpmcQueue<int> q(16);
  for (int v : {2, 4, 6, 7, 8}) {
    int item = v;
    ASSERT_TRUE(q.try_push(item));
  }
  std::vector<int> batch;
  // Takes the even prefix and stops at 7 without skipping past it.
  const std::size_t taken =
      q.pop_while([](const int& v) { return v % 2 == 0; }, 8, batch);
  EXPECT_EQ(taken, 3u);
  EXPECT_EQ(batch, (std::vector<int>{2, 4, 6}));
  int out;
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 7);  // FIFO preserved: nothing was popped out of order
  // `max` bounds the take even when more heads match.
  batch.clear();
  ASSERT_TRUE(q.pop(out));
  for (int v : {10, 12, 14}) {
    int item = v;
    ASSERT_TRUE(q.try_push(item));
  }
  EXPECT_EQ(q.pop_while([](const int&) { return true; }, 2, batch), 2u);
  EXPECT_EQ(batch, (std::vector<int>{10, 12}));
}

TEST(ParallelMap, ResultsAreInIndexOrder) {
  for (int threads : {1, 2, 8}) {
    const std::vector<std::size_t> out = parallel_map(
        10, 200, 3, [](std::size_t i) { return i * i; }, threads);
    ASSERT_EQ(out.size(), 190u);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], (i + 10) * (i + 10));
  }
}

TEST(ParallelMap, EmptyRangeGivesEmptyVector) {
  const std::vector<int> out = parallel_map(3, 3, 1, [](std::size_t) { return 1; });
  EXPECT_TRUE(out.empty());
}

TEST(ResolveThreads, ZeroMeansDefaultPositiveIsExplicit) {
  EXPECT_EQ(resolve_threads(0), ThreadPool::default_threads());
  EXPECT_EQ(resolve_threads(3), 3u);
}

}  // namespace
}  // namespace dnj::runtime
