#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "runtime/parallel.hpp"
#include "runtime/thread_pool.hpp"

namespace dnj::runtime {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::atomic<int> done{0};
  for (int i = 0; i < 32; ++i)
    pool.submit([&] {
      counter.fetch_add(1);
      done.fetch_add(1);
    });
  while (done.load() < 32) std::this_thread::yield();
  EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPool, ZeroWorkerPoolIsValid) {
  // parallel_for with the global pool degrades to serial when no workers
  // exist; a standalone zero-worker pool must construct and destruct
  // cleanly. (With workers, queued tasks are drained before the
  // destructor returns; with none there is nobody to drain them.)
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 0u);
}

TEST(ThreadPool, DefaultThreadsIsPositive) { EXPECT_GE(ThreadPool::default_threads(), 1u); }

TEST(ParallelFor, EmptyRangeRunsNothing) {
  std::atomic<int> calls{0};
  parallel_for(5, 5, 1, [&](std::size_t) { calls.fetch_add(1); });
  parallel_for(7, 3, 1, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, SingletonRangeRunsOnce) {
  std::atomic<int> calls{0};
  std::size_t seen = 0;
  parallel_for(41, 42, 8, [&](std::size_t i) {
    calls.fetch_add(1);
    seen = i;
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(seen, 41u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  for (int threads : {1, 2, 4, 8}) {
    for (auto& h : hits) h.store(0);
    parallel_for(
        0, kN, 7, [&](std::size_t i) { hits[i].fetch_add(1); }, threads);
    for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, ZeroGrainIsTreatedAsOne) {
  std::atomic<int> calls{0};
  parallel_for(0, 100, 0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 100);
}

TEST(ParallelFor, PropagatesExceptions) {
  for (int threads : {1, 4}) {
    try {
      parallel_for(
          0, 1000, 3,
          [&](std::size_t i) {
            if (i == 137) throw std::runtime_error("boom at 137");
          },
          threads);
      FAIL() << "expected exception (threads=" << threads << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom at 137");
    }
  }
}

TEST(ParallelFor, SurvivesAfterAnExceptionalLoop) {
  // The pool must stay usable after a failed loop abandoned its chunks.
  EXPECT_THROW(parallel_for(0, 100, 1,
                            [](std::size_t) { throw std::logic_error("dead"); }),
               std::logic_error);
  std::atomic<int> calls{0};
  parallel_for(0, 100, 1, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 100);
}

TEST(ParallelFor, NestedLoopsDoNotDeadlock) {
  std::atomic<int> calls{0};
  parallel_for(0, 8, 1, [&](std::size_t) {
    parallel_for(0, 8, 1, [&](std::size_t) { calls.fetch_add(1); });
  });
  EXPECT_EQ(calls.load(), 64);
}

TEST(ParallelMap, ResultsAreInIndexOrder) {
  for (int threads : {1, 2, 8}) {
    const std::vector<std::size_t> out = parallel_map(
        10, 200, 3, [](std::size_t i) { return i * i; }, threads);
    ASSERT_EQ(out.size(), 190u);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], (i + 10) * (i + 10));
  }
}

TEST(ParallelMap, EmptyRangeGivesEmptyVector) {
  const std::vector<int> out = parallel_map(3, 3, 1, [](std::size_t) { return 1; });
  EXPECT_TRUE(out.empty());
}

TEST(ResolveThreads, ZeroMeansDefaultPositiveIsExplicit) {
  EXPECT_EQ(resolve_threads(0), ThreadPool::default_threads());
  EXPECT_EQ(resolve_threads(3), 3u);
}

}  // namespace
}  // namespace dnj::runtime
