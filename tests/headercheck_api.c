/* Header self-containment gate (C): dnj_c.h must compile as a standalone
 * strict-C11 TU under -Wall -Wextra -Werror — the first thing an FFI
 * consumer's build does. Built as part of the dnj_headercheck object
 * library on every configuration. */
#include "api/dnj_c.h"

/* Touch the version macro so the TU is not entirely vacuous. */
typedef char dnj_headercheck_abi_is_v1[(DNJ_ABI_VERSION_MAJOR == 1) ? 1 : -1];
