// Public API façade suite.
//
// Pins the three contracts the api/ layer makes:
//  1. Byte identity — façade-path outputs (C++ Session/Codec, the async
//     Service view, and the C ABI) are bit-identical to the direct
//     internal calls (jpeg::encode/decode, core::transcode_bytes).
//  2. The Status error model — malformed inputs come back as the
//     documented typed codes through both the C++ façade and the C ABI;
//     no exception escapes either boundary.
//  3. One options representation — EncodeOptions::digest() equals the
//     serve layer's config digest for the equivalent EncoderConfig, and
//     every option field perturbs the digest (so a field added to
//     EncoderConfig without extending append_config_bytes is caught).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "api/convert.hpp"
#include "api/dnj.hpp"
#include "api/dnj_c.h"
#include "core/deepnjpeg.hpp"
#include "core/transcode.hpp"
#include "data/synthetic.hpp"
#include "jpeg/decoder.hpp"
#include "jpeg/encoder.hpp"
#include "serve/digest.hpp"

namespace dnj {
namespace {

data::Dataset test_dataset(int per_class = 4, int channels = 1) {
  data::GeneratorConfig cfg;
  cfg.width = 32;
  cfg.height = 32;
  cfg.channels = channels;
  cfg.num_classes = 4;
  cfg.seed = 0xA11CE;
  return data::SyntheticDatasetGenerator(cfg).generate(per_class);
}

image::Image gray_image() { return test_dataset(1, 1).samples[0].image; }
image::Image rgb_image() { return test_dataset(1, 3).samples[0].image; }

/// (api options, equivalent internal config) pairs covering every field.
struct OptionCase {
  const char* name;
  api::EncodeOptions options;
  jpeg::EncoderConfig config;
};

std::vector<OptionCase> option_cases() {
  std::vector<OptionCase> cases;
  {
    OptionCase c;
    c.name = "defaults";
    cases.push_back(c);
  }
  {
    OptionCase c;
    c.name = "q85-444";
    c.options.quality(85).chroma_420(false);
    c.config.quality = 85;
    c.config.subsampling = jpeg::Subsampling::k444;
    cases.push_back(c);
  }
  {
    OptionCase c;
    c.name = "optimized-restart-comment";
    c.options.quality(60).optimize_huffman(true).restart_interval(4).comment("api");
    c.config.quality = 60;
    c.config.optimize_huffman = true;
    c.config.restart_interval = 4;
    c.config.comment = "api";
    cases.push_back(c);
  }
  {
    OptionCase c;
    c.name = "custom-tables";
    const jpeg::QuantTable luma = jpeg::QuantTable::annex_k_luma().scaled(40);
    const jpeg::QuantTable chroma = jpeg::QuantTable::annex_k_chroma().scaled(40);
    c.options.custom_tables(luma.natural(), chroma.natural()).chroma_420(false);
    c.config.use_custom_tables = true;
    c.config.luma_table = luma;
    c.config.chroma_table = chroma;
    c.config.subsampling = jpeg::Subsampling::k444;
    cases.push_back(c);
  }
  return cases;
}

// ---------------------------------------------------------------------------
// 1. Byte identity: façade == direct calls.
// ---------------------------------------------------------------------------

TEST(ApiCodec, EncodeMatchesDirectCallAcrossConfigs) {
  api::Session session;
  const api::Codec codec = session.codec();
  for (const image::Image& img : {gray_image(), rgb_image()}) {
    for (const OptionCase& c : option_cases()) {
      SCOPED_TRACE(c.name);
      api::Result<std::vector<std::uint8_t>> got = codec.encode(img.view(), c.options);
      ASSERT_TRUE(got.ok()) << got.status().message();
      EXPECT_EQ(got.value(), jpeg::encode(img, c.config));
    }
  }
}

TEST(ApiCodec, DecodeMatchesDirectCall) {
  api::Session session;
  const api::Codec codec = session.codec();
  for (const image::Image& img : {gray_image(), rgb_image()}) {
    const std::vector<std::uint8_t> stream = jpeg::encode(img, {});
    api::Result<api::DecodedImage> got = codec.decode(stream);
    ASSERT_TRUE(got.ok()) << got.status().message();
    const image::Image want = jpeg::decode(stream);
    EXPECT_EQ(got->width, want.width());
    EXPECT_EQ(got->height, want.height());
    EXPECT_EQ(got->channels, want.channels());
    EXPECT_EQ(got->pixels, want.data());
  }
}

TEST(ApiCodec, TranscodeMatchesDirectCall) {
  api::Session session;
  const api::Codec codec = session.codec();
  const std::vector<std::uint8_t> stream = jpeg::encode(rgb_image(), {});
  for (const OptionCase& c : option_cases()) {
    SCOPED_TRACE(c.name);
    api::Result<std::vector<std::uint8_t>> got = codec.transcode(stream, c.options);
    ASSERT_TRUE(got.ok()) << got.status().message();
    EXPECT_EQ(got.value(), core::transcode_bytes(stream, c.config));
  }
}

TEST(ApiCodec, ByteSpanEntryIsZeroCopyEquivalent) {
  // A raw {ptr, size} span decodes identically to the owning vector.
  api::Session session;
  const std::vector<std::uint8_t> stream = jpeg::encode(gray_image(), {});
  api::Result<api::DecodedImage> from_vec = session.codec().decode(stream);
  api::Result<api::DecodedImage> from_span =
      session.codec().decode(api::ByteSpan{stream.data(), stream.size()});
  ASSERT_TRUE(from_vec.ok());
  ASSERT_TRUE(from_span.ok());
  EXPECT_EQ(from_vec->pixels, from_span->pixels);
}

TEST(ApiCodec, InspectReportsHeaderFacts) {
  api::Session session;
  jpeg::EncoderConfig cfg;
  cfg.restart_interval = 2;
  cfg.comment = "hello";
  const image::Image img = rgb_image();
  api::Result<api::StreamInfo> info = session.codec().inspect(jpeg::encode(img, cfg));
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->width, img.width());
  EXPECT_EQ(info->height, img.height());
  EXPECT_EQ(info->components, 3);
  EXPECT_EQ(info->restart_interval, 2);
  EXPECT_EQ(info->comment, "hello");
}

TEST(ApiDesigner, MatchesCoreDesignFlow) {
  const data::Dataset ds = test_dataset();
  api::Session session;
  api::TableDesigner designer = session.designer();
  for (const data::Sample& s : ds.samples)
    ASSERT_TRUE(designer.add(s.image.view(), s.label).ok());
  EXPECT_EQ(designer.image_count(), ds.size());

  api::Result<api::TableDesign> got = designer.design();
  ASSERT_TRUE(got.ok()) << got.status().message();
  const core::DesignResult want = core::DeepNJpeg::design(ds);
  EXPECT_EQ(got->table, want.table.natural());
  EXPECT_EQ(got->t1, want.params.t1);
  EXPECT_EQ(got->t2, want.params.t2);
  EXPECT_EQ(got->images_analyzed, want.profile.images_analyzed);
  EXPECT_EQ(got->blocks_analyzed, want.profile.blocks_analyzed);

  // The designed options reproduce the paper deployment config
  // (core::custom_table_config) byte for byte.
  const image::Image img = ds.samples[0].image;
  api::Result<std::vector<std::uint8_t>> bytes =
      session.codec().encode(img.view(), got->encode_options());
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(bytes.value(), jpeg::encode(img, core::custom_table_config(want.table)));
}

// ---------------------------------------------------------------------------
// 2. Error model: documented codes through the C++ façade.
// ---------------------------------------------------------------------------

TEST(ApiErrors, TruncatedAndGarbageStreamsAreDecodeErrors) {
  api::Session session;
  const api::Codec codec = session.codec();
  std::vector<std::uint8_t> stream = jpeg::encode(gray_image(), {});

  std::vector<std::uint8_t> truncated(stream.begin(),
                                      stream.begin() + static_cast<long>(stream.size() / 2));
  EXPECT_EQ(codec.decode(truncated).status().code(), api::StatusCode::kDecodeError);

  std::vector<std::uint8_t> garbage(257);
  for (std::size_t i = 0; i < garbage.size(); ++i)
    garbage[i] = static_cast<std::uint8_t>(i * 37 + 11);
  EXPECT_EQ(codec.decode(garbage).status().code(), api::StatusCode::kDecodeError);
  EXPECT_EQ(codec.transcode(garbage, {}).status().code(), api::StatusCode::kDecodeError);
  EXPECT_EQ(codec.inspect(garbage).status().code(), api::StatusCode::kDecodeError);

  // Valid prefix, corrupted entropy tail: still a typed decode error.
  stream[stream.size() - 8] ^= 0xFF;
  const api::Status tail = codec.decode(stream).status();
  EXPECT_TRUE(tail.code() == api::StatusCode::kDecodeError || tail.ok());
}

TEST(ApiErrors, EmptyAndNullInputsAreInvalidArguments) {
  api::Session session;
  const api::Codec codec = session.codec();
  EXPECT_EQ(codec.decode(api::ByteSpan{}).status().code(),
            api::StatusCode::kInvalidArgument);
  EXPECT_EQ(codec.encode(api::ImageView{}).status().code(),
            api::StatusCode::kInvalidArgument);
  const std::uint8_t px[4] = {1, 2, 3, 4};
  EXPECT_EQ(codec.encode(api::ImageView{nullptr, 2, 2, 1}).status().code(),
            api::StatusCode::kInvalidArgument);
  EXPECT_EQ(codec.encode(api::ImageView{px, 2, 2, 2}).status().code(),
            api::StatusCode::kInvalidArgument);
  EXPECT_EQ(codec.encode(api::ImageView{px, -2, 2, 1}).status().code(),
            api::StatusCode::kInvalidArgument);
}

TEST(ApiErrors, OversizedDimensionsAreInvalidArguments) {
  api::Session session;
  const std::uint8_t px[1] = {0};
  // Validation rejects on claimed dimensions before touching pixels, so a
  // tiny buffer with absurd claimed extents is safe to pass.
  const api::Status s =
      session.codec().encode(api::ImageView{px, 70000, 8, 1}).status();
  EXPECT_EQ(s.code(), api::StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("65535"), std::string::npos);
}

TEST(ApiErrors, InvalidOptionsAreInvalidArguments) {
  api::Session session;
  const image::Image img = gray_image();
  const api::Codec codec = session.codec();
  EXPECT_EQ(codec.encode(img.view(), api::EncodeOptions().quality(0)).status().code(),
            api::StatusCode::kInvalidArgument);
  EXPECT_EQ(codec.encode(img.view(), api::EncodeOptions().quality(101)).status().code(),
            api::StatusCode::kInvalidArgument);
  EXPECT_EQ(
      codec.encode(img.view(), api::EncodeOptions().restart_interval(-1)).status().code(),
      api::StatusCode::kInvalidArgument);
  const std::vector<std::uint8_t> stream = jpeg::encode(img, {});
  EXPECT_EQ(codec.transcode(stream, api::EncodeOptions().quality(0)).status().code(),
            api::StatusCode::kInvalidArgument);
}

TEST(ApiErrors, DesignerValidatesInputs) {
  api::Session session;
  api::TableDesigner designer = session.designer();
  EXPECT_EQ(designer.design().status().code(), api::StatusCode::kInvalidArgument);
  EXPECT_EQ(designer.add(api::ImageView{}).code(), api::StatusCode::kInvalidArgument);
  const std::uint8_t px[4] = {9, 9, 9, 9};
  EXPECT_EQ(designer.add(api::ImageView{px, 2, 2, 1}, -1).code(),
            api::StatusCode::kInvalidArgument);
  ASSERT_TRUE(designer.add(api::ImageView{px, 2, 2, 1}).ok());
  EXPECT_EQ(designer.design(api::DesignOptions().sample_interval(0)).status().code(),
            api::StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// 3. One options representation: digests.
// ---------------------------------------------------------------------------

TEST(ApiOptions, DigestEqualsServeConfigDigest) {
  for (const OptionCase& c : option_cases()) {
    SCOPED_TRACE(c.name);
    EXPECT_EQ(c.options.digest(), serve::digest_config(c.config));
    // And the conversion round trip is lossless (the serve migration
    // depends on it).
    EXPECT_EQ(serve::digest_config(api::detail::to_config(
                  api::detail::from_config(c.config))),
              serve::digest_config(c.config));
  }
}

TEST(ApiOptions, EveryFieldPerturbsTheDigest) {
  // Guards the single-source-of-truth property of append_config_bytes: a
  // (new or existing) option field that does not reach the canonical
  // serialization leaves the digest unchanged and fails here.
  const api::EncodeOptions base;
  const std::uint64_t d0 = base.digest();
  EXPECT_NE(api::EncodeOptions(base).quality(76).digest(), d0);
  EXPECT_NE(api::EncodeOptions(base).chroma_420(false).digest(), d0);
  EXPECT_NE(api::EncodeOptions(base).optimize_huffman(true).digest(), d0);
  EXPECT_NE(api::EncodeOptions(base).restart_interval(1).digest(), d0);
  EXPECT_NE(api::EncodeOptions(base).comment("x").digest(), d0);
  api::QuantTableValues flat{};
  flat.fill(16);
  api::QuantTableValues flat2 = flat;
  flat2[63] = 17;
  const std::uint64_t dt = api::EncodeOptions(base).custom_tables(flat, flat).digest();
  EXPECT_NE(dt, d0);
  EXPECT_NE(api::EncodeOptions(base).custom_tables(flat2, flat).digest(), dt);
  EXPECT_NE(api::EncodeOptions(base).custom_tables(flat, flat2).digest(), dt);
  // Length-prefixing keeps adjacent variable-width fields unambiguous.
  EXPECT_NE(api::EncodeOptions(base).comment("ab").digest(),
            api::EncodeOptions(base).comment("a").restart_interval(1).digest());
}

// ---------------------------------------------------------------------------
// Async Service view: payload identity + typed refusals.
// ---------------------------------------------------------------------------

TEST(ApiService, RepliesMatchSynchronousCodec) {
  api::Session session;
  const api::Codec codec = session.codec();
  const image::Image img = rgb_image();
  const api::EncodeOptions options = api::EncodeOptions().quality(85).chroma_420(false);
  const std::vector<std::uint8_t> stream = jpeg::encode(img, {});

  api::Service service(api::ServiceOptions().workers(2).max_batch(4));
  api::Pending p_enc = service.encode(img.view(), options);
  api::Pending p_dec = service.decode(stream);
  api::Pending p_x = service.transcode(stream, options);

  api::ServiceReply enc = p_enc.get();
  ASSERT_TRUE(enc.status.ok()) << enc.status.message();
  EXPECT_EQ(enc.bytes, codec.encode(img.view(), options).value());

  api::ServiceReply dec = p_dec.get();
  ASSERT_TRUE(dec.status.ok());
  EXPECT_EQ(dec.image.pixels, codec.decode(stream)->pixels);

  api::ServiceReply x = p_x.get();
  ASSERT_TRUE(x.status.ok());
  EXPECT_EQ(x.bytes, codec.transcode(stream, options).value());

  const api::ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.submitted, 3u);
  EXPECT_EQ(m.completed, 3u);
}

TEST(ApiService, TypedRefusalsAndValidation) {
  api::Service service(api::ServiceOptions().workers(1));
  // Invalid input never reaches the queue.
  api::ServiceReply bad = service.encode(api::ImageView{}, {}).get();
  EXPECT_EQ(bad.status.code(), api::StatusCode::kInvalidArgument);
  EXPECT_EQ(service.metrics().submitted, 0u);
  // Handler-level failure comes back typed (kInternal carries the message).
  std::vector<std::uint8_t> garbage(64, 0x5A);
  api::ServiceReply err = service.decode(garbage).get();
  EXPECT_EQ(err.status.code(), api::StatusCode::kInternal);
  EXPECT_FALSE(err.status.message().empty());
  // Post-shutdown submissions are kShutdown.
  service.shutdown();
  api::ServiceReply late = service.decode(garbage).get();
  EXPECT_EQ(late.status.code(), api::StatusCode::kShutdown);
  // A consumed/empty Pending reports instead of crashing.
  api::Pending empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_EQ(empty.get().status.code(), api::StatusCode::kInternal);
}

// ---------------------------------------------------------------------------
// C ABI: identity, error codes, no exception escapes extern "C".
// ---------------------------------------------------------------------------

struct CSession {
  dnj_session_t* s = dnj_session_new();
  ~CSession() { dnj_session_free(s); }
};

TEST(ApiCAbi, VersionAndStatusNames) {
  EXPECT_EQ(dnj_abi_version(), DNJ_ABI_VERSION);
  EXPECT_STREQ(dnj_status_name(DNJ_OK), "ok");
  EXPECT_STREQ(dnj_status_name(DNJ_INVALID_ARGUMENT), "invalid_argument");
  EXPECT_STREQ(dnj_status_name(DNJ_DECODE_ERROR), "decode_error");
  EXPECT_STREQ(dnj_status_name(static_cast<dnj_status_t>(99)), "unknown");
}

TEST(ApiCAbi, EncodeDecodeTranscodeMatchDirectCalls) {
  CSession cs;
  ASSERT_NE(cs.s, nullptr);
  const image::Image img = gray_image();

  dnj_options_t* opts = dnj_options_new();
  ASSERT_NE(opts, nullptr);
  EXPECT_EQ(dnj_options_set_quality(opts, 85), DNJ_OK);
  EXPECT_EQ(dnj_options_set_chroma_420(opts, 0), DNJ_OK);

  jpeg::EncoderConfig cfg;
  cfg.quality = 85;
  cfg.subsampling = jpeg::Subsampling::k444;
  const std::vector<std::uint8_t> want = jpeg::encode(img, cfg);

  dnj_buffer_t buf = {nullptr, 0};
  ASSERT_EQ(dnj_encode(cs.s, img.data().data(), img.width(), img.height(),
                       img.channels(), opts, &buf),
            DNJ_OK);
  ASSERT_EQ(buf.size, want.size());
  EXPECT_EQ(std::memcmp(buf.data, want.data(), want.size()), 0);

  dnj_image_t decoded = {nullptr, 0, 0, 0};
  ASSERT_EQ(dnj_decode(cs.s, buf.data, buf.size, &decoded), DNJ_OK);
  const image::Image want_img = jpeg::decode(want);
  ASSERT_EQ(decoded.width, want_img.width());
  ASSERT_EQ(decoded.height, want_img.height());
  ASSERT_EQ(decoded.channels, want_img.channels());
  EXPECT_EQ(std::memcmp(decoded.pixels, want_img.data().data(), want_img.data().size()), 0);

  dnj_buffer_t xcoded = {nullptr, 0};
  ASSERT_EQ(dnj_transcode(cs.s, buf.data, buf.size, nullptr, &xcoded), DNJ_OK);
  const std::vector<std::uint8_t> want_x = core::transcode_bytes(want, {});
  ASSERT_EQ(xcoded.size, want_x.size());
  EXPECT_EQ(std::memcmp(xcoded.data, want_x.data(), want_x.size()), 0);

  // Options digest parity across the ABI.
  EXPECT_EQ(dnj_options_digest(opts),
            api::EncodeOptions().quality(85).chroma_420(false).digest());

  dnj_buffer_free(&xcoded);
  dnj_image_free(&decoded);
  dnj_buffer_free(&buf);
  dnj_options_free(opts);
}

TEST(ApiCAbi, ErrorPathsReturnDocumentedCodes) {
  CSession cs;
  ASSERT_NE(cs.s, nullptr);
  EXPECT_STREQ(dnj_last_error(cs.s), "");

  // Garbage and truncated streams: DNJ_DECODE_ERROR, message recorded.
  std::vector<std::uint8_t> garbage(128, 0xAB);
  dnj_image_t out_img = {nullptr, 0, 0, 0};
  EXPECT_EQ(dnj_decode(cs.s, garbage.data(), garbage.size(), &out_img), DNJ_DECODE_ERROR);
  EXPECT_STRNE(dnj_last_error(cs.s), "");
  const std::vector<std::uint8_t> stream = jpeg::encode(gray_image(), {});
  EXPECT_EQ(dnj_decode(cs.s, stream.data(), stream.size() / 2, &out_img),
            DNJ_DECODE_ERROR);
  dnj_buffer_t out_buf = {nullptr, 0};
  EXPECT_EQ(dnj_transcode(cs.s, garbage.data(), garbage.size(), nullptr, &out_buf),
            DNJ_DECODE_ERROR);

  // Invalid image arguments: DNJ_INVALID_ARGUMENT.
  const std::uint8_t px[4] = {0, 0, 0, 0};
  EXPECT_EQ(dnj_encode(cs.s, nullptr, 2, 2, 1, nullptr, &out_buf), DNJ_INVALID_ARGUMENT);
  EXPECT_EQ(dnj_encode(cs.s, px, 70000, 2, 1, nullptr, &out_buf), DNJ_INVALID_ARGUMENT);
  EXPECT_EQ(dnj_encode(cs.s, px, 2, 2, 4, nullptr, &out_buf), DNJ_INVALID_ARGUMENT);

  // Invalid options at the operation boundary.
  dnj_options_t* opts = dnj_options_new();
  EXPECT_EQ(dnj_options_set_quality(opts, 0), DNJ_OK);  // stored, not yet validated
  EXPECT_EQ(dnj_encode(cs.s, px, 2, 2, 1, opts, &out_buf), DNJ_INVALID_ARGUMENT);
  dnj_options_free(opts);

  // NULL handles are inert, never UB.
  EXPECT_EQ(dnj_encode(nullptr, px, 2, 2, 1, nullptr, &out_buf), DNJ_INVALID_ARGUMENT);
  EXPECT_EQ(dnj_options_set_quality(nullptr, 50), DNJ_INVALID_ARGUMENT);
  dnj_buffer_free(nullptr);
  dnj_image_free(nullptr);
  dnj_session_free(nullptr);
  dnj_options_free(nullptr);
  dnj_designer_free(nullptr);
}

TEST(ApiCAbi, DesignerMatchesCppDesigner) {
  const data::Dataset ds = test_dataset();
  dnj_designer_t* designer = dnj_designer_new();
  ASSERT_NE(designer, nullptr);
  EXPECT_EQ(dnj_designer_design(designer, nullptr), DNJ_INVALID_ARGUMENT);
  std::uint16_t table[64] = {};
  EXPECT_EQ(dnj_designer_design(designer, table), DNJ_INVALID_ARGUMENT);  // empty

  for (const data::Sample& s : ds.samples)
    ASSERT_EQ(dnj_designer_add(designer, s.image.data().data(), s.image.width(),
                               s.image.height(), s.image.channels(), s.label),
              DNJ_OK);
  ASSERT_EQ(dnj_designer_design(designer, table), DNJ_OK);

  const core::DesignResult want = core::DeepNJpeg::design(ds);
  for (int k = 0; k < 64; ++k) EXPECT_EQ(table[k], want.table.natural()[static_cast<std::size_t>(k)]);

  // design_options installs the deployment configuration.
  dnj_options_t* opts = dnj_options_new();
  ASSERT_EQ(dnj_designer_design_options(designer, opts), DNJ_OK);
  EXPECT_EQ(dnj_options_digest(opts),
            serve::digest_config(core::custom_table_config(want.table)));
  dnj_options_free(opts);
  dnj_designer_free(designer);
}

// ---------------------------------------------------------------------------
// Multi-tenant registry: CRUD, the determinism reference, served identity.
// ---------------------------------------------------------------------------

TEST(ApiRegistry, CrudValidationAndSharing) {
  api::Registry registry;
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_TRUE(registry.names().empty());
  EXPECT_EQ(registry.put("", {}).status().code(), api::StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.get("nope").status().code(), api::StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.remove("nope").code(), api::StatusCode::kInvalidArgument);

  const api::Result<std::uint64_t> v1 =
      registry.put("alpha", api::EncodeOptions().quality(85), /*quota_bytes=*/4096);
  ASSERT_TRUE(v1.ok()) << v1.status().message();
  const api::Result<std::uint64_t> v2 = registry.put("beta", {});
  ASSERT_TRUE(v2.ok());
  EXPECT_GT(v2.value(), v1.value()) << "versions are registry-global monotonic";
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.names(), (std::vector<std::string>{"alpha", "beta"}));

  // get() reports the NORMALIZED snapshot: custom tables materialized
  // (Annex K when none were given), quality pinned to 50.
  const api::Result<api::TenantInfo> info = registry.get("alpha");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->name, "alpha");
  EXPECT_EQ(info->version, v1.value());
  EXPECT_EQ(info->quota_bytes, 4096u);
  EXPECT_TRUE(info->options.uses_custom_tables());
  EXPECT_EQ(info->options.quality(), 50);

  // Re-registration replaces the entry under a fresh (higher) version.
  const api::Result<std::uint64_t> v3 = registry.put("alpha", {});
  ASSERT_TRUE(v3.ok());
  EXPECT_GT(v3.value(), v2.value());
  EXPECT_EQ(registry.size(), 2u);

  // Copies share the underlying registry (shared-handle semantics).
  api::Registry shared = registry;
  ASSERT_TRUE(shared.remove("beta").ok());
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.names(), (std::vector<std::string>{"alpha"}));
}

TEST(ApiRegistry, EncodeOptionsForIsTheDeterminismReference) {
  api::Registry registry;
  const jpeg::QuantTable luma = jpeg::QuantTable::annex_k_luma().scaled(30);
  const jpeg::QuantTable chroma = jpeg::QuantTable::annex_k_chroma().scaled(30);
  ASSERT_TRUE(registry
                  .put("vision", api::EncodeOptions()
                                     .custom_tables(luma.natural(), chroma.natural())
                                     .chroma_420(false))
                  .ok());

  // Validation at the lookup boundary.
  EXPECT_EQ(registry.encode_options_for("ghost", 50).status().code(),
            api::StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.encode_options_for("vision", 0).status().code(),
            api::StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.encode_options_for("vision", 101).status().code(),
            api::StatusCode::kInvalidArgument);

  // Quality 50 reproduces the base tables verbatim; any other quality is
  // the IJG scaling of the base pair.
  const api::Result<api::EncodeOptions> at50 = registry.encode_options_for("vision", 50);
  ASSERT_TRUE(at50.ok());
  EXPECT_EQ(at50->digest(), registry.get("vision")->options.digest());
  const api::Result<api::EncodeOptions> at80 = registry.encode_options_for("vision", 80);
  ASSERT_TRUE(at80.ok());
  // (quality stays at the normalized 50 — it plays no part in a
  // custom-table encode but does participate in the digest.)
  EXPECT_EQ(at80->digest(), api::EncodeOptions()
                                .quality(50)
                                .custom_tables(luma.scaled(80).natural(),
                                               chroma.scaled(80).natural())
                                .chroma_420(false)
                                .digest());

  // The reference holds end to end: Service::deepn_encode payloads are
  // bit-identical to Codec::encode under encode_options_for.
  api::Session session;
  const image::Image img = rgb_image();
  api::Service service(api::ServiceOptions().workers(2).registry(registry));
  api::ServiceReply served = service.deepn_encode(img.view(), "vision", 80).get();
  ASSERT_TRUE(served.status.ok()) << served.status.message();
  EXPECT_EQ(served.bytes, session.codec().encode(img.view(), at80.value()).value());

  // Typed refusals through the async path.
  EXPECT_EQ(service.deepn_encode(img.view(), "", 50).get().status.code(),
            api::StatusCode::kInvalidArgument);
  EXPECT_EQ(service.deepn_encode(img.view(), "vision", 0).get().status.code(),
            api::StatusCode::kInvalidArgument);
  api::ServiceReply ghost = service.deepn_encode(img.view(), "ghost", 50).get();
  EXPECT_EQ(ghost.status.code(), api::StatusCode::kInternal);
  EXPECT_NE(ghost.status.message().find("unknown tenant"), std::string::npos);
}

TEST(ApiRegistry, ServiceRegistryIsLiveAndMetricsAttributeTenants) {
  const image::Image img = gray_image();
  api::Service service(api::ServiceOptions().workers(2).result_cache(32));

  // No registry passed: the service created a private one, and the handle
  // Service::registry() returns is live — tenants registered through it
  // are visible to requests submitted afterwards.
  api::Registry live = service.registry();
  ASSERT_TRUE(live.put("edge", {}).ok());
  api::ServiceReply first = service.deepn_encode(img.view(), "edge", 75).get();
  ASSERT_TRUE(first.status.ok()) << first.status.message();
  api::ServiceReply again = service.deepn_encode(img.view(), "edge", 75).get();
  ASSERT_TRUE(again.status.ok());
  EXPECT_EQ(again.bytes, first.bytes);

  const api::ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.shard_count, 2u) << "digest sharding defaults on: one shard per worker";
  ASSERT_EQ(m.tenants.size(), 1u);
  EXPECT_EQ(m.tenants[0].name, "edge");
  EXPECT_EQ(m.tenants[0].requests, 2u);
  EXPECT_EQ(m.tenants[0].completed, 2u);
  EXPECT_EQ(m.tenants[0].errors, 0u);
  EXPECT_GE(m.tenants[0].cache_hits, 1u) << "identical repeat must hit the result cache";
  EXPECT_GT(m.cache_bytes, 0u);

  // Unsharded opt-out is honored and reported.
  api::Service flat(api::ServiceOptions().workers(2).shard_by_digest(false));
  EXPECT_EQ(flat.metrics().shard_count, 1u);
}

TEST(ApiCAbi, RegistryLifecycleAndServedIdentity) {
  EXPECT_GE(DNJ_ABI_VERSION_MINOR, 2) << "registry entry points are ABI 1.2";

  dnj_registry_t* reg = dnj_registry_new();
  ASSERT_NE(reg, nullptr);
  EXPECT_STREQ(dnj_registry_last_error(reg), "");
  EXPECT_EQ(dnj_registry_count(reg), 0u);

  // NULL options = defaults (Annex K pair materialized).
  std::uint64_t version = 0;
  ASSERT_EQ(dnj_registry_put(reg, "mobile", nullptr, 2048, &version), DNJ_OK);
  EXPECT_GT(version, 0u);
  EXPECT_EQ(dnj_registry_count(reg), 1u);
  std::uint64_t got_version = 0;
  std::size_t got_quota = 0;
  EXPECT_EQ(dnj_registry_get(reg, "mobile", &got_version, &got_quota), DNJ_OK);
  EXPECT_EQ(got_version, version);
  EXPECT_EQ(got_quota, 2048u);

  // encode_options agrees with the C++ determinism reference.
  api::Registry cpp;
  ASSERT_TRUE(cpp.put("mobile", {}).ok());
  dnj_options_t* out = dnj_options_new();
  ASSERT_EQ(dnj_registry_encode_options(reg, "mobile", 65, out), DNJ_OK);
  EXPECT_EQ(dnj_options_digest(out), cpp.encode_options_for("mobile", 65)->digest());

  // Documented error paths, all firewalled.
  EXPECT_EQ(dnj_registry_put(reg, nullptr, nullptr, 0, nullptr), DNJ_INVALID_ARGUMENT);
  EXPECT_EQ(dnj_registry_put(reg, "", nullptr, 0, nullptr), DNJ_INVALID_ARGUMENT);
  EXPECT_EQ(dnj_registry_get(reg, "ghost", nullptr, nullptr), DNJ_INVALID_ARGUMENT);
  EXPECT_STRNE(dnj_registry_last_error(reg), "");
  EXPECT_EQ(dnj_registry_remove(reg, "ghost"), DNJ_INVALID_ARGUMENT);
  EXPECT_EQ(dnj_registry_encode_options(reg, "mobile", 0, out), DNJ_INVALID_ARGUMENT);
  EXPECT_EQ(dnj_registry_encode_options(reg, "mobile", 50, nullptr), DNJ_INVALID_ARGUMENT);
  EXPECT_EQ(dnj_registry_remove(reg, "mobile"), DNJ_OK);
  EXPECT_EQ(dnj_registry_count(reg), 0u);

  // NULL handles are inert.
  EXPECT_EQ(dnj_registry_put(nullptr, "x", nullptr, 0, nullptr), DNJ_INVALID_ARGUMENT);
  EXPECT_EQ(dnj_registry_count(nullptr), 0u);
  EXPECT_STREQ(dnj_registry_last_error(nullptr), "");
  dnj_registry_free(nullptr);

  // A server built over the registry shares it live (handle freed first —
  // the underlying registry must outlive through the server).
  ASSERT_EQ(dnj_registry_put(reg, "mobile", nullptr, 0, nullptr), DNJ_OK);
  dnj_server_t* server = dnj_server_new_with_registry(1, 8, 1, reg);
  ASSERT_NE(server, nullptr);
  dnj_registry_free(reg);
  dnj_server_free(server);

  dnj_options_free(out);
}

}  // namespace
}  // namespace dnj
