#include <gtest/gtest.h>

#include "core/deepnjpeg.hpp"
#include "core/sa_optimizer.hpp"
#include "data/synthetic.hpp"

namespace dnj::core {
namespace {

data::Dataset sa_dataset() {
  data::GeneratorConfig cfg;
  cfg.seed = 4242;
  return data::SyntheticDatasetGenerator(cfg).generate(4);
}

SaConfig quick_config() {
  SaConfig cfg;
  cfg.iterations = 120;
  cfg.sample_images = 8;
  return cfg;
}

TEST(SaOptimizer, ImprovesCostFromWastefulStart) {
  // Uniform step 2 wastes bits on noise bands: raising any of their steps
  // is an improving move, so the annealer must find a better table.
  const data::Dataset ds = sa_dataset();
  const FrequencyProfile profile = analyze(ds);
  SaConfig cfg = quick_config();
  cfg.iterations = 200;
  const SaResult res = anneal_table(ds, profile, jpeg::QuantTable::uniform(2), cfg);
  EXPECT_LT(res.best_cost, res.initial_cost);
  EXPECT_GT(res.accepted_moves, 0);
  EXPECT_EQ(res.cost_history.size(), 200u);
}

TEST(SaOptimizer, IsDeterministic) {
  const data::Dataset ds = sa_dataset();
  const FrequencyProfile profile = analyze(ds);
  const SaResult a = anneal_table(ds, profile, jpeg::QuantTable::uniform(8), quick_config());
  const SaResult b = anneal_table(ds, profile, jpeg::QuantTable::uniform(8), quick_config());
  EXPECT_EQ(a.table, b.table);
  EXPECT_DOUBLE_EQ(a.best_cost, b.best_cost);
}

TEST(SaOptimizer, StepsStayInBounds) {
  const data::Dataset ds = sa_dataset();
  const FrequencyProfile profile = analyze(ds);
  SaConfig cfg = quick_config();
  cfg.max_step = 64;
  const SaResult res = anneal_table(ds, profile, jpeg::QuantTable::uniform(8), cfg);
  for (int k = 0; k < 64; ++k) {
    EXPECT_GE(res.table.step(k), 1);
    EXPECT_LE(res.table.step(k), 64);
  }
}

TEST(SaOptimizer, AnnealedTableCompressesBetterThanItsStart) {
  const data::Dataset ds = sa_dataset();
  const FrequencyProfile profile = analyze(ds);
  const jpeg::QuantTable start = jpeg::QuantTable::uniform(4);
  SaConfig cfg = quick_config();
  cfg.iterations = 250;
  const SaResult res = anneal_table(ds, profile, start, cfg);
  const std::size_t bytes_start = dataset_scan_bytes(ds, custom_table_config(start));
  const std::size_t bytes_annealed = dataset_scan_bytes(ds, custom_table_config(res.table));
  EXPECT_LT(bytes_annealed, bytes_start);
}

TEST(SaOptimizer, RejectsBadConfig) {
  const data::Dataset ds = sa_dataset();
  const FrequencyProfile profile = analyze(ds);
  SaConfig bad = quick_config();
  bad.iterations = 0;
  EXPECT_THROW(anneal_table(ds, profile, jpeg::QuantTable(), bad), std::invalid_argument);
  bad = quick_config();
  bad.t_start = 1.0;
  bad.t_end = 10.0;
  EXPECT_THROW(anneal_table(ds, profile, jpeg::QuantTable(), bad), std::invalid_argument);
  EXPECT_THROW(anneal_table(data::Dataset{}, profile, jpeg::QuantTable(), quick_config()),
               std::invalid_argument);
}

}  // namespace
}  // namespace dnj::core
