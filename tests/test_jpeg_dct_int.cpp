#include <gtest/gtest.h>

#include <random>

#include "jpeg/dct.hpp"
#include "jpeg/dct_int.hpp"
#include "jpeg/quant.hpp"

namespace dnj::jpeg {
namespace {

image::BlockF random_int_block(std::uint64_t seed, int lo = -128, int hi = 127) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> dist(lo, hi);
  image::BlockF b{};
  for (float& v : b) v = static_cast<float>(dist(rng));
  return b;
}

TEST(DctInt, ConstantBlockDc) {
  image::BlockF b{};
  b.fill(100.0f);
  const image::BlockF f = fdct_int(b);
  EXPECT_NEAR(f[0], 800.0f, 1.0f);
  for (int k = 1; k < 64; ++k) EXPECT_NEAR(f[static_cast<std::size_t>(k)], 0.0f, 1.0f);
}

class DctIntProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DctIntProperty, MatchesFloatReferenceWithinOne) {
  const image::BlockF b = random_int_block(GetParam());
  const image::BlockF ref = fdct_ref(b);
  const image::BlockF fix = fdct_int(b);
  for (int k = 0; k < 64; ++k)
    EXPECT_NEAR(fix[static_cast<std::size_t>(k)], ref[static_cast<std::size_t>(k)], 1.0f)
        << "band " << k;
}

TEST_P(DctIntProperty, InverseMatchesFloatReferenceWithinOne) {
  const image::BlockF f = random_int_block(GetParam() + 99, -500, 500);
  const image::BlockF ref = idct_ref(f);
  const image::BlockF fix = idct_int(f);
  for (int k = 0; k < 64; ++k)
    EXPECT_NEAR(fix[static_cast<std::size_t>(k)], ref[static_cast<std::size_t>(k)], 1.0f);
}

TEST_P(DctIntProperty, RoundTripWithinTwoLevels) {
  const image::BlockF b = random_int_block(GetParam() + 500);
  const image::BlockF rec = idct_int(fdct_int(b));
  for (int k = 0; k < 64; ++k)
    EXPECT_NEAR(rec[static_cast<std::size_t>(k)], b[static_cast<std::size_t>(k)], 2.0f);
}

TEST_P(DctIntProperty, QuantizedPipelineAgreesWithFloat) {
  // After Annex-K quantization the integer and float pipelines must agree
  // on almost every coefficient (allow the odd boundary rounding flip).
  const image::BlockF b = random_int_block(GetParam() + 1000);
  const QuantTable table = QuantTable::annex_k_luma();
  const QuantizedBlock qi = quantize(fdct_int(b), table);
  const QuantizedBlock qf = quantize(fdct_ref(b), table);
  int disagreements = 0;
  for (int k = 0; k < 64; ++k)
    if (qi[static_cast<std::size_t>(k)] != qf[static_cast<std::size_t>(k)]) ++disagreements;
  // A few coefficients can land exactly on a quantizer decision boundary
  // where sub-1 rounding noise flips the level; 4/64 is the empirical cap.
  EXPECT_LE(disagreements, 4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DctIntProperty, ::testing::Range<std::uint64_t>(1, 13));

TEST(DctInt, RawIntegerInterfaceMatchesWrapper) {
  std::int16_t in[64];
  for (int i = 0; i < 64; ++i) in[i] = static_cast<std::int16_t>((i * 7) % 255 - 127);
  std::int32_t out[64];
  fdct_int(in, out);
  image::BlockF fb{};
  for (int i = 0; i < 64; ++i) fb[static_cast<std::size_t>(i)] = static_cast<float>(in[i]);
  const image::BlockF wrapped = fdct_int(fb);
  for (int i = 0; i < 64; ++i)
    EXPECT_FLOAT_EQ(static_cast<float>(out[i]), wrapped[static_cast<std::size_t>(i)]);
}

}  // namespace
}  // namespace dnj::jpeg
