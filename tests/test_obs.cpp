// Observability-plane tests (src/obs): tracer sampling and span parenting,
// ring-buffer wrap, the metrics registry's instrument identity and
// collector lifecycle, HistogramHandle edge cases under merge, and the
// exact Prometheus text rules (label escaping, TYPE lines) foreign
// scrapers depend on.
//
// The tracer is a process-wide singleton, so every test that enables
// sampling restores sample_every(0) and clear()s the rings before it
// returns — the suites run in one process.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dnj::obs {
namespace {

/// Scoped sampling override: force a rate, clear rings, undo on exit.
struct SamplingGuard {
  explicit SamplingGuard(std::uint32_t every) {
    Tracer::instance().set_sample_every(every);
    Tracer::instance().clear();
  }
  ~SamplingGuard() {
    Tracer::instance().set_sample_every(0);
    Tracer::instance().clear();
  }
};

std::vector<SpanRecord> spans_of(std::uint64_t trace_id) {
  std::vector<SpanRecord> out;
  for (const SpanRecord& s : Tracer::instance().dump())
    if (s.trace_id == trace_id) out.push_back(s);
  return out;
}

TEST(Tracer, DisabledSamplingNeverStartsATrace) {
  SamplingGuard guard(0);
  EXPECT_FALSE(Tracer::instance().enabled());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(Tracer::instance().start_trace(), 0u);
  // Spans on an unsampled thread are inert and record nothing.
  {
    TraceScope scope(0, 0);
    Span span(Stage::kBatch, 7);
    EXPECT_FALSE(span.active());
  }
  record_span(0, 0, Stage::kQueueWait, 10, 20);
  EXPECT_TRUE(Tracer::instance().dump().empty());
}

TEST(Tracer, SampleEveryOneTracesEveryRequestWithUniqueIds) {
  SamplingGuard guard(1);
  const std::uint64_t a = Tracer::instance().start_trace();
  const std::uint64_t b = Tracer::instance().start_trace();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

TEST(Tracer, SampleEveryNTracesRoughlyOneInN) {
  SamplingGuard guard(8);
  int sampled = 0;
  for (int i = 0; i < 800; ++i)
    if (Tracer::instance().start_trace() != 0) ++sampled;
  // The decision hashes the trace id, so the rate concentrates around
  // 1/8; accept a generous band to stay hash-function-agnostic.
  EXPECT_GT(sampled, 800 / 8 / 4);
  EXPECT_LT(sampled, 800 / 2);
}

TEST(Tracer, NestedSpansParentToTheEnclosingSpan) {
  SamplingGuard guard(1);
  const std::uint64_t trace = Tracer::instance().start_trace();
  ASSERT_NE(trace, 0u);
  const std::uint32_t root = Tracer::instance().next_span_id();

  std::uint32_t outer_id = 0;
  {
    TraceScope scope(trace, root);
    Span outer(Stage::kBatch, 3);
    ASSERT_TRUE(outer.active());
    outer_id = outer.id();
    Span inner(Stage::kEncodeDct);
    ASSERT_TRUE(inner.active());
  }

  const std::vector<SpanRecord> spans = spans_of(trace);
  ASSERT_EQ(spans.size(), 2u);
  const auto outer_rec = std::find_if(spans.begin(), spans.end(), [&](const SpanRecord& s) {
    return s.span_id == outer_id;
  });
  ASSERT_NE(outer_rec, spans.end());
  EXPECT_EQ(outer_rec->parent_id, root);
  EXPECT_EQ(outer_rec->stage, Stage::kBatch);
  EXPECT_EQ(outer_rec->tag, 3u);
  const auto inner_rec = std::find_if(spans.begin(), spans.end(), [&](const SpanRecord& s) {
    return s.span_id != outer_id;
  });
  ASSERT_NE(inner_rec, spans.end());
  EXPECT_EQ(inner_rec->parent_id, outer_id);
  EXPECT_LE(outer_rec->start_ns, inner_rec->start_ns);
  EXPECT_GE(outer_rec->end_ns, inner_rec->end_ns);
}

TEST(Tracer, RecordSpanAsKeepsTheCallerAllocatedId) {
  SamplingGuard guard(1);
  const std::uint64_t trace = Tracer::instance().start_trace();
  ASSERT_NE(trace, 0u);
  const std::uint32_t root = Tracer::instance().next_span_id();
  record_span_as(trace, root, 0, Stage::kRequest, 100, 900, 42);
  record_span(trace, root, Stage::kQueueWait, 150, 300);

  const std::vector<SpanRecord> spans = spans_of(trace);
  ASSERT_EQ(spans.size(), 2u);
  // The root record carries exactly the id its child points at.
  EXPECT_EQ(spans[0].span_id, root);
  EXPECT_EQ(spans[0].parent_id, 0u);
  EXPECT_EQ(spans[0].tag, 42u);
  EXPECT_EQ(spans[1].parent_id, root);
  EXPECT_NE(spans[1].span_id, root);
}

TEST(Tracer, RingWrapsKeepingTheNewestRecords) {
  SamplingGuard guard(1);
  // Capacity applies to rings created afterwards — record from a fresh
  // thread so this test owns a brand-new minimum-size ring.
  Tracer::instance().set_ring_capacity(64);
  const std::uint64_t trace = Tracer::instance().start_trace();
  ASSERT_NE(trace, 0u);
  std::thread([&] {
    for (std::uint64_t i = 0; i < 200; ++i)
      record_span(trace, 0, Stage::kBatch, i, i + 1, /*tag=*/i);
  }).join();
  Tracer::instance().set_ring_capacity(4096);

  const std::vector<SpanRecord> spans = spans_of(trace);
  ASSERT_EQ(spans.size(), 64u);
  // Oldest overwritten first: exactly tags 136..199 survive.
  for (const SpanRecord& s : spans) EXPECT_GE(s.tag, 200u - 64u);
}

TEST(Tracer, ConcurrentRecordAndDumpIsSafe) {
  SamplingGuard guard(1);
  const std::uint64_t trace = Tracer::instance().start_trace();
  ASSERT_NE(trace, 0u);
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < 500; ++i)
        record_span(trace, 0, Stage::kEncodeEntropy, i, i + 1,
                    static_cast<std::uint64_t>(t));
    });
  }
  std::size_t seen = 0;
  for (int i = 0; i < 50; ++i) seen = std::max(seen, Tracer::instance().dump().size());
  for (std::thread& w : writers) w.join();
  EXPECT_GE(Tracer::instance().dump().size(), seen);
  // The JSON surface stays well-formed under whatever was captured.
  const std::string json = Tracer::instance().dump_json();
  EXPECT_NE(json.find("\"clock\":\"steady_ns\""), std::string::npos);
  EXPECT_EQ(json.back(), '}');
}

TEST(HistogramHandle, EmptyHandleReportsZerosAndLowQuantile) {
  HistogramHandle h(0.0, 100.0, 10);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.quantile(0.99), 0.0);  // empty -> lo()
}

TEST(HistogramHandle, SingleBucketKeepsExactSumAndMax) {
  HistogramHandle h(0.0, 10.0, 1);
  h.observe(2.5);
  h.observe(7.25);
  h.observe(123.0);  // saturates into the single bin, sum/max stay exact
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 2.5 + 7.25 + 123.0);
  EXPECT_DOUBLE_EQ(h.max(), 123.0);
  const double q = h.quantile(0.5);
  EXPECT_GE(q, 0.0);
  EXPECT_LE(q, 10.0);
}

TEST(HistogramHandle, MismatchedGeometryMergeThrowsAndMutatesNothing) {
  HistogramHandle h(0.0, 100.0, 10);
  h.observe(50.0);
  stats::Histogram other(0.0, 100.0, 20);  // different bin count
  other.add(10.0);
  EXPECT_THROW(h.merge_from(other), std::invalid_argument);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 50.0);
  EXPECT_DOUBLE_EQ(h.max(), 50.0);
}

TEST(HistogramHandle, CompatibleMergeAddsCountsAndEstimates) {
  HistogramHandle h(0.0, 100.0, 10);
  h.observe(5.0);
  stats::Histogram other(0.0, 100.0, 10);
  other.add(95.0);
  other.add(95.0);
  h.merge_from(other);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 5.0 + 2 * 95.0);  // bin centre of [90,100) is 95
  EXPECT_DOUBLE_EQ(h.max(), 100.0);           // right edge estimate
}

TEST(Registry, SameNameAndLabelsResolveToTheSameInstrument) {
  Registry reg;
  Counter& a = reg.counter("requests_total", {{"op", "encode"}});
  Counter& b = reg.counter("requests_total", {{"op", "encode"}});
  Counter& c = reg.counter("requests_total", {{"op", "decode"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(c.value(), 0u);
}

TEST(Registry, CollectorsAppearUntilRemoved) {
  Registry reg;
  const std::uint64_t id = reg.add_collector([](std::vector<Sample>& out) {
    Sample s;
    s.name = "from_collector";
    s.value = 7.0;
    s.kind = SampleKind::kCounter;
    out.push_back(std::move(s));
  });
  EXPECT_NE(reg.render_prometheus().find("from_collector 7"), std::string::npos);
  reg.remove_collector(id);
  EXPECT_EQ(reg.render_prometheus().find("from_collector"), std::string::npos);
}

TEST(Registry, PrometheusEscapesLabelValues) {
  EXPECT_EQ(Registry::escape_label_value("plain"), "plain");
  EXPECT_EQ(Registry::escape_label_value("a\"b"), "a\\\"b");
  EXPECT_EQ(Registry::escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(Registry::escape_label_value("a\nb"), "a\\nb");

  Registry reg;
  reg.counter("tenant_requests_total", {{"tenant", "ev\"il\\te\nnant"}}).inc();
  const std::string text = reg.render_prometheus();
  EXPECT_NE(
      text.find("tenant_requests_total{tenant=\"ev\\\"il\\\\te\\nnant\"} 1"),
      std::string::npos);
}

TEST(Registry, PrometheusRendersTypedSeriesDeterministically) {
  Registry reg;
  reg.counter("zeta_total").inc(2);
  reg.gauge("alpha_value").set(1.5);
  reg.histogram("lat_us", {}, 0.0, 1000.0, 50).observe(10.0);
  const std::string text = reg.render_prometheus();

  EXPECT_NE(text.find("# TYPE alpha_value gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE zeta_total counter"), std::string::npos);
  EXPECT_NE(text.find("zeta_total 2\n"), std::string::npos);
  // Histograms expand to quantile-labelled gauges plus _sum/_count/_max.
  EXPECT_NE(text.find("lat_us{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("lat_us_count 1"), std::string::npos);
  EXPECT_NE(text.find("lat_us_sum 10"), std::string::npos);
  EXPECT_NE(text.find("lat_us_max 10"), std::string::npos);
  // Deterministic order: alpha series render before zeta series.
  EXPECT_LT(text.find("alpha_value"), text.find("zeta_total"));
  // Render twice -> identical bytes (sorting is part of the contract).
  EXPECT_EQ(text, reg.render_prometheus());
}

TEST(Registry, JsonRenderIsAnObjectWithAMetricsArray) {
  Registry reg;
  reg.counter("a_total", {{"k", "v"}}).inc();
  const std::string json = reg.render_json();
  EXPECT_EQ(json.find("{\"metrics\":["), 0u);
  EXPECT_NE(json.find("\"name\":\"a_total\""), std::string::npos);
  EXPECT_NE(json.find("\"k\":\"v\""), std::string::npos);
}

}  // namespace
}  // namespace dnj::obs
