#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "nn/metrics.hpp"
#include "nn/models.hpp"
#include "nn/trainer.hpp"

namespace dnj::nn {
namespace {

TEST(ConfusionMatrix, CountsAndDerivedMetrics) {
  ConfusionMatrix cm(3);
  // Class 0: 2 right, 1 confused as 2. Class 1: all right. Class 2: 1 as 0.
  cm.add(0, 0);
  cm.add(0, 0);
  cm.add(0, 2);
  cm.add(1, 1);
  cm.add(1, 1);
  cm.add(2, 0);
  cm.add(2, 2);
  EXPECT_EQ(cm.total(), 7u);
  EXPECT_EQ(cm.count(0, 2), 1u);
  EXPECT_NEAR(cm.accuracy(), 5.0 / 7.0, 1e-12);
  EXPECT_NEAR(cm.recall(0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(cm.recall(1), 1.0, 1e-12);
  EXPECT_NEAR(cm.precision(0), 2.0 / 3.0, 1e-12);  // one class-2 sample absorbed
  EXPECT_EQ(cm.dominant_confusion(0), 2);
  EXPECT_EQ(cm.dominant_confusion(1), -1);
}

TEST(ConfusionMatrix, RejectsBadInput) {
  EXPECT_THROW(ConfusionMatrix(1), std::invalid_argument);
  ConfusionMatrix cm(2);
  EXPECT_THROW(cm.add(2, 0), std::invalid_argument);
  EXPECT_THROW(cm.add(0, -1), std::invalid_argument);
}

TEST(ConfusionMatrix, EmptyMatrixIsZero) {
  ConfusionMatrix cm(4);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(cm.recall(0), 0.0);
  EXPECT_DOUBLE_EQ(cm.precision(0), 0.0);
}

TEST(ConfusionMatrix, AgreesWithEvaluate) {
  data::GeneratorConfig gc;
  gc.num_classes = 4;
  gc.seed = 31;
  const data::SyntheticDatasetGenerator gen(gc);
  const auto [train_set, test_set] = gen.generate_split(25, 10);
  LayerPtr model = make_model(ModelKind::kMiniAlexNet, 1, 32, 4, 5);
  TrainConfig cfg;
  cfg.epochs = 3;
  train(*model, train_set, nullptr, cfg);

  const ConfusionMatrix cm = confusion_matrix(*model, test_set);
  EXPECT_NEAR(cm.accuracy(), evaluate(*model, test_set), 1e-12);
  EXPECT_EQ(cm.total(), test_set.size());
  // Per-class recalls weighted by class counts reproduce the accuracy.
  double weighted = 0.0;
  const auto counts = test_set.class_counts();
  for (int c = 0; c < 4; ++c)
    weighted += cm.recall(c) * counts[static_cast<std::size_t>(c)];
  EXPECT_NEAR(weighted / static_cast<double>(test_set.size()), cm.accuracy(), 1e-12);
}

}  // namespace
}  // namespace dnj::nn
