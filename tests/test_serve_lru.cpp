// serve::LruCache — entry-count LRU semantics plus the byte/quota
// accounting the multi-tenant result cache leans on: cache-wide byte
// ceilings, per-tenant byte quotas (a tenant over quota evicts its OWN
// least-recently-used entries, never other tenants'), and the oversize
// rule (a value that alone exceeds a budget is never admitted).
#include "serve/lru_cache.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace {

using Cache = dnj::serve::LruCache<int, std::string>;

TEST(ServeLru, EvictsLeastRecentlyUsedInOrder) {
  Cache cache(2);
  cache.put(1, "one");
  cache.put(2, "two");
  std::string out;
  ASSERT_TRUE(cache.get(1, &out));  // promote 1; 2 is now LRU
  cache.put(3, "three");            // evicts 2
  EXPECT_FALSE(cache.get(2, &out));
  EXPECT_TRUE(cache.get(1, &out));
  EXPECT_TRUE(cache.get(3, &out));
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ServeLru, ZeroCapacityDisablesEverything) {
  Cache cache(0);
  EXPECT_FALSE(cache.enabled());
  cache.put(1, "one");
  cache.put(1, "one", 100, 7);
  std::string out;
  EXPECT_FALSE(cache.get(1, &out));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
}

TEST(ServeLru, ByteAccountingTracksInsertRefreshAndEvict) {
  Cache cache(8, /*max_bytes=*/100);
  cache.put(1, "a", 40, 1);
  cache.put(2, "b", 40, 2);
  EXPECT_EQ(cache.bytes(), 80u);
  EXPECT_EQ(cache.tenant_bytes(1), 40u);
  EXPECT_EQ(cache.tenant_bytes(2), 40u);

  // Refresh re-records the size (and may move the entry between tenants).
  cache.put(1, "a2", 10, 1);
  EXPECT_EQ(cache.bytes(), 50u);
  EXPECT_EQ(cache.tenant_bytes(1), 10u);

  // 70 incoming + 50 held > 100: evicts the LRU (key 2) to fit.
  cache.put(3, "c", 70, 3);
  EXPECT_EQ(cache.bytes(), 80u);
  EXPECT_EQ(cache.tenant_bytes(2), 0u);
  std::string out;
  EXPECT_FALSE(cache.get(2, &out));
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(ServeLru, OversizeValueIsNeverAdmitted) {
  Cache cache(8, /*max_bytes=*/100);
  cache.put(1, "small", 30, 1);
  cache.put(2, "huge", 101, 1);  // alone exceeds the ceiling: not cached
  std::string out;
  EXPECT_FALSE(cache.get(2, &out));
  EXPECT_TRUE(cache.get(1, &out));  // and nothing was evicted to make room
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_EQ(cache.bytes(), 30u);
}

TEST(ServeLru, TenantQuotaEvictsOwnEntriesOnly) {
  Cache cache(16, /*max_bytes=*/0, /*tenant_quota_bytes=*/100);
  cache.put(1, "t1-a", 60, 1);
  cache.put(2, "t2-a", 60, 2);
  cache.put(3, "t1-b", 60, 1);  // tenant 1 would hold 120 > 100: evicts key 1
  std::string out;
  EXPECT_FALSE(cache.get(1, &out));
  EXPECT_TRUE(cache.get(2, &out)) << "tenant 2 must be untouched";
  EXPECT_TRUE(cache.get(3, &out));
  EXPECT_EQ(cache.quota_evictions(), 1u);
  EXPECT_EQ(cache.evictions(), 0u) << "quota evictions are counted separately";
  EXPECT_EQ(cache.tenant_bytes(1), 60u);
  EXPECT_EQ(cache.tenant_bytes(2), 60u);
}

TEST(ServeLru, TenantQuotaEvictsOldestOfThatTenant) {
  Cache cache(16, 0, /*tenant_quota_bytes=*/100);
  cache.put(1, "t1-old", 40, 1);
  cache.put(2, "t2", 40, 2);
  cache.put(3, "t1-new", 40, 1);
  // Tenant 1 holds 80; +40 exceeds 100: its OLDEST entry (key 1) must go,
  // even though tenant 2's key 2 is between them in global LRU order.
  cache.put(4, "t1-newer", 40, 1);
  std::string out;
  EXPECT_FALSE(cache.get(1, &out));
  EXPECT_TRUE(cache.get(2, &out));
  EXPECT_TRUE(cache.get(3, &out));
  EXPECT_TRUE(cache.get(4, &out));
  EXPECT_EQ(cache.quota_evictions(), 1u);
}

TEST(ServeLru, QuotaLargerThanIncomingValueBlocksAdmission) {
  Cache cache(16, 0, /*tenant_quota_bytes=*/50);
  cache.put(1, "too-big", 51, 1);  // alone over quota: never cached
  std::string out;
  EXPECT_FALSE(cache.get(1, &out));
  EXPECT_EQ(cache.quota_evictions(), 0u);
}

TEST(ServeLru, ByteBlindEntriesIgnoreQuotas) {
  // The scaled-table caches use the two-argument put (zero recorded
  // bytes): quotas and byte ceilings must never evict those.
  Cache cache(16, /*max_bytes=*/10, /*tenant_quota_bytes=*/10);
  cache.put(1, "blind-a");
  cache.put(2, "blind-b");
  cache.put(3, "sized", 8, 1);
  cache.put(4, "sized2", 8, 1);  // tenant 1 over quota: evicts key 3 only
  std::string out;
  EXPECT_TRUE(cache.get(1, &out));
  EXPECT_TRUE(cache.get(2, &out));
  EXPECT_FALSE(cache.get(3, &out));
  EXPECT_TRUE(cache.get(4, &out));
  EXPECT_EQ(cache.quota_evictions(), 1u);
  EXPECT_EQ(cache.bytes(), 8u);
}

TEST(ServeLru, RefreshReEnforcesBudgets) {
  Cache cache(16, /*max_bytes=*/100);
  cache.put(1, "a", 10, 1);
  cache.put(2, "b", 10, 2);
  cache.put(3, "c", 10, 3);
  // Refreshing key 3 from 10 to 95 bytes pushes the total over 100: the
  // LRU tail (keys 1 then 2) must fall until the ceiling holds again.
  cache.put(3, "c-big", 95, 3);
  EXPECT_LE(cache.bytes(), 100u);
  std::string out;
  EXPECT_TRUE(cache.get(3, &out));
  EXPECT_EQ(out, "c-big");
}

TEST(ServeLru, ConcurrentMixedTrafficStaysConsistent) {
  // TSan-targeted hammer: four threads, overlapping keys, sized and
  // byte-blind puts. Consistency here means no crash/race and coherent
  // final accounting (bytes <= ceiling, size <= capacity).
  Cache cache(32, /*max_bytes=*/10000, /*tenant_quota_bytes=*/4000);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      std::string out;
      for (int i = 0; i < 2000; ++i) {
        const int key = (t * 17 + i) % 64;
        if (i % 3 == 0)
          cache.put(key, "v" + std::to_string(key), 100 + (key % 5) * 50,
                    static_cast<std::uint64_t>(t % 2 + 1));
        else if (i % 3 == 1)
          cache.put(key, "blind");
        else
          cache.get(key, &out);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_LE(cache.size(), 32u);
  EXPECT_LE(cache.bytes(), 10000u);
  EXPECT_LE(cache.tenant_bytes(1), 4000u);
  EXPECT_LE(cache.tenant_bytes(2), 4000u);
  EXPECT_EQ(cache.hits() + cache.misses(), 4u * 666u);  // i % 3 == 2 per thread
}

}  // namespace
