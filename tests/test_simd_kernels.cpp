// Exhaustive scalar-vs-SIMD bit-equivalence suite for the kernel layer.
//
// Every kernel in simd::KernelTable is run at each supported SIMD level and
// compared bit-for-bit (memcmp on the raw output bytes, not EXPECT_NEAR)
// against the scalar level on the same inputs — odd block counts, plane
// sizes that exercise edge replication, quantizer boundary values, GEMM
// shapes that hit every vector-tail path. This is the enforcement half of
// the determinism contract documented in simd/dispatch.hpp.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "image/blocks.hpp"
#include "image/color.hpp"
#include "image/image.hpp"
#include "image/metrics.hpp"
#include "jpeg/dct.hpp"
#include "jpeg/quant.hpp"
#include "simd/dispatch.hpp"

namespace dnj::simd {
namespace {

std::vector<Level> simd_levels() {
  std::vector<Level> out;
  for (Level l : {Level::kSse2, Level::kAvx2})
    if (set_level(l)) out.push_back(l);
  set_level(max_supported_level());
  return out;
}

/// Runs `fn` once per supported SIMD level (scalar excluded) with the level
/// pinned, restoring the auto level afterwards.
template <typename Fn>
void for_each_simd_level(Fn&& fn) {
  for (Level l : simd_levels()) {
    ASSERT_TRUE(set_level(l));
    fn(l);
  }
  set_level(max_supported_level());
}

std::vector<float> random_blocks(std::size_t count, std::uint64_t seed,
                                 float lo = -2048.0f, float hi = 2048.0f) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> dist(lo, hi);
  std::vector<float> out(count * 64);
  for (float& v : out) v = dist(rng);
  return out;
}

TEST(SimdKernels, FdctBatchMatchesScalarBitExact) {
  for (std::size_t count : {std::size_t{1}, std::size_t{3}, std::size_t{17},
                            std::size_t{64}}) {
    const std::vector<float> input = random_blocks(count, 0xF0 + count, -128.0f, 127.0f);
    std::vector<float> expect = input;
    jpeg::fdct_batch_scalar(expect.data(), count);
    for_each_simd_level([&](Level l) {
      std::vector<float> got = input;
      kernels().fdct_batch(got.data(), count);
      EXPECT_EQ(0, std::memcmp(got.data(), expect.data(), got.size() * sizeof(float)))
          << "level=" << level_name(l) << " count=" << count;
    });
  }
}

TEST(SimdKernels, IdctBatchMatchesScalarBitExact) {
  for (std::size_t count : {std::size_t{1}, std::size_t{5}, std::size_t{33}}) {
    const std::vector<float> input = random_blocks(count, 0x1D + count);
    std::vector<float> expect = input;
    jpeg::idct_batch_scalar(expect.data(), count);
    for_each_simd_level([&](Level l) {
      std::vector<float> got = input;
      kernels().idct_batch(got.data(), count);
      EXPECT_EQ(0, std::memcmp(got.data(), expect.data(), got.size() * sizeof(float)))
          << "level=" << level_name(l) << " count=" << count;
    });
  }
}

TEST(SimdKernels, QuantizeZigzagMatchesScalarIncludingBoundaries) {
  const std::size_t count = 9;
  std::vector<float> coeffs = random_blocks(count, 0x9A);
  // Round-half-even boundaries and clamp extremes in the first block.
  const float specials[] = {0.5f,      -0.5f,   1.5f,     2.5f,    -2.5f,
                            32767.4f,  32768.0f, 40000.0f, -40000.0f, -32768.5f,
                            1e30f,     -1e30f,  0.0f,     -0.0f,   127.5f,
                            -127.5f};
  for (std::size_t i = 0; i < sizeof(specials) / sizeof(specials[0]); ++i)
    coeffs[i] = specials[i];
  for (const jpeg::QuantTable& table :
       {jpeg::QuantTable::annex_k_luma(), jpeg::QuantTable::uniform(1),
        jpeg::QuantTable::uniform(255)}) {
    const jpeg::ReciprocalTable recip(table);
    std::vector<std::int16_t> expect(count * 64);
    set_level(Level::kScalar);
    jpeg::quantize_zigzag_batch(coeffs.data(), count, recip, expect.data());
    for_each_simd_level([&](Level l) {
      std::vector<std::int16_t> got(count * 64);
      jpeg::quantize_zigzag_batch(coeffs.data(), count, recip, got.data());
      EXPECT_EQ(got, expect) << "level=" << level_name(l);
    });
  }
}

TEST(SimdKernels, DequantizeBatchMatchesScalar) {
  const std::size_t count = 7;
  std::mt19937_64 rng(0xDE);
  std::vector<std::int16_t> q(count * 64);
  for (std::int16_t& v : q) v = static_cast<std::int16_t>(rng());
  const jpeg::QuantTable table = jpeg::QuantTable::annex_k_luma().scaled(35);
  std::vector<float> expect(count * 64);
  set_level(Level::kScalar);
  jpeg::dequantize_batch(q.data(), count, table, expect.data());
  for_each_simd_level([&](Level l) {
    std::vector<float> got(count * 64);
    jpeg::dequantize_batch(q.data(), count, table, got.data());
    EXPECT_EQ(0, std::memcmp(got.data(), expect.data(), got.size() * sizeof(float)))
        << "level=" << level_name(l);
  });
}

TEST(SimdKernels, TileAndUntileMatchScalarOnOddSizes) {
  // Sizes that exercise full blocks, right/bottom edge replication, and
  // grids wider than the padded plane (the 4:2:0 luma case).
  const struct {
    int w, h, gbx, gby;
  } cases[] = {{32, 32, 4, 4}, {13, 9, 2, 2}, {8, 8, 2, 2}, {31, 17, 4, 3}};
  for (const auto& c : cases) {
    image::PlaneF plane(c.w, c.h);
    std::mt19937_64 rng(0x71E + c.w);
    std::uniform_real_distribution<float> dist(0.0f, 255.0f);
    for (float& v : plane.data()) v = dist(rng);

    std::vector<float> expect(static_cast<std::size_t>(c.gbx) * c.gby * 64);
    set_level(Level::kScalar);
    image::tile_blocks_into(plane, c.gbx, c.gby, expect.data(), -128.0f);
    image::PlaneF expect_back(c.w, c.h);
    image::untile_blocks_from(expect.data(), c.gbx, c.gby, expect_back, 128.0f);

    for_each_simd_level([&](Level l) {
      std::vector<float> got(expect.size());
      image::tile_blocks_into(plane, c.gbx, c.gby, got.data(), -128.0f);
      EXPECT_EQ(0, std::memcmp(got.data(), expect.data(), got.size() * sizeof(float)))
          << "tile level=" << level_name(l) << " w=" << c.w << " h=" << c.h;
      image::PlaneF back(c.w, c.h);
      image::untile_blocks_from(got.data(), c.gbx, c.gby, back, 128.0f);
      EXPECT_EQ(back.data(), expect_back.data())
          << "untile level=" << level_name(l) << " w=" << c.w << " h=" << c.h;
    });
  }
}

TEST(SimdKernels, TileImageMatchesScalarForGrayAndRgb) {
  for (int channels : {1, 3}) {
    image::Image img(29, 13, channels);
    std::mt19937_64 rng(0x3C + channels);
    for (std::uint8_t& v : img.data()) v = static_cast<std::uint8_t>(rng());
    const int gbx = 4, gby = 2;
    for (int c = 0; c < channels; ++c) {
      std::vector<float> expect(static_cast<std::size_t>(gbx) * gby * 64);
      set_level(Level::kScalar);
      image::tile_image_blocks_into(img, c, gbx, gby, expect.data(), -128.0f);
      for_each_simd_level([&](Level l) {
        std::vector<float> got(expect.size());
        image::tile_image_blocks_into(img, c, gbx, gby, got.data(), -128.0f);
        EXPECT_EQ(0,
                  std::memcmp(got.data(), expect.data(), got.size() * sizeof(float)))
            << "level=" << level_name(l) << " channels=" << channels << " c=" << c;
      });
    }
  }
}

TEST(SimdKernels, ColorTransformsMatchScalarBitExact) {
  // Odd width forces the vector tail; the pixel values sweep all bytes.
  image::Image img(37, 11, 3);
  std::mt19937_64 rng(0xC0102);
  for (std::uint8_t& v : img.data()) v = static_cast<std::uint8_t>(rng());

  set_level(Level::kScalar);
  const image::YCbCrPlanes expect = image::to_ycbcr(img);
  const image::Image expect_rgb = image::to_rgb(expect, img.width(), img.height());

  for_each_simd_level([&](Level l) {
    const image::YCbCrPlanes got = image::to_ycbcr(img);
    EXPECT_EQ(got.y.data(), expect.y.data()) << "level=" << level_name(l);
    EXPECT_EQ(got.cb.data(), expect.cb.data()) << "level=" << level_name(l);
    EXPECT_EQ(got.cr.data(), expect.cr.data()) << "level=" << level_name(l);
    const image::Image rgb = image::to_rgb(got, img.width(), img.height());
    EXPECT_EQ(rgb, expect_rgb) << "level=" << level_name(l);
  });
}

TEST(SimdKernels, PlaneToU8MatchesClampU8) {
  // from_plane on a grayscale image dispatches the row kernel; values cover
  // negatives, overshoots, and .5 ties (round-half-even).
  image::PlaneF plane(21, 3);
  std::mt19937_64 rng(0xF8);
  std::uniform_real_distribution<float> dist(-64.0f, 320.0f);
  for (float& v : plane.data()) v = dist(rng);
  plane.data()[0] = 0.5f;
  plane.data()[1] = 1.5f;
  plane.data()[2] = 254.5f;
  plane.data()[3] = 255.5f;
  plane.data()[4] = -0.5f;

  image::Image expect(21, 3, 1);
  set_level(Level::kScalar);
  image::from_plane(plane, expect, 0);
  for_each_simd_level([&](Level l) {
    image::Image got(21, 3, 1);
    image::from_plane(plane, got, 0);
    EXPECT_EQ(got, expect) << "level=" << level_name(l);
  });
}

TEST(SimdKernels, MseIsExactAndLevelIndependent) {
  image::Image a(45, 23, 3), b(45, 23, 3);
  std::mt19937_64 rng(0x55E);
  for (std::uint8_t& v : a.data()) v = static_cast<std::uint8_t>(rng());
  for (std::uint8_t& v : b.data()) v = static_cast<std::uint8_t>(rng());

  // Reference: exact integer sum.
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    const int d = static_cast<int>(a.data()[i]) - static_cast<int>(b.data()[i]);
    sum += static_cast<std::uint64_t>(d * d);
  }
  const double expect =
      static_cast<double>(sum) / static_cast<double>(a.data().size());

  set_level(Level::kScalar);
  EXPECT_EQ(image::mse(a, b), expect);
  for_each_simd_level([&](Level l) {
    EXPECT_EQ(image::mse(a, b), expect) << "level=" << level_name(l);
  });
}

TEST(SimdKernels, QuantErrorBlockMatchesScalar) {
  const std::vector<float> block = random_blocks(1, 0x5AE);
  double steps[64];
  std::mt19937_64 rng(0x5AF);
  for (double& s : steps) s = static_cast<double>(1 + rng() % 255);
  double expect[64];
  set_level(Level::kScalar);
  kernels().quant_error_block(block.data(), steps, expect);
  for_each_simd_level([&](Level l) {
    double got[64];
    kernels().quant_error_block(block.data(), steps, got);
    EXPECT_EQ(0, std::memcmp(got, expect, sizeof(got))) << "level=" << level_name(l);
  });
}

TEST(SimdKernels, GemmAccMatchesScalarOnTailShapes) {
  // Shapes hit the 4x(2W) register tile, the single-row tail, and the
  // scalar column tail at both vector widths; zeros exercise the skip.
  const struct {
    int m, k, n;
  } shapes[] = {{4, 8, 16}, {5, 7, 19}, {1, 3, 35}, {13, 2, 5}, {8, 288, 49}};
  std::mt19937_64 rng(0x6E);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  for (const auto& s : shapes) {
    std::vector<float> a(static_cast<std::size_t>(s.m) * s.k);
    std::vector<float> at(static_cast<std::size_t>(s.k) * s.m);
    std::vector<float> b(static_cast<std::size_t>(s.k) * s.n);
    std::vector<float> c0(static_cast<std::size_t>(s.m) * s.n);
    for (float& v : a) v = (rng() % 5 == 0) ? 0.0f : dist(rng);  // exercise skip
    for (float& v : b) v = dist(rng);
    for (float& v : c0) v = dist(rng);
    for (int kk = 0; kk < s.k; ++kk)
      for (int i = 0; i < s.m; ++i)
        at[static_cast<std::size_t>(kk) * s.m + i] =
            a[static_cast<std::size_t>(i) * s.k + kk];

    std::vector<float> expect = c0, expect_t = c0;
    set_level(Level::kScalar);
    kernels().gemm_acc(a.data(), b.data(), expect.data(), s.m, s.k, s.n);
    kernels().gemm_at_acc(at.data(), b.data(), expect_t.data(), s.m, s.k, s.n);
    // The transposed variant accumulates the same products in the same
    // per-element order, so even the two scalar paths agree exactly.
    EXPECT_EQ(0, std::memcmp(expect.data(), expect_t.data(),
                             expect.size() * sizeof(float)));

    for_each_simd_level([&](Level l) {
      std::vector<float> got = c0, got_t = c0;
      kernels().gemm_acc(a.data(), b.data(), got.data(), s.m, s.k, s.n);
      kernels().gemm_at_acc(at.data(), b.data(), got_t.data(), s.m, s.k, s.n);
      EXPECT_EQ(0,
                std::memcmp(got.data(), expect.data(), got.size() * sizeof(float)))
          << "gemm_acc level=" << level_name(l) << " m=" << s.m << " n=" << s.n;
      EXPECT_EQ(0, std::memcmp(got_t.data(), expect_t.data(),
                               got_t.size() * sizeof(float)))
          << "gemm_at_acc level=" << level_name(l) << " m=" << s.m << " n=" << s.n;
    });
  }
}

TEST(SimdKernels, NonzeroMaskI16MatchesReferencePredicate) {
  std::mt19937_64 rng(0x4A5);
  for (int c = 0; c < 64; ++c) {
    alignas(16) std::int16_t v[64] = {};
    switch (c % 5) {
      case 0:  // all zero
        break;
      case 1:  // dense random (some lanes still zero by chance)
        for (std::int16_t& x : v)
          x = static_cast<std::int16_t>(rng() % 7 == 0 ? 0 : rng());
        break;
      case 2:  // single lane set, swept across the block
        v[c % 64] = 1;
        break;
      case 3:  // extremes: INT16_MIN must not read as zero
        v[0] = -32768;
        v[31] = 32767;
        v[63] = -1;
        break;
      case 4:  // every lane nonzero
        for (std::int16_t& x : v) x = static_cast<std::int16_t>(rng() | 1);
        break;
    }
    std::uint64_t expect = 0;
    for (int k = 0; k < 64; ++k)
      if (v[k] != 0) expect |= 1ull << k;
    set_level(Level::kScalar);
    EXPECT_EQ(kernels().nonzero_mask_i16_64(v), expect) << "scalar case=" << c;
    for_each_simd_level([&](Level l) {
      EXPECT_EQ(kernels().nonzero_mask_i16_64(v), expect)
          << "level=" << level_name(l) << " case=" << c;
    });
  }
}

TEST(SimdKernels, StuffBytesMatchesReferenceOnFfPatterns) {
  std::mt19937_64 rng(0x57F);
  std::vector<std::vector<std::uint8_t>> inputs;
  inputs.push_back({});                                     // empty
  inputs.push_back(std::vector<std::uint8_t>(40, 0xFF));    // worst case: all stuffed
  inputs.push_back(std::vector<std::uint8_t>(96, 0x12));    // fast path: no 0xFF at all
  for (const std::size_t n : {std::size_t{1}, std::size_t{15}, std::size_t{16},
                              std::size_t{17}, std::size_t{31}, std::size_t{32},
                              std::size_t{33}, std::size_t{100}, std::size_t{4097}}) {
    std::vector<std::uint8_t> in(n);
    for (std::uint8_t& b : in)
      b = static_cast<std::uint8_t>(rng() % 4 == 0 ? 0xFF : rng());
    inputs.push_back(std::move(in));
  }
  {
    // 0xFF exactly at vector-chunk boundaries, nowhere else.
    std::vector<std::uint8_t> in(70, 0x00);
    for (const std::size_t i : {std::size_t{0}, std::size_t{15}, std::size_t{16},
                                std::size_t{31}, std::size_t{32}, std::size_t{63},
                                std::size_t{69}})
      in[i] = 0xFF;
    inputs.push_back(std::move(in));
  }
  for (std::size_t ci = 0; ci < inputs.size(); ++ci) {
    const std::vector<std::uint8_t>& in = inputs[ci];
    std::vector<std::uint8_t> expect;
    for (const std::uint8_t b : in) {
      expect.push_back(b);
      if (b == 0xFF) expect.push_back(0x00);
    }
    const auto run = [&](Level l) {
      std::vector<std::uint8_t> dst(in.size() * 2 + 1, 0xAB);
      const std::size_t written = kernels().stuff_bytes(in.data(), in.size(), dst.data());
      ASSERT_EQ(written, expect.size()) << "level=" << level_name(l) << " case=" << ci;
      EXPECT_EQ(0, std::memcmp(dst.data(), expect.data(), written))
          << "level=" << level_name(l) << " case=" << ci;
      EXPECT_EQ(dst[written], 0xAB)  // no write past the reported length
          << "level=" << level_name(l) << " case=" << ci;
    };
    set_level(Level::kScalar);
    run(Level::kScalar);
    for_each_simd_level(run);
  }
}

}  // namespace
}  // namespace dnj::simd
