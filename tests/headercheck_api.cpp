// Header self-containment gate (C++): the public umbrella header must
// compile as a standalone TU under -Wall -Wextra -Werror with no other
// includes — exactly how an embedder's first TU sees it. Built as part of
// the dnj_headercheck object library on every configuration.
#include "api/dnj.hpp"

// Touch a symbol so the TU is not entirely vacuous.
static_assert(dnj::api::kApiVersionMajor >= 1, "public API major version");
