// Integration tests across core + jpeg + data: the full DeepN-JPEG design
// flow, dataset transcoding, and compression-rate accounting.
#include <gtest/gtest.h>

#include "core/deepnjpeg.hpp"
#include "data/synthetic.hpp"
#include "power/energy_model.hpp"

namespace dnj::core {
namespace {

data::Dataset make_dataset(int per_class = 6, std::uint64_t seed = 99) {
  data::GeneratorConfig cfg;
  cfg.width = 32;
  cfg.height = 32;
  cfg.num_classes = 8;
  cfg.seed = seed;
  return data::SyntheticDatasetGenerator(cfg).generate(per_class);
}

TEST(Transcode, PreservesLabelsAndGeometry) {
  const data::Dataset ds = make_dataset(3);
  jpeg::EncoderConfig cfg;
  cfg.quality = 90;
  const TranscodeResult res = transcode(ds, cfg);
  ASSERT_EQ(res.dataset.size(), ds.size());
  EXPECT_EQ(res.dataset.num_classes, ds.num_classes);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(res.dataset.samples[i].label, ds.samples[i].label);
    EXPECT_EQ(res.dataset.samples[i].image.width(), 32);
  }
  EXPECT_GT(res.total_bytes, 0u);
  EXPECT_GT(res.mean_psnr, 25.0);
}

TEST(Transcode, LowerQualityMeansFewerBytesAndLowerPsnr) {
  const data::Dataset ds = make_dataset(3);
  jpeg::EncoderConfig hi;
  hi.quality = 90;
  jpeg::EncoderConfig lo;
  lo.quality = 20;
  const TranscodeResult rh = transcode(ds, hi);
  const TranscodeResult rl = transcode(ds, lo);
  EXPECT_LT(rl.total_bytes, rh.total_bytes);
  EXPECT_LT(rl.mean_psnr, rh.mean_psnr);
}

TEST(Transcode, CompressionRateAgainstReference) {
  const data::Dataset ds = make_dataset(3);
  const std::size_t ref = reference_bytes_qf100(ds);
  jpeg::EncoderConfig q50;
  q50.quality = 50;
  q50.subsampling = jpeg::Subsampling::k444;
  const std::size_t bytes50 = dataset_encoded_bytes(ds, q50);
  const double cr = compression_rate(ref, bytes50);
  EXPECT_GT(cr, 1.5);  // QF 50 compresses well past QF 100
  EXPECT_DOUBLE_EQ(compression_rate(100, 100), 1.0);
  EXPECT_THROW(compression_rate(10, 0), std::invalid_argument);
}

TEST(DeepNJpeg, DesignProducesSaneTable) {
  const data::Dataset ds = make_dataset();
  const DesignResult d = DeepNJpeg::design(ds);
  EXPECT_EQ(d.bands.count(Band::kLF), 6);
  EXPECT_EQ(d.bands.count(Band::kMF), 22);
  EXPECT_EQ(d.bands.count(Band::kHF), 36);
  // LF bands end up with smaller average steps than HF bands.
  double lf_mean = 0.0, hf_mean = 0.0;
  for (int k : d.bands.indices(Band::kLF)) lf_mean += d.table.step(k);
  for (int k : d.bands.indices(Band::kHF)) hf_mean += d.table.step(k);
  lf_mean /= 6.0;
  hf_mean /= 36.0;
  EXPECT_LT(lf_mean, hf_mean);
}

TEST(DeepNJpeg, EncoderConfigRoundTripsThroughCodec) {
  const data::Dataset ds = make_dataset(2);
  const DesignResult d = DeepNJpeg::design(ds);
  const jpeg::EncoderConfig cfg = DeepNJpeg::encoder_config(d);
  const jpeg::RoundTrip rt = jpeg::round_trip(ds.samples[0].image, cfg);
  EXPECT_EQ(rt.decoded.width(), 32);
  // The designed table is in the DQT of the stream.
  const jpeg::JpegInfo info = jpeg::parse_info(rt.bytes);
  ASSERT_TRUE(info.quant_tables[0].has_value());
  EXPECT_EQ(*info.quant_tables[0], d.table);
}

TEST(DeepNJpeg, CompressesBetterThanQf100) {
  const data::Dataset ds = make_dataset();
  const std::size_t ref = reference_bytes_qf100(ds);
  const TranscodeResult res = DeepNJpeg::compress_dataset(ds);
  EXPECT_GT(compression_rate(ref, res.total_bytes), 1.5);
}

TEST(DeepNJpeg, DesignIsDeterministic) {
  const data::Dataset ds = make_dataset();
  const DesignResult a = DeepNJpeg::design(ds);
  const DesignResult b = DeepNJpeg::design(ds);
  EXPECT_EQ(a.table, b.table);
}

TEST(DeepNJpeg, SamplingIntervalChangesLittle) {
  const data::Dataset ds = make_dataset(8);
  DesignConfig c1;
  DesignConfig c4;
  c4.analysis.sample_interval = 4;
  const DesignResult full = DeepNJpeg::design(ds, c1);
  const DesignResult sampled = DeepNJpeg::design(ds, c4);
  // Tables built from a 1/4 stratified sample stay close to the full design.
  int close = 0;
  for (int k = 0; k < 64; ++k) {
    const int a = full.table.step(k);
    const int b = sampled.table.step(k);
    if (std::abs(a - b) <= std::max(8, a / 3)) ++close;
  }
  EXPECT_GE(close, 52);
}

// --- power model ---

TEST(Power, RadioProfilesMatchPaperAnchors) {
  using power::RadioProfile;
  // 152 KB at each profile's bandwidth reproduces the paper's latencies.
  power::EnergyModel m3{RadioProfile::cellular_3g(), 5.0};
  EXPECT_NEAR(m3.transfer_seconds(152 * 1024), 0.870, 1e-6);
  power::EnergyModel ml{RadioProfile::lte(), 5.0};
  EXPECT_NEAR(ml.transfer_seconds(152 * 1024), 0.180, 1e-6);
  power::EnergyModel mw{RadioProfile::wifi(), 5.0};
  EXPECT_NEAR(mw.transfer_seconds(152 * 1024), 0.095, 1e-6);
}

TEST(Power, EnergyScalesLinearlyWithBytes) {
  power::EnergyModel m;
  EXPECT_NEAR(m.transfer_joules(2000), 2.0 * m.transfer_joules(1000), 1e-12);
  EXPECT_GT(m.offload_joules(1000, 1024, true), m.offload_joules(1000, 1024, false));
}

TEST(Power, NormalizedPowerTracksByteRatio) {
  power::EnergyModel m;
  m.encode_nj_per_pixel = 0.0;  // pure transfer: ratio equals byte ratio
  EXPECT_NEAR(power::normalized_power(m, 300, 1000, 1 << 20), 0.3, 1e-12);
  EXPECT_THROW(power::normalized_power(m, 10, 0, 100), std::invalid_argument);
}

TEST(Power, CompressionReducesOffloadEnergy) {
  const data::Dataset ds = make_dataset(2);
  const std::size_t ref = reference_bytes_qf100(ds);
  const TranscodeResult deepn = DeepNJpeg::compress_dataset(ds);
  power::EnergyModel m;
  const double ratio = power::normalized_power(
      m, deepn.total_bytes, ref, ds.raw_bytes());
  EXPECT_LT(ratio, 0.8);
  EXPECT_GT(ratio, 0.0);
}

}  // namespace
}  // namespace dnj::core
