// Dispatch-layer coverage plus full-run level determinism: the SIMD twin
// of test_parallel_determinism. Where that suite pins "thread count never
// changes results", this one pins "SIMD level never changes results" —
// encode streams, decoded pixels, annealed tables and trained weights must
// be bit-identical at scalar, SSE2 and AVX2 — and exercises the dispatch
// API itself (forced overrides, graceful fallback, level restoration).
#include <gtest/gtest.h>

#include <vector>

#include "core/sa_optimizer.hpp"
#include "core/transcode.hpp"
#include "data/synthetic.hpp"
#include "image/metrics.hpp"
#include "jpeg/codec.hpp"
#include "nn/models.hpp"
#include "nn/trainer.hpp"
#include "simd/dispatch.hpp"

namespace dnj::simd {
namespace {

std::vector<Level> supported_levels() {
  std::vector<Level> out = {Level::kScalar};
  for (Level l : {Level::kSse2, Level::kAvx2})
    if (set_level(l)) out.push_back(l);
  set_level(max_supported_level());
  return out;
}

class LevelRestorer {
 public:
  ~LevelRestorer() { set_level(max_supported_level()); }
};

data::Dataset det_dataset(int per_class, int channels = 1) {
  data::GeneratorConfig cfg;
  cfg.width = 32;
  cfg.height = 32;
  cfg.channels = channels;
  cfg.num_classes = 4;
  cfg.seed = 4242;
  return data::SyntheticDatasetGenerator(cfg).generate(per_class);
}

TEST(SimdDispatch, ParseAndNames) {
  Level l = Level::kAvx2;
  EXPECT_TRUE(parse_level("scalar", &l));
  EXPECT_EQ(l, Level::kScalar);
  EXPECT_TRUE(parse_level("SSE2", &l));  // case-insensitive, like DNJ_SIMD
  EXPECT_EQ(l, Level::kSse2);
  EXPECT_TRUE(parse_level("avx2", &l));
  EXPECT_EQ(l, Level::kAvx2);
  EXPECT_FALSE(parse_level("auto", &l));
  EXPECT_FALSE(parse_level("avx512", &l));
  EXPECT_STREQ(level_name(Level::kScalar), "scalar");
  EXPECT_STREQ(level_name(Level::kSse2), "sse2");
  EXPECT_STREQ(level_name(Level::kAvx2), "avx2");
}

TEST(SimdDispatch, ForcedOverridesAndFallback) {
  LevelRestorer restore;
  // Scalar is always available and always wins when forced.
  ASSERT_TRUE(set_level(Level::kScalar));
  EXPECT_EQ(active_level(), Level::kScalar);

  // Any level up to the detected maximum can be pinned; levels beyond it
  // are rejected without changing the active table.
  const Level max = max_supported_level();
  for (Level l : {Level::kSse2, Level::kAvx2}) {
    if (static_cast<int>(l) <= static_cast<int>(max)) {
      EXPECT_TRUE(set_level(l)) << level_name(l);
      EXPECT_EQ(active_level(), l);
    } else {
      EXPECT_FALSE(set_level(l)) << level_name(l);
      EXPECT_NE(active_level(), l);
    }
  }
}

TEST(SimdDispatch, KernelTableIsFullyPopulatedAtEveryLevel) {
  LevelRestorer restore;
  for (Level l : supported_levels()) {
    ASSERT_TRUE(set_level(l));
    const KernelTable& k = kernels();
    EXPECT_NE(k.fdct_batch, nullptr);
    EXPECT_NE(k.idct_batch, nullptr);
    EXPECT_NE(k.quantize_zigzag_batch, nullptr);
    EXPECT_NE(k.dequantize_batch, nullptr);
    EXPECT_NE(k.tile_f32, nullptr);
    EXPECT_NE(k.tile_u8, nullptr);
    EXPECT_NE(k.untile_f32, nullptr);
    EXPECT_NE(k.rgb_to_ycbcr, nullptr);
    EXPECT_NE(k.ycbcr_to_rgb_row, nullptr);
    EXPECT_NE(k.f32_to_u8_row, nullptr);
    EXPECT_NE(k.sum_sq_diff_u8, nullptr);
    EXPECT_NE(k.quant_error_block, nullptr);
    EXPECT_NE(k.gemm_acc, nullptr);
    EXPECT_NE(k.gemm_at_acc, nullptr);
  }
}

TEST(SimdLevelDeterminism, EncodeDecodeIsByteIdenticalAcrossLevels) {
  LevelRestorer restore;
  // Gray 4:4:4, color 4:4:4 and color 4:2:0 at odd sizes, with restarts and
  // optimized Huffman in the mix — the full encoder surface.
  std::vector<image::Image> images;
  for (int channels : {1, 3}) {
    data::GeneratorConfig cfg;
    cfg.width = 45;
    cfg.height = 23;
    cfg.channels = channels;
    cfg.seed = 99;
    images.push_back(
        data::SyntheticDatasetGenerator(cfg).render(data::ClassKind::kBandNoise, 1));
  }
  std::vector<jpeg::EncoderConfig> configs;
  {
    jpeg::EncoderConfig a;
    a.quality = 80;
    a.subsampling = jpeg::Subsampling::k444;
    jpeg::EncoderConfig b;
    b.quality = 35;
    b.subsampling = jpeg::Subsampling::k420;
    b.restart_interval = 2;
    jpeg::EncoderConfig c;
    c.quality = 92;
    c.optimize_huffman = true;
    configs = {a, b, c};
  }

  ASSERT_TRUE(set_level(Level::kScalar));
  std::vector<std::vector<std::uint8_t>> expect_streams;
  std::vector<image::Image> expect_decoded;
  for (const image::Image& img : images)
    for (const jpeg::EncoderConfig& cfg : configs) {
      expect_streams.push_back(jpeg::encode(img, cfg));
      expect_decoded.push_back(jpeg::decode(expect_streams.back()));
    }

  for (Level l : supported_levels()) {
    ASSERT_TRUE(set_level(l));
    std::size_t idx = 0;
    for (const image::Image& img : images)
      for (const jpeg::EncoderConfig& cfg : configs) {
        EXPECT_EQ(jpeg::encode(img, cfg), expect_streams[idx])
            << "encode level=" << level_name(l) << " case=" << idx;
        EXPECT_EQ(jpeg::decode(expect_streams[idx]), expect_decoded[idx])
            << "decode level=" << level_name(l) << " case=" << idx;
        ++idx;
      }
  }
}

TEST(SimdLevelDeterminism, TranscodeAndMetricsAcrossLevels) {
  LevelRestorer restore;
  const data::Dataset ds = det_dataset(4);
  jpeg::EncoderConfig cfg;
  cfg.quality = 80;

  ASSERT_TRUE(set_level(Level::kScalar));
  const core::TranscodeResult expect = core::transcode(ds, cfg, 2);
  for (Level l : supported_levels()) {
    ASSERT_TRUE(set_level(l));
    const core::TranscodeResult got = core::transcode(ds, cfg, 2);
    EXPECT_EQ(got.total_bytes, expect.total_bytes) << "level=" << level_name(l);
    // Bit-exact: the MSE kernel sums integers, so even PSNR cannot drift.
    EXPECT_EQ(got.mean_psnr, expect.mean_psnr) << "level=" << level_name(l);
    ASSERT_EQ(got.dataset.size(), expect.dataset.size());
    for (std::size_t i = 0; i < expect.dataset.size(); ++i)
      EXPECT_EQ(got.dataset.samples[i].image, expect.dataset.samples[i].image);
  }
}

TEST(SimdLevelDeterminism, AnnealedTableAcrossLevels) {
  LevelRestorer restore;
  const data::Dataset ds = det_dataset(4);
  const core::FrequencyProfile profile = core::analyze(ds);
  core::SaConfig cfg;
  cfg.iterations = 60;
  cfg.sample_images = 6;
  cfg.num_threads = 2;

  ASSERT_TRUE(set_level(Level::kScalar));
  const core::SaResult expect =
      core::anneal_table(ds, profile, jpeg::QuantTable::uniform(8), cfg);
  for (Level l : supported_levels()) {
    ASSERT_TRUE(set_level(l));
    const core::SaResult got =
        core::anneal_table(ds, profile, jpeg::QuantTable::uniform(8), cfg);
    EXPECT_EQ(got.table, expect.table) << "level=" << level_name(l);
    EXPECT_EQ(got.best_cost, expect.best_cost) << "level=" << level_name(l);
    EXPECT_EQ(got.initial_cost, expect.initial_cost) << "level=" << level_name(l);
    EXPECT_EQ(got.accepted_moves, expect.accepted_moves) << "level=" << level_name(l);
  }
}

TEST(SimdLevelDeterminism, TrainedWeightsAcrossLevels) {
  LevelRestorer restore;
  const data::Dataset train_set = det_dataset(8);
  nn::TrainConfig cfg;
  cfg.epochs = 2;
  cfg.batch_size = 8;
  cfg.seed = 31;
  cfg.num_threads = 2;

  auto run = [&]() {
    nn::LayerPtr model = nn::make_model(nn::ModelKind::kMiniAlexNet, 1, 32, 4, 7);
    const auto history = nn::train(*model, train_set, nullptr, cfg);
    std::vector<nn::ParamRef> params;
    model->collect_params(params);
    std::vector<std::vector<float>> weights;
    for (const nn::ParamRef& p : params) weights.push_back(*p.value);
    return std::make_pair(history.back().train_loss, weights);
  };

  ASSERT_TRUE(set_level(Level::kScalar));
  const auto expect = run();
  for (Level l : supported_levels()) {
    ASSERT_TRUE(set_level(l));
    const auto got = run();
    EXPECT_EQ(got.first, expect.first) << "loss level=" << level_name(l);
    ASSERT_EQ(got.second.size(), expect.second.size());
    for (std::size_t i = 0; i < expect.second.size(); ++i)
      EXPECT_EQ(got.second[i], expect.second[i])
          << "level=" << level_name(l) << " param=" << i;
  }
}

}  // namespace
}  // namespace dnj::simd
