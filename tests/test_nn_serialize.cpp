#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "data/synthetic.hpp"
#include "nn/models.hpp"
#include "nn/serialize.hpp"
#include "nn/trainer.hpp"

namespace dnj::nn {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

TEST(Serialize, RoundTripRestoresExactWeights) {
  const std::string path = temp_path("dnj_weights_rt.bin");
  LayerPtr a = make_model(ModelKind::kMiniAlexNet, 1, 32, 8, 7);
  save_weights(*a, path);

  LayerPtr b = make_model(ModelKind::kMiniAlexNet, 1, 32, 8, 999);  // different init
  load_weights(*b, path);

  std::vector<ParamRef> pa, pb;
  a->collect_params(pa);
  b->collect_params(pb);
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_EQ(*pa[i].value, *pb[i].value);
  std::remove(path.c_str());
}

TEST(Serialize, RestoredModelPredictsIdentically) {
  const std::string path = temp_path("dnj_weights_pred.bin");
  data::GeneratorConfig gc;
  gc.num_classes = 4;
  gc.seed = 21;
  const data::SyntheticDatasetGenerator gen(gc);
  const auto [train_set, test_set] = gen.generate_split(20, 8);

  LayerPtr trained = make_model(ModelKind::kMiniInception, 1, 32, 4, 3);
  TrainConfig cfg;
  cfg.epochs = 2;
  train(*trained, train_set, nullptr, cfg);
  save_weights(*trained, path);

  LayerPtr restored = make_model(ModelKind::kMiniInception, 1, 32, 4, 888);
  load_weights(*restored, path);
  for (const data::Sample& s : test_set.samples)
    EXPECT_EQ(predict_label(*trained, s.image), predict_label(*restored, s.image));
  std::remove(path.c_str());
}

TEST(Serialize, RejectsArchitectureMismatch) {
  const std::string path = temp_path("dnj_weights_arch.bin");
  LayerPtr a = make_model(ModelKind::kMiniAlexNet, 1, 32, 8, 7);
  save_weights(*a, path);
  LayerPtr b = make_model(ModelKind::kMiniVGG, 1, 32, 8, 7);
  EXPECT_THROW(load_weights(*b, path), std::runtime_error);
  LayerPtr c = make_model(ModelKind::kMiniAlexNet, 1, 32, 4, 7);  // class count differs
  EXPECT_THROW(load_weights(*c, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, RejectsCorruptFiles) {
  const std::string path = temp_path("dnj_weights_bad.bin");
  LayerPtr model = make_model(ModelKind::kMiniAlexNet, 1, 32, 8, 7);
  EXPECT_THROW(load_weights(*model, path + ".missing"), std::runtime_error);

  {
    std::ofstream out(path, std::ios::binary);
    out << "NOPE garbage";
  }
  EXPECT_THROW(load_weights(*model, path), std::runtime_error);

  // Truncate a valid file.
  save_weights(*model, path);
  std::filesystem::resize_file(path, std::filesystem::file_size(path) / 2);
  EXPECT_THROW(load_weights(*model, path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dnj::nn
