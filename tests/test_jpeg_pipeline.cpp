// Equivalence suite for the planar block-batch codec core: the batched
// pipeline (CoeffPlane tiling + fdct_batch + fused reciprocal
// quantize/zigzag + zero-alloc entropy pass) must produce byte-identical
// streams to the retained per-block reference encoder across image shapes,
// subsampling modes, and table precisions — and the batched primitives must
// be bit-identical to their per-block counterparts.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "image/blocks.hpp"
#include "jpeg/codec.hpp"
#include "jpeg/dct.hpp"
#include "jpeg/pipeline/codec_context.hpp"
#include "jpeg/zigzag.hpp"

namespace dnj::jpeg {
namespace {

using image::Image;
using image::kBlockDim;
using image::kBlockSize;
using image::PlaneF;
using pipeline::CodecContext;
using pipeline::CoeffPlane;

Image textured_image(int w, int h, int channels, std::uint64_t seed) {
  Image img(w, h, channels);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> noise(-20, 20);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x)
      for (int c = 0; c < channels; ++c) {
        const float base = 128.0f + 55.0f * std::sin(x * 0.23f + c) * std::cos(y * 0.19f);
        img.at(x, y, c) = image::clamp_u8(base + static_cast<float>(noise(rng)));
      }
  return img;
}

// --- batched primitives vs per-block paths --------------------------------

TEST(PipelinePrimitives, FdctBatchBitIdenticalToPerBlock) {
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<float> dist(-128.0f, 127.0f);
  CoeffPlane plane;
  plane.reshape(5, 3);
  for (std::size_t i = 0; i < plane.block_count() * kBlockSize; ++i)
    plane.data()[i] = dist(rng);

  std::vector<image::BlockF> reference(plane.block_count());
  for (std::size_t b = 0; b < plane.block_count(); ++b) {
    image::BlockF blk{};
    std::copy(plane.block(b), plane.block(b) + kBlockSize, blk.begin());
    reference[b] = fdct_aan(blk);
  }
  fdct_batch(plane.data(), plane.block_count());
  for (std::size_t b = 0; b < plane.block_count(); ++b)
    for (int k = 0; k < kBlockSize; ++k)
      EXPECT_EQ(plane.block(b)[k], reference[b][static_cast<std::size_t>(k)])
          << "block " << b << " band " << k;
}

TEST(PipelinePrimitives, IdctBatchBitIdenticalToPerBlock) {
  std::mt19937_64 rng(12);
  std::uniform_real_distribution<float> dist(-500.0f, 500.0f);
  CoeffPlane plane;
  plane.reshape(4, 4);
  for (std::size_t i = 0; i < plane.block_count() * kBlockSize; ++i)
    plane.data()[i] = dist(rng);

  std::vector<image::BlockF> reference(plane.block_count());
  for (std::size_t b = 0; b < plane.block_count(); ++b) {
    image::BlockF blk{};
    std::copy(plane.block(b), plane.block(b) + kBlockSize, blk.begin());
    reference[b] = idct_fast(blk);
  }
  idct_batch(plane.data(), plane.block_count());
  for (std::size_t b = 0; b < plane.block_count(); ++b)
    for (int k = 0; k < kBlockSize; ++k)
      EXPECT_EQ(plane.block(b)[k], reference[b][static_cast<std::size_t>(k)]);
}

TEST(PipelinePrimitives, FusedQuantizeZigzagMatchesPerBlockQuantize) {
  std::mt19937_64 rng(13);
  std::uniform_real_distribution<float> dist(-900.0f, 900.0f);
  CoeffPlane coeffs;
  coeffs.reshape(3, 2);
  for (std::size_t i = 0; i < coeffs.block_count() * kBlockSize; ++i)
    coeffs.data()[i] = dist(rng);
  const QuantTable table = QuantTable::annex_k_luma();
  const ReciprocalTable recip(table);

  std::vector<std::int16_t> zz(coeffs.block_count() * kBlockSize);
  quantize_zigzag_batch(coeffs.data(), coeffs.block_count(), recip, zz.data());

  for (std::size_t b = 0; b < coeffs.block_count(); ++b) {
    image::BlockF blk{};
    std::copy(coeffs.block(b), coeffs.block(b) + kBlockSize, blk.begin());
    const QuantizedBlock natural = quantize(blk, table);
    for (int k = 0; k < 64; ++k)
      EXPECT_EQ(zz[b * kBlockSize + static_cast<std::size_t>(k)],
                natural[static_cast<std::size_t>(kZigzag[static_cast<std::size_t>(k)])])
          << "block " << b << " scan position " << k;
  }
}

TEST(PipelinePrimitives, DequantizeBatchMatchesPerBlock) {
  std::mt19937_64 rng(14);
  std::uniform_int_distribution<int> dist(-1024, 1024);
  const QuantTable table = QuantTable::annex_k_chroma();
  std::vector<std::int16_t> q(4 * kBlockSize);
  for (std::int16_t& v : q) v = static_cast<std::int16_t>(dist(rng));
  std::vector<float> coeffs(q.size());
  dequantize_batch(q.data(), 4, table, coeffs.data());
  for (std::size_t b = 0; b < 4; ++b) {
    QuantizedBlock blk{};
    std::copy(q.begin() + static_cast<std::ptrdiff_t>(b * kBlockSize),
              q.begin() + static_cast<std::ptrdiff_t>((b + 1) * kBlockSize), blk.begin());
    const image::BlockF ref = dequantize(blk, table);
    for (int k = 0; k < 64; ++k)
      EXPECT_EQ(coeffs[b * kBlockSize + static_cast<std::size_t>(k)],
                ref[static_cast<std::size_t>(k)]);
  }
}

TEST(PipelinePrimitives, TilingMatchesPaddedPlaneSplit) {
  // tile_blocks_into must reproduce pad_to_blocks + split_blocks exactly,
  // including edge replication on ragged dimensions.
  PlaneF plane(13, 9);
  std::mt19937_64 rng(15);
  std::uniform_real_distribution<float> dist(0.0f, 255.0f);
  for (float& v : plane.data()) v = dist(rng);

  int bx = 0, by = 0;
  const std::vector<image::BlockF> blocks = image::split_blocks(plane, &bx, &by);
  CoeffPlane tiled;
  tiled.tile_from(plane, bx, by, 0.0f);
  ASSERT_EQ(tiled.block_count(), blocks.size());
  for (std::size_t b = 0; b < blocks.size(); ++b)
    for (int k = 0; k < kBlockSize; ++k)
      EXPECT_EQ(tiled.block(b)[k], blocks[b][static_cast<std::size_t>(k)]);

  // Grids larger than the padded plane replicate further (4:2:0 luma case).
  CoeffPlane wide;
  wide.tile_from(plane, bx + 1, by + 1, 0.0f);
  const float last = plane.at(plane.width() - 1, plane.height() - 1);
  EXPECT_EQ(wide.block(wide.block_count() - 1)[kBlockSize - 1], last);
}

TEST(PipelinePrimitives, UntileRoundTripsTile) {
  PlaneF plane(24, 16);
  std::mt19937_64 rng(16);
  std::uniform_real_distribution<float> dist(-128.0f, 127.0f);
  for (float& v : plane.data()) v = dist(rng);
  CoeffPlane tiled;
  tiled.tile_from(plane, 3, 2, 0.0f);
  PlaneF back(24, 16);
  image::untile_blocks_from(tiled.data(), 3, 2, back, 0.0f);
  for (int y = 0; y < 16; ++y)
    for (int x = 0; x < 24; ++x) EXPECT_EQ(back.at(x, y), plane.at(x, y));

  // The level-shift pair (-128 on tile, +128 on untile) reconstructs up to
  // one float rounding step — it is not an exact inverse for arbitrary
  // fractional samples, only for the integral pixel values the codec feeds.
  tiled.tile_from(plane, 3, 2, -128.0f);
  image::untile_blocks_from(tiled.data(), 3, 2, back, 128.0f);
  for (int y = 0; y < 16; ++y)
    for (int x = 0; x < 24; ++x) EXPECT_NEAR(back.at(x, y), plane.at(x, y), 1e-4f);
}

TEST(PipelinePrimitives, ReciprocalRoundingMatchesNearbyint) {
  // Anchor the codec's rounding rule independently of the encoder paths:
  // quantize must equal nearbyintf(c * (1/q)) — IEEE round half to even on
  // the float grid — for every step size, including near-half boundaries.
  std::mt19937_64 rng(17);
  std::uniform_real_distribution<float> dist(-2000.0f, 2000.0f);
  for (std::uint16_t q : {1, 2, 3, 7, 10, 16, 99, 255, 1000, 65535}) {
    const QuantTable t = QuantTable::uniform(q);
    const float r = 1.0f / static_cast<float>(q);
    image::BlockF coeffs{};
    for (int k = 0; k < 64; ++k) {
      // Mix random values with exact and near half-way multiples of q.
      const float half = (static_cast<float>(k % 16) + 0.5f) * static_cast<float>(q);
      coeffs[static_cast<std::size_t>(k)] =
          (k % 3 == 0) ? dist(rng) : (k % 3 == 1 ? half : std::nextafterf(half, 1e30f));
    }
    const QuantizedBlock out = quantize(coeffs, t);
    for (int k = 0; k < 64; ++k) {
      const float expect = std::nearbyintf(coeffs[static_cast<std::size_t>(k)] * r);
      EXPECT_EQ(out[static_cast<std::size_t>(k)],
                static_cast<std::int16_t>(std::clamp(expect, -32768.0f, 32767.0f)))
          << "q=" << q << " k=" << k << " c=" << coeffs[static_cast<std::size_t>(k)];
    }
  }
}

// --- whole-stream equivalence ---------------------------------------------

struct PipelineCase {
  int w, h, channels;
  Subsampling sub;
  bool optimize_huffman;
  int restart_interval;
};

class PipelineEquivalence : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(PipelineEquivalence, BatchedEncodeByteIdenticalToReference) {
  const auto p = GetParam();
  const Image img = textured_image(p.w, p.h, p.channels, 0xABCD + p.w * 31 + p.h);
  EncoderConfig cfg;
  cfg.quality = 80;
  cfg.subsampling = p.sub;
  cfg.optimize_huffman = p.optimize_huffman;
  cfg.restart_interval = p.restart_interval;
  const auto reference = encode_reference(img, cfg);
  const auto pipeline = encode(img, cfg);
  EXPECT_EQ(pipeline, reference);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PipelineEquivalence,
    ::testing::Values(PipelineCase{8, 8, 1, Subsampling::k444, false, 0},
                      PipelineCase{32, 32, 1, Subsampling::k444, true, 0},
                      PipelineCase{17, 13, 1, Subsampling::k444, false, 0},
                      PipelineCase{1, 1, 1, Subsampling::k444, false, 0},
                      PipelineCase{16, 16, 3, Subsampling::k444, false, 0},
                      PipelineCase{33, 31, 3, Subsampling::k420, false, 0},
                      PipelineCase{33, 31, 3, Subsampling::k420, true, 0},
                      PipelineCase{9, 25, 3, Subsampling::k420, false, 2},
                      PipelineCase{64, 48, 3, Subsampling::k444, false, 3},
                      PipelineCase{40, 24, 3, Subsampling::k420, true, 1},
                      PipelineCase{128, 96, 3, Subsampling::k420, false, 0}));

TEST(PipelineEquivalenceExtra, CustomSixteenBitTables) {
  std::array<std::uint16_t, 64> steps{};
  for (int k = 0; k < 64; ++k)
    steps[static_cast<std::size_t>(k)] = static_cast<std::uint16_t>(1 + 17 * k);  // up to 1072
  EncoderConfig cfg;
  cfg.use_custom_tables = true;
  cfg.luma_table = QuantTable(steps);
  cfg.chroma_table = QuantTable(steps);
  for (const auto& dims : {std::pair<int, int>{16, 16}, {23, 41}}) {
    const Image img = textured_image(dims.first, dims.second, 3, 0xFEED);
    cfg.subsampling = Subsampling::k420;
    EXPECT_EQ(encode(img, cfg), encode_reference(img, cfg));
    cfg.subsampling = Subsampling::k444;
    EXPECT_EQ(encode(img, cfg), encode_reference(img, cfg));
  }
}

TEST(PipelineEquivalenceExtra, QualitySweepGray) {
  const Image img = textured_image(48, 48, 1, 0xC0FFEE);
  // Out-of-range qualities clamp like QuantTable::scaled — in particular
  // -1 must not collide with the context cache's empty sentinel.
  for (int q : {-1, 0, 1, 10, 50, 75, 95, 100, 300}) {
    EncoderConfig cfg;
    cfg.quality = q;
    EXPECT_EQ(encode(img, cfg), encode_reference(img, cfg)) << "quality " << q;
  }
}

// --- context reuse ----------------------------------------------------------

TEST(CodecContext, ReuseAcrossImagesAndShapesIsStateless) {
  CodecContext ctx;
  EncoderConfig cfg;
  cfg.quality = 85;
  // Interleave shapes/modes so every arena reshapes repeatedly; results
  // must match fresh-context encodes bit for bit.
  const Image a = textured_image(32, 32, 3, 1);
  const Image b = textured_image(17, 29, 1, 2);
  const Image c = textured_image(64, 48, 3, 3);
  for (int round = 0; round < 3; ++round) {
    for (const Image* img : {&a, &b, &c}) {
      CodecContext fresh;
      EXPECT_EQ(encode(*img, cfg, ctx), encode(*img, cfg, fresh));
    }
    cfg.subsampling = cfg.subsampling == Subsampling::k420 ? Subsampling::k444
                                                           : Subsampling::k420;
  }
}

TEST(CodecContext, RoundTripThroughContextMatchesDefaultPath) {
  CodecContext ctx;
  const Image img = textured_image(40, 40, 3, 4);
  EncoderConfig cfg;
  cfg.quality = 70;
  cfg.subsampling = Subsampling::k420;
  const RoundTrip via_ctx = round_trip(img, cfg, ctx);
  const RoundTrip via_default = round_trip(img, cfg);
  EXPECT_EQ(via_ctx.bytes, via_default.bytes);
  EXPECT_EQ(via_ctx.decoded, via_default.decoded);
}

TEST(CodecContext, ReciprocalCacheTracksTableChanges) {
  CodecContext ctx;
  const QuantTable a = QuantTable::uniform(4);
  const QuantTable b = QuantTable::uniform(9);
  const ReciprocalTable& ra = ctx.reciprocal_for(a, 0);
  EXPECT_EQ(ra.recip(0), 1.0f / 4.0f);
  const ReciprocalTable& rb = ctx.reciprocal_for(b, 0);
  EXPECT_EQ(rb.recip(0), 1.0f / 9.0f);
  // Chroma slot is independent.
  const ReciprocalTable& rc = ctx.reciprocal_for(a, 1);
  EXPECT_EQ(rc.recip(63), 1.0f / 4.0f);
}

TEST(CodecContext, DecodeThroughReusedContextMatchesFresh) {
  CodecContext ctx;
  EncoderConfig cfg;
  cfg.quality = 75;
  cfg.subsampling = Subsampling::k420;
  const Image big = textured_image(64, 64, 3, 5);
  const Image small = textured_image(24, 8, 1, 6);
  const auto big_bytes = encode(big, cfg);
  const auto small_bytes = encode(small, cfg);
  // Decode large, then small (arenas shrink), then large again.
  const Image d1 = decode(big_bytes, ctx);
  const Image d2 = decode(small_bytes, ctx);
  const Image d3 = decode(big_bytes, ctx);
  CodecContext fresh1, fresh2;
  EXPECT_EQ(d1, decode(big_bytes, fresh1));
  EXPECT_EQ(d2, decode(small_bytes, fresh2));
  EXPECT_EQ(d1, d3);
}

}  // namespace
}  // namespace dnj::jpeg
