#include <gtest/gtest.h>

#include <random>

#include "jpeg/bitio.hpp"
#include "jpeg/huffman.hpp"

namespace dnj::jpeg {
namespace {

TEST(HuffmanSpec, DefaultTablesValidate) {
  EXPECT_NO_THROW(HuffmanSpec::default_dc_luma().validate());
  EXPECT_NO_THROW(HuffmanSpec::default_ac_luma().validate());
  EXPECT_NO_THROW(HuffmanSpec::default_dc_chroma().validate());
  EXPECT_NO_THROW(HuffmanSpec::default_ac_chroma().validate());
  EXPECT_EQ(HuffmanSpec::default_dc_luma().symbol_count(), 12);
  EXPECT_EQ(HuffmanSpec::default_ac_luma().symbol_count(), 162);
}

TEST(HuffmanSpec, RejectsMismatchedSymbols) {
  HuffmanSpec s = HuffmanSpec::default_dc_luma();
  s.symbols.pop_back();
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(HuffmanSpec, RejectsKraftViolation) {
  HuffmanSpec s;
  s.counts[1] = 3;  // three 1-bit codes cannot exist
  s.symbols = {0, 1, 2};
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

// Round-trips a symbol sequence through encoder + decoder.
void round_trip_symbols(const HuffmanSpec& spec, const std::vector<std::uint8_t>& syms) {
  const HuffmanEncoder enc(spec);
  const HuffmanDecoder dec(spec);
  std::vector<std::uint8_t> bytes;
  BitWriter bw(bytes);
  for (std::uint8_t s : syms) enc.encode(bw, s);
  bw.flush();
  BitReader br(bytes.data(), bytes.size());
  for (std::size_t i = 0; i < syms.size(); ++i) {
    const int got = dec.decode(br);
    ASSERT_EQ(got, syms[i]) << "symbol index " << i;
  }
}

class DefaultTableRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(DefaultTableRoundTrip, RandomSymbolStreams) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  const HuffmanSpec spec = HuffmanSpec::default_ac_luma();
  std::vector<std::uint8_t> syms;
  std::uniform_int_distribution<std::size_t> pick(0, spec.symbols.size() - 1);
  for (int i = 0; i < 500; ++i) syms.push_back(spec.symbols[pick(rng)]);
  round_trip_symbols(spec, syms);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DefaultTableRoundTrip, ::testing::Range(1, 7));

TEST(HuffmanEncoder, RejectsUncodedSymbol) {
  const HuffmanSpec spec = HuffmanSpec::default_dc_luma();  // symbols 0..11 only
  const HuffmanEncoder enc(spec);
  std::vector<std::uint8_t> bytes;
  BitWriter bw(bytes);
  EXPECT_THROW(enc.encode(bw, 200), std::invalid_argument);
  EXPECT_TRUE(enc.has_code(5));
  EXPECT_FALSE(enc.has_code(99));
}

TEST(BuildOptimal, CoversExactlyUsedSymbols) {
  std::array<std::uint32_t, 256> freq{};
  freq[3] = 100;
  freq[17] = 50;
  freq[200] = 1;
  const HuffmanSpec spec = HuffmanSpec::build_optimal(freq);
  EXPECT_EQ(spec.symbol_count(), 3);
  // Most frequent symbol gets the shortest code.
  const HuffmanEncoder enc(spec);
  EXPECT_LE(enc.code_length(3), enc.code_length(17));
  EXPECT_LE(enc.code_length(17), enc.code_length(200));
}

TEST(BuildOptimal, SingleSymbolGetsOneBitCode) {
  std::array<std::uint32_t, 256> freq{};
  freq[42] = 7;
  const HuffmanSpec spec = HuffmanSpec::build_optimal(freq);
  EXPECT_EQ(spec.symbol_count(), 1);
  const HuffmanEncoder enc(spec);
  EXPECT_EQ(enc.code_length(42), 1);
  round_trip_symbols(spec, std::vector<std::uint8_t>(10, 42));
}

class OptimalTableProperty : public ::testing::TestWithParam<int> {};

TEST_P(OptimalTableProperty, RoundTripsAndBeatsDefaultOnSkewedData) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 77);
  // Skewed distribution over a subset of the default AC alphabet.
  const HuffmanSpec def = HuffmanSpec::default_ac_luma();
  std::array<std::uint32_t, 256> freq{};
  std::vector<std::uint8_t> stream;
  std::geometric_distribution<int> geo(0.25);
  for (int i = 0; i < 4000; ++i) {
    const std::size_t idx =
        std::min<std::size_t>(static_cast<std::size_t>(geo(rng)), def.symbols.size() - 1);
    const std::uint8_t sym = def.symbols[idx];
    ++freq[sym];
    stream.push_back(sym);
  }
  const HuffmanSpec opt = HuffmanSpec::build_optimal(freq);
  round_trip_symbols(opt, stream);

  const HuffmanEncoder enc_def(def);
  const HuffmanEncoder enc_opt(opt);
  std::size_t bits_def = 0, bits_opt = 0;
  for (std::uint8_t s : stream) {
    bits_def += static_cast<std::size_t>(enc_def.code_length(s));
    bits_opt += static_cast<std::size_t>(enc_opt.code_length(s));
  }
  EXPECT_LE(bits_opt, bits_def);
}

TEST_P(OptimalTableProperty, AllCodeLengthsWithin16) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 13 + 5);
  // Extremely skewed frequencies force the length-limiting path.
  std::array<std::uint32_t, 256> freq{};
  std::uint32_t f = 1;
  for (int i = 0; i < 40; ++i) {
    freq[static_cast<std::size_t>(i)] = f;
    f = (f < 100000000u) ? f * 2 : f;
  }
  const HuffmanSpec spec = HuffmanSpec::build_optimal(freq);
  spec.validate();
  const HuffmanEncoder enc(spec);
  for (int i = 0; i < 40; ++i) {
    EXPECT_GE(enc.code_length(static_cast<std::uint8_t>(i)), 1);
    EXPECT_LE(enc.code_length(static_cast<std::uint8_t>(i)), 16);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimalTableProperty, ::testing::Range(1, 9));

TEST(HuffmanDecoder, InvalidBitsReturnMinusOne) {
  // A stream of all-ones longer than any valid code in the DC luma table
  // eventually fails to decode.
  const HuffmanSpec spec = HuffmanSpec::default_dc_luma();
  const HuffmanDecoder dec(spec);
  std::vector<std::uint8_t> bytes = {0xFF, 0x00, 0xFF, 0x00, 0xFF, 0x00};
  BitReader br(bytes.data(), bytes.size());
  int result = 0;
  for (int i = 0; i < 6 && result >= 0; ++i) result = dec.decode(br);
  EXPECT_LT(result, 0);
}

}  // namespace
}  // namespace dnj::jpeg
