#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "stats/band_stats.hpp"
#include "stats/distribution.hpp"
#include "stats/histogram.hpp"
#include "stats/moments.hpp"

namespace dnj::stats {
namespace {

TEST(RunningMoments, EmptyIsZero) {
  RunningMoments m;
  EXPECT_EQ(m.count(), 0u);
  EXPECT_DOUBLE_EQ(m.mean(), 0.0);
  EXPECT_DOUBLE_EQ(m.variance(), 0.0);
  EXPECT_DOUBLE_EQ(m.stddev(), 0.0);
}

TEST(RunningMoments, KnownValues) {
  RunningMoments m;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) m.add(v);
  EXPECT_EQ(m.count(), 8u);
  EXPECT_DOUBLE_EQ(m.mean(), 5.0);
  EXPECT_DOUBLE_EQ(m.variance(), 4.0);  // classic population-variance example
  EXPECT_DOUBLE_EQ(m.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(m.min(), 2.0);
  EXPECT_DOUBLE_EQ(m.max(), 9.0);
}

TEST(RunningMoments, SampleVarianceUsesNMinusOne) {
  RunningMoments m;
  for (double v : {1.0, 2.0, 3.0}) m.add(v);
  EXPECT_DOUBLE_EQ(m.sample_variance(), 1.0);
  EXPECT_NEAR(m.variance(), 2.0 / 3.0, 1e-12);
}

TEST(RunningMoments, MeanAbsTracksLaplaceScale) {
  RunningMoments m;
  for (double v : {-2.0, 2.0, -4.0, 4.0}) m.add(v);
  EXPECT_DOUBLE_EQ(m.mean_abs(), 3.0);
}

class MomentsMerge : public ::testing::TestWithParam<int> {};

TEST_P(MomentsMerge, MergeEqualsSequential) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  std::normal_distribution<double> dist(3.0, 2.5);
  RunningMoments all, left, right;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    const double v = dist(rng);
    all.add(v);
    (i < n / 3 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MomentsMerge, ::testing::Range(1, 6));

TEST(RunningMoments, MergeWithEmpty) {
  RunningMoments a, b;
  a.add(5.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 5.0);
}

TEST(Histogram, BinningAndEdges) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-3.0);   // clamps to bin 0
  h.add(100.0);  // clamps to last bin
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
  EXPECT_DOUBLE_EQ(h.pmf(0), 0.5);
  EXPECT_DOUBLE_EQ(h.cdf(9), 1.0);
}

TEST(Histogram, ExtremeValuesSaturateWithoutOverflow) {
  // Values whose bin index does not fit an int must still saturate into
  // the edge bins (the cast itself would otherwise overflow) — the
  // serving layer feeds unbounded latencies into fixed-range histograms.
  Histogram h(0.0, 10.0, 10);
  h.add(1e18);
  h.add(-1e18);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, QuantileInterpolatesWithinBins) {
  // 100 samples at the centres of [0, 100) with unit bins: the sample in
  // bin b contributes the segment [b, b+1) of the interpolated CDF, so
  // quantile(p) == 100 * p exactly for every p.
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 95.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
  // Out-of-range p clamps.
  EXPECT_DOUBLE_EQ(h.quantile(-0.5), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(1.5), h.quantile(1.0));
}

TEST(Histogram, QuantileOnLumpedMass) {
  // All mass in one bin: every quantile interpolates inside that bin.
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 4; ++i) h.add(3.2);  // bin 3 = [3, 4)
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.5);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);
}

TEST(Histogram, QuantileOfEmptyIsLo) {
  Histogram h(5.0, 10.0, 4);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
}

TEST(Histogram, MergeMatchesCombinedFill) {
  // Per-worker histograms merged in any order must equal one histogram
  // that saw every sample — the property the serving layer's stats
  // snapshot relies on.
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> dist(-5.0, 105.0);  // exercises edge bins
  Histogram all(0.0, 100.0, 50);
  Histogram parts[3] = {Histogram(0.0, 100.0, 50), Histogram(0.0, 100.0, 50),
                        Histogram(0.0, 100.0, 50)};
  for (int i = 0; i < 3000; ++i) {
    const double v = dist(rng);
    all.add(v);
    parts[i % 3].add(v);
  }
  Histogram merged(0.0, 100.0, 50);
  merged.merge(parts[2]);  // deliberately out of order: counts commute
  merged.merge(parts[0]);
  merged.merge(parts[1]);
  ASSERT_EQ(merged.total(), all.total());
  for (int b = 0; b < all.bins(); ++b) EXPECT_EQ(merged.count(b), all.count(b));
  for (double p : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0})
    EXPECT_DOUBLE_EQ(merged.quantile(p), all.quantile(p));
}

TEST(Histogram, MergeRejectsGeometryMismatch) {
  Histogram a(0.0, 100.0, 50);
  Histogram bins(0.0, 100.0, 51);
  Histogram lo(1.0, 100.0, 50);
  Histogram hi(0.0, 99.0, 50);
  EXPECT_THROW(a.merge(bins), std::invalid_argument);
  EXPECT_THROW(a.merge(lo), std::invalid_argument);
  EXPECT_THROW(a.merge(hi), std::invalid_argument);
}

TEST(LaplaceFit, MleRecoversScale) {
  std::mt19937_64 rng(42);
  std::exponential_distribution<double> expd(1.0 / 3.0);  // |Laplace(b=3)|
  std::bernoulli_distribution sign(0.5);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back((sign(rng) ? 1.0 : -1.0) * expd(rng));
  const LaplaceFit fit = LaplaceFit::mle(samples);
  EXPECT_NEAR(fit.b, 3.0, 0.1);
}

TEST(LaplaceFit, CdfPdfConsistency) {
  LaplaceFit f;
  f.b = 2.0;
  EXPECT_DOUBLE_EQ(f.cdf(0.0), 0.5);
  EXPECT_NEAR(f.cdf(1e9), 1.0, 1e-12);
  EXPECT_NEAR(f.cdf(-1e9), 0.0, 1e-12);
  EXPECT_NEAR(f.pdf(0.0), 0.25, 1e-12);
}

TEST(GaussianFit, MleRecoversParams) {
  std::mt19937_64 rng(7);
  std::normal_distribution<double> dist(-1.5, 4.0);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(dist(rng));
  const GaussianFit fit = GaussianFit::mle(samples);
  EXPECT_NEAR(fit.mu, -1.5, 0.1);
  EXPECT_NEAR(fit.sigma, 4.0, 0.1);
}

TEST(GaussianFit, CdfAtMean) {
  GaussianFit g;
  g.mu = 3.0;
  g.sigma = 1.0;
  EXPECT_NEAR(g.cdf(3.0), 0.5, 1e-12);
}

TEST(KsDistance, GoodFitIsSmallBadFitIsLarge) {
  std::mt19937_64 rng(9);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) samples.push_back(dist(rng));
  GaussianFit good = GaussianFit::mle(samples);
  GaussianFit bad;
  bad.mu = 5.0;
  bad.sigma = 0.3;
  EXPECT_LT(ks_distance(samples, good), 0.05);
  EXPECT_GT(ks_distance(samples, bad), 0.5);
}

TEST(LogLikelihood, PrefersTrueModel) {
  std::mt19937_64 rng(13);
  std::exponential_distribution<double> expd(1.0);
  std::bernoulli_distribution sign(0.5);
  std::vector<double> laplace_samples;
  for (int i = 0; i < 5000; ++i)
    laplace_samples.push_back((sign(rng) ? 1.0 : -1.0) * expd(rng));
  const LaplaceFit lf = LaplaceFit::mle(laplace_samples);
  const GaussianFit gf = GaussianFit::mle(laplace_samples);
  EXPECT_GT(log_likelihood(laplace_samples, lf), log_likelihood(laplace_samples, gf));
}

TEST(BandStats, AccumulatesPerBand) {
  BandStats bs;
  std::array<double, 64> block{};
  for (int k = 0; k < 64; ++k) block[static_cast<std::size_t>(k)] = k;
  bs.add_block(block);
  for (double& v : block) v = -v;
  bs.add_block(block);
  EXPECT_EQ(bs.band(5).count(), 2u);
  EXPECT_DOUBLE_EQ(bs.band(5).mean(), 0.0);
  EXPECT_DOUBLE_EQ(bs.band(5).stddev(), 5.0);
  const auto sigmas = bs.stddevs();
  EXPECT_DOUBLE_EQ(sigmas[63], 63.0);
  EXPECT_DOUBLE_EQ(sigmas[0], 0.0);
}

TEST(BandStats, MergeMatchesCombined) {
  std::mt19937_64 rng(21);
  std::normal_distribution<double> dist(0.0, 10.0);
  BandStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    std::array<double, 64> block{};
    for (double& v : block) v = dist(rng);
    all.add_block(block);
    (i % 2 ? a : b).add_block(block);
  }
  a.merge(b);
  for (int k = 0; k < 64; ++k) {
    EXPECT_EQ(a.band(k).count(), all.band(k).count());
    EXPECT_NEAR(a.band(k).stddev(), all.band(k).stddev(), 1e-9);
  }
}

TEST(FitErrors, EmptyInputThrows) {
  EXPECT_THROW(LaplaceFit::mle({}), std::invalid_argument);
  EXPECT_THROW(GaussianFit::mle({}), std::invalid_argument);
  LaplaceFit f;
  EXPECT_THROW(ks_distance(std::vector<double>{}, f), std::invalid_argument);
}

}  // namespace
}  // namespace dnj::stats
