#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "nn/models.hpp"
#include "nn/trainer.hpp"

namespace dnj::nn {
namespace {

data::GeneratorConfig easy_config() {
  data::GeneratorConfig cfg;
  cfg.width = 32;
  cfg.height = 32;
  cfg.channels = 1;
  cfg.num_classes = 4;  // first four kinds are far apart spectrally
  cfg.seed = 555;
  return cfg;
}

TrainConfig quick_train() {
  TrainConfig cfg;
  cfg.epochs = 4;
  cfg.batch_size = 16;
  cfg.lr = 0.02f;
  cfg.seed = 77;
  return cfg;
}

TEST(Trainer, NormalizePixelRange) {
  EXPECT_NEAR(normalize_pixel(0), -1.9922f, 1e-3f);
  EXPECT_NEAR(normalize_pixel(255), 1.9922f, 1e-3f);
  EXPECT_NEAR(normalize_pixel(128), 0.0078f, 1e-3f);
}

TEST(Trainer, ToBatchShapes) {
  const data::SyntheticDatasetGenerator gen(easy_config());
  const data::Dataset ds = gen.generate(2);
  const Tensor batch = to_batch(ds, {0, 3, 5});
  EXPECT_EQ(batch.n(), 3);
  EXPECT_EQ(batch.c(), 1);
  EXPECT_EQ(batch.h(), 32);
  EXPECT_EQ(batch.w(), 32);
  const auto labels = batch_labels(ds, {0, 3, 5});
  EXPECT_EQ(labels.size(), 3u);
  EXPECT_EQ(labels[0], ds.samples[0].label);
}

TEST(Trainer, ModelFactoryBuildsAllKinds) {
  for (int k = 0; k < kNumModelKinds; ++k) {
    const LayerPtr model = make_model(static_cast<ModelKind>(k), 1, 32, 8, 42);
    ASSERT_NE(model, nullptr) << model_name(static_cast<ModelKind>(k));
    EXPECT_GT(model->param_count(), 1000u);
  }
  EXPECT_THROW(make_model(ModelKind::kMiniAlexNet, 1, 30, 8, 1), std::invalid_argument);
  EXPECT_THROW(make_model(ModelKind::kMiniAlexNet, 1, 32, 1, 1), std::invalid_argument);
}

TEST(Trainer, ModelInitIsDeterministic) {
  const LayerPtr a = make_model(ModelKind::kMiniAlexNet, 1, 32, 4, 9);
  const LayerPtr b = make_model(ModelKind::kMiniAlexNet, 1, 32, 4, 9);
  std::vector<ParamRef> pa, pb;
  a->collect_params(pa);
  b->collect_params(pb);
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_EQ(*pa[i].value, *pb[i].value);
}

TEST(Trainer, LearnsEasySyntheticClasses) {
  const data::SyntheticDatasetGenerator gen(easy_config());
  const auto [train_set, test_set] = gen.generate_split(40, 15);
  LayerPtr model = make_model(ModelKind::kMiniAlexNet, 1, 32, 4, 123);
  const auto history = train(*model, train_set, &test_set, quick_train());
  ASSERT_EQ(history.size(), 4u);
  // Loss decreases and the model beats chance (0.25) comfortably.
  EXPECT_LT(history.back().train_loss, history.front().train_loss);
  EXPECT_GT(history.back().test_acc, 0.6);
}

TEST(Trainer, TrainingIsDeterministic) {
  const data::SyntheticDatasetGenerator gen(easy_config());
  const auto [train_set, test_set] = gen.generate_split(20, 8);
  TrainConfig cfg = quick_train();
  cfg.epochs = 2;

  LayerPtr m1 = make_model(ModelKind::kMiniVGG, 1, 32, 4, 321);
  LayerPtr m2 = make_model(ModelKind::kMiniVGG, 1, 32, 4, 321);
  const auto h1 = train(*m1, train_set, &test_set, cfg);
  const auto h2 = train(*m2, train_set, &test_set, cfg);
  ASSERT_EQ(h1.size(), h2.size());
  for (std::size_t e = 0; e < h1.size(); ++e) {
    EXPECT_DOUBLE_EQ(h1[e].train_loss, h2[e].train_loss);
    EXPECT_DOUBLE_EQ(h1[e].test_acc, h2[e].test_acc);
  }
}

TEST(Trainer, EvaluateAndPredictAgree) {
  const data::SyntheticDatasetGenerator gen(easy_config());
  const auto [train_set, test_set] = gen.generate_split(30, 10);
  LayerPtr model = make_model(ModelKind::kMiniAlexNet, 1, 32, 4, 7);
  TrainConfig cfg = quick_train();
  cfg.epochs = 3;
  train(*model, train_set, nullptr, cfg);

  std::size_t correct = 0;
  for (const data::Sample& s : test_set.samples)
    if (predict_label(*model, s.image) == s.label) ++correct;
  const double manual_acc = static_cast<double>(correct) / test_set.size();
  EXPECT_NEAR(evaluate(*model, test_set), manual_acc, 1e-12);
}

TEST(Trainer, PredictProbsSumToOne) {
  const data::SyntheticDatasetGenerator gen(easy_config());
  LayerPtr model = make_model(ModelKind::kMiniInception, 1, 32, 4, 3);
  const auto probs = predict_probs(*model, gen.render(data::ClassKind::kGradient, 0));
  ASSERT_EQ(probs.size(), 4u);
  float sum = 0.0f;
  for (float p : probs) sum += p;
  EXPECT_NEAR(sum, 1.0f, 1e-5f);
}

TEST(Trainer, ResNetTrainsWithBatchNorm) {
  const data::SyntheticDatasetGenerator gen(easy_config());
  const auto [train_set, test_set] = gen.generate_split(30, 10);
  LayerPtr model = make_model(ModelKind::kMiniResNet, 1, 32, 4, 99);
  TrainConfig cfg = quick_train();
  cfg.epochs = 5;
  cfg.lr = 0.05f;
  const auto history = train(*model, train_set, &test_set, cfg);
  EXPECT_GT(history.back().test_acc, 0.5);
}

TEST(Trainer, ErrorsOnEmptyDataset) {
  data::Dataset empty;
  LayerPtr model = make_model(ModelKind::kMiniAlexNet, 1, 32, 4, 1);
  EXPECT_THROW(train(*model, empty, nullptr, quick_train()), std::invalid_argument);
  EXPECT_THROW(evaluate(*model, empty), std::invalid_argument);
}

}  // namespace
}  // namespace dnj::nn
