#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "jpeg/dct.hpp"
#include "jpeg/zigzag.hpp"

namespace dnj::jpeg {
namespace {

using image::BlockF;
using image::kBlockSize;

BlockF random_block(std::uint64_t seed, float lo = -128.0f, float hi = 127.0f) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> dist(lo, hi);
  BlockF b{};
  for (float& v : b) v = dist(rng);
  return b;
}

double block_energy(const BlockF& b) {
  double e = 0.0;
  for (float v : b) e += static_cast<double>(v) * v;
  return e;
}

TEST(Dct, ConstantBlockHasOnlyDc) {
  BlockF b{};
  b.fill(100.0f);
  const BlockF f = fdct_ref(b);
  // DC of a constant block: 8 * value (JPEG normalization).
  EXPECT_NEAR(f[0], 800.0f, 1e-3f);
  for (int k = 1; k < kBlockSize; ++k) EXPECT_NEAR(f[static_cast<std::size_t>(k)], 0.0f, 1e-3f);
}

TEST(Dct, SingleBasisFunctionIsolatesOneCoefficient) {
  // Spatial pattern = basis (2,3) should produce energy only at (2,3).
  BlockF b{};
  for (int y = 0; y < 8; ++y)
    for (int x = 0; x < 8; ++x)
      b[static_cast<std::size_t>(y) * 8 + x] = static_cast<float>(
          std::cos((2 * y + 1) * 2 * M_PI / 16.0) * std::cos((2 * x + 1) * 3 * M_PI / 16.0));
  const BlockF f = fdct_ref(b);
  int argmax = 0;
  for (int k = 1; k < kBlockSize; ++k)
    if (std::abs(f[static_cast<std::size_t>(k)]) > std::abs(f[static_cast<std::size_t>(argmax)])) argmax = k;
  EXPECT_EQ(argmax, 2 * 8 + 3);
}

class DctProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DctProperty, ForwardInverseIsIdentity) {
  const BlockF b = random_block(GetParam());
  const BlockF rec = idct_ref(fdct_ref(b));
  for (int k = 0; k < kBlockSize; ++k)
    EXPECT_NEAR(rec[static_cast<std::size_t>(k)], b[static_cast<std::size_t>(k)], 1e-2f);
}

TEST_P(DctProperty, AanMatchesReference) {
  const BlockF b = random_block(GetParam());
  const BlockF ref = fdct_ref(b);
  const BlockF aan = fdct_aan(b);
  for (int k = 0; k < kBlockSize; ++k)
    EXPECT_NEAR(aan[static_cast<std::size_t>(k)], ref[static_cast<std::size_t>(k)], 0.01f)
        << "band " << k;
}

TEST_P(DctProperty, FastIdctMatchesReference) {
  const BlockF f = random_block(GetParam(), -500.0f, 500.0f);
  const BlockF a = idct_ref(f);
  const BlockF b = idct_fast(f);
  for (int k = 0; k < kBlockSize; ++k)
    EXPECT_NEAR(a[static_cast<std::size_t>(k)], b[static_cast<std::size_t>(k)], 0.01f);
}

TEST_P(DctProperty, ParsevalEnergyPreservation) {
  const BlockF b = random_block(GetParam());
  const BlockF f = fdct_ref(b);
  // The JPEG DCT is orthonormal, so energy is preserved exactly.
  EXPECT_NEAR(block_energy(b), block_energy(f), block_energy(b) * 1e-5 + 1e-3);
}

TEST_P(DctProperty, Linearity) {
  const BlockF a = random_block(GetParam());
  const BlockF b = random_block(GetParam() + 1000);
  BlockF sum{};
  for (int k = 0; k < kBlockSize; ++k)
    sum[static_cast<std::size_t>(k)] =
        2.0f * a[static_cast<std::size_t>(k)] - 3.0f * b[static_cast<std::size_t>(k)];
  const BlockF fa = fdct_ref(a);
  const BlockF fb = fdct_ref(b);
  const BlockF fsum = fdct_ref(sum);
  for (int k = 0; k < kBlockSize; ++k)
    EXPECT_NEAR(fsum[static_cast<std::size_t>(k)],
                2.0f * fa[static_cast<std::size_t>(k)] - 3.0f * fb[static_cast<std::size_t>(k)],
                0.05f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DctProperty, ::testing::Range<std::uint64_t>(1, 13));

TEST(Zigzag, IsPermutation) {
  std::array<bool, 64> seen{};
  for (int k = 0; k < 64; ++k) {
    ASSERT_GE(kZigzag[static_cast<std::size_t>(k)], 0);
    ASSERT_LT(kZigzag[static_cast<std::size_t>(k)], 64);
    EXPECT_FALSE(seen[static_cast<std::size_t>(kZigzag[static_cast<std::size_t>(k)])]);
    seen[static_cast<std::size_t>(kZigzag[static_cast<std::size_t>(k)])] = true;
  }
}

TEST(Zigzag, InverseIsConsistent) {
  for (int k = 0; k < 64; ++k)
    EXPECT_EQ(kInvZigzag[static_cast<std::size_t>(kZigzag[static_cast<std::size_t>(k)])], k);
}

TEST(Zigzag, KnownEntries) {
  EXPECT_EQ(kZigzag[0], 0);   // DC first
  EXPECT_EQ(kZigzag[1], 1);   // then (0,1)
  EXPECT_EQ(kZigzag[2], 8);   // then (1,0)
  EXPECT_EQ(kZigzag[63], 63); // ends at (7,7)
}

TEST(Zigzag, ScanOrderIncreasesDiagonalBand) {
  // Diagonal index (row + col) never jumps by more than 1 along the scan.
  for (int k = 1; k < 64; ++k) {
    const int prev = kZigzag[static_cast<std::size_t>(k - 1)];
    const int cur = kZigzag[static_cast<std::size_t>(k)];
    const int dprev = prev / 8 + prev % 8;
    const int dcur = cur / 8 + cur % 8;
    EXPECT_LE(std::abs(dcur - dprev), 1);
  }
}

}  // namespace
}  // namespace dnj::jpeg
