// End-to-end tests of the network front end: a real server on a loopback
// socket, the blocking Client as the peer.
//
// The load-bearing test is ByteIdenticalToSynchronousCalls: response
// payloads received over TCP must equal the synchronous in-process calls
// bit for bit — across worker counts, cache states, and both poller
// backends. That is the serving determinism contract crossing the wire;
// everything between the client and the codec (marshalling, framing,
// socket fragmentation, micro-batching, caching, write-back) must be
// payload-transparent for it to hold.
//
// The rest covers the connection state machine: pipelining and response
// correlation, chunked sends, protocol-error frames (garbage, version
// skew, oversized), typed overload rejection, the connection cap, idle
// timeouts, and graceful drain. Every blocking read is armed with a
// receive timeout — a hung server fails a test, never the suite.
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "api/dnj.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "obs/trace.hpp"
#include "serve/service.hpp"

namespace dnj::net {
namespace {

// The whole suite runs with tracing forced on: observability must never
// influence payload bytes, so the byte-identity contract is exercised in
// its strongest form — every request traced end to end.
const bool force_tracing = [] {
  obs::Tracer::instance().set_sample_every(1);
  return true;
}();

image::Image test_image(int w = 48, int h = 32, int ch = 1) {
  image::Image img(w, h, ch);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x)
      for (int c = 0; c < ch; ++c)
        img.at(x, y, c) = static_cast<std::uint8_t>((x * 5 + y * 3 + c * 17 + (x * y) % 7) & 0xFF);
  return img;
}

/// A large image whose encode is slow enough to pile requests up behind it.
image::Image big_image(int side = 1024) {
  image::Image img(side, side, 1);
  for (int y = 0; y < side; ++y)
    for (int x = 0; x < side; ++x)
      img.at(x, y) = static_cast<std::uint8_t>((x * x + y * 31) & 0xFF);
  return img;
}

serve::Request encode_request(const image::Image& img, int quality) {
  serve::Request req;
  req.kind = serve::RequestKind::kEncode;
  req.config.quality = quality;
  req.config.subsampling = jpeg::Subsampling::k444;
  req.image = img;
  return req;
}

/// Service + server pair bound to an ephemeral loopback port.
struct TestServer {
  explicit TestServer(serve::ServiceConfig service_cfg = {}, ServerConfig server_cfg = {})
      : service(std::move(service_cfg)), server(service, std::move(server_cfg)) {
    std::string error;
    started = server.start(&error);
    EXPECT_TRUE(started) << error;
  }

  Client connect() {
    Client client;
    std::string error;
    EXPECT_TRUE(client.connect("127.0.0.1", static_cast<std::uint16_t>(server.port()), &error))
        << error;
    return client;
  }

  serve::TranscodeService service;
  Server server;
  bool started = false;
};

TEST(NetServer, PingRoundTrip) {
  TestServer ts;
  Client client = ts.connect();
  std::string error;
  EXPECT_TRUE(client.ping(&error)) << error;
  EXPECT_TRUE(client.ping(&error)) << error;  // connection is reusable
  EXPECT_GE(ts.server.stats().pings, 2u);
}

TEST(NetServer, ByteIdenticalToSynchronousCalls) {
  const image::Image img = test_image(40, 28, 3);
  api::Session session;

  for (int workers : {1, 4}) {
    for (std::size_t cache : {std::size_t{0}, std::size_t{64}}) {
      serve::ServiceConfig cfg;
      cfg.workers = workers;
      cfg.cache_capacity = cache;
      TestServer ts(std::move(cfg));
      Client client = ts.connect();
      std::string error;

      // encode: wire result == synchronous api::Codec result.
      serve::Request enc = encode_request(img, 85);
      const auto sync_encode = session.codec().encode(
          api::ImageView{img.data().data(), img.width(), img.height(), img.channels()},
          api::EncodeOptions().quality(85).chroma_420(false));
      ASSERT_TRUE(sync_encode.ok());
      // Twice: the second call may be served from the result cache — the
      // payload must not depend on that.
      for (int round = 0; round < 2; ++round) {
        WireReply reply;
        ASSERT_TRUE(client.call(enc, &reply, &error)) << error;
        ASSERT_EQ(reply.status, WireStatus::kOk)
            << "workers=" << workers << " cache=" << cache << " round=" << round;
        EXPECT_EQ(reply.bytes, sync_encode.value())
            << "workers=" << workers << " cache=" << cache << " round=" << round;
      }

      // decode: wire pixels == synchronous pixels.
      serve::Request dec;
      dec.kind = serve::RequestKind::kDecode;
      dec.bytes = sync_encode.value();
      const auto sync_decode = session.codec().decode(sync_encode.value());
      ASSERT_TRUE(sync_decode.ok());
      WireReply dec_reply;
      ASSERT_TRUE(client.call(dec, &dec_reply, &error)) << error;
      ASSERT_EQ(dec_reply.status, WireStatus::kOk);
      EXPECT_EQ(dec_reply.image.data(), sync_decode.value().pixels);

      // transcode.
      serve::Request trans;
      trans.kind = serve::RequestKind::kTranscode;
      trans.bytes = sync_encode.value();
      trans.config.quality = 60;
      trans.config.subsampling = jpeg::Subsampling::k444;
      const auto sync_transcode = session.codec().transcode(
          sync_encode.value(), api::EncodeOptions().quality(60).chroma_420(false));
      ASSERT_TRUE(sync_transcode.ok());
      WireReply trans_reply;
      ASSERT_TRUE(client.call(trans, &trans_reply, &error)) << error;
      ASSERT_EQ(trans_reply.status, WireStatus::kOk);
      EXPECT_EQ(trans_reply.bytes, sync_transcode.value());

      // deepn-encode: reference is the service's own synchronous path
      // (the result depends on the service's installed table pair).
      serve::Request deepn;
      deepn.kind = serve::RequestKind::kDeepnEncode;
      deepn.quality = 70;
      deepn.image = img;
      const serve::Response sync_deepn = ts.service.execute(deepn);
      ASSERT_EQ(sync_deepn.status, serve::Status::kOk);
      WireReply deepn_reply;
      ASSERT_TRUE(client.call(deepn, &deepn_reply, &error)) << error;
      ASSERT_EQ(deepn_reply.status, WireStatus::kOk);
      EXPECT_EQ(deepn_reply.bytes, sync_deepn.bytes);
    }
  }
}

TEST(NetServer, BothPollerBackendsServeIdenticalPayloads) {
  const image::Image img = test_image();
  const serve::Request req = encode_request(img, 80);

  std::vector<std::vector<std::uint8_t>> payloads;
  for (PollerBackend backend : {PollerBackend::kPoll, PollerBackend::kAuto}) {
    ServerConfig cfg;
    cfg.backend = backend;
    TestServer ts({}, std::move(cfg));
    Client client = ts.connect();
    std::string error;
    WireReply reply;
    ASSERT_TRUE(client.call(req, &reply, &error)) << error;
    ASSERT_EQ(reply.status, WireStatus::kOk);
    payloads.push_back(reply.bytes);
  }
  EXPECT_EQ(payloads[0], payloads[1]);
}

TEST(NetServer, ChunkedSendsReassemble) {
  TestServer ts;
  Client client = ts.connect();
  std::string error;

  const std::vector<std::uint8_t> bytes =
      serialize_frame(make_request(99, encode_request(test_image(), 75)));
  // Dribble the frame out in small chunks with pauses: the server sees
  // partial headers and partial payloads across many read events.
  for (std::size_t off = 0; off < bytes.size(); off += 41) {
    const std::size_t n = std::min<std::size_t>(41, bytes.size() - off);
    ASSERT_TRUE(client.send_raw(bytes.data() + off, n, &error)) << error;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  WireReply reply;
  ASSERT_TRUE(client.recv_reply(&reply, &error)) << error;
  EXPECT_EQ(reply.status, WireStatus::kOk);
  EXPECT_EQ(reply.request_id, 99u);
}

TEST(NetServer, PipelinedRequestsComeBackCorrelated) {
  serve::ServiceConfig cfg;
  cfg.workers = 4;  // concurrent completion => replies may reorder
  TestServer ts(std::move(cfg));
  Client client = ts.connect();
  std::string error;

  const image::Image img = test_image();
  std::map<std::uint32_t, int> quality_by_id;
  for (int q = 50; q < 58; ++q) {
    const std::uint32_t id = client.send_request(encode_request(img, q), &error);
    ASSERT_NE(id, 0u) << error;
    quality_by_id[id] = q;
  }

  api::Session session;
  const std::size_t expected_replies = quality_by_id.size();
  for (std::size_t i = 0; i < expected_replies; ++i) {
    WireReply reply;
    ASSERT_TRUE(client.recv_reply(&reply, &error)) << error;
    ASSERT_EQ(reply.status, WireStatus::kOk);
    ASSERT_TRUE(quality_by_id.count(reply.request_id));
    const auto expect = session.codec().encode(
        api::ImageView{img.data().data(), img.width(), img.height(), img.channels()},
        api::EncodeOptions().quality(quality_by_id[reply.request_id]).chroma_420(false));
    ASSERT_TRUE(expect.ok());
    EXPECT_EQ(reply.bytes, expect.value());
    quality_by_id.erase(reply.request_id);  // exactly one reply per id
  }
  EXPECT_TRUE(quality_by_id.empty());
}

TEST(NetServer, GarbageGetsTypedErrorThenClose) {
  TestServer ts;
  Client client = ts.connect();
  std::string error;

  std::vector<std::uint8_t> garbage(64, 0xAB);
  ASSERT_TRUE(client.send_raw(garbage.data(), garbage.size(), &error));
  WireReply reply;
  ASSERT_TRUE(client.recv_reply(&reply, &error)) << error;
  EXPECT_EQ(reply.status, WireStatus::kMalformed);
  // The stream is poisoned: the server closes after flushing the error.
  EXPECT_FALSE(client.recv_reply(&reply, &error));
  EXPECT_GE(ts.server.stats().protocol_errors, 1u);
}

TEST(NetServer, VersionSkewGetsTypedErrorThenClose) {
  TestServer ts;
  Client client = ts.connect();
  std::string error;

  std::vector<std::uint8_t> bytes = serialize_frame(make_ping(1));
  bytes[4] = kProtocolVersion + 1;  // version byte
  ASSERT_TRUE(client.send_raw(bytes.data(), bytes.size(), &error));
  WireReply reply;
  ASSERT_TRUE(client.recv_reply(&reply, &error)) << error;
  EXPECT_EQ(reply.status, WireStatus::kVersionSkew);
  EXPECT_FALSE(client.recv_reply(&reply, &error));
}

TEST(NetServer, StatsOpInsideVersionOneIsMalformed) {
  // The accepted-version range lets a v1 frame in, but op 6 does not
  // exist in v1: the spec says unknown op == kMalformed, stream closes.
  TestServer ts;
  Client client = ts.connect();
  std::string error;

  std::vector<std::uint8_t> bytes =
      serialize_frame(make_stats_request(9, StatsFormat::kPrometheus));
  bytes[4] = 1;  // a v1 client could never mean "stats" by op 6
  ASSERT_TRUE(client.send_raw(bytes.data(), bytes.size(), &error));
  WireReply reply;
  ASSERT_TRUE(client.recv_reply(&reply, &error)) << error;
  EXPECT_EQ(reply.status, WireStatus::kMalformed);
  EXPECT_FALSE(client.recv_reply(&reply, &error));
}

TEST(NetServer, OversizedFrameGetsTypedErrorThenClose) {
  ServerConfig cfg;
  cfg.max_payload = 4096;  // small ceiling, no giant allocations needed
  TestServer ts({}, std::move(cfg));
  Client client = ts.connect();
  std::string error;

  // A syntactically valid header announcing a payload over the ceiling.
  std::vector<std::uint8_t> header;
  append_u32(header, kMagic);
  append_u8(header, kProtocolVersion);
  append_u8(header, static_cast<std::uint8_t>(FrameType::kRequest));
  append_u8(header, static_cast<std::uint8_t>(Op::kDecode));
  append_u8(header, 0);
  append_u32(header, 1);       // request_id
  append_u64(header, 0);       // config_digest
  append_u32(header, 8192);    // payload_size: past the ceiling
  append_u32(header, 0);       // crc (never checked — header is rejected)
  ASSERT_TRUE(client.send_raw(header.data(), header.size(), &error));

  WireReply reply;
  ASSERT_TRUE(client.recv_reply(&reply, &error)) << error;
  EXPECT_EQ(reply.status, WireStatus::kMalformed);
  EXPECT_FALSE(client.recv_reply(&reply, &error));
}

TEST(NetServer, InvalidArgumentKeepsTheConnectionAlive) {
  TestServer ts;
  Client client = ts.connect();
  std::string error;

  serve::Request bad;
  bad.kind = serve::RequestKind::kDeepnEncode;
  bad.quality = 0;  // out of range, but the frame itself is well-formed
  bad.image = test_image();
  WireReply reply;
  ASSERT_TRUE(client.call(bad, &reply, &error)) << error;
  EXPECT_EQ(reply.status, WireStatus::kInvalidArgument);

  // Unlike kMalformed, the framing is still trustworthy: same connection,
  // next request works.
  EXPECT_TRUE(client.ping(&error)) << error;
}

TEST(NetServer, OverloadYieldsTypedRejection) {
  serve::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 1;
  cfg.admission = serve::AdmissionPolicy::kReject;
  cfg.max_batch = 1;
  cfg.cache_capacity = 0;
  TestServer ts(std::move(cfg));
  Client client = ts.connect();
  std::string error;

  // One slow encode occupies the worker; a burst behind it overflows the
  // one-slot queue, and the rejections come back as typed frames.
  const int kBurst = 12;
  std::vector<std::uint32_t> ids;
  for (int i = 0; i < kBurst; ++i) {
    const std::uint32_t id = client.send_request(encode_request(big_image(), 75), &error);
    ASSERT_NE(id, 0u) << error;
    ids.push_back(id);
  }

  int ok = 0, rejected = 0;
  for (int i = 0; i < kBurst; ++i) {
    WireReply reply;
    ASSERT_TRUE(client.recv_reply(&reply, &error)) << error << " (reply " << i << ")";
    if (reply.status == WireStatus::kOk) {
      EXPECT_FALSE(reply.bytes.empty());
      ++ok;
    } else {
      EXPECT_EQ(reply.status, WireStatus::kRejected);
      EXPECT_FALSE(reply.error.empty());
      ++rejected;
    }
  }
  EXPECT_GE(ok, 1);        // the in-flight request completes
  EXPECT_GE(rejected, 1);  // and the overflow is told so, in-band
  EXPECT_EQ(ok + rejected, kBurst);
}

TEST(NetServer, ConnectionCapRejectsSurplusConnections) {
  ServerConfig cfg;
  cfg.max_connections = 1;
  TestServer ts({}, std::move(cfg));

  Client first = ts.connect();
  std::string error;
  ASSERT_TRUE(first.ping(&error)) << error;

  // The second connection is accepted at the TCP level, told kRejected in
  // a best-effort frame, and closed.
  Client second = ts.connect();
  WireReply reply;
  ASSERT_TRUE(second.recv_reply(&reply, &error)) << error;
  EXPECT_EQ(reply.status, WireStatus::kRejected);
  EXPECT_FALSE(second.recv_reply(&reply, &error));  // closed
  EXPECT_GE(ts.server.stats().connections_rejected, 1u);

  // The first connection is unaffected.
  EXPECT_TRUE(first.ping(&error)) << error;
}

TEST(NetServer, IdleConnectionsAreClosed) {
  ServerConfig cfg;
  cfg.idle_timeout_ms = 100;
  TestServer ts({}, std::move(cfg));
  Client client = ts.connect();
  std::string error;
  ASSERT_TRUE(client.ping(&error)) << error;

  // Go quiet past the timeout: the server closes the connection.
  WireReply reply;
  EXPECT_FALSE(client.recv_reply(&reply, &error));
  EXPECT_GE(ts.server.stats().connections_idle_closed, 1u);
}

TEST(NetServer, GracefulDrainFlushesSubmittedWork) {
  serve::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 1;
  TestServer ts(std::move(cfg));
  Client client = ts.connect();
  std::string error;

  // Pipeline a slow request and three fast ones, give the event loop time
  // to read and submit all four, then stop the server mid-flight.
  const int kInFlight = 4;
  ASSERT_NE(client.send_request(encode_request(big_image(), 75), &error), 0u);
  for (int i = 0; i < kInFlight - 1; ++i)
    ASSERT_NE(client.send_request(encode_request(test_image(), 60 + i), &error), 0u);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  ts.server.stop();  // blocks until drained

  // Every request submitted before the drain must have produced a flushed
  // response; after them, clean EOF.
  for (int i = 0; i < kInFlight; ++i) {
    WireReply reply;
    ASSERT_TRUE(client.recv_reply(&reply, &error)) << error << " (reply " << i << ")";
    EXPECT_EQ(reply.status, WireStatus::kOk);
  }
  WireReply extra;
  EXPECT_FALSE(client.recv_reply(&extra, &error));

  // The listener is gone: new connections are refused.
  Client late;
  EXPECT_FALSE(late.connect("127.0.0.1", static_cast<std::uint16_t>(ts.server.port() <= 0
                                                                        ? 1
                                                                        : ts.server.port()),
                            &error));
}

TEST(NetServer, StopIsIdempotentAndRestartWorks) {
  TestServer ts;
  ts.server.stop();
  ts.server.stop();
  EXPECT_FALSE(ts.server.running());
  EXPECT_EQ(ts.server.port(), -1);

  // start() after stop() brings the server back on a fresh socket.
  std::string error;
  ASSERT_TRUE(ts.server.start(&error)) << error;
  EXPECT_TRUE(ts.server.running());
  Client client = ts.connect();
  EXPECT_TRUE(client.ping(&error)) << error;
  // Double-start while running is refused.
  EXPECT_FALSE(ts.server.start(&error));
}

TEST(NetServer, StatsScrapeExposesBothLayersOverTheWire) {
  TestServer ts;
  Client client = ts.connect();
  std::string error;

  // Put at least one request through so the counters are non-trivial.
  WireReply reply;
  ASSERT_TRUE(client.call(encode_request(test_image(), 80), &reply, &error)) << error;
  ASSERT_EQ(reply.status, WireStatus::kOk);

  // Prometheus text: service counters and net counters answer one scrape.
  std::string text;
  ASSERT_TRUE(client.scrape(StatsFormat::kPrometheus, &text, &error)) << error;
  EXPECT_NE(text.find("# TYPE"), std::string::npos);
  EXPECT_NE(text.find("serve_requests_submitted_total 1"), std::string::npos) << text;
  EXPECT_NE(text.find("serve_requests_completed_total"), std::string::npos);
  EXPECT_NE(text.find("net_frames_in_total"), std::string::npos);
  EXPECT_NE(text.find("net_connections_active 1"), std::string::npos);
  EXPECT_NE(text.find("net_response_bytes"), std::string::npos);

  // JSON rendering of the same registry.
  std::string json_text;
  ASSERT_TRUE(client.scrape(StatsFormat::kJson, &json_text, &error)) << error;
  EXPECT_EQ(json_text.rfind("{\"metrics\":[", 0), 0u) << json_text.substr(0, 40);
  EXPECT_NE(json_text.find("\"name\":\"serve_requests_submitted_total\""),
            std::string::npos);

  // Trace dump over the wire.
  std::string trace_text;
  ASSERT_TRUE(client.scrape(StatsFormat::kTraceJson, &trace_text, &error)) << error;
  EXPECT_NE(trace_text.find("\"clock\":\"steady_ns\""), std::string::npos);
  EXPECT_NE(trace_text.find("\"spans\":["), std::string::npos);

  // The scrapes themselves are counted (and answered on the loop thread,
  // so they are already visible by the time the reply arrived).
  EXPECT_GE(ts.server.stats().stats_scrapes, 3u);
  std::string again;
  ASSERT_TRUE(client.scrape(StatsFormat::kPrometheus, &again, &error)) << error;
  EXPECT_NE(again.find("net_stats_scrapes_total"), std::string::npos);
}

TEST(NetServer, TracedRequestYieldsNestedSpansAcrossAllLayers) {
  auto& tracer = obs::Tracer::instance();
  tracer.clear();

  TestServer ts;
  Client client = ts.connect();
  std::string error;
  WireReply reply;
  ASSERT_TRUE(client.call(encode_request(test_image(), 80), &reply, &error)) << error;
  ASSERT_EQ(reply.status, WireStatus::kOk);

  // The root record lands on the loop thread just after the response bytes
  // hit the socket, so it can trail the client's receive by a moment.
  std::uint64_t trace = 0;
  for (int i = 0; i < 400 && trace == 0; ++i) {
    for (const auto& rec : tracer.dump())
      if (rec.stage == obs::Stage::kRequest && rec.parent_id == 0) trace = rec.trace_id;
    if (trace == 0) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_NE(trace, 0u) << "no completed request trace was recorded";

  std::map<obs::Stage, int> stages;
  std::uint64_t root_span = 0, root_start = 0, root_end = 0;
  std::vector<obs::SpanRecord> spans;
  for (const auto& rec : tracer.dump()) {
    if (rec.trace_id != trace) continue;
    spans.push_back(rec);
    ++stages[rec.stage];
    if (rec.stage == obs::Stage::kRequest) {
      root_span = rec.span_id;
      root_start = rec.start_ns;
      root_end = rec.end_ns;
    }
  }

  // One wire request must produce the full nested picture: net read,
  // parse, queue wait, batch, at least two codec stages, net write, and
  // the request root — at least seven spans in all.
  EXPECT_GE(spans.size(), 7u);
  EXPECT_EQ(stages[obs::Stage::kRequest], 1);
  EXPECT_GE(stages[obs::Stage::kNetRead], 1);
  EXPECT_GE(stages[obs::Stage::kNetParse], 1);
  EXPECT_GE(stages[obs::Stage::kQueueWait], 1);
  EXPECT_GE(stages[obs::Stage::kBatch], 1);
  EXPECT_GE(stages[obs::Stage::kNetWrite], 1);
  const int codec_stages = stages[obs::Stage::kEncodeTile] +
                           stages[obs::Stage::kEncodeDct] +
                           stages[obs::Stage::kEncodeQuant] +
                           stages[obs::Stage::kEncodeEntropy];
  EXPECT_GE(codec_stages, 2);

  // Nesting: every span belongs to the root's tree, and the direct
  // children of the root sit inside its time window.
  ASSERT_NE(root_span, 0u);
  std::map<std::uint64_t, const obs::SpanRecord*> by_id;
  for (const auto& rec : spans) by_id[rec.span_id] = &rec;
  for (const auto& rec : spans) {
    if (rec.span_id == root_span) continue;
    // Walk parents up to the root (cycle-safe via the span count bound).
    std::uint64_t cur = rec.parent_id;
    std::size_t hops = 0;
    while (cur != root_span && hops++ < spans.size()) {
      auto it = by_id.find(cur);
      ASSERT_NE(it, by_id.end()) << "span " << rec.span_id << " parents to unknown id "
                                 << cur << " (stage " << obs::stage_name(rec.stage) << ")";
      cur = it->second->parent_id;
    }
    EXPECT_EQ(cur, root_span);
    if (rec.parent_id == root_span && rec.stage != obs::Stage::kNetRead) {
      EXPECT_GE(rec.start_ns, root_start) << obs::stage_name(rec.stage);
      EXPECT_LE(rec.end_ns, root_end) << obs::stage_name(rec.stage);
    }
  }
}

TEST(NetApi, ServiceListenServesTheProtocol) {
  api::Service service(api::ServiceOptions().workers(2));
  const api::Status listening = service.listen(api::ListenOptions());
  ASSERT_TRUE(listening.ok()) << listening.message();
  ASSERT_GT(service.listen_port(), 0);

  // Double-listen is refused while the first listener is up.
  EXPECT_FALSE(service.listen(api::ListenOptions()).ok());

  const image::Image img = test_image();
  Client client;
  std::string error;
  ASSERT_TRUE(client.connect("127.0.0.1",
                             static_cast<std::uint16_t>(service.listen_port()), &error))
      << error;
  WireReply reply;
  ASSERT_TRUE(client.call(encode_request(img, 85), &reply, &error)) << error;
  ASSERT_EQ(reply.status, WireStatus::kOk);

  // Byte identity against the synchronous public API.
  api::Session session;
  const auto sync = session.codec().encode(
      api::ImageView{img.data().data(), img.width(), img.height(), img.channels()},
      api::EncodeOptions().quality(85).chroma_420(false));
  ASSERT_TRUE(sync.ok());
  EXPECT_EQ(reply.bytes, sync.value());

  const int port = service.listen_port();
  service.stop_listening();
  EXPECT_EQ(service.listen_port(), -1);
  Client late;
  EXPECT_FALSE(late.connect("127.0.0.1", static_cast<std::uint16_t>(port), &error));

  // A fresh listen after stop_listening works (new ephemeral port).
  ASSERT_TRUE(service.listen(api::ListenOptions()).ok());
  EXPECT_GT(service.listen_port(), 0);
  service.shutdown();  // implies stop_listening
  EXPECT_EQ(service.listen_port(), -1);
}

}  // namespace
}  // namespace dnj::net
