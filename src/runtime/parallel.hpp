// Deterministic data-parallel loops on top of runtime::ThreadPool.
//
// parallel_for(begin, end, grain, fn)  — fn(i) for every i in [begin, end),
//     executed in chunks of `grain` consecutive indices. Chunk boundaries
//     depend only on the range and grain, never on the thread count, so a
//     body that writes to disjoint per-index slots produces bit-identical
//     output whether it runs on 1 thread or 64.
// parallel_map(begin, end, grain, fn)  — collects fn(i) into a vector in
//     index order. Combined with a serial fold over that vector this gives
//     reductions whose floating-point rounding matches the plain serial
//     loop exactly — the property the determinism tests pin down.
//
// Exceptions: the first exception thrown by any chunk (first by completion,
// not by index) is captured and rethrown on the calling thread after all
// chunks have finished or been skipped; remaining chunks are abandoned
// cheaply (claimed, not executed) once a failure is recorded.
//
// The calling thread always participates in chunk execution, so these
// helpers never deadlock when invoked from inside a pool worker and never
// enqueue helpers that outlive the call's own stack frame unprotected.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <memory>
#include <mutex>
#include <type_traits>
#include <vector>

#include "runtime/thread_pool.hpp"

namespace dnj::runtime {

/// Maps a user-facing thread knob to an actual count: positive values pass
/// through, zero (the "default" sentinel every config uses) resolves to
/// DNJ_THREADS / hardware concurrency.
inline unsigned resolve_threads(int num_threads) {
  return num_threads > 0 ? static_cast<unsigned>(num_threads) : ThreadPool::default_threads();
}

namespace detail {

struct LoopState {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t grain = 1;
  std::size_t chunks = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex mutex;
  std::condition_variable cv;
};

/// Claims chunks until none remain. Returns after contributing to `done`
/// for every claimed chunk; the last finisher signals the condition
/// variable. `body` is invoked as (*body)(index) and is dereferenced only
/// while a chunk is actually claimed — a straggler helper that wakes after
/// the loop completed (and the caller's body was destroyed) sees next >=
/// chunks and never touches the pointer.
template <typename Body>
void drain_chunks(const std::shared_ptr<LoopState>& st, const Body* body) {
  for (;;) {
    const std::size_t c = st->next.fetch_add(1, std::memory_order_relaxed);
    if (c >= st->chunks) return;
    if (!st->failed.load(std::memory_order_relaxed)) {
      const std::size_t lo = st->begin + c * st->grain;
      const std::size_t hi = std::min(st->end, lo + st->grain);
      try {
        for (std::size_t i = lo; i < hi; ++i) (*body)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(st->mutex);
        if (!st->error) st->error = std::current_exception();
        st->failed.store(true, std::memory_order_relaxed);
      }
    }
    if (st->done.fetch_add(1, std::memory_order_acq_rel) + 1 == st->chunks) {
      std::lock_guard<std::mutex> lock(st->mutex);
      st->cv.notify_all();
    }
  }
}

}  // namespace detail

template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain, const Body& body,
                  int num_threads = 0) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const std::size_t n = end - begin;
  const std::size_t chunks = (n + grain - 1) / grain;
  ThreadPool& pool = ThreadPool::global();
  const unsigned threads = std::min<unsigned>(resolve_threads(num_threads),
                                              pool.worker_count() + 1);
  if (threads <= 1 || chunks <= 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  auto st = std::make_shared<detail::LoopState>();
  st->begin = begin;
  st->end = end;
  st->grain = grain;
  st->chunks = chunks;

  // Helpers capture the state by shared_ptr but the body by pointer: any
  // helper that starts after the loop already completed finds next >=
  // chunks and returns without dereferencing the (dead) body.
  const Body* body_ptr = &body;
  const unsigned helpers =
      static_cast<unsigned>(std::min<std::size_t>(threads - 1, chunks - 1));
  for (unsigned h = 0; h < helpers; ++h)
    pool.submit([st, body_ptr] { detail::drain_chunks(st, body_ptr); });

  detail::drain_chunks(st, body_ptr);

  std::unique_lock<std::mutex> lock(st->mutex);
  st->cv.wait(lock, [&st] { return st->done.load(std::memory_order_acquire) == st->chunks; });
  if (st->error) std::rethrow_exception(st->error);
}

/// fn(i) for i in [begin, end), results returned in index order. The result
/// type must be default-constructible and move-assignable.
template <typename Fn>
auto parallel_map(std::size_t begin, std::size_t end, std::size_t grain, const Fn& fn,
                  int num_threads = 0) -> std::vector<std::decay_t<decltype(fn(begin))>> {
  using R = std::decay_t<decltype(fn(begin))>;
  std::vector<R> out(end > begin ? end - begin : 0);
  parallel_for(
      begin, end, grain, [&](std::size_t i) { out[i - begin] = fn(i); }, num_threads);
  return out;
}

}  // namespace dnj::runtime
