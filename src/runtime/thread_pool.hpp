// Shared worker pool for the parallel helpers in runtime/parallel.hpp.
//
// Design constraints (they shape the whole runtime layer):
//  * Determinism first. The pool itself only runs opaque tasks; all
//    ordering guarantees live in parallel_for/parallel_map, which split
//    work into chunks whose boundaries depend on the range and grain only
//    — never on the thread count — and merge results in index order.
//  * Callers participate. parallel_for runs chunks on the calling thread
//    too, so a pool with zero workers (DNJ_THREADS=1, or a 1-core box)
//    degrades to plain serial execution with no special casing.
//  * No work stealing, no per-task futures: a mutex + condition-variable
//    queue is robust, easy to reason about, and far from the bottleneck —
//    every task we submit is a coarse chunk runner, not a single index.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dnj::runtime {

class ThreadPool {
 public:
  /// Spawns `workers` threads. Zero workers is valid: the parallel
  /// helpers never enqueue more helper tasks than there are workers, so a
  /// zero-worker pool simply means the calling thread does all the work.
  explicit ThreadPool(unsigned workers);

  /// Joins all workers. Tasks already queued are drained first — workers
  /// finish the backlog before exiting, and any backlog nobody picked up
  /// (a zero-worker pool in particular) runs on the destructing thread —
  /// so shutdown never strands a submitted task unrun. The serving layer's
  /// shutdown relies on this: its worker pumps are plain submitted tasks,
  /// and destroying the pool is what waits for them to finish draining.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned worker_count() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues a task for any worker to run. Tasks must not throw — an
  /// escaping exception unwinds a worker thread and terminates the
  /// process. Every submitter in the tree honors the contract by capturing
  /// exceptions inside the task (the parallel helpers stash them in the
  /// loop state, the serving layer converts them into error responses).
  void submit(std::function<void()> task);

  /// Process-wide pool shared by every parallel_for/parallel_map call.
  /// Sized so that pool workers + the calling thread = default_threads().
  static ThreadPool& global();

  /// Default parallelism: the DNJ_THREADS environment variable when set to
  /// a positive integer, otherwise std::thread::hardware_concurrency()
  /// (never less than 1). Read once per process.
  static unsigned default_threads();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace dnj::runtime
