// Bounded multi-producer multi-consumer queue — the submission primitive of
// the serving layer (src/serve).
//
// Design choices, in the same spirit as ThreadPool:
//  * A mutex + two condition variables, not a lock-free ring. Producers are
//    request submitters (a handful of client threads), consumers are the
//    service's worker pumps; every item is a whole request, so queue
//    synchronization is nowhere near the bottleneck and the simple
//    implementation is easy to prove correct under TSan.
//  * Strict FIFO. Items pop in push order, which keeps the service's
//    accounting intelligible (queue-wait distributions are monotone in
//    arrival order under a single consumer) — correctness never depends on
//    it, since every request is independent.
//  * Explicit close() lifecycle. After close(), pushes fail immediately but
//    pops keep draining what was accepted — exactly the graceful-shutdown
//    contract ("drain in-flight, refuse new work").
//  * The queue never holds more than `capacity` items, by construction:
//    push() blocks while full, try_push() fails while full. high_water()
//    exposes the maximum occupancy ever observed so tests can pin the
//    bound.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace dnj::runtime {

template <typename T>
class MpmcQueue {
 public:
  /// `capacity` must be at least 1; smaller values are clamped up.
  explicit MpmcQueue(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  /// Blocking push: waits for space. Returns true when `item` was moved
  /// into the queue; false (item untouched) when the queue is closed —
  /// including when it closes while this call is waiting for space.
  bool push(T& item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    enqueue_locked(item);
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push: false (item untouched) when full or closed — the
  /// reject admission policy.
  bool try_push(T& item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      enqueue_locked(item);
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking pop: waits for an item. Returns false only when the queue is
  /// closed AND fully drained, so consumers naturally finish the backlog
  /// before exiting.
  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Non-blocking conditional drain: moves queue heads into `out` while the
  /// head satisfies `pred` and fewer than `max` items have been taken.
  /// Stops at the first non-matching head (FIFO is preserved — items are
  /// never skipped over). This is the micro-batching primitive: a worker
  /// that just popped a request collects immediately-available compatible
  /// followers without waiting. Returns the number of items taken.
  template <typename Pred>
  std::size_t pop_while(Pred pred, std::size_t max, std::vector<T>& out) {
    std::size_t taken = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      while (taken < max && !items_.empty() && pred(items_.front())) {
        out.push_back(std::move(items_.front()));
        items_.pop_front();
        ++taken;
      }
    }
    if (taken > 0) not_full_.notify_all();
    return taken;
  }

  /// Closes the queue: subsequent pushes fail, blocked pushers wake and
  /// fail, poppers drain the remainder then fail. Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

  /// Maximum occupancy ever observed — tests pin high_water() <= capacity().
  std::size_t high_water() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return high_water_;
  }

 private:
  void enqueue_locked(T& item) {
    items_.push_back(std::move(item));
    if (items_.size() > high_water_) high_water_ = items_.size();
  }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  std::size_t high_water_ = 0;
  bool closed_ = false;
};

}  // namespace dnj::runtime
