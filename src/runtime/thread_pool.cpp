#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <utility>

namespace dnj::runtime {

ThreadPool::ThreadPool(unsigned workers) {
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  // Workers drain the queue before exiting, so anything still here was
  // never picked up — a zero-worker pool, in the typical case. Run it
  // inline (FIFO) so the drain guarantee holds for every pool.
  while (!queue_.empty()) {
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    task();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

unsigned ThreadPool::default_threads() {
  static const unsigned cached = [] {
    if (const char* env = std::getenv("DNJ_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) return static_cast<unsigned>(std::min<long>(v, 512));
    }
    return std::max(1u, std::thread::hardware_concurrency());
  }();
  return cached;
}

ThreadPool& ThreadPool::global() {
  // Workers + the participating caller = the largest parallelism anyone can
  // ask for: the DNJ_THREADS default or the hardware width, whichever is
  // bigger (a per-call num_threads above the pool size is silently capped).
  // Floor of 4 so explicit small num_threads requests exercise real
  // concurrency even on 1-core boxes — idle workers cost nothing, and the
  // *default* parallelism is still default_threads().
  static ThreadPool pool(std::max({default_threads(),
                                   std::max(1u, std::thread::hardware_concurrency()), 4u}) -
                         1);
  return pool;
}

}  // namespace dnj::runtime
