// Marshalling between wire frames (net/frame.hpp) and the serving layer's
// Request/Response vocabulary — the translation step between "bytes on a
// socket" and "work in the MPMC queue".
//
// The full payload formats live in docs/PROTOCOL.md; in short, request
// payloads are the op-specific concatenation of three documented blocks
// (options, image, raw stream), and OK response payloads start with a
// fixed 24-byte observability block (cache/batch/latency — never part of
// the determinism contract) followed by the op's result. Error responses
// carry a UTF-8 message instead.
//
// Everything here is pure data transformation: no sockets, no threads, no
// service state — which is what lets tests/test_net_framing.cpp pin
// marshalling round trips and every rejection path without opening a
// connection, and guarantees client and server agree by construction
// (both link this one implementation).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "jobs/design_job.hpp"
#include "net/frame.hpp"
#include "serve/request.hpp"

namespace dnj::net {

/// Fixed-size prefix of every op-carrying OK response payload.
inline constexpr std::size_t kObservabilitySize = 24;

// --------------------------------------------------------------- requests

/// Builds the request frame for `req` (any serve kind, ping excluded):
/// serializes the payload and stamps the header's config digest. The
/// request_id is the caller's correlation value, echoed by the server.
Frame make_request(std::uint32_t request_id, const serve::Request& req);

/// An empty liveness-probe request (answered by the server's event loop
/// without touching the service queue).
Frame make_ping(std::uint32_t request_id);

/// Requested rendering of a kStats scrape (the one-byte request payload).
enum class StatsFormat : std::uint8_t {
  kPrometheus = 0,  ///< metrics as Prometheus text exposition
  kJson = 1,        ///< metrics as a JSON document
  kTraceJson = 2,   ///< span-trace dump as JSON (tools/trace2chrome.py input)
};

/// An admin metrics/trace scrape (protocol v2). Like ping, it is answered
/// by the server's event loop directly — no service queue. The OK response
/// payload is the rendered UTF-8 text with NO observability block.
Frame make_stats_request(std::uint32_t request_id, StatsFormat format);

/// The response to a kStats request: `text` as the whole payload.
Frame make_stats_response(std::uint32_t request_id, const std::string& text);

/// Parses a request frame into a serve request. Returns kOk and fills
/// *out, or the typed failure the server should answer with:
///   kMalformed       — truncated/over-long blocks, unknown op, or a
///                      header config digest that does not match the
///                      payload's options section
///   kInvalidArgument — structurally sound but semantically out of range
///                      (dimensions, channels, quality, restart interval,
///                      empty stream, unknown stats format)
/// kPing and kStats parse with *out untouched — the caller answers them
/// directly (for kStats, re-read the format byte from frame.payload[0]).
/// Job ops (op_is_job) also return kOk with *out untouched: the server
/// answers them on its loop thread via parse_job_submit /
/// parse_job_id_request, which do the real payload validation.
WireStatus parse_request(const Frame& frame, serve::Request* out);

// -------------------------------------------------------------- responses

/// Builds the response frame for a completed service request. Maps the
/// serve status onto the wire (kOk/kRejected/kShutdown pass through,
/// kError becomes kInternal), packs the observability block + result
/// payload on success and the error message otherwise. `op` and
/// `config_digest` echo the request's header fields.
Frame make_response(std::uint32_t request_id, Op op, std::uint64_t config_digest,
                    const serve::Response& resp);

/// Builds a protocol-error response (no service round trip): status is one
/// of the wire-only codes (kMalformed/kVersionSkew) or a refusal the
/// server decides itself (e.g. kRejected for the connection cap), payload
/// is the UTF-8 `message`.
Frame make_error(std::uint32_t request_id, Op op, WireStatus status,
                 const std::string& message);

/// A parsed response as a client sees it. Exactly one result field is
/// populated on kOk, matching the op; `error` carries the message
/// otherwise. The observability fields mirror serve::Response's.
struct WireReply {
  WireStatus status = WireStatus::kOk;
  Op op = Op::kPing;
  std::uint32_t request_id = 0;
  std::string error;

  std::vector<std::uint8_t> bytes;  ///< encode / transcode / deepn result
  image::Image image;               ///< decode result
  std::vector<float> probs;         ///< infer result

  std::uint64_t job_id = 0;         ///< job-submit result
  jobs::JobStatus job_status;       ///< job-status result
  jobs::JobResult job_result;       ///< job-result result

  bool cache_hit = false;
  std::uint32_t batch_size = 0;
  double queue_us = 0.0;
  double service_us = 0.0;
};

/// Parses a response frame. Returns false only when the frame is not a
/// structurally valid response (wrong type, truncated blocks) — a typed
/// error response parses fine and lands in out->status/out->error.
bool parse_response(const Frame& frame, WireReply* out);

// ---------------------------------------------------------- job ops (v3)
//
// The design-job ops are protocol v3. Like kPing/kStats they are answered
// on the server's loop thread (JobManager calls are O(1) map lookups;
// execution happens on the manager's own worker pool), their header
// config_digest is 0, and their OK responses carry NO observability
// block. Byte layouts are in docs/PROTOCOL.md.

/// Builds a kJobSubmit request: the spec (tenant, rate targets, SA
/// schedule, optional resume checkpoint) plus the labelled sample images.
/// `requested_job_id` 0 lets the server assign the id.
Frame make_job_submit(std::uint32_t request_id, std::uint64_t requested_job_id,
                      const jobs::DesignJobSpec& spec);

/// Parses a kJobSubmit payload. kOk fills both outputs; kMalformed for
/// truncated/over-long blocks, kInvalidArgument for out-of-range fields
/// (zero images, oversized counts, bad dimensions).
WireStatus parse_job_submit(const Frame& frame, std::uint64_t* requested_job_id,
                            jobs::DesignJobSpec* spec);

/// Builds a kJobStatus / kJobCancel / kJobResult request — all three share
/// the same 8-byte payload (the job id, LE u64).
Frame make_job_id_request(std::uint32_t request_id, Op op, std::uint64_t job_id);

/// Parses the shared job-id payload of kJobStatus/kJobCancel/kJobResult.
WireStatus parse_job_id_request(const Frame& frame, std::uint64_t* job_id);

// OK responses for each job op (errors use make_error as everywhere else).
Frame make_job_submit_response(std::uint32_t request_id, std::uint64_t job_id);
Frame make_job_status_response(std::uint32_t request_id, const jobs::JobStatus& status);
Frame make_job_cancel_response(std::uint32_t request_id);
Frame make_job_result_response(std::uint32_t request_id, const jobs::JobResult& result);

// ------------------------------------------------------------------ blocks

/// Serializes the options block for an encoder config (the exact bytes the
/// header's config digest hashes). Exposed for tests and foreign-client
/// vector generation.
void append_options(const jpeg::EncoderConfig& config, std::vector<std::uint8_t>& out);

/// The wire config digest rule: FNV-1a 64 (offset 14695981039346656037,
/// prime 1099511628211) over the payload's options section — the options
/// block for kEncode/kTranscode, the 4-byte quality field for
/// kDeepnEncode, nothing (digest 0) for kDecode/kInfer/kPing.
std::uint64_t wire_config_digest(const serve::Request& req);

}  // namespace dnj::net
