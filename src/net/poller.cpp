#include "net/poller.hpp"

#include <cerrno>
#include <unordered_map>

#include <poll.h>
#include <unistd.h>

#if defined(__linux__)
#define DNJ_NET_HAVE_EPOLL 1
#include <sys/epoll.h>
#else
#define DNJ_NET_HAVE_EPOLL 0
#endif

namespace dnj::net {

namespace {

#if DNJ_NET_HAVE_EPOLL

class EpollPoller final : public Poller {
 public:
  EpollPoller() : epfd_(::epoll_create1(0)) {}
  ~EpollPoller() override {
    if (epfd_ >= 0) ::close(epfd_);
  }
  bool ok() const { return epfd_ >= 0; }

  bool add(int fd, std::uint64_t id, bool want_read, bool want_write) override {
    ids_[fd] = id;
    epoll_event ev = make_event(fd, want_read, want_write);
    return ::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) == 0;
  }

  void update(int fd, bool want_read, bool want_write) override {
    epoll_event ev = make_event(fd, want_read, want_write);
    ::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev);
  }

  void remove(int fd) override {
    ids_.erase(fd);
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
  }

  int wait(int timeout_ms, std::vector<PollEvent>* out) override {
    epoll_event events[64];
    const int n = ::epoll_wait(epfd_, events, 64, timeout_ms);
    if (n <= 0) return 0;  // timeout or EINTR — both are zero-event wakes
    for (int i = 0; i < n; ++i) {
      PollEvent e;
      e.id = events[i].data.u64;
      e.readable = (events[i].events & EPOLLIN) != 0;
      e.writable = (events[i].events & EPOLLOUT) != 0;
      e.error = (events[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      out->push_back(e);
    }
    return n;
  }

 private:
  epoll_event make_event(int fd, bool want_read, bool want_write) {
    epoll_event ev{};
    if (want_read) ev.events |= EPOLLIN;
    if (want_write) ev.events |= EPOLLOUT;
    ev.data.u64 = ids_[fd];
    return ev;
  }

  int epfd_;
  // epoll_data carries the id, but MOD needs it again — keep the mapping.
  std::unordered_map<int, std::uint64_t> ids_;
};

#endif  // DNJ_NET_HAVE_EPOLL

class PollPoller final : public Poller {
 public:
  bool add(int fd, std::uint64_t id, bool want_read, bool want_write) override {
    if (index_.count(fd)) return false;
    index_[fd] = fds_.size();
    pollfd p{};
    p.fd = fd;
    p.events = events_mask(want_read, want_write);
    fds_.push_back(p);
    ids_.push_back(id);
    return true;
  }

  void update(int fd, bool want_read, bool want_write) override {
    auto it = index_.find(fd);
    if (it != index_.end()) fds_[it->second].events = events_mask(want_read, want_write);
  }

  void remove(int fd) override {
    auto it = index_.find(fd);
    if (it == index_.end()) return;
    const std::size_t i = it->second;
    const std::size_t last = fds_.size() - 1;
    if (i != last) {  // swap-with-last keeps removal O(1)
      fds_[i] = fds_[last];
      ids_[i] = ids_[last];
      index_[fds_[i].fd] = i;
    }
    fds_.pop_back();
    ids_.pop_back();
    index_.erase(it);
  }

  int wait(int timeout_ms, std::vector<PollEvent>* out) override {
    const int n = ::poll(fds_.data(), fds_.size(), timeout_ms);
    if (n <= 0) return 0;
    int appended = 0;
    for (std::size_t i = 0; i < fds_.size(); ++i) {
      const short re = fds_[i].revents;
      if (re == 0) continue;
      PollEvent e;
      e.id = ids_[i];
      e.readable = (re & POLLIN) != 0;
      e.writable = (re & POLLOUT) != 0;
      e.error = (re & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      out->push_back(e);
      ++appended;
    }
    return appended;
  }

 private:
  static short events_mask(bool want_read, bool want_write) {
    short m = 0;
    if (want_read) m |= POLLIN;
    if (want_write) m |= POLLOUT;
    return m;
  }

  std::vector<pollfd> fds_;
  std::vector<std::uint64_t> ids_;  ///< parallel to fds_
  std::unordered_map<int, std::size_t> index_;
};

}  // namespace

bool epoll_available() { return DNJ_NET_HAVE_EPOLL != 0; }

std::unique_ptr<Poller> make_poller(PollerBackend backend) {
#if DNJ_NET_HAVE_EPOLL
  if (backend == PollerBackend::kAuto || backend == PollerBackend::kEpoll) {
    auto p = std::make_unique<EpollPoller>();
    if (p->ok()) return p;
    if (backend == PollerBackend::kEpoll) return nullptr;
  }
#else
  if (backend == PollerBackend::kEpoll) return nullptr;
#endif
  return std::make_unique<PollPoller>();
}

}  // namespace dnj::net
