// Readiness-notification abstraction behind the event-loop server: one
// interface, two backends — epoll (Linux, O(ready) per wake) and poll
// (portable POSIX fallback, O(fds) per wake). The server is written
// against this interface only, so both backends run the exact same
// connection state machine; tests and the DNJ_NET_BACKEND env knob
// (docs/OPERATIONS.md) exercise each explicitly.
//
// Semantics are the common denominator of the two: level-triggered
// readiness, one registration per fd, interest updated in place. Every fd
// is registered with a caller-chosen 64-bit id (generation-counted
// connection ids, not raw fds, so a recycled descriptor can never alias a
// stale event).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace dnj::net {

struct PollEvent {
  std::uint64_t id = 0;
  bool readable = false;
  bool writable = false;
  bool error = false;  ///< ERR/HUP — the owner should close the fd
};

class Poller {
 public:
  virtual ~Poller() = default;

  virtual bool add(int fd, std::uint64_t id, bool want_read, bool want_write) = 0;
  virtual void update(int fd, bool want_read, bool want_write) = 0;
  virtual void remove(int fd) = 0;

  /// Blocks up to timeout_ms (-1 = indefinitely) and appends ready events
  /// to *out. Returns the number appended (0 on timeout; EINTR is treated
  /// as a zero-event wake, not an error).
  virtual int wait(int timeout_ms, std::vector<PollEvent>* out) = 0;
};

enum class PollerBackend {
  kAuto,   ///< epoll where available, poll otherwise
  kEpoll,  ///< Linux epoll; creation fails on other platforms
  kPoll,   ///< portable poll(2)
};

/// Creates the requested backend (nullptr if unavailable on this platform).
std::unique_ptr<Poller> make_poller(PollerBackend backend);

/// True when this build has the epoll backend compiled in.
bool epoll_available();

}  // namespace dnj::net
