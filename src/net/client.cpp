#include "net/client.hpp"

namespace dnj::net {

bool Client::connect(const std::string& host, std::uint16_t port, std::string* error,
                     int recv_timeout_ms) {
  fd_ = tcp_connect(host, port, error);
  if (!fd_.valid()) return false;
  parser_ = FrameParser();  // fresh stream state per connection
  if (recv_timeout_ms > 0) set_recv_timeout_ms(fd_.get(), recv_timeout_ms);
  return true;
}

std::uint32_t Client::send_request(const serve::Request& req, std::string* error) {
  const std::uint32_t id = next_id_++;
  if (!send_frame(make_request(id, req), error)) return 0;
  return id;
}

std::uint32_t Client::send_ping(std::string* error) {
  const std::uint32_t id = next_id_++;
  if (!send_frame(make_ping(id), error)) return 0;
  return id;
}

bool Client::send_frame(const Frame& frame, std::string* error) {
  const std::vector<std::uint8_t> bytes = serialize_frame(frame);
  return send_raw(bytes.data(), bytes.size(), error);
}

bool Client::send_raw(const void* data, std::size_t n, std::string* error) {
  if (!fd_.valid()) {
    if (error) *error = "not connected";
    return false;
  }
  if (!send_all(fd_.get(), data, n)) {
    if (error) *error = "send failed (peer closed?)";
    return false;
  }
  return true;
}

bool Client::recv_reply(WireReply* out, std::string* error) {
  if (!fd_.valid()) {
    if (error) *error = "not connected";
    return false;
  }
  Frame frame;
  for (;;) {
    const ParseResult pr = parser_.next(&frame);
    if (pr == ParseResult::kFrame) {
      if (!parse_response(frame, out)) {
        if (error) *error = "unparseable response payload";
        return false;
      }
      return true;
    }
    if (pr != ParseResult::kNeedMore) {
      if (error) *error = "protocol error in response stream";
      return false;
    }
    std::uint8_t buf[64 * 1024];
    const long got = recv_some(fd_.get(), buf, sizeof buf);
    if (got == 0) {
      if (error) *error = "connection closed by server";
      return false;
    }
    if (got < 0) {
      if (error) *error = "recv failed or timed out";
      return false;
    }
    parser_.feed(buf, static_cast<std::size_t>(got));
  }
}

bool Client::call(const serve::Request& req, WireReply* out, std::string* error) {
  const std::uint32_t id = send_request(req, error);
  if (id == 0) return false;
  if (!recv_reply(out, error)) return false;
  if (out->request_id != id) {
    if (error) *error = "response id does not match request id";
    return false;
  }
  return true;
}

bool Client::scrape(StatsFormat format, std::string* text, std::string* error) {
  const std::uint32_t id = next_id_++;
  if (!send_frame(make_stats_request(id, format), error)) return false;
  WireReply reply;
  if (!recv_reply(&reply, error)) return false;
  if (reply.request_id != id || reply.status != WireStatus::kOk) {
    if (error) *error = reply.error.empty() ? "unexpected scrape reply" : reply.error;
    return false;
  }
  if (text) text->assign(reply.bytes.begin(), reply.bytes.end());
  return true;
}

bool Client::round_trip(Frame frame, WireReply* out, std::string* error) {
  const std::uint32_t id = next_id_++;
  frame.request_id = id;
  if (!send_frame(frame, error)) return false;
  if (!recv_reply(out, error)) return false;
  if (out->request_id != id) {
    if (error) *error = "response id does not match request id";
    return false;
  }
  return true;
}

bool Client::job_submit(const jobs::DesignJobSpec& spec, std::uint64_t requested_id,
                        WireReply* out, std::string* error) {
  return round_trip(make_job_submit(0, requested_id, spec), out, error);
}

bool Client::job_status(std::uint64_t job_id, WireReply* out, std::string* error) {
  return round_trip(make_job_id_request(0, Op::kJobStatus, job_id), out, error);
}

bool Client::job_cancel(std::uint64_t job_id, WireReply* out, std::string* error) {
  return round_trip(make_job_id_request(0, Op::kJobCancel, job_id), out, error);
}

bool Client::job_result(std::uint64_t job_id, WireReply* out, std::string* error) {
  return round_trip(make_job_id_request(0, Op::kJobResult, job_id), out, error);
}

bool Client::ping(std::string* error) {
  const std::uint32_t id = send_ping(error);
  if (id == 0) return false;
  WireReply reply;
  if (!recv_reply(&reply, error)) return false;
  if (reply.request_id != id || reply.status != WireStatus::kOk) {
    if (error) *error = "unexpected ping reply";
    return false;
  }
  return true;
}

}  // namespace dnj::net
