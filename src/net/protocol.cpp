#include "net/protocol.hpp"

#include <array>
#include <cstring>

#include "api/status.hpp"
#include "serve/digest.hpp"

namespace dnj::net {

// The wire status byte is defined to mirror the public API's StatusCode
// value-for-value on 0..5, so a wire status a foreign client logs and a
// dnj_status_t an embedder logs agree without a translation table.
static_assert(static_cast<int>(WireStatus::kOk) == static_cast<int>(api::StatusCode::kOk));
static_assert(static_cast<int>(WireStatus::kInvalidArgument) ==
              static_cast<int>(api::StatusCode::kInvalidArgument));
static_assert(static_cast<int>(WireStatus::kDecodeError) ==
              static_cast<int>(api::StatusCode::kDecodeError));
static_assert(static_cast<int>(WireStatus::kRejected) ==
              static_cast<int>(api::StatusCode::kRejected));
static_assert(static_cast<int>(WireStatus::kShutdown) ==
              static_cast<int>(api::StatusCode::kShutdown));
static_assert(static_cast<int>(WireStatus::kInternal) ==
              static_cast<int>(api::StatusCode::kInternal));

namespace {

/// Forward-only reader over a payload with explicit bounds checks: every
/// parse path below either consumes exactly what the spec says or reports
/// a typed failure — no reads past the end, ever.
struct Cursor {
  const std::uint8_t* p;
  std::size_t left;

  bool take(std::size_t n, const std::uint8_t** out) {
    if (left < n) return false;
    *out = p;
    p += n;
    left -= n;
    return true;
  }
  bool u8(std::uint8_t* v) {
    const std::uint8_t* q;
    if (!take(1, &q)) return false;
    *v = *q;
    return true;
  }
  bool u32(std::uint32_t* v) {
    const std::uint8_t* q;
    if (!take(4, &q)) return false;
    *v = read_u32(q);
    return true;
  }
  bool u64(std::uint64_t* v) {
    const std::uint8_t* q;
    if (!take(8, &q)) return false;
    *v = read_u64(q);
    return true;
  }
  bool f64(double* v);  // defined after read_f64
};

void append_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  append_u64(out, bits);
}

double read_f64(const std::uint8_t* p) {
  const std::uint64_t bits = read_u64(p);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

bool Cursor::f64(double* v) {
  const std::uint8_t* q;
  if (!take(8, &q)) return false;
  *v = read_f64(q);
  return true;
}

void append_table(std::vector<std::uint8_t>& out, const jpeg::QuantTable& table) {
  for (int i = 0; i < 64; ++i) append_u16(out, table.step(i));
}

bool parse_table(Cursor& c, jpeg::QuantTable* out) {
  const std::uint8_t* steps;
  if (!c.take(128, &steps)) return false;
  std::array<std::uint16_t, 64> natural;
  for (int i = 0; i < 64; ++i)
    natural[static_cast<std::size_t>(i)] = read_u16(steps + 2 * i);
  *out = jpeg::QuantTable(natural);
  return true;
}

// Wire-level sanity caps for job-submit counts. Semantic validation (the
// schedule, the rate targets) belongs to JobManager::submit; these only
// keep a hostile count field from dominating the parse.
constexpr std::uint32_t kMaxTenantLen = 1024;
constexpr std::uint32_t kMaxLadderRungs = 64;
constexpr std::uint32_t kMaxJobClasses = 4096;

void append_image(const image::Image& img, std::vector<std::uint8_t>& out) {
  append_u32(out, static_cast<std::uint32_t>(img.width()));
  append_u32(out, static_cast<std::uint32_t>(img.height()));
  append_u32(out, static_cast<std::uint32_t>(img.channels()));
  out.insert(out.end(), img.data().begin(), img.data().end());
}

/// Parses the image block. Truncation/excess is kMalformed; out-of-range
/// geometry is kInvalidArgument (the structural read is still sound —
/// width/height/channels are read before the pixel count is trusted).
WireStatus parse_image(Cursor& c, bool must_consume_all, image::Image* out) {
  std::uint32_t w = 0, h = 0, ch = 0;
  if (!c.u32(&w) || !c.u32(&h) || !c.u32(&ch)) return WireStatus::kMalformed;
  if (w < 1 || w > 65535 || h < 1 || h > 65535) return WireStatus::kInvalidArgument;
  if (ch != 1 && ch != 3) return WireStatus::kInvalidArgument;
  const std::size_t bytes = std::size_t{w} * h * ch;
  const std::uint8_t* px;
  if (!c.take(bytes, &px)) return WireStatus::kMalformed;
  if (must_consume_all && c.left != 0) return WireStatus::kMalformed;
  *out = image::Image(static_cast<int>(w), static_cast<int>(h), static_cast<int>(ch),
                      std::vector<std::uint8_t>(px, px + bytes));
  return WireStatus::kOk;
}

WireStatus parse_options(Cursor& c, jpeg::EncoderConfig* out) {
  std::uint32_t quality = 0, restart = 0, comment_len = 0;
  std::uint8_t custom = 0, subsampling = 0, optimize = 0, reserved = 0;
  if (!c.u32(&quality) || !c.u8(&custom) || !c.u8(&subsampling) || !c.u8(&optimize) ||
      !c.u8(&reserved) || !c.u32(&restart) || !c.u32(&comment_len))
    return WireStatus::kMalformed;
  if (custom > 1 || subsampling > 1 || optimize > 1 || reserved != 0)
    return WireStatus::kMalformed;
  const std::uint8_t* comment;
  if (!c.take(comment_len, &comment)) return WireStatus::kMalformed;

  jpeg::EncoderConfig cfg;
  cfg.quality = static_cast<int>(quality);
  cfg.use_custom_tables = custom != 0;
  cfg.subsampling = subsampling == 0 ? jpeg::Subsampling::k444 : jpeg::Subsampling::k420;
  cfg.optimize_huffman = optimize != 0;
  cfg.restart_interval = static_cast<int>(restart);
  cfg.comment.assign(reinterpret_cast<const char*>(comment), comment_len);
  if (custom) {
    const std::uint8_t* steps;
    std::array<std::uint16_t, 64> natural;
    if (!c.take(128, &steps)) return WireStatus::kMalformed;
    for (int i = 0; i < 64; ++i) natural[static_cast<std::size_t>(i)] = read_u16(steps + 2 * i);
    cfg.luma_table = jpeg::QuantTable(natural);
    if (!c.take(128, &steps)) return WireStatus::kMalformed;
    for (int i = 0; i < 64; ++i) natural[static_cast<std::size_t>(i)] = read_u16(steps + 2 * i);
    cfg.chroma_table = jpeg::QuantTable(natural);
  }
  // Range validation after the structural read so a truncated frame is
  // always kMalformed, never misreported as a bad argument.
  if (cfg.quality < 1 || cfg.quality > 100) return WireStatus::kInvalidArgument;
  if (static_cast<std::int32_t>(restart) < 0) return WireStatus::kInvalidArgument;
  *out = cfg;
  return WireStatus::kOk;
}

WireStatus wire_status_from_serve(serve::Status s) {
  switch (s) {
    case serve::Status::kOk: return WireStatus::kOk;
    case serve::Status::kRejected: return WireStatus::kRejected;
    case serve::Status::kShutdown: return WireStatus::kShutdown;
    case serve::Status::kError: break;
  }
  return WireStatus::kInternal;
}

/// The wire digest hash: textbook FNV-1a 64 with the standard offset
/// basis, NOT serve::fnv1a (whose seed is an internal constant free to
/// change). A foreign client must be able to reproduce this from the
/// published parameters alone.
std::uint64_t wire_fnv1a(const std::uint8_t* data, std::size_t n) {
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

Op op_from_kind(serve::RequestKind kind) {
  switch (kind) {
    case serve::RequestKind::kEncode: return Op::kEncode;
    case serve::RequestKind::kDecode: return Op::kDecode;
    case serve::RequestKind::kTranscode: return Op::kTranscode;
    case serve::RequestKind::kDeepnEncode: return Op::kDeepnEncode;
    case serve::RequestKind::kInfer: return Op::kInfer;
  }
  return Op::kPing;
}

}  // namespace

void append_options(const jpeg::EncoderConfig& config, std::vector<std::uint8_t>& out) {
  append_u32(out, static_cast<std::uint32_t>(config.quality));
  append_u8(out, config.use_custom_tables ? 1 : 0);
  append_u8(out, config.subsampling == jpeg::Subsampling::k444 ? 0 : 1);
  append_u8(out, config.optimize_huffman ? 1 : 0);
  append_u8(out, 0);  // reserved
  append_u32(out, static_cast<std::uint32_t>(config.restart_interval));
  append_u32(out, static_cast<std::uint32_t>(config.comment.size()));
  out.insert(out.end(), config.comment.begin(), config.comment.end());
  if (config.use_custom_tables) {
    for (int i = 0; i < 64; ++i) append_u16(out, config.luma_table.step(i));
    for (int i = 0; i < 64; ++i) append_u16(out, config.chroma_table.step(i));
  }
}

std::uint64_t wire_config_digest(const serve::Request& req) {
  // Digest of the payload's options section only — recomputable by the
  // receiver from the bytes it just parsed, independent of any in-process
  // digest scheme (which may evolve freely behind the API).
  static thread_local std::vector<std::uint8_t> scratch;
  scratch.clear();
  switch (req.kind) {
    case serve::RequestKind::kEncode:
    case serve::RequestKind::kTranscode:
      append_options(req.config, scratch);
      break;
    case serve::RequestKind::kDeepnEncode:
      append_u32(scratch, static_cast<std::uint32_t>(req.quality));
      break;
    case serve::RequestKind::kDecode:
    case serve::RequestKind::kInfer:
      return 0;
  }
  return wire_fnv1a(scratch.data(), scratch.size());
}

Frame make_request(std::uint32_t request_id, const serve::Request& req) {
  Frame f;
  f.type = FrameType::kRequest;
  f.op = op_from_kind(req.kind);
  f.request_id = request_id;
  f.config_digest = wire_config_digest(req);
  switch (req.kind) {
    case serve::RequestKind::kEncode:
      append_options(req.config, f.payload);
      append_image(req.image, f.payload);
      break;
    case serve::RequestKind::kDecode:
    case serve::RequestKind::kInfer:
      f.payload = req.bytes;
      break;
    case serve::RequestKind::kTranscode:
      append_options(req.config, f.payload);
      f.payload.insert(f.payload.end(), req.bytes.begin(), req.bytes.end());
      break;
    case serve::RequestKind::kDeepnEncode:
      append_u32(f.payload, static_cast<std::uint32_t>(req.quality));
      append_image(req.image, f.payload);
      break;
  }
  return f;
}

Frame make_ping(std::uint32_t request_id) {
  Frame f;
  f.type = FrameType::kRequest;
  f.op = Op::kPing;
  f.request_id = request_id;
  return f;
}

Frame make_stats_request(std::uint32_t request_id, StatsFormat format) {
  Frame f;
  f.type = FrameType::kRequest;
  f.op = Op::kStats;
  f.request_id = request_id;
  append_u8(f.payload, static_cast<std::uint8_t>(format));
  return f;
}

Frame make_stats_response(std::uint32_t request_id, const std::string& text) {
  Frame f;
  f.type = FrameType::kResponse;
  f.op = Op::kStats;
  f.status = static_cast<std::uint8_t>(WireStatus::kOk);
  f.request_id = request_id;
  f.payload.assign(text.begin(), text.end());
  return f;
}

WireStatus parse_request(const Frame& frame, serve::Request* out) {
  if (frame.type != FrameType::kRequest) return WireStatus::kMalformed;
  Cursor c{frame.payload.data(), frame.payload.size()};
  serve::Request req;
  switch (frame.op) {
    case Op::kPing:
      if (c.left != 0) return WireStatus::kMalformed;
      if (frame.config_digest != 0) return WireStatus::kMalformed;
      return WireStatus::kOk;
    case Op::kStats: {
      // Admin scrape: exactly one format byte, no options -> digest 0.
      if (frame.config_digest != 0) return WireStatus::kMalformed;
      std::uint8_t format = 0;
      if (!c.u8(&format) || c.left != 0) return WireStatus::kMalformed;
      if (format > static_cast<std::uint8_t>(StatsFormat::kTraceJson))
        return WireStatus::kInvalidArgument;
      return WireStatus::kOk;
    }
    case Op::kJobSubmit:
    case Op::kJobStatus:
    case Op::kJobCancel:
    case Op::kJobResult:
      // Answered on the loop thread; parse_job_submit/parse_job_id_request
      // do the payload validation there.
      return WireStatus::kOk;
    case Op::kEncode:
    case Op::kTranscode: {
      req.kind = frame.op == Op::kEncode ? serve::RequestKind::kEncode
                                         : serve::RequestKind::kTranscode;
      const std::uint8_t* options_begin = c.p;
      if (WireStatus s = parse_options(c, &req.config); s != WireStatus::kOk) return s;
      // The header digest covers exactly the options section; a mismatch
      // means the header and payload disagree about what computation this
      // is — corrupt or miscomposed, either way malformed.
      if (frame.config_digest !=
          wire_fnv1a(options_begin, static_cast<std::size_t>(c.p - options_begin)))
        return WireStatus::kMalformed;
      if (frame.op == Op::kEncode) {
        if (WireStatus s = parse_image(c, /*must_consume_all=*/true, &req.image);
            s != WireStatus::kOk)
          return s;
      } else {
        if (c.left == 0) return WireStatus::kInvalidArgument;
        req.bytes.assign(c.p, c.p + c.left);
      }
      break;
    }
    case Op::kDecode:
    case Op::kInfer:
      req.kind = frame.op == Op::kDecode ? serve::RequestKind::kDecode
                                         : serve::RequestKind::kInfer;
      if (frame.config_digest != 0) return WireStatus::kMalformed;
      if (c.left == 0) return WireStatus::kInvalidArgument;
      req.bytes.assign(c.p, c.p + c.left);
      break;
    case Op::kDeepnEncode: {
      req.kind = serve::RequestKind::kDeepnEncode;
      const std::uint8_t* quality_begin = c.p;
      std::uint32_t quality = 0;
      if (!c.u32(&quality)) return WireStatus::kMalformed;
      if (frame.config_digest != wire_fnv1a(quality_begin, 4))
        return WireStatus::kMalformed;
      if (quality < 1 || quality > 100) return WireStatus::kInvalidArgument;
      req.quality = static_cast<int>(quality);
      if (WireStatus s = parse_image(c, /*must_consume_all=*/true, &req.image);
          s != WireStatus::kOk)
        return s;
      break;
    }
    default:
      return WireStatus::kMalformed;
  }
  *out = std::move(req);
  return WireStatus::kOk;
}

Frame make_response(std::uint32_t request_id, Op op, std::uint64_t config_digest,
                    const serve::Response& resp) {
  const WireStatus status = wire_status_from_serve(resp.status);
  if (status != WireStatus::kOk) return make_error(request_id, op, status, resp.error);

  Frame f;
  f.type = FrameType::kResponse;
  f.op = op;
  f.status = static_cast<std::uint8_t>(WireStatus::kOk);
  f.request_id = request_id;
  f.config_digest = config_digest;
  // Observability block (24 bytes, fixed): scheduling facts only — the
  // determinism contract starts at the byte after this block.
  append_u8(f.payload, resp.cache_hit ? 1 : 0);
  append_u8(f.payload, 0);
  append_u8(f.payload, 0);
  append_u8(f.payload, 0);
  append_u32(f.payload, static_cast<std::uint32_t>(resp.batch_size));
  append_f64(f.payload, resp.queue_us);
  append_f64(f.payload, resp.service_us);
  switch (op) {
    case Op::kEncode:
    case Op::kTranscode:
    case Op::kDeepnEncode:
      f.payload.insert(f.payload.end(), resp.bytes.begin(), resp.bytes.end());
      break;
    case Op::kDecode:
      append_image(resp.image, f.payload);
      break;
    case Op::kInfer: {
      append_u32(f.payload, static_cast<std::uint32_t>(resp.probs.size()));
      for (float p : resp.probs) {
        std::uint32_t bits;
        std::memcpy(&bits, &p, sizeof(bits));
        append_u32(f.payload, bits);
      }
      break;
    }
    case Op::kPing:
    case Op::kStats:       // built by make_stats_response; never via the service
    case Op::kJobSubmit:   // job responses are built by make_job_*_response;
    case Op::kJobStatus:   // they never travel through the service queue
    case Op::kJobCancel:
    case Op::kJobResult:
      break;
  }
  return f;
}

Frame make_error(std::uint32_t request_id, Op op, WireStatus status,
                 const std::string& message) {
  Frame f;
  f.type = FrameType::kResponse;
  f.op = op;
  f.status = static_cast<std::uint8_t>(status);
  f.request_id = request_id;
  f.payload.assign(message.begin(), message.end());
  return f;
}

bool parse_response(const Frame& frame, WireReply* out) {
  if (frame.type != FrameType::kResponse) return false;
  WireReply r;
  r.status = static_cast<WireStatus>(frame.status);
  r.op = frame.op;
  r.request_id = frame.request_id;
  if (r.status != WireStatus::kOk) {
    r.error.assign(frame.payload.begin(), frame.payload.end());
    *out = std::move(r);
    return true;
  }
  Cursor c{frame.payload.data(), frame.payload.size()};
  // Ping has no payload, a stats response is bare text, and job responses
  // never touch the service queue — none carry the observability block.
  if (frame.op != Op::kPing && frame.op != Op::kStats && !op_is_job(frame.op)) {
    const std::uint8_t* obs;
    if (!c.take(kObservabilitySize, &obs)) return false;
    r.cache_hit = obs[0] != 0;
    r.batch_size = read_u32(obs + 4);
    r.queue_us = read_f64(obs + 8);
    r.service_us = read_f64(obs + 16);
  }
  switch (frame.op) {
    case Op::kPing:
      if (c.left != 0) return false;
      break;
    case Op::kEncode:
    case Op::kTranscode:
    case Op::kDeepnEncode:
    case Op::kStats:  // rendered UTF-8 text rides in `bytes`
      r.bytes.assign(c.p, c.p + c.left);
      break;
    case Op::kDecode:
      if (parse_image(c, /*must_consume_all=*/true, &r.image) != WireStatus::kOk)
        return false;
      break;
    case Op::kInfer: {
      std::uint32_t count = 0;
      if (!c.u32(&count)) return false;
      const std::uint8_t* data;
      if (!c.take(std::size_t{count} * 4, &data) || c.left != 0) return false;
      r.probs.resize(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint32_t bits = read_u32(data + 4 * i);
        std::memcpy(&r.probs[i], &bits, sizeof(float));
      }
      break;
    }
    case Op::kJobSubmit:
      if (!c.u64(&r.job_id) || c.left != 0) return false;
      break;
    case Op::kJobCancel:
      if (c.left != 0) return false;
      break;
    case Op::kJobStatus: {
      jobs::JobStatus& js = r.job_status;
      std::uint8_t state = 0, phase = 0;
      const std::uint8_t* reserved;
      std::uint32_t error_len = 0;
      if (!c.u64(&js.id) || !c.u8(&state) || !c.u8(&phase) || !c.take(2, &reserved) ||
          !c.u32(&js.sa_iteration) || !c.u32(&js.sa_total) || !c.u32(&js.checkpoints) ||
          !c.u32(&js.rungs) || !c.f64(&js.progress) || !c.f64(&js.target_bytes) ||
          !c.f64(&js.achieved_bytes) || !c.f64(&js.rate_error) || !c.u32(&error_len))
        return false;
      if (state >= jobs::kNumJobStates ||
          phase > static_cast<std::uint8_t>(jobs::JobPhase::kDone))
        return false;
      js.state = static_cast<jobs::JobState>(state);
      js.phase = static_cast<jobs::JobPhase>(phase);
      const std::uint8_t* msg;
      if (!c.take(error_len, &msg) || c.left != 0) return false;
      js.error.assign(reinterpret_cast<const char*>(msg), error_len);
      break;
    }
    case Op::kJobResult: {
      jobs::JobResult& jr = r.job_result;
      std::uint32_t quality = 0, iterations = 0, accepted = 0, reserved = 0;
      std::uint32_t rung_count = 0, checkpoint_len = 0;
      if (!c.u64(&jr.id) || !c.u32(&quality) || !c.u32(&iterations) ||
          !c.u32(&accepted) || !c.u32(&reserved) || !c.f64(&jr.target_bytes) ||
          !c.f64(&jr.achieved_bytes) || !c.f64(&jr.initial_cost) ||
          !c.f64(&jr.best_cost) || !parse_table(c, &jr.table) || !c.u32(&rung_count))
        return false;
      jr.quality = static_cast<int>(quality);
      jr.sa_iterations = iterations;
      jr.accepted_moves = static_cast<int>(accepted);
      jr.rungs.clear();
      jr.rungs.reserve(rung_count > 256 ? 0 : rung_count);
      for (std::uint32_t i = 0; i < rung_count; ++i) {
        jobs::LadderRung rung;
        std::uint32_t name_len = 0, rung_quality = 0;
        const std::uint8_t* name;
        if (!c.u32(&name_len) || !c.take(name_len, &name) || !c.u64(&rung.version) ||
            !c.u32(&rung_quality) || !c.f64(&rung.target_bytes) ||
            !c.f64(&rung.achieved_bytes))
          return false;
        rung.name.assign(reinterpret_cast<const char*>(name), name_len);
        rung.quality = static_cast<int>(rung_quality);
        jr.rungs.push_back(std::move(rung));
      }
      const std::uint8_t* ckpt;
      if (!c.u32(&checkpoint_len) || !c.take(checkpoint_len, &ckpt) || c.left != 0)
        return false;
      jr.checkpoint.assign(ckpt, ckpt + checkpoint_len);
      break;
    }
    default:
      return false;
  }
  *out = std::move(r);
  return true;
}

// ----------------------------------------------------------- job ops (v3)

Frame make_job_submit(std::uint32_t request_id, std::uint64_t requested_job_id,
                      const jobs::DesignJobSpec& spec) {
  Frame f;
  f.type = FrameType::kRequest;
  f.op = Op::kJobSubmit;
  f.request_id = request_id;
  std::vector<std::uint8_t>& p = f.payload;
  append_u64(p, requested_job_id);
  append_u32(p, static_cast<std::uint32_t>(spec.tenant.size()));
  p.insert(p.end(), spec.tenant.begin(), spec.tenant.end());
  append_f64(p, spec.target_bytes_per_image);
  append_u32(p, static_cast<std::uint32_t>(spec.ladder.size()));
  for (double target : spec.ladder) append_f64(p, target);
  append_u32(p, static_cast<std::uint32_t>(spec.sa.iterations));
  append_f64(p, spec.sa.t_start);
  append_f64(p, spec.sa.t_end);
  append_f64(p, spec.sa.lambda);
  append_u32(p, static_cast<std::uint32_t>(spec.sa.max_step));
  append_u32(p, static_cast<std::uint32_t>(spec.sa.sample_images));
  append_u64(p, spec.sa.seed);
  append_u32(p, static_cast<std::uint32_t>(spec.sample_interval));
  append_u32(p, static_cast<std::uint32_t>(spec.anneal_limit));
  append_u64(p, static_cast<std::uint64_t>(spec.quota_bytes));
  append_u32(p, static_cast<std::uint32_t>(spec.checkpoint.size()));
  p.insert(p.end(), spec.checkpoint.begin(), spec.checkpoint.end());
  append_u32(p, static_cast<std::uint32_t>(spec.dataset.num_classes));
  append_u32(p, static_cast<std::uint32_t>(spec.dataset.size()));
  for (const data::Sample& s : spec.dataset.samples) {
    append_u32(p, static_cast<std::uint32_t>(s.label));
    append_image(s.image, p);
  }
  return f;
}

WireStatus parse_job_submit(const Frame& frame, std::uint64_t* requested_job_id,
                            jobs::DesignJobSpec* spec) {
  if (frame.type != FrameType::kRequest || frame.op != Op::kJobSubmit)
    return WireStatus::kMalformed;
  if (frame.config_digest != 0) return WireStatus::kMalformed;
  Cursor c{frame.payload.data(), frame.payload.size()};
  jobs::DesignJobSpec out;
  std::uint64_t id = 0;
  std::uint32_t tenant_len = 0;
  if (!c.u64(&id) || !c.u32(&tenant_len)) return WireStatus::kMalformed;
  const std::uint8_t* tenant;
  if (!c.take(tenant_len, &tenant)) return WireStatus::kMalformed;
  if (tenant_len == 0 || tenant_len > kMaxTenantLen) return WireStatus::kInvalidArgument;
  out.tenant.assign(reinterpret_cast<const char*>(tenant), tenant_len);
  std::uint32_t ladder_count = 0;
  if (!c.f64(&out.target_bytes_per_image) || !c.u32(&ladder_count))
    return WireStatus::kMalformed;
  if (ladder_count > kMaxLadderRungs) return WireStatus::kInvalidArgument;
  out.ladder.resize(ladder_count);
  for (std::uint32_t i = 0; i < ladder_count; ++i)
    if (!c.f64(&out.ladder[i])) return WireStatus::kMalformed;
  std::uint32_t iterations = 0, max_step = 0, sample_images = 0;
  std::uint32_t sample_interval = 0, anneal_limit = 0, checkpoint_len = 0;
  std::uint64_t quota = 0;
  if (!c.u32(&iterations) || !c.f64(&out.sa.t_start) || !c.f64(&out.sa.t_end) ||
      !c.f64(&out.sa.lambda) || !c.u32(&max_step) || !c.u32(&sample_images) ||
      !c.u64(&out.sa.seed) || !c.u32(&sample_interval) || !c.u32(&anneal_limit) ||
      !c.u64(&quota) || !c.u32(&checkpoint_len))
    return WireStatus::kMalformed;
  out.sa.iterations = static_cast<int>(iterations);
  out.sa.max_step = static_cast<int>(max_step);
  out.sa.sample_images = static_cast<int>(sample_images);
  out.sample_interval = static_cast<int>(sample_interval);
  out.anneal_limit = static_cast<int>(anneal_limit);
  out.quota_bytes = static_cast<std::size_t>(quota);
  const std::uint8_t* ckpt;
  if (!c.take(checkpoint_len, &ckpt)) return WireStatus::kMalformed;
  out.checkpoint.assign(ckpt, ckpt + checkpoint_len);
  std::uint32_t num_classes = 0, image_count = 0;
  if (!c.u32(&num_classes) || !c.u32(&image_count)) return WireStatus::kMalformed;
  if (num_classes < 1 || num_classes > kMaxJobClasses) return WireStatus::kInvalidArgument;
  if (image_count < 1) return WireStatus::kInvalidArgument;
  out.dataset.num_classes = static_cast<int>(num_classes);
  out.dataset.samples.reserve(image_count);
  for (std::uint32_t i = 0; i < image_count; ++i) {
    data::Sample s;
    std::uint32_t label = 0;
    if (!c.u32(&label)) return WireStatus::kMalformed;
    const bool last = i + 1 == image_count;
    if (WireStatus st = parse_image(c, /*must_consume_all=*/last, &s.image);
        st != WireStatus::kOk)
      return st;
    if (label >= num_classes) return WireStatus::kInvalidArgument;
    s.label = static_cast<int>(label);
    out.dataset.samples.push_back(std::move(s));
  }
  *requested_job_id = id;
  *spec = std::move(out);
  return WireStatus::kOk;
}

Frame make_job_id_request(std::uint32_t request_id, Op op, std::uint64_t job_id) {
  Frame f;
  f.type = FrameType::kRequest;
  f.op = op;
  f.request_id = request_id;
  append_u64(f.payload, job_id);
  return f;
}

WireStatus parse_job_id_request(const Frame& frame, std::uint64_t* job_id) {
  if (frame.type != FrameType::kRequest) return WireStatus::kMalformed;
  if (frame.op != Op::kJobStatus && frame.op != Op::kJobCancel &&
      frame.op != Op::kJobResult)
    return WireStatus::kMalformed;
  if (frame.config_digest != 0) return WireStatus::kMalformed;
  Cursor c{frame.payload.data(), frame.payload.size()};
  if (!c.u64(job_id) || c.left != 0) return WireStatus::kMalformed;
  return WireStatus::kOk;
}

Frame make_job_submit_response(std::uint32_t request_id, std::uint64_t job_id) {
  Frame f;
  f.type = FrameType::kResponse;
  f.op = Op::kJobSubmit;
  f.status = static_cast<std::uint8_t>(WireStatus::kOk);
  f.request_id = request_id;
  append_u64(f.payload, job_id);
  return f;
}

Frame make_job_status_response(std::uint32_t request_id, const jobs::JobStatus& status) {
  Frame f;
  f.type = FrameType::kResponse;
  f.op = Op::kJobStatus;
  f.status = static_cast<std::uint8_t>(WireStatus::kOk);
  f.request_id = request_id;
  std::vector<std::uint8_t>& p = f.payload;
  append_u64(p, status.id);
  append_u8(p, static_cast<std::uint8_t>(status.state));
  append_u8(p, static_cast<std::uint8_t>(status.phase));
  append_u16(p, 0);  // reserved
  append_u32(p, status.sa_iteration);
  append_u32(p, status.sa_total);
  append_u32(p, status.checkpoints);
  append_u32(p, status.rungs);
  append_f64(p, status.progress);
  append_f64(p, status.target_bytes);
  append_f64(p, status.achieved_bytes);
  append_f64(p, status.rate_error);
  append_u32(p, static_cast<std::uint32_t>(status.error.size()));
  p.insert(p.end(), status.error.begin(), status.error.end());
  return f;
}

Frame make_job_cancel_response(std::uint32_t request_id) {
  Frame f;
  f.type = FrameType::kResponse;
  f.op = Op::kJobCancel;
  f.status = static_cast<std::uint8_t>(WireStatus::kOk);
  f.request_id = request_id;
  return f;
}

Frame make_job_result_response(std::uint32_t request_id, const jobs::JobResult& result) {
  Frame f;
  f.type = FrameType::kResponse;
  f.op = Op::kJobResult;
  f.status = static_cast<std::uint8_t>(WireStatus::kOk);
  f.request_id = request_id;
  std::vector<std::uint8_t>& p = f.payload;
  append_u64(p, result.id);
  append_u32(p, static_cast<std::uint32_t>(result.quality));
  append_u32(p, result.sa_iterations);
  append_u32(p, static_cast<std::uint32_t>(result.accepted_moves));
  append_u32(p, 0);  // reserved
  append_f64(p, result.target_bytes);
  append_f64(p, result.achieved_bytes);
  append_f64(p, result.initial_cost);
  append_f64(p, result.best_cost);
  append_table(p, result.table);
  append_u32(p, static_cast<std::uint32_t>(result.rungs.size()));
  for (const jobs::LadderRung& rung : result.rungs) {
    append_u32(p, static_cast<std::uint32_t>(rung.name.size()));
    p.insert(p.end(), rung.name.begin(), rung.name.end());
    append_u64(p, rung.version);
    append_u32(p, static_cast<std::uint32_t>(rung.quality));
    append_f64(p, rung.target_bytes);
    append_f64(p, rung.achieved_bytes);
  }
  append_u32(p, static_cast<std::uint32_t>(result.checkpoint.size()));
  p.insert(p.end(), result.checkpoint.begin(), result.checkpoint.end());
  return f;
}

}  // namespace dnj::net
