#include "net/protocol.hpp"

#include <array>
#include <cstring>

#include "api/status.hpp"
#include "serve/digest.hpp"

namespace dnj::net {

// The wire status byte is defined to mirror the public API's StatusCode
// value-for-value on 0..5, so a wire status a foreign client logs and a
// dnj_status_t an embedder logs agree without a translation table.
static_assert(static_cast<int>(WireStatus::kOk) == static_cast<int>(api::StatusCode::kOk));
static_assert(static_cast<int>(WireStatus::kInvalidArgument) ==
              static_cast<int>(api::StatusCode::kInvalidArgument));
static_assert(static_cast<int>(WireStatus::kDecodeError) ==
              static_cast<int>(api::StatusCode::kDecodeError));
static_assert(static_cast<int>(WireStatus::kRejected) ==
              static_cast<int>(api::StatusCode::kRejected));
static_assert(static_cast<int>(WireStatus::kShutdown) ==
              static_cast<int>(api::StatusCode::kShutdown));
static_assert(static_cast<int>(WireStatus::kInternal) ==
              static_cast<int>(api::StatusCode::kInternal));

namespace {

/// Forward-only reader over a payload with explicit bounds checks: every
/// parse path below either consumes exactly what the spec says or reports
/// a typed failure — no reads past the end, ever.
struct Cursor {
  const std::uint8_t* p;
  std::size_t left;

  bool take(std::size_t n, const std::uint8_t** out) {
    if (left < n) return false;
    *out = p;
    p += n;
    left -= n;
    return true;
  }
  bool u8(std::uint8_t* v) {
    const std::uint8_t* q;
    if (!take(1, &q)) return false;
    *v = *q;
    return true;
  }
  bool u32(std::uint32_t* v) {
    const std::uint8_t* q;
    if (!take(4, &q)) return false;
    *v = read_u32(q);
    return true;
  }
};

void append_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  append_u64(out, bits);
}

double read_f64(const std::uint8_t* p) {
  const std::uint64_t bits = read_u64(p);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

void append_image(const image::Image& img, std::vector<std::uint8_t>& out) {
  append_u32(out, static_cast<std::uint32_t>(img.width()));
  append_u32(out, static_cast<std::uint32_t>(img.height()));
  append_u32(out, static_cast<std::uint32_t>(img.channels()));
  out.insert(out.end(), img.data().begin(), img.data().end());
}

/// Parses the image block. Truncation/excess is kMalformed; out-of-range
/// geometry is kInvalidArgument (the structural read is still sound —
/// width/height/channels are read before the pixel count is trusted).
WireStatus parse_image(Cursor& c, bool must_consume_all, image::Image* out) {
  std::uint32_t w = 0, h = 0, ch = 0;
  if (!c.u32(&w) || !c.u32(&h) || !c.u32(&ch)) return WireStatus::kMalformed;
  if (w < 1 || w > 65535 || h < 1 || h > 65535) return WireStatus::kInvalidArgument;
  if (ch != 1 && ch != 3) return WireStatus::kInvalidArgument;
  const std::size_t bytes = std::size_t{w} * h * ch;
  const std::uint8_t* px;
  if (!c.take(bytes, &px)) return WireStatus::kMalformed;
  if (must_consume_all && c.left != 0) return WireStatus::kMalformed;
  *out = image::Image(static_cast<int>(w), static_cast<int>(h), static_cast<int>(ch),
                      std::vector<std::uint8_t>(px, px + bytes));
  return WireStatus::kOk;
}

WireStatus parse_options(Cursor& c, jpeg::EncoderConfig* out) {
  std::uint32_t quality = 0, restart = 0, comment_len = 0;
  std::uint8_t custom = 0, subsampling = 0, optimize = 0, reserved = 0;
  if (!c.u32(&quality) || !c.u8(&custom) || !c.u8(&subsampling) || !c.u8(&optimize) ||
      !c.u8(&reserved) || !c.u32(&restart) || !c.u32(&comment_len))
    return WireStatus::kMalformed;
  if (custom > 1 || subsampling > 1 || optimize > 1 || reserved != 0)
    return WireStatus::kMalformed;
  const std::uint8_t* comment;
  if (!c.take(comment_len, &comment)) return WireStatus::kMalformed;

  jpeg::EncoderConfig cfg;
  cfg.quality = static_cast<int>(quality);
  cfg.use_custom_tables = custom != 0;
  cfg.subsampling = subsampling == 0 ? jpeg::Subsampling::k444 : jpeg::Subsampling::k420;
  cfg.optimize_huffman = optimize != 0;
  cfg.restart_interval = static_cast<int>(restart);
  cfg.comment.assign(reinterpret_cast<const char*>(comment), comment_len);
  if (custom) {
    const std::uint8_t* steps;
    std::array<std::uint16_t, 64> natural;
    if (!c.take(128, &steps)) return WireStatus::kMalformed;
    for (int i = 0; i < 64; ++i) natural[static_cast<std::size_t>(i)] = read_u16(steps + 2 * i);
    cfg.luma_table = jpeg::QuantTable(natural);
    if (!c.take(128, &steps)) return WireStatus::kMalformed;
    for (int i = 0; i < 64; ++i) natural[static_cast<std::size_t>(i)] = read_u16(steps + 2 * i);
    cfg.chroma_table = jpeg::QuantTable(natural);
  }
  // Range validation after the structural read so a truncated frame is
  // always kMalformed, never misreported as a bad argument.
  if (cfg.quality < 1 || cfg.quality > 100) return WireStatus::kInvalidArgument;
  if (static_cast<std::int32_t>(restart) < 0) return WireStatus::kInvalidArgument;
  *out = cfg;
  return WireStatus::kOk;
}

WireStatus wire_status_from_serve(serve::Status s) {
  switch (s) {
    case serve::Status::kOk: return WireStatus::kOk;
    case serve::Status::kRejected: return WireStatus::kRejected;
    case serve::Status::kShutdown: return WireStatus::kShutdown;
    case serve::Status::kError: break;
  }
  return WireStatus::kInternal;
}

/// The wire digest hash: textbook FNV-1a 64 with the standard offset
/// basis, NOT serve::fnv1a (whose seed is an internal constant free to
/// change). A foreign client must be able to reproduce this from the
/// published parameters alone.
std::uint64_t wire_fnv1a(const std::uint8_t* data, std::size_t n) {
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

Op op_from_kind(serve::RequestKind kind) {
  switch (kind) {
    case serve::RequestKind::kEncode: return Op::kEncode;
    case serve::RequestKind::kDecode: return Op::kDecode;
    case serve::RequestKind::kTranscode: return Op::kTranscode;
    case serve::RequestKind::kDeepnEncode: return Op::kDeepnEncode;
    case serve::RequestKind::kInfer: return Op::kInfer;
  }
  return Op::kPing;
}

}  // namespace

void append_options(const jpeg::EncoderConfig& config, std::vector<std::uint8_t>& out) {
  append_u32(out, static_cast<std::uint32_t>(config.quality));
  append_u8(out, config.use_custom_tables ? 1 : 0);
  append_u8(out, config.subsampling == jpeg::Subsampling::k444 ? 0 : 1);
  append_u8(out, config.optimize_huffman ? 1 : 0);
  append_u8(out, 0);  // reserved
  append_u32(out, static_cast<std::uint32_t>(config.restart_interval));
  append_u32(out, static_cast<std::uint32_t>(config.comment.size()));
  out.insert(out.end(), config.comment.begin(), config.comment.end());
  if (config.use_custom_tables) {
    for (int i = 0; i < 64; ++i) append_u16(out, config.luma_table.step(i));
    for (int i = 0; i < 64; ++i) append_u16(out, config.chroma_table.step(i));
  }
}

std::uint64_t wire_config_digest(const serve::Request& req) {
  // Digest of the payload's options section only — recomputable by the
  // receiver from the bytes it just parsed, independent of any in-process
  // digest scheme (which may evolve freely behind the API).
  static thread_local std::vector<std::uint8_t> scratch;
  scratch.clear();
  switch (req.kind) {
    case serve::RequestKind::kEncode:
    case serve::RequestKind::kTranscode:
      append_options(req.config, scratch);
      break;
    case serve::RequestKind::kDeepnEncode:
      append_u32(scratch, static_cast<std::uint32_t>(req.quality));
      break;
    case serve::RequestKind::kDecode:
    case serve::RequestKind::kInfer:
      return 0;
  }
  return wire_fnv1a(scratch.data(), scratch.size());
}

Frame make_request(std::uint32_t request_id, const serve::Request& req) {
  Frame f;
  f.type = FrameType::kRequest;
  f.op = op_from_kind(req.kind);
  f.request_id = request_id;
  f.config_digest = wire_config_digest(req);
  switch (req.kind) {
    case serve::RequestKind::kEncode:
      append_options(req.config, f.payload);
      append_image(req.image, f.payload);
      break;
    case serve::RequestKind::kDecode:
    case serve::RequestKind::kInfer:
      f.payload = req.bytes;
      break;
    case serve::RequestKind::kTranscode:
      append_options(req.config, f.payload);
      f.payload.insert(f.payload.end(), req.bytes.begin(), req.bytes.end());
      break;
    case serve::RequestKind::kDeepnEncode:
      append_u32(f.payload, static_cast<std::uint32_t>(req.quality));
      append_image(req.image, f.payload);
      break;
  }
  return f;
}

Frame make_ping(std::uint32_t request_id) {
  Frame f;
  f.type = FrameType::kRequest;
  f.op = Op::kPing;
  f.request_id = request_id;
  return f;
}

Frame make_stats_request(std::uint32_t request_id, StatsFormat format) {
  Frame f;
  f.type = FrameType::kRequest;
  f.op = Op::kStats;
  f.request_id = request_id;
  append_u8(f.payload, static_cast<std::uint8_t>(format));
  return f;
}

Frame make_stats_response(std::uint32_t request_id, const std::string& text) {
  Frame f;
  f.type = FrameType::kResponse;
  f.op = Op::kStats;
  f.status = static_cast<std::uint8_t>(WireStatus::kOk);
  f.request_id = request_id;
  f.payload.assign(text.begin(), text.end());
  return f;
}

WireStatus parse_request(const Frame& frame, serve::Request* out) {
  if (frame.type != FrameType::kRequest) return WireStatus::kMalformed;
  Cursor c{frame.payload.data(), frame.payload.size()};
  serve::Request req;
  switch (frame.op) {
    case Op::kPing:
      if (c.left != 0) return WireStatus::kMalformed;
      if (frame.config_digest != 0) return WireStatus::kMalformed;
      return WireStatus::kOk;
    case Op::kStats: {
      // Admin scrape: exactly one format byte, no options -> digest 0.
      if (frame.config_digest != 0) return WireStatus::kMalformed;
      std::uint8_t format = 0;
      if (!c.u8(&format) || c.left != 0) return WireStatus::kMalformed;
      if (format > static_cast<std::uint8_t>(StatsFormat::kTraceJson))
        return WireStatus::kInvalidArgument;
      return WireStatus::kOk;
    }
    case Op::kEncode:
    case Op::kTranscode: {
      req.kind = frame.op == Op::kEncode ? serve::RequestKind::kEncode
                                         : serve::RequestKind::kTranscode;
      const std::uint8_t* options_begin = c.p;
      if (WireStatus s = parse_options(c, &req.config); s != WireStatus::kOk) return s;
      // The header digest covers exactly the options section; a mismatch
      // means the header and payload disagree about what computation this
      // is — corrupt or miscomposed, either way malformed.
      if (frame.config_digest !=
          wire_fnv1a(options_begin, static_cast<std::size_t>(c.p - options_begin)))
        return WireStatus::kMalformed;
      if (frame.op == Op::kEncode) {
        if (WireStatus s = parse_image(c, /*must_consume_all=*/true, &req.image);
            s != WireStatus::kOk)
          return s;
      } else {
        if (c.left == 0) return WireStatus::kInvalidArgument;
        req.bytes.assign(c.p, c.p + c.left);
      }
      break;
    }
    case Op::kDecode:
    case Op::kInfer:
      req.kind = frame.op == Op::kDecode ? serve::RequestKind::kDecode
                                         : serve::RequestKind::kInfer;
      if (frame.config_digest != 0) return WireStatus::kMalformed;
      if (c.left == 0) return WireStatus::kInvalidArgument;
      req.bytes.assign(c.p, c.p + c.left);
      break;
    case Op::kDeepnEncode: {
      req.kind = serve::RequestKind::kDeepnEncode;
      const std::uint8_t* quality_begin = c.p;
      std::uint32_t quality = 0;
      if (!c.u32(&quality)) return WireStatus::kMalformed;
      if (frame.config_digest != wire_fnv1a(quality_begin, 4))
        return WireStatus::kMalformed;
      if (quality < 1 || quality > 100) return WireStatus::kInvalidArgument;
      req.quality = static_cast<int>(quality);
      if (WireStatus s = parse_image(c, /*must_consume_all=*/true, &req.image);
          s != WireStatus::kOk)
        return s;
      break;
    }
    default:
      return WireStatus::kMalformed;
  }
  *out = std::move(req);
  return WireStatus::kOk;
}

Frame make_response(std::uint32_t request_id, Op op, std::uint64_t config_digest,
                    const serve::Response& resp) {
  const WireStatus status = wire_status_from_serve(resp.status);
  if (status != WireStatus::kOk) return make_error(request_id, op, status, resp.error);

  Frame f;
  f.type = FrameType::kResponse;
  f.op = op;
  f.status = static_cast<std::uint8_t>(WireStatus::kOk);
  f.request_id = request_id;
  f.config_digest = config_digest;
  // Observability block (24 bytes, fixed): scheduling facts only — the
  // determinism contract starts at the byte after this block.
  append_u8(f.payload, resp.cache_hit ? 1 : 0);
  append_u8(f.payload, 0);
  append_u8(f.payload, 0);
  append_u8(f.payload, 0);
  append_u32(f.payload, static_cast<std::uint32_t>(resp.batch_size));
  append_f64(f.payload, resp.queue_us);
  append_f64(f.payload, resp.service_us);
  switch (op) {
    case Op::kEncode:
    case Op::kTranscode:
    case Op::kDeepnEncode:
      f.payload.insert(f.payload.end(), resp.bytes.begin(), resp.bytes.end());
      break;
    case Op::kDecode:
      append_image(resp.image, f.payload);
      break;
    case Op::kInfer: {
      append_u32(f.payload, static_cast<std::uint32_t>(resp.probs.size()));
      for (float p : resp.probs) {
        std::uint32_t bits;
        std::memcpy(&bits, &p, sizeof(bits));
        append_u32(f.payload, bits);
      }
      break;
    }
    case Op::kPing:
    case Op::kStats:  // built by make_stats_response; never via the service
      break;
  }
  return f;
}

Frame make_error(std::uint32_t request_id, Op op, WireStatus status,
                 const std::string& message) {
  Frame f;
  f.type = FrameType::kResponse;
  f.op = op;
  f.status = static_cast<std::uint8_t>(status);
  f.request_id = request_id;
  f.payload.assign(message.begin(), message.end());
  return f;
}

bool parse_response(const Frame& frame, WireReply* out) {
  if (frame.type != FrameType::kResponse) return false;
  WireReply r;
  r.status = static_cast<WireStatus>(frame.status);
  r.op = frame.op;
  r.request_id = frame.request_id;
  if (r.status != WireStatus::kOk) {
    r.error.assign(frame.payload.begin(), frame.payload.end());
    *out = std::move(r);
    return true;
  }
  Cursor c{frame.payload.data(), frame.payload.size()};
  // Ping has no payload and a stats response is bare text — neither
  // carries the observability block.
  if (frame.op != Op::kPing && frame.op != Op::kStats) {
    const std::uint8_t* obs;
    if (!c.take(kObservabilitySize, &obs)) return false;
    r.cache_hit = obs[0] != 0;
    r.batch_size = read_u32(obs + 4);
    r.queue_us = read_f64(obs + 8);
    r.service_us = read_f64(obs + 16);
  }
  switch (frame.op) {
    case Op::kPing:
      if (c.left != 0) return false;
      break;
    case Op::kEncode:
    case Op::kTranscode:
    case Op::kDeepnEncode:
    case Op::kStats:  // rendered UTF-8 text rides in `bytes`
      r.bytes.assign(c.p, c.p + c.left);
      break;
    case Op::kDecode:
      if (parse_image(c, /*must_consume_all=*/true, &r.image) != WireStatus::kOk)
        return false;
      break;
    case Op::kInfer: {
      std::uint32_t count = 0;
      if (!c.u32(&count)) return false;
      const std::uint8_t* data;
      if (!c.take(std::size_t{count} * 4, &data) || c.left != 0) return false;
      r.probs.resize(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint32_t bits = read_u32(data + 4 * i);
        std::memcpy(&r.probs[i], &bits, sizeof(float));
      }
      break;
    }
    default:
      return false;
  }
  *out = std::move(r);
  return true;
}

}  // namespace dnj::net
