// Wire framing of the DNJ network protocol (docs/PROTOCOL.md is the
// authoritative byte-level spec; this header implements it).
//
// Every message on a connection is one frame: a fixed 28-byte little-endian
// header followed by a variable payload whose CRC-32 the header carries.
//
//   offset size field
//   0      4    magic          0x314A4E44 ("DNJ1" on the wire)
//   4      1    version        kProtocolVersion (currently 2)
//   5      1    type           1 = request, 2 = response
//   6      1    op             operation code (Op); responses echo it
//   7      1    status         request: 0; response: WireStatus
//   8      4    request_id     client-chosen, echoed verbatim in the response
//   12     8    config_digest  FNV-1a 64 of the payload's options section
//                              (0 for ops without one); responses echo it
//   20     4    payload_size   bytes of payload following the header
//   24     4    payload_crc32  CRC-32 (ISO-HDLC) of the payload bytes
//
// The header is fixed-size and self-describing, so a reader can always
// resynchronize a healthy stream: read 28 bytes, validate, read
// payload_size more. There is deliberately no in-band resync marker — a
// frame that fails magic/version/bounds/CRC validation poisons the stream
// (FrameParser turns sticky-broken) and the peer closes the connection
// after a typed error frame, mirroring how length-prefixed binary
// protocols fail fast rather than guess.
//
// FrameParser is pure in-memory state (feed bytes, extract frames): the
// framing layer is testable without a socket (tests/test_net_framing.cpp),
// and the server/client reuse the exact same code path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dnj::net {

inline constexpr std::uint32_t kMagic = 0x314A4E44u;  ///< "DNJ1" little-endian
/// Current protocol version. Version 2 added the kStats admin op;
/// version 3 adds the design-job ops (kJobSubmit..kJobResult). Both
/// changes are additive, so the parser accepts any version in
/// [kMinProtocolVersion, kProtocolVersion] and the server echoes the
/// request's version in its responses — v1/v2 clients keep working
/// unchanged against a v3 server.
inline constexpr std::uint8_t kProtocolVersion = 3;
inline constexpr std::uint8_t kMinProtocolVersion = 1;
inline constexpr std::size_t kHeaderSize = 28;

/// Hard ceiling on a payload; a header announcing more is malformed. Large
/// enough for a 4096x4096 RGB image (~48 MiB) with room to spare, small
/// enough that a garbage length can't make a peer allocate absurdly.
inline constexpr std::size_t kMaxPayloadBytes = std::size_t{64} << 20;

enum class FrameType : std::uint8_t {
  kRequest = 1,
  kResponse = 2,
};

/// Operation codes. Responses echo the request's op so the payload shape
/// is decodable from the header alone.
enum class Op : std::uint8_t {
  kPing = 0,         ///< liveness probe, empty payload both ways
  kEncode = 1,       ///< options + image -> JFIF bytes
  kDecode = 2,       ///< JFIF bytes -> image
  kTranscode = 3,    ///< options + JFIF bytes -> re-encoded JFIF bytes
  kDeepnEncode = 4,  ///< quality + image -> bytes under the server's DeepN pair
  kInfer = 5,        ///< JFIF bytes -> class probabilities
  kStats = 6,        ///< admin scrape (v2): 1-byte format -> UTF-8 text
  kJobSubmit = 7,    ///< design-job submit (v3): spec + dataset -> job id
  kJobStatus = 8,    ///< design-job poll (v3): job id -> progress/state
  kJobCancel = 9,    ///< design-job cancel (v3): job id -> empty payload
  kJobResult = 10,   ///< design-job result (v3): job id -> table + ladder
};

/// True for the v3 design-job ops — answered on the server's loop thread
/// (JobManager lookups are O(1)), carry no observability block, and
/// require a version-3 frame.
inline constexpr bool op_is_job(Op op) {
  return op == Op::kJobSubmit || op == Op::kJobStatus || op == Op::kJobCancel ||
         op == Op::kJobResult;
}

/// Wire status byte of a response frame. 0..5 mirror dnj::api::StatusCode
/// value-for-value (pinned by static_asserts in protocol.cpp); 6 and 7 are
/// protocol-level failures that have no in-process equivalent.
enum class WireStatus : std::uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kDecodeError = 2,
  kRejected = 3,  ///< admission control refused the request (overload)
  kShutdown = 4,  ///< service shutting down / server draining
  kInternal = 5,
  kMalformed = 6,    ///< frame failed structural validation (lengths, CRC,
                     ///  digest mismatch, unknown op); connection closes
  kVersionSkew = 7,  ///< frame version != server version; connection closes
};

const char* wire_status_name(WireStatus status);

/// One frame in its decoded in-memory form. `payload` excludes the header.
struct Frame {
  std::uint8_t version = kProtocolVersion;
  FrameType type = FrameType::kRequest;
  Op op = Op::kPing;
  std::uint8_t status = 0;  ///< WireStatus on responses
  std::uint32_t request_id = 0;
  std::uint64_t config_digest = 0;
  std::vector<std::uint8_t> payload;
};

/// CRC-32 (ISO-HDLC: polynomial 0xEDB88320 reflected, init 0xFFFFFFFF,
/// final xor 0xFFFFFFFF) — the ubiquitous zlib/Ethernet CRC, so foreign
/// clients can use any stock implementation. crc32("123456789") ==
/// 0xCBF43926 (the standard check value, pinned in tests).
std::uint32_t crc32(const void* data, std::size_t n);

/// Serializes header + payload into one contiguous buffer ready to write
/// to a socket. Computes payload_size and payload_crc32 from `f.payload`.
std::vector<std::uint8_t> serialize_frame(const Frame& f);

// Little-endian scalar packing, shared by the framing and marshalling
// layers (and usable by tests to craft malformed frames byte by byte).
void append_u8(std::vector<std::uint8_t>& out, std::uint8_t v);
void append_u16(std::vector<std::uint8_t>& out, std::uint16_t v);
void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v);
void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v);
std::uint16_t read_u16(const std::uint8_t* p);
std::uint32_t read_u32(const std::uint8_t* p);
std::uint64_t read_u64(const std::uint8_t* p);

enum class ParseResult {
  kNeedMore,    ///< no complete frame buffered yet
  kFrame,       ///< one frame extracted into *out
  kBadMagic,    ///< stream does not start with kMagic — not our protocol
  kBadVersion,  ///< version byte outside [kMinProtocolVersion, kProtocolVersion]
  kBadHeader,   ///< type out of range or payload_size > max_payload
  kBadCrc,      ///< payload CRC mismatch
};

/// Incremental frame extractor. Feed whatever bytes arrived (any
/// fragmentation — the parser buffers partial headers and partial
/// payloads), then call next() until it stops returning kFrame.
///
/// Any non-kNeedMore failure is sticky: the stream position is no longer
/// trustworthy, so every subsequent next() repeats the same error and the
/// owner is expected to drop the connection.
class FrameParser {
 public:
  explicit FrameParser(std::size_t max_payload = kMaxPayloadBytes)
      : max_payload_(max_payload) {}

  void feed(const void* data, std::size_t n);

  /// Tries to extract the next complete frame. On kFrame, *out is filled
  /// and the frame's bytes are consumed from the buffer.
  ParseResult next(Frame* out);

  bool broken() const { return error_ != ParseResult::kNeedMore; }

  /// Bytes currently buffered and not yet consumed (tests / flow control).
  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::size_t max_payload_;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  ///< consumed prefix of buf_
  ParseResult error_ = ParseResult::kNeedMore;  ///< sticky failure state
};

}  // namespace dnj::net
