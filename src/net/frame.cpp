#include "net/frame.hpp"

#include <array>

namespace dnj::net {

const char* wire_status_name(WireStatus status) {
  switch (status) {
    case WireStatus::kOk: return "ok";
    case WireStatus::kInvalidArgument: return "invalid_argument";
    case WireStatus::kDecodeError: return "decode_error";
    case WireStatus::kRejected: return "rejected";
    case WireStatus::kShutdown: return "shutdown";
    case WireStatus::kInternal: return "internal";
    case WireStatus::kMalformed: return "malformed";
    case WireStatus::kVersionSkew: return "version_skew";
  }
  return "unknown";
}

void append_u8(std::vector<std::uint8_t>& out, std::uint8_t v) { out.push_back(v); }

void append_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint16_t read_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (std::uint16_t{p[1]} << 8));
}

std::uint32_t read_u32(const std::uint8_t* p) {
  return p[0] | (std::uint32_t{p[1]} << 8) | (std::uint32_t{p[2]} << 16) |
         (std::uint32_t{p[3]} << 24);
}

std::uint64_t read_u64(const std::uint8_t* p) {
  return read_u32(p) | (std::uint64_t{read_u32(p + 4)} << 32);
}

std::uint32_t crc32(const void* data, std::size_t n) {
  // Table built on first use; thread-safe via C++ magic statics.
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c >> 1) ^ ((c & 1u) ? 0xEDB88320u : 0u);
      t[i] = c;
    }
    return t;
  }();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

std::vector<std::uint8_t> serialize_frame(const Frame& f) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderSize + f.payload.size());
  append_u32(out, kMagic);
  append_u8(out, f.version);
  append_u8(out, static_cast<std::uint8_t>(f.type));
  append_u8(out, static_cast<std::uint8_t>(f.op));
  append_u8(out, f.status);
  append_u32(out, f.request_id);
  append_u64(out, f.config_digest);
  append_u32(out, static_cast<std::uint32_t>(f.payload.size()));
  append_u32(out, crc32(f.payload.data(), f.payload.size()));
  out.insert(out.end(), f.payload.begin(), f.payload.end());
  return out;
}

void FrameParser::feed(const void* data, std::size_t n) {
  if (n == 0 || broken()) return;
  // Compact the consumed prefix before growing — the buffer stays bounded
  // by (one frame + one read's worth) instead of the connection's history.
  if (pos_ > 0 && pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > kHeaderSize + max_payload_) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  const unsigned char* p = static_cast<const unsigned char*>(data);
  buf_.insert(buf_.end(), p, p + n);
}

ParseResult FrameParser::next(Frame* out) {
  if (broken()) return error_;
  const std::size_t avail = buf_.size() - pos_;
  if (avail < kHeaderSize) return ParseResult::kNeedMore;
  const std::uint8_t* h = buf_.data() + pos_;

  if (read_u32(h) != kMagic) return error_ = ParseResult::kBadMagic;
  const std::uint8_t version = h[4];
  const std::uint8_t type = h[5];
  const std::size_t payload_size = read_u32(h + 20);
  // Version is checked before the rest of the header so a future-version
  // frame with a layout we can't judge yields kBadVersion, not kBadHeader.
  // Every version since kMinProtocolVersion shares this header layout
  // (v2 only added an op code), so the whole supported range parses here.
  if (version < kMinProtocolVersion || version > kProtocolVersion)
    return error_ = ParseResult::kBadVersion;
  if (type != static_cast<std::uint8_t>(FrameType::kRequest) &&
      type != static_cast<std::uint8_t>(FrameType::kResponse))
    return error_ = ParseResult::kBadHeader;
  if (payload_size > max_payload_) return error_ = ParseResult::kBadHeader;

  if (avail < kHeaderSize + payload_size) return ParseResult::kNeedMore;
  const std::uint8_t* body = h + kHeaderSize;
  if (crc32(body, payload_size) != read_u32(h + 24)) return error_ = ParseResult::kBadCrc;

  out->version = version;
  out->type = static_cast<FrameType>(type);
  out->op = static_cast<Op>(h[6]);
  out->status = h[7];
  out->request_id = read_u32(h + 8);
  out->config_digest = read_u64(h + 12);
  out->payload.assign(body, body + payload_size);
  pos_ += kHeaderSize + payload_size;
  return ParseResult::kFrame;
}

}  // namespace dnj::net
