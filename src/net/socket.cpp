#include "net/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

namespace dnj::net {

namespace {

std::string errno_string(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

bool parse_addr(const std::string& host, std::uint16_t port, sockaddr_in* addr,
                std::string* error) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  const char* h = host.empty() ? "127.0.0.1" : host.c_str();
  if (::inet_pton(AF_INET, h, &addr->sin_addr) != 1) {
    if (error) *error = "invalid IPv4 address: " + host;
    return false;
  }
  return true;
}

}  // namespace

void ScopedFd::reset() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

ScopedFd tcp_listen(const std::string& host, std::uint16_t port, int backlog,
                    std::uint16_t* bound_port, std::string* error) {
  sockaddr_in addr;
  if (!parse_addr(host, port, &addr, error)) return ScopedFd();
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    if (error) *error = errno_string("socket");
    return ScopedFd();
  }
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error) *error = errno_string("bind");
    return ScopedFd();
  }
  if (::listen(fd.get(), backlog) != 0) {
    if (error) *error = errno_string("listen");
    return ScopedFd();
  }
  if (bound_port) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
      if (error) *error = errno_string("getsockname");
      return ScopedFd();
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

ScopedFd tcp_connect(const std::string& host, std::uint16_t port, std::string* error) {
  sockaddr_in addr;
  if (!parse_addr(host, port, &addr, error)) return ScopedFd();
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    if (error) *error = errno_string("socket");
    return ScopedFd();
  }
  // Request/response frames are written whole; disabling Nagle keeps small
  // frames (pings, rejections) from waiting out the delayed-ACK timer.
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    if (error) *error = errno_string("connect");
    return ScopedFd();
  }
  return fd;
}

bool send_all(int fd, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t sent = ::send(fd, p, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += sent;
    n -= static_cast<std::size_t>(sent);
  }
  return true;
}

long recv_some(int fd, void* data, std::size_t n) {
  ssize_t got;
  do {
    got = ::recv(fd, data, n, 0);
  } while (got < 0 && errno == EINTR);
  return got;
}

bool set_recv_timeout_ms(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  return ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) == 0;
}

}  // namespace dnj::net
