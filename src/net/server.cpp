#include "net/server.hpp"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "jobs/job_manager.hpp"
#include "net/protocol.hpp"
#include "obs/trace.hpp"

namespace dnj::net {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kListenerId = 1;
constexpr std::uint64_t kWakeId = 2;

PollerBackend resolve_backend(PollerBackend configured) {
  if (configured != PollerBackend::kAuto) return configured;
  if (const char* env = std::getenv("DNJ_NET_BACKEND")) {
    if (std::strcmp(env, "epoll") == 0) return PollerBackend::kEpoll;
    if (std::strcmp(env, "poll") == 0) return PollerBackend::kPoll;
  }
  return PollerBackend::kAuto;
}

// JobRc -> wire status, matching the mapping documented in job_manager.hpp.
// All of these are non-fatal to the connection: the frame was well-formed,
// the refusal is about the job, not the stream.
WireStatus wire_status_from_job_rc(jobs::JobRc rc) {
  switch (rc) {
    case jobs::JobRc::kOk: return WireStatus::kOk;
    case jobs::JobRc::kNotFound:
    case jobs::JobRc::kDuplicate:
    case jobs::JobRc::kInvalid: return WireStatus::kInvalidArgument;
    case jobs::JobRc::kQueueFull:
    case jobs::JobRc::kNotFinished: return WireStatus::kRejected;
    case jobs::JobRc::kShutdown: return WireStatus::kShutdown;
  }
  return WireStatus::kInternal;
}

std::string job_rc_message(jobs::JobRc rc, std::uint64_t job_id) {
  const std::string id = std::to_string(job_id);
  switch (rc) {
    case jobs::JobRc::kNotFound: return "unknown job id " + id;
    case jobs::JobRc::kDuplicate: return "job id " + id + " already exists";
    case jobs::JobRc::kInvalid: return "invalid job spec";
    case jobs::JobRc::kQueueFull: return "job queue full";
    case jobs::JobRc::kNotFinished: return "job " + id + " not finished";
    case jobs::JobRc::kShutdown: return "job manager draining";
    case jobs::JobRc::kOk: break;
  }
  return "";
}

}  // namespace

struct Server::Conn {
  explicit Conn(std::size_t max_payload) : parser(max_payload) {}

  ScopedFd fd;
  std::uint64_t id = 0;
  FrameParser parser;
  std::deque<std::vector<std::uint8_t>> out;
  std::size_t out_off = 0;  ///< sent prefix of out.front()
  Clock::time_point last_active;
  std::uint32_t inflight = 0;  ///< submitted, response not yet queued
  bool want_write = false;     ///< current poller write interest
  bool stop_reading = false;   ///< poller read interest dropped
  bool closing = false;        ///< close as soon as `out` flushes dry

  // Observability only: endpoints of the read burst that completed the
  // current frame(s), stamped only while tracing is enabled.
  std::uint64_t read_start_ns = 0;
  std::uint64_t read_end_ns = 0;
};

Server::Server(serve::TranscodeService& service, ServerConfig config)
    : service_(service), config_(std::move(config)) {
  if (config_.max_connections < 1) config_.max_connections = 1;
  if (config_.backlog < 1) config_.backlog = 1;
  if (config_.max_payload > kMaxPayloadBytes) config_.max_payload = kMaxPayloadBytes;

  // Publish into the service's registry so one kStats scrape answers for
  // both layers. The collector snapshots the loop/stats atomics — safe
  // from any thread, no registry re-entry.
  metrics_ = service_.metrics_registry();
  response_bytes_ =
      &metrics_->histogram("net_response_bytes", {}, 0.0, 262144.0, 128);
  metrics_collector_ = metrics_->add_collector([this](std::vector<obs::Sample>& out) {
    const ServerStats s = stats();
    auto counter = [&out](const char* name, std::uint64_t v) {
      obs::Sample smp;
      smp.name = name;
      smp.value = static_cast<double>(v);
      smp.kind = obs::SampleKind::kCounter;
      out.push_back(std::move(smp));
    };
    counter("net_connections_accepted_total", s.connections_accepted);
    counter("net_connections_rejected_total", s.connections_rejected);
    counter("net_connections_idle_closed_total", s.connections_idle_closed);
    counter("net_frames_in_total", s.frames_in);
    counter("net_frames_out_total", s.frames_out);
    counter("net_pings_total", s.pings);
    counter("net_requests_submitted_total", s.requests_submitted);
    counter("net_protocol_errors_total", s.protocol_errors);
    counter("net_responses_dropped_total", s.responses_dropped);
    counter("net_stats_scrapes_total", s.stats_scrapes);
    counter("net_job_ops_total", s.job_ops);
    obs::Sample active;
    active.name = "net_connections_active";
    active.value = static_cast<double>(s.connections_active);
    active.kind = obs::SampleKind::kGauge;
    out.push_back(std::move(active));
  });
}

Server::~Server() {
  stop();
  // Blocks until any in-flight gather() is done with the lambda above, so
  // the captured `this` cannot be used past this line.
  metrics_->remove_collector(metrics_collector_);
}

bool Server::start(std::string* error) {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (running_.load(std::memory_order_acquire) || loop_.joinable()) {
    if (error) *error = "server already started";
    return false;
  }

  poller_ = make_poller(resolve_backend(config_.backend));
  if (!poller_) {
    if (error) *error = "requested poller backend unavailable";
    return false;
  }

  std::uint16_t bound = 0;
  listener_ = tcp_listen(config_.host, config_.port, config_.backlog, &bound, error);
  if (!listener_.valid()) {
    poller_.reset();
    return false;
  }
  set_nonblocking(listener_.get());

  int pipe_fds[2] = {-1, -1};
  if (::pipe(pipe_fds) != 0) {
    if (error) *error = "pipe() failed";
    listener_.reset();
    poller_.reset();
    return false;
  }
  wake_r_ = ScopedFd(pipe_fds[0]);
  wake_w_ = ScopedFd(pipe_fds[1]);
  set_nonblocking(wake_r_.get());
  set_nonblocking(wake_w_.get());

  poller_->add(listener_.get(), kListenerId, /*want_read=*/true, /*want_write=*/false);
  poller_->add(wake_r_.get(), kWakeId, /*want_read=*/true, /*want_write=*/false);

  // A forced drain-deadline exit can leave a stale in-flight count (its
  // completions were discarded by the previous stop()); a restart begins
  // with a clean slate.
  inflight_total_ = 0;
  draining_.store(false, std::memory_order_release);
  port_.store(bound, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  loop_ = std::thread([this] { run_loop(); });
  return true;
}

void Server::stop() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (!loop_.joinable()) return;

  draining_.store(true, std::memory_order_release);
  wake();
  loop_.join();

  // The loop is gone, but workers may still be inside completion callbacks
  // (a forced drain-deadline exit leaves their requests in the service).
  // They touch done_ and the wake pipe — wait them out before teardown.
  {
    std::unique_lock<std::mutex> cb_lock(cb_mutex_);
    cb_cv_.wait(cb_lock, [this] { return callbacks_outstanding_ == 0; });
  }

  {
    std::lock_guard<std::mutex> done_lock(done_mutex_);
    done_.clear();
  }
  poller_.reset();
  wake_r_.reset();
  wake_w_.reset();
  listener_.reset();
  running_.store(false, std::memory_order_release);
  port_.store(-1, std::memory_order_release);
}

ServerStats Server::stats() const {
  ServerStats s;
  s.connections_accepted = accepted_.load(std::memory_order_relaxed);
  s.connections_active = active_.load(std::memory_order_relaxed);
  s.connections_rejected = conn_rejected_.load(std::memory_order_relaxed);
  s.connections_idle_closed = idle_closed_.load(std::memory_order_relaxed);
  s.frames_in = frames_in_.load(std::memory_order_relaxed);
  s.frames_out = frames_out_.load(std::memory_order_relaxed);
  s.pings = pings_.load(std::memory_order_relaxed);
  s.requests_submitted = submitted_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.responses_dropped = responses_dropped_.load(std::memory_order_relaxed);
  s.stats_scrapes = stats_scrapes_.load(std::memory_order_relaxed);
  s.job_ops = job_ops_.load(std::memory_order_relaxed);
  return s;
}

void Server::wake() {
  const char byte = 0;
  // Best effort: a full pipe already guarantees a pending wake.
  (void)::write(wake_w_.get(), &byte, 1);
}

void Server::run_loop() {
  std::vector<PollEvent> events;
  bool drain_started = false;
  Clock::time_point drain_deadline{};

  for (;;) {
    const bool draining = draining_.load(std::memory_order_acquire);
    if (draining && !drain_started) {
      drain_started = true;
      drain_deadline = Clock::now() + std::chrono::milliseconds(config_.drain_timeout_ms);
      begin_drain();
    }
    if (drain_started) {
      // Close connections with nothing left to deliver; exit once every
      // in-flight response has been handed back (or the deadline passes).
      std::vector<std::uint64_t> done_ids;
      for (const auto& [id, conn] : conns_) {
        if (conn->inflight == 0 && conn->out.empty()) done_ids.push_back(id);
      }
      for (std::uint64_t id : done_ids) close_conn(id);
      if (conns_.empty() && inflight_total_ == 0) break;
      if (Clock::now() >= drain_deadline) break;
    }

    int timeout = loop_timeout_ms(drain_started);
    if (drain_started) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            drain_deadline - Clock::now())
                            .count();
      const int left_ms = left < 0 ? 0 : (left > 50 ? 50 : static_cast<int>(left));
      if (timeout < 0 || timeout > left_ms) timeout = left_ms;
    }

    events.clear();
    poller_->wait(timeout, &events);

    for (const PollEvent& ev : events) {
      if (ev.id == kListenerId) {
        if (!drain_started && ev.readable) accept_new();
        continue;
      }
      if (ev.id == kWakeId) {
        drain_wake_pipe();
        continue;
      }
      auto it = conns_.find(ev.id);
      if (it == conns_.end()) continue;  // closed earlier this round
      Conn* conn = it->second.get();
      if (ev.error) {
        close_conn(ev.id);
        continue;
      }
      if (ev.readable && !conn->stop_reading) {
        if (!handle_readable(conn)) continue;
      }
      if (ev.writable) {
        if (conns_.find(ev.id) == conns_.end()) continue;
        flush(conn);
      }
    }

    // Strictly after drain_wake_pipe(): a worker pushes its completion and
    // THEN writes the wake byte, so any push that this pass misses left a
    // byte in the pipe and the next wait() wakes immediately. (Pipe first,
    // queue second — the reverse order can consume a wake byte whose
    // completion arrives between the two drains, stranding it.)
    drain_completions();

    if (!drain_started) sweep_idle();
  }

  // Force-close whatever survived the drain deadline.
  for (auto& [id, conn] : conns_) {
    (void)id;
    poller_->remove(conn->fd.get());
    active_.fetch_sub(1, std::memory_order_relaxed);
  }
  conns_.clear();
}

void Server::begin_drain() {
  // Refuse new connections at the TCP level and stop reading new frames;
  // whatever is already submitted still completes and flushes out.
  poller_->remove(listener_.get());
  listener_.reset();
  for (auto& [id, conn] : conns_) {
    (void)id;
    if (!conn->stop_reading) {
      conn->stop_reading = true;
      poller_->update(conn->fd.get(), /*want_read=*/false, conn->want_write);
    }
  }
}

int Server::loop_timeout_ms(bool draining) const {
  if (draining) return 50;
  if (config_.idle_timeout_ms <= 0 || conns_.empty()) return -1;
  Clock::time_point earliest = Clock::time_point::max();
  for (const auto& [id, conn] : conns_) {
    (void)id;
    if (conn->last_active < earliest) earliest = conn->last_active;
  }
  const auto deadline = earliest + std::chrono::milliseconds(config_.idle_timeout_ms);
  const auto left =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Clock::now()).count();
  if (left <= 0) return 0;
  return left > 60000 ? 60000 : static_cast<int>(left) + 1;
}

void Server::sweep_idle() {
  if (config_.idle_timeout_ms <= 0 || conns_.empty()) return;
  const auto now = Clock::now();
  const auto limit = std::chrono::milliseconds(config_.idle_timeout_ms);
  std::vector<std::uint64_t> idle_ids;
  for (const auto& [id, conn] : conns_) {
    if (conn->inflight == 0 && conn->out.empty() && now - conn->last_active >= limit) {
      idle_ids.push_back(id);
    }
  }
  for (std::uint64_t id : idle_ids) {
    idle_closed_.fetch_add(1, std::memory_order_relaxed);
    close_conn(id);
  }
}

void Server::accept_new() {
  for (;;) {
    const int cfd = ::accept(listener_.get(), nullptr, nullptr);
    if (cfd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (drained) or a transient error — next wake retries
    }
    set_nonblocking(cfd);
    const int one = 1;
    ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

    if (conns_.size() >= static_cast<std::size_t>(config_.max_connections)) {
      conn_rejected_.fetch_add(1, std::memory_order_relaxed);
      const std::vector<std::uint8_t> bytes = serialize_frame(
          make_error(0, Op::kPing, WireStatus::kRejected, "connection limit reached"));
      // Best effort — the socket is fresh, so the buffer almost always takes
      // one small frame; if not, the close alone carries the message.
      (void)::send(cfd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
      ::close(cfd);
      continue;
    }

    const std::uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Conn>(config_.max_payload);
    conn->fd = ScopedFd(cfd);
    conn->id = id;
    conn->last_active = Clock::now();
    if (!poller_->add(cfd, id, /*want_read=*/true, /*want_write=*/false)) {
      continue;  // ~Conn closes cfd
    }
    conns_.emplace(id, std::move(conn));
    accepted_.fetch_add(1, std::memory_order_relaxed);
    active_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::drain_wake_pipe() {
  char buf[256];
  while (::read(wake_r_.get(), buf, sizeof buf) > 0) {
  }
}

void Server::drain_completions() {
  std::vector<Done> local;
  {
    std::lock_guard<std::mutex> lock(done_mutex_);
    local.swap(done_);
  }
  for (Done& d : local) {
    if (inflight_total_ > 0) --inflight_total_;
    const std::size_t resp_size = d.bytes.size();
    response_bytes_->observe(static_cast<double>(resp_size));
    auto it = conns_.find(d.conn_id);
    if (it == conns_.end()) {
      responses_dropped_.fetch_add(1, std::memory_order_relaxed);
      // Close the root anyway — the work happened even if nobody is
      // listening for the answer.
      obs::record_span_as(d.trace_id, d.trace_root, 0, obs::Stage::kRequest,
                          d.trace_start_ns, obs::now_ns());
      continue;
    }
    Conn* conn = it->second.get();
    if (conn->inflight > 0) --conn->inflight;
    const std::uint64_t write_start = d.trace_id ? obs::now_ns() : 0;
    queue_bytes(conn, std::move(d.bytes));
    if (d.trace_id != 0) {
      const std::uint64_t write_end = obs::now_ns();
      obs::record_span(d.trace_id, d.trace_root, obs::Stage::kNetWrite,
                       write_start, write_end, resp_size);
      obs::record_span_as(d.trace_id, d.trace_root, 0, obs::Stage::kRequest,
                          d.trace_start_ns, write_end);
    }
  }
}

bool Server::handle_readable(Conn* conn) {
  const bool tracing = obs::Tracer::instance().enabled();
  if (tracing) conn->read_start_ns = obs::now_ns();
  char buf[64 * 1024];
  for (;;) {
    const long got = ::recv(conn->fd.get(), buf, sizeof buf, 0);
    if (got == 0) {  // orderly peer shutdown
      close_conn(conn->id);
      return false;
    }
    if (got < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_conn(conn->id);
      return false;
    }
    conn->last_active = Clock::now();
    conn->parser.feed(buf, static_cast<std::size_t>(got));
    if (static_cast<std::size_t>(got) < sizeof buf) break;
  }
  if (tracing) conn->read_end_ns = obs::now_ns();

  Frame frame;
  for (;;) {
    const ParseResult pr = conn->parser.next(&frame);
    if (pr == ParseResult::kNeedMore) return true;
    if (pr == ParseResult::kFrame) {
      frames_in_.fetch_add(1, std::memory_order_relaxed);
      if (!handle_frame(conn, std::move(frame))) return false;
      if (conn->stop_reading) return true;  // error frame queued; drop the rest
      continue;
    }
    // Sticky parse failure: answer with a typed error frame, stop reading,
    // and close once the frame has flushed.
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    const WireStatus status =
        pr == ParseResult::kBadVersion ? WireStatus::kVersionSkew : WireStatus::kMalformed;
    const char* why = pr == ParseResult::kBadMagic     ? "bad magic"
                      : pr == ParseResult::kBadVersion ? "unsupported protocol version"
                      : pr == ParseResult::kBadHeader  ? "bad header"
                                                       : "payload crc mismatch";
    conn->stop_reading = true;
    conn->closing = true;
    poller_->update(conn->fd.get(), /*want_read=*/false, conn->want_write);
    return queue_frame(conn, make_error(0, Op::kPing, status, why));
  }
}

bool Server::handle_frame(Conn* conn, Frame&& frame) {
  // Responses echo the request's version so a v1 client keeps decoding a
  // v2 server (the protocol grows additively, see frame.hpp).
  if (frame.type != FrameType::kRequest) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    conn->stop_reading = true;
    conn->closing = true;
    poller_->update(conn->fd.get(), /*want_read=*/false, conn->want_write);
    Frame err = make_error(frame.request_id, frame.op, WireStatus::kMalformed,
                           "expected a request frame");
    err.version = frame.version;
    return queue_frame(conn, err);
  }

  obs::Tracer& tracer = obs::Tracer::instance();
  const bool tracing = tracer.enabled();
  const std::uint64_t parse_start = tracing ? obs::now_ns() : 0;
  serve::Request req;
  const WireStatus parsed = parse_request(frame, &req);
  const std::uint64_t parse_end = tracing ? obs::now_ns() : 0;

  if (parsed == WireStatus::kOk && frame.op == Op::kPing) {
    pings_.fetch_add(1, std::memory_order_relaxed);
    Frame pong;
    pong.version = frame.version;
    pong.type = FrameType::kResponse;
    pong.op = Op::kPing;
    pong.status = static_cast<std::uint8_t>(WireStatus::kOk);
    pong.request_id = frame.request_id;
    return queue_frame(conn, pong);
  }

  if (parsed == WireStatus::kOk && frame.op == Op::kStats) {
    if (frame.version < 2) {
      // Op 6 does not exist in v1 — inside that version the frame is
      // malformed, and a malformed frame poisons the stream (§3/§10).
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      conn->stop_reading = true;
      conn->closing = true;
      poller_->update(conn->fd.get(), /*want_read=*/false, conn->want_write);
      Frame err = make_error(frame.request_id, frame.op, WireStatus::kMalformed,
                             "op 6 (stats) requires protocol version 2");
      err.version = frame.version;
      return queue_frame(conn, err);
    }
    // Admin scrape: rendered by the loop thread, never queued behind
    // service work (the whole point is visibility under overload).
    stats_scrapes_.fetch_add(1, std::memory_order_relaxed);
    std::string text;
    switch (static_cast<StatsFormat>(frame.payload[0])) {
      case StatsFormat::kPrometheus: text = metrics_->render_prometheus(); break;
      case StatsFormat::kJson: text = metrics_->render_json(); break;
      case StatsFormat::kTraceJson: text = tracer.dump_json(); break;
    }
    Frame resp = make_stats_response(frame.request_id, text);
    resp.version = frame.version;
    return queue_frame(conn, resp);
  }

  if (parsed == WireStatus::kOk && op_is_job(frame.op)) {
    if (frame.version < 3) {
      // Ops 7..10 do not exist before v3 — inside those versions the frame
      // is malformed, and a malformed frame poisons the stream.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      conn->stop_reading = true;
      conn->closing = true;
      poller_->update(conn->fd.get(), /*want_read=*/false, conn->want_write);
      Frame err = make_error(frame.request_id, frame.op, WireStatus::kMalformed,
                             "op " + std::to_string(static_cast<int>(frame.op)) +
                                 " (job) requires protocol version 3");
      err.version = frame.version;
      return queue_frame(conn, err);
    }
    job_ops_.fetch_add(1, std::memory_order_relaxed);
    if (!config_.jobs) {
      Frame err = make_error(frame.request_id, frame.op, WireStatus::kInternal,
                             "job subsystem not enabled");
      err.version = frame.version;
      return queue_frame(conn, err);
    }
    jobs::JobManager& manager = *config_.jobs;

    // Job ops are answered right here on the loop thread: submit queues
    // onto the manager's own pool, the rest are O(1) map lookups — none
    // ever waits on design work or the transcode queue.
    Frame resp;
    if (frame.op == Op::kJobSubmit) {
      std::uint64_t requested_id = 0;
      jobs::DesignJobSpec spec;
      const WireStatus ps = parse_job_submit(frame, &requested_id, &spec);
      if (ps != WireStatus::kOk) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        const bool fatal = ps == WireStatus::kMalformed;
        if (fatal) {
          conn->stop_reading = true;
          conn->closing = true;
          poller_->update(conn->fd.get(), /*want_read=*/false, conn->want_write);
        }
        const char* why =
            fatal ? "malformed job-submit payload" : "job-submit argument out of range";
        Frame err = make_error(frame.request_id, frame.op, ps, why);
        err.version = frame.version;
        return queue_frame(conn, err);
      }
      std::uint64_t job_id = 0;
      const jobs::JobRc rc = manager.submit(std::move(spec), requested_id, &job_id);
      resp = rc == jobs::JobRc::kOk
                 ? make_job_submit_response(frame.request_id, job_id)
                 : make_error(frame.request_id, frame.op, wire_status_from_job_rc(rc),
                              job_rc_message(rc, requested_id));
    } else {
      std::uint64_t job_id = 0;
      if (parse_job_id_request(frame, &job_id) != WireStatus::kOk) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        conn->stop_reading = true;
        conn->closing = true;
        poller_->update(conn->fd.get(), /*want_read=*/false, conn->want_write);
        Frame err = make_error(frame.request_id, frame.op, WireStatus::kMalformed,
                               "malformed job-id payload");
        err.version = frame.version;
        return queue_frame(conn, err);
      }
      jobs::JobRc rc = jobs::JobRc::kOk;
      if (frame.op == Op::kJobStatus) {
        jobs::JobStatus status;
        rc = manager.status(job_id, &status);
        if (rc == jobs::JobRc::kOk)
          resp = make_job_status_response(frame.request_id, status);
      } else if (frame.op == Op::kJobCancel) {
        rc = manager.cancel(job_id);
        if (rc == jobs::JobRc::kOk) resp = make_job_cancel_response(frame.request_id);
      } else {  // kJobResult
        jobs::JobResult result;
        rc = manager.result(job_id, &result);
        if (rc == jobs::JobRc::kOk)
          resp = make_job_result_response(frame.request_id, result);
      }
      if (rc != jobs::JobRc::kOk)
        resp = make_error(frame.request_id, frame.op, wire_status_from_job_rc(rc),
                          job_rc_message(rc, job_id));
    }
    resp.version = frame.version;
    return queue_frame(conn, resp);
  }

  if (parsed != WireStatus::kOk) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    const bool fatal = parsed == WireStatus::kMalformed;  // framing no longer trusted
    if (fatal) {
      conn->stop_reading = true;
      conn->closing = true;
      poller_->update(conn->fd.get(), /*want_read=*/false, conn->want_write);
    }
    const char* why = fatal ? "malformed request payload" : "request argument out of range";
    Frame err = make_error(frame.request_id, frame.op, parsed, why);
    err.version = frame.version;
    return queue_frame(conn, err);
  }

  // Observability: maybe open a sampled trace for this request. The ids
  // ride on the Request (never digested, never serialized) so queue-wait,
  // batch and codec spans nest under this root; drain_completions records
  // net_write and closes the root when the bytes are handed to the socket.
  std::uint64_t trace_id = 0;
  std::uint32_t trace_root = 0;
  std::uint64_t trace_start = 0;
  if (tracing && (trace_id = tracer.start_trace()) != 0) {
    trace_root = tracer.next_span_id();
    trace_start = conn->read_start_ns;
    obs::record_span(trace_id, trace_root, obs::Stage::kNetRead,
                     conn->read_start_ns, conn->read_end_ns,
                     frame.payload.size());
    obs::record_span(trace_id, trace_root, obs::Stage::kNetParse, parse_start,
                     parse_end);
    req.trace_id = trace_id;
    req.trace_parent = trace_root;
  }

  // Hand the request to the service. The callback runs on a worker pump
  // (or right here, synchronously, for an immediate refusal) — it only
  // touches the completion queue and the wake pipe, never the Conn.
  const std::uint64_t conn_id = conn->id;
  const std::uint32_t request_id = frame.request_id;
  const Op op = frame.op;
  const std::uint64_t digest = frame.config_digest;
  const std::uint8_t version = frame.version;

  ++conn->inflight;
  ++inflight_total_;
  submitted_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> cb_lock(cb_mutex_);
    ++callbacks_outstanding_;
  }
  service_.submit(std::move(req), [this, conn_id, request_id, op, digest, version, trace_id,
                                   trace_root, trace_start](serve::Response resp) {
    Frame f = make_response(request_id, op, digest, resp);
    f.version = version;
    std::vector<std::uint8_t> bytes = serialize_frame(f);
    {
      std::lock_guard<std::mutex> lock(done_mutex_);
      done_.push_back(Done{conn_id, std::move(bytes), trace_id, trace_root, trace_start});
    }
    wake();
    {
      std::lock_guard<std::mutex> cb_lock(cb_mutex_);
      --callbacks_outstanding_;
    }
    cb_cv_.notify_all();
  });

  // A synchronous refusal may already sit in done_; it is picked up by the
  // next drain_completions() pass (the wake byte guarantees one).
  return true;
}

bool Server::queue_frame(Conn* conn, const Frame& frame) {
  return queue_bytes(conn, serialize_frame(frame));
}

bool Server::queue_bytes(Conn* conn, std::vector<std::uint8_t> bytes) {
  frames_out_.fetch_add(1, std::memory_order_relaxed);
  conn->out.push_back(std::move(bytes));
  conn->last_active = Clock::now();
  return flush(conn);
}

bool Server::flush(Conn* conn) {
  while (!conn->out.empty()) {
    const std::vector<std::uint8_t>& front = conn->out.front();
    const long sent = ::send(conn->fd.get(), front.data() + conn->out_off,
                             front.size() - conn->out_off, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!conn->want_write) {
          conn->want_write = true;
          poller_->update(conn->fd.get(), !conn->stop_reading, /*want_write=*/true);
        }
        return true;
      }
      close_conn(conn->id);
      return false;
    }
    conn->out_off += static_cast<std::size_t>(sent);
    if (conn->out_off == front.size()) {
      conn->out.pop_front();
      conn->out_off = 0;
    }
  }
  if (conn->closing) {
    close_conn(conn->id);
    return false;
  }
  if (conn->want_write) {
    conn->want_write = false;
    poller_->update(conn->fd.get(), !conn->stop_reading, /*want_write=*/false);
  }
  return true;
}

void Server::close_conn(std::uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  poller_->remove(it->second->fd.get());
  conns_.erase(it);  // ~Conn closes the fd; pending completions for this id
                     // land in responses_dropped
  active_.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace dnj::net
