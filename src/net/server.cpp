#include "net/server.hpp"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "net/protocol.hpp"

namespace dnj::net {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kListenerId = 1;
constexpr std::uint64_t kWakeId = 2;

PollerBackend resolve_backend(PollerBackend configured) {
  if (configured != PollerBackend::kAuto) return configured;
  if (const char* env = std::getenv("DNJ_NET_BACKEND")) {
    if (std::strcmp(env, "epoll") == 0) return PollerBackend::kEpoll;
    if (std::strcmp(env, "poll") == 0) return PollerBackend::kPoll;
  }
  return PollerBackend::kAuto;
}

}  // namespace

struct Server::Conn {
  explicit Conn(std::size_t max_payload) : parser(max_payload) {}

  ScopedFd fd;
  std::uint64_t id = 0;
  FrameParser parser;
  std::deque<std::vector<std::uint8_t>> out;
  std::size_t out_off = 0;  ///< sent prefix of out.front()
  Clock::time_point last_active;
  std::uint32_t inflight = 0;  ///< submitted, response not yet queued
  bool want_write = false;     ///< current poller write interest
  bool stop_reading = false;   ///< poller read interest dropped
  bool closing = false;        ///< close as soon as `out` flushes dry
};

Server::Server(serve::TranscodeService& service, ServerConfig config)
    : service_(service), config_(std::move(config)) {
  if (config_.max_connections < 1) config_.max_connections = 1;
  if (config_.backlog < 1) config_.backlog = 1;
  if (config_.max_payload > kMaxPayloadBytes) config_.max_payload = kMaxPayloadBytes;
}

Server::~Server() { stop(); }

bool Server::start(std::string* error) {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (running_.load(std::memory_order_acquire) || loop_.joinable()) {
    if (error) *error = "server already started";
    return false;
  }

  poller_ = make_poller(resolve_backend(config_.backend));
  if (!poller_) {
    if (error) *error = "requested poller backend unavailable";
    return false;
  }

  std::uint16_t bound = 0;
  listener_ = tcp_listen(config_.host, config_.port, config_.backlog, &bound, error);
  if (!listener_.valid()) {
    poller_.reset();
    return false;
  }
  set_nonblocking(listener_.get());

  int pipe_fds[2] = {-1, -1};
  if (::pipe(pipe_fds) != 0) {
    if (error) *error = "pipe() failed";
    listener_.reset();
    poller_.reset();
    return false;
  }
  wake_r_ = ScopedFd(pipe_fds[0]);
  wake_w_ = ScopedFd(pipe_fds[1]);
  set_nonblocking(wake_r_.get());
  set_nonblocking(wake_w_.get());

  poller_->add(listener_.get(), kListenerId, /*want_read=*/true, /*want_write=*/false);
  poller_->add(wake_r_.get(), kWakeId, /*want_read=*/true, /*want_write=*/false);

  // A forced drain-deadline exit can leave a stale in-flight count (its
  // completions were discarded by the previous stop()); a restart begins
  // with a clean slate.
  inflight_total_ = 0;
  draining_.store(false, std::memory_order_release);
  port_.store(bound, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  loop_ = std::thread([this] { run_loop(); });
  return true;
}

void Server::stop() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (!loop_.joinable()) return;

  draining_.store(true, std::memory_order_release);
  wake();
  loop_.join();

  // The loop is gone, but workers may still be inside completion callbacks
  // (a forced drain-deadline exit leaves their requests in the service).
  // They touch done_ and the wake pipe — wait them out before teardown.
  {
    std::unique_lock<std::mutex> cb_lock(cb_mutex_);
    cb_cv_.wait(cb_lock, [this] { return callbacks_outstanding_ == 0; });
  }

  {
    std::lock_guard<std::mutex> done_lock(done_mutex_);
    done_.clear();
  }
  poller_.reset();
  wake_r_.reset();
  wake_w_.reset();
  listener_.reset();
  running_.store(false, std::memory_order_release);
  port_.store(-1, std::memory_order_release);
}

ServerStats Server::stats() const {
  ServerStats s;
  s.connections_accepted = accepted_.load(std::memory_order_relaxed);
  s.connections_active = active_.load(std::memory_order_relaxed);
  s.connections_rejected = conn_rejected_.load(std::memory_order_relaxed);
  s.connections_idle_closed = idle_closed_.load(std::memory_order_relaxed);
  s.frames_in = frames_in_.load(std::memory_order_relaxed);
  s.frames_out = frames_out_.load(std::memory_order_relaxed);
  s.pings = pings_.load(std::memory_order_relaxed);
  s.requests_submitted = submitted_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.responses_dropped = responses_dropped_.load(std::memory_order_relaxed);
  return s;
}

void Server::wake() {
  const char byte = 0;
  // Best effort: a full pipe already guarantees a pending wake.
  (void)::write(wake_w_.get(), &byte, 1);
}

void Server::run_loop() {
  std::vector<PollEvent> events;
  bool drain_started = false;
  Clock::time_point drain_deadline{};

  for (;;) {
    const bool draining = draining_.load(std::memory_order_acquire);
    if (draining && !drain_started) {
      drain_started = true;
      drain_deadline = Clock::now() + std::chrono::milliseconds(config_.drain_timeout_ms);
      begin_drain();
    }
    if (drain_started) {
      // Close connections with nothing left to deliver; exit once every
      // in-flight response has been handed back (or the deadline passes).
      std::vector<std::uint64_t> done_ids;
      for (const auto& [id, conn] : conns_) {
        if (conn->inflight == 0 && conn->out.empty()) done_ids.push_back(id);
      }
      for (std::uint64_t id : done_ids) close_conn(id);
      if (conns_.empty() && inflight_total_ == 0) break;
      if (Clock::now() >= drain_deadline) break;
    }

    int timeout = loop_timeout_ms(drain_started);
    if (drain_started) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            drain_deadline - Clock::now())
                            .count();
      const int left_ms = left < 0 ? 0 : (left > 50 ? 50 : static_cast<int>(left));
      if (timeout < 0 || timeout > left_ms) timeout = left_ms;
    }

    events.clear();
    poller_->wait(timeout, &events);

    for (const PollEvent& ev : events) {
      if (ev.id == kListenerId) {
        if (!drain_started && ev.readable) accept_new();
        continue;
      }
      if (ev.id == kWakeId) {
        drain_wake_pipe();
        continue;
      }
      auto it = conns_.find(ev.id);
      if (it == conns_.end()) continue;  // closed earlier this round
      Conn* conn = it->second.get();
      if (ev.error) {
        close_conn(ev.id);
        continue;
      }
      if (ev.readable && !conn->stop_reading) {
        if (!handle_readable(conn)) continue;
      }
      if (ev.writable) {
        if (conns_.find(ev.id) == conns_.end()) continue;
        flush(conn);
      }
    }

    // Strictly after drain_wake_pipe(): a worker pushes its completion and
    // THEN writes the wake byte, so any push that this pass misses left a
    // byte in the pipe and the next wait() wakes immediately. (Pipe first,
    // queue second — the reverse order can consume a wake byte whose
    // completion arrives between the two drains, stranding it.)
    drain_completions();

    if (!drain_started) sweep_idle();
  }

  // Force-close whatever survived the drain deadline.
  for (auto& [id, conn] : conns_) {
    (void)id;
    poller_->remove(conn->fd.get());
    active_.fetch_sub(1, std::memory_order_relaxed);
  }
  conns_.clear();
}

void Server::begin_drain() {
  // Refuse new connections at the TCP level and stop reading new frames;
  // whatever is already submitted still completes and flushes out.
  poller_->remove(listener_.get());
  listener_.reset();
  for (auto& [id, conn] : conns_) {
    (void)id;
    if (!conn->stop_reading) {
      conn->stop_reading = true;
      poller_->update(conn->fd.get(), /*want_read=*/false, conn->want_write);
    }
  }
}

int Server::loop_timeout_ms(bool draining) const {
  if (draining) return 50;
  if (config_.idle_timeout_ms <= 0 || conns_.empty()) return -1;
  Clock::time_point earliest = Clock::time_point::max();
  for (const auto& [id, conn] : conns_) {
    (void)id;
    if (conn->last_active < earliest) earliest = conn->last_active;
  }
  const auto deadline = earliest + std::chrono::milliseconds(config_.idle_timeout_ms);
  const auto left =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Clock::now()).count();
  if (left <= 0) return 0;
  return left > 60000 ? 60000 : static_cast<int>(left) + 1;
}

void Server::sweep_idle() {
  if (config_.idle_timeout_ms <= 0 || conns_.empty()) return;
  const auto now = Clock::now();
  const auto limit = std::chrono::milliseconds(config_.idle_timeout_ms);
  std::vector<std::uint64_t> idle_ids;
  for (const auto& [id, conn] : conns_) {
    if (conn->inflight == 0 && conn->out.empty() && now - conn->last_active >= limit) {
      idle_ids.push_back(id);
    }
  }
  for (std::uint64_t id : idle_ids) {
    idle_closed_.fetch_add(1, std::memory_order_relaxed);
    close_conn(id);
  }
}

void Server::accept_new() {
  for (;;) {
    const int cfd = ::accept(listener_.get(), nullptr, nullptr);
    if (cfd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (drained) or a transient error — next wake retries
    }
    set_nonblocking(cfd);
    const int one = 1;
    ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

    if (conns_.size() >= static_cast<std::size_t>(config_.max_connections)) {
      conn_rejected_.fetch_add(1, std::memory_order_relaxed);
      const std::vector<std::uint8_t> bytes = serialize_frame(
          make_error(0, Op::kPing, WireStatus::kRejected, "connection limit reached"));
      // Best effort — the socket is fresh, so the buffer almost always takes
      // one small frame; if not, the close alone carries the message.
      (void)::send(cfd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
      ::close(cfd);
      continue;
    }

    const std::uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Conn>(config_.max_payload);
    conn->fd = ScopedFd(cfd);
    conn->id = id;
    conn->last_active = Clock::now();
    if (!poller_->add(cfd, id, /*want_read=*/true, /*want_write=*/false)) {
      continue;  // ~Conn closes cfd
    }
    conns_.emplace(id, std::move(conn));
    accepted_.fetch_add(1, std::memory_order_relaxed);
    active_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::drain_wake_pipe() {
  char buf[256];
  while (::read(wake_r_.get(), buf, sizeof buf) > 0) {
  }
}

void Server::drain_completions() {
  std::vector<Done> local;
  {
    std::lock_guard<std::mutex> lock(done_mutex_);
    local.swap(done_);
  }
  for (Done& d : local) {
    if (inflight_total_ > 0) --inflight_total_;
    auto it = conns_.find(d.conn_id);
    if (it == conns_.end()) {
      responses_dropped_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    Conn* conn = it->second.get();
    if (conn->inflight > 0) --conn->inflight;
    queue_bytes(conn, std::move(d.bytes));
  }
}

bool Server::handle_readable(Conn* conn) {
  char buf[64 * 1024];
  for (;;) {
    const long got = ::recv(conn->fd.get(), buf, sizeof buf, 0);
    if (got == 0) {  // orderly peer shutdown
      close_conn(conn->id);
      return false;
    }
    if (got < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_conn(conn->id);
      return false;
    }
    conn->last_active = Clock::now();
    conn->parser.feed(buf, static_cast<std::size_t>(got));
    if (static_cast<std::size_t>(got) < sizeof buf) break;
  }

  Frame frame;
  for (;;) {
    const ParseResult pr = conn->parser.next(&frame);
    if (pr == ParseResult::kNeedMore) return true;
    if (pr == ParseResult::kFrame) {
      frames_in_.fetch_add(1, std::memory_order_relaxed);
      if (!handle_frame(conn, std::move(frame))) return false;
      if (conn->stop_reading) return true;  // error frame queued; drop the rest
      continue;
    }
    // Sticky parse failure: answer with a typed error frame, stop reading,
    // and close once the frame has flushed.
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    const WireStatus status =
        pr == ParseResult::kBadVersion ? WireStatus::kVersionSkew : WireStatus::kMalformed;
    const char* why = pr == ParseResult::kBadMagic     ? "bad magic"
                      : pr == ParseResult::kBadVersion ? "unsupported protocol version"
                      : pr == ParseResult::kBadHeader  ? "bad header"
                                                       : "payload crc mismatch";
    conn->stop_reading = true;
    conn->closing = true;
    poller_->update(conn->fd.get(), /*want_read=*/false, conn->want_write);
    return queue_frame(conn, make_error(0, Op::kPing, status, why));
  }
}

bool Server::handle_frame(Conn* conn, Frame&& frame) {
  if (frame.type != FrameType::kRequest) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    conn->stop_reading = true;
    conn->closing = true;
    poller_->update(conn->fd.get(), /*want_read=*/false, conn->want_write);
    return queue_frame(conn, make_error(frame.request_id, frame.op, WireStatus::kMalformed,
                                        "expected a request frame"));
  }

  serve::Request req;
  const WireStatus parsed = parse_request(frame, &req);

  if (parsed == WireStatus::kOk && frame.op == Op::kPing) {
    pings_.fetch_add(1, std::memory_order_relaxed);
    Frame pong;
    pong.type = FrameType::kResponse;
    pong.op = Op::kPing;
    pong.status = static_cast<std::uint8_t>(WireStatus::kOk);
    pong.request_id = frame.request_id;
    return queue_frame(conn, pong);
  }

  if (parsed != WireStatus::kOk) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    const bool fatal = parsed == WireStatus::kMalformed;  // framing no longer trusted
    if (fatal) {
      conn->stop_reading = true;
      conn->closing = true;
      poller_->update(conn->fd.get(), /*want_read=*/false, conn->want_write);
    }
    const char* why = fatal ? "malformed request payload" : "request argument out of range";
    return queue_frame(conn, make_error(frame.request_id, frame.op, parsed, why));
  }

  // Hand the request to the service. The callback runs on a worker pump
  // (or right here, synchronously, for an immediate refusal) — it only
  // touches the completion queue and the wake pipe, never the Conn.
  const std::uint64_t conn_id = conn->id;
  const std::uint32_t request_id = frame.request_id;
  const Op op = frame.op;
  const std::uint64_t digest = frame.config_digest;

  ++conn->inflight;
  ++inflight_total_;
  submitted_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> cb_lock(cb_mutex_);
    ++callbacks_outstanding_;
  }
  service_.submit(std::move(req), [this, conn_id, request_id, op, digest](serve::Response resp) {
    std::vector<std::uint8_t> bytes =
        serialize_frame(make_response(request_id, op, digest, resp));
    {
      std::lock_guard<std::mutex> lock(done_mutex_);
      done_.push_back(Done{conn_id, std::move(bytes)});
    }
    wake();
    {
      std::lock_guard<std::mutex> cb_lock(cb_mutex_);
      --callbacks_outstanding_;
    }
    cb_cv_.notify_all();
  });

  // A synchronous refusal may already sit in done_; it is picked up by the
  // next drain_completions() pass (the wake byte guarantees one).
  return true;
}

bool Server::queue_frame(Conn* conn, const Frame& frame) {
  return queue_bytes(conn, serialize_frame(frame));
}

bool Server::queue_bytes(Conn* conn, std::vector<std::uint8_t> bytes) {
  frames_out_.fetch_add(1, std::memory_order_relaxed);
  conn->out.push_back(std::move(bytes));
  conn->last_active = Clock::now();
  return flush(conn);
}

bool Server::flush(Conn* conn) {
  while (!conn->out.empty()) {
    const std::vector<std::uint8_t>& front = conn->out.front();
    const long sent = ::send(conn->fd.get(), front.data() + conn->out_off,
                             front.size() - conn->out_off, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!conn->want_write) {
          conn->want_write = true;
          poller_->update(conn->fd.get(), !conn->stop_reading, /*want_write=*/true);
        }
        return true;
      }
      close_conn(conn->id);
      return false;
    }
    conn->out_off += static_cast<std::size_t>(sent);
    if (conn->out_off == front.size()) {
      conn->out.pop_front();
      conn->out_off = 0;
    }
  }
  if (conn->closing) {
    close_conn(conn->id);
    return false;
  }
  if (conn->want_write) {
    conn->want_write = false;
    poller_->update(conn->fd.get(), !conn->stop_reading, /*want_write=*/false);
  }
  return true;
}

void Server::close_conn(std::uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  poller_->remove(it->second->fd.get());
  conns_.erase(it);  // ~Conn closes the fd; pending completions for this id
                     // land in responses_dropped
  active_.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace dnj::net
