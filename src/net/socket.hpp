// Thin POSIX TCP helpers shared by the server, the client, and the tests:
// RAII fd ownership plus the handful of socket rituals (bind/listen,
// connect, non-blocking mode, full sends) everything in src/net needs.
// IPv4 only — the protocol itself is address-family-agnostic, and the
// deployment story (docs/OPERATIONS.md) fronts the listener with standard
// infrastructure rather than teaching this layer dual-stack subtleties.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

namespace dnj::net {

/// Owns one file descriptor; closes on destruction. Move-only.
class ScopedFd {
 public:
  ScopedFd() = default;
  explicit ScopedFd(int fd) : fd_(fd) {}
  ~ScopedFd() { reset(); }
  ScopedFd(ScopedFd&& o) noexcept : fd_(o.release()) {}
  ScopedFd& operator=(ScopedFd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = o.release();
    }
    return *this;
  }
  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() { return std::exchange(fd_, -1); }
  void reset();

 private:
  int fd_ = -1;
};

/// Puts a descriptor into non-blocking mode. Returns false on failure.
bool set_nonblocking(int fd);

/// Creates, binds, and listens a TCP socket on host:port (port 0 =
/// ephemeral). Returns an invalid fd and fills *error on failure;
/// *bound_port receives the actual port (the ephemeral answer).
ScopedFd tcp_listen(const std::string& host, std::uint16_t port, int backlog,
                    std::uint16_t* bound_port, std::string* error);

/// Blocking TCP connect. Returns an invalid fd and fills *error on failure.
ScopedFd tcp_connect(const std::string& host, std::uint16_t port, std::string* error);

/// Writes all n bytes (blocking socket), retrying short writes and EINTR.
/// Uses MSG_NOSIGNAL — a peer hangup surfaces as an error, not SIGPIPE.
bool send_all(int fd, const void* data, std::size_t n);

/// Reads up to n bytes once (blocking socket, EINTR-retried). Returns the
/// byte count, 0 on orderly shutdown, -1 on error/timeout.
long recv_some(int fd, void* data, std::size_t n);

/// Sets SO_RCVTIMEO so blocking reads fail instead of hanging forever.
bool set_recv_timeout_ms(int fd, int timeout_ms);

}  // namespace dnj::net
