// The network front end: a single-threaded event-loop TCP server that
// turns protocol frames into serve::TranscodeService submissions and
// writes the responses back — the listener/forwarder/worker split, with
// the service's worker pumps playing the worker pool.
//
//   accept ──▶ per-connection FrameParser ──▶ parse_request
//                     │                            │ submit(req, callback)
//                     │                            ▼
//                     │                 bounded MPMC queue ─▶ worker pumps
//                     │                                          │ callback
//                     │                     completion queue ◀───┘ (worker
//                     │                            │ wake pipe     thread)
//                     ▼                            ▼
//              event loop (epoll / poll) ──▶ per-connection write queue
//                                             non-blocking write-back
//
// One thread runs the loop; it never computes, decodes, or blocks on the
// service. Worker callbacks serialize the response frame on the worker
// thread, hand the bytes to the loop through a mutex-guarded completion
// queue, and wake it via a self-pipe — connection state itself is touched
// by the loop thread only, which is what keeps the server TSan-clean with
// no per-connection locks.
//
// Overload behaves like the service's admission policy, end to end: a
// kReject service answers a full queue with an immediate typed kRejected
// response, which leaves here as a typed error frame — the client learns
// about overload in one round trip instead of watching a socket stall.
// (Under kBlock admission the loop itself backpressures: it stops reading
// new frames while blocked on queue space, and TCP flow control propagates
// the stall to every client.) The connection cap refuses surplus
// connections with a best-effort kRejected frame; idle connections are
// closed after idle_timeout_ms.
//
// Shutdown (stop()): stop accepting and stop reading, let every submitted
// request complete and flush its response (bounded by drain_timeout_ms),
// then close. The serving determinism contract extends across the wire:
// response payloads are byte-identical to synchronous in-process calls
// (tests/test_net.cpp pins this across worker counts and cache states).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/frame.hpp"
#include "net/poller.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "serve/service.hpp"

namespace dnj::jobs {
class JobManager;
}

namespace dnj::net {

struct ServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral (read the answer from port())

  /// Accepted-connection cap; surplus connections get a best-effort
  /// kRejected error frame and an immediate close.
  int max_connections = 64;

  /// Connections with no traffic, no in-flight work and nothing to write
  /// for this long are closed. 0 disables idle closing.
  int idle_timeout_ms = 30000;

  /// stop() waits this long for in-flight responses to drain before
  /// force-closing what remains.
  int drain_timeout_ms = 5000;

  int backlog = 128;

  /// Per-frame payload ceiling (protocol hard cap: kMaxPayloadBytes).
  std::size_t max_payload = kMaxPayloadBytes;

  /// Readiness backend. kAuto resolves to epoll on Linux, poll elsewhere;
  /// the DNJ_NET_BACKEND environment variable (epoll|poll) overrides kAuto
  /// only, so programmatic choices stay authoritative.
  PollerBackend backend = PollerBackend::kAuto;

  /// Design-job manager answering the v3 job ops (must outlive the
  /// server). Null = job ops are refused with a typed kInternal error;
  /// everything else works unchanged.
  jobs::JobManager* jobs = nullptr;
};

/// Point-in-time counters (all monotonic except connections_active).
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_active = 0;
  std::uint64_t connections_rejected = 0;  ///< over max_connections
  std::uint64_t connections_idle_closed = 0;
  std::uint64_t frames_in = 0;   ///< well-formed frames parsed
  std::uint64_t frames_out = 0;  ///< response frames queued for write
  std::uint64_t pings = 0;
  std::uint64_t requests_submitted = 0;  ///< handed to the service
  std::uint64_t protocol_errors = 0;     ///< malformed/version-skew frames
  std::uint64_t responses_dropped = 0;   ///< connection gone before write-back
  std::uint64_t stats_scrapes = 0;       ///< kStats admin ops answered
  std::uint64_t job_ops = 0;             ///< v3 job ops answered (any status)
};

class Server {
 public:
  /// The service must outlive the server. The server never shuts the
  /// service down — composition (api::Service, examples) owns that order.
  Server(serve::TranscodeService& service, ServerConfig config);
  ~Server();  ///< calls stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the loop thread. False + *error on
  /// failure (including start() while already running). start() after
  /// stop() brings the server back on a fresh socket; stats carry over.
  bool start(std::string* error = nullptr);

  /// Graceful drain (see file comment). Idempotent, safe from any thread
  /// except the loop itself; blocks until the loop has exited and every
  /// in-flight completion callback has finished.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Bound port after a successful start() (the ephemeral answer), else -1.
  int port() const { return port_.load(std::memory_order_acquire); }

  ServerStats stats() const;

 private:
  struct Conn;
  struct Done {
    std::uint64_t conn_id;
    std::vector<std::uint8_t> bytes;
    // Observability only: the sampled trace this response belongs to (0 =
    // unsampled), its root span, and when the root opened — the loop
    // records net_write and closes the root when it hands the bytes off.
    std::uint64_t trace_id = 0;
    std::uint32_t trace_root = 0;
    std::uint64_t trace_start_ns = 0;
  };

  // The handler chain returns false when the connection died along the way
  // (already closed and erased) so callers stop touching it.
  void run_loop();
  void accept_new();
  void drain_wake_pipe();
  void drain_completions();
  bool handle_readable(Conn* conn);
  bool handle_frame(Conn* conn, Frame&& frame);
  bool queue_frame(Conn* conn, const Frame& frame);
  bool queue_bytes(Conn* conn, std::vector<std::uint8_t> bytes);
  bool flush(Conn* conn);
  void close_conn(std::uint64_t id);
  void begin_drain();
  int loop_timeout_ms(bool draining) const;
  void sweep_idle();
  void wake();

  serve::TranscodeService& service_;
  ServerConfig config_;

  std::unique_ptr<Poller> poller_;
  ScopedFd listener_;
  ScopedFd wake_r_, wake_w_;
  std::thread loop_;
  std::mutex lifecycle_mutex_;  ///< serializes start()/stop()
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<int> port_{-1};

  // Loop-thread-only state.
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  std::uint64_t next_conn_id_ = 3;  ///< 1 = listener, 2 = wake pipe
  std::size_t inflight_total_ = 0;  ///< submitted, completion not yet drained

  // Worker -> loop completion hand-off.
  std::mutex done_mutex_;
  std::vector<Done> done_;

  // Callback-tail accounting: stop() must not tear down the wake pipe
  // while a worker is still inside a completion callback.
  std::mutex cb_mutex_;
  std::condition_variable cb_cv_;
  std::uint64_t callbacks_outstanding_ = 0;

  // Stats (atomics: stats() reads from any thread).
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> active_{0};
  std::atomic<std::uint64_t> conn_rejected_{0};
  std::atomic<std::uint64_t> idle_closed_{0};
  std::atomic<std::uint64_t> frames_in_{0};
  std::atomic<std::uint64_t> frames_out_{0};
  std::atomic<std::uint64_t> pings_{0};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> responses_dropped_{0};
  std::atomic<std::uint64_t> stats_scrapes_{0};
  std::atomic<std::uint64_t> job_ops_{0};

  // Metrics plane: the server publishes into the service's registry — one
  // scrape answers for both layers. The collector snapshots the atomics
  // above; the histogram tracks response frame sizes. Removed/owned so the
  // captured `this` can never dangle past the destructor.
  std::shared_ptr<obs::Registry> metrics_;
  obs::HistogramHandle* response_bytes_ = nullptr;
  std::uint64_t metrics_collector_ = 0;
};

}  // namespace dnj::net
