// Blocking protocol client — the reference peer for the event-loop server
// and the engine under bench/bench_net.cpp and tests/test_net.cpp. One
// connection, synchronous socket I/O, the same FrameParser/marshalling
// code the server uses (agreement by construction).
//
// The send and receive halves are deliberately separate (send_request /
// recv_reply) so a caller can pipeline: write a burst of requests, then
// collect the responses and pair them back up by request id — responses
// may arrive out of order (micro-batching and cache hits reorder
// completions; the protocol's request_id exists exactly for this).
// call() is the one-shot convenience for when pipelining doesn't matter.
//
// Not thread-safe; one Client per thread (the load generator runs one per
// simulated connection).
#pragma once

#include <cstdint>
#include <string>

#include "net/frame.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "serve/request.hpp"

namespace dnj::net {

class Client {
 public:
  Client() = default;

  /// Connects and arms SO_RCVTIMEO (so a dead server surfaces as an error,
  /// never a hang). False + *error on failure.
  bool connect(const std::string& host, std::uint16_t port, std::string* error,
               int recv_timeout_ms = 10000);
  void close() { fd_.reset(); }
  bool connected() const { return fd_.valid(); }

  /// Sends one request frame; returns the request id chosen for it (ids
  /// increment per client), or 0 with *error filled on failure.
  std::uint32_t send_request(const serve::Request& req, std::string* error);
  std::uint32_t send_ping(std::string* error);

  /// Sends an arbitrary pre-serialized frame (tests craft malformed ones).
  bool send_frame(const Frame& frame, std::string* error);
  /// Sends raw bytes verbatim (tests: garbage, truncated frames).
  bool send_raw(const void* data, std::size_t n, std::string* error);

  /// Blocks for the next response frame. False + *error on socket
  /// error/timeout/close or an unparseable response.
  bool recv_reply(WireReply* out, std::string* error);

  /// send_request + recv_reply, asserting the ids pair up. The reply may
  /// still be a typed error (check out->status).
  bool call(const serve::Request& req, WireReply* out, std::string* error);

  /// Round-trips a ping. False when the server is unreachable/draining.
  bool ping(std::string* error);

  /// Round-trips a kStats admin scrape (protocol v2) and fills *text with
  /// the rendered document (Prometheus text, metrics JSON, or trace JSON).
  bool scrape(StatsFormat format, std::string* text, std::string* error);

  // Design-job round trips (protocol v3). Like call(), these return true
  // whenever a structurally valid reply paired up — a typed refusal lands
  // in out->status/out->error, not in the return value.
  bool job_submit(const jobs::DesignJobSpec& spec, std::uint64_t requested_id,
                  WireReply* out, std::string* error);
  bool job_status(std::uint64_t job_id, WireReply* out, std::string* error);
  bool job_cancel(std::uint64_t job_id, WireReply* out, std::string* error);
  bool job_result(std::uint64_t job_id, WireReply* out, std::string* error);

 private:
  /// Sends `frame` (stamping the next request id) and pairs up the reply.
  bool round_trip(Frame frame, WireReply* out, std::string* error);

  ScopedFd fd_;
  FrameParser parser_;
  std::uint32_t next_id_ = 1;
};

}  // namespace dnj::net
