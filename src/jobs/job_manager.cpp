#include "jobs/job_manager.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "core/deepnjpeg.hpp"
#include "core/transcode.hpp"
#include "jpeg/decoder.hpp"
#include "jpeg/rate_control.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"

namespace dnj::jobs {

const char* job_rc_name(JobRc rc) {
  switch (rc) {
    case JobRc::kOk: return "ok";
    case JobRc::kNotFound: return "not_found";
    case JobRc::kDuplicate: return "duplicate";
    case JobRc::kInvalid: return "invalid";
    case JobRc::kQueueFull: return "queue_full";
    case JobRc::kNotFinished: return "not_finished";
    case JobRc::kShutdown: return "shutdown";
  }
  return "unknown";
}

namespace {

bool is_terminal(JobState state) {
  return state == JobState::kCompleted || state == JobState::kFailed ||
         state == JobState::kCancelled;
}

bool is_active(JobState state) {
  return state == JobState::kQueued || state == JobState::kRunning;
}

bool spec_valid(const DesignJobSpec& spec) {
  if (spec.dataset.empty() || spec.tenant.empty()) return false;
  if (spec.sa.iterations < 1 || spec.sa.t_start <= spec.sa.t_end || spec.sa.t_end <= 0.0)
    return false;
  if (spec.sa.sample_images < 1 || spec.sa.max_step < 1) return false;
  if (spec.sample_interval < 1 || spec.anneal_limit < 0) return false;
  if (spec.target_bytes_per_image < 0.0) return false;
  for (double t : spec.ladder)
    if (t <= 0.0) return false;
  return true;
}

}  // namespace

struct JobManager::Job {
  std::uint64_t id = 0;
  DesignJobSpec spec;
  std::atomic<bool> cancel{false};

  // Everything below is guarded by JobManager::mutex_.
  JobState state = JobState::kQueued;
  JobPhase phase = JobPhase::kPending;
  double progress = 0.0;
  std::uint32_t sa_iteration = 0;
  double achieved_bytes = 0.0;
  std::uint32_t checkpoints = 0;
  std::string error;
  JobResult result;  ///< filled progressively; valid once kPaused/kCompleted
};

JobManager::JobManager(JobManagerConfig config) : config_(std::move(config)) {
  config_.workers = std::max(config_.workers, 1);
  config_.queue_capacity = std::max<std::size_t>(config_.queue_capacity, 1);
  config_.checkpoint_interval = std::max(config_.checkpoint_interval, 1);

  registry_ = config_.registry ? config_.registry : std::make_shared<serve::TableRegistry>();
  metrics_ = config_.metrics ? config_.metrics : std::make_shared<obs::Registry>();

  submitted_ = &metrics_->counter("jobs_submitted_total");
  completed_ = &metrics_->counter("jobs_completed_total");
  failed_ = &metrics_->counter("jobs_failed_total");
  cancelled_ = &metrics_->counter("jobs_cancelled_total");
  rejected_ = &metrics_->counter("jobs_rejected_total");
  checkpoints_ = &metrics_->counter("jobs_checkpoints_total");
  ladder_rungs_ = &metrics_->counter("jobs_ladder_rungs_total");
  lookup_errors_ = &metrics_->counter("jobs_lookup_errors_total");
  static const char* kOpNames[4] = {"submit", "status", "cancel", "result"};
  for (int op = 0; op < 4; ++op)
    lookup_by_op_[static_cast<std::size_t>(op)] =
        &metrics_->counter("jobs_lookup_errors", {{"op", kOpNames[op]}});
  active_gauge_ = &metrics_->gauge("jobs_active");
  queued_gauge_ = &metrics_->gauge("jobs_queued");

  pool_ = std::make_unique<runtime::ThreadPool>(static_cast<unsigned>(config_.workers));
}

JobManager::~JobManager() { shutdown(); }

void JobManager::update_gauges() {
  active_gauge_->set(static_cast<double>(running_));
  queued_gauge_->set(static_cast<double>(queued_));
}

void JobManager::record_lookup_error(int op) const {
  lookup_errors_->inc();
  lookup_by_op_[static_cast<std::size_t>(op)]->inc();
}

JobRc JobManager::submit(DesignJobSpec spec, std::uint64_t requested_id,
                         std::uint64_t* id_out) {
  if (!spec_valid(spec)) return JobRc::kInvalid;

  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) return JobRc::kShutdown;
    if (queued_ + running_ >= config_.queue_capacity) {
      rejected_->inc();
      return JobRc::kQueueFull;
    }
    std::uint64_t id = requested_id;
    if (id == 0) {
      while (jobs_.count(next_id_) != 0) ++next_id_;
      id = next_id_++;
    } else if (jobs_.count(id) != 0) {
      record_lookup_error(0);
      return JobRc::kDuplicate;
    }
    job = std::make_shared<Job>();
    job->id = id;
    job->spec = std::move(spec);
    jobs_.emplace(id, job);
    ++queued_;
    submitted_->inc();
    update_gauges();
    if (id_out) *id_out = id;
  }
  pool_->submit([this, job] { run_job(job); });
  return JobRc::kOk;
}

void JobManager::run_job(const std::shared_ptr<Job>& job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (job->state != JobState::kQueued) return;  // cancelled while queued
    if (job->cancel.load(std::memory_order_relaxed)) {
      --queued_;
      job->state = JobState::kCancelled;
      cancelled_->inc();
      update_gauges();
      cv_.notify_all();
      return;
    }
    --queued_;
    ++running_;
    job->state = JobState::kRunning;
    update_gauges();
  }

  // One trace per job; phase spans attach under this root like request
  // spans attach under the serve root.
  obs::Tracer& tracer = obs::Tracer::instance();
  const std::uint64_t trace_id = tracer.start_trace();
  const std::uint32_t root = trace_id != 0 ? tracer.next_span_id() : 0;
  const std::uint64_t start_ns = obs::now_ns();
  {
    obs::TraceScope scope(trace_id, root);
    try {
      execute(job);
    } catch (const std::exception& e) {
      finish(job, JobState::kFailed, e.what());
    } catch (...) {
      finish(job, JobState::kFailed, "unknown error");
    }
  }
  obs::record_span_as(trace_id, root, 0, obs::Stage::kRequest, start_ns, obs::now_ns(),
                      job->id);
}

void JobManager::execute(const std::shared_ptr<Job>& job) {
  const DesignJobSpec& spec = job->spec;
  auto set_phase = [&](JobPhase phase, double progress) {
    std::lock_guard<std::mutex> lock(mutex_);
    job->phase = phase;
    job->progress = progress;
  };
  auto is_cancelled = [&] { return job->cancel.load(std::memory_order_relaxed); };

  // --- Analyze: Algorithm 1 profile + PLM init table (Fig. 4 flow). A
  // resumed job repeats this — the stepper needs the cost surface — but
  // the optimizer state continues from the checkpoint.
  set_phase(JobPhase::kAnalyze, 0.0);
  core::DesignConfig design_cfg;
  design_cfg.analysis.sample_interval = spec.sample_interval;
  std::optional<core::DesignResult> design;
  {
    obs::Span span(obs::Stage::kJobAnalyze, spec.dataset.size());
    design.emplace(core::DeepNJpeg::design(spec.dataset, design_cfg));
  }
  if (is_cancelled()) {
    finish(job, JobState::kCancelled, "");
    return;
  }

  // --- Anneal in checkpoint_interval segments; cancel and pause are only
  // observed at segment boundaries, so the trajectory stays deterministic.
  set_phase(JobPhase::kAnneal, 0.05);
  std::unique_ptr<core::SaStepper> stepper;
  if (spec.checkpoint.empty())
    stepper = std::make_unique<core::SaStepper>(spec.dataset, design->profile, design->table,
                                                spec.sa);
  else
    stepper = std::make_unique<core::SaStepper>(spec.dataset, design->profile, spec.sa,
                                                spec.checkpoint);

  const int limit = spec.anneal_limit;
  bool paused = false;
  while (!stepper->done()) {
    if (is_cancelled()) break;
    if (limit > 0 && stepper->iteration() >= limit) {
      paused = true;
      break;
    }
    int segment = config_.checkpoint_interval;
    if (limit > 0) segment = std::min(segment, limit - stepper->iteration());
    int ran = 0;
    {
      obs::Span span(obs::Stage::kJobAnneal);
      ran = stepper->step(segment);
      span.set_tag(static_cast<std::uint64_t>(ran));
    }
    std::vector<std::uint8_t> checkpoint = stepper->serialize();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job->sa_iteration = static_cast<std::uint32_t>(stepper->iteration());
      job->progress =
          0.05 + 0.80 * static_cast<double>(stepper->iteration()) /
                     static_cast<double>(std::max(stepper->total_iterations(), 1));
      job->result.checkpoint = std::move(checkpoint);
      ++job->checkpoints;
    }
    checkpoints_->inc();
  }
  if (limit > 0 && !stepper->done() && stepper->iteration() >= limit) paused = true;

  const core::SaResult sa = stepper->result();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job->sa_iteration = static_cast<std::uint32_t>(stepper->iteration());
    job->result.table = sa.table;
    job->result.initial_cost = sa.initial_cost;
    job->result.best_cost = sa.best_cost;
    job->result.accepted_moves = sa.accepted_moves;
    job->result.sa_iterations = static_cast<std::uint32_t>(stepper->iteration());
    job->result.checkpoint = stepper->serialize();
  }
  if (is_cancelled()) {
    finish(job, JobState::kCancelled, "");
    return;
  }
  if (paused) {
    finish(job, JobState::kPaused, "");
    return;
  }

  // --- Rate search: the quality scaling that brings the dataset's mean
  // scan payload under the target. Unreachable targets throw -> kFailed
  // with the typed message (never a silent clamp).
  set_phase(JobPhase::kRateSearch, 0.85);
  std::vector<const image::Image*> images;
  images.reserve(spec.dataset.size());
  for (const data::Sample& s : spec.dataset.samples) images.push_back(&s.image);
  const jpeg::EncoderConfig base = core::custom_table_config(sa.table);
  int quality = 50;
  double achieved = 0.0;
  {
    obs::Span span(obs::Stage::kJobRateSearch);
    if (spec.target_bytes_per_image > 0.0) {
      const jpeg::DatasetRateResult rate =
          jpeg::search_dataset_quality(images, spec.target_bytes_per_image, base);
      quality = rate.quality;
      achieved = rate.mean_scan_bytes;
      span.set_tag(static_cast<std::uint64_t>(rate.encode_calls));
    } else {
      // No target: report the rate at the designed midpoint.
      double total = 0.0;
      for (const image::Image* img : images)
        total += static_cast<double>(jpeg::scan_byte_count(jpeg::encode(*img, base)));
      achieved = total / static_cast<double>(images.size());
      span.set_tag(images.size());
    }
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job->result.quality = quality;
    job->result.target_bytes = spec.target_bytes_per_image;
    job->result.achieved_bytes = achieved;
    job->achieved_bytes = achieved;
  }
  if (is_cancelled()) {
    finish(job, JobState::kCancelled, "");
    return;
  }

  // --- Ladder: publish the primary rate point plus every extra rung as
  // versioned tenants. Rung i keeps the designed band structure — the
  // tables are IJG-scaled to the searched quality, never redesigned.
  set_phase(JobPhase::kLadder, 0.95);
  {
    obs::Span span(obs::Stage::kJobLadder);
    LadderRung primary;
    primary.name = spec.tenant;
    primary.quality = quality;
    primary.target_bytes = spec.target_bytes_per_image;
    primary.achieved_bytes = achieved;
    primary.version =
        registry_->put(spec.tenant, jpeg::config_at_quality(base, quality), spec.quota_bytes);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job->result.rungs.push_back(primary);
    }
    ladder_rungs_->inc();
    for (std::size_t i = 0; i < spec.ladder.size(); ++i) {
      const jpeg::DatasetRateResult rate =
          jpeg::search_dataset_quality(images, spec.ladder[i], base);
      LadderRung rung;
      rung.name = spec.tenant + ":r" + std::to_string(i + 1);
      rung.quality = rate.quality;
      rung.target_bytes = spec.ladder[i];
      rung.achieved_bytes = rate.mean_scan_bytes;
      rung.version = registry_->put(rung.name, jpeg::config_at_quality(base, rate.quality),
                                    spec.quota_bytes);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        job->result.rungs.push_back(rung);
      }
      ladder_rungs_->inc();
    }
    span.set_tag(spec.ladder.size() + 1);
  }

  finish(job, JobState::kCompleted, "");
}

void JobManager::finish(const std::shared_ptr<Job>& job, JobState state,
                        const std::string& error) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --running_;
    job->state = state;
    job->error = error;
    if (state == JobState::kCompleted) {
      job->phase = JobPhase::kDone;
      job->progress = 1.0;
    }
    if (state == JobState::kPaused) ++paused_count_;
    update_gauges();
  }
  switch (state) {
    case JobState::kCompleted: completed_->inc(); break;
    case JobState::kFailed: failed_->inc(); break;
    case JobState::kCancelled: cancelled_->inc(); break;
    default: break;
  }
  cv_.notify_all();
}

JobRc JobManager::status(std::uint64_t id, JobStatus* out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    record_lookup_error(1);
    return JobRc::kNotFound;
  }
  if (out) {
    const Job& job = *it->second;
    out->id = job.id;
    out->state = job.state;
    out->phase = job.phase;
    out->progress = job.progress;
    out->sa_iteration = job.sa_iteration;
    out->sa_total = static_cast<std::uint32_t>(job.spec.sa.iterations);
    out->target_bytes = job.spec.target_bytes_per_image;
    out->achieved_bytes = job.achieved_bytes;
    out->rate_error = job.spec.target_bytes_per_image > 0.0 && job.achieved_bytes > 0.0
                          ? std::abs(job.achieved_bytes - job.spec.target_bytes_per_image) /
                                job.spec.target_bytes_per_image
                          : 0.0;
    out->checkpoints = job.checkpoints;
    out->rungs = static_cast<std::uint32_t>(job.result.rungs.size());
    out->error = job.error;
  }
  return JobRc::kOk;
}

JobRc JobManager::cancel(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    record_lookup_error(2);
    return JobRc::kNotFound;
  }
  Job& job = *it->second;
  if (is_terminal(job.state)) return JobRc::kOk;  // idempotent
  job.cancel.store(true, std::memory_order_relaxed);
  if (job.state == JobState::kQueued) {
    --queued_;
    job.state = JobState::kCancelled;
    cancelled_->inc();
    update_gauges();
    cv_.notify_all();
  } else if (job.state == JobState::kPaused) {
    // A paused job has no worker to observe the flag; retire it here. Its
    // checkpoint stays retrievable through result().
    job.state = JobState::kCancelled;
    cancelled_->inc();
    cv_.notify_all();
  }
  // kRunning: the worker observes the flag at the next segment boundary.
  return JobRc::kOk;
}

JobRc JobManager::result(std::uint64_t id, JobResult* out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    record_lookup_error(3);
    return JobRc::kNotFound;
  }
  const Job& job = *it->second;
  const bool has_result = job.state == JobState::kCompleted || job.state == JobState::kPaused ||
                          (job.state == JobState::kCancelled && !job.result.checkpoint.empty());
  if (!has_result) return JobRc::kNotFinished;
  if (out) {
    *out = job.result;
    out->id = job.id;
  }
  return JobRc::kOk;
}

JobRc JobManager::wait(std::uint64_t id, JobStatus* out) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      record_lookup_error(1);
      return JobRc::kNotFound;
    }
    const std::shared_ptr<Job> job = it->second;
    cv_.wait(lock, [&] { return !is_active(job->state); });
  }
  return status(id, out);
}

void JobManager::shutdown() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!shutdown_) {
      shutdown_ = true;
      for (auto& [id, job] : jobs_) {
        if (is_terminal(job->state) || job->state == JobState::kPaused) continue;
        job->cancel.store(true, std::memory_order_relaxed);
        if (job->state == JobState::kQueued) {
          --queued_;
          job->state = JobState::kCancelled;
          cancelled_->inc();
        }
      }
      update_gauges();
      cv_.notify_all();
    }
    cv_.wait(lock, [&] { return running_ == 0; });
  }
  pool_.reset();  // drains the (now no-op) backlog and joins
}

JobManagerStats JobManager::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JobManagerStats s;
  s.submitted = submitted_->value();
  s.completed = completed_->value();
  s.failed = failed_->value();
  s.cancelled = cancelled_->value();
  s.paused = paused_count_;
  s.rejected = rejected_->value();
  s.checkpoints = checkpoints_->value();
  s.ladder_rungs = ladder_rungs_->value();
  s.lookup_errors = lookup_errors_->value();
  for (std::size_t op = 0; op < 4; ++op)
    s.lookup_errors_by_op[op] = lookup_by_op_[op]->value();
  s.active = running_;
  s.queued = queued_;
  return s;
}

}  // namespace dnj::jobs
