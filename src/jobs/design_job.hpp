// Design-job vocabulary: the spec a caller submits, the status a poll
// returns, and the result a finished job yields.
//
// A design job is the paper's offline table-design flow (Algorithm 1
// frequency analysis -> SA annealing) promoted to a served long-running
// workload: rate-controlled against a mean bytes-per-image target via
// jpeg/rate_control, checkpointable mid-anneal (SaStepper::serialize), and
// fanned out into a quality ladder registered into serve::TableRegistry
// under versioned tenant names. The vocabulary lives apart from JobManager
// so the wire/protocol layer can marshal specs and statuses without
// pulling in the execution machinery.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/sa_optimizer.hpp"
#include "data/dataset.hpp"
#include "jpeg/quant.hpp"

namespace dnj::jobs {

/// Lifecycle of a job. Terminal states are kCompleted / kFailed /
/// kCancelled; kPaused is resumable (resubmit with the checkpoint).
enum class JobState : std::uint8_t {
  kQueued = 0,    ///< accepted, waiting for a design worker
  kRunning = 1,   ///< a worker is executing a phase
  kPaused = 2,    ///< hit spec.anneal_limit; checkpoint available
  kCompleted = 3, ///< result available
  kFailed = 4,    ///< typed error in JobStatus::error
  kCancelled = 5, ///< cancel() won the race; checkpoint kept if one exists
};
inline constexpr int kNumJobStates = 6;
const char* job_state_name(JobState state);

/// Pipeline position, for progress reporting and phase spans.
enum class JobPhase : std::uint8_t {
  kPending = 0,     ///< not picked up yet
  kAnalyze = 1,     ///< Algorithm 1 frequency analysis + PLM init table
  kAnneal = 2,      ///< SA segments with periodic checkpoints
  kRateSearch = 3,  ///< dataset-level quality search against the target
  kLadder = 4,      ///< rate points searched + registered as tenants
  kDone = 5,
};
const char* job_phase_name(JobPhase phase);

struct DesignJobSpec {
  /// Representative sample images the table is designed from. A resumed
  /// job may carry more images than the checkpointed run (refine mode);
  /// byte-identical resume requires the identical dataset.
  data::Dataset dataset;

  /// Registry name the designed config is published under. The ladder's
  /// extra rate points are registered as "<tenant>:r<i>". Must be
  /// non-empty.
  std::string tenant;

  /// Rate target: mean entropy-coded scan bytes per image. 0 = no rate
  /// control (the designed table is registered at its midpoint, quality
  /// 50).
  double target_bytes_per_image = 0.0;

  /// Additional rate points (mean bytes/image) for the quality ladder;
  /// each gets its own rate search and versioned registry entry.
  std::vector<double> ladder;

  /// Annealing schedule. sa.num_threads uses the job worker's thread
  /// budget; the trajectory is thread-count-invariant either way.
  core::SaConfig sa;

  /// Algorithm 1 sampling interval (every k-th image per class).
  int sample_interval = 1;

  /// Deterministic pause point: when > 0 the job checkpoints and parks in
  /// kPaused once the SA iteration counter reaches this value. 0 = run to
  /// completion. Resume by submitting a new job with `checkpoint` set.
  int anneal_limit = 0;

  /// SaStepper checkpoint to resume from (empty = fresh run). The analyze
  /// phase still runs — the stepper needs the cost surface — but the
  /// optimizer state (tables, temperature, RNG stream) continues from
  /// here.
  std::vector<std::uint8_t> checkpoint;

  /// Result-cache quota passed through to every registry entry.
  std::size_t quota_bytes = 0;
};

/// One registered rate point of the quality ladder.
struct LadderRung {
  std::string name;            ///< registry tenant name
  std::uint64_t version = 0;   ///< registry publication stamp
  int quality = 50;            ///< IJG scaling applied to the designed pair
  double target_bytes = 0.0;   ///< requested mean bytes/image
  double achieved_bytes = 0.0; ///< measured mean bytes/image at `quality`
};

struct JobStatus {
  std::uint64_t id = 0;
  JobState state = JobState::kQueued;
  JobPhase phase = JobPhase::kPending;
  /// Coarse fraction of the whole job in [0, 1]; SA iterations dominate.
  double progress = 0.0;
  std::uint32_t sa_iteration = 0;  ///< SA iterations completed
  std::uint32_t sa_total = 0;      ///< spec.sa.iterations
  double target_bytes = 0.0;       ///< spec target (0 = uncontrolled)
  double achieved_bytes = 0.0;     ///< mean bytes/image at the chosen rate point
  double rate_error = 0.0;         ///< |achieved - target| / target (0 when no target)
  std::uint32_t checkpoints = 0;   ///< checkpoints taken so far
  std::uint32_t rungs = 0;         ///< ladder rungs registered so far
  std::string error;               ///< non-empty iff state == kFailed
};

struct JobResult {
  std::uint64_t id = 0;
  jpeg::QuantTable table;        ///< the annealed DeepN table
  int quality = 50;              ///< rate-search quality for the primary target
  double target_bytes = 0.0;
  double achieved_bytes = 0.0;   ///< mean scan bytes/image at `quality`
  double initial_cost = 0.0;
  double best_cost = 0.0;
  int accepted_moves = 0;
  std::uint32_t sa_iterations = 0;
  std::vector<LadderRung> rungs;
  /// Optimizer state at the end of the run — the resume blob for kPaused
  /// jobs and the refine seed for completed ones.
  std::vector<std::uint8_t> checkpoint;
};

}  // namespace dnj::jobs
