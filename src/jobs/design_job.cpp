#include "jobs/design_job.hpp"

namespace dnj::jobs {

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kPaused: return "paused";
    case JobState::kCompleted: return "completed";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "unknown";
}

const char* job_phase_name(JobPhase phase) {
  switch (phase) {
    case JobPhase::kPending: return "pending";
    case JobPhase::kAnalyze: return "analyze";
    case JobPhase::kAnneal: return "anneal";
    case JobPhase::kRateSearch: return "rate_search";
    case JobPhase::kLadder: return "ladder";
    case JobPhase::kDone: return "done";
  }
  return "unknown";
}

}  // namespace dnj::jobs
