// Long-running-job subsystem: a JobManager owns a private bounded worker
// pool that executes design jobs (jobs/design_job.hpp) without ever
// touching the transcode service's workers — a tenant onboarding with a
// 400-iteration SA run can never starve request latency.
//
// Lifecycle: submit() validates the spec, assigns (or honours) a job id
// and queues the job; workers move it kQueued -> kRunning -> terminal.
// status()/cancel()/result() are map lookups safe from any thread — the
// net server answers the corresponding wire ops on its loop thread.
// Unknown and duplicate job ids are typed refusals (JobRc), counted into
// the per-op lookup-error stats whose sum equals the total (the kind-sum
// invariant, pinned in test_jobs).
//
// Checkpointing: every checkpoint_interval SA iterations the worker
// serializes the optimizer state into the job record; spec.anneal_limit
// parks the job in kPaused at a deterministic iteration. Resume =
// submit a new spec carrying the checkpoint; over the same dataset the
// resumed job anneals the byte-identical table (gated in test_jobs and
// bench_design).
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "jobs/design_job.hpp"
#include "obs/metrics.hpp"
#include "serve/registry.hpp"

namespace dnj::runtime {
class ThreadPool;
}

namespace dnj::jobs {

/// Typed outcome of a JobManager call. Maps 1:1 onto api::StatusCode at
/// the boundary: kNotFound/kDuplicate/kInvalid -> kInvalidArgument,
/// kQueueFull -> kRejected, kShutdown -> kShutdown, kNotFinished ->
/// kRejected (retry later).
enum class JobRc : std::uint8_t {
  kOk = 0,
  kNotFound = 1,     ///< no job with that id
  kDuplicate = 2,    ///< submit() with an id that already exists
  kInvalid = 3,      ///< spec fails validation
  kQueueFull = 4,    ///< queued + running at capacity
  kNotFinished = 5,  ///< result() before the job reached kPaused/terminal
  kShutdown = 6,     ///< manager is shutting down
};
const char* job_rc_name(JobRc rc);

struct JobManagerConfig {
  /// Design workers (threads dedicated to jobs). Clamped to >= 1.
  int workers = 1;
  /// Max queued + running jobs; submissions beyond it are refused with
  /// kQueueFull (counted as jobs_rejected_total). Clamped to >= 1.
  std::size_t queue_capacity = 8;
  /// SA iterations per segment between automatic checkpoints (and cancel
  /// checks). Clamped to >= 1.
  int checkpoint_interval = 64;
  /// Registry the ladder publishes into. Null = the manager creates a
  /// private one (reachable via registry()). Share the serving registry
  /// so designed tenants become servable immediately.
  std::shared_ptr<serve::TableRegistry> registry;
  /// Metrics registry for the jobs_* instruments. Null = private.
  std::shared_ptr<obs::Registry> metrics;
};

/// Point-in-time counters; per-op lookup errors sum to lookup_errors.
struct JobManagerStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t paused = 0;
  std::uint64_t rejected = 0;      ///< queue-full refusals
  std::uint64_t checkpoints = 0;   ///< optimizer snapshots taken
  std::uint64_t ladder_rungs = 0;  ///< registry entries published by jobs
  std::uint64_t lookup_errors = 0;
  /// Indexed by op: 0 = submit (duplicate id), 1 = status, 2 = cancel,
  /// 3 = result (unknown id).
  std::array<std::uint64_t, 4> lookup_errors_by_op{};
  std::uint64_t active = 0;  ///< currently running
  std::uint64_t queued = 0;  ///< accepted, not yet picked up
};

class JobManager {
 public:
  explicit JobManager(JobManagerConfig config = {});
  ~JobManager();  ///< cancels outstanding jobs and joins the pool
  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  /// Queues a design job. `requested_id` 0 = assign the next free id;
  /// nonzero = use exactly that id (the resume/refine idiom keeps an
  /// external name), refused with kDuplicate if it already exists. On
  /// kOk, *id_out (if non-null) receives the job id.
  JobRc submit(DesignJobSpec spec, std::uint64_t requested_id, std::uint64_t* id_out);

  JobRc status(std::uint64_t id, JobStatus* out) const;

  /// Requests cancellation. Queued jobs cancel immediately; running jobs
  /// stop at the next segment boundary (their latest checkpoint is kept).
  /// Terminal jobs: no-op, kOk (idempotent).
  JobRc cancel(std::uint64_t id);

  /// Result of a kCompleted or kPaused job (a paused result carries the
  /// resume checkpoint and the best-so-far table). kNotFinished while
  /// queued/running; kNotFound for unknown ids.
  JobRc result(std::uint64_t id, JobResult* out) const;

  /// Blocks until the job leaves the active states (kQueued/kRunning) and
  /// fills *out (if non-null) with its status then. kNotFound for unknown
  /// ids.
  JobRc wait(std::uint64_t id, JobStatus* out = nullptr);

  /// Stops accepting submissions, cancels queued + running jobs, and
  /// joins the workers. Idempotent; the destructor calls it.
  void shutdown();

  std::shared_ptr<serve::TableRegistry> registry() const { return registry_; }
  std::shared_ptr<obs::Registry> metrics_registry() const { return metrics_; }
  JobManagerStats stats() const;

 private:
  struct Job;

  void run_job(const std::shared_ptr<Job>& job);
  void execute(const std::shared_ptr<Job>& job);
  void finish(const std::shared_ptr<Job>& job, JobState state, const std::string& error);
  void record_lookup_error(int op) const;
  void update_gauges();  ///< callers hold mutex_

  JobManagerConfig config_;
  std::shared_ptr<serve::TableRegistry> registry_;
  std::shared_ptr<obs::Registry> metrics_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Job>> jobs_;
  std::uint64_t next_id_ = 1;
  std::uint64_t queued_ = 0;
  std::uint64_t running_ = 0;
  std::uint64_t paused_count_ = 0;
  bool shutdown_ = false;

  // jobs_* instruments (owned by metrics_, stable addresses).
  obs::Counter* submitted_ = nullptr;
  obs::Counter* completed_ = nullptr;
  obs::Counter* failed_ = nullptr;
  obs::Counter* cancelled_ = nullptr;
  obs::Counter* rejected_ = nullptr;
  obs::Counter* checkpoints_ = nullptr;
  obs::Counter* ladder_rungs_ = nullptr;
  obs::Counter* lookup_errors_ = nullptr;
  std::array<obs::Counter*, 4> lookup_by_op_{};
  obs::Gauge* active_gauge_ = nullptr;
  obs::Gauge* queued_gauge_ = nullptr;

  /// Private pool; declared last so its destructor (drain + join) runs
  /// before the members its tasks touch are torn down.
  std::unique_ptr<runtime::ThreadPool> pool_;
};

}  // namespace dnj::jobs
