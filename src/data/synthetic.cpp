#include "data/synthetic.hpp"

#include <cmath>
#include <random>
#include <stdexcept>

namespace dnj::data {

namespace {

using image::Image;
using image::PlaneF;

/// SplitMix64: decorrelates the per-sample seed from (seed, class, index).
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

struct Rng {
  std::mt19937_64 engine;
  explicit Rng(std::uint64_t seed) : engine(seed) {}
  float uniform(float lo, float hi) {
    return std::uniform_real_distribution<float>(lo, hi)(engine);
  }
  float normal(float sigma) {
    return std::normal_distribution<float>(0.0f, sigma)(engine);
  }
  int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine);
  }
};

// --- primitive painters; all add into a float canvas around a mid-gray ---

void paint_blobs(PlaneF& p, Rng& rng) {
  const int n = rng.uniform_int(2, 3);
  for (int b = 0; b < n; ++b) {
    const float cx = rng.uniform(0.2f, 0.8f) * static_cast<float>(p.width());
    const float cy = rng.uniform(0.2f, 0.8f) * static_cast<float>(p.height());
    const float sx = rng.uniform(0.18f, 0.32f) * static_cast<float>(p.width());
    const float sy = rng.uniform(0.18f, 0.32f) * static_cast<float>(p.height());
    const float amp = rng.uniform(40.0f, 85.0f) * (rng.uniform(0.0f, 1.0f) < 0.3f ? -1.0f : 1.0f);
    for (int y = 0; y < p.height(); ++y)
      for (int x = 0; x < p.width(); ++x) {
        const float dx = (static_cast<float>(x) - cx) / sx;
        const float dy = (static_cast<float>(y) - cy) / sy;
        p.at(x, y) += amp * std::exp(-0.5f * (dx * dx + dy * dy));
      }
  }
}

void paint_gradient(PlaneF& p, Rng& rng) {
  const float theta = rng.uniform(0.0f, static_cast<float>(M_PI));
  const float gx = std::cos(theta);
  const float gy = std::sin(theta);
  const float span = rng.uniform(60.0f, 120.0f);
  const float diag = std::hypot(static_cast<float>(p.width()), static_cast<float>(p.height()));
  for (int y = 0; y < p.height(); ++y)
    for (int x = 0; x < p.width(); ++x) {
      const float t = (gx * static_cast<float>(x) + gy * static_cast<float>(y)) / diag;
      p.at(x, y) += span * (t - 0.5f);
    }
}

/// Sinusoidal grating: `period` in pixels, `theta` orientation, random phase.
void paint_grating(PlaneF& p, Rng& rng, float period_lo, float period_hi, float amp_lo,
                   float amp_hi, float theta_lo, float theta_hi) {
  const float period = rng.uniform(period_lo, period_hi);
  const float theta = rng.uniform(theta_lo, theta_hi);
  const float phase = rng.uniform(0.0f, 2.0f * static_cast<float>(M_PI));
  const float amp = rng.uniform(amp_lo, amp_hi);
  const float fx = std::cos(theta) * 2.0f * static_cast<float>(M_PI) / period;
  const float fy = std::sin(theta) * 2.0f * static_cast<float>(M_PI) / period;
  for (int y = 0; y < p.height(); ++y)
    for (int x = 0; x < p.width(); ++x)
      p.at(x, y) += amp * std::sin(fx * static_cast<float>(x) + fy * static_cast<float>(y) + phase);
}

void paint_checker(PlaneF& p, Rng& rng) {
  const int cell = rng.uniform_int(2, 3);
  const int ox = rng.uniform_int(0, cell - 1);
  const int oy = rng.uniform_int(0, cell - 1);
  const float amp = rng.uniform(30.0f, 55.0f);
  for (int y = 0; y < p.height(); ++y)
    for (int x = 0; x < p.width(); ++x) {
      const int parity = ((x + ox) / cell + (y + oy) / cell) & 1;
      p.at(x, y) += parity ? amp : -amp;
    }
}

/// Mid-band noise: white noise smoothed by a 3x3 box, minus a heavier
/// 7-tap smoothing — a crude band-pass that concentrates energy in the
/// middle of the 8x8 DCT grid.
void paint_band_noise(PlaneF& p, Rng& rng) {
  const float amp = rng.uniform(22.0f, 40.0f);
  PlaneF white(p.width(), p.height());
  for (float& v : white.data()) v = rng.normal(1.0f);
  auto box = [](const PlaneF& src, int radius) {
    PlaneF dst(src.width(), src.height());
    for (int y = 0; y < src.height(); ++y)
      for (int x = 0; x < src.width(); ++x) {
        float sum = 0.0f;
        int n = 0;
        for (int dy = -radius; dy <= radius; ++dy)
          for (int dx = -radius; dx <= radius; ++dx) {
            const int sx = x + dx, sy = y + dy;
            if (sx >= 0 && sx < src.width() && sy >= 0 && sy < src.height()) {
              sum += src.at(sx, sy);
              ++n;
            }
          }
        dst.at(x, y) = sum / static_cast<float>(n);
      }
    return dst;
  };
  const PlaneF mid = box(white, 1);
  const PlaneF low = box(white, 3);
  for (int y = 0; y < p.height(); ++y)
    for (int x = 0; x < p.width(); ++x)
      p.at(x, y) += amp * 3.0f * (mid.at(x, y) - low.at(x, y));
}

/// Smooth random envelope (period ~16-40 px): modulating a carrier with it
/// keeps the carrier's energy in the high DCT bands while making the
/// coefficient *vary across blocks*, which is what the per-band standard
/// deviation of Algorithm 1 measures.
float envelope(Rng& rng, float& fx, float& fy, float& phase) {
  const float period = rng.uniform(16.0f, 40.0f);
  const float theta = rng.uniform(0.0f, 2.0f * static_cast<float>(M_PI));
  fx = std::cos(theta) * 2.0f * static_cast<float>(M_PI) / period;
  fy = std::sin(theta) * 2.0f * static_cast<float>(M_PI) / period;
  phase = rng.uniform(0.0f, 2.0f * static_cast<float>(M_PI));
  // Wide amplitude range: weak-texture samples are destroyed by aggressive
  // HVS quantization (graded accuracy degradation, as on ImageNet) while
  // strong samples keep the dataset-level sigma of these bands high enough
  // for the magnitude-based design to protect them.
  return rng.uniform(12.0f, 34.0f);
}

/// Envelope value at (x, y): stays positive (0.3..1.0) so the texture never
/// vanishes, yet varies smoothly so per-block DCT coefficients spread out.
float envelope_at(float fx, float fy, float phase, int x, int y) {
  return 0.65f + 0.35f * std::sin(fx * static_cast<float>(x) + fy * static_cast<float>(y) + phase);
}

/// Faint isotropic high-frequency texture: a Nyquist-rate checker carrier
/// modulated by a smooth random envelope. Energy sits in the top corner of
/// the DCT grid and varies block to block.
void paint_fine_texture(PlaneF& p, Rng& rng) {
  float fx, fy, phase;
  const float amp = envelope(rng, fx, fy, phase);
  for (int y = 0; y < p.height(); ++y)
    for (int x = 0; x < p.width(); ++x) {
      const float carrier = ((x + y) & 1) ? 1.0f : -1.0f;
      const float env = envelope_at(fx, fy, phase, x, y);
      p.at(x, y) += amp * env * carrier * (0.8f + 0.4f * rng.uniform(0.0f, 1.0f));
    }
}

/// Faint fine diagonal ridges (period ~3 px at +-45 degrees) under the same
/// kind of smooth envelope — the HF content differs from paint_fine_texture
/// only in orientation, giving the junco/robin-style class pair.
void paint_fine_ridges(PlaneF& p, Rng& rng) {
  const float dir = rng.uniform(0.0f, 1.0f) < 0.5f ? 1.0f : -1.0f;
  const float period = rng.uniform(2.6f, 3.4f);
  const float cphase = rng.uniform(0.0f, 2.0f * static_cast<float>(M_PI));
  const float w = 2.0f * static_cast<float>(M_PI) / period;
  float fx, fy, phase;
  const float amp = envelope(rng, fx, fy, phase);
  for (int y = 0; y < p.height(); ++y)
    for (int x = 0; x < p.width(); ++x) {
      const float carrier = std::sin(
          w * (static_cast<float>(x) + dir * static_cast<float>(y)) * 0.70710678f + cphase);
      const float env = envelope_at(fx, fy, phase, x, y);
      p.at(x, y) += amp * env * carrier;
    }
}

}  // namespace

std::string class_name(ClassKind kind) {
  switch (kind) {
    case ClassKind::kSmoothBlob: return "smooth_blob";
    case ClassKind::kGradient: return "gradient";
    case ClassKind::kCoarseGrating: return "coarse_grating";
    case ClassKind::kBandNoise: return "band_noise";
    case ClassKind::kFineGrating: return "fine_grating";
    case ClassKind::kCheckerboard: return "checkerboard";
    case ClassKind::kBlobPlusTexture: return "blob_plus_texture";
    case ClassKind::kBlobPlusRidges: return "blob_plus_ridges";
  }
  return "unknown";
}

SyntheticDatasetGenerator::SyntheticDatasetGenerator(const GeneratorConfig& config)
    : config_(config) {
  if (config.width < 8 || config.height < 8)
    throw std::invalid_argument("SyntheticDatasetGenerator: images must be at least 8x8");
  if (config.channels != 1 && config.channels != 3)
    throw std::invalid_argument("SyntheticDatasetGenerator: channels must be 1 or 3");
  if (config.num_classes < 2 || config.num_classes > kNumClassKinds)
    throw std::invalid_argument("SyntheticDatasetGenerator: num_classes out of range");
}

image::Image SyntheticDatasetGenerator::render(ClassKind kind, int index) const {
  Rng rng(mix(config_.seed ^ mix(static_cast<std::uint64_t>(kind) * 0x10001ULL +
                                 static_cast<std::uint64_t>(index))));
  PlaneF canvas(config_.width, config_.height, 128.0f);

  switch (kind) {
    case ClassKind::kSmoothBlob:
      paint_blobs(canvas, rng);
      break;
    case ClassKind::kGradient:
      paint_gradient(canvas, rng);
      break;
    case ClassKind::kCoarseGrating:
      paint_grating(canvas, rng, 10.0f, 16.0f, 35.0f, 60.0f, -0.4f, 0.4f);
      break;
    case ClassKind::kBandNoise:
      paint_band_noise(canvas, rng);
      break;
    case ClassKind::kFineGrating:
      paint_grating(canvas, rng, 3.0f, 4.2f, 25.0f, 45.0f, 1.2f, 1.9f);
      break;
    case ClassKind::kCheckerboard:
      paint_checker(canvas, rng);
      break;
    case ClassKind::kBlobPlusTexture:
      paint_blobs(canvas, rng);
      paint_fine_texture(canvas, rng);
      break;
    case ClassKind::kBlobPlusRidges:
      paint_blobs(canvas, rng);
      paint_fine_ridges(canvas, rng);
      break;
  }

  // Sensor noise.
  if (config_.noise_sigma > 0.0f)
    for (float& v : canvas.data()) v += rng.normal(config_.noise_sigma);

  Image img(config_.width, config_.height, config_.channels);
  if (config_.channels == 1) {
    image::from_plane(canvas, img, 0);
  } else {
    // Slight deterministic per-channel tint keeps chroma non-trivial
    // without moving class information out of luma.
    const float tint[3] = {rng.uniform(0.92f, 1.0f), 1.0f, rng.uniform(0.92f, 1.0f)};
    for (int y = 0; y < img.height(); ++y)
      for (int x = 0; x < img.width(); ++x)
        for (int c = 0; c < 3; ++c)
          img.at(x, y, c) = image::clamp_u8(canvas.at(x, y) * tint[c]);
  }
  return img;
}

Dataset SyntheticDatasetGenerator::generate(int per_class, int first_index) const {
  if (per_class <= 0) throw std::invalid_argument("generate: per_class must be positive");
  Dataset ds;
  ds.num_classes = config_.num_classes;
  ds.samples.reserve(static_cast<std::size_t>(per_class) * config_.num_classes);
  for (int c = 0; c < config_.num_classes; ++c)
    for (int i = 0; i < per_class; ++i)
      ds.samples.push_back(
          {render(static_cast<ClassKind>(c), first_index + i), c});
  return ds;
}

std::pair<Dataset, Dataset> SyntheticDatasetGenerator::generate_split(
    int train_per_class, int test_per_class) const {
  return {generate(train_per_class, 0), generate(test_per_class, train_per_class)};
}

}  // namespace dnj::data
