#include "data/folder.hpp"

#include <algorithm>
#include <filesystem>
#include <stdexcept>

#include "image/io.hpp"

namespace dnj::data {

namespace fs = std::filesystem;

FolderDataset load_folder_dataset(const std::string& root, bool allow_mixed_sizes) {
  if (!fs::is_directory(root))
    throw std::runtime_error("load_folder_dataset: not a directory: " + root);

  std::vector<std::string> class_dirs;
  for (const fs::directory_entry& entry : fs::directory_iterator(root))
    if (entry.is_directory()) class_dirs.push_back(entry.path().filename().string());
  std::sort(class_dirs.begin(), class_dirs.end());
  if (class_dirs.empty())
    throw std::runtime_error("load_folder_dataset: no class directories in " + root);

  FolderDataset out;
  out.dataset.num_classes = static_cast<int>(class_dirs.size());

  int expect_w = -1, expect_h = -1, expect_c = -1;
  for (std::size_t label = 0; label < class_dirs.size(); ++label) {
    FolderClass cls;
    cls.name = class_dirs[label];
    cls.label = static_cast<int>(label);

    std::vector<std::string> files;
    for (const fs::directory_entry& entry :
         fs::directory_iterator(fs::path(root) / class_dirs[label])) {
      const std::string ext = entry.path().extension().string();
      if (entry.is_regular_file() && (ext == ".pgm" || ext == ".ppm"))
        files.push_back(entry.path().string());
    }
    std::sort(files.begin(), files.end());

    for (const std::string& file : files) {
      image::Image img = image::read_pnm(file);
      if (expect_w < 0) {
        expect_w = img.width();
        expect_h = img.height();
        expect_c = img.channels();
      } else if (!allow_mixed_sizes &&
                 (img.width() != expect_w || img.height() != expect_h ||
                  img.channels() != expect_c)) {
        throw std::runtime_error("load_folder_dataset: geometry mismatch in " + file);
      }
      out.dataset.samples.push_back({std::move(img), cls.label});
      ++cls.image_count;
    }
    out.classes.push_back(cls);
  }
  if (out.dataset.empty())
    throw std::runtime_error("load_folder_dataset: no images under " + root);
  return out;
}

void save_folder_dataset(const Dataset& ds, const std::string& root,
                         const std::vector<std::string>& class_names) {
  if (static_cast<int>(class_names.size()) != ds.num_classes)
    throw std::invalid_argument("save_folder_dataset: class name count mismatch");
  std::vector<int> counters(class_names.size(), 0);
  for (const Sample& s : ds.samples) {
    const fs::path dir = fs::path(root) / class_names[static_cast<std::size_t>(s.label)];
    fs::create_directories(dir);
    char name[32];
    std::snprintf(name, sizeof(name), "%04d.%s", counters[static_cast<std::size_t>(s.label)]++,
                  s.image.channels() == 1 ? "pgm" : "ppm");
    image::write_pnm(s.image, (dir / name).string());
  }
}

}  // namespace dnj::data
