// Labeled image dataset container shared by the generator, the codec
// experiments and the neural-network trainer.
#pragma once

#include <cstdint>
#include <vector>

#include "image/image.hpp"

namespace dnj::data {

struct Sample {
  image::Image image;
  int label = 0;
};

struct Dataset {
  std::vector<Sample> samples;
  int num_classes = 0;

  std::size_t size() const { return samples.size(); }
  bool empty() const { return samples.empty(); }

  int width() const { return samples.empty() ? 0 : samples.front().image.width(); }
  int height() const { return samples.empty() ? 0 : samples.front().image.height(); }
  int channels() const { return samples.empty() ? 0 : samples.front().image.channels(); }

  /// Total raw (uncompressed) pixel bytes across all samples.
  std::size_t raw_bytes() const {
    std::size_t total = 0;
    for (const Sample& s : samples) total += s.image.byte_size();
    return total;
  }

  /// Count of samples per class (length num_classes).
  std::vector<int> class_counts() const {
    std::vector<int> counts(static_cast<std::size_t>(num_classes), 0);
    for (const Sample& s : samples) ++counts[static_cast<std::size_t>(s.label)];
    return counts;
  }
};

}  // namespace dnj::data
