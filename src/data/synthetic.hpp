// Synthetic dataset with controlled frequency-domain class signatures —
// the stand-in for ImageNet (see DESIGN.md, substitutions).
//
// The paper's entire mechanism is spectral: a class is easy or hard to
// preserve under quantization depending on which DCT bands carry its
// discriminative energy. Each synthetic class below therefore has a
// documented spectral signature, and two class pairs are constructed to be
// separable ONLY by high-frequency content (the paper's junco-vs-robin
// example, Fig. 3):
//
//   kSmoothBlob      — sum of broad Gaussian blobs; energy in the lowest bands.
//   kGradient        — oriented linear ramp; almost pure DC + lowest AC.
//   kCoarseGrating   — sinusoidal grating, period 10–16 px (low/mid bands).
//   kBandNoise       — mid-band filtered noise; flat mid-frequency ridge.
//   kFineGrating     — sinusoidal grating, period 3–4 px (high bands).
//   kCheckerboard    — 2-px checker; energy near the Nyquist corner.
//   kBlobPlusTexture — kSmoothBlob plus a faint isotropic high-frequency
//                      texture: differs from kSmoothBlob only in HF.
//   kBlobPlusRidges  — kSmoothBlob plus faint *diagonal* high-frequency
//                      ridges: differs from kBlobPlusTexture only in the
//                      orientation of its HF content.
//
// Every image gets per-sample jitter (phase, orientation, amplitude,
// position, sensor noise) so classifiers must generalize, and generation is
// bit-deterministic: sample (class c, index i) depends only on
// (seed, c, i), never on generation order.
#pragma once

#include <cstdint>
#include <string>

#include "data/dataset.hpp"

namespace dnj::data {

enum class ClassKind : int {
  kSmoothBlob = 0,
  kGradient,
  kCoarseGrating,
  kBandNoise,
  kFineGrating,
  kCheckerboard,
  kBlobPlusTexture,
  kBlobPlusRidges,
};

inline constexpr int kNumClassKinds = 8;

/// Human-readable class name ("smooth_blob", ...).
std::string class_name(ClassKind kind);

struct GeneratorConfig {
  int width = 32;
  int height = 32;
  int channels = 1;          ///< 1 (gray) or 3 (RGB with per-channel tint)
  int num_classes = kNumClassKinds;  ///< first N of the kinds above
  std::uint64_t seed = 0xD0E5EEDULL;
  float noise_sigma = 2.0f;  ///< additive Gaussian sensor noise (gray levels)
};

class SyntheticDatasetGenerator {
 public:
  explicit SyntheticDatasetGenerator(const GeneratorConfig& config);

  /// Renders sample `index` of class `kind` deterministically.
  image::Image render(ClassKind kind, int index) const;

  /// Generates `per_class` samples for every class, indices
  /// [first_index, first_index + per_class).
  Dataset generate(int per_class, int first_index = 0) const;

  /// Disjoint train/test split: train uses indices [0, train_per_class),
  /// test uses [train_per_class, train_per_class + test_per_class).
  std::pair<Dataset, Dataset> generate_split(int train_per_class, int test_per_class) const;

  const GeneratorConfig& config() const { return config_; }

 private:
  GeneratorConfig config_;
};

}  // namespace dnj::data
