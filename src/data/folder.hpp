// Directory-backed dataset loader: one subdirectory per class, binary
// PGM/PPM files inside. This is the path a downstream user takes to run the
// DeepN-JPEG design flow on real images instead of the synthetic generator:
//
//   my_dataset/
//     junco/   img0.pgm img1.pgm ...
//     robin/   ...
#pragma once

#include <string>
#include <vector>

#include "data/dataset.hpp"

namespace dnj::data {

struct FolderClass {
  std::string name;
  int label = 0;
  std::size_t image_count = 0;
};

struct FolderDataset {
  Dataset dataset;
  std::vector<FolderClass> classes;  ///< sorted by name; label = index
};

/// Loads every .pgm/.ppm file under root/<class>/. Class labels are
/// assigned in lexicographic directory order so loading is deterministic.
/// Throws std::runtime_error if the root has no class directories or an
/// image fails to parse; images of mismatched geometry throw unless
/// `allow_mixed_sizes`.
FolderDataset load_folder_dataset(const std::string& root, bool allow_mixed_sizes = false);

/// Writes a dataset to root/<class_name>/NNNN.pgm|.ppm (used by tests and
/// by the batch-compression example to materialize datasets on disk).
void save_folder_dataset(const Dataset& ds, const std::string& root,
                         const std::vector<std::string>& class_names);

}  // namespace dnj::data
