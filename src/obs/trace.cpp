#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>

namespace dnj::obs {

namespace {

std::uint64_t fnv1a64(std::uint64_t v) {
  std::uint64_t h = 14695981039346656037ull;
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (!raw || !*raw) return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;
  return static_cast<std::uint64_t>(v);
}

constexpr std::size_t kMinRing = 64;
constexpr std::size_t kMaxRing = std::size_t{1} << 20;

}  // namespace

const char* stage_name(Stage stage) {
  switch (stage) {
    case Stage::kRequest: return "request";
    case Stage::kNetRead: return "net_read";
    case Stage::kNetParse: return "net_parse";
    case Stage::kNetWrite: return "net_write";
    case Stage::kQueueWait: return "queue_wait";
    case Stage::kBatch: return "batch";
    case Stage::kCacheProbe: return "cache_probe";
    case Stage::kEncodeTile: return "encode_tile";
    case Stage::kEncodeDct: return "encode_dct";
    case Stage::kEncodeQuant: return "encode_quant";
    case Stage::kEncodeEntropy: return "encode_entropy";
    case Stage::kDecodeEntropy: return "decode_entropy";
    case Stage::kDecodePixels: return "decode_pixels";
    case Stage::kInfer: return "infer";
    case Stage::kJobAnalyze: return "job_analyze";
    case Stage::kJobAnneal: return "job_anneal";
    case Stage::kJobRateSearch: return "job_rate_search";
    case Stage::kJobLadder: return "job_ladder";
  }
  return "unknown";
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Tracer::Tracer() {
  set_sample_every(static_cast<std::uint32_t>(env_u64("DNJ_TRACE_SAMPLE", 0)));
  set_ring_capacity(env_u64("DNJ_TRACE_RING", 4096));
}

Tracer& Tracer::instance() {
  // Intentionally leaked: worker threads (and their thread-local ring
  // pointers) may outlive static destruction order.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::set_ring_capacity(std::size_t cap) {
  ring_capacity_.store(std::clamp(cap, kMinRing, kMaxRing),
                       std::memory_order_relaxed);
}

std::uint64_t Tracer::start_trace() {
  const std::uint32_t n = sample_every();
  if (n == 0) return 0;
  // Trace ids are never 0 — 0 is the "unsampled" sentinel everywhere.
  const std::uint64_t id = next_trace_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n == 1) return id;
  return (fnv1a64(id) % n == 0) ? id : 0;
}

Tracer::Ring& Tracer::thread_ring() {
  // One ring per (thread, tracer) pair; the tracer is a leaked singleton,
  // so a raw pointer cached in a thread_local stays valid for the thread's
  // whole life even though the ring itself is owned by rings_.
  thread_local Ring* ring = nullptr;
  if (!ring) {
    std::lock_guard<std::mutex> lock(rings_mutex_);
    rings_.push_back(std::make_unique<Ring>(
        static_cast<std::uint32_t>(rings_.size()), ring_capacity()));
    ring = rings_.back().get();
  }
  return *ring;
}

void Tracer::record(const SpanRecord& rec) {
  if (rec.trace_id == 0) return;
  Ring& ring = thread_ring();
  std::lock_guard<std::mutex> lock(ring.mutex);
  SpanRecord stamped = rec;
  stamped.thread = ring.index;
  if (ring.slots.size() < ring.capacity) {
    ring.slots.push_back(stamped);
  } else {
    ring.slots[ring.next] = stamped;
    ring.next = (ring.next + 1) % ring.capacity;
  }
}

std::vector<SpanRecord> Tracer::dump() const {
  std::vector<SpanRecord> out;
  {
    std::lock_guard<std::mutex> lock(rings_mutex_);
    for (const auto& ring : rings_) {
      std::lock_guard<std::mutex> ring_lock(ring->mutex);
      out.insert(out.end(), ring->slots.begin(), ring->slots.end());
    }
  }
  std::sort(out.begin(), out.end(), [](const SpanRecord& a, const SpanRecord& b) {
    if (a.trace_id != b.trace_id) return a.trace_id < b.trace_id;
    if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
    return a.span_id < b.span_id;
  });
  return out;
}

std::string Tracer::dump_json() const {
  const std::vector<SpanRecord> spans = dump();
  std::string out;
  out.reserve(64 + spans.size() * 96);
  out += "{\"clock\":\"steady_ns\",\"sample_every\":";
  out += std::to_string(sample_every());
  out += ",\"spans\":[";
  bool first = true;
  for (const SpanRecord& s : spans) {
    if (!first) out += ',';
    first = false;
    out += "{\"trace\":";
    out += std::to_string(s.trace_id);
    out += ",\"span\":";
    out += std::to_string(s.span_id);
    out += ",\"parent\":";
    out += std::to_string(s.parent_id);
    out += ",\"stage\":\"";
    out += stage_name(s.stage);
    out += "\",\"thread\":";
    out += std::to_string(s.thread);
    out += ",\"start_ns\":";
    out += std::to_string(s.start_ns);
    out += ",\"end_ns\":";
    out += std::to_string(s.end_ns);
    out += ",\"tag\":";
    out += std::to_string(s.tag);
    out += '}';
  }
  out += "]}";
  return out;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(rings_mutex_);
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->mutex);
    ring->slots.clear();
    ring->next = 0;
  }
}

TraceContext& thread_trace_context() {
  thread_local TraceContext ctx;
  return ctx;
}

Span::Span(Stage stage, std::uint64_t tag) {
  TraceContext& ctx = thread_trace_context();
  if (ctx.trace_id == 0) return;
  Tracer& tracer = Tracer::instance();
  active_ = true;
  stage_ = stage;
  tag_ = tag;
  span_id_ = tracer.next_span_id();
  saved_parent_ = ctx.parent;
  ctx.parent = span_id_;
  start_ns_ = now_ns();
}

Span::~Span() {
  if (!active_) return;
  TraceContext& ctx = thread_trace_context();
  SpanRecord rec;
  rec.trace_id = ctx.trace_id;
  rec.span_id = span_id_;
  rec.parent_id = saved_parent_;
  rec.stage = stage_;
  rec.start_ns = start_ns_;
  rec.end_ns = now_ns();
  rec.tag = tag_;
  Tracer::instance().record(rec);
  ctx.parent = saved_parent_;
}

void record_span(std::uint64_t trace_id, std::uint32_t parent, Stage stage,
                 std::uint64_t start_ns, std::uint64_t end_ns,
                 std::uint64_t tag) {
  if (trace_id == 0) return;
  record_span_as(trace_id, Tracer::instance().next_span_id(), parent, stage,
                 start_ns, end_ns, tag);
}

void record_span_as(std::uint64_t trace_id, std::uint32_t span_id,
                    std::uint32_t parent, Stage stage, std::uint64_t start_ns,
                    std::uint64_t end_ns, std::uint64_t tag) {
  if (trace_id == 0) return;
  SpanRecord rec;
  rec.trace_id = trace_id;
  rec.span_id = span_id;
  rec.parent_id = parent;
  rec.stage = stage;
  rec.start_ns = start_ns;
  rec.end_ns = end_ns;
  rec.tag = tag;
  Tracer::instance().record(rec);
}

}  // namespace dnj::obs
