#include "obs/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace dnj::obs {

namespace {

/// Shortest text that round-trips the double; counters print as integers.
std::string format_value(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// JSON string escaping for names/label text (control chars, quote, slash).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string label_block(const Labels& labels) {
  if (labels.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    out += Registry::escape_label_value(value);
    out += '"';
  }
  out += '}';
  return out;
}

bool sample_less(const Sample& a, const Sample& b) {
  if (a.name != b.name) return a.name < b.name;
  return a.labels < b.labels;
}

}  // namespace

std::string Registry::escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string Registry::instrument_key(const std::string& name, const Labels& labels) {
  // '\x1f' cannot appear in metric names and is escaped out of label
  // values on render, so the key is collision-free.
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '\x1f';
    key += v;
  }
  return key;
}

Counter& Registry::counter(const std::string& name, const Labels& labels) {
  const std::string key = instrument_key(name, labels);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(key);
  if (it == counters_.end()) {
    it = counters_.emplace(key, std::make_unique<Counter>()).first;
    identities_.emplace(key, std::make_pair(name, labels));
  }
  return *it->second;
}

Gauge& Registry::gauge(const std::string& name, const Labels& labels) {
  const std::string key = instrument_key(name, labels);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(key);
  if (it == gauges_.end()) {
    it = gauges_.emplace(key, std::make_unique<Gauge>()).first;
    identities_.emplace(key, std::make_pair(name, labels));
  }
  return *it->second;
}

HistogramHandle& Registry::histogram(const std::string& name, const Labels& labels,
                                     double lo, double hi, int bins) {
  const std::string key = instrument_key(name, labels);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(key);
  if (it == histograms_.end()) {
    HistEntry entry;
    entry.name = name;
    entry.labels = labels;
    entry.handle = std::make_unique<HistogramHandle>(lo, hi, bins);
    it = histograms_.emplace(key, std::move(entry)).first;
  }
  return *it->second.handle;
}

std::uint64_t Registry::add_collector(Collector fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t id = ++next_collector_;
  collectors_.emplace(id, std::move(fn));
  return id;
}

void Registry::remove_collector(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  collectors_.erase(id);
}

std::vector<Sample> Registry::gather() const {
  std::vector<Sample> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [key, counter] : counters_) {
      const auto& [name, labels] = identities_.at(key);
      out.push_back({name, labels, static_cast<double>(counter->value()),
                     SampleKind::kCounter});
    }
    for (const auto& [key, gauge] : gauges_) {
      const auto& [name, labels] = identities_.at(key);
      out.push_back({name, labels, gauge->value(), SampleKind::kGauge});
    }
    for (const auto& [key, entry] : histograms_) {
      // Summary expansion: quantiles as labeled gauges, then _sum/_count/_max.
      for (const auto& [q, qname] :
           {std::make_pair(0.5, "0.5"), std::make_pair(0.95, "0.95"),
            std::make_pair(0.99, "0.99")}) {
        Labels labels = entry.labels;
        labels.emplace_back("quantile", qname);
        out.push_back({entry.name, std::move(labels), entry.handle->quantile(q),
                       SampleKind::kGauge});
      }
      out.push_back({entry.name + "_sum", entry.labels, entry.handle->sum(),
                     SampleKind::kCounter});
      out.push_back({entry.name + "_count", entry.labels,
                     static_cast<double>(entry.handle->count()),
                     SampleKind::kCounter});
      out.push_back({entry.name + "_max", entry.labels, entry.handle->max(),
                     SampleKind::kGauge});
    }
    for (const auto& [id, collector] : collectors_) {
      (void)id;
      collector(out);
    }
  }
  std::stable_sort(out.begin(), out.end(), sample_less);
  return out;
}

std::string Registry::render_prometheus() const {
  const std::vector<Sample> samples = gather();
  std::string out;
  out.reserve(samples.size() * 64);
  std::string last_name;
  for (const Sample& s : samples) {
    if (s.name != last_name) {
      last_name = s.name;
      out += "# TYPE ";
      out += s.name;
      out += s.kind == SampleKind::kCounter ? " counter\n" : " gauge\n";
    }
    out += s.name;
    out += label_block(s.labels);
    out += ' ';
    out += format_value(s.value);
    out += '\n';
  }
  return out;
}

std::string Registry::render_json() const {
  const std::vector<Sample> samples = gather();
  std::string out;
  out.reserve(samples.size() * 80 + 32);
  out += "{\"metrics\":[";
  bool first = true;
  for (const Sample& s : samples) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    out += json_escape(s.name);
    out += "\",\"kind\":\"";
    out += s.kind == SampleKind::kCounter ? "counter" : "gauge";
    out += "\",\"labels\":{";
    bool lfirst = true;
    for (const auto& [k, v] : s.labels) {
      if (!lfirst) out += ',';
      lfirst = false;
      out += '"';
      out += json_escape(k);
      out += "\":\"";
      out += json_escape(v);
      out += '"';
    }
    out += "},\"value\":";
    out += format_value(s.value);
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace dnj::obs
