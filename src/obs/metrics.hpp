#pragma once

/// Unified metrics plane.
///
/// A Registry owns typed instruments (Counter / Gauge / HistogramHandle)
/// registered by name + labels, plus removable *collector* callbacks for
/// subsystems that keep their counters elsewhere (the serve layer's
/// merged WorkerStats, the net server's loop-thread atomics). gather()
/// combines both into one deterministic sample list, which the two
/// exporters (Prometheus text, JSON) render for the wire `stats` op,
/// api::Service::metrics_text(), and the C ABI.
///
/// Thread safety: instrument lookup/creation and collector registration
/// take the registry mutex; Counter::inc and Gauge updates are plain
/// atomics (safe from any thread, no registry lock); HistogramHandle has
/// its own mutex. Instruments have stable addresses for the registry's
/// lifetime, so callers cache `Counter&` once and update lock-free.

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "stats/histogram.hpp"

namespace dnj::obs {

using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing counter.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time value; set() and add() from any thread.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Mutex-guarded wrapper over stats::Histogram that also tracks the exact
/// sum and max (the linear bins clamp, so the max would otherwise
/// saturate at `hi`). Renders as a Prometheus summary.
class HistogramHandle {
 public:
  HistogramHandle(double lo, double hi, int bins) : hist_(lo, hi, bins) {}

  void observe(double v) {
    std::lock_guard<std::mutex> lock(mutex_);
    hist_.add(v);
    sum_ += v;
    if (v > max_) max_ = v;
  }

  /// Merges a compatible histogram (same lo/hi/bins). Geometry mismatch
  /// throws std::invalid_argument and leaves this handle unchanged.
  /// Merged-in sum/max are bin-center estimates — stats::Histogram keeps
  /// counts, not values — while directly observed samples stay exact.
  void merge_from(const stats::Histogram& other) {
    std::lock_guard<std::mutex> lock(mutex_);
    hist_.merge(other);  // throws on geometry mismatch before any mutation
    for (int b = 0; b < other.bins(); ++b) {
      const std::uint64_t n = other.count(b);
      if (n == 0) continue;
      sum_ += static_cast<double>(n) * other.bin_center(b);
      const double right = other.lo() + (other.hi() - other.lo()) *
                                            (b + 1) / other.bins();
      if (right > max_) max_ = right;
    }
  }

  stats::Histogram snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return hist_;
  }
  std::uint64_t count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return hist_.total();
  }
  double sum() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return sum_;
  }
  double max() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return max_;
  }
  double quantile(double p) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return hist_.quantile(p);
  }

 private:
  mutable std::mutex mutex_;
  stats::Histogram hist_;
  double sum_ = 0.0;
  double max_ = 0.0;
};

enum class SampleKind : std::uint8_t { kCounter, kGauge };

/// One exported time-series point. Collectors append these; owned
/// instruments are converted to them inside gather().
struct Sample {
  std::string name;
  Labels labels;
  double value = 0.0;
  SampleKind kind = SampleKind::kGauge;
};

class Registry {
 public:
  /// Returns the instrument registered under (name, labels), creating it
  /// on first use. References stay valid for the registry's lifetime.
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  HistogramHandle& histogram(const std::string& name, const Labels& labels,
                             double lo, double hi, int bins);

  /// Collector callbacks run inside gather() under the registry mutex;
  /// they must not call back into this registry. remove_collector blocks
  /// until any in-flight gather() finishes, so a collector that captures
  /// `this` of some object is safe to remove in that object's destructor.
  using Collector = std::function<void(std::vector<Sample>&)>;
  std::uint64_t add_collector(Collector fn);
  void remove_collector(std::uint64_t id);

  /// All samples — owned instruments plus collector output — sorted by
  /// (name, labels) so renders are deterministic. Histograms expand into
  /// quantile/sum/count/max series here.
  std::vector<Sample> gather() const;

  /// Prometheus text exposition (with # TYPE lines, escaped label values).
  std::string render_prometheus() const;

  /// The same samples as a JSON array of {name, labels, value} objects.
  std::string render_json() const;

  /// Prometheus label-value escaping: backslash, double-quote, newline.
  static std::string escape_label_value(const std::string& value);

 private:
  struct HistEntry {
    std::string name;
    Labels labels;
    std::unique_ptr<HistogramHandle> handle;
  };

  static std::string instrument_key(const std::string& name, const Labels& labels);

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, HistEntry> histograms_;
  // Key -> (name, labels) so gather() can reconstruct identities.
  std::map<std::string, std::pair<std::string, Labels>> identities_;
  std::map<std::uint64_t, Collector> collectors_;
  std::uint64_t next_collector_ = 0;
};

}  // namespace dnj::obs
