#pragma once

/// Span tracing for the serving stack.
///
/// One process-wide Tracer owns a set of per-thread ring buffers of
/// SpanRecord entries. Requests are sampled at trace creation time
/// (`DNJ_TRACE_SAMPLE`: 0 = off, 1 = every request, N = one in N by
/// trace-id hash); an unsampled request carries trace_id 0 and every Span
/// on its path collapses to a thread-local load and a branch. Sampled
/// requests record closed spans into the current thread's ring — each ring
/// is guarded by its own mutex that only the owning thread and dump()
/// ever touch, so the hot path is an uncontended lock.
///
/// Determinism contract: tracing reads clocks and writes rings, but it
/// never feeds back into scheduling or payload bytes. The serve and net
/// byte-identity suites run with sampling forced to 1 to pin this.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dnj::obs {

/// Pipeline stages a span can label. Codec stages are recorded per
/// component batch; net stages by the event loop; queue/batch stages by
/// the serve workers.
enum class Stage : std::uint8_t {
  kRequest = 0,        // whole-request root span
  kNetRead,            // socket read burst that completed the frame
  kNetParse,           // frame decode + request validation
  kNetWrite,           // response serialization hand-off to the socket
  kQueueWait,          // enqueue -> picked up by a worker
  kBatch,              // worker-side batch execution (tag = batch size)
  kCacheProbe,         // result-cache digest + lookup
  kEncodeTile,         // color convert + tile into block planes
  kEncodeDct,          // forward DCT batch
  kEncodeQuant,        // quantize + zig-zag batch
  kEncodeEntropy,      // Huffman emit (tag = total blocks)
  kDecodeEntropy,      // header parse + Huffman decode (tag = scan bytes)
  kDecodePixels,       // dequantize + IDCT + untile + color
  kInfer,              // NN forward pass
  kJobAnalyze,         // design job: frequency analysis (tag = images)
  kJobAnneal,          // design job: SA segment (tag = iterations run)
  kJobRateSearch,      // design job: rate search (tag = encode calls)
  kJobLadder,          // design job: ladder registration (tag = rungs)
};
inline constexpr int kNumStages = 18;

const char* stage_name(Stage stage);

struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint32_t span_id = 0;
  std::uint32_t parent_id = 0;  // 0 = root span of its trace
  Stage stage = Stage::kRequest;
  std::uint32_t thread = 0;  // ring index, not an OS tid (stable, compact)
  std::uint64_t start_ns = 0;  // steady-clock nanoseconds (monotonic)
  std::uint64_t end_ns = 0;
  std::uint64_t tag = 0;  // stage-specific payload (batch size, bytes, ...)
};

/// Monotonic nanosecond timestamp shared by every span producer.
std::uint64_t now_ns();

class Tracer {
 public:
  /// Process-wide instance. Constructed on first use; reads
  /// DNJ_TRACE_SAMPLE and DNJ_TRACE_RING once at that point. Never
  /// destroyed, so rings stay valid for threads that outlive main().
  static Tracer& instance();

  /// 0 = tracing off, 1 = sample every trace, N = one-in-N by trace-id
  /// hash. Overrides the environment knob (tests and benches use this).
  void set_sample_every(std::uint32_t n) {
    sample_every_.store(n, std::memory_order_relaxed);
  }
  std::uint32_t sample_every() const {
    return sample_every_.load(std::memory_order_relaxed);
  }
  bool enabled() const { return sample_every() != 0; }

  /// Allocates a trace id and applies the sampling decision: a nonzero
  /// return means "record this trace"; 0 means the request is unsampled
  /// and every span on its path is a no-op.
  std::uint64_t start_trace();

  /// Span ids are process-unique so cross-thread parents stay unambiguous.
  std::uint32_t next_span_id() {
    return next_span_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Appends a closed span to the calling thread's ring (no-op when
  /// rec.trace_id is 0). Oldest records are overwritten on wrap.
  void record(const SpanRecord& rec);

  /// Snapshot of every ring, ordered by (trace_id, start_ns, span_id).
  std::vector<SpanRecord> dump() const;

  /// The dump as a self-describing JSON document (the wire / C ABI
  /// surface; tools/trace2chrome.py consumes this).
  std::string dump_json() const;

  /// Drops all recorded spans (rings stay allocated).
  void clear();

  /// Capacity for rings created after the call (existing rings keep
  /// theirs). Clamped to [64, 1M] records.
  void set_ring_capacity(std::size_t cap);
  std::size_t ring_capacity() const {
    return ring_capacity_.load(std::memory_order_relaxed);
  }

 private:
  struct Ring {
    explicit Ring(std::uint32_t idx, std::size_t cap) : index(idx) {
      slots.reserve(cap);
      capacity = cap;
    }
    mutable std::mutex mutex;
    std::vector<SpanRecord> slots;  // grows to capacity, then wraps
    std::size_t capacity = 0;
    std::size_t next = 0;  // wrap cursor once slots.size() == capacity
    std::uint32_t index = 0;
  };

  Tracer();
  Ring& thread_ring();

  std::atomic<std::uint32_t> sample_every_{0};
  std::atomic<std::uint64_t> next_trace_{0};
  std::atomic<std::uint32_t> next_span_{0};
  std::atomic<std::size_t> ring_capacity_{4096};
  mutable std::mutex rings_mutex_;
  std::vector<std::unique_ptr<Ring>> rings_;
};

/// Thread-local trace context: which trace (if any) the current thread is
/// working for and the span that new child spans should parent to.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint32_t parent = 0;
};
TraceContext& thread_trace_context();

/// RAII install/restore of the thread's trace context. Workers install
/// the job's trace before running it so codec-internal spans attach to
/// the right parent without plumbing ids through every signature.
class TraceScope {
 public:
  TraceScope(std::uint64_t trace_id, std::uint32_t parent) {
    TraceContext& ctx = thread_trace_context();
    saved_ = ctx;
    ctx.trace_id = trace_id;
    ctx.parent = parent;
  }
  ~TraceScope() { thread_trace_context() = saved_; }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceContext saved_;
};

/// RAII span over the enclosing scope. Inactive (one TL load + branch)
/// when the thread has no sampled trace installed.
class Span {
 public:
  explicit Span(Stage stage, std::uint64_t tag = 0);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return active_; }
  std::uint32_t id() const { return span_id_; }
  void set_tag(std::uint64_t tag) { tag_ = tag; }

 private:
  std::uint64_t start_ns_ = 0;
  std::uint64_t tag_ = 0;
  std::uint32_t span_id_ = 0;
  std::uint32_t saved_parent_ = 0;
  Stage stage_ = Stage::kRequest;
  bool active_ = false;
};

/// Records a span with explicit endpoints — for intervals that start and
/// end on different threads (queue wait, whole-request roots). No-op when
/// trace_id is 0.
void record_span(std::uint64_t trace_id, std::uint32_t parent, Stage stage,
                 std::uint64_t start_ns, std::uint64_t end_ns,
                 std::uint64_t tag = 0);

/// Same, with a caller-allocated span id — for roots whose id was handed
/// out at open time (children already parent to it) and whose record is
/// written at close. No-op when trace_id is 0.
void record_span_as(std::uint64_t trace_id, std::uint32_t span_id,
                    std::uint32_t parent, Stage stage, std::uint64_t start_ns,
                    std::uint64_t end_ns, std::uint64_t tag = 0);

}  // namespace dnj::obs
