// Async façade implementation: a pimpl over serve::TranscodeService that
// translates between the public types/Status taxonomy and the serving
// layer's Request/Response vocabulary.
#include "api/service.hpp"

#include <algorithm>
#include <future>
#include <utility>

#include "api/convert.hpp"
#include "jobs/job_manager.hpp"
#include "net/server.hpp"
#include "obs/trace.hpp"
#include "serve/service.hpp"

namespace dnj::api {

namespace {

Status status_from_serve(const serve::Response& r) {
  switch (r.status) {
    case serve::Status::kOk:
      return Status::success();
    case serve::Status::kRejected:
      return {StatusCode::kRejected, r.error};
    case serve::Status::kShutdown:
      return {StatusCode::kShutdown, r.error};
    case serve::Status::kError:
      break;
  }
  // The serve layer flattens every handler failure to kError; the façade
  // can do no better than kInternal here — callers wanting the finer
  // kInvalidArgument/kDecodeError split get it from the synchronous Codec
  // (and from this façade's own submission-time validation).
  return {StatusCode::kInternal, r.error};
}

ServiceReply reply_from_response(serve::Response&& r) {
  ServiceReply reply;
  reply.status = status_from_serve(r);
  reply.bytes = std::move(r.bytes);
  reply.image.width = r.image.width();
  reply.image.height = r.image.height();
  reply.image.channels = r.image.channels();
  reply.image.pixels = std::move(r.image.data());
  reply.cache_hit = r.cache_hit;
  reply.batch_size = r.batch_size;
  reply.queue_us = r.queue_us;
  reply.service_us = r.service_us;
  return reply;
}

}  // namespace

/// Either an in-flight future or an immediately-fulfilled reply (the
/// submission-time validation path never reaches the queue).
struct Pending::State {
  std::future<serve::Response> future;
  bool immediate = false;
  ServiceReply ready;
};

Pending::Pending() = default;
Pending::Pending(std::unique_ptr<State> state) : state_(std::move(state)) {}
Pending::~Pending() = default;
Pending::Pending(Pending&&) noexcept = default;
Pending& Pending::operator=(Pending&&) noexcept = default;

bool Pending::valid() const {
  return state_ != nullptr && (state_->immediate || state_->future.valid());
}

ServiceReply Pending::get() {
  if (!valid()) {
    ServiceReply r;
    r.status = {StatusCode::kInternal, "Pending::get() on an empty or consumed handle"};
    return r;
  }
  std::unique_ptr<State> state = std::move(state_);
  if (state->immediate) return std::move(state->ready);
  return reply_from_response(state->future.get());
}

struct Service::Impl {
  explicit Impl(serve::ServiceConfig cfg) : service(std::move(cfg)) {}
  serve::TranscodeService service;
  // Design-job manager behind the wire's v3 job ops. Declared after
  // `service` (it publishes into the service's registry and metrics plane)
  // and before `server` so teardown order is server -> jobs -> service.
  std::unique_ptr<jobs::JobManager> jobs;
  std::unique_ptr<net::Server> server;
};

Service::Service(const ServiceOptions& options) {
  serve::ServiceConfig cfg;
  cfg.workers = options.workers();
  cfg.queue_capacity = options.queue_capacity();
  cfg.admission = options.reject_when_full() ? serve::AdmissionPolicy::kReject
                                             : serve::AdmissionPolicy::kBlock;
  cfg.max_batch = options.max_batch();
  cfg.cache_capacity = options.result_cache();
  cfg.cache_max_bytes = options.cache_max_bytes();
  cfg.tenant_quota_bytes = options.tenant_quota_bytes();
  cfg.table_cache_capacity = options.table_cache();
  cfg.shard_by_digest = options.shard_by_digest();
  cfg.steal = options.steal();
  if (options.registry().has_value())
    cfg.registry = detail::RegistryAccess::impl(*options.registry());
  impl_ = std::make_unique<Impl>(std::move(cfg));
  if (options.design_workers() > 0) {
    jobs::JobManagerConfig job_cfg;
    job_cfg.workers = options.design_workers();
    job_cfg.queue_capacity = options.design_queue();
    job_cfg.checkpoint_interval = options.design_checkpoint_interval();
    // Share the serving registry (designed tenants become servable
    // immediately) and the metrics plane (one scrape answers for all
    // layers: serve_*, net_*, jobs_*).
    job_cfg.registry = impl_->service.registry();
    job_cfg.metrics = impl_->service.metrics_registry();
    impl_->jobs = std::make_unique<jobs::JobManager>(std::move(job_cfg));
  }
}

Service::~Service() = default;
Service::Service(Service&&) noexcept = default;
Service& Service::operator=(Service&&) noexcept = default;

// Pending construction, written as Service members so they can reach
// Pending's private state through the friend declaration.
Pending Service::immediate(Status status) {
  auto state = std::make_unique<Pending::State>();
  state->immediate = true;
  state->ready.status = std::move(status);
  return Pending(std::move(state));
}

Pending Service::encode(ImageView image, const EncodeOptions& options) {
  if (Status s = detail::validate_image(image); !s.ok())
    return immediate(std::move(s));
  if (Status s = detail::validate_options(options); !s.ok())
    return immediate(std::move(s));
  serve::Request req;
  req.kind = serve::RequestKind::kEncode;
  req.config = detail::to_config(options);
  // The request must own its input: it outlives the caller's buffer in
  // the submission queue. One copy, no zero-fill.
  req.image = image::Image(
      image.width, image.height, image.channels,
      std::vector<std::uint8_t>(image.pixels, image.pixels + image.byte_size()));
  auto state = std::make_unique<Pending::State>();
  state->future = impl_->service.submit(std::move(req));
  return Pending(std::move(state));
}

Pending Service::decode(ByteSpan stream) {
  if (Status s = detail::validate_stream(stream); !s.ok())
    return immediate(std::move(s));
  serve::Request req;
  req.kind = serve::RequestKind::kDecode;
  req.bytes.assign(stream.data, stream.data + stream.size);
  auto state = std::make_unique<Pending::State>();
  state->future = impl_->service.submit(std::move(req));
  return Pending(std::move(state));
}

Pending Service::transcode(ByteSpan stream, const EncodeOptions& options) {
  if (Status s = detail::validate_stream(stream); !s.ok())
    return immediate(std::move(s));
  if (Status s = detail::validate_options(options); !s.ok())
    return immediate(std::move(s));
  serve::Request req;
  req.kind = serve::RequestKind::kTranscode;
  req.bytes.assign(stream.data, stream.data + stream.size);
  req.config = detail::to_config(options);
  auto state = std::make_unique<Pending::State>();
  state->future = impl_->service.submit(std::move(req));
  return Pending(std::move(state));
}

Pending Service::deepn_encode(ImageView image, const std::string& tenant,
                              int quality) {
  if (Status s = detail::validate_image(image); !s.ok())
    return immediate(std::move(s));
  if (tenant.empty())
    return immediate({StatusCode::kInvalidArgument, "tenant name must not be empty"});
  if (quality < 1 || quality > 100)
    return immediate({StatusCode::kInvalidArgument, "quality must be in [1, 100]"});
  serve::Request req;
  req.kind = serve::RequestKind::kDeepnEncode;
  req.tenant = tenant;
  req.quality = quality;
  req.image = image::Image(
      image.width, image.height, image.channels,
      std::vector<std::uint8_t>(image.pixels, image.pixels + image.byte_size()));
  auto state = std::make_unique<Pending::State>();
  state->future = impl_->service.submit(std::move(req));
  return Pending(std::move(state));
}

Registry Service::registry() const {
  return detail::RegistryAccess::wrap(impl_->service.registry());
}

ServiceMetrics Service::metrics() const {
  const serve::ServiceStats s = impl_->service.stats();
  ServiceMetrics m;
  m.submitted = s.submitted;
  m.completed = s.completed;
  m.rejected = s.rejected;
  m.errors = s.errors;
  m.cache_hits = s.cache_hits;
  m.cache_bytes = s.cache_bytes;
  m.cache_quota_evictions = s.cache_quota_evictions;
  m.table_cache_hits = s.table_cache_hits;
  m.batches = s.batches;
  m.max_batch = s.max_batch;
  m.shard_count = s.shard_count;
  m.steals = s.steals;
  m.total_p50_us = s.total.p50_us;
  m.total_p95_us = s.total.p95_us;
  m.total_p99_us = s.total.p99_us;
  m.tenants.reserve(s.tenants.size());
  for (const serve::TenantStats& t : s.tenants) {
    TenantMetrics tm;
    tm.name = t.name;
    tm.requests = t.requests;
    tm.completed = t.completed;
    tm.errors = t.errors;
    tm.cache_hits = t.cache_hits;
    tm.table_cache_hits = t.table_cache_hits;
    tm.service_p50_us = t.service_time.p50_us;
    tm.service_p99_us = t.service_time.p99_us;
    m.tenants.push_back(std::move(tm));
  }
  return m;
}

std::string Service::metrics_text() const {
  return impl_->service.metrics_registry()->render_prometheus();
}

std::string Service::dump_trace() const {
  return obs::Tracer::instance().dump_json();
}

Status Service::listen(const ListenOptions& options) {
  if (impl_->server && impl_->server->running()) {
    return {StatusCode::kInternal, "service is already listening"};
  }
  net::ServerConfig cfg;
  cfg.host = options.host();
  cfg.port = options.port();
  cfg.max_connections = options.max_connections();
  cfg.idle_timeout_ms = options.idle_timeout_ms();
  cfg.jobs = impl_->jobs.get();
  auto server = std::make_unique<net::Server>(impl_->service, std::move(cfg));
  std::string error;
  if (!server->start(&error)) {
    return {StatusCode::kInternal, "listen failed: " + error};
  }
  impl_->server = std::move(server);
  return Status::success();
}

int Service::listen_port() const {
  return impl_->server ? impl_->server->port() : -1;
}

void Service::stop_listening() {
  if (impl_->server) {
    impl_->server->stop();
    impl_->server.reset();
  }
}

void Service::shutdown() {
  stop_listening();
  if (impl_->jobs) impl_->jobs->shutdown();
  impl_->service.shutdown();
}

}  // namespace dnj::api
