// The synchronous public façade: Session handles plus Codec / TableDesigner
// views.
//
// A Session is the root handle an embedder holds; its views expose the
// library's layers behind the Status/Result error model:
//
//   Session session;
//   auto stream = session.codec().encode(view, EncodeOptions().quality(90));
//   if (!stream.ok()) { /* stream.status().code() is typed */ }
//
// Threading: a Session binds codec operations to the *calling thread's*
// codec context (per-thread scratch arenas + cached Huffman/reciprocal/
// quality tables — the same mechanism the parallel dataset loops and the
// serving layer's workers use), so one Session may be shared across
// threads for Codec operations: each thread transparently gets its own
// warm arenas, and results never depend on context state. TableDesigner
// accumulates state and is NOT thread-safe; use one per designing thread.
//
// Every entry point catches internal exceptions at the boundary and maps
// them to typed Status codes; nothing throws out of this header's classes
// (allocation failure aside). Outputs are bit-identical to the direct
// internal calls (jpeg::encode / jpeg::decode / core::transcode_bytes) —
// pinned by tests/test_api.cpp — so code migrating onto the façade
// changes no bytes.
//
// Standard-library-only header: safe for embedders, and compiled
// standalone under -Wall -Werror by the header self-containment CI gate.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "api/status.hpp"
#include "api/types.hpp"

namespace dnj::api {

class Codec;
class TableDesigner;

/// Version of the C++ façade surface, bumped on incompatible change.
/// (The C ABI is versioned separately: dnj_c.h / dnj_abi_version().)
inline constexpr std::uint32_t kApiVersionMajor = 1;
inline constexpr std::uint32_t kApiVersionMinor = 4;  ///< 1.4: async design jobs (submit/poll/cancel)
                                                      ///  1.3: metrics_text + trace dump
                                                      ///  1.2: Registry + deepn_encode + dnj_registry_*

/// (major << 16) | minor of the built library — compare against the
/// header constants to detect a header/library skew.
std::uint32_t api_version();

class Session {
 public:
  Session();
  ~Session();
  Session(Session&&) noexcept;
  Session& operator=(Session&&) noexcept;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Codec view over this session. The view borrows the Session and must
  /// not outlive it.
  Codec codec();

  /// A fresh, empty table designer (independent of other designers).
  TableDesigner designer();

 private:
  friend class Codec;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Synchronous codec entry points. Copyable view; borrows its Session.
class Codec {
 public:
  /// Encodes interleaved 8-bit pixels to a complete JFIF stream. The view
  /// is read in place — no staging copy of the pixels.
  Result<std::vector<std::uint8_t>> encode(ImageView image,
                                           const EncodeOptions& options = {}) const;

  /// Decodes a JFIF stream into owned pixels.
  Result<DecodedImage> decode(ByteSpan stream) const;

  /// Decode + re-encode under `options` in one call, byte-identical to
  /// decode followed by encode of the decoded pixels.
  Result<std::vector<std::uint8_t>> transcode(ByteSpan stream,
                                              const EncodeOptions& options = {}) const;

  /// Parses header facts without decoding pixel data.
  Result<StreamInfo> inspect(ByteSpan stream) const;

 private:
  friend class Session;
  explicit Codec(Session* session) : session_(session) {}
  Session* session_;
};

/// Accumulates a representative image sample, then runs the DeepN-JPEG
/// design flow (frequency analysis -> band segmentation -> PLM) over it.
/// Move-only; NOT thread-safe.
class TableDesigner {
 public:
  TableDesigner();
  ~TableDesigner();
  TableDesigner(TableDesigner&&) noexcept;
  TableDesigner& operator=(TableDesigner&&) noexcept;
  TableDesigner(const TableDesigner&) = delete;
  TableDesigner& operator=(const TableDesigner&) = delete;

  /// Adds one image to the design sample (pixels are copied — the design
  /// flow owns its sample). `label` is the image's class: Algorithm 1
  /// samples every k-th image *per class*, so pass real labels when you
  /// have them and 0 otherwise.
  Status add(ImageView image, int label = 0);

  std::size_t image_count() const;

  /// Runs the design flow over everything added so far.
  Result<TableDesign> design(const DesignOptions& options = {}) const;

  // Async design jobs (1.4). submit() snapshots the accumulated sample
  // into a rate-controlled, checkpointable job on the designer's private
  // single-worker job manager — design() stays available, and more images
  // may be added for a later submit. Job ids are designer-local. A full
  // queue refuses with kRejected; unknown ids are typed kInvalidArgument.

  /// Queues a design job over the images added so far; returns its id.
  Result<std::uint64_t> submit(const DesignJobOptions& options = {});

  /// Snapshot of a job's state/progress (safe while it runs).
  Result<DesignJobStatus> poll(std::uint64_t job_id) const;

  /// Requests cancellation (idempotent; running jobs stop at the next
  /// checkpoint boundary and keep their latest checkpoint).
  Status cancel(std::uint64_t job_id);

  /// Result of a completed or paused job: the annealed table, the
  /// rate-search answer, the registered ladder, and the resume checkpoint.
  /// kRejected while the job is still queued/running.
  Result<DesignJobResult> fetch(std::uint64_t job_id) const;

  /// Blocks until the job leaves kQueued/kRunning, then returns its status.
  Result<DesignJobStatus> wait(std::uint64_t job_id) const;

 private:
  friend class Session;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace dnj::api
