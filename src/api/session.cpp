// Implementation of the synchronous façade (Session / Codec /
// TableDesigner) plus the shared conversion/validation glue in
// api/convert.hpp. This file is the exception boundary: nothing below it
// throws out of a public entry point.
#include "api/session.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "api/convert.hpp"
#include "core/deepnjpeg.hpp"
#include "core/transcode.hpp"
#include "jobs/job_manager.hpp"
#include "jpeg/decoder.hpp"
#include "jpeg/encoder.hpp"
#include "serve/digest.hpp"

namespace dnj::api {

namespace detail {

jpeg::EncoderConfig to_config(const EncodeOptions& options) {
  jpeg::EncoderConfig cfg;
  cfg.quality = options.quality();
  cfg.use_custom_tables = options.uses_custom_tables();
  if (cfg.use_custom_tables) {
    cfg.luma_table = jpeg::QuantTable(options.luma_table());
    cfg.chroma_table = jpeg::QuantTable(options.chroma_table());
  }
  cfg.subsampling =
      options.chroma_420() ? jpeg::Subsampling::k420 : jpeg::Subsampling::k444;
  cfg.optimize_huffman = options.optimize_huffman();
  cfg.restart_interval = options.restart_interval();
  cfg.comment = options.comment();
  return cfg;
}

EncodeOptions from_config(const jpeg::EncoderConfig& config) {
  EncodeOptions options;
  options.quality(config.quality);
  if (config.use_custom_tables)
    options.custom_tables(config.luma_table.natural(), config.chroma_table.natural());
  options.chroma_420(config.subsampling == jpeg::Subsampling::k420);
  options.optimize_huffman(config.optimize_huffman);
  options.restart_interval(config.restart_interval);
  options.comment(config.comment);
  return options;
}

Status validate_image(ImageView image) {
  if (image.pixels == nullptr)
    return {StatusCode::kInvalidArgument, "image view has null pixels"};
  if (image.width <= 0 || image.height <= 0)
    return {StatusCode::kInvalidArgument, "image dimensions must be positive"};
  if (image.width > kMaxImageDimension || image.height > kMaxImageDimension)
    return {StatusCode::kInvalidArgument,
            "image dimensions exceed the baseline JPEG maximum of 65535"};
  if (image.channels != 1 && image.channels != 3)
    return {StatusCode::kInvalidArgument, "image channels must be 1 or 3"};
  return Status::success();
}

Status validate_stream(ByteSpan stream) {
  if (stream.data == nullptr || stream.size == 0)
    return {StatusCode::kInvalidArgument, "byte stream is null or empty"};
  return Status::success();
}

Status validate_options(const EncodeOptions& options) {
  if (!options.uses_custom_tables() &&
      (options.quality() < 1 || options.quality() > 100))
    return {StatusCode::kInvalidArgument, "quality must be in [1, 100]"};
  if (options.restart_interval() < 0 || options.restart_interval() > 65535)
    return {StatusCode::kInvalidArgument, "restart interval must be in [0, 65535]"};
  return Status::success();
}

Status map_exception(StatusCode runtime_code) {
  try {
    throw;
  } catch (const std::invalid_argument& e) {
    return {StatusCode::kInvalidArgument, e.what()};
  } catch (const std::out_of_range& e) {
    return {StatusCode::kInvalidArgument, e.what()};
  } catch (const std::runtime_error& e) {
    return {runtime_code, e.what()};
  } catch (const std::exception& e) {
    return {StatusCode::kInternal, e.what()};
  } catch (...) {
    return {StatusCode::kInternal, "non-standard exception"};
  }
}

}  // namespace detail

// The public job-state enum mirrors the job layer's value-for-value, so
// the conversion below is a cast, never a table.
static_assert(static_cast<int>(DesignJobState::kQueued) ==
              static_cast<int>(jobs::JobState::kQueued));
static_assert(static_cast<int>(DesignJobState::kRunning) ==
              static_cast<int>(jobs::JobState::kRunning));
static_assert(static_cast<int>(DesignJobState::kPaused) ==
              static_cast<int>(jobs::JobState::kPaused));
static_assert(static_cast<int>(DesignJobState::kCompleted) ==
              static_cast<int>(jobs::JobState::kCompleted));
static_assert(static_cast<int>(DesignJobState::kFailed) ==
              static_cast<int>(jobs::JobState::kFailed));
static_assert(static_cast<int>(DesignJobState::kCancelled) ==
              static_cast<int>(jobs::JobState::kCancelled));

const char* design_job_state_name(DesignJobState state) {
  return jobs::job_state_name(static_cast<jobs::JobState>(state));
}

namespace {

/// JobRc -> the API taxonomy (the mapping documented in job_manager.hpp).
Status status_from_job_rc(jobs::JobRc rc, std::uint64_t job_id) {
  const std::string id = std::to_string(job_id);
  switch (rc) {
    case jobs::JobRc::kOk: return Status::success();
    case jobs::JobRc::kNotFound:
      return {StatusCode::kInvalidArgument, "unknown job id " + id};
    case jobs::JobRc::kDuplicate:
      return {StatusCode::kInvalidArgument, "job id " + id + " already exists"};
    case jobs::JobRc::kInvalid:
      return {StatusCode::kInvalidArgument, "invalid job spec"};
    case jobs::JobRc::kQueueFull: return {StatusCode::kRejected, "job queue full"};
    case jobs::JobRc::kNotFinished:
      return {StatusCode::kRejected, "job " + id + " not finished"};
    case jobs::JobRc::kShutdown:
      return {StatusCode::kShutdown, "job manager draining"};
  }
  return {StatusCode::kInternal, "unexpected job return code"};
}

DesignJobStatus to_api_status(const jobs::JobStatus& s) {
  DesignJobStatus out;
  out.id = s.id;
  out.state = static_cast<DesignJobState>(s.state);
  out.phase = jobs::job_phase_name(s.phase);
  out.progress = s.progress;
  out.sa_iteration = s.sa_iteration;
  out.sa_total = s.sa_total;
  out.target_bytes = s.target_bytes;
  out.achieved_bytes = s.achieved_bytes;
  out.rate_error = s.rate_error;
  out.checkpoints = s.checkpoints;
  out.rungs = s.rungs;
  out.error = s.error;
  return out;
}

DesignJobResult to_api_result(jobs::JobResult&& r) {
  DesignJobResult out;
  out.id = r.id;
  out.table = r.table.natural();
  out.quality = r.quality;
  out.target_bytes = r.target_bytes;
  out.achieved_bytes = r.achieved_bytes;
  out.initial_cost = r.initial_cost;
  out.best_cost = r.best_cost;
  out.accepted_moves = r.accepted_moves;
  out.sa_iterations = r.sa_iterations;
  out.rungs.reserve(r.rungs.size());
  for (jobs::LadderRung& rung : r.rungs) {
    DesignLadderRung api_rung;
    api_rung.name = std::move(rung.name);
    api_rung.version = rung.version;
    api_rung.quality = rung.quality;
    api_rung.target_bytes = rung.target_bytes;
    api_rung.achieved_bytes = rung.achieved_bytes;
    out.rungs.push_back(std::move(api_rung));
  }
  out.checkpoint = std::move(r.checkpoint);
  return out;
}

}  // namespace

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kDecodeError: return "decode_error";
    case StatusCode::kRejected: return "rejected";
    case StatusCode::kShutdown: return "shutdown";
    case StatusCode::kInternal: return "internal";
  }
  return "unknown";
}

std::uint32_t api_version() { return (kApiVersionMajor << 16) | kApiVersionMinor; }

std::uint64_t EncodeOptions::digest() const {
  // The canonical serialization is owned by the codec layer
  // (jpeg::append_config_bytes); hashing it here is what makes this digest
  // equal to the serve layer's config digest for the same options.
  return serve::digest_config(detail::to_config(*this));
}

// Session state is deliberately empty today: codec operations bind to the
// calling thread's codec context (see the header contract), so the handle
// carries identity and future configuration, not arenas. Kept as a pimpl
// so state can grow without an ABI-visible change.
struct Session::Impl {};

Session::Session() : impl_(std::make_unique<Impl>()) {}
Session::~Session() = default;
Session::Session(Session&&) noexcept = default;
Session& Session::operator=(Session&&) noexcept = default;

Codec Session::codec() { return Codec(this); }

TableDesigner Session::designer() { return TableDesigner(); }

Result<std::vector<std::uint8_t>> Codec::encode(ImageView image,
                                                const EncodeOptions& options) const {
  if (Status s = detail::validate_image(image); !s.ok()) return s;
  if (Status s = detail::validate_options(options); !s.ok()) return s;
  try {
    return jpeg::encode(image, detail::to_config(options),
                        jpeg::pipeline::thread_codec_context());
  } catch (...) {
    return detail::map_exception(StatusCode::kInternal);
  }
}

Result<DecodedImage> Codec::decode(ByteSpan stream) const {
  if (Status s = detail::validate_stream(stream); !s.ok()) return s;
  try {
    image::Image img = jpeg::decode(stream, jpeg::pipeline::thread_codec_context());
    DecodedImage out;
    out.width = img.width();
    out.height = img.height();
    out.channels = img.channels();
    out.pixels = std::move(img.data());
    return out;
  } catch (...) {
    return detail::map_exception(StatusCode::kDecodeError);
  }
}

Result<std::vector<std::uint8_t>> Codec::transcode(ByteSpan stream,
                                                   const EncodeOptions& options) const {
  if (Status s = detail::validate_stream(stream); !s.ok()) return s;
  if (Status s = detail::validate_options(options); !s.ok()) return s;
  try {
    return core::transcode_bytes(stream, detail::to_config(options),
                                 jpeg::pipeline::thread_codec_context());
  } catch (...) {
    // The decode leg is the overwhelmingly likely thrower; encode-side
    // argument errors still surface as kInvalidArgument via the map.
    return detail::map_exception(StatusCode::kDecodeError);
  }
}

Result<StreamInfo> Codec::inspect(ByteSpan stream) const {
  if (Status s = detail::validate_stream(stream); !s.ok()) return s;
  try {
    const jpeg::JpegInfo info = jpeg::parse_info(stream);
    StreamInfo out;
    out.width = info.width;
    out.height = info.height;
    out.components = info.components;
    out.restart_interval = info.restart_interval;
    out.comment = info.comment;
    return out;
  } catch (...) {
    return detail::map_exception(StatusCode::kDecodeError);
  }
}

struct TableDesigner::Impl {
  data::Dataset dataset;
  int max_label = -1;
  /// Private job manager behind the async entry points; created lazily at
  /// the first submit() so purely synchronous designers stay thread-free.
  std::unique_ptr<jobs::JobManager> jobs;

  jobs::JobManager& manager() {
    if (!jobs) {
      jobs::JobManagerConfig cfg;
      cfg.workers = 1;
      jobs = std::make_unique<jobs::JobManager>(std::move(cfg));
    }
    return *jobs;
  }
};

TableDesigner::TableDesigner() : impl_(std::make_unique<Impl>()) {}
TableDesigner::~TableDesigner() = default;
TableDesigner::TableDesigner(TableDesigner&&) noexcept = default;
TableDesigner& TableDesigner::operator=(TableDesigner&&) noexcept = default;

Status TableDesigner::add(ImageView image, int label) {
  if (Status s = detail::validate_image(image); !s.ok()) return s;
  if (label < 0) return {StatusCode::kInvalidArgument, "label must be >= 0"};
  try {
    image::Image owned(image.width, image.height, image.channels);
    std::memcpy(owned.data().data(), image.pixels, image.byte_size());
    impl_->dataset.samples.push_back({std::move(owned), label});
    impl_->max_label = std::max(impl_->max_label, label);
    impl_->dataset.num_classes = impl_->max_label + 1;
    return Status::success();
  } catch (...) {
    return detail::map_exception(StatusCode::kInternal);
  }
}

std::size_t TableDesigner::image_count() const { return impl_->dataset.size(); }

Result<TableDesign> TableDesigner::design(const DesignOptions& options) const {
  if (impl_->dataset.empty())
    return Status{StatusCode::kInvalidArgument, "no images added to the designer"};
  if (options.sample_interval() < 1)
    return Status{StatusCode::kInvalidArgument, "sample interval must be >= 1"};
  try {
    core::DesignConfig cfg;
    cfg.analysis.sample_interval = options.sample_interval();
    cfg.dataset_thresholds = options.dataset_thresholds();
    cfg.optimize_huffman = options.optimize_huffman();
    const core::DesignResult result = core::DeepNJpeg::design(impl_->dataset, cfg);
    TableDesign design;
    design.table = result.table.natural();
    design.t1 = result.params.t1;
    design.t2 = result.params.t2;
    design.images_analyzed = result.profile.images_analyzed;
    design.blocks_analyzed = result.profile.blocks_analyzed;
    design.optimize_huffman = options.optimize_huffman();
    return design;
  } catch (...) {
    return Result<TableDesign>(detail::map_exception(StatusCode::kInternal));
  }
}

Result<std::uint64_t> TableDesigner::submit(const DesignJobOptions& options) {
  if (impl_->dataset.empty())
    return Status{StatusCode::kInvalidArgument, "no images added to the designer"};
  if (options.tenant().empty())
    return Status{StatusCode::kInvalidArgument, "tenant name must not be empty"};
  if (options.sa_iterations() < 1)
    return Status{StatusCode::kInvalidArgument, "sa_iterations must be >= 1"};
  if (options.sample_interval() < 1)
    return Status{StatusCode::kInvalidArgument, "sample interval must be >= 1"};
  try {
    jobs::DesignJobSpec spec;
    spec.dataset = impl_->dataset;  // snapshot: later add()s affect later jobs
    spec.tenant = options.tenant();
    spec.target_bytes_per_image = options.target_bytes_per_image();
    spec.ladder = options.ladder();
    spec.sa.iterations = options.sa_iterations();
    spec.sa.seed = options.sa_seed();
    spec.sample_interval = options.sample_interval();
    spec.anneal_limit = options.anneal_limit();
    spec.checkpoint = options.checkpoint();
    std::uint64_t id = 0;
    const jobs::JobRc rc = impl_->manager().submit(std::move(spec), 0, &id);
    if (rc != jobs::JobRc::kOk) return status_from_job_rc(rc, 0);
    return id;
  } catch (...) {
    return Result<std::uint64_t>(detail::map_exception(StatusCode::kInternal));
  }
}

Result<DesignJobStatus> TableDesigner::poll(std::uint64_t job_id) const {
  if (!impl_->jobs)
    return Status{StatusCode::kInvalidArgument, "unknown job id " + std::to_string(job_id)};
  jobs::JobStatus status;
  const jobs::JobRc rc = impl_->jobs->status(job_id, &status);
  if (rc != jobs::JobRc::kOk) return status_from_job_rc(rc, job_id);
  return to_api_status(status);
}

Status TableDesigner::cancel(std::uint64_t job_id) {
  if (!impl_->jobs)
    return {StatusCode::kInvalidArgument, "unknown job id " + std::to_string(job_id)};
  return status_from_job_rc(impl_->jobs->cancel(job_id), job_id);
}

Result<DesignJobResult> TableDesigner::fetch(std::uint64_t job_id) const {
  if (!impl_->jobs)
    return Status{StatusCode::kInvalidArgument, "unknown job id " + std::to_string(job_id)};
  jobs::JobResult result;
  const jobs::JobRc rc = impl_->jobs->result(job_id, &result);
  if (rc != jobs::JobRc::kOk) return status_from_job_rc(rc, job_id);
  return to_api_result(std::move(result));
}

Result<DesignJobStatus> TableDesigner::wait(std::uint64_t job_id) const {
  if (!impl_->jobs)
    return Status{StatusCode::kInvalidArgument, "unknown job id " + std::to_string(job_id)};
  jobs::JobStatus status;
  const jobs::JobRc rc = impl_->jobs->wait(job_id, &status);
  if (rc != jobs::JobRc::kOk) return status_from_job_rc(rc, job_id);
  return to_api_status(status);
}

}  // namespace dnj::api
