// C ABI implementation: thin extern "C" shims over the C++ façade. Every
// entry point is a full exception firewall — nothing, std or otherwise,
// may unwind into a C caller. Output buffers are malloc-backed so the
// matching *_free functions pair with the allocation (and so a pure-C
// caller's mental model — "the library mallocs, dnj_*_free frees" — is
// exactly true).
#include "api/dnj_c.h"

#include <cstdlib>
#include <cstring>
#include <new>
#include <string>

#include "api/registry.hpp"
#include "api/service.hpp"
#include "api/session.hpp"

namespace api = dnj::api;

// The C enum is the API enum, value for value. A new StatusCode must be
// mirrored here (additive => minor ABI bump).
static_assert(DNJ_OK == static_cast<int>(api::StatusCode::kOk));
static_assert(DNJ_INVALID_ARGUMENT == static_cast<int>(api::StatusCode::kInvalidArgument));
static_assert(DNJ_DECODE_ERROR == static_cast<int>(api::StatusCode::kDecodeError));
static_assert(DNJ_REJECTED == static_cast<int>(api::StatusCode::kRejected));
static_assert(DNJ_SHUTDOWN == static_cast<int>(api::StatusCode::kShutdown));
static_assert(DNJ_INTERNAL == static_cast<int>(api::StatusCode::kInternal));
static_assert(DNJ_ABI_VERSION_MAJOR == api::kApiVersionMajor);
static_assert(DNJ_ABI_VERSION_MINOR == api::kApiVersionMinor);

struct dnj_session_t {
  api::Session session;
  std::string last_error;
};

struct dnj_options_t {
  api::EncodeOptions options;
};

struct dnj_designer_t {
  api::TableDesigner designer;
  std::string last_error;
};

// The C job-state enum is the API enum, value for value.
static_assert(DNJ_JOB_QUEUED == static_cast<int>(api::DesignJobState::kQueued));
static_assert(DNJ_JOB_RUNNING == static_cast<int>(api::DesignJobState::kRunning));
static_assert(DNJ_JOB_PAUSED == static_cast<int>(api::DesignJobState::kPaused));
static_assert(DNJ_JOB_COMPLETED == static_cast<int>(api::DesignJobState::kCompleted));
static_assert(DNJ_JOB_FAILED == static_cast<int>(api::DesignJobState::kFailed));
static_assert(DNJ_JOB_CANCELLED == static_cast<int>(api::DesignJobState::kCancelled));

struct dnj_server_t {
  explicit dnj_server_t(const api::ServiceOptions& options) : service(options) {}
  api::Service service;
  std::string last_error;
};

struct dnj_registry_t {
  api::Registry registry;
  std::string last_error;
};

namespace {

dnj_status_t record(dnj_session_t* session, const api::Status& status) {
  if (session != nullptr && !status.ok()) session->last_error = status.message();
  return static_cast<dnj_status_t>(status.code());
}

/// Copies a vector into a malloc-backed dnj_buffer_t.
bool fill_buffer(const std::vector<std::uint8_t>& bytes, dnj_buffer_t* out) {
  out->data = static_cast<uint8_t*>(std::malloc(bytes.empty() ? 1 : bytes.size()));
  if (out->data == nullptr) return false;
  std::memcpy(out->data, bytes.data(), bytes.size());
  out->size = bytes.size();
  return true;
}

dnj_status_t oom(dnj_session_t* session) {
  return record(session, {api::StatusCode::kInternal, "out of memory"});
}

/// Copies a rendered text document into a malloc-backed buffer.
dnj_status_t text_to_buffer(dnj_server_t* server, const std::string& text,
                            dnj_buffer_t* out) {
  const std::vector<std::uint8_t> bytes(text.begin(), text.end());
  if (!fill_buffer(bytes, out)) {
    server->last_error = "out of memory";
    return DNJ_INTERNAL;
  }
  return DNJ_OK;
}

/// Runs `fn` under the boundary firewall; any escape becomes DNJ_INTERNAL.
template <typename F>
dnj_status_t firewalled(dnj_session_t* session, F&& fn) {
  try {
    return fn();
  } catch (const std::exception& e) {
    return record(session, {api::StatusCode::kInternal, e.what()});
  } catch (...) {
    return record(session, {api::StatusCode::kInternal, "non-standard exception"});
  }
}

dnj_status_t record_designer(dnj_designer_t* designer, const api::Status& status) {
  if (!status.ok()) designer->last_error = status.message();
  return static_cast<dnj_status_t>(status.code());
}

/// Boundary firewall with the designer's last_error as the sink.
template <typename F>
dnj_status_t designer_firewalled(dnj_designer_t* designer, F&& fn) {
  try {
    return fn();
  } catch (const std::exception& e) {
    designer->last_error = e.what();
    return DNJ_INTERNAL;
  } catch (...) {
    designer->last_error = "non-standard exception";
    return DNJ_INTERNAL;
  }
}

void fill_job_status(const api::DesignJobStatus& s, dnj_job_status_t* out) {
  out->id = s.id;
  out->state = static_cast<int32_t>(s.state);
  out->progress = s.progress;
  out->sa_iteration = s.sa_iteration;
  out->sa_total = s.sa_total;
  out->target_bytes = s.target_bytes;
  out->achieved_bytes = s.achieved_bytes;
  out->rate_error = s.rate_error;
  out->checkpoints = s.checkpoints;
  out->rungs = s.rungs;
}

}  // namespace

extern "C" {

uint32_t dnj_abi_version(void) { return DNJ_ABI_VERSION; }

const char* dnj_status_name(dnj_status_t status) {
  if (status < DNJ_OK || status > DNJ_INTERNAL) return "unknown";
  return api::status_code_name(static_cast<api::StatusCode>(status));
}

void dnj_buffer_free(dnj_buffer_t* buffer) {
  if (buffer == nullptr) return;
  std::free(buffer->data);
  buffer->data = nullptr;
  buffer->size = 0;
}

void dnj_image_free(dnj_image_t* image) {
  if (image == nullptr) return;
  std::free(image->pixels);
  image->pixels = nullptr;
  image->width = image->height = image->channels = 0;
}

dnj_options_t* dnj_options_new(void) {
  return new (std::nothrow) dnj_options_t();
}

void dnj_options_free(dnj_options_t* options) { delete options; }

dnj_status_t dnj_options_set_quality(dnj_options_t* options, int32_t quality) {
  if (options == nullptr) return DNJ_INVALID_ARGUMENT;
  options->options.quality(quality);
  return DNJ_OK;
}

dnj_status_t dnj_options_set_tables(dnj_options_t* options, const uint16_t luma[64],
                                    const uint16_t chroma[64]) {
  if (options == nullptr || luma == nullptr || chroma == nullptr)
    return DNJ_INVALID_ARGUMENT;
  return firewalled(nullptr, [&] {
    api::QuantTableValues l, c;
    std::memcpy(l.data(), luma, sizeof(l));
    std::memcpy(c.data(), chroma, sizeof(c));
    options->options.custom_tables(l, c);
    return DNJ_OK;
  });
}

dnj_status_t dnj_options_set_chroma_420(dnj_options_t* options, int32_t on) {
  if (options == nullptr) return DNJ_INVALID_ARGUMENT;
  options->options.chroma_420(on != 0);
  return DNJ_OK;
}

dnj_status_t dnj_options_set_optimize_huffman(dnj_options_t* options, int32_t on) {
  if (options == nullptr) return DNJ_INVALID_ARGUMENT;
  options->options.optimize_huffman(on != 0);
  return DNJ_OK;
}

dnj_status_t dnj_options_set_restart_interval(dnj_options_t* options, int32_t mcus) {
  if (options == nullptr) return DNJ_INVALID_ARGUMENT;
  options->options.restart_interval(mcus);
  return DNJ_OK;
}

dnj_status_t dnj_options_set_comment(dnj_options_t* options, const char* text) {
  if (options == nullptr || text == nullptr) return DNJ_INVALID_ARGUMENT;
  return firewalled(nullptr, [&] {
    options->options.comment(text);
    return DNJ_OK;
  });
}

uint64_t dnj_options_digest(const dnj_options_t* options) {
  try {
    const api::EncodeOptions defaults;
    return (options != nullptr ? options->options : defaults).digest();
  } catch (...) {
    return 0;
  }
}

dnj_session_t* dnj_session_new(void) {
  try {
    return new dnj_session_t();
  } catch (...) {
    return nullptr;
  }
}

void dnj_session_free(dnj_session_t* session) { delete session; }

const char* dnj_last_error(const dnj_session_t* session) {
  return session == nullptr ? "" : session->last_error.c_str();
}

dnj_status_t dnj_encode(dnj_session_t* session, const uint8_t* pixels, int32_t width,
                        int32_t height, int32_t channels, const dnj_options_t* options,
                        dnj_buffer_t* out) {
  if (session == nullptr || out == nullptr) return DNJ_INVALID_ARGUMENT;
  out->data = nullptr;
  out->size = 0;
  return firewalled(session, [&] {
    const api::EncodeOptions defaults;
    api::Result<std::vector<std::uint8_t>> result = session->session.codec().encode(
        api::ImageView{pixels, width, height, channels},
        options != nullptr ? options->options : defaults);
    if (!result.ok()) return record(session, result.status());
    if (!fill_buffer(result.value(), out)) return oom(session);
    return DNJ_OK;
  });
}

dnj_status_t dnj_decode(dnj_session_t* session, const uint8_t* bytes, size_t size,
                        dnj_image_t* out) {
  if (session == nullptr || out == nullptr) return DNJ_INVALID_ARGUMENT;
  out->pixels = nullptr;
  out->width = out->height = out->channels = 0;
  return firewalled(session, [&] {
    api::Result<api::DecodedImage> result =
        session->session.codec().decode(api::ByteSpan{bytes, size});
    if (!result.ok()) return record(session, result.status());
    const api::DecodedImage& img = result.value();
    out->pixels = static_cast<uint8_t*>(std::malloc(img.pixels.empty() ? 1 : img.pixels.size()));
    if (out->pixels == nullptr) return oom(session);
    std::memcpy(out->pixels, img.pixels.data(), img.pixels.size());
    out->width = img.width;
    out->height = img.height;
    out->channels = img.channels;
    return DNJ_OK;
  });
}

dnj_status_t dnj_transcode(dnj_session_t* session, const uint8_t* bytes, size_t size,
                           const dnj_options_t* options, dnj_buffer_t* out) {
  if (session == nullptr || out == nullptr) return DNJ_INVALID_ARGUMENT;
  out->data = nullptr;
  out->size = 0;
  return firewalled(session, [&] {
    const api::EncodeOptions defaults;
    api::Result<std::vector<std::uint8_t>> result = session->session.codec().transcode(
        api::ByteSpan{bytes, size}, options != nullptr ? options->options : defaults);
    if (!result.ok()) return record(session, result.status());
    if (!fill_buffer(result.value(), out)) return oom(session);
    return DNJ_OK;
  });
}

dnj_designer_t* dnj_designer_new(void) {
  try {
    return new dnj_designer_t();
  } catch (...) {
    return nullptr;
  }
}

void dnj_designer_free(dnj_designer_t* designer) { delete designer; }

dnj_status_t dnj_designer_add(dnj_designer_t* designer, const uint8_t* pixels,
                              int32_t width, int32_t height, int32_t channels,
                              int32_t label) {
  if (designer == nullptr) return DNJ_INVALID_ARGUMENT;
  return firewalled(nullptr, [&] {
    const api::Status s =
        designer->designer.add(api::ImageView{pixels, width, height, channels}, label);
    return static_cast<dnj_status_t>(s.code());
  });
}

dnj_status_t dnj_designer_design(dnj_designer_t* designer, uint16_t out_table[64]) {
  if (designer == nullptr || out_table == nullptr) return DNJ_INVALID_ARGUMENT;
  return firewalled(nullptr, [&] {
    api::Result<api::TableDesign> result = designer->designer.design();
    if (!result.ok()) return static_cast<dnj_status_t>(result.status().code());
    std::memcpy(out_table, result.value().table.data(), 64 * sizeof(uint16_t));
    return DNJ_OK;
  });
}

dnj_status_t dnj_designer_design_options(dnj_designer_t* designer,
                                         dnj_options_t* options) {
  if (designer == nullptr || options == nullptr) return DNJ_INVALID_ARGUMENT;
  return firewalled(nullptr, [&] {
    api::Result<api::TableDesign> result = designer->designer.design();
    if (!result.ok()) return static_cast<dnj_status_t>(result.status().code());
    options->options = result.value().encode_options();
    return DNJ_OK;
  });
}

const char* dnj_designer_last_error(const dnj_designer_t* designer) {
  return designer != nullptr ? designer->last_error.c_str() : "";
}

const char* dnj_job_state_name(dnj_job_state_t state) {
  if (state < DNJ_JOB_QUEUED || state > DNJ_JOB_CANCELLED) return "unknown";
  return api::design_job_state_name(static_cast<api::DesignJobState>(state));
}

dnj_status_t dnj_job_submit(dnj_designer_t* designer, const char* tenant,
                            double target_bytes_per_image, int32_t sa_iterations,
                            int32_t anneal_limit, const uint8_t* checkpoint,
                            size_t checkpoint_size, uint64_t* out_job_id) {
  if (designer == nullptr || out_job_id == nullptr) return DNJ_INVALID_ARGUMENT;
  if (checkpoint == nullptr && checkpoint_size != 0) return DNJ_INVALID_ARGUMENT;
  return designer_firewalled(designer, [&] {
    api::DesignJobOptions options;
    if (tenant != nullptr) options.tenant(tenant);
    options.target_bytes_per_image(target_bytes_per_image);
    if (sa_iterations > 0) options.sa_iterations(sa_iterations);
    if (anneal_limit > 0) options.anneal_limit(anneal_limit);
    if (checkpoint_size > 0)
      options.resume_from(
          std::vector<std::uint8_t>(checkpoint, checkpoint + checkpoint_size));
    api::Result<std::uint64_t> result = designer->designer.submit(options);
    if (!result.ok()) return record_designer(designer, result.status());
    *out_job_id = result.value();
    return DNJ_OK;
  });
}

dnj_status_t dnj_job_status(dnj_designer_t* designer, uint64_t job_id,
                            dnj_job_status_t* out) {
  if (designer == nullptr || out == nullptr) return DNJ_INVALID_ARGUMENT;
  return designer_firewalled(designer, [&] {
    api::Result<api::DesignJobStatus> result = designer->designer.poll(job_id);
    if (!result.ok()) return record_designer(designer, result.status());
    fill_job_status(result.value(), out);
    return DNJ_OK;
  });
}

dnj_status_t dnj_job_wait(dnj_designer_t* designer, uint64_t job_id,
                          dnj_job_status_t* out) {
  if (designer == nullptr) return DNJ_INVALID_ARGUMENT;
  return designer_firewalled(designer, [&] {
    api::Result<api::DesignJobStatus> result = designer->designer.wait(job_id);
    if (!result.ok()) return record_designer(designer, result.status());
    if (out != nullptr) fill_job_status(result.value(), out);
    return DNJ_OK;
  });
}

dnj_status_t dnj_job_cancel(dnj_designer_t* designer, uint64_t job_id) {
  if (designer == nullptr) return DNJ_INVALID_ARGUMENT;
  return designer_firewalled(
      designer, [&] { return record_designer(designer, designer->designer.cancel(job_id)); });
}

dnj_status_t dnj_job_result(dnj_designer_t* designer, uint64_t job_id,
                            uint16_t out_table[64], int32_t* out_quality,
                            double* out_achieved_bytes, dnj_buffer_t* out_checkpoint) {
  if (designer == nullptr) return DNJ_INVALID_ARGUMENT;
  return designer_firewalled(designer, [&] {
    api::Result<api::DesignJobResult> result = designer->designer.fetch(job_id);
    if (!result.ok()) return record_designer(designer, result.status());
    const api::DesignJobResult& r = result.value();
    if (out_table != nullptr)
      std::memcpy(out_table, r.table.data(), 64 * sizeof(uint16_t));
    if (out_quality != nullptr) *out_quality = r.quality;
    if (out_achieved_bytes != nullptr) *out_achieved_bytes = r.achieved_bytes;
    if (out_checkpoint != nullptr && !fill_buffer(r.checkpoint, out_checkpoint)) {
      designer->last_error = "out of memory";
      return DNJ_INTERNAL;
    }
    return DNJ_OK;
  });
}

dnj_registry_t* dnj_registry_new(void) {
  try {
    return new dnj_registry_t();
  } catch (...) {
    return nullptr;
  }
}

void dnj_registry_free(dnj_registry_t* registry) { delete registry; }

const char* dnj_registry_last_error(const dnj_registry_t* registry) {
  return registry != nullptr ? registry->last_error.c_str() : "";
}

dnj_status_t dnj_registry_put(dnj_registry_t* registry, const char* name,
                              const dnj_options_t* options, size_t quota_bytes,
                              uint64_t* out_version) {
  if (registry == nullptr || name == nullptr) return DNJ_INVALID_ARGUMENT;
  try {
    const api::EncodeOptions defaults;
    api::Result<std::uint64_t> result = registry->registry.put(
        name, options != nullptr ? options->options : defaults, quota_bytes);
    if (!result.ok()) {
      registry->last_error = result.status().message();
      return static_cast<dnj_status_t>(result.status().code());
    }
    if (out_version != nullptr) *out_version = result.value();
    return DNJ_OK;
  } catch (const std::exception& e) {
    registry->last_error = e.what();
    return DNJ_INTERNAL;
  } catch (...) {
    registry->last_error = "non-standard exception";
    return DNJ_INTERNAL;
  }
}

dnj_status_t dnj_registry_remove(dnj_registry_t* registry, const char* name) {
  if (registry == nullptr || name == nullptr) return DNJ_INVALID_ARGUMENT;
  try {
    const api::Status s = registry->registry.remove(name);
    if (!s.ok()) registry->last_error = s.message();
    return static_cast<dnj_status_t>(s.code());
  } catch (...) {
    registry->last_error = "non-standard exception";
    return DNJ_INTERNAL;
  }
}

dnj_status_t dnj_registry_get(dnj_registry_t* registry, const char* name,
                              uint64_t* out_version, size_t* out_quota_bytes) {
  if (registry == nullptr || name == nullptr) return DNJ_INVALID_ARGUMENT;
  try {
    api::Result<api::TenantInfo> result = registry->registry.get(name);
    if (!result.ok()) {
      registry->last_error = result.status().message();
      return static_cast<dnj_status_t>(result.status().code());
    }
    if (out_version != nullptr) *out_version = result.value().version;
    if (out_quota_bytes != nullptr) *out_quota_bytes = result.value().quota_bytes;
    return DNJ_OK;
  } catch (...) {
    registry->last_error = "non-standard exception";
    return DNJ_INTERNAL;
  }
}

size_t dnj_registry_count(const dnj_registry_t* registry) {
  if (registry == nullptr) return 0;
  try {
    return registry->registry.size();
  } catch (...) {
    return 0;
  }
}

dnj_status_t dnj_registry_encode_options(dnj_registry_t* registry, const char* name,
                                         int32_t quality, dnj_options_t* out_options) {
  if (registry == nullptr || name == nullptr || out_options == nullptr)
    return DNJ_INVALID_ARGUMENT;
  try {
    api::Result<api::EncodeOptions> result =
        registry->registry.encode_options_for(name, quality);
    if (!result.ok()) {
      registry->last_error = result.status().message();
      return static_cast<dnj_status_t>(result.status().code());
    }
    out_options->options = result.take();
    return DNJ_OK;
  } catch (...) {
    registry->last_error = "non-standard exception";
    return DNJ_INTERNAL;
  }
}

dnj_server_t* dnj_server_new(int32_t workers, size_t queue_capacity,
                             int32_t reject_when_full) {
  return dnj_server_new_with_registry(workers, queue_capacity, reject_when_full,
                                      nullptr);
}

dnj_server_t* dnj_server_new_with_registry(int32_t workers, size_t queue_capacity,
                                           int32_t reject_when_full,
                                           dnj_registry_t* registry) {
  try {
    api::ServiceOptions options;
    if (workers > 0) options.workers(workers);
    if (queue_capacity > 0) options.queue_capacity(queue_capacity);
    options.reject_when_full(reject_when_full != 0);
    if (registry != nullptr) options.registry(registry->registry);
    return new dnj_server_t(options);
  } catch (...) {
    return nullptr;
  }
}

void dnj_server_free(dnj_server_t* server) { delete server; }

const char* dnj_server_last_error(const dnj_server_t* server) {
  return server != nullptr ? server->last_error.c_str() : "";
}

dnj_status_t dnj_server_listen(dnj_server_t* server, const char* host, uint16_t port,
                               uint16_t* out_port) {
  if (server == nullptr) return DNJ_INVALID_ARGUMENT;
  try {
    api::ListenOptions options;
    if (host != nullptr) options.host(host);
    options.port(port);
    const api::Status s = server->service.listen(options);
    if (!s.ok()) {
      server->last_error = s.message();
      return static_cast<dnj_status_t>(s.code());
    }
    if (out_port != nullptr) *out_port = static_cast<uint16_t>(server->service.listen_port());
    return DNJ_OK;
  } catch (const std::exception& e) {
    server->last_error = e.what();
    return DNJ_INTERNAL;
  } catch (...) {
    server->last_error = "non-standard exception";
    return DNJ_INTERNAL;
  }
}

int32_t dnj_server_port(const dnj_server_t* server) {
  return server != nullptr ? server->service.listen_port() : -1;
}

void dnj_server_stop(dnj_server_t* server) {
  if (server == nullptr) return;
  try {
    server->service.stop_listening();
  } catch (...) {
  }
}

dnj_status_t dnj_server_metrics_text(dnj_server_t* server, dnj_buffer_t* out) {
  if (server == nullptr || out == nullptr) return DNJ_INVALID_ARGUMENT;
  try {
    return text_to_buffer(server, server->service.metrics_text(), out);
  } catch (const std::exception& e) {
    server->last_error = e.what();
    return DNJ_INTERNAL;
  } catch (...) {
    server->last_error = "non-standard exception";
    return DNJ_INTERNAL;
  }
}

dnj_status_t dnj_server_trace_dump(dnj_server_t* server, dnj_buffer_t* out) {
  if (server == nullptr || out == nullptr) return DNJ_INVALID_ARGUMENT;
  try {
    return text_to_buffer(server, server->service.dump_trace(), out);
  } catch (const std::exception& e) {
    server->last_error = e.what();
    return DNJ_INTERNAL;
  } catch (...) {
    server->last_error = "non-standard exception";
    return DNJ_INTERNAL;
  }
}

}  // extern "C"
