// INTERNAL glue between the public API types and the codec-layer types.
// Not part of the public surface (do not include from embedder code):
// this header exists so api/*.cpp and the serving layer share one
// conversion and one validation story when crossing the boundary.
#pragma once

#include <memory>

#include "api/registry.hpp"
#include "api/status.hpp"
#include "api/types.hpp"
#include "jpeg/encoder.hpp"

namespace dnj::serve {
class TableRegistry;
}

namespace dnj::api::detail {

/// EncodeOptions -> the codec's EncoderConfig. Total (no validation):
/// every representable options value maps; validate first.
jpeg::EncoderConfig to_config(const EncodeOptions& options);

/// EncoderConfig -> EncodeOptions, field-for-field. to_config(from_config(c))
/// reproduces `c` exactly — the serving layer's façade migration depends
/// on this round trip being lossless (byte-identity of served payloads).
EncodeOptions from_config(const jpeg::EncoderConfig& config);

/// Boundary validation: ok() or kInvalidArgument with a precise message.
Status validate_image(ImageView image);
Status validate_stream(ByteSpan stream);
Status validate_options(const EncodeOptions& options);

/// Maps the in-flight exception (call inside a catch block) to a Status.
/// std::invalid_argument / std::out_of_range become kInvalidArgument,
/// std::runtime_error becomes `runtime_code` (kDecodeError on decode-side
/// paths, kInternal elsewhere), anything else kInternal.
Status map_exception(StatusCode runtime_code);

/// Bridges api::Registry to its serve-layer implementation (defined in
/// registry.cpp, where Registry's privates are reachable). Internal glue:
/// the serving layer and the Service façade share registry instances
/// through this, without shared_ptr<TableRegistry> appearing in any
/// public signature.
struct RegistryAccess {
  static const std::shared_ptr<serve::TableRegistry>& impl(const Registry& r);
  static Registry wrap(std::shared_ptr<serve::TableRegistry> impl);
};

}  // namespace dnj::api::detail
