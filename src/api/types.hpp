// Value types of the public API: zero-copy input views, owned outputs, and
// the builder-style option sets. Standard-library-only (plus base/views.hpp,
// which is itself std-only) — no internal codec headers leak through here.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "base/views.hpp"

namespace dnj::api {

/// Zero-copy view over an encoded byte stream (implicitly constructible
/// from std::vector<uint8_t> or {ptr, size}).
using ByteSpan = dnj::ByteSpan;

/// Zero-copy view over interleaved 8-bit pixels (1 = gray, 3 = RGB).
/// The encoder reads pixels straight through the view — no staging copy.
using ImageView = dnj::PixelView;

/// Maximum width/height baseline JPEG can express (SOF0 is 16-bit).
inline constexpr int kMaxImageDimension = 65535;

/// A decoded image, owned by the caller. `view()` re-enters the API
/// zero-copy (e.g. to re-encode the decoded pixels).
struct DecodedImage {
  int width = 0;
  int height = 0;
  int channels = 0;
  std::vector<std::uint8_t> pixels;  ///< interleaved, width*height*channels

  ImageView view() const { return {pixels.data(), width, height, channels}; }
};

/// Header facts of an encoded stream (no pixel decode).
struct StreamInfo {
  int width = 0;
  int height = 0;
  int components = 0;       ///< 1 = gray, 3 = YCbCr
  int restart_interval = 0; ///< MCUs between restart markers (0 = none)
  std::string comment;      ///< COM marker payload, if any
};

/// A quantization table as the API trades it: 64 steps in natural
/// (row-major) order. Steps are clamped into [1, 65535] on use.
using QuantTableValues = std::array<std::uint16_t, 64>;

/// Builder-style encoder options. Defaults match the library defaults:
/// quality 75, Annex K tables, 4:2:0 chroma subsampling, static Huffman
/// tables, no restart markers, no comment.
///
/// EncodeOptions is the one options representation shared by the
/// synchronous façade, the async Service, and the serving layer:
/// `digest()` hashes the canonical serialization of the underlying encoder
/// configuration, so it equals the config digest the serve layer batches
/// and caches on.
class EncodeOptions {
 public:
  /// IJG quality in [1, 100] (validated at the call boundary, not here).
  /// Ignored when custom tables are set.
  EncodeOptions& quality(int q) {
    quality_ = q;
    return *this;
  }

  /// Use the given quantization tables verbatim (the DeepN-JPEG path).
  EncodeOptions& custom_tables(const QuantTableValues& luma,
                               const QuantTableValues& chroma) {
    use_custom_tables_ = true;
    luma_table_ = luma;
    chroma_table_ = chroma;
    return *this;
  }

  /// 4:2:0 chroma subsampling on/off (off = 4:4:4). Default on.
  EncodeOptions& chroma_420(bool on) {
    chroma_420_ = on;
    return *this;
  }

  /// Two-pass encode with per-image optimal Huffman tables.
  EncodeOptions& optimize_huffman(bool on) {
    optimize_huffman_ = on;
    return *this;
  }

  /// Restart interval in MCUs (0 = no restart markers).
  EncodeOptions& restart_interval(int mcus) {
    restart_interval_ = mcus;
    return *this;
  }

  /// COM marker payload.
  EncodeOptions& comment(std::string text) {
    comment_ = std::move(text);
    return *this;
  }

  // Accessors (used by the implementation and by tests).
  int quality() const { return quality_; }
  bool uses_custom_tables() const { return use_custom_tables_; }
  const QuantTableValues& luma_table() const { return luma_table_; }
  const QuantTableValues& chroma_table() const { return chroma_table_; }
  bool chroma_420() const { return chroma_420_; }
  bool optimize_huffman() const { return optimize_huffman_; }
  int restart_interval() const { return restart_interval_; }
  const std::string& comment() const { return comment_; }

  /// FNV-1a digest of the canonical serialization of these options —
  /// byte-for-byte the config digest the serving layer keys its result
  /// cache and micro-batch compatibility on. Equal digests = the same
  /// encode computation.
  std::uint64_t digest() const;

 private:
  int quality_ = 75;
  bool use_custom_tables_ = false;
  QuantTableValues luma_table_{};
  QuantTableValues chroma_table_{};
  bool chroma_420_ = true;
  bool optimize_huffman_ = false;
  int restart_interval_ = 0;
  std::string comment_;
};

/// Builder-style options for the DeepN-JPEG table design flow.
class DesignOptions {
 public:
  /// Algorithm 1 sampling interval k: analyze every k-th image per class.
  DesignOptions& sample_interval(int k) {
    sample_interval_ = k;
    return *this;
  }

  /// Re-derive the PLM thresholds T1/T2 from the dataset's sigma ranking
  /// (paper Section 3.2.2) instead of the paper constants. Default on.
  DesignOptions& dataset_thresholds(bool on) {
    dataset_thresholds_ = on;
    return *this;
  }

  /// Carry optimize_huffman into the designed EncodeOptions.
  DesignOptions& optimize_huffman(bool on) {
    optimize_huffman_ = on;
    return *this;
  }

  int sample_interval() const { return sample_interval_; }
  bool dataset_thresholds() const { return dataset_thresholds_; }
  bool optimize_huffman() const { return optimize_huffman_; }

 private:
  int sample_interval_ = 1;
  bool dataset_thresholds_ = true;
  bool optimize_huffman_ = false;
};

/// Lifecycle of an async design job (TableDesigner::submit). kPaused is
/// resumable: fetch() yields a checkpoint to resume from.
enum class DesignJobState : std::uint8_t {
  kQueued = 0,
  kRunning = 1,
  kPaused = 2,
  kCompleted = 3,
  kFailed = 4,
  kCancelled = 5,
};
const char* design_job_state_name(DesignJobState state);

/// Builder-style options for an async, rate-controlled design job. The
/// accumulated designer sample becomes the job's dataset; on top of the
/// synchronous design flow the job anneals the table (SA), binary-searches
/// the quality that meets `target_bytes_per_image`, and registers the
/// result (plus any ladder rate points) as servable tenants.
class DesignJobOptions {
 public:
  /// Registry name the designed config is published under (ladder points
  /// as "<tenant>:r<i>"). Default "designer".
  DesignJobOptions& tenant(std::string name) {
    tenant_ = std::move(name);
    return *this;
  }
  /// Rate target: mean entropy-coded scan bytes per image. 0 = no rate
  /// control (register the designed table at its midpoint, quality 50).
  DesignJobOptions& target_bytes_per_image(double bytes) {
    target_bytes_ = bytes;
    return *this;
  }
  /// Additional rate points, each searched and registered separately.
  DesignJobOptions& ladder(std::vector<double> targets) {
    ladder_ = std::move(targets);
    return *this;
  }
  /// Simulated-annealing iterations refining the analyzed table.
  DesignJobOptions& sa_iterations(int n) {
    sa_iterations_ = n;
    return *this;
  }
  DesignJobOptions& sa_seed(std::uint64_t seed) {
    sa_seed_ = seed;
    return *this;
  }
  /// Deterministic pause point: > 0 parks the job in kPaused once the SA
  /// iteration counter reaches this value (checkpoint retrievable).
  DesignJobOptions& anneal_limit(int iterations) {
    anneal_limit_ = iterations;
    return *this;
  }
  /// Resume/refine from a checkpoint a previous job's fetch() returned.
  DesignJobOptions& resume_from(std::vector<std::uint8_t> checkpoint) {
    checkpoint_ = std::move(checkpoint);
    return *this;
  }
  /// Algorithm 1 sampling interval k (every k-th image per class).
  DesignJobOptions& sample_interval(int k) {
    sample_interval_ = k;
    return *this;
  }

  const std::string& tenant() const { return tenant_; }
  double target_bytes_per_image() const { return target_bytes_; }
  const std::vector<double>& ladder() const { return ladder_; }
  int sa_iterations() const { return sa_iterations_; }
  std::uint64_t sa_seed() const { return sa_seed_; }
  int anneal_limit() const { return anneal_limit_; }
  const std::vector<std::uint8_t>& checkpoint() const { return checkpoint_; }
  int sample_interval() const { return sample_interval_; }

 private:
  std::string tenant_ = "designer";
  double target_bytes_ = 0.0;
  std::vector<double> ladder_;
  int sa_iterations_ = 400;
  std::uint64_t sa_seed_ = 0x5A5A;
  int anneal_limit_ = 0;
  std::vector<std::uint8_t> checkpoint_;
  int sample_interval_ = 1;
};

/// One registered rate point of a job's quality ladder.
struct DesignLadderRung {
  std::string name;             ///< registry tenant name
  std::uint64_t version = 0;    ///< registry publication stamp
  int quality = 50;             ///< IJG scaling applied to the designed pair
  double target_bytes = 0.0;
  double achieved_bytes = 0.0;  ///< measured mean bytes/image
};

/// Poll snapshot of an async design job.
struct DesignJobStatus {
  std::uint64_t id = 0;
  DesignJobState state = DesignJobState::kQueued;
  std::string phase;         ///< pipeline position (analyze/anneal/...)
  double progress = 0.0;     ///< coarse fraction in [0, 1]
  std::uint32_t sa_iteration = 0;
  std::uint32_t sa_total = 0;
  double target_bytes = 0.0;
  double achieved_bytes = 0.0;
  double rate_error = 0.0;   ///< |achieved - target| / target (0 when no target)
  std::uint32_t checkpoints = 0;
  std::uint32_t rungs = 0;
  std::string error;         ///< non-empty iff state == kFailed
};

/// Result of a completed (or paused — best-so-far) design job.
struct DesignJobResult {
  std::uint64_t id = 0;
  QuantTableValues table{};      ///< the annealed table, natural order
  int quality = 50;              ///< rate-search answer for the primary target
  double target_bytes = 0.0;
  double achieved_bytes = 0.0;
  double initial_cost = 0.0;
  double best_cost = 0.0;
  int accepted_moves = 0;
  std::uint32_t sa_iterations = 0;
  std::vector<DesignLadderRung> rungs;
  std::vector<std::uint8_t> checkpoint;  ///< resume/refine seed
};

/// Everything the design flow produces that a deployment needs to keep:
/// the table itself plus the design provenance.
struct TableDesign {
  QuantTableValues table{};   ///< designed steps, natural order
  double t1 = 0.0, t2 = 0.0;  ///< PLM thresholds actually used
  std::uint64_t images_analyzed = 0;
  std::uint64_t blocks_analyzed = 0;
  bool optimize_huffman = false;  ///< carried from DesignOptions

  /// Ready-to-use encoder options: the designed table on luma and chroma
  /// alike, 4:4:4 subsampling — exactly the configuration the paper's
  /// experiments (and core::custom_table_config) use.
  EncodeOptions encode_options() const {
    return EncodeOptions()
        .custom_tables(table, table)
        .chroma_420(false)
        .optimize_huffman(optimize_huffman);
  }
};

}  // namespace dnj::api
