// Value types of the public API: zero-copy input views, owned outputs, and
// the builder-style option sets. Standard-library-only (plus base/views.hpp,
// which is itself std-only) — no internal codec headers leak through here.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "base/views.hpp"

namespace dnj::api {

/// Zero-copy view over an encoded byte stream (implicitly constructible
/// from std::vector<uint8_t> or {ptr, size}).
using ByteSpan = dnj::ByteSpan;

/// Zero-copy view over interleaved 8-bit pixels (1 = gray, 3 = RGB).
/// The encoder reads pixels straight through the view — no staging copy.
using ImageView = dnj::PixelView;

/// Maximum width/height baseline JPEG can express (SOF0 is 16-bit).
inline constexpr int kMaxImageDimension = 65535;

/// A decoded image, owned by the caller. `view()` re-enters the API
/// zero-copy (e.g. to re-encode the decoded pixels).
struct DecodedImage {
  int width = 0;
  int height = 0;
  int channels = 0;
  std::vector<std::uint8_t> pixels;  ///< interleaved, width*height*channels

  ImageView view() const { return {pixels.data(), width, height, channels}; }
};

/// Header facts of an encoded stream (no pixel decode).
struct StreamInfo {
  int width = 0;
  int height = 0;
  int components = 0;       ///< 1 = gray, 3 = YCbCr
  int restart_interval = 0; ///< MCUs between restart markers (0 = none)
  std::string comment;      ///< COM marker payload, if any
};

/// A quantization table as the API trades it: 64 steps in natural
/// (row-major) order. Steps are clamped into [1, 65535] on use.
using QuantTableValues = std::array<std::uint16_t, 64>;

/// Builder-style encoder options. Defaults match the library defaults:
/// quality 75, Annex K tables, 4:2:0 chroma subsampling, static Huffman
/// tables, no restart markers, no comment.
///
/// EncodeOptions is the one options representation shared by the
/// synchronous façade, the async Service, and the serving layer:
/// `digest()` hashes the canonical serialization of the underlying encoder
/// configuration, so it equals the config digest the serve layer batches
/// and caches on.
class EncodeOptions {
 public:
  /// IJG quality in [1, 100] (validated at the call boundary, not here).
  /// Ignored when custom tables are set.
  EncodeOptions& quality(int q) {
    quality_ = q;
    return *this;
  }

  /// Use the given quantization tables verbatim (the DeepN-JPEG path).
  EncodeOptions& custom_tables(const QuantTableValues& luma,
                               const QuantTableValues& chroma) {
    use_custom_tables_ = true;
    luma_table_ = luma;
    chroma_table_ = chroma;
    return *this;
  }

  /// 4:2:0 chroma subsampling on/off (off = 4:4:4). Default on.
  EncodeOptions& chroma_420(bool on) {
    chroma_420_ = on;
    return *this;
  }

  /// Two-pass encode with per-image optimal Huffman tables.
  EncodeOptions& optimize_huffman(bool on) {
    optimize_huffman_ = on;
    return *this;
  }

  /// Restart interval in MCUs (0 = no restart markers).
  EncodeOptions& restart_interval(int mcus) {
    restart_interval_ = mcus;
    return *this;
  }

  /// COM marker payload.
  EncodeOptions& comment(std::string text) {
    comment_ = std::move(text);
    return *this;
  }

  // Accessors (used by the implementation and by tests).
  int quality() const { return quality_; }
  bool uses_custom_tables() const { return use_custom_tables_; }
  const QuantTableValues& luma_table() const { return luma_table_; }
  const QuantTableValues& chroma_table() const { return chroma_table_; }
  bool chroma_420() const { return chroma_420_; }
  bool optimize_huffman() const { return optimize_huffman_; }
  int restart_interval() const { return restart_interval_; }
  const std::string& comment() const { return comment_; }

  /// FNV-1a digest of the canonical serialization of these options —
  /// byte-for-byte the config digest the serving layer keys its result
  /// cache and micro-batch compatibility on. Equal digests = the same
  /// encode computation.
  std::uint64_t digest() const;

 private:
  int quality_ = 75;
  bool use_custom_tables_ = false;
  QuantTableValues luma_table_{};
  QuantTableValues chroma_table_{};
  bool chroma_420_ = true;
  bool optimize_huffman_ = false;
  int restart_interval_ = 0;
  std::string comment_;
};

/// Builder-style options for the DeepN-JPEG table design flow.
class DesignOptions {
 public:
  /// Algorithm 1 sampling interval k: analyze every k-th image per class.
  DesignOptions& sample_interval(int k) {
    sample_interval_ = k;
    return *this;
  }

  /// Re-derive the PLM thresholds T1/T2 from the dataset's sigma ranking
  /// (paper Section 3.2.2) instead of the paper constants. Default on.
  DesignOptions& dataset_thresholds(bool on) {
    dataset_thresholds_ = on;
    return *this;
  }

  /// Carry optimize_huffman into the designed EncodeOptions.
  DesignOptions& optimize_huffman(bool on) {
    optimize_huffman_ = on;
    return *this;
  }

  int sample_interval() const { return sample_interval_; }
  bool dataset_thresholds() const { return dataset_thresholds_; }
  bool optimize_huffman() const { return optimize_huffman_; }

 private:
  int sample_interval_ = 1;
  bool dataset_thresholds_ = true;
  bool optimize_huffman_ = false;
};

/// Everything the design flow produces that a deployment needs to keep:
/// the table itself plus the design provenance.
struct TableDesign {
  QuantTableValues table{};   ///< designed steps, natural order
  double t1 = 0.0, t2 = 0.0;  ///< PLM thresholds actually used
  std::uint64_t images_analyzed = 0;
  std::uint64_t blocks_analyzed = 0;
  bool optimize_huffman = false;  ///< carried from DesignOptions

  /// Ready-to-use encoder options: the designed table on luma and chroma
  /// alike, 4:4:4 subsampling — exactly the configuration the paper's
  /// experiments (and core::custom_table_config) use.
  EncodeOptions encode_options() const {
    return EncodeOptions()
        .custom_tables(table, table)
        .chroma_420(false)
        .optimize_huffman(optimize_huffman);
  }
};

}  // namespace dnj::api
