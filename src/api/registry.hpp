// Public multi-tenant table registry handle.
//
// A Registry names tenants and maps each to an immutable encoder
// configuration snapshot (base quantization tables + options + an optional
// result-cache byte quota). Services resolve kDeepnEncode requests that
// carry a tenant name against their registry; see Service::deepn_encode.
//
//   Registry registry;
//   registry.put("mobilenet", design.encode_options());
//   Service service(ServiceOptions().registry(registry));
//   Pending p = service.deepn_encode(view, "mobilenet", 85);
//
// Registry is a shared handle (copying shares the underlying registry, the
// way shared_ptr does): pass one Registry to any number of services and
// they serve one coherent tenant set. All operations are thread-safe.
// Updates are versioned — put() returns a monotonically increasing
// version, and requests in flight keep the snapshot they resolved at
// submission, so a concurrent re-registration never mixes table
// generations inside one request.
//
// Standard-library-only header (pimpl over serve::TableRegistry).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "api/status.hpp"
#include "api/types.hpp"

namespace dnj::serve {
class TableRegistry;
}

namespace dnj::api {

namespace detail {
struct RegistryAccess;
}

/// A snapshot of one registered tenant, as get() reports it.
struct TenantInfo {
  std::string name;
  std::uint64_t version = 0;     ///< registry-global monotonic publication stamp
  std::size_t quota_bytes = 0;   ///< result-cache byte quota (0 = none)
  EncodeOptions options;         ///< normalized base configuration (custom
                                 ///  tables always materialized, quality 50)
};

class Registry {
 public:
  /// A fresh, empty registry.
  Registry();
  ~Registry();
  Registry(const Registry&);  ///< shares the underlying registry
  Registry& operator=(const Registry&);
  Registry(Registry&&) noexcept;
  Registry& operator=(Registry&&) noexcept;

  /// Registers (or replaces) tenant `name` with `base` as its encoder
  /// configuration and `quota_bytes` as its result-cache byte quota
  /// (0 = none). Normalization: when `base` carries no custom tables the
  /// Annex K pair is materialized (request quality then scales exactly
  /// like standard IJG quality), and the stored quality is pinned to 50 so
  /// two registrations of the same computation share one digest (shard
  /// affinity, batches, caches). Returns the published version.
  Result<std::uint64_t> put(const std::string& name, const EncodeOptions& base,
                            std::size_t quota_bytes = 0);

  /// Unregisters `name`; kInvalidArgument when it was not registered.
  /// In-flight requests keep their pinned snapshot.
  Status remove(const std::string& name);

  /// The current snapshot of `name`, or kInvalidArgument.
  Result<TenantInfo> get(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> names() const;

  std::size_t size() const;

  /// The exact encoder options a kDeepnEncode of (name, quality) encodes
  /// under: the tenant's configuration with its tables IJG-scaled to
  /// `quality` (50 = the base tables verbatim). This is the synchronous
  /// determinism reference — Codec::encode with these options produces
  /// payloads bit-identical to Service::deepn_encode(..., name, quality).
  Result<EncodeOptions> encode_options_for(const std::string& name, int quality) const;

 private:
  friend struct detail::RegistryAccess;
  explicit Registry(std::shared_ptr<serve::TableRegistry> impl);
  std::shared_ptr<serve::TableRegistry> impl_;
};

}  // namespace dnj::api
