// Registry façade implementation: boundary validation + type translation
// over serve::TableRegistry (which owns normalization and versioning).
#include "api/registry.hpp"

#include <utility>

#include "api/convert.hpp"
#include "serve/registry.hpp"

namespace dnj::api {

Registry::Registry() : impl_(std::make_shared<serve::TableRegistry>()) {}
Registry::Registry(std::shared_ptr<serve::TableRegistry> impl) : impl_(std::move(impl)) {}
Registry::~Registry() = default;
Registry::Registry(const Registry&) = default;
Registry& Registry::operator=(const Registry&) = default;
Registry::Registry(Registry&&) noexcept = default;
Registry& Registry::operator=(Registry&&) noexcept = default;

Result<std::uint64_t> Registry::put(const std::string& name, const EncodeOptions& base,
                                    std::size_t quota_bytes) {
  if (name.empty())
    return Status{StatusCode::kInvalidArgument, "tenant name must not be empty"};
  if (Status s = detail::validate_options(base); !s.ok()) return s;
  try {
    return impl_->put(name, detail::to_config(base), quota_bytes);
  } catch (...) {
    return detail::map_exception(StatusCode::kInternal);
  }
}

Status Registry::remove(const std::string& name) {
  if (!impl_->remove(name))
    return {StatusCode::kInvalidArgument, "unknown tenant: " + name};
  return Status::success();
}

Result<TenantInfo> Registry::get(const std::string& name) const {
  const std::shared_ptr<const serve::TenantEntry> entry = impl_->find(name);
  if (!entry)
    return Status{StatusCode::kInvalidArgument, "unknown tenant: " + name};
  TenantInfo info;
  info.name = entry->name;
  info.version = entry->version;
  info.quota_bytes = entry->quota_bytes;
  info.options = detail::from_config(entry->base);
  return info;
}

std::vector<std::string> Registry::names() const { return impl_->names(); }

std::size_t Registry::size() const { return impl_->size(); }

Result<EncodeOptions> Registry::encode_options_for(const std::string& name,
                                                   int quality) const {
  if (quality < 1 || quality > 100)
    return Status{StatusCode::kInvalidArgument, "quality must be in [1, 100]"};
  const std::shared_ptr<const serve::TenantEntry> entry = impl_->find(name);
  if (!entry)
    return Status{StatusCode::kInvalidArgument, "unknown tenant: " + name};
  try {
    // The tenant's full configuration with its tables quality-scaled —
    // mirror of TranscodeService::deepn_config so the synchronous encode
    // under these options is bit-identical to the served path.
    jpeg::EncoderConfig cfg = entry->base;
    cfg.use_custom_tables = true;
    cfg.luma_table = entry->base.luma_table.scaled(quality);
    cfg.chroma_table = entry->base.chroma_table.scaled(quality);
    return detail::from_config(cfg);
  } catch (...) {
    return detail::map_exception(StatusCode::kInternal);
  }
}

namespace detail {

const std::shared_ptr<serve::TableRegistry>& RegistryAccess::impl(const Registry& r) {
  return r.impl_;
}

Registry RegistryAccess::wrap(std::shared_ptr<serve::TableRegistry> impl) {
  return Registry(std::move(impl));
}

}  // namespace detail

}  // namespace dnj::api
