/* dnj_c.h — C ABI of the DeepN-JPEG library.
 *
 * The stable FFI surface for edge-device and foreign-language callers:
 * opaque handles, out-params, typed dnj_status_t returns. No exception
 * ever crosses this boundary (every entry point catches internally), no
 * C++ type appears here, and the header compiles as strict C11 or C++.
 *
 * Versioning: DNJ_ABI_VERSION_* name the ABI this header describes;
 * dnj_abi_version() reports the ABI of the linked library. Compare the
 * two at startup to detect a skew. The policy (README "Public API"):
 * minor bumps are additive (new functions only); any change to an
 * existing signature, struct layout, enum value, or ownership rule bumps
 * the major version.
 *
 * Ownership: output buffers (dnj_buffer_t, dnj_image_t) are allocated by
 * the library and released by the matching *_free function — never by the
 * caller's allocator. Input pointers are borrowed for the duration of the
 * call only. Handles are released with their *_free function; all *_free
 * functions accept NULL.
 *
 * Thread-safety: a session may be shared across threads (codec state is
 * per-thread inside the library), except that dnj_last_error() reflects
 * the most recent failing call on that session from ANY thread — callers
 * that need a precise message per call should serialize, or rely on the
 * status code alone. A designer must be confined to one thread.
 *
 * Minimal round trip:
 *
 *   dnj_session_t* s = dnj_session_new();
 *   dnj_buffer_t jpeg = {0};
 *   if (dnj_encode(s, pixels, w, h, 1, NULL, &jpeg) == DNJ_OK) {
 *     dnj_image_t back = {0};
 *     dnj_decode(s, jpeg.data, jpeg.size, &back);
 *     dnj_image_free(&back);
 *     dnj_buffer_free(&jpeg);
 *   }
 *   dnj_session_free(s);
 */
#ifndef DNJ_C_H_
#define DNJ_C_H_

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

/* ------------------------------------------------------------- version */

#define DNJ_ABI_VERSION_MAJOR 1
#define DNJ_ABI_VERSION_MINOR 4
#define DNJ_ABI_VERSION ((uint32_t)((DNJ_ABI_VERSION_MAJOR << 16) | DNJ_ABI_VERSION_MINOR))

/* ABI version of the linked library: (major << 16) | minor. */
uint32_t dnj_abi_version(void);

/* -------------------------------------------------------------- status */

/* Mirrors dnj::api::StatusCode value-for-value (pinned by static_asserts
 * in the implementation). */
typedef enum dnj_status_t {
  DNJ_OK = 0,
  DNJ_INVALID_ARGUMENT = 1,
  DNJ_DECODE_ERROR = 2,
  DNJ_REJECTED = 3,
  DNJ_SHUTDOWN = 4,
  DNJ_INTERNAL = 5
} dnj_status_t;

/* Stable lowercase identifier ("ok", "invalid_argument", ...). Never
 * NULL, even for out-of-range values. */
const char* dnj_status_name(dnj_status_t status);

/* ------------------------------------------------------------- buffers */

/* A library-owned byte buffer handed to the caller. Zero-initialize, pass
 * to an API call, release with dnj_buffer_free. */
typedef struct dnj_buffer_t {
  uint8_t* data;
  size_t size;
} dnj_buffer_t;

void dnj_buffer_free(dnj_buffer_t* buffer);

/* A library-owned decoded image: interleaved 8-bit pixels, channels 1
 * (gray) or 3 (RGB). Release with dnj_image_free. */
typedef struct dnj_image_t {
  uint8_t* pixels; /* width * height * channels bytes */
  int32_t width;
  int32_t height;
  int32_t channels;
} dnj_image_t;

void dnj_image_free(dnj_image_t* image);

/* ------------------------------------------------------------- options */

/* Opaque encoder-options builder. NULL is accepted everywhere a
 * dnj_options_t* is taken and means "defaults" (quality 75, Annex K
 * tables, 4:2:0 subsampling). */
typedef struct dnj_options_t dnj_options_t;

dnj_options_t* dnj_options_new(void);
void dnj_options_free(dnj_options_t* options);

/* Setters store the value; range validation happens at the call that
 * uses the options (so the error is attributable to the operation). */
dnj_status_t dnj_options_set_quality(dnj_options_t* options, int32_t quality);
/* 64 natural-order (row-major) steps per table; steps clamp into [1, 65535]. */
dnj_status_t dnj_options_set_tables(dnj_options_t* options, const uint16_t luma[64],
                                    const uint16_t chroma[64]);
dnj_status_t dnj_options_set_chroma_420(dnj_options_t* options, int32_t on);
dnj_status_t dnj_options_set_optimize_huffman(dnj_options_t* options, int32_t on);
dnj_status_t dnj_options_set_restart_interval(dnj_options_t* options, int32_t mcus);
dnj_status_t dnj_options_set_comment(dnj_options_t* options, const char* text);

/* Digest of the canonical options serialization — equal digests mean the
 * same encode computation (the serve layer's cache/batch key). */
uint64_t dnj_options_digest(const dnj_options_t* options);

/* ------------------------------------------------------------- session */

typedef struct dnj_session_t dnj_session_t;

dnj_session_t* dnj_session_new(void);
void dnj_session_free(dnj_session_t* session);

/* Message of the most recent failing call on this session ("" if none).
 * The pointer stays valid until the next failing call on the session. */
const char* dnj_last_error(const dnj_session_t* session);

/* Encodes interleaved 8-bit pixels (read in place, zero-copy) to a
 * complete JFIF stream in *out. */
dnj_status_t dnj_encode(dnj_session_t* session, const uint8_t* pixels, int32_t width,
                        int32_t height, int32_t channels, const dnj_options_t* options,
                        dnj_buffer_t* out);

/* Decodes a JFIF stream into *out. */
dnj_status_t dnj_decode(dnj_session_t* session, const uint8_t* bytes, size_t size,
                        dnj_image_t* out);

/* Decode + re-encode under `options` (byte-identical to decode followed
 * by encode of the decoded pixels). */
dnj_status_t dnj_transcode(dnj_session_t* session, const uint8_t* bytes, size_t size,
                           const dnj_options_t* options, dnj_buffer_t* out);

/* ------------------------------------------------------------ registry */

/* Opaque multi-tenant table registry: names tenants and maps each to an
 * immutable encoder configuration (base quantization tables + options +
 * an optional result-cache byte quota). Share one registry across servers
 * by passing it to dnj_server_new_with_registry. Thread-safe; updates are
 * versioned, and requests in flight keep the tenant snapshot they
 * resolved at submission. Added in ABI 1.2. */
typedef struct dnj_registry_t dnj_registry_t;

dnj_registry_t* dnj_registry_new(void);
void dnj_registry_free(dnj_registry_t* registry);

/* Message of the most recent failing call on this registry ("" if none). */
const char* dnj_registry_last_error(const dnj_registry_t* registry);

/* Registers (or replaces) tenant `name` with `options` as its base
 * configuration (NULL = defaults; a registration without custom tables is
 * materialized with the Annex K pair) and `quota_bytes` as its
 * result-cache byte quota (0 = none). *out_version (optional) receives
 * the published registry version. */
dnj_status_t dnj_registry_put(dnj_registry_t* registry, const char* name,
                              const dnj_options_t* options, size_t quota_bytes,
                              uint64_t* out_version);

/* Unregisters `name` (DNJ_INVALID_ARGUMENT when unknown). */
dnj_status_t dnj_registry_remove(dnj_registry_t* registry, const char* name);

/* Looks `name` up; *out_version / *out_quota_bytes (each optional)
 * receive the tenant's published version and quota. */
dnj_status_t dnj_registry_get(dnj_registry_t* registry, const char* name,
                              uint64_t* out_version, size_t* out_quota_bytes);

/* Number of registered tenants (0 for NULL). */
size_t dnj_registry_count(const dnj_registry_t* registry);

/* Writes into `out_options` the exact encoder options a deepn encode of
 * (name, quality) runs under: the tenant's configuration with its tables
 * IJG-scaled to `quality` in [1, 100] (50 = base tables verbatim).
 * Encoding with these options reproduces the served payload bit for bit. */
dnj_status_t dnj_registry_encode_options(dnj_registry_t* registry, const char* name,
                                         int32_t quality, dnj_options_t* out_options);

/* -------------------------------------------------------------- server */

/* Opaque network server: an asynchronous transcode service (worker pool,
 * bounded queue, micro-batching, result cache) fronted by the TCP
 * protocol in docs/PROTOCOL.md. Added in ABI 1.1. */
typedef struct dnj_server_t dnj_server_t;

/* Creates a stopped server. `workers` <= 0 and `queue_capacity` == 0 pick
 * the library defaults. `reject_when_full` != 0 answers a full queue with
 * a typed DNJ_REJECTED response (recommended for network use — see
 * docs/OPERATIONS.md) instead of applying TCP backpressure. */
dnj_server_t* dnj_server_new(int32_t workers, size_t queue_capacity,
                             int32_t reject_when_full);

/* Like dnj_server_new, but the server resolves tenant-named requests
 * against `registry` (borrowed for construction only: the underlying
 * registry is shared, so the caller may free the handle — or keep it and
 * update tenants live). NULL registry behaves like dnj_server_new. Added
 * in ABI 1.2. */
dnj_server_t* dnj_server_new_with_registry(int32_t workers, size_t queue_capacity,
                                           int32_t reject_when_full,
                                           dnj_registry_t* registry);

void dnj_server_free(dnj_server_t* server);

/* Message of the most recent failing call on this server ("" if none). */
const char* dnj_server_last_error(const dnj_server_t* server);

/* Binds host:port (host NULL = "127.0.0.1", port 0 = ephemeral) and
 * starts serving. *out_port (optional) receives the bound port. */
dnj_status_t dnj_server_listen(dnj_server_t* server, const char* host, uint16_t port,
                               uint16_t* out_port);

/* The bound port while listening, -1 otherwise. */
int32_t dnj_server_port(const dnj_server_t* server);

/* Graceful stop: stop accepting, drain in-flight requests, flush
 * responses, close. Idempotent; implied by dnj_server_free. */
void dnj_server_stop(dnj_server_t* server);

/* Renders the server's unified metrics plane (service + network front
 * end) as Prometheus text exposition into *out (UTF-8, released with
 * dnj_buffer_free). Works whether or not the server is listening — the
 * same document a wire kStats request returns. Added in ABI 1.3. */
dnj_status_t dnj_server_metrics_text(dnj_server_t* server, dnj_buffer_t* out);

/* Dumps the recorded request spans as a JSON document into *out
 * (tools/trace2chrome.py converts it for chrome://tracing). Spans are
 * recorded only while tracing is sampled — set DNJ_TRACE_SAMPLE, see
 * docs/OPERATIONS.md "Observability". Added in ABI 1.3. */
dnj_status_t dnj_server_trace_dump(dnj_server_t* server, dnj_buffer_t* out);

/* ------------------------------------------------------------ designer */

/* Opaque DeepN-JPEG table designer: add a representative image sample,
 * then design. Confine to one thread. */
typedef struct dnj_designer_t dnj_designer_t;

dnj_designer_t* dnj_designer_new(void);
void dnj_designer_free(dnj_designer_t* designer);

/* Adds one image (pixels are copied). `label` is the image's class id
 * (>= 0); pass 0 when unlabeled. */
dnj_status_t dnj_designer_add(dnj_designer_t* designer, const uint8_t* pixels,
                              int32_t width, int32_t height, int32_t channels,
                              int32_t label);

/* Runs the design flow; writes the 64 natural-order steps of the designed
 * quantization table into out_table. */
dnj_status_t dnj_designer_design(dnj_designer_t* designer, uint16_t out_table[64]);

/* Convenience: design and install the result into `options` (designed
 * table on luma and chroma, 4:4:4 subsampling — the paper's deployment
 * configuration). */
dnj_status_t dnj_designer_design_options(dnj_designer_t* designer,
                                         dnj_options_t* options);

/* Message of the most recent failing call on this designer ("" if none).
 * Added in ABI 1.4. */
const char* dnj_designer_last_error(const dnj_designer_t* designer);

/* -------------------------------------------------- design jobs (1.4) */

/* Async, rate-controlled design jobs over the designer's accumulated
 * sample: frequency analysis, simulated-annealing refinement with
 * periodic checkpoints, then a binary search for the quality meeting a
 * mean bytes-per-image target. Jobs run on the designer's private worker
 * thread; submit returns immediately and the designer stays usable
 * (including adding more images for a later job). Job ids are local to
 * the designer handle. Added in ABI 1.4. */

/* Mirrors dnj::api::DesignJobState value-for-value (pinned by
 * static_asserts in the implementation). Terminal states are COMPLETED /
 * FAILED / CANCELLED; PAUSED is resumable via the result checkpoint. */
typedef enum dnj_job_state_t {
  DNJ_JOB_QUEUED = 0,
  DNJ_JOB_RUNNING = 1,
  DNJ_JOB_PAUSED = 2,
  DNJ_JOB_COMPLETED = 3,
  DNJ_JOB_FAILED = 4,
  DNJ_JOB_CANCELLED = 5
} dnj_job_state_t;

/* Stable lowercase identifier ("queued", "running", ...); never NULL. */
const char* dnj_job_state_name(dnj_job_state_t state);

/* Plain value snapshot of a job — no allocation, nothing to free. */
typedef struct dnj_job_status_t {
  uint64_t id;
  int32_t state;          /* dnj_job_state_t */
  double progress;        /* coarse fraction in [0, 1] */
  uint32_t sa_iteration;  /* SA iterations completed */
  uint32_t sa_total;
  double target_bytes;    /* requested mean bytes/image (0 = uncontrolled) */
  double achieved_bytes;  /* measured mean bytes/image at the chosen quality */
  double rate_error;      /* |achieved - target| / target (0 when no target) */
  uint32_t checkpoints;   /* optimizer snapshots taken so far */
  uint32_t rungs;         /* quality-ladder entries registered so far */
} dnj_job_status_t;

/* Submits a design job. `tenant` NULL = "designer" (the name designed
 * tables would be registered under when the designer is wired to a
 * registry). `target_bytes_per_image` 0 disables rate control.
 * `sa_iterations` <= 0 picks the library default (400). `anneal_limit`
 * > 0 parks the job in DNJ_JOB_PAUSED at exactly that SA iteration.
 * `checkpoint`/`checkpoint_size` resume a prior job's state (NULL/0 =
 * fresh run). *out_job_id receives the id. A full job queue returns
 * DNJ_REJECTED. */
dnj_status_t dnj_job_submit(dnj_designer_t* designer, const char* tenant,
                            double target_bytes_per_image, int32_t sa_iterations,
                            int32_t anneal_limit, const uint8_t* checkpoint,
                            size_t checkpoint_size, uint64_t* out_job_id);

/* Snapshot of a job (safe while it runs). Unknown ids return
 * DNJ_INVALID_ARGUMENT. */
dnj_status_t dnj_job_status(dnj_designer_t* designer, uint64_t job_id,
                            dnj_job_status_t* out);

/* Blocks until the job leaves QUEUED/RUNNING, then fills *out (optional). */
dnj_status_t dnj_job_wait(dnj_designer_t* designer, uint64_t job_id,
                          dnj_job_status_t* out);

/* Requests cancellation (idempotent; running jobs stop at the next
 * checkpoint boundary, keeping their latest checkpoint). */
dnj_status_t dnj_job_cancel(dnj_designer_t* designer, uint64_t job_id);

/* Result of a COMPLETED or PAUSED job: the 64 natural-order steps of the
 * annealed table into out_table, the rate-search quality into
 * *out_quality, the achieved mean bytes/image into *out_achieved_bytes,
 * and the resume checkpoint into *out_checkpoint (released with
 * dnj_buffer_free). Every output is optional (NULL = skip). Returns
 * DNJ_REJECTED while the job is still queued/running. */
dnj_status_t dnj_job_result(dnj_designer_t* designer, uint64_t job_id,
                            uint16_t out_table[64], int32_t* out_quality,
                            double* out_achieved_bytes, dnj_buffer_t* out_checkpoint);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* DNJ_C_H_ */
