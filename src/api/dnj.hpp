// dnj.hpp — umbrella header of the DeepN-JPEG public C++ API.
//
// This is the one include an embedder needs:
//
//   #include "api/dnj.hpp"
//
//   dnj::api::Session session;
//   auto jpeg = session.codec().encode(
//       dnj::api::ImageView{pixels, w, h, 1},
//       dnj::api::EncodeOptions().quality(90));
//
// Surface: Session/Codec/TableDesigner (synchronous, api/session.hpp),
// Service (asynchronous, api/service.hpp), Registry (multi-tenant table
// registry, api/registry.hpp), the Status/Result error model
// (api/status.hpp), and the value types/builders (api/types.hpp). The C
// ABI lives in api/dnj_c.h. Stability policy: see README "Public API".
//
// Everything below api/ is internal and may change at any time; consumers
// of this header are insulated from those changes.
#pragma once

#include "api/registry.hpp"
#include "api/service.hpp"
#include "api/session.hpp"
#include "api/status.hpp"
#include "api/types.hpp"
