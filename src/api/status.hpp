// Status/Result error model of the public API (dnj::api).
//
// Every public entry point is a total function: internal exceptions are
// caught at the API boundary and come back as a typed `Status`, never as a
// throw (and never across the C ABI — see dnj_c.h, whose dnj_status_t
// values mirror StatusCode one to one; static_asserts in dnj_c.cpp pin the
// correspondence). The codes extend the serving layer's established
// kRejected / kShutdown / kError taxonomy with the boundary-validation
// cases a public surface needs:
//
//   kOk              — success
//   kInvalidArgument — the caller's inputs are malformed: null/empty views,
//                      dimensions outside [1, 65535], channels not 1 or 3,
//                      quality outside [1, 100], negative restart interval
//   kDecodeError     — the input bytes are not a decodable JFIF stream
//                      (truncated, garbage, or unsupported features)
//   kRejected        — async service only: queue full under reject policy
//   kShutdown        — async service only: submitted after shutdown began
//   kInternal        — an unexpected internal failure; message carries the
//                      underlying exception text
//
// This header depends only on the standard library.
#pragma once

#include <optional>
#include <string>
#include <utility>

namespace dnj::api {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kDecodeError = 2,
  kRejected = 3,
  kShutdown = 4,
  kInternal = 5,
};

/// Stable lowercase identifier ("ok", "invalid_argument", ...), suitable
/// for logs and metrics labels.
const char* status_code_name(StatusCode code);

/// A status code plus a human-readable message (empty on success).
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status success() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }
  const char* code_name() const { return status_code_name(code_); }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A Status or a value — the return type of every value-producing API
/// call. `ok()` implies `value()` is valid; a non-ok Result holds no value.
template <typename T>
class Result {
 public:
  /*implicit*/ Result(Status status) : status_(std::move(status)) {}
  /*implicit*/ Result(T value) : value_(std::move(value)) {}

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() { return *value_; }
  const T& value() const { return *value_; }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

  /// Moves the value out (call at most once, only when ok()).
  T take() { return std::move(*value_); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace dnj::api
