// Async façade: the public view over the serving layer (serve::
// TranscodeService) with the API's Status taxonomy and zero-copy-in,
// owned-out types.
//
//   Service service(ServiceOptions().workers(4));
//   Pending p = service.encode(view, EncodeOptions().quality(85));
//   ServiceReply r = p.get();            // blocks; never throws
//   if (r.status.ok()) use(r.bytes);
//
// Inputs are copied into the owned request at submission (the request
// outlives the caller's buffers inside the queue); replies carry owned
// payloads. Payloads are bit-identical to the synchronous Codec calls —
// the serving determinism contract, re-pinned through this façade by
// tests/test_api.cpp. Submission after shutdown() yields kShutdown;
// a full queue under the reject policy yields kRejected.
//
// Standard-library-only header (pimpl over the serve layer).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <optional>

#include "api/registry.hpp"
#include "api/status.hpp"
#include "api/types.hpp"

namespace dnj::api {

/// Builder-style service configuration (a curated subset of the serve
/// layer's ServiceConfig; the taxonomy of knobs is documented there).
class ServiceOptions {
 public:
  ServiceOptions& workers(int n) {
    workers_ = n;
    return *this;
  }
  ServiceOptions& queue_capacity(std::size_t n) {
    queue_capacity_ = n;
    return *this;
  }
  /// true: a full queue rejects (typed kRejected) instead of blocking.
  ServiceOptions& reject_when_full(bool on) {
    reject_when_full_ = on;
    return *this;
  }
  /// Largest micro-batch a worker drains per pop (1 disables batching).
  ServiceOptions& max_batch(int n) {
    max_batch_ = n;
    return *this;
  }
  /// Result-cache entries (0 disables the result cache).
  ServiceOptions& result_cache(std::size_t entries) {
    result_cache_ = entries;
    return *this;
  }
  /// Result-cache byte ceiling across all entries (0 = entry count only).
  ServiceOptions& cache_max_bytes(std::size_t bytes) {
    cache_max_bytes_ = bytes;
    return *this;
  }
  /// Per-tenant result-cache byte quota (0 = none): an over-quota tenant
  /// evicts its own least-recently-used entries, never other tenants'.
  ServiceOptions& tenant_quota_bytes(std::size_t bytes) {
    tenant_quota_bytes_ = bytes;
    return *this;
  }
  /// Scaled-table cache entries per worker for deepn_encode (0 disables).
  ServiceOptions& table_cache(std::size_t entries) {
    table_cache_ = entries;
    return *this;
  }
  /// Digest-affinity sharding: route requests to per-worker sub-queues by
  /// config digest so worker caches stay warm per configuration. Pure
  /// scheduling — payloads are bit-identical either way. Default on.
  ServiceOptions& shard_by_digest(bool on) {
    shard_by_digest_ = on;
    return *this;
  }
  /// Work stealing between shards (idle worker takes from the fullest
  /// foreign sub-queue). Default on.
  ServiceOptions& steal(bool on) {
    steal_ = on;
    return *this;
  }
  /// The tenant registry deepn_encode resolves names against. Omitted =
  /// the service creates a private one (reachable via Service::registry());
  /// pass one Registry to several services to share a tenant set.
  ServiceOptions& registry(Registry r) {
    registry_ = std::move(r);
    return *this;
  }
  /// Design-job workers: threads dedicated to the long-running design jobs
  /// behind the wire's v3 job ops, so a 400-iteration anneal never starves
  /// transcode latency. 0 disables the job subsystem (job ops answer with
  /// a typed kInternal error).
  ServiceOptions& design_workers(int n) {
    design_workers_ = n;
    return *this;
  }
  /// Max queued + running design jobs; beyond it submissions are refused
  /// with a typed kRejected.
  ServiceOptions& design_queue(std::size_t n) {
    design_queue_ = n;
    return *this;
  }
  /// SA iterations between automatic design-job checkpoints.
  ServiceOptions& design_checkpoint_interval(int n) {
    design_checkpoint_interval_ = n;
    return *this;
  }

  int workers() const { return workers_; }
  std::size_t queue_capacity() const { return queue_capacity_; }
  bool reject_when_full() const { return reject_when_full_; }
  int max_batch() const { return max_batch_; }
  std::size_t result_cache() const { return result_cache_; }
  std::size_t cache_max_bytes() const { return cache_max_bytes_; }
  std::size_t tenant_quota_bytes() const { return tenant_quota_bytes_; }
  std::size_t table_cache() const { return table_cache_; }
  bool shard_by_digest() const { return shard_by_digest_; }
  bool steal() const { return steal_; }
  const std::optional<Registry>& registry() const { return registry_; }
  int design_workers() const { return design_workers_; }
  std::size_t design_queue() const { return design_queue_; }
  int design_checkpoint_interval() const { return design_checkpoint_interval_; }

 private:
  int workers_ = 2;
  std::size_t queue_capacity_ = 256;
  bool reject_when_full_ = false;
  int max_batch_ = 8;
  std::size_t result_cache_ = 256;
  std::size_t cache_max_bytes_ = 0;
  std::size_t tenant_quota_bytes_ = 0;
  std::size_t table_cache_ = 16;
  bool shard_by_digest_ = true;
  bool steal_ = true;
  std::optional<Registry> registry_;
  int design_workers_ = 1;
  std::size_t design_queue_ = 8;
  int design_checkpoint_interval_ = 64;
};

/// Builder-style configuration for the TCP front end (src/net). Tuning
/// guidance lives in docs/OPERATIONS.md; the wire format in
/// docs/PROTOCOL.md.
class ListenOptions {
 public:
  ListenOptions& host(std::string h) {
    host_ = std::move(h);
    return *this;
  }
  /// 0 = ephemeral; read the bound port from Service::listen_port().
  ListenOptions& port(std::uint16_t p) {
    port_ = p;
    return *this;
  }
  /// Accepted-connection cap; surplus connections are refused with a typed
  /// kRejected frame.
  ListenOptions& max_connections(int n) {
    max_connections_ = n;
    return *this;
  }
  /// Idle connections are closed after this long (0 disables).
  ListenOptions& idle_timeout_ms(int ms) {
    idle_timeout_ms_ = ms;
    return *this;
  }

  const std::string& host() const { return host_; }
  std::uint16_t port() const { return port_; }
  int max_connections() const { return max_connections_; }
  int idle_timeout_ms() const { return idle_timeout_ms_; }

 private:
  std::string host_ = "127.0.0.1";
  std::uint16_t port_ = 0;
  int max_connections_ = 64;
  int idle_timeout_ms_ = 30000;
};

/// One fulfilled service reply. Exactly one payload field is populated on
/// success, matching the operation submitted. The observability fields
/// describe scheduling, never the payload (which is deterministic).
struct ServiceReply {
  Status status;
  std::vector<std::uint8_t> bytes;  ///< encode / transcode result
  DecodedImage image;               ///< decode result
  bool cache_hit = false;
  int batch_size = 0;       ///< size of the micro-batch this rode in
  double queue_us = 0.0;    ///< submission -> worker pickup
  double service_us = 0.0;  ///< worker pickup -> completion
};

/// Handle on one in-flight submission. get() blocks until the reply is
/// ready and may be called once; it never throws. Move-only.
class Pending {
 public:
  Pending();
  ~Pending();
  Pending(Pending&&) noexcept;
  Pending& operator=(Pending&&) noexcept;
  Pending(const Pending&) = delete;
  Pending& operator=(const Pending&) = delete;

  /// True until get() consumes the reply.
  bool valid() const;

  /// Waits for and returns the reply (kInternal reply if !valid()).
  ServiceReply get();

 private:
  friend class Service;
  struct State;
  explicit Pending(std::unique_ptr<State> state);
  std::unique_ptr<State> state_;
};

/// Per-tenant slice of the service counters (named registry tenants only).
struct TenantMetrics {
  std::string name;
  std::uint64_t requests = 0;
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t table_cache_hits = 0;
  double service_p50_us = 0.0;
  double service_p99_us = 0.0;
};

/// Point-in-time service counters + merged latency quantiles (µs).
struct ServiceMetrics {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t errors = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_bytes = 0;            ///< recorded result-cache payload total
  std::uint64_t cache_quota_evictions = 0;  ///< evictions forced by tenant quotas
  std::uint64_t table_cache_hits = 0;       ///< summed over per-worker table LRUs
  std::uint64_t batches = 0;
  std::uint64_t max_batch = 0;
  std::uint64_t shard_count = 0;  ///< submission-queue shards (1 = unsharded)
  std::uint64_t steals = 0;       ///< pops served from a foreign shard
  double total_p50_us = 0.0;
  double total_p95_us = 0.0;
  double total_p99_us = 0.0;
  std::vector<TenantMetrics> tenants;  ///< sorted by name
};

class Service {
 public:
  explicit Service(const ServiceOptions& options = {});
  ~Service();  ///< shuts down: drains accepted work, joins workers
  Service(Service&&) noexcept;
  Service& operator=(Service&&) noexcept;
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Submit asynchronous work. Invalid inputs come back as an
  /// already-fulfilled kInvalidArgument reply — submission never throws.
  Pending encode(ImageView image, const EncodeOptions& options = {});
  Pending decode(ByteSpan stream);
  Pending transcode(ByteSpan stream, const EncodeOptions& options = {});

  /// Encodes under tenant `tenant`'s registered table pair, IJG-scaled to
  /// `quality` (50 = the tenant's base tables verbatim). The payload is
  /// bit-identical to a synchronous Codec::encode under
  /// Registry::encode_options_for(tenant, quality). A name the registry
  /// does not know yields a kInternal reply (resolution happens at
  /// submission, pinning that tenant generation for the request).
  Pending deepn_encode(ImageView image, const std::string& tenant, int quality);

  /// The registry deepn_encode resolves tenant names against — the one
  /// from ServiceOptions, or the service-private one. The returned handle
  /// shares the underlying registry: put()/remove() through it are live
  /// immediately for subsequent submissions.
  Registry registry() const;

  ServiceMetrics metrics() const;

  /// The unified metrics plane rendered as Prometheus text exposition —
  /// every counter ServiceMetrics exposes (and the net front end's, when
  /// listening), one scrape. The same document a kStats wire request
  /// returns (docs/PROTOCOL.md).
  std::string metrics_text() const;

  /// The span-tracer ring contents as a JSON document
  /// (tools/trace2chrome.py converts it for chrome://tracing). Tracing is
  /// off unless DNJ_TRACE_SAMPLE is set; see docs/OPERATIONS.md.
  std::string dump_trace() const;

  /// Starts the TCP front end (src/net, wire format in docs/PROTOCOL.md)
  /// over this service. Network responses are byte-identical to the
  /// in-process calls above — the determinism contract crosses the wire.
  /// One listener per Service; a second listen() without stop_listening()
  /// fails. Returns success or a kInternal status describing the bind
  /// failure.
  Status listen(const ListenOptions& options = {});

  /// The bound TCP port (the ephemeral answer) while listening, else -1.
  int listen_port() const;

  /// Drains and closes the listener: stop accepting, let in-flight
  /// requests complete and flush, close connections. Idempotent; implied
  /// by shutdown() and destruction.
  void stop_listening();

  /// Graceful shutdown: stop the listener first (if any), then refuse new
  /// work (kShutdown), drain accepted work, join workers. Idempotent; the
  /// destructor calls it.
  void shutdown();

 private:
  static Pending immediate(Status status);
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace dnj::api
