// Primitive layers: convolution (im2col + GEMM), pooling, ReLU, flatten,
// dense, batch normalization. All layers cache what they need for the
// backward pass when forward is called with train == true.
#pragma once

#include <cstdint>
#include <random>

#include "nn/layer.hpp"

namespace dnj::nn {

/// Deterministic He-normal initializer used by every parameterized layer.
void he_normal_init(std::vector<float>& w, int fan_in, std::mt19937_64& rng);

/// 2D convolution with square kernel, stride and symmetric zero padding.
class Conv2D final : public Layer {
 public:
  Conv2D(int in_channels, int out_channels, int kernel, int stride, int pad,
         std::mt19937_64& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& dy) override;
  void collect_params(std::vector<ParamRef>& out) override;
  std::string name() const override { return "Conv2D"; }

  int in_channels() const { return in_c_; }
  int out_channels() const { return out_c_; }

  std::vector<float>& weights() { return w_; }
  std::vector<float>& bias() { return b_; }

 private:
  int out_dim(int in, int /*axis*/) const { return (in + 2 * pad_ - k_) / stride_ + 1; }
  void im2col(const float* src, int h, int w, float* col) const;
  void col2im(const float* col, int h, int w, float* dst) const;

  int in_c_, out_c_, k_, stride_, pad_;
  std::vector<float> w_, b_, dw_, db_;
  // Cached forward state (train mode).
  Tensor x_cache_;
  std::vector<std::vector<float>> cols_;
  int in_h_ = 0, in_w_ = 0, out_h_ = 0, out_w_ = 0;
};

/// Max pooling with square window and equal stride.
class MaxPool2D final : public Layer {
 public:
  explicit MaxPool2D(int kernel = 2, int stride = 2);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& dy) override;
  std::string name() const override { return "MaxPool2D"; }

 private:
  int k_, stride_;
  Tensor x_shape_ref_;                // zero tensor recording input geometry
  std::vector<std::int32_t> argmax_;  // flat input index per output element
};

/// Global average pooling: (N, C, H, W) -> (N, C, 1, 1).
class GlobalAvgPool final : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& dy) override;
  std::string name() const override { return "GlobalAvgPool"; }

 private:
  int in_h_ = 0, in_w_ = 0;
};

class ReLU final : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& dy) override;
  std::string name() const override { return "ReLU"; }

 private:
  std::vector<std::uint8_t> mask_;
};

/// (N, C, H, W) -> (N, C*H*W, 1, 1).
class Flatten final : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& dy) override;
  std::string name() const override { return "Flatten"; }

 private:
  int c_ = 0, h_ = 0, w_ = 0;
};

/// Fully connected layer over the per-sample feature vector.
class Dense final : public Layer {
 public:
  Dense(int in_features, int out_features, std::mt19937_64& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& dy) override;
  void collect_params(std::vector<ParamRef>& out) override;
  std::string name() const override { return "Dense"; }

  std::vector<float>& weights() { return w_; }

 private:
  int in_f_, out_f_;
  std::vector<float> w_, b_, dw_, db_;
  Tensor x_cache_;
};

/// Per-channel batch normalization over (N, H, W) with running statistics
/// for inference.
class BatchNorm2D final : public Layer {
 public:
  explicit BatchNorm2D(int channels, float momentum = 0.9f, float eps = 1e-5f);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& dy) override;
  void collect_params(std::vector<ParamRef>& out) override;
  std::string name() const override { return "BatchNorm2D"; }

 private:
  int c_;
  float momentum_, eps_;
  std::vector<float> gamma_, beta_, dgamma_, dbeta_;
  std::vector<float> running_mean_, running_var_;
  // Cached normalized activations and batch stats for backward.
  Tensor x_hat_;
  std::vector<float> batch_inv_std_;
};

}  // namespace dnj::nn
