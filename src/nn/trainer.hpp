// Training loop and evaluation utilities: dataset-to-tensor conversion,
// minibatch SGD with per-epoch shuffling, accuracy metrics, and single-image
// prediction (used by the Fig. 3 junco/robin experiment).
#pragma once

#include <cstdint>

#include "data/dataset.hpp"
#include "nn/layer.hpp"
#include "nn/optimizer.hpp"

namespace dnj::nn {

struct TrainConfig {
  int epochs = 10;
  int batch_size = 32;
  float lr = 0.02f;
  float lr_decay = 0.95f;  ///< multiplicative per-epoch decay
  float momentum = 0.9f;
  float weight_decay = 1e-4f;
  std::uint64_t seed = 0x7124EBull;
  bool verbose = false;
  /// Threads for batch packing and the per-sample layer loops (see
  /// runtime/parallel.hpp). 0 = DNJ_THREADS / hardware default, 1 =
  /// serial. Sample-level work writes disjoint slots, so training is
  /// bit-identical at every thread count.
  int num_threads = 0;
};

struct EpochStats {
  int epoch = 0;
  double train_loss = 0.0;
  double train_acc = 0.0;
  double test_acc = 0.0;  ///< NaN when no test set was supplied
};

/// Pixel normalization applied before the first layer: (p - 127.5) / 64.
float normalize_pixel(std::uint8_t p);

/// Packs the samples at `indices` into an NCHW batch tensor. Samples are
/// packed in parallel (disjoint tensor slices, so bit-identical at any
/// thread count).
Tensor to_batch(const data::Dataset& ds, const std::vector<int>& indices, int num_threads = 0);

/// Labels of the samples at `indices`.
std::vector<int> batch_labels(const data::Dataset& ds, const std::vector<int>& indices);

/// Trains `model` on `train_set`; when `test_set` is non-null, records test
/// accuracy after every epoch (the paper's Fig. 2(b) plots exactly this).
std::vector<EpochStats> train(Layer& model, const data::Dataset& train_set,
                              const data::Dataset* test_set, const TrainConfig& config);

/// Top-1 accuracy of `model` on `ds`.
double evaluate(Layer& model, const data::Dataset& ds, int batch_size = 64,
                int num_threads = 0);

/// Class probabilities for one image.
std::vector<float> predict_probs(Layer& model, const image::Image& img);

/// Argmax class for one image.
int predict_label(Layer& model, const image::Image& img);

}  // namespace dnj::nn
