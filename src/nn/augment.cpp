#include "nn/augment.hpp"

#include <algorithm>
#include <random>

namespace dnj::nn {

namespace {

std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

image::Image augment_image(const image::Image& img, const AugmentConfig& config,
                           std::uint64_t sample_index) {
  std::mt19937_64 rng(mix(config.seed ^ mix(sample_index)));
  const int dx = config.max_shift > 0
                     ? std::uniform_int_distribution<int>(-config.max_shift, config.max_shift)(rng)
                     : 0;
  const int dy = config.max_shift > 0
                     ? std::uniform_int_distribution<int>(-config.max_shift, config.max_shift)(rng)
                     : 0;
  const bool flip = config.horizontal_flip && (rng() & 1);
  const float bright =
      config.brightness_jitter > 0.0f
          ? std::uniform_real_distribution<float>(-config.brightness_jitter,
                                                  config.brightness_jitter)(rng)
          : 0.0f;

  image::Image out(img.width(), img.height(), img.channels());
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      int sx = std::clamp(x + dx, 0, img.width() - 1);
      const int sy = std::clamp(y + dy, 0, img.height() - 1);
      if (flip) sx = img.width() - 1 - sx;
      for (int c = 0; c < img.channels(); ++c)
        out.at(x, y, c) =
            image::clamp_u8(static_cast<float>(img.at(sx, sy, c)) + bright);
    }
  }
  return out;
}

data::Dataset augment_dataset(const data::Dataset& ds, const AugmentConfig& config,
                              std::uint64_t epoch) {
  data::Dataset out;
  out.num_classes = ds.num_classes;
  out.samples.reserve(ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i)
    out.samples.push_back({augment_image(ds.samples[i].image, config,
                                         epoch * 0x100000ULL + i),
                           ds.samples[i].label});
  return out;
}

}  // namespace dnj::nn
