#include "nn/optimizer.hpp"

namespace dnj::nn {

Sgd::Sgd(Layer& model, const SgdConfig& config) : config_(config) {
  model.collect_params(params_);
  velocity_.reserve(params_.size());
  for (const ParamRef& p : params_) velocity_.emplace_back(p.value->size(), 0.0f);
}

void Sgd::zero_grads() {
  for (ParamRef& p : params_) std::fill(p.grad->begin(), p.grad->end(), 0.0f);
}

void Sgd::step() {
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    std::vector<float>& w = *params_[pi].value;
    std::vector<float>& g = *params_[pi].grad;
    std::vector<float>& v = velocity_[pi];
    for (std::size_t i = 0; i < w.size(); ++i) {
      const float grad = g[i] + config_.weight_decay * w[i];
      v[i] = config_.momentum * v[i] - config_.lr * grad;
      w[i] += v[i];
    }
  }
}

}  // namespace dnj::nn
