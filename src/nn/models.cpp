#include "nn/models.hpp"

#include <stdexcept>

#include "nn/layers.hpp"

namespace dnj::nn {

namespace {

LayerPtr make_mini_alexnet(int in_c, int dim, int classes, std::mt19937_64& rng) {
  const int d4 = dim / 4;
  auto net = std::make_unique<Sequential>();
  net->emplace<Conv2D>(in_c, 12, 5, 1, 2, rng);
  net->emplace<ReLU>();
  net->emplace<MaxPool2D>(2, 2);
  net->emplace<Conv2D>(12, 24, 5, 1, 2, rng);
  net->emplace<ReLU>();
  net->emplace<MaxPool2D>(2, 2);
  net->emplace<Flatten>();
  net->emplace<Dense>(24 * d4 * d4, 96, rng);
  net->emplace<ReLU>();
  net->emplace<Dense>(96, classes, rng);
  return net;
}

LayerPtr make_mini_vgg(int in_c, int dim, int classes, std::mt19937_64& rng) {
  const int d4 = dim / 4;
  auto net = std::make_unique<Sequential>();
  net->emplace<Conv2D>(in_c, 12, 3, 1, 1, rng);
  net->emplace<ReLU>();
  net->emplace<Conv2D>(12, 12, 3, 1, 1, rng);
  net->emplace<ReLU>();
  net->emplace<MaxPool2D>(2, 2);
  net->emplace<Conv2D>(12, 24, 3, 1, 1, rng);
  net->emplace<ReLU>();
  net->emplace<Conv2D>(24, 24, 3, 1, 1, rng);
  net->emplace<ReLU>();
  net->emplace<MaxPool2D>(2, 2);
  net->emplace<Flatten>();
  net->emplace<Dense>(24 * d4 * d4, 96, rng);
  net->emplace<ReLU>();
  net->emplace<Dense>(96, classes, rng);
  return net;
}

LayerPtr make_mini_inception(int in_c, int dim, int classes, std::mt19937_64& rng) {
  const int d4 = dim / 4;
  auto net = std::make_unique<Sequential>();
  net->emplace<Conv2D>(in_c, 12, 3, 1, 1, rng);
  net->emplace<ReLU>();
  net->emplace<MaxPool2D>(2, 2);

  // Inception block: 1x1, 1x1->3x3, 1x1->5x5, and a 1x1 projection branch;
  // 8 + 12 + 6 + 6 = 32 output channels.
  std::vector<LayerPtr> branches;
  {
    auto b = std::make_unique<Sequential>();
    b->emplace<Conv2D>(12, 8, 1, 1, 0, rng);
    b->emplace<ReLU>();
    branches.push_back(std::move(b));
  }
  {
    auto b = std::make_unique<Sequential>();
    b->emplace<Conv2D>(12, 6, 1, 1, 0, rng);
    b->emplace<ReLU>();
    b->emplace<Conv2D>(6, 12, 3, 1, 1, rng);
    b->emplace<ReLU>();
    branches.push_back(std::move(b));
  }
  {
    auto b = std::make_unique<Sequential>();
    b->emplace<Conv2D>(12, 4, 1, 1, 0, rng);
    b->emplace<ReLU>();
    b->emplace<Conv2D>(4, 6, 5, 1, 2, rng);
    b->emplace<ReLU>();
    branches.push_back(std::move(b));
  }
  {
    auto b = std::make_unique<Sequential>();
    b->emplace<Conv2D>(12, 6, 1, 1, 0, rng);
    b->emplace<ReLU>();
    branches.push_back(std::move(b));
  }
  net->add(std::make_unique<InceptionBlock>(std::move(branches)));
  net->emplace<MaxPool2D>(2, 2);
  net->emplace<Flatten>();
  net->emplace<Dense>(32 * d4 * d4, 96, rng);
  net->emplace<ReLU>();
  net->emplace<Dense>(96, classes, rng);
  return net;
}

LayerPtr make_mini_resnet(int in_c, int dim, int classes, std::mt19937_64& rng) {
  (void)dim;
  auto net = std::make_unique<Sequential>();
  net->emplace<Conv2D>(in_c, 16, 3, 1, 1, rng);
  net->emplace<BatchNorm2D>(16);
  net->emplace<ReLU>();

  {
    auto body = std::make_unique<Sequential>();
    body->emplace<Conv2D>(16, 16, 3, 1, 1, rng);
    body->emplace<BatchNorm2D>(16);
    body->emplace<ReLU>();
    body->emplace<Conv2D>(16, 16, 3, 1, 1, rng);
    body->emplace<BatchNorm2D>(16);
    net->add(std::make_unique<ResidualBlock>(std::move(body), nullptr));
  }
  net->emplace<MaxPool2D>(2, 2);
  {
    auto body = std::make_unique<Sequential>();
    body->emplace<Conv2D>(16, 32, 3, 2, 1, rng);
    body->emplace<BatchNorm2D>(32);
    body->emplace<ReLU>();
    body->emplace<Conv2D>(32, 32, 3, 1, 1, rng);
    body->emplace<BatchNorm2D>(32);
    auto shortcut = std::make_unique<Sequential>();
    shortcut->emplace<Conv2D>(16, 32, 1, 2, 0, rng);
    shortcut->emplace<BatchNorm2D>(32);
    net->add(std::make_unique<ResidualBlock>(std::move(body), std::move(shortcut)));
  }
  net->emplace<GlobalAvgPool>();
  net->emplace<Flatten>();
  net->emplace<Dense>(32, classes, rng);
  return net;
}

}  // namespace

std::string model_name(ModelKind kind) {
  switch (kind) {
    case ModelKind::kMiniAlexNet: return "MiniAlexNet";
    case ModelKind::kMiniVGG: return "MiniVGG";
    case ModelKind::kMiniInception: return "MiniInception";
    case ModelKind::kMiniResNet: return "MiniResNet";
  }
  return "unknown";
}

LayerPtr make_model(ModelKind kind, int in_channels, int input_dim, int num_classes,
                    std::uint64_t seed) {
  if (input_dim % 4 != 0)
    throw std::invalid_argument("make_model: input_dim must be divisible by 4");
  if (num_classes < 2) throw std::invalid_argument("make_model: need at least 2 classes");
  std::mt19937_64 rng(seed);
  switch (kind) {
    case ModelKind::kMiniAlexNet:
      return make_mini_alexnet(in_channels, input_dim, num_classes, rng);
    case ModelKind::kMiniVGG:
      return make_mini_vgg(in_channels, input_dim, num_classes, rng);
    case ModelKind::kMiniInception:
      return make_mini_inception(in_channels, input_dim, num_classes, rng);
    case ModelKind::kMiniResNet:
      return make_mini_resnet(in_channels, input_dim, num_classes, rng);
  }
  throw std::invalid_argument("make_model: unknown kind");
}

}  // namespace dnj::nn
