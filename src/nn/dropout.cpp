#include "nn/dropout.hpp"

#include <stdexcept>

namespace dnj::nn {

Dropout::Dropout(float drop_prob, std::uint64_t seed) : drop_prob_(drop_prob), rng_(seed) {
  if (drop_prob < 0.0f || drop_prob >= 1.0f)
    throw std::invalid_argument("Dropout: drop_prob must be in [0, 1)");
}

Tensor Dropout::forward(const Tensor& x, bool train) {
  if (!train || drop_prob_ == 0.0f) return x;
  Tensor y = x;
  keep_mask_.assign(x.size(), 1);
  std::bernoulli_distribution drop(drop_prob_);
  const float scale = 1.0f / (1.0f - drop_prob_);
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (drop(rng_)) {
      y.data()[i] = 0.0f;
      keep_mask_[i] = 0;
    } else {
      y.data()[i] *= scale;
    }
  }
  return y;
}

Tensor Dropout::backward(const Tensor& dy) {
  if (keep_mask_.empty()) return dy;  // forward ran in eval mode
  Tensor dx = dy;
  const float scale = 1.0f / (1.0f - drop_prob_);
  for (std::size_t i = 0; i < dx.size(); ++i)
    dx.data()[i] = keep_mask_[i] ? dx.data()[i] * scale : 0.0f;
  return dx;
}

}  // namespace dnj::nn
