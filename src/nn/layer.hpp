// Layer interface. Composite layers (Sequential, ResidualBlock,
// InceptionBlock) implement the same interface, which is how the framework
// expresses the DAG topologies of GoogLeNet- and ResNet-style models while
// keeping a linear forward/backward protocol.
#pragma once

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace dnj::nn {

/// A trainable parameter: value and gradient share the same geometry.
struct ParamRef {
  std::vector<float>* value = nullptr;
  std::vector<float>* grad = nullptr;
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output. `train` enables behaviour that differs
  /// between training and inference (batch-norm statistics).
  virtual Tensor forward(const Tensor& x, bool train) = 0;

  /// Given dL/d(output), returns dL/d(input) and accumulates parameter
  /// gradients. Must be called after forward on the same input.
  virtual Tensor backward(const Tensor& dy) = 0;

  /// Appends this layer's trainable parameters.
  virtual void collect_params(std::vector<ParamRef>& out) { (void)out; }

  /// Sets all parameter gradients to zero.
  void zero_grads() {
    std::vector<ParamRef> ps;
    collect_params(ps);
    for (ParamRef& p : ps) std::fill(p.grad->begin(), p.grad->end(), 0.0f);
  }

  /// Total trainable scalar count.
  std::size_t param_count() {
    std::vector<ParamRef> ps;
    collect_params(ps);
    std::size_t total = 0;
    for (const ParamRef& p : ps) total += p.value->size();
    return total;
  }

  virtual std::string name() const = 0;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace dnj::nn
