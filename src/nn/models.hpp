// The four scaled-down architectures standing in for the paper's AlexNet,
// VGG-16, GoogLeNet and ResNet (Fig. 8 evaluates DeepN-JPEG across exactly
// these four architectural families). Each keeps the family's defining
// trait: plain stacked conv (AlexNet), deeper 3x3 pairs (VGG), parallel
// multi-scale branches (Inception), and residual shortcuts with batch norm
// (ResNet).
#pragma once

#include <cstdint>
#include <string>

#include "nn/composite.hpp"

namespace dnj::nn {

enum class ModelKind : int {
  kMiniAlexNet = 0,
  kMiniVGG,
  kMiniInception,
  kMiniResNet,
};

inline constexpr int kNumModelKinds = 4;

std::string model_name(ModelKind kind);

/// Builds a model for square `input_dim` x `input_dim` images (input_dim
/// must be divisible by 4) with `in_channels` input planes and
/// `num_classes` logits. Weight init is deterministic in `seed`.
LayerPtr make_model(ModelKind kind, int in_channels, int input_dim, int num_classes,
                    std::uint64_t seed);

}  // namespace dnj::nn
