// Softmax + cross-entropy, fused for numerical stability (log-sum-exp).
#pragma once

#include <vector>

#include "nn/tensor.hpp"

namespace dnj::nn {

struct LossResult {
  double loss = 0.0;    ///< mean cross-entropy over the batch
  Tensor probs;         ///< softmax probabilities (N x classes)
  Tensor grad;          ///< dL/dlogits, already divided by batch size
};

/// Computes softmax cross-entropy for logits (N, classes, 1, 1) against
/// integer labels. Throws on shape/label mismatch.
LossResult softmax_cross_entropy(const Tensor& logits, const std::vector<int>& labels);

/// Softmax probabilities only (inference path).
Tensor softmax(const Tensor& logits);

}  // namespace dnj::nn
