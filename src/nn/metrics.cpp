#include "nn/metrics.hpp"

#include <algorithm>
#include <stdexcept>

#include "nn/trainer.hpp"

namespace dnj::nn {

ConfusionMatrix::ConfusionMatrix(int num_classes) : n_(num_classes) {
  if (num_classes < 2) throw std::invalid_argument("ConfusionMatrix: need >= 2 classes");
  cells_.assign(static_cast<std::size_t>(n_) * n_, 0);
}

void ConfusionMatrix::add(int true_label, int predicted_label) {
  if (true_label < 0 || true_label >= n_ || predicted_label < 0 || predicted_label >= n_)
    throw std::invalid_argument("ConfusionMatrix: label out of range");
  ++cells_[static_cast<std::size_t>(true_label) * n_ + predicted_label];
  ++total_;
}

std::uint64_t ConfusionMatrix::count(int true_label, int predicted) const {
  return cells_.at(static_cast<std::size_t>(true_label) * n_ + predicted);
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  std::uint64_t diag = 0;
  for (int c = 0; c < n_; ++c) diag += count(c, c);
  return static_cast<double>(diag) / static_cast<double>(total_);
}

double ConfusionMatrix::recall(int label) const {
  std::uint64_t row = 0;
  for (int p = 0; p < n_; ++p) row += count(label, p);
  if (row == 0) return 0.0;
  return static_cast<double>(count(label, label)) / static_cast<double>(row);
}

double ConfusionMatrix::precision(int label) const {
  std::uint64_t col = 0;
  for (int t = 0; t < n_; ++t) col += count(t, label);
  if (col == 0) return 0.0;
  return static_cast<double>(count(label, label)) / static_cast<double>(col);
}

int ConfusionMatrix::dominant_confusion(int label) const {
  int best = -1;
  std::uint64_t best_count = 0;
  for (int p = 0; p < n_; ++p) {
    if (p == label) continue;
    if (count(label, p) > best_count) {
      best_count = count(label, p);
      best = p;
    }
  }
  return best_count > 0 ? best : -1;
}

ConfusionMatrix confusion_matrix(Layer& model, const data::Dataset& ds, int batch_size) {
  if (ds.empty()) throw std::invalid_argument("confusion_matrix: empty dataset");
  ConfusionMatrix cm(ds.num_classes);
  std::vector<int> indices;
  for (std::size_t start = 0; start < ds.size(); start += batch_size) {
    const std::size_t end = std::min(ds.size(), start + static_cast<std::size_t>(batch_size));
    indices.clear();
    for (std::size_t i = start; i < end; ++i) indices.push_back(static_cast<int>(i));
    const Tensor x = to_batch(ds, indices);
    const Tensor logits = model.forward(x, /*train=*/false);
    for (std::size_t bi = 0; bi < indices.size(); ++bi) {
      const float* row = logits.sample(static_cast<int>(bi));
      const int pred =
          static_cast<int>(std::max_element(row, row + logits.sample_size()) - row);
      cm.add(ds.samples[static_cast<std::size_t>(indices[bi])].label, pred);
    }
  }
  return cm;
}

}  // namespace dnj::nn
