// SGD with momentum and decoupled L2 weight decay — the classic training
// recipe of the AlexNet/VGG era the paper evaluates.
#pragma once

#include "nn/layer.hpp"

namespace dnj::nn {

struct SgdConfig {
  float lr = 0.01f;
  float momentum = 0.9f;
  float weight_decay = 1e-4f;
};

class Sgd {
 public:
  Sgd(Layer& model, const SgdConfig& config);

  /// Applies one update from the currently accumulated gradients.
  void step();

  /// Zeroes all gradients (call before each minibatch backward).
  void zero_grads();

  void set_lr(float lr) { config_.lr = lr; }
  float lr() const { return config_.lr; }

 private:
  SgdConfig config_;
  std::vector<ParamRef> params_;
  std::vector<std::vector<float>> velocity_;
};

}  // namespace dnj::nn
