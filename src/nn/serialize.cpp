#include "nn/serialize.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>

namespace dnj::nn {

namespace {

constexpr char kMagic[4] = {'D', 'N', 'J', 'W'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) throw std::runtime_error("load_weights: truncated file");
  return v;
}

}  // namespace

void save_weights(Layer& model, const std::string& path) {
  std::vector<ParamRef> params;
  model.collect_params(params);
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_weights: cannot open " + path);
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersion);
  write_pod(out, static_cast<std::uint64_t>(params.size()));
  for (const ParamRef& p : params) {
    write_pod(out, static_cast<std::uint64_t>(p.value->size()));
    out.write(reinterpret_cast<const char*>(p.value->data()),
              static_cast<std::streamsize>(p.value->size() * sizeof(float)));
  }
  if (!out) throw std::runtime_error("save_weights: write failed for " + path);
}

void load_weights(Layer& model, const std::string& path) {
  std::vector<ParamRef> params;
  model.collect_params(params);
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_weights: cannot open " + path);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw std::runtime_error("load_weights: bad magic in " + path);
  const std::uint32_t version = read_pod<std::uint32_t>(in);
  if (version != kVersion) throw std::runtime_error("load_weights: unsupported version");
  const std::uint64_t count = read_pod<std::uint64_t>(in);
  if (count != params.size())
    throw std::runtime_error("load_weights: parameter count mismatch (architecture differs)");
  for (ParamRef& p : params) {
    const std::uint64_t n = read_pod<std::uint64_t>(in);
    if (n != p.value->size())
      throw std::runtime_error("load_weights: parameter shape mismatch (architecture differs)");
    in.read(reinterpret_cast<char*>(p.value->data()),
            static_cast<std::streamsize>(n * sizeof(float)));
    if (!in) throw std::runtime_error("load_weights: truncated parameter data");
  }
}

}  // namespace dnj::nn
