#include "nn/adam.hpp"

#include <cmath>

namespace dnj::nn {

Adam::Adam(Layer& model, const AdamConfig& config) : config_(config) {
  model.collect_params(params_);
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const ParamRef& p : params_) {
    m_.emplace_back(p.value->size(), 0.0f);
    v_.emplace_back(p.value->size(), 0.0f);
  }
}

void Adam::zero_grads() {
  for (ParamRef& p : params_) std::fill(p.grad->begin(), p.grad->end(), 0.0f);
}

void Adam::step() {
  ++step_count_;
  const float bc1 = 1.0f - std::pow(config_.beta1, static_cast<float>(step_count_));
  const float bc2 = 1.0f - std::pow(config_.beta2, static_cast<float>(step_count_));
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    std::vector<float>& w = *params_[pi].value;
    std::vector<float>& g = *params_[pi].grad;
    std::vector<float>& m = m_[pi];
    std::vector<float>& v = v_[pi];
    for (std::size_t i = 0; i < w.size(); ++i) {
      const float grad = g[i] + config_.weight_decay * w[i];
      m[i] = config_.beta1 * m[i] + (1.0f - config_.beta1) * grad;
      v[i] = config_.beta2 * v[i] + (1.0f - config_.beta2) * grad * grad;
      const float mhat = m[i] / bc1;
      const float vhat = v[i] / bc2;
      w[i] -= config_.lr * mhat / (std::sqrt(vhat) + config_.eps);
    }
  }
}

}  // namespace dnj::nn
