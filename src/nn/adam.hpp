// Adam optimizer (Kingma & Ba) — the alternative to SGD+momentum when a
// model (like the plain-VGG stack) starts slowly under plain SGD.
#pragma once

#include "nn/layer.hpp"

namespace dnj::nn {

struct AdamConfig {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;  ///< L2 added to the gradient (not decoupled)
};

class Adam {
 public:
  Adam(Layer& model, const AdamConfig& config);

  void step();
  void zero_grads();
  void set_lr(float lr) { config_.lr = lr; }
  float lr() const { return config_.lr; }

 private:
  AdamConfig config_;
  long step_count_ = 0;
  std::vector<ParamRef> params_;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

}  // namespace dnj::nn
