// Composite layers: Sequential chains, residual blocks (ResNet) and
// inception blocks (GoogLeNet). Each composite is itself a Layer, so the
// trainer only ever sees one root layer.
#pragma once

#include "nn/layer.hpp"

namespace dnj::nn {

class Sequential final : public Layer {
 public:
  Sequential() = default;

  /// Appends a layer; returns *this for chaining.
  Sequential& add(LayerPtr layer);

  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& dy) override;
  void collect_params(std::vector<ParamRef>& out) override;
  std::string name() const override { return "Sequential"; }

  std::size_t layer_count() const { return layers_.size(); }

 private:
  std::vector<LayerPtr> layers_;
};

/// y = ReLU(body(x) + shortcut(x)). The shortcut is identity when null, or
/// a projection (typically 1x1 conv, possibly strided) otherwise.
class ResidualBlock final : public Layer {
 public:
  ResidualBlock(LayerPtr body, LayerPtr shortcut /* may be null */);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& dy) override;
  void collect_params(std::vector<ParamRef>& out) override;
  std::string name() const override { return "ResidualBlock"; }

 private:
  LayerPtr body_;
  LayerPtr shortcut_;
  std::vector<std::uint8_t> relu_mask_;
};

/// Parallel branches concatenated along the channel axis.
class InceptionBlock final : public Layer {
 public:
  explicit InceptionBlock(std::vector<LayerPtr> branches);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& dy) override;
  void collect_params(std::vector<ParamRef>& out) override;
  std::string name() const override { return "InceptionBlock"; }

 private:
  std::vector<LayerPtr> branches_;
  std::vector<int> branch_channels_;
};

}  // namespace dnj::nn
