#include "nn/layers.hpp"

#include <cmath>
#include <cstring>
#include <limits>

#include "runtime/parallel.hpp"
#include "simd/dispatch.hpp"

namespace dnj::nn {

namespace {

// C[M x N] += A[M x K] * B[K x N]; row-major. Dispatches to the active
// SIMD level's register-blocked micro-kernel; every level accumulates each
// C element in ascending-k order with the same zero-skip, so results are
// bit-identical across levels (and thread counts).
void gemm_acc(const float* a, const float* b, float* c, int m, int k, int n) {
  simd::kernels().gemm_acc(a, b, c, m, k, n);
}

// C[M x N] += A^T where A is [K x M]: C += A_t(MxK) * B(KxN) with A stored
// K-major. Used for dcol = W^T * dy.
void gemm_at_acc(const float* a, const float* b, float* c, int m, int k, int n) {
  simd::kernels().gemm_at_acc(a, b, c, m, k, n);
}

}  // namespace

void he_normal_init(std::vector<float>& w, int fan_in, std::mt19937_64& rng) {
  std::normal_distribution<float> dist(0.0f, std::sqrt(2.0f / static_cast<float>(fan_in)));
  for (float& v : w) v = dist(rng);
}

// ---------------------------------------------------------------- Conv2D

Conv2D::Conv2D(int in_channels, int out_channels, int kernel, int stride, int pad,
               std::mt19937_64& rng)
    : in_c_(in_channels), out_c_(out_channels), k_(kernel), stride_(stride), pad_(pad) {
  if (in_c_ <= 0 || out_c_ <= 0 || k_ <= 0 || stride_ <= 0 || pad_ < 0)
    throw std::invalid_argument("Conv2D: bad configuration");
  w_.assign(static_cast<std::size_t>(out_c_) * in_c_ * k_ * k_, 0.0f);
  b_.assign(static_cast<std::size_t>(out_c_), 0.0f);
  dw_.assign(w_.size(), 0.0f);
  db_.assign(b_.size(), 0.0f);
  he_normal_init(w_, in_c_ * k_ * k_, rng);
}

void Conv2D::collect_params(std::vector<ParamRef>& out) {
  out.push_back({&w_, &dw_});
  out.push_back({&b_, &db_});
}

void Conv2D::im2col(const float* src, int h, int w, float* col) const {
  // col is [in_c*k*k, out_h*out_w].
  const int oh = out_h_, ow = out_w_;
  std::size_t row = 0;
  for (int c = 0; c < in_c_; ++c) {
    const float* plane = src + static_cast<std::size_t>(c) * h * w;
    for (int ky = 0; ky < k_; ++ky) {
      for (int kx = 0; kx < k_; ++kx, ++row) {
        float* dst = col + row * static_cast<std::size_t>(oh) * ow;
        for (int oy = 0; oy < oh; ++oy) {
          const int sy = oy * stride_ - pad_ + ky;
          if (sy < 0 || sy >= h) {
            std::memset(dst + static_cast<std::size_t>(oy) * ow, 0, sizeof(float) * ow);
            continue;
          }
          for (int ox = 0; ox < ow; ++ox) {
            const int sx = ox * stride_ - pad_ + kx;
            dst[static_cast<std::size_t>(oy) * ow + ox] =
                (sx >= 0 && sx < w) ? plane[static_cast<std::size_t>(sy) * w + sx] : 0.0f;
          }
        }
      }
    }
  }
}

void Conv2D::col2im(const float* col, int h, int w, float* dst) const {
  const int oh = out_h_, ow = out_w_;
  std::size_t row = 0;
  for (int c = 0; c < in_c_; ++c) {
    float* plane = dst + static_cast<std::size_t>(c) * h * w;
    for (int ky = 0; ky < k_; ++ky) {
      for (int kx = 0; kx < k_; ++kx, ++row) {
        const float* src = col + row * static_cast<std::size_t>(oh) * ow;
        for (int oy = 0; oy < oh; ++oy) {
          const int sy = oy * stride_ - pad_ + ky;
          if (sy < 0 || sy >= h) continue;
          for (int ox = 0; ox < ow; ++ox) {
            const int sx = ox * stride_ - pad_ + kx;
            if (sx >= 0 && sx < w)
              plane[static_cast<std::size_t>(sy) * w + sx] +=
                  src[static_cast<std::size_t>(oy) * ow + ox];
          }
        }
      }
    }
  }
}

Tensor Conv2D::forward(const Tensor& x, bool train) {
  if (x.c() != in_c_) throw std::invalid_argument("Conv2D: channel mismatch");
  in_h_ = x.h();
  in_w_ = x.w();
  out_h_ = out_dim(x.h(), 0);
  out_w_ = out_dim(x.w(), 1);
  if (out_h_ <= 0 || out_w_ <= 0) throw std::invalid_argument("Conv2D: output collapses");
  const int patch = in_c_ * k_ * k_;
  const int pixels = out_h_ * out_w_;

  Tensor y(x.n(), out_c_, out_h_, out_w_);
  cols_.assign(static_cast<std::size_t>(x.n()), {});

  // Per-sample: each index writes a disjoint output slice and cols_ slot.
  runtime::parallel_for(0, static_cast<std::size_t>(x.n()), 1, [&](std::size_t ni) {
    const int n = static_cast<int>(ni);
    std::vector<float> col(static_cast<std::size_t>(patch) * pixels);
    im2col(x.sample(n), in_h_, in_w_, col.data());
    float* out = y.sample(n);
    for (int m = 0; m < out_c_; ++m) {
      float* row = out + static_cast<std::size_t>(m) * pixels;
      std::fill(row, row + pixels, b_[static_cast<std::size_t>(m)]);
    }
    gemm_acc(w_.data(), col.data(), out, out_c_, patch, pixels);
    if (train) cols_[ni] = std::move(col);
  });
  if (train) x_cache_ = x;
  return y;
}

Tensor Conv2D::backward(const Tensor& dy) {
  const int patch = in_c_ * k_ * k_;
  const int pixels = out_h_ * out_w_;
  const int batch = x_cache_.n();
  if (dy.n() != batch || dy.c() != out_c_)
    throw std::invalid_argument("Conv2D: backward shape mismatch");

  Tensor dx(batch, in_c_, in_h_, in_w_);

  // Input gradient: per-sample, parallel-safe.
  runtime::parallel_for(0, static_cast<std::size_t>(batch), 1, [&](std::size_t ni) {
    const int n = static_cast<int>(ni);
    std::vector<float> dcol(static_cast<std::size_t>(patch) * pixels, 0.0f);
    gemm_at_acc(w_.data(), dy.sample(n), dcol.data(), patch, out_c_, pixels);
    col2im(dcol.data(), in_h_, in_w_, dx.sample(n));
  });

  // Weight gradient: parallel over output channels, serial over samples so
  // accumulation order (and thus the result) is deterministic.
  runtime::parallel_for(0, static_cast<std::size_t>(out_c_), 1, [&](std::size_t mi) {
    const int m = static_cast<int>(mi);
    float* dwrow = dw_.data() + static_cast<std::size_t>(m) * patch;
    float dbias = 0.0f;
    for (int n = 0; n < batch; ++n) {
      const float* dyrow = dy.sample(n) + static_cast<std::size_t>(m) * pixels;
      const float* col = cols_[static_cast<std::size_t>(n)].data();
      for (int p = 0; p < pixels; ++p) dbias += dyrow[p];
      for (int k = 0; k < patch; ++k) {
        const float* colrow = col + static_cast<std::size_t>(k) * pixels;
        float acc = 0.0f;
        for (int p = 0; p < pixels; ++p) acc += dyrow[p] * colrow[p];
        dwrow[k] += acc;
      }
    }
    db_[static_cast<std::size_t>(m)] += dbias;
  });
  return dx;
}

// ------------------------------------------------------------- MaxPool2D

MaxPool2D::MaxPool2D(int kernel, int stride) : k_(kernel), stride_(stride) {
  if (k_ <= 0 || stride_ <= 0) throw std::invalid_argument("MaxPool2D: bad configuration");
}

Tensor MaxPool2D::forward(const Tensor& x, bool train) {
  const int oh = (x.h() - k_) / stride_ + 1;
  const int ow = (x.w() - k_) / stride_ + 1;
  if (oh <= 0 || ow <= 0) throw std::invalid_argument("MaxPool2D: output collapses");
  Tensor y(x.n(), x.c(), oh, ow);
  argmax_.assign(y.size(), 0);
  x_shape_ref_ = Tensor(x.n(), x.c(), x.h(), x.w());
  (void)train;

  runtime::parallel_for(0, static_cast<std::size_t>(x.n()), 1, [&](std::size_t ni) {
    const int n = static_cast<int>(ni);
    for (int c = 0; c < x.c(); ++c) {
      for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox) {
          float best = -std::numeric_limits<float>::infinity();
          int best_idx = 0;
          for (int ky = 0; ky < k_; ++ky) {
            for (int kx = 0; kx < k_; ++kx) {
              const int sy = oy * stride_ + ky;
              const int sx = ox * stride_ + kx;
              const float v = x.at(n, c, sy, sx);
              if (v > best) {
                best = v;
                best_idx = sy * x.w() + sx;
              }
            }
          }
          y.at(n, c, oy, ox) = best;
          const std::size_t flat =
              ((static_cast<std::size_t>(n) * x.c() + c) * oh + oy) * ow + ox;
          argmax_[flat] = best_idx;
        }
      }
    }
  });
  return y;
}

Tensor MaxPool2D::backward(const Tensor& dy) {
  Tensor dx = Tensor::zeros_like(x_shape_ref_);
  const int oh = dy.h(), ow = dy.w();
  runtime::parallel_for(0, static_cast<std::size_t>(dy.n()), 1, [&](std::size_t ni) {
    const int n = static_cast<int>(ni);
    for (int c = 0; c < dy.c(); ++c) {
      float* plane = dx.sample(n) + static_cast<std::size_t>(c) * dx.h() * dx.w();
      for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox) {
          const std::size_t flat =
              ((static_cast<std::size_t>(n) * dy.c() + c) * oh + oy) * ow + ox;
          plane[argmax_[flat]] += dy.at(n, c, oy, ox);
        }
      }
    }
  });
  return dx;
}

// ---------------------------------------------------------- GlobalAvgPool

Tensor GlobalAvgPool::forward(const Tensor& x, bool train) {
  (void)train;
  in_h_ = x.h();
  in_w_ = x.w();
  Tensor y(x.n(), x.c(), 1, 1);
  const float scale = 1.0f / static_cast<float>(x.h() * x.w());
  for (int n = 0; n < x.n(); ++n)
    for (int c = 0; c < x.c(); ++c) {
      float acc = 0.0f;
      for (int h = 0; h < x.h(); ++h)
        for (int w = 0; w < x.w(); ++w) acc += x.at(n, c, h, w);
      y.at(n, c, 0, 0) = acc * scale;
    }
  return y;
}

Tensor GlobalAvgPool::backward(const Tensor& dy) {
  Tensor dx(dy.n(), dy.c(), in_h_, in_w_);
  const float scale = 1.0f / static_cast<float>(in_h_ * in_w_);
  for (int n = 0; n < dy.n(); ++n)
    for (int c = 0; c < dy.c(); ++c) {
      const float g = dy.at(n, c, 0, 0) * scale;
      for (int h = 0; h < in_h_; ++h)
        for (int w = 0; w < in_w_; ++w) dx.at(n, c, h, w) = g;
    }
  return dx;
}

// ------------------------------------------------------------------ ReLU

Tensor ReLU::forward(const Tensor& x, bool train) {
  Tensor y = x;
  if (train) mask_.assign(x.size(), 0);
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y.data()[i] > 0.0f) {
      if (train) mask_[i] = 1;
    } else {
      y.data()[i] = 0.0f;
    }
  }
  return y;
}

Tensor ReLU::backward(const Tensor& dy) {
  Tensor dx = dy;
  for (std::size_t i = 0; i < dx.size(); ++i)
    if (!mask_[i]) dx.data()[i] = 0.0f;
  return dx;
}

// --------------------------------------------------------------- Flatten

Tensor Flatten::forward(const Tensor& x, bool train) {
  (void)train;
  c_ = x.c();
  h_ = x.h();
  w_ = x.w();
  return x.reshaped(x.sample_size(), 1, 1);
}

Tensor Flatten::backward(const Tensor& dy) { return dy.reshaped(c_, h_, w_); }

// ----------------------------------------------------------------- Dense

Dense::Dense(int in_features, int out_features, std::mt19937_64& rng)
    : in_f_(in_features), out_f_(out_features) {
  if (in_f_ <= 0 || out_f_ <= 0) throw std::invalid_argument("Dense: bad configuration");
  w_.assign(static_cast<std::size_t>(out_f_) * in_f_, 0.0f);
  b_.assign(static_cast<std::size_t>(out_f_), 0.0f);
  dw_.assign(w_.size(), 0.0f);
  db_.assign(b_.size(), 0.0f);
  he_normal_init(w_, in_f_, rng);
}

void Dense::collect_params(std::vector<ParamRef>& out) {
  out.push_back({&w_, &dw_});
  out.push_back({&b_, &db_});
}

Tensor Dense::forward(const Tensor& x, bool train) {
  if (x.sample_size() != in_f_) throw std::invalid_argument("Dense: feature mismatch");
  Tensor y(x.n(), out_f_, 1, 1);
  runtime::parallel_for(0, static_cast<std::size_t>(x.n()), 1, [&](std::size_t ni) {
    const int n = static_cast<int>(ni);
    const float* in = x.sample(n);
    float* out = y.sample(n);
    for (int o = 0; o < out_f_; ++o) {
      const float* wrow = w_.data() + static_cast<std::size_t>(o) * in_f_;
      float acc = b_[static_cast<std::size_t>(o)];
      for (int i = 0; i < in_f_; ++i) acc += wrow[i] * in[i];
      out[o] = acc;
    }
  });
  if (train) x_cache_ = x;
  return y;
}

Tensor Dense::backward(const Tensor& dy) {
  const int batch = x_cache_.n();
  Tensor dx(batch, x_cache_.c(), x_cache_.h(), x_cache_.w());

  runtime::parallel_for(0, static_cast<std::size_t>(batch), 1, [&](std::size_t ni) {
    const int n = static_cast<int>(ni);
    const float* g = dy.sample(n);
    float* out = dx.sample(n);
    std::fill(out, out + in_f_, 0.0f);
    for (int o = 0; o < out_f_; ++o) {
      const float gv = g[o];
      if (gv == 0.0f) continue;
      const float* wrow = w_.data() + static_cast<std::size_t>(o) * in_f_;
      for (int i = 0; i < in_f_; ++i) out[i] += gv * wrow[i];
    }
  });

  // Per output feature: dwrow/db_ slots are disjoint, samples stay serial
  // so the accumulation order is deterministic.
  runtime::parallel_for(0, static_cast<std::size_t>(out_f_), 8, [&](std::size_t oi) {
    const int o = static_cast<int>(oi);
    float* dwrow = dw_.data() + static_cast<std::size_t>(o) * in_f_;
    float dbias = 0.0f;
    for (int n = 0; n < batch; ++n) {
      const float gv = dy.sample(n)[o];
      dbias += gv;
      if (gv == 0.0f) continue;
      const float* in = x_cache_.sample(n);
      for (int i = 0; i < in_f_; ++i) dwrow[i] += gv * in[i];
    }
    db_[static_cast<std::size_t>(o)] += dbias;
  });
  return dx;
}

// ------------------------------------------------------------ BatchNorm2D

BatchNorm2D::BatchNorm2D(int channels, float momentum, float eps)
    : c_(channels), momentum_(momentum), eps_(eps) {
  if (c_ <= 0) throw std::invalid_argument("BatchNorm2D: bad channel count");
  gamma_.assign(static_cast<std::size_t>(c_), 1.0f);
  beta_.assign(static_cast<std::size_t>(c_), 0.0f);
  dgamma_.assign(static_cast<std::size_t>(c_), 0.0f);
  dbeta_.assign(static_cast<std::size_t>(c_), 0.0f);
  running_mean_.assign(static_cast<std::size_t>(c_), 0.0f);
  running_var_.assign(static_cast<std::size_t>(c_), 1.0f);
}

void BatchNorm2D::collect_params(std::vector<ParamRef>& out) {
  out.push_back({&gamma_, &dgamma_});
  out.push_back({&beta_, &dbeta_});
}

Tensor BatchNorm2D::forward(const Tensor& x, bool train) {
  if (x.c() != c_) throw std::invalid_argument("BatchNorm2D: channel mismatch");
  Tensor y = x;
  const int spatial = x.h() * x.w();
  const double count = static_cast<double>(x.n()) * spatial;

  if (train) {
    x_hat_ = Tensor(x.n(), x.c(), x.h(), x.w());
    batch_inv_std_.assign(static_cast<std::size_t>(c_), 0.0f);
  }

  for (int c = 0; c < c_; ++c) {
    float mean, inv_std;
    if (train) {
      double sum = 0.0, sq = 0.0;
      for (int n = 0; n < x.n(); ++n) {
        const float* plane = x.sample(n) + static_cast<std::size_t>(c) * spatial;
        for (int p = 0; p < spatial; ++p) {
          sum += plane[p];
          sq += static_cast<double>(plane[p]) * plane[p];
        }
      }
      const double m = sum / count;
      const double var = std::max(sq / count - m * m, 0.0);
      mean = static_cast<float>(m);
      inv_std = static_cast<float>(1.0 / std::sqrt(var + eps_));
      running_mean_[static_cast<std::size_t>(c)] =
          momentum_ * running_mean_[static_cast<std::size_t>(c)] + (1.0f - momentum_) * mean;
      running_var_[static_cast<std::size_t>(c)] =
          momentum_ * running_var_[static_cast<std::size_t>(c)] +
          (1.0f - momentum_) * static_cast<float>(var);
      batch_inv_std_[static_cast<std::size_t>(c)] = inv_std;
    } else {
      mean = running_mean_[static_cast<std::size_t>(c)];
      inv_std = 1.0f / std::sqrt(running_var_[static_cast<std::size_t>(c)] + eps_);
    }
    const float g = gamma_[static_cast<std::size_t>(c)];
    const float b = beta_[static_cast<std::size_t>(c)];
    for (int n = 0; n < x.n(); ++n) {
      const float* in = x.sample(n) + static_cast<std::size_t>(c) * spatial;
      float* out = y.sample(n) + static_cast<std::size_t>(c) * spatial;
      float* hat = train ? x_hat_.sample(n) + static_cast<std::size_t>(c) * spatial : nullptr;
      for (int p = 0; p < spatial; ++p) {
        const float xn = (in[p] - mean) * inv_std;
        if (hat) hat[p] = xn;
        out[p] = g * xn + b;
      }
    }
  }
  return y;
}

Tensor BatchNorm2D::backward(const Tensor& dy) {
  const int spatial = dy.h() * dy.w();
  const double count = static_cast<double>(dy.n()) * spatial;
  Tensor dx(dy.n(), dy.c(), dy.h(), dy.w());

  for (int c = 0; c < c_; ++c) {
    // Reductions: sum(dy) and sum(dy * x_hat) over the channel.
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (int n = 0; n < dy.n(); ++n) {
      const float* g = dy.sample(n) + static_cast<std::size_t>(c) * spatial;
      const float* hat = x_hat_.sample(n) + static_cast<std::size_t>(c) * spatial;
      for (int p = 0; p < spatial; ++p) {
        sum_dy += g[p];
        sum_dy_xhat += static_cast<double>(g[p]) * hat[p];
      }
    }
    dbeta_[static_cast<std::size_t>(c)] += static_cast<float>(sum_dy);
    dgamma_[static_cast<std::size_t>(c)] += static_cast<float>(sum_dy_xhat);

    const float gamma = gamma_[static_cast<std::size_t>(c)];
    const float inv_std = batch_inv_std_[static_cast<std::size_t>(c)];
    const float mean_dy = static_cast<float>(sum_dy / count);
    const float mean_dy_xhat = static_cast<float>(sum_dy_xhat / count);
    for (int n = 0; n < dy.n(); ++n) {
      const float* g = dy.sample(n) + static_cast<std::size_t>(c) * spatial;
      const float* hat = x_hat_.sample(n) + static_cast<std::size_t>(c) * spatial;
      float* out = dx.sample(n) + static_cast<std::size_t>(c) * spatial;
      for (int p = 0; p < spatial; ++p)
        out[p] = gamma * inv_std * (g[p] - mean_dy - hat[p] * mean_dy_xhat);
    }
  }
  return dx;
}

}  // namespace dnj::nn
