#include "nn/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <numeric>
#include <random>
#include <stdexcept>

#include "nn/loss.hpp"
#include "runtime/parallel.hpp"

namespace dnj::nn {

float normalize_pixel(std::uint8_t p) { return (static_cast<float>(p) - 127.5f) / 64.0f; }

Tensor to_batch(const data::Dataset& ds, const std::vector<int>& indices, int num_threads) {
  if (indices.empty()) throw std::invalid_argument("to_batch: empty index list");
  const int c = ds.channels();
  const int h = ds.height();
  const int w = ds.width();
  Tensor batch(static_cast<int>(indices.size()), c, h, w);
  runtime::parallel_for(
      0, indices.size(), 8,
      [&](std::size_t bi) {
        const image::Image& img = ds.samples[static_cast<std::size_t>(indices[bi])].image;
        if (img.width() != w || img.height() != h || img.channels() != c)
          throw std::invalid_argument("to_batch: inhomogeneous dataset");
        for (int ci = 0; ci < c; ++ci)
          for (int y = 0; y < h; ++y)
            for (int x = 0; x < w; ++x)
              batch.at(static_cast<int>(bi), ci, y, x) = normalize_pixel(img.at(x, y, ci));
      },
      num_threads);
  return batch;
}

std::vector<int> batch_labels(const data::Dataset& ds, const std::vector<int>& indices) {
  std::vector<int> labels;
  labels.reserve(indices.size());
  for (int i : indices) labels.push_back(ds.samples[static_cast<std::size_t>(i)].label);
  return labels;
}

std::vector<EpochStats> train(Layer& model, const data::Dataset& train_set,
                              const data::Dataset* test_set, const TrainConfig& config) {
  if (train_set.empty()) throw std::invalid_argument("train: empty dataset");
  SgdConfig sgd_cfg;
  sgd_cfg.lr = config.lr;
  sgd_cfg.momentum = config.momentum;
  sgd_cfg.weight_decay = config.weight_decay;
  Sgd opt(model, sgd_cfg);

  std::vector<int> order(train_set.size());
  std::iota(order.begin(), order.end(), 0);

  std::vector<EpochStats> history;
  history.reserve(static_cast<std::size_t>(config.epochs));

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    std::mt19937_64 rng(config.seed + static_cast<std::uint64_t>(epoch) * 0x9E37ULL);
    std::shuffle(order.begin(), order.end(), rng);

    double loss_sum = 0.0;
    std::size_t correct = 0;
    std::size_t seen = 0;
    for (std::size_t start = 0; start < order.size(); start += config.batch_size) {
      const std::size_t end = std::min(order.size(), start + config.batch_size);
      const std::vector<int> batch_idx(order.begin() + static_cast<long>(start),
                                       order.begin() + static_cast<long>(end));
      const Tensor x = to_batch(train_set, batch_idx, config.num_threads);
      const std::vector<int> labels = batch_labels(train_set, batch_idx);

      opt.zero_grads();
      const Tensor logits = model.forward(x, /*train=*/true);
      const LossResult loss = softmax_cross_entropy(logits, labels);
      model.backward(loss.grad);
      opt.step();

      loss_sum += loss.loss * static_cast<double>(batch_idx.size());
      for (std::size_t bi = 0; bi < batch_idx.size(); ++bi) {
        const float* row = loss.probs.sample(static_cast<int>(bi));
        const int pred = static_cast<int>(
            std::max_element(row, row + loss.probs.sample_size()) - row);
        if (pred == labels[bi]) ++correct;
      }
      seen += batch_idx.size();
    }

    EpochStats stats;
    stats.epoch = epoch;
    stats.train_loss = loss_sum / static_cast<double>(seen);
    stats.train_acc = static_cast<double>(correct) / static_cast<double>(seen);
    stats.test_acc = test_set ? evaluate(model, *test_set, 64, config.num_threads)
                              : std::numeric_limits<double>::quiet_NaN();
    history.push_back(stats);
    if (config.verbose)
      std::printf("epoch %2d  loss %.4f  train_acc %.4f  test_acc %.4f\n", epoch,
                  stats.train_loss, stats.train_acc, stats.test_acc);

    opt.set_lr(opt.lr() * config.lr_decay);
  }
  return history;
}

double evaluate(Layer& model, const data::Dataset& ds, int batch_size, int num_threads) {
  if (ds.empty()) throw std::invalid_argument("evaluate: empty dataset");
  std::size_t correct = 0;
  std::vector<int> indices;
  for (std::size_t start = 0; start < ds.size(); start += batch_size) {
    const std::size_t end = std::min(ds.size(), start + static_cast<std::size_t>(batch_size));
    indices.clear();
    for (std::size_t i = start; i < end; ++i) indices.push_back(static_cast<int>(i));
    const Tensor x = to_batch(ds, indices, num_threads);
    const Tensor logits = model.forward(x, /*train=*/false);
    for (std::size_t bi = 0; bi < indices.size(); ++bi) {
      const float* row = logits.sample(static_cast<int>(bi));
      const int pred =
          static_cast<int>(std::max_element(row, row + logits.sample_size()) - row);
      if (pred == ds.samples[static_cast<std::size_t>(indices[bi])].label) ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(ds.size());
}

std::vector<float> predict_probs(Layer& model, const image::Image& img) {
  data::Dataset tmp;
  tmp.num_classes = 0;
  tmp.samples.push_back({img, 0});
  const Tensor x = to_batch(tmp, {0});
  const Tensor probs = softmax(model.forward(x, /*train=*/false));
  const float* row = probs.sample(0);
  return std::vector<float>(row, row + probs.sample_size());
}

int predict_label(Layer& model, const image::Image& img) {
  const std::vector<float> probs = predict_probs(model, img);
  return static_cast<int>(std::max_element(probs.begin(), probs.end()) - probs.begin());
}

}  // namespace dnj::nn
