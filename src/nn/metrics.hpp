// Classification metrics beyond top-1 accuracy: confusion matrix and
// per-class recall. The Fig. 3 analysis ("which class does the junco turn
// into when HF is removed?") is a confusion-matrix question.
#pragma once

#include <vector>

#include "data/dataset.hpp"
#include "nn/layer.hpp"

namespace dnj::nn {

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(int num_classes);

  void add(int true_label, int predicted_label);

  int num_classes() const { return n_; }
  /// Count of samples with the given true label predicted as `predicted`.
  std::uint64_t count(int true_label, int predicted) const;
  std::uint64_t total() const { return total_; }

  double accuracy() const;
  /// Recall of one class (0 when the class never appears).
  double recall(int label) const;
  /// Precision of one class (0 when the class is never predicted).
  double precision(int label) const;
  /// The predicted class that most often absorbs misclassified samples of
  /// `label` (-1 if the class is never misclassified).
  int dominant_confusion(int label) const;

 private:
  int n_;
  std::uint64_t total_ = 0;
  std::vector<std::uint64_t> cells_;  // row = true, col = predicted
};

/// Evaluates `model` over `ds` into a confusion matrix.
ConfusionMatrix confusion_matrix(Layer& model, const data::Dataset& ds, int batch_size = 64);

}  // namespace dnj::nn
