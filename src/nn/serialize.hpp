// Model weight serialization: a flat little-endian binary format with a
// magic header and per-parameter size check, so a model trained once (e.g.
// the cloud model of the edge-sensor example) can be stored and reloaded
// into a freshly built architecture of the same shape.
//
// Format: "DNJW" | u32 version | u64 param_count |
//         repeat: u64 element_count, float32 data...
#pragma once

#include <string>

#include "nn/layer.hpp"

namespace dnj::nn {

/// Writes all trainable parameters of `model` to `path`.
/// Throws std::runtime_error on I/O failure.
void save_weights(Layer& model, const std::string& path);

/// Loads parameters into `model`. The architecture must match exactly
/// (same parameter tensors in the same order); throws std::runtime_error on
/// format, shape, or I/O mismatch.
void load_weights(Layer& model, const std::string& path);

}  // namespace dnj::nn
