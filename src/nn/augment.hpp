// Training-time data augmentation on images (shift / horizontal flip /
// brightness jitter), applied before tensor conversion. Deterministic in the
// provided seed so augmented training runs are reproducible.
#pragma once

#include <cstdint>

#include "data/dataset.hpp"

namespace dnj::nn {

struct AugmentConfig {
  int max_shift = 2;            ///< +- pixels, edge-replicated
  bool horizontal_flip = true;  ///< 50% probability
  float brightness_jitter = 8.0f;  ///< +- uniform gray levels (0 disables)
  std::uint64_t seed = 0xA06;
};

/// Returns an augmented copy of one image; `sample_index` decorrelates the
/// per-sample randomness from the epoch-level seed.
image::Image augment_image(const image::Image& img, const AugmentConfig& config,
                           std::uint64_t sample_index);

/// Returns an augmented copy of the whole dataset (labels preserved).
data::Dataset augment_dataset(const data::Dataset& ds, const AugmentConfig& config,
                              std::uint64_t epoch = 0);

}  // namespace dnj::nn
