#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dnj::nn {

Tensor softmax(const Tensor& logits) {
  Tensor probs = logits;
  const int classes = logits.sample_size();
  for (int n = 0; n < logits.n(); ++n) {
    float* row = probs.sample(n);
    const float mx = *std::max_element(row, row + classes);
    float sum = 0.0f;
    for (int c = 0; c < classes; ++c) {
      row[c] = std::exp(row[c] - mx);
      sum += row[c];
    }
    for (int c = 0; c < classes; ++c) row[c] /= sum;
  }
  return probs;
}

LossResult softmax_cross_entropy(const Tensor& logits, const std::vector<int>& labels) {
  if (static_cast<int>(labels.size()) != logits.n())
    throw std::invalid_argument("softmax_cross_entropy: label count mismatch");
  const int classes = logits.sample_size();
  LossResult res;
  res.probs = softmax(logits);
  res.grad = res.probs;
  double total = 0.0;
  const float inv_batch = 1.0f / static_cast<float>(logits.n());
  for (int n = 0; n < logits.n(); ++n) {
    const int label = labels[static_cast<std::size_t>(n)];
    if (label < 0 || label >= classes)
      throw std::invalid_argument("softmax_cross_entropy: label out of range");
    const float p = res.probs.sample(n)[label];
    total += -std::log(std::max(p, 1e-12f));
    float* g = res.grad.sample(n);
    for (int c = 0; c < classes; ++c) g[c] *= inv_batch;
    g[label] -= inv_batch;
  }
  res.loss = total / logits.n();
  return res;
}

}  // namespace dnj::nn
