// Minimal NCHW float tensor. The framework keeps every activation and
// parameter in this one shape; vectors (dense activations) use C as the
// feature axis with H = W = 1.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace dnj::nn {

class Tensor {
 public:
  Tensor() = default;
  Tensor(int n, int c, int h, int w) : n_(n), c_(c), h_(h), w_(w) {
    if (n <= 0 || c <= 0 || h <= 0 || w <= 0)
      throw std::invalid_argument("Tensor: dimensions must be positive");
    v_.assign(static_cast<std::size_t>(n) * c * h * w, 0.0f);
  }

  static Tensor zeros_like(const Tensor& t) { return Tensor(t.n_, t.c_, t.h_, t.w_); }

  int n() const { return n_; }
  int c() const { return c_; }
  int h() const { return h_; }
  int w() const { return w_; }
  std::size_t size() const { return v_.size(); }
  bool empty() const { return v_.empty(); }

  /// Features per sample (C*H*W).
  int sample_size() const { return c_ * h_ * w_; }

  float& at(int n, int c, int h, int w) { return v_[index(n, c, h, w)]; }
  float at(int n, int c, int h, int w) const { return v_[index(n, c, h, w)]; }

  float* sample(int n) { return v_.data() + static_cast<std::size_t>(n) * sample_size(); }
  const float* sample(int n) const {
    return v_.data() + static_cast<std::size_t>(n) * sample_size();
  }

  std::vector<float>& data() { return v_; }
  const std::vector<float>& data() const { return v_; }

  /// Reinterprets the per-sample layout without copying data.
  Tensor reshaped(int c, int h, int w) const {
    if (c * h * w != sample_size()) throw std::invalid_argument("Tensor: reshape size mismatch");
    Tensor out = *this;
    out.c_ = c;
    out.h_ = h;
    out.w_ = w;
    return out;
  }

 private:
  std::size_t index(int n, int c, int h, int w) const {
    return ((static_cast<std::size_t>(n) * c_ + c) * h_ + h) * w_ + w;
  }

  int n_ = 0, c_ = 0, h_ = 0, w_ = 0;
  std::vector<float> v_;
};

}  // namespace dnj::nn
