// Inverted dropout. AlexNet-era regularization: active only in training,
// identity at inference (activations are pre-scaled by 1/keep so eval needs
// no correction).
#pragma once

#include <random>

#include "nn/layer.hpp"

namespace dnj::nn {

class Dropout final : public Layer {
 public:
  /// `drop_prob` in [0, 1). The RNG seed makes training reproducible.
  explicit Dropout(float drop_prob, std::uint64_t seed = 0xD20);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& dy) override;
  std::string name() const override { return "Dropout"; }

 private:
  float drop_prob_;
  std::mt19937_64 rng_;
  std::vector<std::uint8_t> keep_mask_;
};

}  // namespace dnj::nn
