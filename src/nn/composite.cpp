#include "nn/composite.hpp"

#include <cstdint>
#include <stdexcept>

namespace dnj::nn {

// ------------------------------------------------------------ Sequential

Sequential& Sequential::add(LayerPtr layer) {
  if (!layer) throw std::invalid_argument("Sequential::add: null layer");
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor Sequential::forward(const Tensor& x, bool train) {
  Tensor cur = x;
  for (LayerPtr& l : layers_) cur = l->forward(cur, train);
  return cur;
}

Tensor Sequential::backward(const Tensor& dy) {
  Tensor cur = dy;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) cur = (*it)->backward(cur);
  return cur;
}

void Sequential::collect_params(std::vector<ParamRef>& out) {
  for (LayerPtr& l : layers_) l->collect_params(out);
}

// --------------------------------------------------------- ResidualBlock

ResidualBlock::ResidualBlock(LayerPtr body, LayerPtr shortcut)
    : body_(std::move(body)), shortcut_(std::move(shortcut)) {
  if (!body_) throw std::invalid_argument("ResidualBlock: body required");
}

Tensor ResidualBlock::forward(const Tensor& x, bool train) {
  Tensor main = body_->forward(x, train);
  Tensor skip = shortcut_ ? shortcut_->forward(x, train) : x;
  if (main.size() != skip.size())
    throw std::invalid_argument("ResidualBlock: branch shapes differ");
  if (train) relu_mask_.assign(main.size(), 0);
  for (std::size_t i = 0; i < main.size(); ++i) {
    float v = main.data()[i] + skip.data()[i];
    if (v > 0.0f) {
      if (train) relu_mask_[i] = 1;
    } else {
      v = 0.0f;
    }
    main.data()[i] = v;
  }
  return main;
}

Tensor ResidualBlock::backward(const Tensor& dy) {
  Tensor dz = dy;
  for (std::size_t i = 0; i < dz.size(); ++i)
    if (!relu_mask_[i]) dz.data()[i] = 0.0f;
  Tensor dx = body_->backward(dz);
  if (shortcut_) {
    const Tensor ds = shortcut_->backward(dz);
    if (ds.size() != dx.size())
      throw std::invalid_argument("ResidualBlock: gradient shapes differ");
    for (std::size_t i = 0; i < dx.size(); ++i) dx.data()[i] += ds.data()[i];
  } else {
    for (std::size_t i = 0; i < dx.size(); ++i) dx.data()[i] += dz.data()[i];
  }
  return dx;
}

void ResidualBlock::collect_params(std::vector<ParamRef>& out) {
  body_->collect_params(out);
  if (shortcut_) shortcut_->collect_params(out);
}

// -------------------------------------------------------- InceptionBlock

InceptionBlock::InceptionBlock(std::vector<LayerPtr> branches)
    : branches_(std::move(branches)) {
  if (branches_.empty()) throw std::invalid_argument("InceptionBlock: no branches");
  for (const LayerPtr& b : branches_)
    if (!b) throw std::invalid_argument("InceptionBlock: null branch");
}

Tensor InceptionBlock::forward(const Tensor& x, bool train) {
  std::vector<Tensor> outs;
  outs.reserve(branches_.size());
  branch_channels_.clear();
  int total_c = 0;
  for (LayerPtr& b : branches_) {
    outs.push_back(b->forward(x, train));
    const Tensor& o = outs.back();
    if (o.h() != outs.front().h() || o.w() != outs.front().w() || o.n() != x.n())
      throw std::invalid_argument("InceptionBlock: branch spatial shapes differ");
    branch_channels_.push_back(o.c());
    total_c += o.c();
  }
  Tensor y(x.n(), total_c, outs.front().h(), outs.front().w());
  const int spatial = y.h() * y.w();
  for (int n = 0; n < y.n(); ++n) {
    float* dst = y.sample(n);
    for (const Tensor& o : outs) {
      const std::size_t chunk = static_cast<std::size_t>(o.c()) * spatial;
      std::copy(o.sample(n), o.sample(n) + chunk, dst);
      dst += chunk;
    }
  }
  return y;
}

Tensor InceptionBlock::backward(const Tensor& dy) {
  const int spatial = dy.h() * dy.w();
  Tensor dx;
  int offset_c = 0;
  for (std::size_t bi = 0; bi < branches_.size(); ++bi) {
    const int bc = branch_channels_[bi];
    Tensor slice(dy.n(), bc, dy.h(), dy.w());
    for (int n = 0; n < dy.n(); ++n) {
      const float* src = dy.sample(n) + static_cast<std::size_t>(offset_c) * spatial;
      std::copy(src, src + static_cast<std::size_t>(bc) * spatial, slice.sample(n));
    }
    Tensor grad = branches_[bi]->backward(slice);
    if (dx.empty()) {
      dx = std::move(grad);
    } else {
      if (grad.size() != dx.size())
        throw std::invalid_argument("InceptionBlock: gradient shapes differ");
      for (std::size_t i = 0; i < dx.size(); ++i) dx.data()[i] += grad.data()[i];
    }
    offset_c += bc;
  }
  return dx;
}

void InceptionBlock::collect_params(std::vector<ParamRef>& out) {
  for (LayerPtr& b : branches_) b->collect_params(out);
}

}  // namespace dnj::nn
