#include "simd/dispatch.hpp"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <string>

#include "simd/kernels.hpp"

namespace dnj::simd {

namespace {

bool cpu_supports(Level level) {
  switch (level) {
    case Level::kScalar:
      return true;
#if (defined(__x86_64__) || defined(__i386__)) && (defined(__GNUC__) || defined(__clang__))
    case Level::kSse2:
      return __builtin_cpu_supports("sse2");
    case Level::kAvx2:
      return __builtin_cpu_supports("avx2");
#else
    case Level::kSse2:
    case Level::kAvx2:
      return false;
#endif
  }
  return false;
}

const KernelTable* compiled_table(Level level) {
  switch (level) {
    case Level::kScalar:
      return scalar_kernels();
    case Level::kSse2:
      return sse2_kernels();
    case Level::kAvx2:
      return avx2_kernels();
  }
  return nullptr;
}

/// Copies every non-null kernel of `src` over `dst` — the per-kernel
/// fallback: a level that leaves a slot empty inherits the next narrower
/// implementation.
void overlay(KernelTable& dst, const KernelTable& src) {
  if (src.fdct_batch) dst.fdct_batch = src.fdct_batch;
  if (src.idct_batch) dst.idct_batch = src.idct_batch;
  if (src.quantize_zigzag_batch) dst.quantize_zigzag_batch = src.quantize_zigzag_batch;
  if (src.dequantize_batch) dst.dequantize_batch = src.dequantize_batch;
  if (src.tile_f32) dst.tile_f32 = src.tile_f32;
  if (src.tile_u8) dst.tile_u8 = src.tile_u8;
  if (src.untile_f32) dst.untile_f32 = src.untile_f32;
  if (src.rgb_to_ycbcr) dst.rgb_to_ycbcr = src.rgb_to_ycbcr;
  if (src.ycbcr_to_rgb_row) dst.ycbcr_to_rgb_row = src.ycbcr_to_rgb_row;
  if (src.f32_to_u8_row) dst.f32_to_u8_row = src.f32_to_u8_row;
  if (src.sum_sq_diff_u8) dst.sum_sq_diff_u8 = src.sum_sq_diff_u8;
  if (src.quant_error_block) dst.quant_error_block = src.quant_error_block;
  if (src.gemm_acc) dst.gemm_acc = src.gemm_acc;
  if (src.gemm_at_acc) dst.gemm_at_acc = src.gemm_at_acc;
  if (src.nonzero_mask_i16_64) dst.nonzero_mask_i16_64 = src.nonzero_mask_i16_64;
  if (src.stuff_bytes) dst.stuff_bytes = src.stuff_bytes;
}

struct State {
  KernelTable resolved[3];  // fully merged table per level
  bool usable[3] = {true, false, false};
  std::atomic<const KernelTable*> active{nullptr};
  std::atomic<int> level{0};

  State() {
    KernelTable merged = *scalar_kernels();
    resolved[0] = merged;
    for (Level l : {Level::kSse2, Level::kAvx2}) {
      const int i = static_cast<int>(l);
      const KernelTable* t = compiled_table(l);
      if (t && cpu_supports(l)) {
        overlay(merged, *t);
        usable[i] = true;
      }
      resolved[i] = merged;  // unusable levels alias the level below
    }

    Level initial = max_usable();
    if (const char* env = std::getenv("DNJ_SIMD")) {
      Level parsed;
      // "auto", an unknown name, or a level this machine cannot run all
      // resolve to the widest supported level — the graceful-fallback rule.
      if (parse_level(env, &parsed) && usable[static_cast<int>(parsed)])
        initial = parsed;
    }
    activate(initial);
  }

  Level max_usable() const {
    if (usable[2]) return Level::kAvx2;
    if (usable[1]) return Level::kSse2;
    return Level::kScalar;
  }

  void activate(Level l) {
    level.store(static_cast<int>(l), std::memory_order_relaxed);
    active.store(&resolved[static_cast<int>(l)], std::memory_order_release);
  }
};

State& state() {
  static State s;
  return s;
}

}  // namespace

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kSse2:
      return "sse2";
    case Level::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool parse_level(std::string_view name, Level* out) {
  std::string lower(name);
  for (char& ch : lower) ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
  if (lower == "scalar") *out = Level::kScalar;
  else if (lower == "sse2") *out = Level::kSse2;
  else if (lower == "avx2") *out = Level::kAvx2;
  else return false;
  return true;
}

Level max_supported_level() { return state().max_usable(); }

Level active_level() {
  return static_cast<Level>(state().level.load(std::memory_order_relaxed));
}

bool set_level(Level level) {
  State& s = state();
  const int i = static_cast<int>(level);
  if (i < 0 || i > 2 || !s.usable[i]) return false;
  s.activate(level);
  return true;
}

const KernelTable& kernels() {
  return *state().active.load(std::memory_order_acquire);
}

}  // namespace dnj::simd
