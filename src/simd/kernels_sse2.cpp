// SSE2 kernel table (4-wide float, 2-wide double). SSE2 is the x86-64
// baseline ISA, so this TU needs no special compiler flags; it is the
// guaranteed-available SIMD floor on every x86-64 machine.
//
// Determinism: every kernel follows the lane discipline documented in
// dispatch.hpp — lanes are independent outputs executing the scalar
// operation sequence, reductions keep the scalar order, and no FMA is
// emitted (baseline codegen has none; the TU also builds with
// -ffp-contract=off).
#include "simd/kernels.hpp"

#if defined(__SSE2__)

#include <emmintrin.h>

#include <cstring>

#include "image/color.hpp"
#include "image/image.hpp"
#include "jpeg/dct.hpp"
#include "jpeg/quant.hpp"
#include "simd/kernels_common.hpp"

namespace dnj::simd {

namespace {

using detail::kBlockDim;
using detail::kBlockSize;

struct V4 {
  __m128 v;
  static constexpr int kWidth = 4;
  static V4 load(const float* p) { return {_mm_loadu_ps(p)}; }
  static V4 set1(float x) { return {_mm_set1_ps(x)}; }
  void store(float* p) const { _mm_storeu_ps(p, v); }
  friend V4 operator+(V4 a, V4 b) { return {_mm_add_ps(a.v, b.v)}; }
  friend V4 operator-(V4 a, V4 b) { return {_mm_sub_ps(a.v, b.v)}; }
  friend V4 operator*(V4 a, V4 b) { return {_mm_mul_ps(a.v, b.v)}; }
};

// ------------------------------------------------------------------- DCT

// 8x8 transpose of a block held as r[row][half] (halves = columns 0-3 and
// 4-7): transpose the four 4x4 quadrants and swap the off-diagonal pair.
inline void transpose8x8(__m128 r[8][2]) {
  __m128 a0 = r[0][0], a1 = r[1][0], a2 = r[2][0], a3 = r[3][0];
  __m128 b0 = r[0][1], b1 = r[1][1], b2 = r[2][1], b3 = r[3][1];
  __m128 c0 = r[4][0], c1 = r[5][0], c2 = r[6][0], c3 = r[7][0];
  __m128 d0 = r[4][1], d1 = r[5][1], d2 = r[6][1], d3 = r[7][1];
  _MM_TRANSPOSE4_PS(a0, a1, a2, a3);
  _MM_TRANSPOSE4_PS(b0, b1, b2, b3);
  _MM_TRANSPOSE4_PS(c0, c1, c2, c3);
  _MM_TRANSPOSE4_PS(d0, d1, d2, d3);
  r[0][0] = a0, r[1][0] = a1, r[2][0] = a2, r[3][0] = a3;
  r[0][1] = c0, r[1][1] = c1, r[2][1] = c2, r[3][1] = c3;
  r[4][0] = b0, r[5][0] = b1, r[6][0] = b2, r[7][0] = b3;
  r[4][1] = d0, r[5][1] = d1, r[6][1] = d2, r[7][1] = d3;
}

inline void butterfly_halves(__m128 r[8][2]) {
  for (int h = 0; h < 2; ++h) {
    V4 p[8];
    for (int i = 0; i < 8; ++i) p[i].v = r[i][h];
    detail::aan_butterfly(p);
    for (int i = 0; i < 8; ++i) r[i][h] = p[i].v;
  }
}

// Same pass order as the scalar fdct_8x8: row pass (via transpose, lanes =
// rows), column pass (lanes = columns), multiplicative descale.
void fdct_batch_sse2(float* blocks, std::size_t count) {
  const float* descale = jpeg::aan_descale_table();
  for (std::size_t b = 0; b < count; ++b) {
    float* blk = blocks + b * kBlockSize;
    __m128 r[8][2];
    for (int i = 0; i < 8; ++i) {
      r[i][0] = _mm_loadu_ps(blk + i * 8);
      r[i][1] = _mm_loadu_ps(blk + i * 8 + 4);
    }
    transpose8x8(r);
    butterfly_halves(r);  // row pass
    transpose8x8(r);
    butterfly_halves(r);  // column pass
    for (int i = 0; i < 8; ++i) {
      r[i][0] = _mm_mul_ps(r[i][0], _mm_loadu_ps(descale + i * 8));
      r[i][1] = _mm_mul_ps(r[i][1], _mm_loadu_ps(descale + i * 8 + 4));
      _mm_storeu_ps(blk + i * 8, r[i][0]);
      _mm_storeu_ps(blk + i * 8 + 4, r[i][1]);
    }
  }
}

void idct_batch_sse2(float* blocks, std::size_t count) {
  const float* m = jpeg::dct_basis_table();
  for (std::size_t b = 0; b < count; ++b)
    detail::idct_block_vec<V4>(blocks + b * kBlockSize, m);
}

// ---------------------------------------------------------- quant/dequant

void quantize_zigzag_batch_sse2(const float* coeffs, std::size_t count,
                                const float* recip, std::int16_t* out) {
  const __m128 lo = _mm_set1_ps(-32768.0f);
  const __m128 hi = _mm_set1_ps(32767.0f);
  const __m128 bias = _mm_set1_ps(12582912.0f);  // 1.5 * 2^23
  for (std::size_t b = 0; b < count; ++b) {
    const float* c = coeffs + b * kBlockSize;
    std::int16_t* zz = out + b * kBlockSize;
    alignas(16) std::int16_t natural[kBlockSize];
    for (int k = 0; k < kBlockSize; k += 8) {
      __m128 v0 = _mm_mul_ps(_mm_loadu_ps(c + k), _mm_loadu_ps(recip + k));
      __m128 v1 = _mm_mul_ps(_mm_loadu_ps(c + k + 4), _mm_loadu_ps(recip + k + 4));
      v0 = _mm_sub_ps(_mm_add_ps(v0, bias), bias);  // round half to even
      v1 = _mm_sub_ps(_mm_add_ps(v1, bias), bias);
      v0 = _mm_min_ps(_mm_max_ps(v0, lo), hi);
      v1 = _mm_min_ps(_mm_max_ps(v1, lo), hi);
      const __m128i i0 = _mm_cvtps_epi32(v0);  // exact: values are integral
      const __m128i i1 = _mm_cvtps_epi32(v1);
      _mm_store_si128(reinterpret_cast<__m128i*>(natural + k), _mm_packs_epi32(i0, i1));
    }
    detail::zigzag_permute_i16(natural, zz);
  }
}

void dequantize_batch_sse2(const std::int16_t* quantized, std::size_t count,
                           const float* steps, float* coeffs) {
  for (std::size_t b = 0; b < count; ++b) {
    const std::int16_t* q = quantized + b * kBlockSize;
    float* c = coeffs + b * kBlockSize;
    for (int k = 0; k < kBlockSize; k += 8) {
      const __m128i raw = _mm_loadu_si128(reinterpret_cast<const __m128i*>(q + k));
      // Sign-extend the 8 int16 lanes into two int32 quads.
      const __m128i lo32 = _mm_srai_epi32(_mm_unpacklo_epi16(raw, raw), 16);
      const __m128i hi32 = _mm_srai_epi32(_mm_unpackhi_epi16(raw, raw), 16);
      _mm_storeu_ps(c + k,
                    _mm_mul_ps(_mm_cvtepi32_ps(lo32), _mm_loadu_ps(steps + k)));
      _mm_storeu_ps(c + k + 4,
                    _mm_mul_ps(_mm_cvtepi32_ps(hi32), _mm_loadu_ps(steps + k + 4)));
    }
  }
}

// ------------------------------------------------------------------ tiling

void tile_f32_sse2(const float* src, int w, int h, int grid_bx, int grid_by,
                   float* dst, float bias) {
  const __m128 vb = _mm_set1_ps(bias);
  const int full_bx = w / kBlockDim;
  const int full_by = h / kBlockDim;
  for (int by = 0; by < grid_by; ++by) {
    for (int bx = 0; bx < grid_bx; ++bx) {
      float* blk = dst + (static_cast<std::size_t>(by) * grid_bx + bx) * kBlockSize;
      if (bx < full_bx && by < full_by) {
        const float* row = src + static_cast<std::size_t>(by) * kBlockDim * w +
                           static_cast<std::size_t>(bx) * kBlockDim;
        for (int y = 0; y < kBlockDim; ++y, row += w, blk += kBlockDim) {
          _mm_storeu_ps(blk, _mm_add_ps(_mm_loadu_ps(row), vb));
          _mm_storeu_ps(blk + 4, _mm_add_ps(_mm_loadu_ps(row + 4), vb));
        }
      } else {
        detail::tile_edge_block_f32(src, w, h, bx, by, blk, bias);
      }
    }
  }
}

void tile_u8_sse2(const std::uint8_t* src, int w, int h, int channels, int grid_bx,
                  int grid_by, float* dst, float bias) {
  const std::size_t row_stride = static_cast<std::size_t>(w) * channels;
  const __m128 vb = _mm_set1_ps(bias);
  const __m128i zero = _mm_setzero_si128();
  const int full_bx = w / kBlockDim;
  const int full_by = h / kBlockDim;
  for (int by = 0; by < grid_by; ++by) {
    for (int bx = 0; bx < grid_bx; ++bx) {
      float* blk = dst + (static_cast<std::size_t>(by) * grid_bx + bx) * kBlockSize;
      if (bx < full_bx && by < full_by) {
        const std::uint8_t* row = src +
                                  static_cast<std::size_t>(by) * kBlockDim * row_stride +
                                  static_cast<std::size_t>(bx) * kBlockDim * channels;
        if (channels == 1) {
          for (int y = 0; y < kBlockDim; ++y, row += row_stride, blk += kBlockDim) {
            const __m128i bytes =
                _mm_loadl_epi64(reinterpret_cast<const __m128i*>(row));
            const __m128i w16 = _mm_unpacklo_epi8(bytes, zero);
            const __m128i lo32 = _mm_unpacklo_epi16(w16, zero);
            const __m128i hi32 = _mm_unpackhi_epi16(w16, zero);
            _mm_storeu_ps(blk, _mm_add_ps(_mm_cvtepi32_ps(lo32), vb));
            _mm_storeu_ps(blk + 4, _mm_add_ps(_mm_cvtepi32_ps(hi32), vb));
          }
        } else {
          detail::tile_full_block_u8(row, row_stride, channels, blk, bias);
        }
      } else {
        detail::tile_edge_block_u8(src, w, h, channels, bx, by, blk, bias);
      }
    }
  }
}

void untile_f32_sse2(const float* src, int grid_bx, int grid_by, float* plane, int w,
                     int h, float bias) {
  (void)grid_by;  // grid height is implied by h; kept for signature symmetry
  const __m128 vb = _mm_set1_ps(bias);
  for (int by = 0; by * kBlockDim < h; ++by) {
    const int ny = std::min(kBlockDim, h - by * kBlockDim);
    for (int bx = 0; bx * kBlockDim < w; ++bx) {
      const int nx = std::min(kBlockDim, w - bx * kBlockDim);
      const float* blk = src + (static_cast<std::size_t>(by) * grid_bx + bx) * kBlockSize;
      for (int y = 0; y < ny; ++y) {
        float* row = plane + static_cast<std::size_t>(by * kBlockDim + y) * w +
                     static_cast<std::size_t>(bx) * kBlockDim;
        if (nx == kBlockDim) {
          _mm_storeu_ps(row, _mm_add_ps(_mm_loadu_ps(blk + y * kBlockDim), vb));
          _mm_storeu_ps(row + 4, _mm_add_ps(_mm_loadu_ps(blk + y * kBlockDim + 4), vb));
        } else {
          for (int x = 0; x < nx; ++x) row[x] = blk[y * kBlockDim + x] + bias;
        }
      }
    }
  }
}

// ------------------------------------------------------------------- color

void rgb_to_ycbcr_sse2(const std::uint8_t* rgb, std::size_t n, float* y, float* cb,
                       float* cr) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // Deinterleave scalar (u8 -> float conversion is exact), transform
    // vectorized — lanes = pixels.
    alignas(16) float r4[4], g4[4], b4[4];
    for (int p = 0; p < 4; ++p) {
      r4[p] = static_cast<float>(rgb[(i + p) * 3]);
      g4[p] = static_cast<float>(rgb[(i + p) * 3 + 1]);
      b4[p] = static_cast<float>(rgb[(i + p) * 3 + 2]);
    }
    V4 vy, vcb, vcr;
    detail::ycbcr_from_rgb_vec(V4::load(r4), V4::load(g4), V4::load(b4), &vy, &vcb,
                               &vcr);
    vy.store(y + i);
    vcb.store(cb + i);
    vcr.store(cr + i);
  }
  for (; i < n; ++i) {
    const auto ycc = image::rgb_to_ycbcr(rgb[i * 3], rgb[i * 3 + 1], rgb[i * 3 + 2]);
    y[i] = ycc[0];
    cb[i] = ycc[1];
    cr[i] = ycc[2];
  }
}

// Rounds like image::clamp_u8 (nearbyint, clamp to [0, 255]) and returns
// the int32 lanes.
inline __m128i clamp_u8_vec(__m128 v) {
  const __m128 bias = _mm_set1_ps(12582912.0f);
  v = _mm_sub_ps(_mm_add_ps(v, bias), bias);
  v = _mm_min_ps(_mm_max_ps(v, _mm_setzero_ps()), _mm_set1_ps(255.0f));
  return _mm_cvtps_epi32(v);
}

void ycbcr_to_rgb_row_sse2(const float* y, const float* cb, const float* cr, int n,
                           std::uint8_t* rgb) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    V4 vr, vg, vb;
    detail::rgb_from_ycbcr_vec(V4::load(y + i), V4::load(cb + i), V4::load(cr + i),
                               &vr, &vg, &vb);
    alignas(16) std::int32_t r4[4], g4[4], b4[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(r4), clamp_u8_vec(vr.v));
    _mm_store_si128(reinterpret_cast<__m128i*>(g4), clamp_u8_vec(vg.v));
    _mm_store_si128(reinterpret_cast<__m128i*>(b4), clamp_u8_vec(vb.v));
    for (int p = 0; p < 4; ++p) {
      rgb[(i + p) * 3] = static_cast<std::uint8_t>(r4[p]);
      rgb[(i + p) * 3 + 1] = static_cast<std::uint8_t>(g4[p]);
      rgb[(i + p) * 3 + 2] = static_cast<std::uint8_t>(b4[p]);
    }
  }
  for (; i < n; ++i) {
    const auto px = image::ycbcr_to_rgb(y[i], cb[i], cr[i]);
    rgb[i * 3] = image::clamp_u8(px[0]);
    rgb[i * 3 + 1] = image::clamp_u8(px[1]);
    rgb[i * 3 + 2] = image::clamp_u8(px[2]);
  }
}

void f32_to_u8_row_sse2(const float* src, int n, std::uint8_t* dst) {
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i lo = clamp_u8_vec(_mm_loadu_ps(src + i));
    const __m128i hi = clamp_u8_vec(_mm_loadu_ps(src + i + 4));
    const __m128i packed = _mm_packus_epi16(_mm_packs_epi32(lo, hi), _mm_setzero_si128());
    _mm_storel_epi64(reinterpret_cast<__m128i*>(dst + i), packed);
  }
  for (; i < n; ++i) dst[i] = image::clamp_u8(src[i]);
}

// ----------------------------------------------------------------- metrics

std::uint64_t sum_sq_diff_u8_sse2(const std::uint8_t* a, const std::uint8_t* b,
                                  std::size_t n) {
  const __m128i zero = _mm_setzero_si128();
  __m128i acc = zero;  // two uint64 lanes
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    const __m128i d0 = _mm_sub_epi16(_mm_unpacklo_epi8(va, zero),
                                     _mm_unpacklo_epi8(vb, zero));
    const __m128i d1 = _mm_sub_epi16(_mm_unpackhi_epi8(va, zero),
                                     _mm_unpackhi_epi8(vb, zero));
    // madd sums adjacent squared diffs into non-negative int32 lanes;
    // zero-extend those into the uint64 accumulator. Integer arithmetic is
    // exact, so any accumulation order matches scalar.
    const __m128i s0 = _mm_madd_epi16(d0, d0);
    const __m128i s1 = _mm_madd_epi16(d1, d1);
    acc = _mm_add_epi64(acc, _mm_unpacklo_epi32(s0, zero));
    acc = _mm_add_epi64(acc, _mm_unpackhi_epi32(s0, zero));
    acc = _mm_add_epi64(acc, _mm_unpacklo_epi32(s1, zero));
    acc = _mm_add_epi64(acc, _mm_unpackhi_epi32(s1, zero));
  }
  alignas(16) std::uint64_t lanes[2];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), acc);
  std::uint64_t sum = lanes[0] + lanes[1];
  for (; i < n; ++i) {
    const int d = static_cast<int>(a[i]) - static_cast<int>(b[i]);
    sum += static_cast<std::uint64_t>(d * d);
  }
  return sum;
}

// ---------------------------------------------------------------- SA model

void quant_error_block_sse2(const float* block, const double* steps, double* sq) {
  // Round-to-nearest-even via the 2^52 bias trick — matches std::nearbyint
  // for |x| < 2^51, far beyond any DCT coefficient / step ratio.
  const __m128d bias = _mm_set1_pd(6755399441055744.0);  // 1.5 * 2^52
  for (int k = 0; k < kBlockSize; k += 2) {
    // 8-byte load through the may_alias __m128i intrinsic — _mm_load_sd
    // would dereference the floats as a double and trip TBAA.
    const __m128d c = _mm_cvtps_pd(_mm_castsi128_ps(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(block + k))));
    const __m128d q = _mm_loadu_pd(steps + k);
    const __m128d t = _mm_div_pd(c, q);
    const __m128d r = _mm_sub_pd(_mm_add_pd(t, bias), bias);
    const __m128d rec = _mm_mul_pd(r, q);
    const __m128d d = _mm_sub_pd(c, rec);
    _mm_storeu_pd(sq + k, _mm_mul_pd(d, d));
  }
}

// -------------------------------------------------------------------- GEMM

void gemm_acc_sse2(const float* a, const float* b, float* c, int m, int k, int n) {
  detail::gemm_acc_vec<V4>(a, b, c, m, k, n);
}

void gemm_at_acc_sse2(const float* a, const float* b, float* c, int m, int k, int n) {
  detail::gemm_at_acc_vec<V4>(a, b, c, m, k, n);
}

// ------------------------------------------------------------- entropy I/O

std::uint64_t nonzero_mask_i16_64_sse2(const std::int16_t* v) {
  const __m128i zero = _mm_setzero_si128();
  std::uint64_t mask = 0;
  for (int i = 0; i < 4; ++i) {
    const __m128i lo =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + i * 16));
    const __m128i hi =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + i * 16 + 8));
    // Zero lanes compare to 0xFFFF; packing the two compares yields one
    // 0xFF/0x00 byte per int16 lane, movemask extracts those to bits and
    // the complement is the nonzero mask. Pure integer compare: identical
    // to the scalar predicate for every input.
    const __m128i z =
        _mm_packs_epi16(_mm_cmpeq_epi16(lo, zero), _mm_cmpeq_epi16(hi, zero));
    const unsigned zeros = static_cast<unsigned>(_mm_movemask_epi8(z));
    mask |= static_cast<std::uint64_t>(~zeros & 0xFFFFu) << (i * 16);
  }
  return mask;
}

std::size_t stuff_bytes_sse2(const std::uint8_t* src, std::size_t n,
                             std::uint8_t* dst) {
  const __m128i ff = _mm_set1_epi8(static_cast<char>(0xFF));
  std::size_t i = 0, o = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    // Optimistic bulk copy: `dst` has 2n capacity and o <= 2i, so the
    // 16-byte store stays in bounds even when the chunk is redone with
    // stuffing below.
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + o), v);
    if (_mm_movemask_epi8(_mm_cmpeq_epi8(v, ff)) == 0) {
      o += 16;
      continue;
    }
    for (std::size_t j = 0; j < 16; ++j) {
      const std::uint8_t b = src[i + j];
      dst[o++] = b;
      if (b == 0xFF) dst[o++] = 0x00;
    }
  }
  for (; i < n; ++i) {
    const std::uint8_t b = src[i];
    dst[o++] = b;
    if (b == 0xFF) dst[o++] = 0x00;
  }
  return o;
}

}  // namespace

const KernelTable* sse2_kernels() {
  static const KernelTable table = {
      &fdct_batch_sse2,
      &idct_batch_sse2,
      &quantize_zigzag_batch_sse2,
      &dequantize_batch_sse2,
      &tile_f32_sse2,
      &tile_u8_sse2,
      &untile_f32_sse2,
      &rgb_to_ycbcr_sse2,
      &ycbcr_to_rgb_row_sse2,
      &f32_to_u8_row_sse2,
      &sum_sq_diff_u8_sse2,
      &quant_error_block_sse2,
      &gemm_acc_sse2,
      &gemm_at_acc_sse2,
      &nonzero_mask_i16_64_sse2,
      &stuff_bytes_sse2,
  };
  return &table;
}

}  // namespace dnj::simd

#else  // !__SSE2__

namespace dnj::simd {
const KernelTable* sse2_kernels() { return nullptr; }
}  // namespace dnj::simd

#endif
