// Internal: per-level kernel tables consumed by the dispatch core.
//
// Each TU fills a KernelTable with the kernels it implements and leaves
// the rest null; dispatch.cpp merges tables so every slot falls back to
// the widest narrower implementation. A TU compiled without its ISA
// support (non-x86 build, DNJ_AVX2=OFF) returns nullptr instead.
#pragma once

#include "simd/dispatch.hpp"

namespace dnj::simd {

/// Complete scalar table (never null; the fallback floor).
const KernelTable* scalar_kernels();

/// SSE2 table, or nullptr when the build has no SSE2 target support.
const KernelTable* sse2_kernels();

/// AVX2 table, or nullptr when the AVX2 TU was not compiled (DNJ_AVX2=OFF
/// or no compiler support).
const KernelTable* avx2_kernels();

}  // namespace dnj::simd
