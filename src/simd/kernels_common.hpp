// Internal helpers shared by the per-level kernel TUs.
//
// Two kinds of sharing live here:
//
//  * scalar edge/tail helpers (block tiling at plane edges, the zig-zag
//    permute) that every level runs unchanged, so the slow paths are one
//    definition instead of three;
//  * kernel bodies templated over a tiny vector wrapper `V` (load/store/
//    set1 + arithmetic operators, lane count V::kWidth). Each SIMD TU
//    instantiates them with its own wrapper; because the template mirrors
//    the scalar operation sequence statement by statement, every lane
//    executes exactly the scalar arithmetic — the mechanical half of the
//    determinism contract. The TUs compile with -ffp-contract=off so the
//    written mul/add sequence is also the executed one.
#pragma once

#include <algorithm>
#include <cstdint>

#include "jpeg/zigzag.hpp"

namespace dnj::simd::detail {

inline constexpr int kBlockDim = 8;
inline constexpr int kBlockSize = 64;

// Note on linkage: the non-template helpers below are `static` on purpose.
// They are compiled into every kernel TU — including the -mavx2 one — and
// plain `inline` would emit them as weak symbols the linker may resolve to
// the AVX-encoded copy even for scalar/SSE2 callers, breaking the
// "baseline-portable binary" contract in unoptimized builds. Internal
// linkage keeps each TU's copy private to the ISA it was compiled for.

// --------------------------------------------------------------- edge tiles

/// Fills one 8x8 block that overlaps the right/bottom plane edge, replicating
/// the last row/column (tile_blocks_into edge semantics).
static inline void tile_edge_block_f32(const float* src, int w, int h, int bx, int by,
                                float* blk, float bias) {
  for (int y = 0; y < kBlockDim; ++y) {
    const int sy = std::min(by * kBlockDim + y, h - 1);
    const float* row = src + static_cast<std::size_t>(sy) * w;
    for (int x = 0; x < kBlockDim; ++x)
      blk[y * kBlockDim + x] = row[std::min(bx * kBlockDim + x, w - 1)] + bias;
  }
}

/// Edge-block variant for interleaved u8 sources (`src` points at the first
/// sample of the channel; samples are `ch` apart).
static inline void tile_edge_block_u8(const std::uint8_t* src, int w, int h, int ch, int bx,
                               int by, float* blk, float bias) {
  const std::size_t row_stride = static_cast<std::size_t>(w) * ch;
  for (int y = 0; y < kBlockDim; ++y) {
    const int sy = std::min(by * kBlockDim + y, h - 1);
    const std::uint8_t* row = src + static_cast<std::size_t>(sy) * row_stride;
    for (int x = 0; x < kBlockDim; ++x) {
      const int sx = std::min(bx * kBlockDim + x, w - 1);
      blk[y * kBlockDim + x] =
          static_cast<float>(row[static_cast<std::size_t>(sx) * ch]) + bias;
    }
  }
}

/// Fully in-plane u8 block for channel strides the SIMD paths don't cover
/// (interleaved RGB): the plain convert-and-bias loop.
static inline void tile_full_block_u8(const std::uint8_t* row, std::size_t row_stride, int ch,
                               float* blk, float bias) {
  for (int y = 0; y < kBlockDim; ++y, row += row_stride, blk += kBlockDim)
    for (int x = 0; x < kBlockDim; ++x)
      blk[x] = static_cast<float>(row[static_cast<std::size_t>(x) * ch]) + bias;
}

/// Permutes one block of natural-order int16 coefficients into zig-zag scan
/// order (integer moves only — level-independent by construction).
static inline void zigzag_permute_i16(const std::int16_t* natural, std::int16_t* zz) {
  for (int k = 0; k < 64; ++k)
    zz[k] = natural[jpeg::kZigzag[static_cast<std::size_t>(k)]];
}

// ------------------------------------------------------- templated kernels

/// The four AAN rotation constants pre-broadcast, so a batch kernel can
/// hoist them out of its block loop.
template <class V>
struct AanConsts {
  V c0707 = V::set1(0.707106781f);
  V c0382 = V::set1(0.382683433f);
  V c0541 = V::set1(0.541196100f);
  V c1306 = V::set1(1.306562965f);
};

/// One 8-point AAN forward butterfly over 8 vectors — the exact statement
/// sequence of the scalar aan_1d, each lane one independent 1-D transform.
template <class V>
inline void aan_butterfly(V p[8], const AanConsts<V>& k = AanConsts<V>()) {
  const V tmp0 = p[0] + p[7];
  const V tmp7 = p[0] - p[7];
  const V tmp1 = p[1] + p[6];
  const V tmp6 = p[1] - p[6];
  const V tmp2 = p[2] + p[5];
  const V tmp5 = p[2] - p[5];
  const V tmp3 = p[3] + p[4];
  const V tmp4 = p[3] - p[4];

  // Even part.
  const V tmp10 = tmp0 + tmp3;
  const V tmp13 = tmp0 - tmp3;
  const V tmp11 = tmp1 + tmp2;
  const V tmp12 = tmp1 - tmp2;

  p[0] = tmp10 + tmp11;
  p[4] = tmp10 - tmp11;

  const V z1 = (tmp12 + tmp13) * k.c0707;
  p[2] = tmp13 + z1;
  p[6] = tmp13 - z1;

  // Odd part.
  const V t10 = tmp4 + tmp5;
  const V t11 = tmp5 + tmp6;
  const V t12 = tmp6 + tmp7;

  const V z5 = (t10 - t12) * k.c0382;
  const V z2 = k.c0541 * t10 + z5;
  const V z4 = k.c1306 * t12 + z5;
  const V z3 = t11 * k.c0707;

  const V z11 = tmp7 + z3;
  const V z13 = tmp7 - z3;

  p[5] = z13 + z2;
  p[3] = z13 - z2;
  p[1] = z11 + z4;
  p[7] = z11 - z4;
}

/// Row-column inverse DCT of one block, vectorized over output columns
/// (pass 1, lanes = v) then over output sample columns (pass 2, lanes = y).
/// `m` is the row-major orthonormal basis (jpeg::dct_basis_table()). Each
/// lane accumulates 0 + t0 + t1 + ... in the scalar idct_8x8 order.
template <class V>
inline void idct_block_vec(float* blk, const float* m) {
  float tmp[kBlockSize];
  for (int c0 = 0; c0 < kBlockDim; c0 += V::kWidth) {
    for (int x = 0; x < kBlockDim; ++x) {
      V acc = V::set1(0.0f);
      for (int u = 0; u < kBlockDim; ++u)
        acc = acc + V::set1(m[u * kBlockDim + x]) * V::load(blk + u * kBlockDim + c0);
      acc.store(tmp + x * kBlockDim + c0);
    }
  }
  for (int y0 = 0; y0 < kBlockDim; y0 += V::kWidth) {
    for (int x = 0; x < kBlockDim; ++x) {
      V acc = V::set1(0.0f);
      for (int v = 0; v < kBlockDim; ++v)
        acc = acc + V::set1(tmp[x * kBlockDim + v]) * V::load(m + v * kBlockDim + y0);
      acc.store(blk + x * kBlockDim + y0);
    }
  }
}

/// Rounds to the integer grid with the FPU's round-to-nearest-even — the
/// vector twin of jpeg::round_half_even (valid for |x| < 2^22).
template <class V>
inline V round_half_even_vec(V x) {
  const V bias = V::set1(12582912.0f);  // 1.5 * 2^23
  return (x + bias) - bias;
}

/// JFIF BT.601 forward transform, lanes = pixels; the exact expression
/// order of image::rgb_to_ycbcr.
template <class V>
inline void ycbcr_from_rgb_vec(V r, V g, V b, V* y, V* cb, V* cr) {
  *y = V::set1(0.299f) * r + V::set1(0.587f) * g + V::set1(0.114f) * b;
  *cb = V::set1(-0.168736f) * r - V::set1(0.331264f) * g + V::set1(0.5f) * b +
        V::set1(128.0f);
  *cr = V::set1(0.5f) * r - V::set1(0.418688f) * g - V::set1(0.081312f) * b +
        V::set1(128.0f);
}

/// Inverse transform, lanes = pixels; exact expression order of
/// image::ycbcr_to_rgb.
template <class V>
inline void rgb_from_ycbcr_vec(V y, V cb, V cr, V* r, V* g, V* b) {
  *r = y + V::set1(1.402f) * (cr - V::set1(128.0f));
  *g = y - V::set1(0.344136f) * (cb - V::set1(128.0f)) -
       V::set1(0.714136f) * (cr - V::set1(128.0f));
  *b = y + V::set1(1.772f) * (cb - V::set1(128.0f));
}

/// Register-blocked C[m x n] += A[m x k] * B[k x n] (row-major). The C tile
/// (4 rows x 2 vectors) lives in registers across the whole k loop; each
/// C element still accumulates a[i][kk] * b[kk][j] in ascending-kk order
/// with the scalar zero-skip, so the result is bit-identical to the naive
/// ikj loop. Column/row tails fall back to narrower tiles and finally the
/// plain scalar loop.
template <class V>
inline void gemm_acc_vec(const float* a, const float* b, float* c, int m, int k,
                         int n) {
  constexpr int W = V::kWidth;
  constexpr int MR = 4;
  const int NR = 2 * W;
  int j0 = 0;
  for (; j0 + NR <= n; j0 += NR) {
    int i0 = 0;
    for (; i0 + MR <= m; i0 += MR) {
      V acc[MR][2];
      for (int r = 0; r < MR; ++r) {
        float* crow = c + static_cast<std::size_t>(i0 + r) * n + j0;
        acc[r][0] = V::load(crow);
        acc[r][1] = V::load(crow + W);
      }
      for (int kk = 0; kk < k; ++kk) {
        const float* brow = b + static_cast<std::size_t>(kk) * n + j0;
        const V b0 = V::load(brow);
        const V b1 = V::load(brow + W);
        for (int r = 0; r < MR; ++r) {
          const float av = a[static_cast<std::size_t>(i0 + r) * k + kk];
          if (av == 0.0f) continue;
          const V va = V::set1(av);
          acc[r][0] = acc[r][0] + va * b0;
          acc[r][1] = acc[r][1] + va * b1;
        }
      }
      for (int r = 0; r < MR; ++r) {
        float* crow = c + static_cast<std::size_t>(i0 + r) * n + j0;
        acc[r][0].store(crow);
        acc[r][1].store(crow + W);
      }
    }
    for (; i0 < m; ++i0) {
      float* crow = c + static_cast<std::size_t>(i0) * n + j0;
      V a0 = V::load(crow);
      V a1 = V::load(crow + W);
      for (int kk = 0; kk < k; ++kk) {
        const float av = a[static_cast<std::size_t>(i0) * k + kk];
        if (av == 0.0f) continue;
        const float* brow = b + static_cast<std::size_t>(kk) * n + j0;
        const V va = V::set1(av);
        a0 = a0 + va * V::load(brow);
        a1 = a1 + va * V::load(brow + W);
      }
      a0.store(crow);
      a1.store(crow + W);
    }
  }
  if (j0 < n) {
    for (int i = 0; i < m; ++i) {
      const float* arow = a + static_cast<std::size_t>(i) * k;
      float* crow = c + static_cast<std::size_t>(i) * n;
      for (int kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        if (av == 0.0f) continue;
        const float* brow = b + static_cast<std::size_t>(kk) * n;
        for (int j = j0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

/// Register-blocked C[m x n] += A^T * B with A stored [k x m] (k-major).
/// Same accumulation-order guarantees as gemm_acc_vec.
template <class V>
inline void gemm_at_acc_vec(const float* a, const float* b, float* c, int m, int k,
                            int n) {
  constexpr int W = V::kWidth;
  constexpr int MR = 4;
  const int NR = 2 * W;
  int j0 = 0;
  for (; j0 + NR <= n; j0 += NR) {
    int i0 = 0;
    for (; i0 + MR <= m; i0 += MR) {
      V acc[MR][2];
      for (int r = 0; r < MR; ++r) {
        float* crow = c + static_cast<std::size_t>(i0 + r) * n + j0;
        acc[r][0] = V::load(crow);
        acc[r][1] = V::load(crow + W);
      }
      for (int kk = 0; kk < k; ++kk) {
        const float* brow = b + static_cast<std::size_t>(kk) * n + j0;
        const V b0 = V::load(brow);
        const V b1 = V::load(brow + W);
        const float* arow = a + static_cast<std::size_t>(kk) * m + i0;
        for (int r = 0; r < MR; ++r) {
          const float av = arow[r];
          if (av == 0.0f) continue;
          const V va = V::set1(av);
          acc[r][0] = acc[r][0] + va * b0;
          acc[r][1] = acc[r][1] + va * b1;
        }
      }
      for (int r = 0; r < MR; ++r) {
        float* crow = c + static_cast<std::size_t>(i0 + r) * n + j0;
        acc[r][0].store(crow);
        acc[r][1].store(crow + W);
      }
    }
    for (; i0 < m; ++i0) {
      float* crow = c + static_cast<std::size_t>(i0) * n + j0;
      V a0 = V::load(crow);
      V a1 = V::load(crow + W);
      for (int kk = 0; kk < k; ++kk) {
        const float av = a[static_cast<std::size_t>(kk) * m + i0];
        if (av == 0.0f) continue;
        const float* brow = b + static_cast<std::size_t>(kk) * n + j0;
        const V va = V::set1(av);
        a0 = a0 + va * V::load(brow);
        a1 = a1 + va * V::load(brow + W);
      }
      a0.store(crow);
      a1.store(crow + W);
    }
  }
  if (j0 < n) {
    for (int kk = 0; kk < k; ++kk) {
      const float* arow = a + static_cast<std::size_t>(kk) * m;
      const float* brow = b + static_cast<std::size_t>(kk) * n;
      for (int i = 0; i < m; ++i) {
        const float av = arow[i];
        if (av == 0.0f) continue;
        float* crow = c + static_cast<std::size_t>(i) * n;
        for (int j = j0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

}  // namespace dnj::simd::detail
