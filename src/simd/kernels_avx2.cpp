// AVX2 kernel table (8-wide float, 4-wide double). This is the only TU
// compiled with -mavx2 (CMake option DNJ_AVX2; DNJ_NATIVE swaps in
// -march=native); everything it defines is reached strictly through the
// runtime-dispatched function-pointer table after a cpuid check, so the
// rest of the binary stays baseline-portable.
//
// Determinism: same lane discipline as the SSE2 TU — and although
// -mavx2-era hardware has FMA, this TU never uses FMA intrinsics and
// builds with -ffp-contract=off, so the mul/add sequences stay exactly
// the scalar ones.
#include "simd/kernels.hpp"

#if defined(DNJ_SIMD_AVX2_TU) && defined(__AVX2__)

#include <immintrin.h>

#include "image/color.hpp"
#include "image/image.hpp"
#include "jpeg/dct.hpp"
#include "jpeg/quant.hpp"
#include "simd/kernels_common.hpp"

namespace dnj::simd {

namespace {

using detail::kBlockDim;
using detail::kBlockSize;

struct V8 {
  __m256 v;
  static constexpr int kWidth = 8;
  static V8 load(const float* p) { return {_mm256_loadu_ps(p)}; }
  static V8 set1(float x) { return {_mm256_set1_ps(x)}; }
  void store(float* p) const { _mm256_storeu_ps(p, v); }
  friend V8 operator+(V8 a, V8 b) { return {_mm256_add_ps(a.v, b.v)}; }
  friend V8 operator-(V8 a, V8 b) { return {_mm256_sub_ps(a.v, b.v)}; }
  friend V8 operator*(V8 a, V8 b) { return {_mm256_mul_ps(a.v, b.v)}; }
};

// ------------------------------------------------------------------- DCT

// Lane-parallel 4x4 transpose: _MM_TRANSPOSE4_PS applied to both 128-bit
// halves of four ymm registers at once (all ops are lane-local).
inline void transpose4x4_lanes(__m256& a, __m256& b, __m256& c, __m256& d) {
  const __m256 t0 = _mm256_unpacklo_ps(a, b);
  const __m256 t1 = _mm256_unpackhi_ps(a, b);
  const __m256 t2 = _mm256_unpacklo_ps(c, d);
  const __m256 t3 = _mm256_unpackhi_ps(c, d);
  a = _mm256_shuffle_ps(t0, t2, 0x44);
  b = _mm256_shuffle_ps(t0, t2, 0xEE);
  c = _mm256_shuffle_ps(t1, t3, 0x44);
  d = _mm256_shuffle_ps(t1, t3, 0xEE);
}

inline void butterfly_regs(__m256 r[8], const detail::AanConsts<V8>& consts) {
  V8 p[8];
  for (int i = 0; i < 8; ++i) p[i].v = r[i];
  detail::aan_butterfly(p, consts);
  for (int i = 0; i < 8; ++i) r[i] = p[i].v;
}

// One whole block in registers. Pass order matches the scalar fdct_8x8 —
// row pass (lanes = rows), column pass (lanes = columns), multiplicative
// descale — with the transposes arranged to spare the shuffle port, which
// is what bounds this kernel:
//
//  * transpose #1 runs its distance-4 (cross-lane) stage inside the loads:
//    m[i]/n[i] pair row i with row i+4 across the 128-bit lanes via
//    memory-form vinsertf128, which the load pipes handle; the remaining
//    stages are two lane-local 4x4 transposes.
//  * transpose #2 runs its lane-local stages first and needs only one
//    cross-lane permute stage at the end.
void fdct_batch_avx2(float* blocks, std::size_t count) {
  const float* descale = jpeg::aan_descale_table();
  const detail::AanConsts<V8> consts;  // butterfly constants hoisted off the loop
  for (std::size_t b = 0; b < count; ++b) {
    float* blk = blocks + b * kBlockSize;
    // m[i] = [row i cols 0-3 | row i+4 cols 0-3]; n[i] = the cols 4-7 half.
    __m256 m[4], n[4];
    for (int i = 0; i < 4; ++i) {
      m[i] = _mm256_insertf128_ps(_mm256_castps128_ps256(_mm_loadu_ps(blk + i * 8)),
                                  _mm_loadu_ps(blk + (i + 4) * 8), 1);
      n[i] = _mm256_insertf128_ps(
          _mm256_castps128_ps256(_mm_loadu_ps(blk + i * 8 + 4)),
          _mm_loadu_ps(blk + (i + 4) * 8 + 4), 1);
    }
    // Finish transpose #1: t[j] = column j of the block, lanes = rows 0..7.
    transpose4x4_lanes(m[0], m[1], m[2], m[3]);
    transpose4x4_lanes(n[0], n[1], n[2], n[3]);
    __m256 t[8] = {m[0], m[1], m[2], m[3], n[0], n[1], n[2], n[3]};
    butterfly_regs(t, consts);  // row pass
    // Transpose #2: after the lane-local stages, t[i] holds elements 0-3 of
    // rows (i, i+4) and t[i+4] holds their elements 4-7; one cross-lane
    // permute pair reassembles full rows.
    transpose4x4_lanes(t[0], t[1], t[2], t[3]);
    transpose4x4_lanes(t[4], t[5], t[6], t[7]);
    __m256 r[8];
    for (int i = 0; i < 4; ++i) {
      r[i] = _mm256_permute2f128_ps(t[i], t[i + 4], 0x20);
      r[i + 4] = _mm256_permute2f128_ps(t[i], t[i + 4], 0x31);
    }
    butterfly_regs(r, consts);  // column pass
    // Descale rows are re-loaded per block on purpose: hoisting them pins
    // eight ymm registers across the loop and the resulting spill traffic
    // costs more than the (L1-resident) reloads.
    for (int i = 0; i < 8; ++i)
      _mm256_storeu_ps(blk + i * 8,
                       _mm256_mul_ps(r[i], _mm256_loadu_ps(descale + i * 8)));
  }
}

void idct_batch_avx2(float* blocks, std::size_t count) {
  const float* m = jpeg::dct_basis_table();
  for (std::size_t b = 0; b < count; ++b)
    detail::idct_block_vec<V8>(blocks + b * kBlockSize, m);
}

// ---------------------------------------------------------- quant/dequant

void quantize_zigzag_batch_avx2(const float* coeffs, std::size_t count,
                                const float* recip, std::int16_t* out) {
  const __m256 lo = _mm256_set1_ps(-32768.0f);
  const __m256 hi = _mm256_set1_ps(32767.0f);
  const __m256 bias = _mm256_set1_ps(12582912.0f);  // 1.5 * 2^23
  for (std::size_t b = 0; b < count; ++b) {
    const float* c = coeffs + b * kBlockSize;
    std::int16_t* zz = out + b * kBlockSize;
    alignas(32) std::int16_t natural[kBlockSize];
    for (int k = 0; k < kBlockSize; k += 16) {
      __m256 v0 = _mm256_mul_ps(_mm256_loadu_ps(c + k), _mm256_loadu_ps(recip + k));
      __m256 v1 =
          _mm256_mul_ps(_mm256_loadu_ps(c + k + 8), _mm256_loadu_ps(recip + k + 8));
      v0 = _mm256_sub_ps(_mm256_add_ps(v0, bias), bias);  // round half to even
      v1 = _mm256_sub_ps(_mm256_add_ps(v1, bias), bias);
      v0 = _mm256_min_ps(_mm256_max_ps(v0, lo), hi);
      v1 = _mm256_min_ps(_mm256_max_ps(v1, lo), hi);
      const __m256i i0 = _mm256_cvtps_epi32(v0);  // exact: values are integral
      const __m256i i1 = _mm256_cvtps_epi32(v1);
      // packs interleaves the 128-bit lanes; permute restores linear order.
      const __m256i packed = _mm256_permute4x64_epi64(_mm256_packs_epi32(i0, i1),
                                                      _MM_SHUFFLE(3, 1, 2, 0));
      _mm256_store_si256(reinterpret_cast<__m256i*>(natural + k), packed);
    }
    detail::zigzag_permute_i16(natural, zz);
  }
}

void dequantize_batch_avx2(const std::int16_t* quantized, std::size_t count,
                           const float* steps, float* coeffs) {
  for (std::size_t b = 0; b < count; ++b) {
    const std::int16_t* q = quantized + b * kBlockSize;
    float* c = coeffs + b * kBlockSize;
    for (int k = 0; k < kBlockSize; k += 8) {
      const __m256i w32 = _mm256_cvtepi16_epi32(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(q + k)));
      _mm256_storeu_ps(
          c + k, _mm256_mul_ps(_mm256_cvtepi32_ps(w32), _mm256_loadu_ps(steps + k)));
    }
  }
}

// ------------------------------------------------------------------ tiling

void tile_f32_avx2(const float* src, int w, int h, int grid_bx, int grid_by,
                   float* dst, float bias) {
  const __m256 vb = _mm256_set1_ps(bias);
  const int full_bx = w / kBlockDim;
  const int full_by = h / kBlockDim;
  for (int by = 0; by < grid_by; ++by) {
    for (int bx = 0; bx < grid_bx; ++bx) {
      float* blk = dst + (static_cast<std::size_t>(by) * grid_bx + bx) * kBlockSize;
      if (bx < full_bx && by < full_by) {
        const float* row = src + static_cast<std::size_t>(by) * kBlockDim * w +
                           static_cast<std::size_t>(bx) * kBlockDim;
        for (int y = 0; y < kBlockDim; ++y, row += w, blk += kBlockDim)
          _mm256_storeu_ps(blk, _mm256_add_ps(_mm256_loadu_ps(row), vb));
      } else {
        detail::tile_edge_block_f32(src, w, h, bx, by, blk, bias);
      }
    }
  }
}

void tile_u8_avx2(const std::uint8_t* src, int w, int h, int channels, int grid_bx,
                  int grid_by, float* dst, float bias) {
  const std::size_t row_stride = static_cast<std::size_t>(w) * channels;
  const __m256 vb = _mm256_set1_ps(bias);
  const int full_bx = w / kBlockDim;
  const int full_by = h / kBlockDim;
  for (int by = 0; by < grid_by; ++by) {
    for (int bx = 0; bx < grid_bx; ++bx) {
      float* blk = dst + (static_cast<std::size_t>(by) * grid_bx + bx) * kBlockSize;
      if (bx < full_bx && by < full_by) {
        const std::uint8_t* row = src +
                                  static_cast<std::size_t>(by) * kBlockDim * row_stride +
                                  static_cast<std::size_t>(bx) * kBlockDim * channels;
        if (channels == 1) {
          for (int y = 0; y < kBlockDim; ++y, row += row_stride, blk += kBlockDim) {
            const __m256i w32 = _mm256_cvtepu8_epi32(
                _mm_loadl_epi64(reinterpret_cast<const __m128i*>(row)));
            _mm256_storeu_ps(blk, _mm256_add_ps(_mm256_cvtepi32_ps(w32), vb));
          }
        } else {
          detail::tile_full_block_u8(row, row_stride, channels, blk, bias);
        }
      } else {
        detail::tile_edge_block_u8(src, w, h, channels, bx, by, blk, bias);
      }
    }
  }
}

void untile_f32_avx2(const float* src, int grid_bx, int grid_by, float* plane, int w,
                     int h, float bias) {
  (void)grid_by;  // grid height is implied by h; kept for signature symmetry
  const __m256 vb = _mm256_set1_ps(bias);
  for (int by = 0; by * kBlockDim < h; ++by) {
    const int ny = std::min(kBlockDim, h - by * kBlockDim);
    for (int bx = 0; bx * kBlockDim < w; ++bx) {
      const int nx = std::min(kBlockDim, w - bx * kBlockDim);
      const float* blk = src + (static_cast<std::size_t>(by) * grid_bx + bx) * kBlockSize;
      for (int y = 0; y < ny; ++y) {
        float* row = plane + static_cast<std::size_t>(by * kBlockDim + y) * w +
                     static_cast<std::size_t>(bx) * kBlockDim;
        if (nx == kBlockDim) {
          _mm256_storeu_ps(row, _mm256_add_ps(_mm256_loadu_ps(blk + y * kBlockDim), vb));
        } else {
          for (int x = 0; x < nx; ++x) row[x] = blk[y * kBlockDim + x] + bias;
        }
      }
    }
  }
}

// ------------------------------------------------------------------- color

void rgb_to_ycbcr_avx2(const std::uint8_t* rgb, std::size_t n, float* y, float* cb,
                       float* cr) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // Deinterleave scalar (u8 -> float conversion is exact), transform
    // vectorized — lanes = pixels.
    alignas(32) float r8[8], g8[8], b8[8];
    for (int p = 0; p < 8; ++p) {
      r8[p] = static_cast<float>(rgb[(i + p) * 3]);
      g8[p] = static_cast<float>(rgb[(i + p) * 3 + 1]);
      b8[p] = static_cast<float>(rgb[(i + p) * 3 + 2]);
    }
    V8 vy, vcb, vcr;
    detail::ycbcr_from_rgb_vec(V8::load(r8), V8::load(g8), V8::load(b8), &vy, &vcb,
                               &vcr);
    vy.store(y + i);
    vcb.store(cb + i);
    vcr.store(cr + i);
  }
  for (; i < n; ++i) {
    const auto ycc = image::rgb_to_ycbcr(rgb[i * 3], rgb[i * 3 + 1], rgb[i * 3 + 2]);
    y[i] = ycc[0];
    cb[i] = ycc[1];
    cr[i] = ycc[2];
  }
}

// Rounds like image::clamp_u8 (nearbyint, clamp to [0, 255]) and returns
// the int32 lanes.
inline __m256i clamp_u8_vec(__m256 v) {
  const __m256 bias = _mm256_set1_ps(12582912.0f);
  v = _mm256_sub_ps(_mm256_add_ps(v, bias), bias);
  v = _mm256_min_ps(_mm256_max_ps(v, _mm256_setzero_ps()), _mm256_set1_ps(255.0f));
  return _mm256_cvtps_epi32(v);
}

void ycbcr_to_rgb_row_avx2(const float* y, const float* cb, const float* cr, int n,
                           std::uint8_t* rgb) {
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    V8 vr, vg, vb;
    detail::rgb_from_ycbcr_vec(V8::load(y + i), V8::load(cb + i), V8::load(cr + i),
                               &vr, &vg, &vb);
    alignas(32) std::int32_t r8[8], g8[8], b8[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(r8), clamp_u8_vec(vr.v));
    _mm256_store_si256(reinterpret_cast<__m256i*>(g8), clamp_u8_vec(vg.v));
    _mm256_store_si256(reinterpret_cast<__m256i*>(b8), clamp_u8_vec(vb.v));
    for (int p = 0; p < 8; ++p) {
      rgb[(i + p) * 3] = static_cast<std::uint8_t>(r8[p]);
      rgb[(i + p) * 3 + 1] = static_cast<std::uint8_t>(g8[p]);
      rgb[(i + p) * 3 + 2] = static_cast<std::uint8_t>(b8[p]);
    }
  }
  for (; i < n; ++i) {
    const auto px = image::ycbcr_to_rgb(y[i], cb[i], cr[i]);
    rgb[i * 3] = image::clamp_u8(px[0]);
    rgb[i * 3 + 1] = image::clamp_u8(px[1]);
    rgb[i * 3 + 2] = image::clamp_u8(px[2]);
  }
}

void f32_to_u8_row_avx2(const float* src, int n, std::uint8_t* dst) {
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v = clamp_u8_vec(_mm256_loadu_ps(src + i));
    const __m128i lo = _mm256_castsi256_si128(v);
    const __m128i hi = _mm256_extracti128_si256(v, 1);
    const __m128i packed =
        _mm_packus_epi16(_mm_packs_epi32(lo, hi), _mm_setzero_si128());
    _mm_storel_epi64(reinterpret_cast<__m128i*>(dst + i), packed);
  }
  for (; i < n; ++i) dst[i] = image::clamp_u8(src[i]);
}

// ----------------------------------------------------------------- metrics

std::uint64_t sum_sq_diff_u8_avx2(const std::uint8_t* a, const std::uint8_t* b,
                                  std::size_t n) {
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc = zero;  // four uint64 lanes
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i va = _mm256_cvtepu8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)));
    const __m256i vb = _mm256_cvtepu8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i)));
    const __m256i d = _mm256_sub_epi16(va, vb);
    const __m256i s = _mm256_madd_epi16(d, d);  // 8 non-negative int32 lanes
    acc = _mm256_add_epi64(acc, _mm256_unpacklo_epi32(s, zero));
    acc = _mm256_add_epi64(acc, _mm256_unpackhi_epi32(s, zero));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::uint64_t sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) {
    const int d = static_cast<int>(a[i]) - static_cast<int>(b[i]);
    sum += static_cast<std::uint64_t>(d * d);
  }
  return sum;
}

// ---------------------------------------------------------------- SA model

void quant_error_block_avx2(const float* block, const double* steps, double* sq) {
  for (int k = 0; k < kBlockSize; k += 4) {
    const __m256d c = _mm256_cvtps_pd(_mm_loadu_ps(block + k));
    const __m256d q = _mm256_loadu_pd(steps + k);
    const __m256d t = _mm256_div_pd(c, q);
    // round_pd in the default rounding mode == std::nearbyint.
    const __m256d r =
        _mm256_round_pd(t, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    const __m256d rec = _mm256_mul_pd(r, q);
    const __m256d d = _mm256_sub_pd(c, rec);
    _mm256_storeu_pd(sq + k, _mm256_mul_pd(d, d));
  }
}

// -------------------------------------------------------------------- GEMM

void gemm_acc_avx2(const float* a, const float* b, float* c, int m, int k, int n) {
  detail::gemm_acc_vec<V8>(a, b, c, m, k, n);
}

void gemm_at_acc_avx2(const float* a, const float* b, float* c, int m, int k, int n) {
  detail::gemm_at_acc_vec<V8>(a, b, c, m, k, n);
}

// ------------------------------------------------------------- entropy I/O

std::uint64_t nonzero_mask_i16_64_avx2(const std::int16_t* v) {
  const __m256i zero = _mm256_setzero_si256();
  std::uint64_t mask = 0;
  for (int i = 0; i < 2; ++i) {
    const __m256i lo =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i * 32));
    const __m256i hi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i * 32 + 16));
    // Pack the zero-compares to one byte per int16 lane. packs works per
    // 128-bit lane, so permute the qwords back into linear byte order
    // before movemask. Pure integer compare, identical to scalar.
    __m256i z = _mm256_packs_epi16(_mm256_cmpeq_epi16(lo, zero),
                                   _mm256_cmpeq_epi16(hi, zero));
    z = _mm256_permute4x64_epi64(z, _MM_SHUFFLE(3, 1, 2, 0));
    const unsigned zeros = static_cast<unsigned>(_mm256_movemask_epi8(z));
    mask |= static_cast<std::uint64_t>(~zeros) << (i * 32);
  }
  return mask;
}

std::size_t stuff_bytes_avx2(const std::uint8_t* src, std::size_t n,
                             std::uint8_t* dst) {
  const __m256i ff = _mm256_set1_epi8(static_cast<char>(0xFF));
  std::size_t i = 0, o = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    // Optimistic bulk copy: `dst` has 2n capacity and o <= 2i, so the
    // 32-byte store stays in bounds even when the chunk is redone with
    // stuffing below.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + o), v);
    if (_mm256_movemask_epi8(_mm256_cmpeq_epi8(v, ff)) == 0) {
      o += 32;
      continue;
    }
    for (std::size_t j = 0; j < 32; ++j) {
      const std::uint8_t b = src[i + j];
      dst[o++] = b;
      if (b == 0xFF) dst[o++] = 0x00;
    }
  }
  for (; i < n; ++i) {
    const std::uint8_t b = src[i];
    dst[o++] = b;
    if (b == 0xFF) dst[o++] = 0x00;
  }
  return o;
}

}  // namespace

const KernelTable* avx2_kernels() {
  static const KernelTable table = {
      &fdct_batch_avx2,
      &idct_batch_avx2,
      &quantize_zigzag_batch_avx2,
      &dequantize_batch_avx2,
      &tile_f32_avx2,
      &tile_u8_avx2,
      &untile_f32_avx2,
      &rgb_to_ycbcr_avx2,
      &ycbcr_to_rgb_row_avx2,
      &f32_to_u8_row_avx2,
      &sum_sq_diff_u8_avx2,
      &quant_error_block_avx2,
      &gemm_acc_avx2,
      &gemm_at_acc_avx2,
      &nonzero_mask_i16_64_avx2,
      &stuff_bytes_avx2,
  };
  return &table;
}

}  // namespace dnj::simd

#else  // AVX2 TU not enabled

namespace dnj::simd {
const KernelTable* avx2_kernels() { return nullptr; }
}  // namespace dnj::simd

#endif
