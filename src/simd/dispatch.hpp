// Runtime-dispatched SIMD kernel layer.
//
// Every hot loop of the codec pipeline and the NN GEMM funnels through one
// per-kernel function-pointer table that is resolved once at startup:
// cpuid-style feature detection picks the widest supported level, the
// `DNJ_SIMD` environment variable (`auto|scalar|sse2|avx2`) or the
// `set_level()` API can pin a narrower one, and unsupported/absent levels
// fall back per kernel to the next level down (avx2 -> sse2 -> scalar).
//
// The determinism contract: every vector lane executes the exact scalar
// operation sequence. Kernels vectorize across independent outputs (blocks
// of the SoA coefficient plane, output columns of a GEMM, pixels of a row)
// and never reassociate a scalar reduction or contract mul+add into FMA
// (the kernel TUs build with -ffp-contract=off). Consequently scalar,
// SSE2 and AVX2 produce bit-identical encoded streams, SA costs, metrics
// and trained weights — pinned by tests/test_simd_kernels.cpp and
// tests/test_simd_determinism.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace dnj::simd {

enum class Level : int { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// Lower-case name ("scalar", "sse2", "avx2") for logs, benches and JSON.
const char* level_name(Level level);

/// Parses "scalar"/"sse2"/"avx2" (as accepted by DNJ_SIMD). Returns false
/// on anything else ("auto" included — resolve that via max_supported_level).
bool parse_level(std::string_view name, Level* out);

/// Widest level both compiled in and supported by the running CPU.
Level max_supported_level();

/// The level the kernel table currently dispatches to.
Level active_level();

/// Pins the dispatch table to `level`. Returns false (and changes nothing)
/// when the level is not compiled in or not supported by the CPU. Intended
/// for tests and benches; not safe to call concurrently with kernel use.
bool set_level(Level level);

/// Per-kernel entry points. All pointers are always non-null after
/// resolution; a level that lacks an implementation inherits the next
/// lower level's pointer.
struct KernelTable {
  /// In-place forward AAN DCT over `count` contiguous 64-float blocks
  /// (CoeffPlane layout), output in JPEG normalization.
  void (*fdct_batch)(float* blocks, std::size_t count);
  /// In-place inverse DCT over `count` contiguous 64-float blocks.
  void (*idct_batch)(float* blocks, std::size_t count);
  /// Fused quantize + zig-zag: natural-order float blocks -> zig-zag int16
  /// blocks via v = round_half_even(c * recip[k]) with clamp to int16.
  /// `recip` is the 64-entry natural-order reciprocal array.
  void (*quantize_zigzag_batch)(const float* coeffs, std::size_t count,
                                const float* recip, std::int16_t* out);
  /// Batched dequantize: c' = v * step[k], natural-order int16 -> float.
  void (*dequantize_batch)(const std::int16_t* quantized, std::size_t count,
                           const float* steps, float* coeffs);
  /// Tiles a float plane into an 8x8 block grid with edge replication and
  /// `bias` added to every sample (tile_blocks_into semantics).
  void (*tile_f32)(const float* src, int w, int h, int grid_bx, int grid_by,
                   float* dst, float bias);
  /// Tiles one channel of an interleaved u8 image into a block grid,
  /// fusing the u8 -> float conversion and `bias`. `src` already points at
  /// the first sample of the channel; samples are `channels` apart.
  void (*tile_u8)(const std::uint8_t* src, int w, int h, int channels, int grid_bx,
                  int grid_by, float* dst, float bias);
  /// Inverse of tile_f32: writes the top-left w x h samples of the grid
  /// back to a plane, adding `bias` (untile_blocks_from semantics).
  void (*untile_f32)(const float* src, int grid_bx, int grid_by, float* plane, int w,
                     int h, float bias);
  /// Interleaved RGB u8 -> planar float Y/Cb/Cr (JFIF BT.601), `n` pixels.
  void (*rgb_to_ycbcr)(const std::uint8_t* rgb, std::size_t n, float* y, float* cb,
                       float* cr);
  /// One row of planar float Y/Cb/Cr -> interleaved RGB u8 with the
  /// clamp_u8 rounding rule (nearbyint, clamp to [0, 255]).
  void (*ycbcr_to_rgb_row)(const float* y, const float* cb, const float* cr, int n,
                           std::uint8_t* rgb);
  /// One row of floats -> u8 with the clamp_u8 rounding rule, unit stride.
  void (*f32_to_u8_row)(const float* src, int n, std::uint8_t* dst);
  /// Exact integer sum of squared differences over two u8 buffers.
  std::uint64_t (*sum_sq_diff_u8)(const std::uint8_t* a, const std::uint8_t* b,
                                  std::size_t n);
  /// Per-band quantization squared error of one 64-float block:
  /// sq[k] = (c - nearbyint(c / q[k]) * q[k])^2 in double precision.
  void (*quant_error_block)(const float* block, const double* steps, double* sq);
  /// C[m x n] += A[m x k] * B[k x n], all row-major. Per-element
  /// accumulation runs in ascending k order with the scalar zero-skip.
  void (*gemm_acc)(const float* a, const float* b, float* c, int m, int k, int n);
  /// C[m x n] += A^T * B with A stored [k x m] (k-major).
  void (*gemm_at_acc)(const float* a, const float* b, float* c, int m, int k, int n);
  /// Nonzero-lane bitmask over one 64-entry int16 block (zig-zag or natural
  /// order): bit k set iff v[k] != 0. Exact integer predicate, identical at
  /// every level — the entropy coder iterates set bits instead of walking
  /// 63 branchy lanes.
  std::uint64_t (*nonzero_mask_i16_64)(const std::int16_t* v);
  /// JPEG byte stuffing: copies `n` bytes from `src` to `dst`, inserting a
  /// 0x00 after every 0xFF. `dst` must have room for 2*n bytes. Returns the
  /// number of bytes written. Vector levels bulk-copy chunks with no 0xFF
  /// byte and fall back per byte only on chunks that need stuffing.
  std::size_t (*stuff_bytes)(const std::uint8_t* src, std::size_t n,
                             std::uint8_t* dst);
};

/// The active kernel table. First use resolves the level from DNJ_SIMD
/// (or auto-detects); the returned reference stays valid forever.
const KernelTable& kernels();

}  // namespace dnj::simd
